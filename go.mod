module reservoir

go 1.24
