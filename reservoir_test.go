package reservoir

import (
	"testing"
)

func TestClusterQuickstart(t *testing.T) {
	cfg := Config{K: 100, Weighted: true, Seed: 1}
	cl, err := NewCluster(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := UniformSource{Seed: 2, BatchLen: 1000, Lo: 0, Hi: 100}
	for round := 0; round < 5; round++ {
		cl.ProcessRound(src)
	}
	sample := cl.Sample()
	if len(sample) != 100 {
		t.Fatalf("sample size %d, want 100", len(sample))
	}
	if cl.SampleSize() != 100 {
		t.Fatalf("SampleSize = %d", cl.SampleSize())
	}
	if cl.Round() != 5 {
		t.Fatalf("Round = %d", cl.Round())
	}
	if _, have := cl.Threshold(); !have {
		t.Fatal("no threshold after 40k items")
	}
	if cl.VirtualTime() <= 0 {
		t.Fatal("virtual time not advancing")
	}
	ns := cl.NetworkStats()
	if ns.Messages == 0 || ns.Words == 0 {
		t.Fatalf("no network traffic recorded: %+v", ns)
	}
	tm := cl.Timing()
	if tm.ScanNS <= 0 || tm.SelectNS <= 0 {
		t.Fatalf("timing not populated: %+v", tm)
	}
	if got := cl.Counters().ItemsProcessed; got != 8*1000*5 {
		t.Fatalf("items processed %d", got)
	}
}

func TestClusterGatherAlgorithm(t *testing.T) {
	cfg := Config{K: 50, Weighted: true, Seed: 3}
	cl, err := NewCluster(4, cfg, WithAlgorithm(CentralizedGather))
	if err != nil {
		t.Fatal(err)
	}
	if cl.Algorithm() != CentralizedGather {
		t.Fatal("algorithm not set")
	}
	src := UniformSource{Seed: 4, BatchLen: 500, Lo: 0, Hi: 100}
	for round := 0; round < 3; round++ {
		cl.ProcessRound(src)
	}
	if got := len(cl.Sample()); got != 50 {
		t.Fatalf("gather sample size %d", got)
	}
	if cl.Timing().GatherNS <= 0 {
		t.Fatal("gather timing missing")
	}
	if Distributed.String() != "ours" || CentralizedGather.String() != "gather" {
		t.Error("Algorithm.String broken")
	}
	if Algorithm(7).String() == "" {
		t.Error("unknown Algorithm.String empty")
	}
}

func TestClusterProcessBatches(t *testing.T) {
	cfg := Config{K: 10, Weighted: true, Seed: 5}
	cl, err := NewCluster(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := []SliceBatch{
		{{W: 1, ID: 1}, {W: 2, ID: 2}},
		{{W: 3, ID: 3}},
	}
	if err := cl.ProcessBatches(batches); err != nil {
		t.Fatal(err)
	}
	if err := cl.ProcessBatches(batches[:1]); err == nil {
		t.Fatal("batch count mismatch not reported")
	}
	sample := cl.Sample()
	if len(sample) != 3 {
		t.Fatalf("sample %v, want all 3 items", sample)
	}
}

func TestClusterOptions(t *testing.T) {
	cfg := Config{K: 5, Weighted: true, Seed: 6}
	cl, err := NewCluster(2, cfg, WithNetworkCost(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	src := UniformSource{Seed: 7, BatchLen: 50, Lo: 0, Hi: 1}
	cl.ProcessRound(src)
	if cl.VirtualTime() <= 0 {
		t.Fatal("no time with custom network cost")
	}
	cl.ResetClocks()
	if cl.VirtualTime() != 0 {
		t.Fatal("ResetClocks did not zero the clocks")
	}
	if _, err := NewCluster(2, Config{K: 0}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSequentialFacades(t *testing.T) {
	w := NewWeighted(10, 1)
	u := NewUniform(10, 2)
	for i := 0; i < 1000; i++ {
		it := Item{W: 1 + float64(i%3), ID: uint64(i)}
		w.Process(it)
		u.Process(it)
	}
	if len(w.Sample()) != 10 || len(u.Sample()) != 10 {
		t.Fatal("sequential facades broken")
	}
	win := NewWindowed(5, 100, 10, 3)
	for i := 0; i < 1000; i++ {
		win.Process(Item{W: 1, ID: uint64(i)})
	}
	if len(win.Sample()) != 5 {
		t.Fatal("windowed facade broken")
	}
	if got := win.WindowSpan(); got < 91 || got > 100 {
		t.Fatalf("window span %d", got)
	}
}

func TestDefaultCostModel(t *testing.T) {
	m := DefaultCostModel()
	if m.AlphaNS <= 0 || m.ScanColdNS <= m.ScanHotNS {
		t.Fatalf("suspicious default model: %+v", m)
	}
}

func TestClusterVariableSize(t *testing.T) {
	cfg := Config{KMin: 20, KMax: 40, Weighted: true, Seed: 8}
	cl, err := NewCluster(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := UniformSource{Seed: 9, BatchLen: 200, Lo: 0, Hi: 100}
	for round := 0; round < 6; round++ {
		cl.ProcessRound(src)
		if s := cl.SampleSize(); s > 40 {
			t.Fatalf("round %d: size %d exceeds KMax", round, s)
		}
	}
	if s := cl.SampleSize(); s < 20 {
		t.Fatalf("final size %d below KMin", s)
	}
}

func TestWeightedSampleBiasEndToEnd(t *testing.T) {
	// End-to-end sanity: with a 1000x heavier item class, heavy items must
	// be strongly over-represented in the collected sample.
	cfg := Config{K: 200, Weighted: true, Seed: 10}
	cl, err := NewCluster(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := make([]SliceBatch, 4)
	id := uint64(0)
	for pe := range batches {
		for i := 0; i < 2500; i++ {
			w := 1.0
			if id%100 == 0 { // 1% of items are 1000x heavier
				w = 1000
			}
			batches[pe] = append(batches[pe], Item{W: w, ID: id})
			id++
		}
	}
	if err := cl.ProcessBatches(batches); err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, it := range cl.Sample() {
		if it.ID%100 == 0 {
			heavy++
		}
	}
	// Heavy items carry ~91% of the total weight; in 200 draws without
	// replacement they must dominate. Require a conservative majority.
	if heavy < 80 {
		t.Fatalf("only %d/200 heavy items sampled; weighting ineffective", heavy)
	}
	if heavy == 200 {
		t.Fatal("sample contains only heavy items; suspicious")
	}
}

// TestSampleSnapshotMatchesSample checks the communication-free snapshot:
// it must return the same item set as the collective Sample without
// touching the virtual clocks or the simulated traffic counters, for both
// the distributed algorithm and the gather baseline.
func TestSampleSnapshotMatchesSample(t *testing.T) {
	for _, algo := range []Algorithm{Distributed, CentralizedGather} {
		cfg := Config{K: 64, Weighted: true, Seed: 3}
		cl, err := NewCluster(4, cfg, WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		src := UniformSource{Seed: 4, BatchLen: 500, Lo: 0, Hi: 100}
		for round := 0; round < 4; round++ {
			cl.ProcessRound(src)
		}
		nsBefore := cl.NetworkStats()
		vtBefore := cl.VirtualTime()
		snap := cl.SampleSnapshot()
		if ns := cl.NetworkStats(); ns != nsBefore {
			t.Fatalf("%v: SampleSnapshot generated traffic: %+v -> %+v", algo, nsBefore, ns)
		}
		if vt := cl.VirtualTime(); vt != vtBefore {
			t.Fatalf("%v: SampleSnapshot advanced virtual time: %g -> %g", algo, vtBefore, vt)
		}
		got := map[uint64]float64{}
		for _, it := range snap {
			got[it.ID] = it.W
		}
		want := cl.Sample()
		if len(snap) != len(want) {
			t.Fatalf("%v: snapshot has %d items, Sample has %d", algo, len(snap), len(want))
		}
		for _, it := range want {
			if w, ok := got[it.ID]; !ok || w != it.W {
				t.Fatalf("%v: item %d (w=%g) missing from snapshot (got w=%g, ok=%v)",
					algo, it.ID, it.W, w, ok)
			}
		}
	}
}
