package reservoir

import (
	"testing"

	"reservoir/internal/transport"
)

// The merged stats payload crosses the wire once per round; its codec
// must survive a round trip bit-exactly, including negative counter
// values (zigzag varints), and reject truncation like every other
// registered format.
func TestClusterStatsWireRoundTrip(t *testing.T) {
	cases := []clusterStats{
		{},
		{
			Net: NetworkStats{Messages: 1, Words: 236, Bytes: 194918},
			Ops: Counters{
				ItemsProcessed:     600000,
				Inserted:           1234,
				CandidateWords:     77,
				Selections:         9,
				SelectionRounds:    244,
				GatheredSelections: 3,
			},
		},
		{Net: NetworkStats{Messages: -1}, Ops: Counters{ItemsProcessed: -5}},
	}
	for _, want := range cases {
		enc := transport.AppendPayload(nil, want)
		got, err := transport.DecodePayload(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != any(want) {
			t.Fatalf("round trip changed value: got %+v want %+v", got, want)
		}
		for cut := 1; cut < len(enc); cut++ {
			if _, err := transport.DecodePayload(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
			}
		}
	}
}
