// Heavy hitters: use weighted reservoir sampling to find the items that
// dominate total traffic in distributed network logs — one of the paper's
// motivating applications (network monitoring, heavy hitter maintenance).
//
// 16 simulated monitoring nodes each observe flows whose byte counts follow
// a heavy-tailed (Pareto) distribution, plus a handful of planted elephant
// flows. Sampling flows with probability proportional to their byte count
// surfaces the elephants in a k-sized sample even though they are a
// vanishing fraction of the flow count.
package main

import (
	"fmt"
	"sort"

	"reservoir"
)

const (
	pes      = 16
	rounds   = 20
	batchLen = 5_000
	k        = 64
)

// elephantBytes marks the planted elephant flows; every PE observes one
// elephant every 5th round, so 64 elephants hide among 1.6M flows.
const elephantBytes = 50_000_000

// flowSource wraps the library's Pareto source and plants elephants.
type flowSource struct {
	base reservoir.ParetoSource
}

func (f flowSource) NextBatch(pe, round int) reservoir.Batch {
	b := f.base.NextBatch(pe, round)
	out := make(reservoir.SliceBatch, b.Len())
	for i := range out {
		it := b.At(i)
		it.W *= 1000 // scale to "bytes"
		if i == 0 && round%5 == 0 {
			it.W = elephantBytes
		}
		out[i] = it
	}
	return out
}

func main() {
	cfg := reservoir.Config{K: k, Weighted: true, Strategy: reservoir.SelMultiPivot, Pivots: 8, Seed: 3}
	cl, err := reservoir.NewCluster(pes, cfg)
	if err != nil {
		panic(err)
	}
	src := flowSource{base: reservoir.ParetoSource{Seed: 99, BatchLen: batchLen, Shape: 1.3}}
	totalFlows := 0
	for round := 0; round < rounds; round++ {
		cl.ProcessRound(src)
		totalFlows += pes * batchLen
	}

	sample := cl.Sample()
	sort.Slice(sample, func(i, j int) bool { return sample[i].W > sample[j].W })
	elephants := 0
	for _, it := range sample {
		if it.W == elephantBytes {
			elephants++
		}
	}
	planted := pes * ((rounds + 4) / 5)
	fmt.Printf("observed %d flows on %d nodes; sample size %d\n", totalFlows, pes, len(sample))
	fmt.Printf("planted elephants in stream: %d (%.4f%% of flows); elephants in sample: %d (%.0f%%)\n",
		planted, 100*float64(planted)/float64(totalFlows), elephants, 100*float64(elephants)/float64(len(sample)))
	fmt.Println("\nheaviest sampled flows:")
	for _, it := range sample[:10] {
		tag := ""
		if it.W == elephantBytes {
			tag = "  <-- elephant"
		}
		fmt.Printf("  flow %14d  %12.0f bytes%s\n", it.ID, it.W, tag)
	}
	fmt.Printf("\nvirtual time %.2f ms, %d messages, %d words on the wire\n",
		cl.VirtualTime()/1e6, cl.NetworkStats().Messages, cl.NetworkStats().Words)
}
