// reservoir-serve demo: starts the sampling service on a loopback port,
// creates two runs (a distributed cluster and the gather baseline),
// ingests mini-batch rounds from concurrent HTTP clients — synchronous
// ?wait=true rounds on one run, asynchronous 202-Accepted rounds with a
// queue drain on the other — while tailing the SSE metrics stream, then
// queries samples and stats. The HTTP counterpart of the quickstart
// example; see docs/API.md for the full API.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"reservoir/internal/service"
)

func main() {
	svc := service.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// Two runs: the paper's distributed algorithm and the centralized
	// gathering baseline, same workload scale.
	ours := createRun(base, `{"kind":"cluster","p":8,"k":64,"seed":1,"local_threshold":true,"blocked_skip":true}`)
	gather := createRun(base, `{"kind":"cluster","p":8,"k":64,"seed":1,"algorithm":"gather"}`)
	fmt.Printf("created runs %s (ours) and %s (gather)\n", ours, gather)

	// Tail the SSE metrics feed of the first run while ingesting.
	ctx, cancel := context.WithCancel(context.Background())
	events := make(chan service.Stats, 64)
	go tailStream(ctx, base, ours, events)

	// Four concurrent clients per run, three synthetic rounds each:
	// 12 mini-batch rounds per run, 10k items per PE per round. The
	// first run takes synchronous rounds (?wait=true blocks until the
	// round has run and returns its stats); the second takes the default
	// asynchronous path (202 Accepted, then we wait for the bounded
	// ingest queue to drain).
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			post(base+"/v1/runs/"+ours+"/batches?wait=true",
				`{"synthetic":{"source":"uniform","batch_len":10000,"rounds":3}}`)
		}()
		go func() {
			defer wg.Done()
			post(base+"/v1/runs/"+gather+"/batches",
				`{"synthetic":{"source":"uniform","batch_len":10000,"rounds":3}}`)
		}()
	}
	wg.Wait()
	// The async run acknowledged 4x3 rounds; poll until its queue drains.
	for {
		var st service.Stats
		getJSON(base+"/v1/runs/"+gather+"/stats", &st)
		if st.Rounds >= 12 && st.PendingRounds == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	deadline := time.After(2 * time.Second)
tail:
	for {
		select {
		case ev := <-events:
			fmt.Printf("  [stream %s] round %2d: sample=%d threshold=%.4g msgs=%d\n",
				ev.ID, ev.Rounds, ev.SampleSize, ev.Threshold, ev.Network.Messages)
			if ev.Rounds >= 12 {
				break tail
			}
		case <-deadline:
			break tail
		}
	}
	cancel()

	for _, id := range []string{ours, gather} {
		var st service.Stats
		getJSON(base+"/v1/runs/"+id+"/stats", &st)
		var sr service.SampleResponse
		getJSON(base+"/v1/runs/"+id+"/sample", &sr)
		fmt.Printf("run %s: %d rounds, %d items seen, sample of %d, "+
			"virtual time %.2f ms, %d messages / %d words on the simulated network\n",
			id, st.Rounds, st.ItemsProcessed, sr.Count,
			st.VirtualTimeNS/1e6, st.Network.Messages, st.Network.Words)
	}

	svc.Close()
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer sdCancel()
	hs.Shutdown(sdCtx)
}

func createRun(base, cfg string) string {
	var resp service.CreateResponse
	body := post(base+"/v1/runs", cfg)
	if err := json.Unmarshal(body, &resp); err != nil {
		panic(err)
	}
	return resp.ID
}

func post(url, body string) []byte {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode >= 300 {
		panic(fmt.Sprintf("POST %s: %s: %s", url, resp.Status, buf.String()))
	}
	return buf.Bytes()
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		panic(err)
	}
}

// tailStream reads the SSE metrics feed and forwards decoded stats events.
func tailStream(ctx context.Context, base, id string, out chan<- service.Stats) {
	req, err := http.NewRequestWithContext(ctx, "GET",
		base+"/v1/runs/"+id+"/metrics/stream", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var st service.Stats
			if json.Unmarshal([]byte(data), &st) == nil {
				select {
				case out <- st:
				case <-ctx.Done():
					return
				}
			}
		}
	}
}
