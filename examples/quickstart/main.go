// Quickstart: maintain a weighted random sample over a single stream with
// O(k) memory, then over a simulated 8-PE distributed stream.
package main

import (
	"fmt"

	"reservoir"
)

func main() {
	// --- Sequential: sample 5 of a million weighted items -----------------
	s := reservoir.NewWeighted(5, 42)
	for i := uint64(0); i < 1_000_000; i++ {
		// Item i has weight proportional to 1 + (i mod 1000).
		s.Process(reservoir.Item{W: 1 + float64(i%1000), ID: i})
	}
	fmt.Println("sequential weighted sample of 1M items:")
	for _, it := range s.Sample() {
		fmt.Printf("  item %7d  weight %4.0f\n", it.ID, it.W)
	}

	// --- Distributed: 8 PEs, mini-batches, no coordinator -----------------
	cfg := reservoir.Config{K: 10, Weighted: true, Seed: 1}
	cl, err := reservoir.NewCluster(8, cfg)
	if err != nil {
		panic(err)
	}
	src := reservoir.UniformSource{Seed: 2, BatchLen: 25_000, Lo: 0, Hi: 100}
	for round := 0; round < 5; round++ {
		cl.ProcessRound(src) // every PE ingests 25k items, then the PEs
		// jointly select the new key threshold
	}
	fmt.Printf("\ndistributed sample of %d items across 8 PEs (%d rounds):\n",
		8*25_000*5, cl.Round())
	for _, it := range cl.Sample() {
		fmt.Printf("  item %14d  weight %6.2f\n", it.ID, it.W)
	}
	th, _ := cl.Threshold()
	fmt.Printf("key threshold %.3g, virtual time %.2f ms, %d network messages\n",
		th, cl.VirtualTime()/1e6, cl.NetworkStats().Messages)
}
