// Variable-size reservoir (paper Sec 4.4): when the application tolerates a
// sample size anywhere in [kmin, kmax], the sampler lets the sample grow
// for several mini-batches and only occasionally runs a (faster,
// approximate) selection — trading exact size for far fewer collective
// operations.
//
// This example contrasts the number of selections and the virtual running
// time of fixed-size and variable-size sampling on the same stream.
package main

import (
	"fmt"

	"reservoir"
)

const (
	pes      = 32
	rounds   = 30
	batchLen = 2_000
)

func run(cfg reservoir.Config, label string) {
	cl, err := reservoir.NewCluster(pes, cfg)
	if err != nil {
		panic(err)
	}
	src := reservoir.UniformSource{Seed: 5, BatchLen: batchLen, Lo: 0, Hi: 100}
	for round := 0; round < rounds; round++ {
		cl.ProcessRound(src)
	}
	c := cl.Counters()
	selections := c.Selections / int64(pes)
	if cl.Algorithm() == reservoir.CentralizedGather {
		selections = c.Selections
	}
	fmt.Printf("%-22s sample size %4d   selections %2d/%d rounds   virtual time %7.2f ms\n",
		label, cl.SampleSize(), selections, rounds, cl.VirtualTime()/1e6)
}

func main() {
	fmt.Printf("%d PEs, %d rounds of %d items/PE\n\n", pes, rounds, batchLen)
	run(reservoir.Config{K: 1000, Weighted: true, Seed: 1},
		"fixed k=1000")
	run(reservoir.Config{KMin: 1000, KMax: 2000, Weighted: true, Seed: 1},
		"variable k in 1k..2k")
	run(reservoir.Config{KMin: 1000, KMax: 4000, Weighted: true, Seed: 1},
		"variable k in 1k..4k")
}
