// Sliding-window sampling (the paper's future-work extension, Sec 7):
// maintain a weighted sample over only the most recent items of a stream.
//
// A sensor stream drifts over time: recent readings have IDs near the
// stream head. A plain reservoir sample keeps items from the whole history,
// while the windowed sampler's items all come from the last `window`
// readings.
package main

import (
	"fmt"

	"reservoir"
)

func main() {
	const (
		total  = 1_000_000
		window = 50_000
		k      = 8
	)
	win := reservoir.NewWindowed(k, window, window/10, 11)
	whole := reservoir.NewWeighted(k, 12)
	for i := uint64(0); i < total; i++ {
		it := reservoir.Item{W: 1 + float64(i%100), ID: i}
		win.Process(it)
		whole.Process(it)
	}

	fmt.Printf("stream of %d items; window = last %d\n\n", total, window)
	fmt.Println("whole-stream reservoir sample (IDs spread over all history):")
	for _, it := range whole.Sample() {
		fmt.Printf("  item %8d (age %8d)\n", it.ID, total-it.ID)
	}
	fmt.Printf("\nwindowed sample (all IDs within the last %d, span %d):\n",
		window, win.WindowSpan())
	for _, it := range win.Sample() {
		fmt.Printf("  item %8d (age %8d)\n", it.ID, total-it.ID)
	}
}
