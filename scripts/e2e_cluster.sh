#!/usr/bin/env bash
# End-to-end multi-process cluster check: launch p reservoir-serve node
# processes on localhost, ingest a weighted synthetic stream through the
# rank-0 control API with reservoir-loadgen, verify the merged sample is
# byte-identical to a simulator replay with reservoir-verify -match, and
# leave BENCH_distributed.json + the sample dump behind as artifacts.
#
# Usage: scripts/e2e_cluster.sh [p] [rounds] [batch]
set -euo pipefail

P="${1:-4}"
ROUNDS="${2:-30}"
BATCH="${3:-20000}"
K="${K:-256}"
SEED="${SEED:-424242}"
ALGO="${ALGO:-ours}"
BASE_PORT="${BASE_PORT:-19400}"
CONTROL_PORT="${CONTROL_PORT:-19490}"
OUT="${OUT:-BENCH_distributed.json}"
SAMPLE_OUT="${SAMPLE_OUT:-cluster_sample.json}"

cd "$(dirname "$0")/.."

echo "== building binaries"
go build -o /tmp/reservoir-serve ./cmd/reservoir-serve
go build -o /tmp/reservoir-loadgen ./cmd/reservoir-loadgen
go build -o /tmp/reservoir-verify ./cmd/reservoir-verify

PEERS=""
for ((i = 0; i < P; i++)); do
  PEERS="${PEERS:+$PEERS,}127.0.0.1:$((BASE_PORT + i))"
done

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

echo "== launching $P node processes (peers: $PEERS)"
for ((i = 0; i < P; i++)); do
  ADDR_ARG=""
  if [ "$i" -eq 0 ]; then
    ADDR_ARG="-addr 127.0.0.1:$CONTROL_PORT"
  fi
  # shellcheck disable=SC2086
  /tmp/reservoir-serve -peer-id "$i" -peers "$PEERS" $ADDR_ARG \
    -k "$K" -seed "$SEED" -algo "$ALGO" &
  PIDS+=($!)
done

echo "== waiting for the control API"
for i in $(seq 1 100); do
  if curl -sf "http://127.0.0.1:$CONTROL_PORT/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" -eq 100 ]; then
    echo "cluster control API never came up" >&2
    exit 1
  fi
  sleep 0.2
done
curl -s "http://127.0.0.1:$CONTROL_PORT/healthz"
echo

echo "== driving $ROUNDS rounds of $BATCH items/PE"
/tmp/reservoir-loadgen -cluster "http://127.0.0.1:$CONTROL_PORT" \
  -rounds "$ROUNDS" -batch "$BATCH" \
  -name distributed -out "$OUT" -sample-out "$SAMPLE_OUT"

echo "== verifying the merged sample against a simulator replay"
/tmp/reservoir-verify -match "$SAMPLE_OUT"

echo "== shutting the cluster down"
curl -sf -X POST "http://127.0.0.1:$CONTROL_PORT/v1/cluster/shutdown"
echo
for pid in "${PIDS[@]}"; do
  if ! wait "$pid"; then
    echo "node process $pid exited non-zero" >&2
    exit 1
  fi
done
trap - EXIT

echo "== e2e OK: $OUT and $SAMPLE_OUT written"
