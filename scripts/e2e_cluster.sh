#!/usr/bin/env bash
# End-to-end multi-process cluster check: launch p reservoir-serve node
# processes on localhost, ingest a weighted synthetic stream through the
# rank-0 control API with reservoir-loadgen, verify the merged sample is
# byte-identical to a simulator replay with reservoir-verify -match, and
# leave BENCH_distributed.json + the sample dump behind as artifacts.
#
# Ports are probed at runtime (scripts/freeport), so concurrent jobs on a
# shared runner cannot collide; BASE_PORT/CONTROL_PORT env vars override
# the probing for debugging. EXTRA_NODE_FLAGS is appended to every node's
# command line (e.g. a faultnet schedule: EXTRA_NODE_FLAGS="-fault-drop
# 0.05 -fault-dup 0.05" — the sample must still verify byte-identical).
# SHARDS=4 PIPELINE=1 runs the cluster with the deterministic sharded
# scan and pipelined selection rounds; the dump records both, so the
# -match replay stays byte-identical either way.
#
# Usage: scripts/e2e_cluster.sh [p] [rounds] [batch]
set -euo pipefail

P="${1:-4}"
ROUNDS="${2:-30}"
BATCH="${3:-20000}"
K="${K:-256}"
SEED="${SEED:-424242}"
ALGO="${ALGO:-ours}"
OUT="${OUT:-BENCH_distributed.json}"
SAMPLE_OUT="${SAMPLE_OUT:-cluster_sample.json}"

cd "$(dirname "$0")/.."
# shellcheck source=scripts/cluster_lib.sh
source scripts/cluster_lib.sh

build_binaries
probe_ports
make_peers
install_cleanup_trap

echo "== launching $P node processes (peers: $PEERS, control: $CONTROL_PORT)"
for ((i = 0; i < P; i++)); do
  launch_node "$i"
done

await_control
curl -s "http://127.0.0.1:$CONTROL_PORT/healthz"
echo

echo "== driving $ROUNDS rounds of $BATCH items/PE"
if [[ "$BATCH" == *,* ]]; then
  # Batch grid (e.g. "5000,20000,50000"): loadgen refuses -sample-out for
  # multi-point runs because the dump replays one stream. Bench the grid
  # here; run the script again with a single batch for the verify step.
  /tmp/reservoir-loadgen -cluster "http://127.0.0.1:$CONTROL_PORT" \
    -rounds "$ROUNDS" -batch "$BATCH" \
    -name distributed -out "$OUT"
else
  /tmp/reservoir-loadgen -cluster "http://127.0.0.1:$CONTROL_PORT" \
    -rounds "$ROUNDS" -batch "$BATCH" \
    -name distributed -out "$OUT" -sample-out "$SAMPLE_OUT"

  echo "== verifying the merged sample against a simulator replay"
  /tmp/reservoir-verify -match "$SAMPLE_OUT"
fi

echo "== shutting the cluster down"
curl -sf -X POST "http://127.0.0.1:$CONTROL_PORT/v1/cluster/shutdown"
echo
for pid in "${PIDS[@]}"; do
  if ! wait "$pid"; then
    echo "node process $pid exited non-zero" >&2
    exit 1
  fi
done
trap - EXIT

echo "== e2e OK: $OUT and $SAMPLE_OUT written"
