// Command freeport prints n currently-free TCP ports on 127.0.0.1, one
// per line. The CI scripts use it instead of hardcoded port ranges so
// concurrent jobs on a shared runner cannot collide: all n listeners are
// held open simultaneously while probing, so the printed ports are
// distinct and free at the moment of printing.
//
//	go run ./scripts/freeport -n 5
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
)

func main() {
	n := flag.Int("n", 1, "number of free ports to print")
	flag.Parse()
	if *n < 1 || *n > 1024 {
		fmt.Fprintf(os.Stderr, "freeport: -n must be in [1, 1024], got %d\n", *n)
		os.Exit(2)
	}
	listeners := make([]net.Listener, 0, *n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < *n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeport:", err)
			os.Exit(1)
		}
		listeners = append(listeners, ln)
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
	}
}
