#!/usr/bin/env bash
# Chaos harness: launch a p-node reservoir-serve cluster with crash-restart
# tolerance (-rejoin-timeout + per-node -data stores), drive a paced
# synthetic ingest with reservoir-loadgen -chaos, and kill -9 / restart
# nodes from the VICTIMS list while the run is live. The run must finish,
# and reservoir-verify -match must confirm the final sample is
# byte-identical to an uninterrupted in-process simulator replay — chaos
# may cost retries and latency, never correctness.
#
# Env knobs:
#   VICTIMS        space-separated kill/restart cycle ranks (default "2 1";
#                  rank 0 is legal — the control API goes down and
#                  loadgen -chaos rides it out)
#   KILL_DELAY     seconds before the first kill          (default 2)
#   RESTART_DELAY  seconds a victim stays dead            (default 1.5)
#   CYCLE_GAP      seconds between kill/restart cycles    (default 4)
#   INTERVAL       loadgen pause between rounds           (default 250ms)
#   SCENARIO       workload scenario preset for the ingest (default empty =
#                  primitive uniform stream; e.g. pareto_burst runs the
#                  kill/restart wave under heavy-tailed bursty load and the
#                  -match replay must still be byte-identical)
#
# Usage: scripts/chaos_cluster.sh [p] [rounds] [batch]
set -euo pipefail

P="${1:-4}"
ROUNDS="${2:-40}"
BATCH="${3:-5000}"
K="${K:-256}"
SEED="${SEED:-424242}"
ALGO="${ALGO:-ours}"
VICTIMS="${VICTIMS:-2 1}"
KILL_DELAY="${KILL_DELAY:-2}"
RESTART_DELAY="${RESTART_DELAY:-1.5}"
CYCLE_GAP="${CYCLE_GAP:-4}"
INTERVAL="${INTERVAL:-250ms}"
SCENARIO="${SCENARIO:-}"
REJOIN="${REJOIN:-60s}"
OUT="${OUT:-BENCH_chaos.json}"
SAMPLE_OUT="${SAMPLE_OUT:-chaos_sample.json}"
DATA_ROOT="${DATA_ROOT:-$(mktemp -d /tmp/reservoir-chaos.XXXXXX)}"

cd "$(dirname "$0")/.."
# shellcheck source=scripts/cluster_lib.sh
source scripts/cluster_lib.sh

build_binaries
probe_ports
make_peers
install_cleanup_trap

# launch_ft_node RANK — (re)start one node with its durable store.
launch_ft_node() {
  launch_node "$1" -rejoin-timeout "$REJOIN" -data "$DATA_ROOT/node$1"
}

echo "== launching $P fault-tolerant node processes (control: $CONTROL_PORT, data: $DATA_ROOT)"
for ((i = 0; i < P; i++)); do
  launch_ft_node "$i"
done

await_control 150

SCENARIO_ARGS=()
if [ -n "$SCENARIO" ]; then
  SCENARIO_ARGS=(-scenario "$SCENARIO")
  echo "== starting paced chaos ingest: $ROUNDS rounds of ~$BATCH items/PE (scenario $SCENARIO)"
else
  echo "== starting paced chaos ingest: $ROUNDS rounds of $BATCH items/PE"
fi
/tmp/reservoir-loadgen -cluster "http://127.0.0.1:$CONTROL_PORT" \
  -rounds "$ROUNDS" -batch "$BATCH" -interval "$INTERVAL" \
  -chaos -chaos-timeout 3m "${SCENARIO_ARGS[@]}" \
  -name chaos -out "$OUT" -sample-out "$SAMPLE_OUT" &
LOADGEN_PID=$!

CYCLES=0
sleep "$KILL_DELAY"
for victim in $VICTIMS; do
  if ! kill -0 "$LOADGEN_PID" 2>/dev/null; then
    echo "loadgen finished before all chaos cycles ran; raise ROUNDS or INTERVAL" >&2
    break
  fi
  echo "== chaos cycle $((CYCLES + 1)): kill -9 node $victim (pid ${PIDS[victim]})"
  kill -9 "${PIDS[victim]}" 2>/dev/null || true
  wait "${PIDS[victim]}" 2>/dev/null || true
  sleep "$RESTART_DELAY"
  echo "== chaos cycle $((CYCLES + 1)): restart node $victim"
  launch_ft_node "$victim"
  CYCLES=$((CYCLES + 1))
  sleep "$CYCLE_GAP"
done

if [ "$CYCLES" -lt 2 ]; then
  echo "only $CYCLES kill/restart cycle(s) executed; the chaos gate needs >= 2" >&2
  kill "$LOADGEN_PID" 2>/dev/null || true
  exit 1
fi

echo "== waiting for the chaos ingest to finish"
if ! wait "$LOADGEN_PID"; then
  echo "loadgen failed under chaos" >&2
  exit 1
fi

echo "== verifying the post-chaos sample against an uninterrupted simulator replay"
/tmp/reservoir-verify -match "$SAMPLE_OUT"

echo "== shutting the cluster down"
curl -sf -X POST "http://127.0.0.1:$CONTROL_PORT/v1/cluster/shutdown"
echo
for ((i = 0; i < P; i++)); do
  wait "${PIDS[i]}" 2>/dev/null || {
    echo "node $i exited non-zero after chaos run" >&2
    exit 1
  }
done
trap - EXIT

echo "== chaos OK: $CYCLES kill/restart cycles survived; $OUT and $SAMPLE_OUT written"
