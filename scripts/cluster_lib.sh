# Shared harness for the multi-process cluster scripts
# (e2e_cluster.sh, chaos_cluster.sh). Source this file; it expects the
# caller to have set P, and provides:
#
#   build_binaries            — /tmp/reservoir-{serve,loadgen,verify}
#   probe_ports               — fills PORTS[0..P-1] + CONTROL_PORT
#                               (BASE_PORT/CONTROL_PORT env override the
#                               probing for debugging)
#   make_peers                — fills PEERS from PORTS
#   install_cleanup_trap      — kill all PIDS on exit
#   launch_node RANK [flags]  — start one reservoir-serve node (rank 0
#                               gets -addr on CONTROL_PORT), recording
#                               PIDS[RANK]; extra args are appended
#                               after $EXTRA_NODE_FLAGS
#   await_control [tries]     — poll rank 0's /healthz until it answers
#
# Callers provide K, SEED, ALGO, and optionally EXTRA_NODE_FLAGS.
# SHARDS (>0) adds -shards to every node; PIPELINE (non-empty) adds
# -pipeline — together they run the cluster with the deterministic
# sharded scan and round pipelining (DESIGN.md §2.6).

build_binaries() {
  echo "== building binaries"
  go build -o /tmp/reservoir-serve ./cmd/reservoir-serve
  go build -o /tmp/reservoir-loadgen ./cmd/reservoir-loadgen
  go build -o /tmp/reservoir-verify ./cmd/reservoir-verify
}

probe_ports() {
  echo "== probing free ports"
  if [ -n "${BASE_PORT:-}" ]; then
    PORTS=()
    for ((i = 0; i < P; i++)); do PORTS+=($((BASE_PORT + i))); done
    CONTROL_PORT="${CONTROL_PORT:-$((BASE_PORT + 90))}"
  else
    mapfile -t PROBED < <(go run ./scripts/freeport -n $((P + 1)))
    PORTS=("${PROBED[@]:0:P}")
    CONTROL_PORT="${PROBED[P]}"
  fi
}

make_peers() {
  PEERS=""
  for ((i = 0; i < P; i++)); do
    PEERS="${PEERS:+$PEERS,}127.0.0.1:${PORTS[i]}"
  done
}

PIDS=()
cluster_cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
}
install_cleanup_trap() {
  trap cluster_cleanup EXIT
}

launch_node() {
  local rank="$1" addr_arg="" scan_flags=""
  shift
  if [ "$rank" -eq 0 ]; then
    addr_arg="-addr 127.0.0.1:$CONTROL_PORT"
  fi
  if [ "${SHARDS:-0}" -gt 0 ]; then
    scan_flags="-shards ${SHARDS}"
  fi
  if [ -n "${PIPELINE:-}" ]; then
    scan_flags="$scan_flags -pipeline"
  fi
  # shellcheck disable=SC2086
  /tmp/reservoir-serve -peer-id "$rank" -peers "$PEERS" $addr_arg \
    -k "$K" -seed "$SEED" -algo "$ALGO" $scan_flags ${EXTRA_NODE_FLAGS:-} "$@" &
  PIDS[rank]=$!
}

await_control() {
  local tries="${1:-100}"
  echo "== waiting for the control API"
  for i in $(seq 1 "$tries"); do
    if curl -sf "http://127.0.0.1:$CONTROL_PORT/healthz" >/dev/null 2>&1; then
      return 0
    fi
    if [ "$i" -eq "$tries" ]; then
      echo "cluster control API never came up" >&2
      exit 1
    fi
    sleep 0.2
  done
}
