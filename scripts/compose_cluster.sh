#!/usr/bin/env bash
# Container chaos gate: build the shipping image, bring up the 4-node
# docker-compose cluster (deploy/docker-compose.yml), drive a paced ingest
# with reservoir-loadgen -chaos, and docker-kill / restart a node container
# mid-run. The run must finish, reservoir-verify -match must confirm the
# final sample is byte-identical to an uninterrupted in-process simulator
# replay, and the live /metrics pages must show nonzero per-peer transport
# traffic plus round-latency histograms — i.e. CI tests the exact artifact
# we ship, not a host-built stand-in.
#
# Env knobs:
#   VICTIM         compose service to kill/restart mid-ingest (default node2;
#                  node0 is legal — loadgen -chaos rides out the control API
#                  outage)
#   KILL_DELAY     seconds before the kill                  (default 3)
#   RESTART_DELAY  seconds the victim stays dead            (default 2)
#   INTERVAL       loadgen pause between rounds             (default 400ms)
#   COMPOSE        compose invocation                       (default "docker compose")
#
# Usage: scripts/compose_cluster.sh [rounds] [batch]
set -euo pipefail

ROUNDS="${1:-30}"
BATCH="${2:-2000}"
VICTIM="${VICTIM:-node2}"
KILL_DELAY="${KILL_DELAY:-3}"
RESTART_DELAY="${RESTART_DELAY:-2}"
INTERVAL="${INTERVAL:-400ms}"
COMPOSE="${COMPOSE:-docker compose}"
COMPOSE_FILE="deploy/docker-compose.yml"

cd "$(dirname "$0")/.."

compose() { $COMPOSE -f "$COMPOSE_FILE" "$@"; }

cleanup() {
  compose logs --no-color --timestamps >compose_cluster.log 2>&1 || true
  compose down -v --remove-orphans >/dev/null 2>&1 || true
}
trap cleanup EXIT

echo "== building the shipping image and starting the 4-node compose cluster"
compose up -d --build --wait --wait-timeout 120 node0 node1 node2 node3

# The host-side verifier replays the dump in-process; build it once.
go build -o /tmp/reservoir-verify ./cmd/reservoir-verify
go build -o /tmp/reservoir-loadgen ./cmd/reservoir-loadgen

echo "== starting paced chaos ingest: $ROUNDS rounds of $BATCH items/PE"
/tmp/reservoir-loadgen -cluster "http://127.0.0.1:8080" \
  -rounds "$ROUNDS" -batch "$BATCH" -interval "$INTERVAL" \
  -chaos -chaos-timeout 5m \
  -name compose_chaos -out BENCH_compose_chaos.json \
  -sample-out compose_sample.json &
LOADGEN_PID=$!

sleep "$KILL_DELAY"
if ! kill -0 "$LOADGEN_PID" 2>/dev/null; then
  echo "loadgen finished before the chaos cycle ran; raise ROUNDS or INTERVAL" >&2
  exit 1
fi
echo "== chaos: docker kill $VICTIM (SIGKILL) mid-ingest"
compose kill -s SIGKILL "$VICTIM"
sleep "$RESTART_DELAY"
echo "== chaos: restart $VICTIM (rejoins from its named volume and resyncs)"
compose start "$VICTIM"

echo "== waiting for the chaos ingest to finish"
if ! wait "$LOADGEN_PID"; then
  echo "loadgen failed under container chaos" >&2
  exit 1
fi

echo "== verifying the post-chaos sample against an uninterrupted simulator replay"
/tmp/reservoir-verify -match compose_sample.json

echo "== checking the live /metrics pages (per-peer traffic + round histograms)"
# Rank 0's ops endpoint is on host port 9090; the restarted victim's page
# must also be serving again (ports 9091..9093 map node1..node3).
metrics="$(curl -sf http://127.0.0.1:9090/metrics)"
check() {
  # check PATTERN DESC — require a sample line matching PATTERN with a
  # strictly positive value.
  if ! grep -E "$1" <<<"$metrics" | awk '$NF + 0 > 0 { found = 1 } END { exit !found }'; then
    echo "metrics gate: no nonzero sample for $2 (pattern $1)" >&2
    echo "$metrics" | grep -v '^#' | head -50 >&2
    return 1
  fi
}
check '^reservoir_transport_bytes_total\{peer="[0-9]+"\}' "per-peer transport bytes"
check '^reservoir_transport_messages_total\{peer="[0-9]+"\}' "per-peer transport messages"
check '^reservoir_node_round_duration_seconds_count\{rank="0"\}' "round-latency histogram"
check '^reservoir_cluster_items_total ' "cluster items counter"
for port in 9091 9092 9093; do
  curl -sf "http://127.0.0.1:$port/healthz" >/dev/null || {
    echo "node ops endpoint on :$port not healthy after chaos" >&2
    exit 1
  }
done

echo "== shutting the cluster down via the control API"
curl -sf -X POST http://127.0.0.1:8080/v1/cluster/shutdown
echo
compose down -v --remove-orphans
trap - EXIT

echo "== compose chaos OK: container kill/restart survived; sample byte-identical; metrics live"
