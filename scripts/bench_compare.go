// Command bench_compare is the CI bench-regression gate: it diffs two
// reservoir-bench/v1 reports (docs/BENCHMARKS.md) and fails when any
// result present in both regresses beyond the allowed factor on the
// gated metric (throughput by default). CI runs it with the committed
// baseline against the bench-smoke output of the PR:
//
//	go run scripts/bench_compare.go \
//	    -metric throughput_items_per_s -max-regression 0.30 \
//	    BENCH_service_baseline.json BENCH_service_smoke.json
//
// For cost metrics where growth is the regression (allocation counts,
// latencies), pass -lower-better; CI gates allocs_per_round this way so
// an accidental per-message allocation on the hot path fails the build
// even when raw throughput noise hides it:
//
//	go run scripts/bench_compare.go \
//	    -metric allocs_per_round -lower-better -max-regression 0.30 \
//	    BENCH_service_baseline.json BENCH_service_smoke.json
//
// Only result names appearing in BOTH reports are compared (a smoke run
// covers a subset of the baseline grid), and at least one overlapping
// result is required — a gate that silently compares nothing would rot.
// Shared-runner noise is the reason the default tolerance is a lenient
// 30%: the gate catches step-function regressions (an accidental O(n²),
// a lost fast path), not single-digit drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	Schema  string `json:"schema"`
	Name    string `json:"name"`
	Results []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"results"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "reservoir-bench/v1" {
		return nil, fmt.Errorf("%s: schema %q is not reservoir-bench/v1", path, r.Schema)
	}
	return &r, nil
}

func main() {
	metric := flag.String("metric", "throughput_items_per_s", "metric to gate on")
	maxReg := flag.Float64("max-regression", 0.30, "maximum allowed fractional regression, e.g. 0.30 = -30%")
	lowerBetter := flag.Bool("lower-better", false, "gate a cost metric: regression means the value grew (allocs, latency)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench_compare [flags] baseline.json new.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(1)
	}

	baseline := make(map[string]float64)
	for _, res := range base.Results {
		if v, ok := res.Metrics[*metric]; ok && v > 0 {
			baseline[res.Name] = v
		}
	}

	compared, failed := 0, 0
	for _, res := range cur.Results {
		want, ok := baseline[res.Name]
		if !ok {
			continue
		}
		got, ok := res.Metrics[*metric]
		if !ok {
			continue
		}
		compared++
		change := got/want - 1
		regressed := change < -*maxReg
		if *lowerBetter {
			regressed = change > *maxReg
		}
		status := "ok"
		if regressed {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-32s %-24s base %14.0f  new %14.0f  %+7.1f%%  %s\n",
			res.Name, *metric, want, got, change*100, status)
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: no overlapping results between %s and %s — the gate compared nothing\n",
			flag.Arg(0), flag.Arg(1))
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "bench_compare: %d of %d compared results regressed more than %.0f%% on %s\n",
			failed, compared, *maxReg*100, *metric)
		os.Exit(1)
	}
	fmt.Printf("bench_compare: %d results within %.0f%% of %s\n", compared, *maxReg*100, base.Name)
}
