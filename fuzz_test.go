package reservoir

import (
	"testing"
)

// fuzzClusterCfg is the fixed configuration FuzzRestoreCluster restores
// into; restore validates the snapshot against it, so corrupt inputs that
// disagree with the config must error out cleanly.
var fuzzClusterCfg = Config{K: 16, Weighted: true, Seed: 1}

func clusterSnapshotSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, setup := range []struct {
		p, rounds int
	}{
		{1, 0}, {2, 1}, {4, 3},
	} {
		cl, err := NewCluster(setup.p, fuzzClusterCfg)
		if err != nil {
			tb.Fatal(err)
		}
		src := UniformSource{Seed: 5, BatchLen: 120, Lo: 0, Hi: 100}
		for r := 0; r < setup.rounds; r++ {
			cl.ProcessRound(src)
		}
		blob, err := cl.Snapshot()
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, blob)
	}
	return seeds
}

// FuzzRestoreCluster hammers the cluster snapshot decoder: truncated,
// bit-flipped, and length-lying inputs must return an error — never panic
// and never allocate a cluster larger than the input can justify. A
// snapshot that restores successfully must snapshot again successfully
// (the restored state is internally consistent).
func FuzzRestoreCluster(f *testing.F) {
	for _, s := range clusterSnapshotSeeds(f) {
		f.Add(s)
		f.Add(s[:len(s)*2/3])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/2] ^= 0x08
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		cl, err := RestoreCluster(fuzzClusterCfg, data)
		if err != nil {
			return
		}
		if _, err := cl.Snapshot(); err != nil {
			t.Fatalf("restored cluster cannot snapshot: %v", err)
		}
		// Restored state must be usable: one more round must not panic.
		cl.ProcessRound(UniformSource{Seed: 2, BatchLen: 10, Lo: 0, Hi: 1})
	})
}
