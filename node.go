package reservoir

import (
	"fmt"
	"time"

	"reservoir/internal/coll"
	"reservoir/internal/core"
	"reservoir/internal/transport"
)

// Node is one PE of a distributed sampling cluster running over a real
// transport: where Cluster simulates all p PEs inside one process, a Node
// is a single PE whose peers live in other OS processes, connected through
// a transport.Conn (in practice internal/transport/tcpnet, wired up by
// reservoir-serve's node mode; see docs/DEPLOY.md).
//
// All sampling methods are SPMD collectives: every node of the cluster
// must call the same methods in the same order with equivalent arguments,
// or the cluster deadlocks. Each node feeds its own local mini-batch per
// round; the threshold selection runs across the real network. Given the
// same configuration and per-PE input stream, a Node cluster produces a
// sample byte-identical to the simulated Cluster (the transport
// equivalence suite pins this).
//
// A Node is not safe for concurrent use; drive it from one goroutine.
type Node struct {
	comm    *coll.Comm
	conn    transport.Conn
	sampler core.Sampler
	algo    Algorithm
	round   int
	phase   PhaseStats
}

// PhaseStats is the wall-clock per-phase breakdown of a node's round
// loop, in nanoseconds, accumulated over all rounds. ScanNS is the local
// skip scan (StartScan); CollNS is the collective side (the deferred
// selection drain plus the merge/selection of CommitScan); OverlapNS is
// the wall time the pipelined driver saved by running the two
// concurrently (min of the overlapped pair per round); RoundNS is total
// round wall time. Only the sharded distributed sampler fills these in.
// FlushNS is the transport's accumulated coalesce-flush time (staged
// frame emission plus socket drain), reported by transports that track
// it (tcpnet); it is filled in at ClusterStats time, not per round.
type PhaseStats struct {
	ScanNS    int64
	CollNS    int64
	OverlapNS int64
	RoundNS   int64
	FlushNS   int64
}

// Add accumulates other into p.
func (p *PhaseStats) Add(other PhaseStats) {
	p.ScanNS += other.ScanNS
	p.CollNS += other.CollNS
	p.OverlapNS += other.OverlapNS
	p.RoundNS += other.RoundNS
	p.FlushNS += other.FlushNS
}

// NewNode creates this process's PE of a multi-process cluster. Every
// process must pass an identical Config (and WithAlgorithm option) or the
// collective protocol diverges.
func NewNode(conn transport.Conn, cfg Config, opts ...Option) (*Node, error) {
	o := options{algo: Distributed}
	for _, opt := range opts {
		opt(&o)
	}
	validated := cfg
	if validated.Model == (CostModel{}) {
		validated.Model = DefaultCostModel()
	}
	comm := coll.New(conn)
	n := &Node{comm: comm, conn: conn, algo: o.algo}
	var err error
	switch o.algo {
	case CentralizedGather:
		n.sampler, err = core.NewGatherPE(comm, validated)
	default:
		n.sampler, err = core.NewDistPE(comm, validated)
	}
	if err != nil {
		return nil, err
	}
	return n, nil
}

// Rank returns this node's rank in 0..P()-1.
func (n *Node) Rank() int { return n.comm.Rank() }

// P returns the cluster size.
func (n *Node) P() int { return n.comm.P() }

// Round returns the number of mini-batch rounds processed so far.
func (n *Node) Round() int { return n.round }

// Algorithm returns the sampler implementation the cluster runs.
func (n *Node) Algorithm() Algorithm { return n.algo }

// ProcessBatch ingests this node's mini-batch for the current round and
// runs the collective threshold update (SPMD: all nodes must call it).
// When the sampler runs the sharded scan (Config.Shards >= 1), the node
// drives the three round phases itself so that — under Config.Pipeline —
// the local scan of this round overlaps the still-in-flight selection
// collectives of the previous one. The overlap is safe and
// byte-identical to the simulator's sequential phase order because
// StartScan and FinishPending touch disjoint sampler state (DESIGN.md
// §2.6).
func (n *Node) ProcessBatch(b Batch) {
	if pe, ok := n.sampler.(*core.DistPE); ok && pe.Sharded() {
		n.processSharded(pe, b)
	} else {
		n.sampler.ProcessBatch(b)
	}
	n.round++
}

// processSharded runs one sharded round, overlapping the scan with the
// previous round's deferred selection when one is pending.
func (n *Node) processSharded(pe *core.DistPE, b Batch) {
	r0 := time.Now()
	var buf *core.ScanBuf
	if pe.Pending() {
		var scanDur time.Duration
		done := make(chan struct{})
		go func() {
			s0 := time.Now()
			buf = pe.StartScan(b)
			scanDur = time.Since(s0)
			close(done)
		}()
		f0 := time.Now()
		pe.FinishPending()
		finishDur := time.Since(f0)
		<-done
		n.phase.ScanNS += scanDur.Nanoseconds()
		n.phase.CollNS += finishDur.Nanoseconds()
		saved := scanDur
		if finishDur < saved {
			saved = finishDur
		}
		n.phase.OverlapNS += saved.Nanoseconds()
	} else {
		s0 := time.Now()
		buf = pe.StartScan(b)
		n.phase.ScanNS += time.Since(s0).Nanoseconds()
	}
	c0 := time.Now()
	pe.CommitScan(b, buf)
	n.phase.CollNS += time.Since(c0).Nanoseconds()
	n.phase.RoundNS += time.Since(r0).Nanoseconds()
}

// DrainPending completes a pipelined round's deferred selection
// collectives, if any (SPMD; no-op otherwise). Node-mode round
// boundaries — sample collection, state snapshots — drain first so they
// always observe a committed round; draining early never changes the
// sampling stream (DESIGN.md §2.6).
func (n *Node) DrainPending() {
	if pe, ok := n.sampler.(*core.DistPE); ok {
		pe.FinishPending()
	}
}

// Pending reports whether a pipelined round's selection is still
// deferred on this node.
func (n *Node) Pending() bool {
	pe, ok := n.sampler.(*core.DistPE)
	return ok && pe.Pending()
}

// PhaseStats returns this node's accumulated wall-clock round-phase
// breakdown (zero unless the sharded scan is active).
func (n *Node) PhaseStats() PhaseStats { return n.phase }

// ProcessRound ingests this node's next mini-batch from src (SPMD).
func (n *Node) ProcessRound(src Source) {
	n.ProcessBatch(src.NextBatch(n.Rank(), n.round))
}

// CollectSample gathers the global sample at rank 0, which receives the
// full item slice; other ranks receive nil (SPMD).
func (n *Node) CollectSample() []Item { return n.sampler.CollectSample() }

// LocalSample returns this node's part of the sample without any
// communication.
func (n *Node) LocalSample() []Item { return n.sampler.LocalSample() }

// SampleSize returns the current global sample size (agreed by all nodes
// after each round; no communication).
func (n *Node) SampleSize() int { return n.sampler.SampleSize() }

// Threshold returns the current global key threshold and whether one has
// been established (no communication).
func (n *Node) Threshold() (float64, bool) { return n.sampler.Threshold() }

// Timing returns this node's accumulated per-phase times — wall-clock
// nanoseconds on real transports.
func (n *Node) Timing() Timing { return n.sampler.Timing() }

// Counters returns this node's accumulated operation counts.
func (n *Node) Counters() Counters { return n.sampler.Counters() }

// ClockNS returns the transport's clock in nanoseconds (wall time since
// the mesh came up on tcpnet).
func (n *Node) ClockNS() float64 { return n.conn.Clock() }

// NetworkStats returns this node's own traffic counters, if the transport
// reports them (zero otherwise). See ClusterNetworkStats for the
// cluster-wide view.
func (n *Node) NetworkStats() NetworkStats {
	if s, ok := n.conn.(transport.StatsSource); ok {
		return statsFromTransport(s.Stats())
	}
	return NetworkStats{}
}

// ClusterNetworkStats sums every node's traffic counters with one
// all-reduction and returns the total on every node (SPMD).
func (n *Node) ClusterNetworkStats() NetworkStats {
	local := n.NetworkStats()
	return coll.AllReduce(n.comm, local, func(a, b NetworkStats) NetworkStats {
		return NetworkStats{
			Messages: a.Messages + b.Messages,
			Words:    a.Words + b.Words,
			Bytes:    a.Bytes + b.Bytes,
		}
	}, 3)
}

// ClusterCounters sums every node's operation counters with one
// all-reduction and returns the total on every node (SPMD).
func (n *Node) ClusterCounters() Counters {
	return coll.AllReduce(n.comm, n.sampler.Counters(), func(a, b Counters) Counters {
		a.Add(b)
		return a
	}, 6)
}

// clusterStats carries all three stat families through one all-reduction
// so a stats round costs log p latency terms once, not three times. It
// crosses the wire on stats refreshes, so it gets a codec
// (WireIDClusterStats, wire.go).
type clusterStats struct {
	Net   NetworkStats
	Ops   Counters
	Phase PhaseStats
}

// ClusterStats sums every node's traffic counters, operation counters,
// and round-phase breakdown with a single all-reduction and returns the
// totals on every node (SPMD). It is equivalent to ClusterNetworkStats +
// ClusterCounters at a third of the round-trip count; the stats
// publication uses it.
func (n *Node) ClusterStats() (NetworkStats, Counters, PhaseStats) {
	local := clusterStats{Net: n.NetworkStats(), Ops: n.sampler.Counters(), Phase: n.phase}
	if f, ok := n.conn.(interface{ FlushNS() int64 }); ok {
		local.Phase.FlushNS = f.FlushNS()
	}
	total := coll.AllReduce(n.comm, local, func(a, b clusterStats) clusterStats {
		a.Net.Messages += b.Net.Messages
		a.Net.Words += b.Net.Words
		a.Net.Bytes += b.Net.Bytes
		a.Ops.Add(b.Ops)
		a.Phase.Add(b.Phase)
		return a
	}, 14)
	return total.Net, total.Ops, total.Phase
}

// Seen returns the global number of items processed so far, as known by
// this node (no communication).
func (n *Node) Seen() int64 { return n.sampler.Seen() }

// MarshalState snapshots this node's sampler state (reservoir contents,
// thresholds, PRNG) as an opaque blob. Together with the round counter it
// is everything a crash-restarted node needs to resume bit-identically;
// internal/nodesvc persists one per round boundary.
func (n *Node) MarshalState() ([]byte, error) {
	m, ok := n.sampler.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		return nil, fmt.Errorf("reservoir: %T does not support state snapshots", n.sampler)
	}
	return m.MarshalBinary()
}

// RestoreState restores a MarshalState blob taken at the given round
// boundary on this node (same Config, same rank, same algorithm).
// Operation counters reset to zero; use RestoreCounters to reinstate
// persisted ones.
func (n *Node) RestoreState(blob []byte, round int) error {
	u, ok := n.sampler.(interface{ UnmarshalBinary([]byte) error })
	if !ok {
		return fmt.Errorf("reservoir: %T does not support state snapshots", n.sampler)
	}
	if err := u.UnmarshalBinary(blob); err != nil {
		return err
	}
	n.round = round
	return nil
}

// RestoreCounters reinstates operation counters zeroed by RestoreState.
func (n *Node) RestoreCounters(c Counters) {
	if r, ok := n.sampler.(interface{ RestoreCounters(core.Counters) }); ok {
		r.RestoreCounters(c)
	}
}

// ResetTags rewinds the node's collective tag sequence (see
// coll.Comm.Reset). Part of the cluster recovery protocol: every node
// resets in lockstep after the transport discarded the failed round's
// traffic. Outside recovery, never call this.
func (n *Node) ResetTags() { n.comm.Reset() }

// BroadcastValue distributes v from the root rank to every node of n's
// cluster and returns it on all of them (SPMD). It shares the node's
// collective tag sequence, so control planes built on it (like
// reservoir-serve's node mode, which broadcasts commands between rounds)
// stay in lockstep with the sampling collectives. words is v's size in
// 8-byte machine words under the cost model.
func BroadcastValue[T any](n *Node, root int, v T, words int) T {
	if root < 0 || root >= n.P() {
		panic(fmt.Sprintf("reservoir: broadcast root %d outside cluster of %d", root, n.P()))
	}
	return coll.Broadcast(n.comm, root, v, words)
}
