package reservoir

// Tests for the Node overlap driver: under Config.Pipeline a Node runs
// each round's StartScan on its own goroutine, concurrent with the
// previous round's FinishPending collectives, double-buffering the
// candidate set. The sample must stay byte-identical to the simulated
// Cluster, which runs the same three phases strictly in order — and the
// concurrent driver must be clean under the race detector (CI runs this
// package with -race).

import (
	"sync"
	"testing"

	"reservoir/internal/simnet"
)

// runNodes drives p Nodes SPMD over the in-process simulator's transport
// for the given rounds and returns rank 0's collected sample plus the
// accumulated phase stats.
func runNodes(t *testing.T, p, rounds int, cfg Config, src Source) ([]Item, []PhaseStats) {
	t.Helper()
	sim := simnet.NewCluster(p, simnet.DefaultCost())
	nodes := make([]*Node, p)
	for i := 0; i < p; i++ {
		n, err := NewNode(sim.PE(i), cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for r := 0; r < rounds; r++ {
		sim.Parallel(func(pe *simnet.PE) {
			nodes[pe.ID()].ProcessRound(src)
		})
	}
	var sample []Item
	var mu sync.Mutex
	sim.Parallel(func(pe *simnet.PE) {
		s := nodes[pe.ID()].CollectSample()
		if pe.ID() == 0 {
			mu.Lock()
			sample = s
			mu.Unlock()
		}
	})
	phases := make([]PhaseStats, p)
	for i, n := range nodes {
		phases[i] = n.PhaseStats()
	}
	return sample, phases
}

// TestNodeOverlapMatchesSequentialCluster pins the tentpole determinism
// contract: the overlapped pipelined driver and the simulator's
// sequential phase order produce byte-identical samples at shards 1 and
// 4, weighted and uniform.
func TestNodeOverlapMatchesSequentialCluster(t *testing.T) {
	const p, rounds, batch = 4, 10, 1500
	for _, shards := range []int{1, 4} {
		for _, weighted := range []bool{true, false} {
			cfg := Config{K: 64, Weighted: weighted, Seed: 21, Shards: shards, Pipeline: true}
			src := UniformSource{Seed: 33, BatchLen: batch, Lo: 0, Hi: 100}

			nodeSample, phases := runNodes(t, p, rounds, cfg, src)

			cl, err := NewCluster(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < rounds; r++ {
				cl.ProcessRound(src)
			}
			clSample := cl.Sample()

			if len(nodeSample) != len(clSample) {
				t.Fatalf("shards=%d weighted=%v: node sample %d items vs cluster %d",
					shards, weighted, len(nodeSample), len(clSample))
			}
			for i := range nodeSample {
				if nodeSample[i] != clSample[i] {
					t.Fatalf("shards=%d weighted=%v: sample[%d] differs: node %+v vs cluster %+v",
						shards, weighted, i, nodeSample[i], clSample[i])
				}
			}
			for rank, ph := range phases {
				if ph.RoundNS <= 0 || ph.ScanNS <= 0 {
					t.Errorf("shards=%d weighted=%v rank %d: phase stats not populated: %+v",
						shards, weighted, rank, ph)
				}
			}
		}
	}
}

// TestNodePipelineRaceStress hammers the double-buffered candidate set:
// many small rounds keep a selection pending at almost every StartScan,
// so the scan goroutine and the collective goroutine run concurrently
// every round. The assertions are the race detector's (CI runs -race)
// plus basic sample invariants.
func TestNodePipelineRaceStress(t *testing.T) {
	const p, rounds, batch, k = 4, 40, 2000, 128
	cfg := Config{K: k, Weighted: true, Seed: 77, Shards: 4, Pipeline: true}
	src := ParetoSource{Seed: 78, BatchLen: batch, Shape: 1.5}
	sample, phases := runNodes(t, p, rounds, cfg, src)
	if len(sample) != k {
		t.Fatalf("sample has %d items, want k=%d", len(sample), k)
	}
	seen := make(map[uint64]bool, len(sample))
	for _, it := range sample {
		if it.W <= 0 {
			t.Fatalf("sampled item %d has non-positive weight %v", it.ID, it.W)
		}
		if seen[it.ID] {
			t.Fatalf("item %d sampled twice (without-replacement violated)", it.ID)
		}
		seen[it.ID] = true
	}
	var overlap int64
	for _, ph := range phases {
		overlap += ph.OverlapNS
	}
	if overlap <= 0 {
		t.Error("no overlapped wall time recorded across 40 pipelined rounds")
	}
}
