package reservoir

import "reservoir/internal/transport"

// NetworkStats crosses the wire once per round (ClusterNetworkStats'
// all-reduction), so it gets a wire codec like the rest of the hot
// round traffic; see internal/transport/wire.go for the ID table and
// DESIGN.md §2.4 for the format.
func init() {
	transport.RegisterMarshaler(transport.WireIDNetworkStats,
		func(buf []byte, v NetworkStats) []byte {
			buf = transport.AppendVarint(buf, v.Messages)
			buf = transport.AppendVarint(buf, v.Words)
			return transport.AppendVarint(buf, v.Bytes)
		},
		func(d *transport.Dec) (NetworkStats, error) {
			return NetworkStats{
				Messages: d.Varint(),
				Words:    d.Varint(),
				Bytes:    d.Varint(),
			}, d.Err()
		})

	transport.RegisterMarshaler(transport.WireIDClusterStats,
		func(buf []byte, v clusterStats) []byte {
			buf = transport.AppendVarint(buf, v.Net.Messages)
			buf = transport.AppendVarint(buf, v.Net.Words)
			buf = transport.AppendVarint(buf, v.Net.Bytes)
			buf = transport.AppendVarint(buf, v.Ops.ItemsProcessed)
			buf = transport.AppendVarint(buf, v.Ops.Inserted)
			buf = transport.AppendVarint(buf, v.Ops.CandidateWords)
			buf = transport.AppendVarint(buf, v.Ops.Selections)
			buf = transport.AppendVarint(buf, v.Ops.SelectionRounds)
			buf = transport.AppendVarint(buf, v.Ops.GatheredSelections)
			buf = transport.AppendVarint(buf, v.Phase.ScanNS)
			buf = transport.AppendVarint(buf, v.Phase.CollNS)
			buf = transport.AppendVarint(buf, v.Phase.OverlapNS)
			buf = transport.AppendVarint(buf, v.Phase.RoundNS)
			return transport.AppendVarint(buf, v.Phase.FlushNS)
		},
		func(d *transport.Dec) (clusterStats, error) {
			return clusterStats{
				Net: NetworkStats{
					Messages: d.Varint(),
					Words:    d.Varint(),
					Bytes:    d.Varint(),
				},
				Ops: Counters{
					ItemsProcessed:     d.Varint(),
					Inserted:           d.Varint(),
					CandidateWords:     d.Varint(),
					Selections:         d.Varint(),
					SelectionRounds:    d.Varint(),
					GatheredSelections: d.Varint(),
				},
				Phase: PhaseStats{
					ScanNS:    d.Varint(),
					CollNS:    d.Varint(),
					OverlapNS: d.Varint(),
					RoundNS:   d.Varint(),
					FlushNS:   d.Varint(),
				},
			}, d.Err()
		})
}
