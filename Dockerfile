# Multi-stage build: static binaries into a distroless runtime image.
# The image ships the serving binary plus the two drivers CI uses to test
# what ships (reservoir-loadgen to ingest, reservoir-verify to replay-check
# the sample byte-for-byte) — all three are small static Go binaries.
#
#   docker build -t reservoir-serve .
#   docker run --rm -p 8080:8080 reservoir-serve
#
# See deploy/docker-compose.yml for a full 4-node cluster and
# docs/OPERATIONS.md for the metrics the containers expose.
FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
ENV CGO_ENABLED=0
RUN go build -trimpath -ldflags="-s -w" -o /out/reservoir-serve ./cmd/reservoir-serve \
 && go build -trimpath -ldflags="-s -w" -o /out/reservoir-loadgen ./cmd/reservoir-loadgen \
 && go build -trimpath -ldflags="-s -w" -o /out/reservoir-verify ./cmd/reservoir-verify \
 && mkdir -p /out/data

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/reservoir-serve /out/reservoir-loadgen /out/reservoir-verify /usr/local/bin/
# Pre-create /data owned by nonroot so named volumes mounted there inherit
# writable ownership (distroless has no shell to chown at runtime).
COPY --from=build --chown=nonroot:nonroot /out/data /data
USER nonroot
# 8080: HTTP API (service mode) / rank-0 control API (node mode).
# 9000: node-mode peer mesh.  9090: per-node /healthz + /metrics.
EXPOSE 8080 9000 9090
ENTRYPOINT ["/usr/local/bin/reservoir-serve"]
CMD ["-addr", ":8080", "-log-format", "json"]
