package reservoir_test

import (
	"fmt"

	"reservoir"
)

// ExampleNewWeighted draws a weighted sample from a single stream.
func ExampleNewWeighted() {
	s := reservoir.NewWeighted(3, 42)
	for i := uint64(0); i < 100_000; i++ {
		w := 1.0
		if i == 77 {
			w = 1e9 // one overwhelmingly heavy item
		}
		s.Process(reservoir.Item{W: w, ID: i})
	}
	for _, it := range s.Sample() {
		if it.ID == 77 {
			fmt.Println("heavy item sampled")
		}
	}
	// Output: heavy item sampled
}

// ExampleNewCluster runs the distributed sampler on a simulated cluster.
func ExampleNewCluster() {
	cfg := reservoir.Config{K: 50, Weighted: true, Seed: 1}
	cl, err := reservoir.NewCluster(4, cfg)
	if err != nil {
		panic(err)
	}
	src := reservoir.UniformSource{Seed: 2, BatchLen: 10_000, Lo: 0, Hi: 100}
	for round := 0; round < 3; round++ {
		cl.ProcessRound(src)
	}
	fmt.Println("sample size:", len(cl.Sample()))
	fmt.Println("rounds:", cl.Round())
	// Output:
	// sample size: 50
	// rounds: 3
}

// ExampleCluster_Snapshot persists and resumes a distributed sampler.
func ExampleCluster_Snapshot() {
	cfg := reservoir.Config{K: 20, Weighted: true, Seed: 7}
	cl, _ := reservoir.NewCluster(2, cfg)
	src := reservoir.UniformSource{Seed: 3, BatchLen: 1_000, Lo: 0, Hi: 10}
	cl.ProcessRound(src)

	blob, _ := cl.Snapshot()
	restored, _ := reservoir.RestoreCluster(cfg, blob)

	cl.ProcessRound(src)
	restored.ProcessRound(src)
	t1, _ := cl.Threshold()
	t2, _ := restored.Threshold()
	fmt.Println("identical thresholds:", t1 == t2)
	// Output: identical thresholds: true
}

// ExampleNewWindowed samples from a sliding window of recent items.
func ExampleNewWindowed() {
	s := reservoir.NewWindowed(4, 1_000, 100, 5)
	for i := uint64(0); i < 50_000; i++ {
		s.Process(reservoir.Item{W: 1, ID: i})
	}
	old := 0
	for _, it := range s.Sample() {
		if it.ID < 49_000 {
			old++
		}
	}
	fmt.Println("expired items in sample:", old)
	// Output: expired items in sample: 0
}
