// Benchmarks regenerating the paper's figures and tables at TinyScale
// (seconds-fast). One benchmark per figure/table; the full-size
// regeneration is cmd/reservoir-bench (see EXPERIMENTS.md). Reported
// custom metrics are virtual (cost-model) times and derived quantities, so
// they are deterministic across machines; ns/op is host wall time.
package reservoir_test

import (
	"io"
	"testing"

	"reservoir/internal/bench"
)

// BenchmarkFig3WeakScaling regenerates Figure 3 (weak scaling speedups of
// ours / ours-8 / gather over ours@1 node).
func BenchmarkFig3WeakScaling(b *testing.B) {
	s := bench.TinyScale()
	for i := 0; i < b.N; i++ {
		rows := bench.WeakScaling(s, io.Discard)
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "maxnode-speedup")
	}
}

// BenchmarkFig4StrongScaling regenerates Figure 4 (strong scaling
// speedups at fixed total batch size).
func BenchmarkFig4StrongScaling(b *testing.B) {
	s := bench.TinyScale()
	for i := 0; i < b.N; i++ {
		rows := bench.StrongScaling(s, io.Discard)
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "maxnode-speedup")
	}
}

// BenchmarkFig5ThroughputPerPE regenerates Figure 5 (per-PE throughput of
// the strong scaling runs, items per virtual second).
func BenchmarkFig5ThroughputPerPE(b *testing.B) {
	s := bench.TinyScale()
	for i := 0; i < b.N; i++ {
		rows := bench.StrongScaling(s, io.Discard)
		var ours float64
		for _, r := range rows {
			if r.Algo == "ours" {
				ours = r.Result.ThroughputPerPE
			}
		}
		b.ReportMetric(ours, "items/vsec/PE")
	}
}

// BenchmarkFig6Composition regenerates Figure 6 (running time composition
// of ours-8 vs gather, normalized to the slower algorithm).
func BenchmarkFig6Composition(b *testing.B) {
	s := bench.TinyScale()
	for i := 0; i < b.N; i++ {
		rows := bench.Composition(s, io.Discard)
		last := rows[len(rows)-1]
		b.ReportMetric(last.Gather.Gather, "gather-fraction")
	}
}

// BenchmarkTabRecursionDepth regenerates the Sec 6.3 in-text recursion
// depth study (single- vs multi-pivot selection).
func BenchmarkTabRecursionDepth(b *testing.B) {
	s := bench.TinyScale()
	for i := 0; i < b.N; i++ {
		rows := bench.RecursionDepth(s, io.Discard)
		last := rows[len(rows)-1]
		b.ReportMetric(last.Depth1, "depth-1pivot")
		b.ReportMetric(last.Depth8, "depth-8pivot")
	}
}

// BenchmarkTabInsertions regenerates the Lemma 2 / Theorem 3 insertion
// bound validation.
func BenchmarkTabInsertions(b *testing.B) {
	s := bench.TinyScale()
	for i := 0; i < b.N; i++ {
		rows := bench.InsertionBound(s, io.Discard)
		last := rows[len(rows)-1]
		b.ReportMetric(last.MeasuredMeanPerPE, "insertions/PE")
	}
}

// BenchmarkEndToEndRound measures the host-side cost of one distributed
// mini-batch round (16 PEs, 10k items each) — a wall-clock sanity
// benchmark of the whole stack.
func BenchmarkEndToEndRound(b *testing.B) {
	s := bench.TinyScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.Run(bench.RunParams{
			P: 16, K: 100, BatchPerPE: 10_000, Algo: bench.Algos()[1],
			Warmup: 1, Measure: 1, Seed: uint64(i), Model: s.Model,
		})
	}
}
