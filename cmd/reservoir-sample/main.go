// Command reservoir-sample draws a weighted (or uniform) random sample of k
// lines from stdin using the sequential reservoir samplers — a practical
// stream-sampling tool built on the library.
//
// Usage:
//
//	seq 1000000 | reservoir-sample -k 10
//	awk '{print $3, $0}' access.log | reservoir-sample -k 100 -weighted
//
// With -weighted, each line must start with a strictly positive weight
// followed by whitespace; the weight column is stripped from the output.
// Lines stream through in one pass with O(k) memory.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"reservoir"
)

func main() {
	k := flag.Int("k", 10, "sample size")
	weighted := flag.Bool("weighted", false, "first whitespace-separated field of each line is its weight")
	seed := flag.Uint64("seed", 42, "RNG seed")
	flag.Parse()
	if *k < 1 {
		fmt.Fprintln(os.Stderr, "reservoir-sample: -k must be >= 1")
		os.Exit(2)
	}

	// The samplers store item IDs; keep the sampled lines in a small
	// id->line map that we prune to the current sample periodically.
	lines := make(map[uint64]string, 2*(*k))
	var id uint64

	var sample func() []reservoir.Item
	var process func(weight float64)

	if *weighted {
		s := reservoir.NewWeighted(*k, *seed)
		sample = s.Sample
		process = func(w float64) { s.Process(reservoir.Item{W: w, ID: id}) }
	} else {
		s := reservoir.NewUniform(*k, *seed)
		sample = s.Sample
		process = func(w float64) { s.Process(reservoir.Item{W: w, ID: id}) }
	}

	prune := func() {
		keep := make(map[uint64]string, *k)
		for _, it := range sample() {
			keep[it.ID] = lines[it.ID]
		}
		lines = keep
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1024*1024), 1024*1024)
	for in.Scan() {
		line := in.Text()
		w := 1.0
		if *weighted {
			fields := strings.SplitN(strings.TrimSpace(line), " ", 2)
			if len(fields) == 0 || fields[0] == "" {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "reservoir-sample: skipping line with bad weight %q\n", fields[0])
				id++
				continue
			}
			w = v
			if len(fields) == 2 {
				line = fields[1]
			} else {
				line = ""
			}
		}
		lines[id] = line
		process(w)
		id++
		if len(lines) > 4*(*k)+64 {
			prune()
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "reservoir-sample: %v\n", err)
		os.Exit(1)
	}
	prune()
	for _, it := range sample() {
		fmt.Println(lines[it.ID])
	}
}
