// Command reservoir-verify runs the statistical validation suite: it
// checks, with chi-square goodness-of-fit tests, that every sampler in the
// library draws from the correct distribution.
//
//   - uniform samplers (sequential and distributed) against the exact k/n
//     inclusion probability,
//   - weighted samplers (sequential, distributed, gather baseline) against
//     the naive key-sorting oracle via a two-sample test,
//   - the sliding-window sampler against an oracle restricted to the
//     window.
//
// Exit status 0 means every check passed its significance threshold.
//
// With -json, the results are also written as a reservoir-bench/v1 report
// (one Result per check, metrics p_value and failed), so statistical
// drift is diffable across PRs — CI runs a small smoke on every PR and
// the full matrix on a weekly cron (see .github/workflows/ci.yml and
// docs/BENCHMARKS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reservoir"
	"reservoir/internal/bench"
	"reservoir/internal/stats"
)

func main() {
	trials := flag.Int("trials", 1500, "trials per check")
	n := flag.Int("n", 48, "stream length")
	k := flag.Int("k", 12, "sample size")
	p := flag.Int("p", 4, "PEs for distributed checks")
	alpha := flag.Float64("alpha", 1e-4, "rejection threshold (p-value)")
	seed := flag.Uint64("seed", 7, "base seed")
	jsonOut := flag.String("json", "", "also write a reservoir-bench/v1 report to this path")
	name := flag.String("name", "verify_stats", "report name for -json")
	match := flag.String("match", "", "verify a cluster sample dump (reservoir-loadgen -cluster -sample-out) against a simulator replay instead of running the statistical suite")
	acceptMode := flag.Bool("accept", false, "run the scenario acceptance harness (internal/stats/accept) instead of the classic suite")
	scenarios := flag.String("scenario", "all", "for -accept: comma-separated scenario presets, or \"all\"")
	algos := flag.String("algos", "sequential,distributed,gather", "for -accept: comma-separated algorithms")
	acceptTrials := flag.Int("accept-trials", 400, "for -accept: trials per (algorithm x scenario) cell")
	rounds := flag.Int("rounds", 8, "for -accept: rounds per trial")
	batch := flag.Int("batch", 64, "for -accept: mean items per PE per round")
	shards := flag.Int("shards", 0, "for -accept: logical scan-shard count for the cluster algorithms (0 = legacy single-stream scan)")
	acceptAlpha := flag.Float64("accept-alpha", 1e-3, "for -accept: family-wise significance level (Bonferroni-split across checks)")
	acceptOut := flag.String("accept-out", "", "for -accept: write the reservoir-accept/v1 verdict report to this path")
	mutant := flag.Bool("mutant", false, "for -accept: power check — swap in the deliberately biased sampler and require the suite to REJECT it")
	flag.Parse()

	if *match != "" {
		if err := runMatch(*match); err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-verify: match FAILED:", err)
			os.Exit(1)
		}
		return
	}

	if *acceptMode {
		err := runAccept(acceptOpts{
			scenarios: *scenarios,
			algos:     *algos,
			trials:    *acceptTrials,
			p:         *p,
			k:         *k,
			rounds:    *rounds,
			batch:     *batch,
			shards:    *shards,
			seed:      *seed,
			alpha:     *acceptAlpha,
			out:       *acceptOut,
			mutant:    *mutant,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-verify: accept FAILED:", err)
			os.Exit(1)
		}
		return
	}

	rep := bench.NewReport("reservoir-verify", *name)
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Params = map[string]any{
		"trials": *trials, "n": *n, "k": *k, "p": *p, "alpha": *alpha, "seed": *seed,
	}

	failures := 0
	check := func(name string, pval float64) {
		status := "ok"
		failed := 0.0
		if pval < *alpha {
			status = "FAIL"
			failures++
			failed = 1
		}
		rep.Add(name, nil, map[string]float64{"p_value": pval, "failed": failed})
		fmt.Printf("%-28s p=%.4g  %s\n", name, pval, status)
	}
	writeReport := func() {
		if *jsonOut == "" {
			return
		}
		if err := rep.WriteFile(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "writing", *jsonOut, ":", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d results to %s\n", len(rep.Results), *jsonOut)
	}

	weights := func(i int) float64 { return float64(i%5) + 0.5 }
	items := make(reservoir.SliceBatch, *n)
	for i := range items {
		items[i] = reservoir.Item{W: weights(i), ID: uint64(i)}
	}

	// Sequential uniform vs exact k/n.
	counts := make([]float64, *n)
	for tr := 0; tr < *trials; tr++ {
		s := reservoir.NewUniform(*k, *seed+uint64(tr)*13)
		for _, it := range items {
			s.Process(it)
		}
		for _, it := range s.Sample() {
			counts[it.ID]++
		}
	}
	expected := make([]float64, *n)
	for i := range expected {
		expected[i] = float64(*trials) * float64(*k) / float64(*n)
	}
	_, pv, err := stats.ChiSquare(counts, expected, 0)
	must(err)
	check("sequential-uniform", pv)

	// Sequential weighted vs oracle (two-sample).
	fast := runSeq(*trials, *k, items, *seed, false)
	oracle := runSeq(*trials, *k, items, *seed^0xFFFF, true)
	check("sequential-weighted", twoSampleP(fast, oracle))

	// Distributed weighted vs oracle.
	dist := runDist(*trials, *k, *p, items, *seed+1, reservoir.Distributed)
	check("distributed-weighted", twoSampleP(dist, oracle))

	// Gather baseline vs oracle.
	gather := runDist(*trials, *k, *p, items, *seed+2, reservoir.CentralizedGather)
	check("gather-weighted", twoSampleP(gather, oracle))

	// Windowed sampler vs oracle over the window (window = last half).
	win := make([]float64, *n)
	winOracle := make([]float64, *n)
	window := *n / 2
	for tr := 0; tr < *trials; tr++ {
		s := reservoir.NewWindowed(*k/2, window, window/4, *seed+uint64(tr)*29)
		for _, it := range items {
			s.Process(it)
		}
		for _, it := range s.Sample() {
			win[it.ID]++
		}
		o := reservoir.NewWeighted(*k/2, *seed^uint64(tr)*31+5)
		for _, it := range items[*n-window:] {
			o.Process(it)
		}
		for _, it := range o.Sample() {
			winOracle[it.ID]++
		}
	}
	check("windowed-weighted", twoSampleP(win, winOracle))

	writeReport()
	if failures > 0 {
		fmt.Printf("\n%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}

func runSeq(trials, k int, items reservoir.SliceBatch, seed uint64, oracle bool) []float64 {
	counts := make([]float64, len(items))
	for tr := 0; tr < trials; tr++ {
		var sample []reservoir.Item
		if oracle {
			// The naive oracle: explicit key per item, keep k smallest.
			// reservoir.NewWeighted with per-item processing IS the fast
			// path; for the oracle we use a large-k trick: sample of size
			// n sorted by key... Instead, reuse the library's windowed
			// sampler with window >= n, which keys every item explicitly.
			s := reservoir.NewWindowed(k, len(items), len(items), seed+uint64(tr)*41)
			for _, it := range items {
				s.Process(it)
			}
			sample = s.Sample()
		} else {
			s := reservoir.NewWeighted(k, seed+uint64(tr)*37)
			for _, it := range items {
				s.Process(it)
			}
			sample = s.Sample()
		}
		for _, it := range sample {
			counts[it.ID]++
		}
	}
	return counts
}

func runDist(trials, k, p int, items reservoir.SliceBatch, seed uint64, algo reservoir.Algorithm) []float64 {
	counts := make([]float64, len(items))
	for tr := 0; tr < trials; tr++ {
		cfg := reservoir.Config{K: k, Weighted: true, Seed: seed + uint64(tr)*17}
		cl, err := reservoir.NewCluster(p, cfg, reservoir.WithAlgorithm(algo))
		must(err)
		batches := make([]reservoir.SliceBatch, p)
		for i, it := range items {
			batches[i%p] = append(batches[i%p], it)
		}
		must(cl.ProcessBatches(batches))
		for _, it := range cl.Sample() {
			counts[it.ID]++
		}
	}
	return counts
}

func twoSampleP(a, b []float64) float64 {
	stat := 0.0
	df := 0
	for i := range a {
		if a[i]+b[i] == 0 {
			continue
		}
		d := a[i] - b[i]
		stat += d * d / (a[i] + b[i])
		df++
	}
	if df < 2 {
		return 0
	}
	return stats.ChiSquareSurvival(stat, float64(df-1))
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
