package main

import (
	"encoding/json"
	"fmt"
	"os"

	"reservoir"
	"reservoir/internal/nodesvc"
	"reservoir/internal/service"
)

// runMatch replays a multi-process cluster run on the in-process simulator
// and demands a byte-identical sample: the dump (written by
// reservoir-loadgen -cluster -sample-out) carries the full configuration
// and synthetic workload spec, and the sampler is deterministic given
// (seed, stream), so any divergence means the transport changed the
// algorithm's behavior. This is the production end of the transport
// equivalence suite: CI runs it against a real 4-process cluster.
func runMatch(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var dump nodesvc.SampleDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return fmt.Errorf("decoding %s: %w", path, err)
	}
	if dump.P < 1 || dump.K < 1 || dump.Rounds < 1 {
		return fmt.Errorf("%s: implausible dump (p=%d k=%d rounds=%d)", path, dump.P, dump.K, dump.Rounds)
	}

	// Shards and Pipeline are part of the sampling stream's identity (the
	// shard count decides which RNG substream draws which variate), so the
	// replay must run with the dump's values; the simulator's sequential
	// phase order then reproduces the pipelined cluster byte-for-byte
	// (DESIGN.md §2.6).
	cfg := reservoir.Config{
		K: dump.K, Weighted: !dump.Uniform, Seed: dump.Seed,
		Shards: dump.Shards, Pipeline: dump.Pipeline,
	}
	cl, err := reservoir.NewCluster(dump.P, cfg, reservoir.WithAlgorithm(dump.Algorithm))
	if err != nil {
		return err
	}
	src, err := dump.Synthetic.BuildSource(service.RunConfig{Seed: dump.Seed, Uniform: dump.Uniform})
	if err != nil {
		return fmt.Errorf("rebuilding synthetic source: %w", err)
	}
	for r := 0; r < dump.Rounds; r++ {
		cl.ProcessRound(src)
	}
	want := cl.Sample()

	if len(want) != len(dump.Sample) {
		return fmt.Errorf("sample size mismatch: simulator %d, cluster %d", len(want), len(dump.Sample))
	}
	for i := range want {
		got := dump.Sample[i]
		if want[i].W != got.W || want[i].ID != got.ID {
			return fmt.Errorf("sample[%d] mismatch: simulator {w:%v id:%d}, cluster {w:%v id:%d}",
				i, want[i].W, want[i].ID, got.W, got.ID)
		}
	}
	fmt.Printf("match %-22s p=%d k=%d algo=%s rounds=%d: %d items byte-identical to the simulator replay\n",
		path, dump.P, dump.K, dump.Algorithm, dump.Rounds, len(want))
	return nil
}
