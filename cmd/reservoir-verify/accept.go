package main

import (
	"fmt"
	"strings"
	"time"

	"reservoir/internal/stats/accept"
	"reservoir/internal/workload/scenario"
)

// acceptOpts collects the -accept mode flags (see main.go).
type acceptOpts struct {
	scenarios string // comma list of preset names, or "all"
	algos     string // comma list of algorithms
	trials    int
	p         int
	k         int
	rounds    int
	batch     int
	shards    int
	seed      uint64
	alpha     float64
	out       string // verdict report path ("" = stdout only)
	mutant    bool   // power check: swap in the biased sampler, expect REJECTED
}

// runAccept runs the statistical acceptance harness over the requested
// (algorithm × scenario) cells and returns an error when the verdict is
// wrong: a plain run must ACCEPT, a -mutant power check must REJECT.
func runAccept(o acceptOpts) error {
	scens, err := resolveScenarios(o.scenarios)
	if err != nil {
		return err
	}
	cfg := accept.Config{
		Algorithms: splitList(o.algos),
		Scenarios:  scens,
		Trials:     o.trials,
		P:          o.p,
		K:          o.k,
		Rounds:     o.rounds,
		BatchLen:   o.batch,
		Shards:     o.shards,
		Seed:       o.seed,
		Alpha:      o.alpha,
	}
	if o.mutant {
		// The power check only makes sense for the sequential cell: the
		// mutant replaces the sequential sampler factory.
		cfg.Algorithms = []string{"sequential"}
		cfg.Sequential = accept.NewMutantWeighted
	}
	rep, err := accept.Run(cfg)
	if err != nil {
		return err
	}
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	fmt.Print(rep.Summary())
	if o.out != "" {
		if err := rep.WriteFile(o.out); err != nil {
			return fmt.Errorf("writing %s: %w", o.out, err)
		}
		fmt.Printf("wrote verdict report to %s\n", o.out)
	}
	if o.mutant {
		if rep.Pass {
			return fmt.Errorf("power check FAILED: the deliberately biased sampler was ACCEPTED — the suite cannot detect a broken sampler at these settings")
		}
		fmt.Println("power check passed: biased mutant REJECTED")
		return nil
	}
	if !rep.Pass {
		return fmt.Errorf("acceptance FAILED: %s", strings.Join(rep.Failures(), ", "))
	}
	return nil
}

func resolveScenarios(list string) ([]scenario.Spec, error) {
	if list == "" || list == "all" {
		return scenario.Presets(), nil
	}
	var out []scenario.Spec
	for _, name := range splitList(list) {
		sp, ok := scenario.Preset(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenario.Names(), ", "))
		}
		out = append(out, sp)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
