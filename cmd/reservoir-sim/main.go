// Command reservoir-sim runs a single distributed sampling configuration on
// the simulated cluster and prints its measurements — a workbench for
// exploring the algorithms outside the fixed benchmark sweeps.
//
// Example:
//
//	reservoir-sim -p 64 -k 1000 -b 10000 -rounds 10 -algo ours-8
//	reservoir-sim -p 16 -k 500 -b 50000 -algo gather -uniform
//	reservoir-sim -p 16 -kmin 800 -kmax 1600 -b 10000   # variable size
package main

import (
	"flag"
	"fmt"
	"os"

	"reservoir"
)

func main() {
	p := flag.Int("p", 16, "number of simulated PEs")
	k := flag.Int("k", 1000, "sample size")
	kmin := flag.Int("kmin", 0, "variable mode: minimum sample size")
	kmax := flag.Int("kmax", 0, "variable mode: maximum sample size")
	b := flag.Int("b", 10000, "mini-batch size per PE")
	rounds := flag.Int("rounds", 10, "mini-batch rounds")
	algo := flag.String("algo", "ours", "algorithm: ours | ours-8 | gather")
	uniform := flag.Bool("uniform", false, "uniform (unweighted) sampling")
	skewed := flag.Bool("skewed", false, "skewed normal weights instead of uniform weights")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	cfg := reservoir.Config{
		K:              *k,
		KMin:           *kmin,
		KMax:           *kmax,
		Weighted:       !*uniform,
		Seed:           *seed,
		LocalThreshold: true,
		BlockedSkip:    true,
	}
	clAlgo := reservoir.Distributed
	switch *algo {
	case "ours":
		cfg.Strategy = reservoir.SelSinglePivot
	case "ours-8":
		cfg.Strategy = reservoir.SelMultiPivot
		cfg.Pivots = 8
	case "gather":
		clAlgo = reservoir.CentralizedGather
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	cl, err := reservoir.NewCluster(*p, cfg, reservoir.WithAlgorithm(clAlgo))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var src reservoir.Source = reservoir.UniformSource{Seed: *seed ^ 0xABCD, BatchLen: *b, Lo: 0, Hi: 100}
	if *skewed {
		src = reservoir.SkewedSource{Seed: *seed ^ 0xABCD, BatchLen: *b,
			BaseMean: 50, RoundInc: 10, RankInc: 1, SD: 10}
	}

	for r := 0; r < *rounds; r++ {
		cl.ProcessRound(src)
	}

	sample := cl.Sample()
	th, have := cl.Threshold()
	tm := cl.Timing()
	ns := cl.NetworkStats()
	c := cl.Counters()

	fmt.Printf("algorithm        %s (%s)\n", *algo, cl.Algorithm())
	fmt.Printf("PEs              %d\n", *p)
	fmt.Printf("rounds           %d x %d items/PE = %d items total\n", *rounds, *b, *rounds**b**p)
	fmt.Printf("sample size      %d\n", len(sample))
	if have {
		fmt.Printf("threshold        %.6g\n", th)
	} else {
		fmt.Printf("threshold        (none: fewer than k items seen)\n")
	}
	fmt.Printf("virtual time     %.3f ms (%.3f ms/round)\n", cl.VirtualTime()/1e6, cl.VirtualTime()/1e6/float64(*rounds))
	fmt.Printf("  scan/insert    %.3f ms\n", tm.ScanNS/1e6)
	fmt.Printf("  select         %.3f ms\n", tm.SelectNS/1e6)
	fmt.Printf("  threshold      %.3f ms\n", tm.ThresholdNS/1e6)
	if tm.GatherNS > 0 {
		fmt.Printf("  gather         %.3f ms\n", tm.GatherNS/1e6)
	}
	fmt.Printf("network          %d messages, %d words\n", ns.Messages, ns.Words)
	fmt.Printf("insertions       %d total (%.1f per PE per round)\n",
		c.Inserted, float64(c.Inserted)/float64(*p)/float64(*rounds))
	if c.Selections > 0 && clAlgo == reservoir.Distributed {
		fmt.Printf("selections       %d, avg recursion depth %.2f, %d finished in base case\n",
			c.Selections/int64(*p), float64(c.SelectionRounds)/float64(c.Selections), c.GatheredSelections/int64(*p))
	}
}
