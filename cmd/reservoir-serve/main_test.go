package main

import (
	"encoding/json"

	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"reservoir/internal/service"
)

// TestKillNineRecovery is the acceptance test of the durability layer at
// the process level: a real reservoir-serve process is SIGKILLed during
// sustained async ingest, restarted on the same -data directory, and must
// come back with every run listed, correct config and round counters, and
// a working ingest path. (Sample-level equivalence with an uninterrupted
// twin is asserted by the service-layer suite; a kill -9 has no
// deterministic stopping point to compare against.)
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "reservoir-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = append(os.Environ(), "CGO_ENABLED=0")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	addr := freeAddr(t)
	base := "http://" + addr

	srv := startServer(t, bin, addr, dataDir)
	waitHealthy(t, base)

	// Two runs: a distributed cluster (checkpointing aggressively) and a
	// sequential sampler.
	clusterID := createRunHTTP(t, base, `{"kind":"cluster","p":2,"k":32,"seed":3,"checkpoint_rounds":5}`)
	seqID := createRunHTTP(t, base, `{"kind":"sequential","k":16,"seed":4}`)

	// A durable baseline: rounds acknowledged synchronously before the
	// kill can never be lost.
	post(t, base+"/v1/runs/"+clusterID+"/batches?wait=true", `{"synthetic":{"batch_len":200,"rounds":6}}`, http.StatusOK)
	post(t, base+"/v1/runs/"+seqID+"/batches?wait=true", `{"synthetic":{"batch_len":200,"rounds":4}}`, http.StatusOK)

	// Sustained async ingest, then SIGKILL mid-stream.
	stop := make(chan struct{})
	go func() {
		body := `{"synthetic":{"batch_len":100,"rounds":2}}`
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Post(base+"/v1/runs/"+clusterID+"/batches", "application/json", strings.NewReader(body))
			if err != nil {
				return // server is gone: the kill landed
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(150 * time.Millisecond) // let ingest pile up
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	srv.Wait()
	close(stop)

	// Restart on the same data directory.
	srv2 := startServer(t, bin, addr, dataDir)
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()
	waitHealthy(t, base)

	var list struct {
		Runs []service.Stats `json:"runs"`
	}
	getJSON(t, base+"/v1/runs", &list)
	if len(list.Runs) != 2 {
		t.Fatalf("recovered %d runs, want 2", len(list.Runs))
	}
	byID := map[string]service.Stats{}
	for _, st := range list.Runs {
		byID[st.ID] = st
	}
	cl, ok := byID[clusterID]
	if !ok {
		t.Fatalf("cluster run %s not recovered (%v)", clusterID, list.Runs)
	}
	// At least the 6 synchronously acknowledged rounds survive; the async
	// stream may add more (every recovered round was accepted pre-kill).
	if cl.Rounds < 6 {
		t.Errorf("cluster recovered at round %d, want >= 6", cl.Rounds)
	}
	if cl.Kind != "cluster" || cl.P != 2 || cl.SampleSize != 32 {
		t.Errorf("cluster config mangled: %+v", cl)
	}
	if cl.ItemsProcessed < int64(cl.Rounds)*2*100 {
		t.Errorf("cluster items_processed %d inconsistent with %d rounds", cl.ItemsProcessed, cl.Rounds)
	}
	sq, ok := byID[seqID]
	if !ok || sq.Rounds != 4 || sq.SampleSize != 16 || sq.ItemsProcessed != 800 {
		t.Errorf("sequential run mangled: %+v (ok=%v)", sq, ok)
	}

	// The recovered service keeps working: more rounds, monotone counters.
	post(t, base+"/v1/runs/"+clusterID+"/batches?wait=true", `{"synthetic":{"batch_len":100,"rounds":2}}`, http.StatusOK)
	var st service.Stats
	getJSON(t, base+"/v1/runs/"+clusterID+"/stats", &st)
	if st.Rounds != cl.Rounds+2 {
		t.Errorf("post-recovery ingest: rounds %d, want %d", st.Rounds, cl.Rounds+2)
	}

	// /healthz reports the store.
	var hr service.HealthResponse
	getJSON(t, base+"/healthz", &hr)
	if hr.Store == nil || hr.Store.Runs != 2 {
		t.Errorf("healthz store section: %+v", hr.Store)
	}
}

func startServer(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-fsync", "off", "-quiet")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("server never became healthy")
}

func createRunHTTP(t *testing.T, base, cfg string) string {
	t.Helper()
	raw := post(t, base+"/v1/runs", cfg, http.StatusCreated)
	var cr service.CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("create run: %v: %s", err, raw)
	}
	return cr.ID
}

func post(t *testing.T, url, body string, want int) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("POST %s: %d (want %d): %s", url, resp.StatusCode, want, raw)
	}
	return raw
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, raw, err)
	}
}
