// Command reservoir-serve hosts the sampling library as a long-running
// HTTP service: clients create sampler runs (distributed clusters,
// sequential samplers, or sliding-window samplers), stream weighted
// mini-batches into them, and query samples, stats, and a live SSE metrics
// feed. Ingest is asynchronous by default (202 + bounded per-run queues
// with 429 backpressure; ?wait=true for synchronous rounds); reads are
// lock-free snapshot lookups. See docs/API.md for the full API reference
// and DESIGN.md §5 for the architecture.
//
// Usage:
//
//	reservoir-serve -addr :8080 [-queue 64]
//
// The server drains gracefully on SIGINT/SIGTERM: metric streams are
// closed, ingest workers stop at the next round boundary, in-flight
// requests complete, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reservoir/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable run lifecycle logging")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	queue := flag.Int("queue", 0, "default per-run ingest queue depth (0 = built-in default)")
	flag.Parse()

	logf := log.New(os.Stderr, "reservoir-serve: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	opts := []service.Option{service.WithLogger(logf)}
	if *queue > 0 {
		opts = append(opts, service.WithQueueDepth(*queue))
	}
	svc := service.New(opts...)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logf("listening on %s", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logf("shutting down (draining for up to %s)", *drain)
	svc.Close() // end SSE streams so Shutdown is not held open by them
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "reservoir-serve: shutdown:", err)
		os.Exit(1)
	}
	logf("bye")
}
