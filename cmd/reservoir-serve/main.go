// Command reservoir-serve hosts the sampling library as a long-running
// HTTP service: clients create sampler runs (distributed clusters,
// sequential samplers, or sliding-window samplers), stream weighted
// mini-batches into them, and query samples, stats, and a live SSE metrics
// feed. See DESIGN.md §5 and README.md for the API surface.
//
// Usage:
//
//	reservoir-serve -addr :8080
//
// The server drains gracefully on SIGINT/SIGTERM: metric streams are
// closed, in-flight requests complete, then the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reservoir/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	quiet := flag.Bool("quiet", false, "disable run lifecycle logging")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	flag.Parse()

	logf := log.New(os.Stderr, "reservoir-serve: ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	svc := service.New(service.WithLogger(logf))
	hs := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logf("listening on %s", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logf("shutting down (draining for up to %s)", *drain)
	svc.Close() // end SSE streams so Shutdown is not held open by them
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "reservoir-serve: shutdown:", err)
		os.Exit(1)
	}
	logf("bye")
}
