// Command reservoir-serve hosts the sampling library as a long-running
// HTTP service: clients create sampler runs (distributed clusters,
// sequential samplers, or sliding-window samplers), stream weighted
// mini-batches into them, and query samples, stats, and a live SSE metrics
// feed. Ingest is asynchronous by default (202 + bounded per-run queues
// with 429 backpressure; ?wait=true for synchronous rounds); reads are
// lock-free snapshot lookups. See docs/API.md for the full API reference
// and DESIGN.md §5-§6 for the architecture.
//
// Usage:
//
//	reservoir-serve -addr :8080 [-queue 64]
//	reservoir-serve -data /var/lib/reservoir [-fsync interval] \
//	    [-checkpoint-rounds 64] [-checkpoint-bytes 4194304]
//
// With -peers, the server instead runs in node mode: it becomes one PE of
// a real multi-process sampling cluster. Every process is started with the
// same rank-indexed peer list and its own -peer-id; the processes form a
// TCP mesh and execute the paper's Distributed (or CentralizedGather)
// algorithm collectively across the network, with rank 0 exposing the
// cluster control API (POST /v1/cluster/rounds, GET /v1/cluster/sample,
// GET /v1/cluster/stats, POST /v1/cluster/shutdown — see docs/DEPLOY.md):
//
//	reservoir-serve -peer-id 0 -peers host0:9000,host1:9000 -k 256 -seed 1
//	reservoir-serve -peer-id 1 -peers host0:9000,host1:9000 -k 256 -seed 1
//
// Node mode is chaos-hardened on demand: -rejoin-timeout plus a per-node
// -data store make the cluster survive kill -9 + restart of any node
// (rank 0 included) — each node checkpoints every round boundary, the
// survivors redial, and the cluster resyncs to the last common boundary
// and re-executes only the missing work, reproducing the byte-identical
// sample of an uninterrupted run. The -fault-* flags instead inject a
// deterministic seeded schedule of network faults (drops, duplicates,
// corrupt frames, delays; internal/transport/faultnet) that never
// changes the sample, only retries and latency. See docs/DEPLOY.md
// "Failure model" and "Chaos testing".
//
// With -data, every run is durable: its config and each ingest round are
// written to a per-run write-ahead log before the round applies, and full
// sampler snapshots are checkpointed periodically. After a crash or
// restart with the same -data directory, all runs recover — config, round
// counters, and reservoir contents — and continue the identical sampling
// stream (the PRNG state is part of the checkpoint).
//
// The server drains gracefully on SIGINT/SIGTERM: metric streams are
// closed, ingest workers stop at the next round boundary and write a
// final checkpoint, in-flight requests complete, then the listener shuts
// down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // -pprof: profiling endpoints on their own listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"reservoir/internal/metrics"
	"reservoir/internal/service"
	"reservoir/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (service and node mode; empty = off)")
	quiet := flag.Bool("quiet", false, "disable run lifecycle logging")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	metricsAddr := flag.String("metrics", "", "node mode: serve GET /healthz and GET /metrics on this address on every rank (empty = off; service mode exposes /metrics on -addr)")
	healthURL := flag.String("healthcheck", "", "probe the given URL and exit 0 on HTTP 2xx, 1 otherwise (container healthchecks; no server is started)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	queue := flag.Int("queue", 0, "default per-run ingest queue depth (0 = built-in default)")
	data := flag.String("data", "", "persistence directory (empty = in-memory only)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy with -data: always, interval, or off")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "fsync cadence for -fsync interval")
	ckRounds := flag.Int("checkpoint-rounds", 0, "default rounds between checkpoints (0 = built-in default, negative disables)")
	ckBytes := flag.Int64("checkpoint-bytes", 0, "default WAL bytes between checkpoints (0 = built-in default, negative disables)")
	peerID := flag.Int("peer-id", -1, "node mode: this process's rank in the -peers list")
	peers := flag.String("peers", "", "node mode: comma-separated rank-indexed peer list (host:port,...)")
	nodeK := flag.Int("k", 256, "node mode: sample size (identical on all nodes)")
	nodeSeed := flag.Uint64("seed", 1, "node mode: run seed (identical on all nodes)")
	nodeAlgo := flag.String("algo", "ours", "node mode: sampling algorithm, ours or gather (identical on all nodes)")
	nodeUniform := flag.Bool("uniform", false, "node mode: uniform (unweighted) sampling (identical on all nodes)")
	nodeShards := flag.Int("shards", 0, "node mode: fixed logical scan-shard count, part of the sampling stream's identity (identical on all nodes; 0 = legacy single-stream scan)")
	nodePipeline := flag.Bool("pipeline", false, "node mode: overlap each round's scan with the previous round's selection collectives (implies -shards >= 1; identical on all nodes)")
	formation := flag.Duration("formation-timeout", 60*time.Second, "node mode: cluster formation deadline")
	rejoin := flag.Duration("rejoin-timeout", 0, "node mode: tolerate node crash-restarts within this window (0 = strict reliable-PE semantics)")
	faultSeed := flag.Uint64("fault-seed", 1, "node mode: deterministic fault-injection schedule seed")
	faultDrop := flag.Float64("fault-drop", 0, "node mode: per-message drop (retransmit) probability [0,1)")
	faultDup := flag.Float64("fault-dup", 0, "node mode: per-message duplicate probability [0,1)")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "node mode: per-message corrupt-copy probability [0,1)")
	faultDelay := flag.Float64("fault-delay", 0, "node mode: per-message delay probability [0,1)")
	faultDelayNS := flag.Duration("fault-delay-ns", time.Millisecond, "node mode: latency charged per injected delay")
	flag.Parse()

	if *healthURL != "" {
		// Probe mode for distroless containers (no shell, no curl): the
		// image's own binary doubles as the compose/k8s health command.
		os.Exit(probe(*healthURL))
	}

	logger := buildLogger(*logFormat, *quiet)

	// Kubernetes-friendly fallbacks: a StatefulSet derives each pod's rank
	// from its pod index and ships it via the environment, where flags in
	// a shared pod template cannot differ per replica.
	if *peers == "" {
		*peers = os.Getenv("RESERVOIR_PEERS")
	}
	if *peerID < 0 {
		if v := os.Getenv("RESERVOIR_PEER_ID"); v != "" {
			id, err := strconv.Atoi(v)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reservoir-serve: RESERVOIR_PEER_ID=%q: %v\n", v, err)
				os.Exit(2)
			}
			*peerID = id
		}
	}

	if *pprofAddr != "" {
		// net/http/pprof registers its handlers on http.DefaultServeMux;
		// serve that mux on its own listener so profiling never shares a
		// port (or an auth story) with the service or control API.
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	if *peers != "" {
		fault := faultConfig{
			seed: *faultSeed, drop: *faultDrop, dup: *faultDup,
			corrupt: *faultCorrupt, delay: *faultDelay, delayNS: *faultDelayNS,
		}
		if fault.active() && *rejoin > 0 {
			// faultnet wraps the transport and hides the recovery
			// control surface; combining them would silently disable
			// crash-restart tolerance. Chaos runs use one or the other.
			fmt.Fprintln(os.Stderr, "reservoir-serve: -fault-* schedules and -rejoin-timeout are mutually exclusive")
			os.Exit(2)
		}
		if *data != "" && *rejoin <= 0 {
			// Persistence without the resync protocol could restore
			// nodes to checkpoints one round apart and silently diverge
			// the sample on the next ingest.
			fmt.Fprintln(os.Stderr, "reservoir-serve: node-mode -data requires -rejoin-timeout (recovery needs the resync protocol)")
			os.Exit(2)
		}
		runNode(nodeConfig{
			peerID:     *peerID,
			peers:      strings.Split(*peers, ","),
			addr:       *addr,
			k:          *nodeK,
			seed:       *nodeSeed,
			algo:       *nodeAlgo,
			uniform:    *nodeUniform,
			shards:     *nodeShards,
			pipeline:   *nodePipeline,
			formation:  *formation,
			rejoin:     *rejoin,
			data:       *data,
			fsync:      *fsync,
			fsyncEvery: *fsyncEvery,
			fault:      fault,
			metrics:    *metricsAddr,
			log:        logger,
		})
		return
	}
	if *peerID >= 0 {
		fmt.Fprintln(os.Stderr, "reservoir-serve: -peer-id requires -peers")
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	opts := []service.Option{service.WithLogger(logger), service.WithMetrics(reg)}
	if *queue > 0 {
		opts = append(opts, service.WithQueueDepth(*queue))
	}
	if *ckRounds != 0 || *ckBytes != 0 {
		opts = append(opts, service.WithCheckpointDefaults(*ckRounds, *ckBytes))
	}

	var st *store.Store
	if *data != "" {
		policy, err := store.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(2)
		}
		st, err = store.Open(*data, store.WithFsync(policy), store.WithFsyncInterval(*fsyncEvery), store.WithMetrics(reg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(1)
		}
		opts = append(opts, service.WithStore(st))
	}

	svc := service.New(opts...)
	if st != nil {
		if err := svc.Recover(); err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(1)
		}
		logger.Info("store open", "dir", *data, "fsync", *fsync, "recovered_runs", svc.RunCount())
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", drain.String())
	svc.Close() // end SSE streams, stop workers, write final checkpoints
	if st != nil {
		if err := st.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve: store close:", err)
		}
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sdCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "reservoir-serve: shutdown:", err)
		os.Exit(1)
	}
	logger.Info("bye")
}

// buildLogger assembles the process logger from the -log-format and
// -quiet flags. Everything below (service, nodesvc, transport) derives
// component-scoped children from it.
func buildLogger(format string, quiet bool) *slog.Logger {
	if quiet {
		return slog.New(slog.DiscardHandler)
	}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fmt.Fprintf(os.Stderr, "reservoir-serve: -log-format must be text or json, got %q\n", format)
		os.Exit(2)
		return nil
	}
}

// probe implements -healthcheck: one GET, exit status only.
func probe(url string) int {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve: healthcheck:", err)
		return 1
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		fmt.Fprintf(os.Stderr, "reservoir-serve: healthcheck: %s returned %s\n", url, resp.Status)
		return 1
	}
	return 0
}
