package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reservoir"
	"reservoir/internal/nodesvc"
	"reservoir/internal/transport/tcpnet"
)

// nodeConfig collects the node-mode flags.
type nodeConfig struct {
	peerID    int
	peers     []string
	addr      string
	k         int
	seed      uint64
	algo      string
	uniform   bool
	formation time.Duration
	logf      func(string, ...any)
}

// runNode turns this process into one PE of a multi-process cluster: dial
// the TCP mesh, then serve (rank 0) or follow (other ranks) until the
// cluster shuts down through the control API.
func runNode(cfg nodeConfig) {
	for i := range cfg.peers {
		cfg.peers[i] = strings.TrimSpace(cfg.peers[i])
		if cfg.peers[i] == "" {
			fmt.Fprintf(os.Stderr, "reservoir-serve: empty entry %d in -peers\n", i)
			os.Exit(2)
		}
	}
	if cfg.peerID < 0 || cfg.peerID >= len(cfg.peers) {
		fmt.Fprintf(os.Stderr, "reservoir-serve: -peer-id %d outside -peers list of %d\n", cfg.peerID, len(cfg.peers))
		os.Exit(2)
	}
	var algo reservoir.Algorithm
	if err := algo.UnmarshalText([]byte(cfg.algo)); err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(2)
	}
	// Sanity bound: gathers hold O(k) (distributed) or O(p·k) (gather
	// baseline) items in memory at the root; the transport fragments
	// arbitrarily large messages, so this protects memory, not framing.
	const maxNodeK = 1 << 21
	if cfg.k < 1 || cfg.k > maxNodeK {
		fmt.Fprintf(os.Stderr, "reservoir-serve: -k must be in [1, %d], got %d\n", maxNodeK, cfg.k)
		os.Exit(2)
	}

	cfg.logf("node %d/%d forming cluster (%s)", cfg.peerID, len(cfg.peers), cfg.algo)
	tr, err := tcpnet.Dial(tcpnet.Config{
		Rank:             cfg.peerID,
		Peers:            cfg.peers,
		FormationTimeout: cfg.formation,
		Logf:             cfg.logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}
	defer tr.Close()

	srv, err := nodesvc.New(nodesvc.Options{
		Conn:      tr,
		Config:    reservoir.Config{K: cfg.k, Weighted: !cfg.uniform, Seed: cfg.seed},
		Algorithm: algo,
		Addr:      cfg.addr,
		Logf:      cfg.logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}

	// Graceful cluster shutdown flows through the root's control API (the
	// shutdown command must reach every node collectively). A signal
	// therefore tears the transport down hard; log the distinction so
	// operators reach for POST /v1/cluster/shutdown first.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cfg.logf("node %d: signal received; closing transport (use POST /v1/cluster/shutdown on rank 0 for a clean stop)", cfg.peerID)
		tr.Close()
	}()

	if err := srv.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}
	cfg.logf("node %d: bye", cfg.peerID)
}
