package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"reservoir"
	"reservoir/internal/nodesvc"
	"reservoir/internal/store"
	"reservoir/internal/transport"
	"reservoir/internal/transport/faultnet"
	"reservoir/internal/transport/tcpnet"
)

// nodeConfig collects the node-mode flags.
type nodeConfig struct {
	peerID     int
	peers      []string
	addr       string
	k          int
	seed       uint64
	algo       string
	uniform    bool
	shards     int
	pipeline   bool
	formation  time.Duration
	rejoin     time.Duration
	data       string
	fsync      string
	fsyncEvery time.Duration
	fault      faultConfig
	logf       func(string, ...any)
}

// faultConfig collects the fault-injection flags (deterministic chaos
// without killing processes; see internal/transport/faultnet).
type faultConfig struct {
	seed                      uint64
	drop, dup, corrupt, delay float64
	delayNS                   time.Duration
}

func (f faultConfig) active() bool {
	return f.drop > 0 || f.dup > 0 || f.corrupt > 0 || f.delay > 0
}

// snapshotRetention is the per-node checkpoint history depth: enough for
// a restarted node to roll back to whichever round boundary the
// survivors agree on (the lockstep rounds keep the spread ≤ 1).
const snapshotRetention = 4

// runNode turns this process into one PE of a multi-process cluster: dial
// the TCP mesh, then serve (rank 0) or follow (other ranks) until the
// cluster shuts down through the control API.
func runNode(cfg nodeConfig) {
	for i := range cfg.peers {
		cfg.peers[i] = strings.TrimSpace(cfg.peers[i])
		if cfg.peers[i] == "" {
			fmt.Fprintf(os.Stderr, "reservoir-serve: empty entry %d in -peers\n", i)
			os.Exit(2)
		}
	}
	if cfg.peerID < 0 || cfg.peerID >= len(cfg.peers) {
		fmt.Fprintf(os.Stderr, "reservoir-serve: -peer-id %d outside -peers list of %d\n", cfg.peerID, len(cfg.peers))
		os.Exit(2)
	}
	var algo reservoir.Algorithm
	if err := algo.UnmarshalText([]byte(cfg.algo)); err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(2)
	}
	// Sanity bound: gathers hold O(k) (distributed) or O(p·k) (gather
	// baseline) items in memory at the root; the transport fragments
	// arbitrarily large messages, so this protects memory, not framing.
	const maxNodeK = 1 << 21
	if cfg.k < 1 || cfg.k > maxNodeK {
		fmt.Fprintf(os.Stderr, "reservoir-serve: -k must be in [1, %d], got %d\n", maxNodeK, cfg.k)
		os.Exit(2)
	}

	var st *store.Store
	if cfg.data != "" {
		policy, err := store.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(2)
		}
		st, err = store.Open(cfg.data,
			store.WithFsync(policy),
			store.WithFsyncInterval(cfg.fsyncEvery),
			store.WithSnapshotRetention(snapshotRetention))
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(1)
		}
		defer st.Close()
	}

	cfg.logf("node %d/%d forming cluster (%s)", cfg.peerID, len(cfg.peers), cfg.algo)
	tr, err := tcpnet.Dial(tcpnet.Config{
		Rank:             cfg.peerID,
		Peers:            cfg.peers,
		FormationTimeout: cfg.formation,
		RejoinTimeout:    cfg.rejoin,
		Logf:             cfg.logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}
	defer tr.Close()

	var conn transport.Conn = tr
	if cfg.fault.active() {
		cfg.logf("node %d: fault injection on (seed=%d drop=%g dup=%g corrupt=%g delay=%g)",
			cfg.peerID, cfg.fault.seed, cfg.fault.drop, cfg.fault.dup, cfg.fault.corrupt, cfg.fault.delay)
		conn = faultnet.New(tr, faultnet.Config{
			Seed:      cfg.fault.seed,
			Drop:      cfg.fault.drop,
			Duplicate: cfg.fault.dup,
			Corrupt:   cfg.fault.corrupt,
			Delay:     cfg.fault.delay,
			DelayNS:   float64(cfg.fault.delayNS),
			WallDelay: true, // tcpnet is wall-clock; Work alone charges nothing
		})
	}

	srv, err := nodesvc.New(nodesvc.Options{
		Conn: conn,
		Config: reservoir.Config{
			K: cfg.k, Weighted: !cfg.uniform, Seed: cfg.seed,
			Shards: cfg.shards, Pipeline: cfg.pipeline,
		},
		Algorithm: algo,
		Addr:      cfg.addr,
		Store:     st,
		Logf:      cfg.logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}

	// Graceful cluster shutdown flows through the root's control API (the
	// shutdown command must reach every node collectively). A signal
	// therefore tears the transport down hard; log the distinction so
	// operators reach for POST /v1/cluster/shutdown first.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cfg.logf("node %d: signal received; closing transport (use POST /v1/cluster/shutdown on rank 0 for a clean stop)", cfg.peerID)
		tr.Close()
	}()

	if err := srv.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}
	cfg.logf("node %d: bye", cfg.peerID)
}
