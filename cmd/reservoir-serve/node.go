package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"reservoir"
	"reservoir/internal/metrics"
	"reservoir/internal/nodesvc"
	"reservoir/internal/store"
	"reservoir/internal/transport"
	"reservoir/internal/transport/faultnet"
	"reservoir/internal/transport/tcpnet"
)

// nodeConfig collects the node-mode flags.
type nodeConfig struct {
	peerID     int
	peers      []string
	addr       string
	k          int
	seed       uint64
	algo       string
	uniform    bool
	shards     int
	pipeline   bool
	formation  time.Duration
	rejoin     time.Duration
	data       string
	fsync      string
	fsyncEvery time.Duration
	fault      faultConfig
	metrics    string // ops listen address for /healthz + /metrics ("" = off)
	log        *slog.Logger
}

// faultConfig collects the fault-injection flags (deterministic chaos
// without killing processes; see internal/transport/faultnet).
type faultConfig struct {
	seed                      uint64
	drop, dup, corrupt, delay float64
	delayNS                   time.Duration
}

func (f faultConfig) active() bool {
	return f.drop > 0 || f.dup > 0 || f.corrupt > 0 || f.delay > 0
}

// snapshotRetention is the per-node checkpoint history depth: enough for
// a restarted node to roll back to whichever round boundary the
// survivors agree on (the lockstep rounds keep the spread ≤ 1).
const snapshotRetention = 4

// signalGrace bounds how long a signalled node may keep unwinding before
// the process force-exits — under docker/k8s defaults (10s/30s before
// SIGKILL) the node must die on its own to log that it did.
const signalGrace = 8 * time.Second

// runNode turns this process into one PE of a multi-process cluster: dial
// the TCP mesh, then serve (rank 0) or follow (other ranks) until the
// cluster shuts down through the control API.
func runNode(cfg nodeConfig) {
	for i := range cfg.peers {
		cfg.peers[i] = strings.TrimSpace(cfg.peers[i])
		if cfg.peers[i] == "" {
			fmt.Fprintf(os.Stderr, "reservoir-serve: empty entry %d in -peers\n", i)
			os.Exit(2)
		}
	}
	if cfg.peerID < 0 || cfg.peerID >= len(cfg.peers) {
		fmt.Fprintf(os.Stderr, "reservoir-serve: -peer-id %d outside -peers list of %d\n", cfg.peerID, len(cfg.peers))
		os.Exit(2)
	}
	var algo reservoir.Algorithm
	if err := algo.UnmarshalText([]byte(cfg.algo)); err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(2)
	}
	// Sanity bound: gathers hold O(k) (distributed) or O(p·k) (gather
	// baseline) items in memory at the root; the transport fragments
	// arbitrarily large messages, so this protects memory, not framing.
	const maxNodeK = 1 << 21
	if cfg.k < 1 || cfg.k > maxNodeK {
		fmt.Fprintf(os.Stderr, "reservoir-serve: -k must be in [1, %d], got %d\n", maxNodeK, cfg.k)
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	var st *store.Store
	if cfg.data != "" {
		policy, err := store.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(2)
		}
		st, err = store.Open(cfg.data,
			store.WithFsync(policy),
			store.WithFsyncInterval(cfg.fsyncEvery),
			store.WithSnapshotRetention(snapshotRetention),
			store.WithMetrics(reg))
		if err != nil {
			fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
			os.Exit(1)
		}
		defer st.Close()
	}

	cfg.log.Info("forming cluster", "rank", cfg.peerID, "p", len(cfg.peers), "algo", cfg.algo)
	tr, err := tcpnet.Dial(tcpnet.Config{
		Rank:             cfg.peerID,
		Peers:            cfg.peers,
		FormationTimeout: cfg.formation,
		RejoinTimeout:    cfg.rejoin,
		Log:              cfg.log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}
	defer tr.Close()

	registerTransportMetrics(reg, tr, cfg.peerID, len(cfg.peers))

	var conn transport.Conn = tr
	if cfg.fault.active() {
		cfg.log.Info("fault injection on", "rank", cfg.peerID,
			"seed", cfg.fault.seed, "drop", cfg.fault.drop, "dup", cfg.fault.dup,
			"corrupt", cfg.fault.corrupt, "delay", cfg.fault.delay)
		conn = faultnet.New(tr, faultnet.Config{
			Seed:      cfg.fault.seed,
			Drop:      cfg.fault.drop,
			Duplicate: cfg.fault.dup,
			Corrupt:   cfg.fault.corrupt,
			Delay:     cfg.fault.delay,
			DelayNS:   float64(cfg.fault.delayNS),
			WallDelay: true, // tcpnet is wall-clock; Work alone charges nothing
		})
	}

	srv, err := nodesvc.New(nodesvc.Options{
		Conn: conn,
		Config: reservoir.Config{
			K: cfg.k, Weighted: !cfg.uniform, Seed: cfg.seed,
			Shards: cfg.shards, Pipeline: cfg.pipeline,
		},
		Algorithm: algo,
		Addr:      cfg.addr,
		Store:     st,
		Log:       cfg.log,
		Metrics:   reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}

	if cfg.metrics != "" {
		// Every rank serves its own readiness and local metrics — rank 0's
		// control API duplicates both, but followers have no other HTTP
		// surface, and k8s probes each pod individually.
		ops := &http.Server{
			Addr:              cfg.metrics,
			Handler:           srv.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			cfg.log.Info("ops listening", "rank", cfg.peerID, "addr", cfg.metrics)
			if err := ops.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				cfg.log.Error("ops server failed", "rank", cfg.peerID, "err", err)
			}
		}()
		defer ops.Close()
	}

	// Graceful cluster shutdown flows through the root's control API (the
	// shutdown command must reach every node collectively). A signal
	// therefore tears the transport down hard; log the distinction so
	// operators reach for POST /v1/cluster/shutdown first.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cfg.log.Info("signal received; closing transport (use POST /v1/cluster/shutdown on rank 0 for a clean stop)", "rank", cfg.peerID)
		tr.Close()
		// Ranks blocked in a collective unblock immediately, but an idle
		// rank 0 waits on its command queue, which a transport close does
		// not wake. Signals must terminate within a container runtime's
		// stop grace period, so force the issue after ours.
		time.Sleep(signalGrace)
		cfg.log.Error("run did not unwind after transport close; exiting", "rank", cfg.peerID)
		os.Exit(1)
	}()

	if err := srv.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "reservoir-serve:", err)
		os.Exit(1)
	}
	cfg.log.Info("bye", "rank", cfg.peerID)
}

// registerTransportMetrics exposes the live per-peer tcpnet counters as
// scrape-time Func instruments: zero hot-path cost beyond the atomics the
// transport already maintains. The self row is skipped (always zero).
func registerTransportMetrics(reg *metrics.Registry, tr *tcpnet.Transport, rank, p int) {
	peerLabel := []string{"peer"}
	for peer := 0; peer < p; peer++ {
		if peer == rank {
			continue
		}
		pe := peer
		lv := []string{strconv.Itoa(pe)}
		reg.CounterFunc("reservoir_transport_messages_total",
			"Data-plane messages sent to the peer.", peerLabel, lv,
			func() float64 { return float64(tr.PeerStats()[pe].Messages) })
		reg.CounterFunc("reservoir_transport_words_total",
			"Cost-model words sent to the peer.", peerLabel, lv,
			func() float64 { return float64(tr.PeerStats()[pe].Words) })
		reg.CounterFunc("reservoir_transport_bytes_total",
			"Framed wire bytes sent to the peer (coalesced frames included).", peerLabel, lv,
			func() float64 { return float64(tr.PeerStats()[pe].Bytes) })
		reg.CounterFunc("reservoir_transport_retries_total",
			"Redial attempts toward the peer after a connection loss.", peerLabel, lv,
			func() float64 { return float64(tr.PeerStats()[pe].Retries) })
	}
	reg.CounterFunc("reservoir_transport_flush_seconds_total",
		"Cumulative wall time spent in coalesced flushes.", nil, nil,
		func() float64 { return float64(tr.FlushNS()) / 1e9 })
}
