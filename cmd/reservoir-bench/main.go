// Command reservoir-bench regenerates the paper's evaluation (Sec 6):
//
//	reservoir-bench -exp weak         # Figure 3: weak scaling speedups
//	reservoir-bench -exp strong       # Figures 4+5: strong scaling + throughput
//	reservoir-bench -exp composition  # Figure 6: running time composition
//	reservoir-bench -exp depth        # Sec 6.3: selection recursion depth
//	reservoir-bench -exp insertions   # Lemma 2 / Theorem 3 validation
//	reservoir-bench -exp all          # everything
//
// Scales: -scale tiny|small|paper (default small). "paper" uses the paper's
// full parameters (20 PEs/node, up to 256 nodes, batches up to 10^6) and
// can run for many hours; "small" shrinks every dimension ~10-20x and
// reproduces all qualitative shapes in minutes (see DESIGN.md §2).
//
// Reported times are virtual: deterministic cost-model time of the
// simulated machine, not wall-clock time of this process.
//
// With -json PATH the structured results are additionally written as a
// BENCH_*.json report in the shared schema of internal/bench (the same
// format reservoir-loadgen emits); see docs/BENCHMARKS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"reservoir/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: weak|strong|composition|depth|insertions|ablation|all")
	scaleName := flag.String("scale", "small", "parameter scale: tiny|small|paper")
	pesPerNode := flag.Int("pes-per-node", 0, "override PEs per node")
	rounds := flag.Int("rounds", 0, "override measured rounds per configuration")
	seed := flag.Uint64("seed", 0, "override RNG seed")
	jsonPath := flag.String("json", "", "also write results as a BENCH_*.json report to this path")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "tiny":
		scale = bench.TinyScale()
	case "small":
		scale = bench.SmallScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *pesPerNode > 0 {
		scale.PEsPerNode = *pesPerNode
	}
	if *rounds > 0 {
		scale.Measure = *rounds
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	start := time.Now()
	fmt.Printf("reservoir-bench: scale=%s, %d PEs/node, nodes %v (virtual times; deterministic)\n",
		scale.Name, scale.PEsPerNode, scale.Nodes)

	rep := bench.NewReport("reservoir-bench", "paper_"+*exp)
	rep.CreatedAt = start.UTC().Format(time.RFC3339)
	rep.Params = map[string]any{
		"scale": scale.Name, "exp": *exp, "pes_per_node": scale.PEsPerNode,
		"measure_rounds": scale.Measure, "seed": scale.Seed,
	}
	run := func(name string, f func()) {
		t := time.Now()
		f()
		fmt.Printf("\n[%s done in %v wall time]\n", name, time.Since(t).Round(time.Millisecond))
	}
	weak := func() { rep.AddFigRows(bench.WeakScaling(scale, os.Stdout)) }
	strong := func() { rep.AddFigRows(bench.StrongScaling(scale, os.Stdout)) }
	composition := func() { rep.AddCompositionRows(bench.Composition(scale, os.Stdout)) }
	depth := func() { rep.AddDepthRows(bench.RecursionDepth(scale, os.Stdout)) }
	insertions := func() { rep.AddInsertionRows(bench.InsertionBound(scale, os.Stdout)) }
	ablation := func() { rep.AddAblationRows(bench.Ablation(scale, os.Stdout)) }
	switch *exp {
	case "weak":
		run("weak", weak)
	case "strong":
		run("strong", strong)
	case "composition":
		run("composition", composition)
	case "depth":
		run("depth", depth)
	case "insertions":
		run("insertions", insertions)
	case "ablation":
		run("ablation", ablation)
	case "all":
		run("weak", weak)
		run("strong", strong)
		run("composition", composition)
		run("depth", depth)
		run("insertions", insertions)
		run("ablation", ablation)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		if err := rep.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d results to %s\n", len(rep.Results), *jsonPath)
	}
	fmt.Printf("\ntotal wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
