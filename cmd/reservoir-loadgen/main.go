// Command reservoir-loadgen drives the reservoir-serve HTTP API with a
// configurable mix of concurrent runs, clients, and batch sizes and emits
// a machine-readable BENCH_*.json report (throughput, p50/p95/p99 request
// latency, allocation counters) in the shared schema of internal/bench —
// the wall-clock counterpart of reservoir-bench's virtual-time paper
// experiments, and the baseline every service-scaling PR is judged
// against (see docs/BENCHMARKS.md).
//
//	reservoir-loadgen                              # in-process server, default grid
//	reservoir-loadgen -addr http://host:8080       # external server
//	reservoir-loadgen -clients 1,4,16 -batch 1000,10000 -mode wait
//	reservoir-loadgen -scenario all -out BENCH_service_scenarios.json
//	reservoir-loadgen -out BENCH_service_baseline.json
//	reservoir-loadgen -data /tmp/rsv -fsync always # measure persistence overhead
//
// Unless -addr points at an external server, the service is hosted
// in-process on a loopback listener: requests still cross the full HTTP
// stack, and the allocation counters then cover server and client
// together (alloc metrics of an external server are not visible and
// reported as client-side only).
//
// Modes: -mode wait posts every round with ?wait=true and measures the
// full round-trip (queue + round) latency; -mode async posts
// fire-and-forget 202s, counts 429 backpressure rejections (retried with
// backoff), measures submit latency, and waits for the queue to drain
// before stamping throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"reservoir/internal/bench"
	"reservoir/internal/service"
	"reservoir/internal/store"
	"reservoir/internal/workload/scenario"
)

type config struct {
	addr      string
	cluster   string
	out       string
	name      string
	kind      string
	algo      string
	p         int
	k         int
	runs      int
	clients   []int
	batch     []int
	rounds    int
	mode      string
	source    string
	scenario  string
	scens     []scenario.Spec
	seed      uint64
	queue     int
	data      string
	fsync     string
	sampleOut string
	chaos     bool
	chaosWait time.Duration
	interval  time.Duration
}

func main() {
	var cfg config
	var clientsFlag, batchFlag string
	flag.StringVar(&cfg.addr, "addr", "", "target server base URL (default: host the service in-process)")
	flag.StringVar(&cfg.cluster, "cluster", "", "drive a multi-process cluster: base URL of the rank-0 node (reservoir-serve -peers)")
	flag.StringVar(&cfg.out, "out", "BENCH_service_baseline.json", "output report path")
	flag.StringVar(&cfg.name, "name", "service_baseline", "report name")
	flag.StringVar(&cfg.kind, "kind", "cluster", "run kind: cluster|sequential|windowed")
	flag.StringVar(&cfg.algo, "algo", "ours", "sampling algorithm for cluster runs: ours (distributed) or gather (centralized baseline)")
	flag.IntVar(&cfg.p, "p", 4, "PEs per cluster run")
	flag.IntVar(&cfg.k, "k", 256, "sample size per run")
	flag.IntVar(&cfg.runs, "runs", 2, "concurrent runs (shards) per configuration")
	flag.StringVar(&clientsFlag, "clients", "1,4,8", "comma-separated concurrent ingest clients per run")
	flag.StringVar(&batchFlag, "batch", "1000,10000", "comma-separated items per PE per round")
	flag.IntVar(&cfg.rounds, "rounds", 20, "rounds each client posts")
	flag.StringVar(&cfg.mode, "mode", "wait", "ingest mode: wait (sync 200) or async (202 + drain)")
	flag.StringVar(&cfg.source, "source", "synthetic", "round payload: synthetic (server-side) or explicit (JSON batches)")
	flag.StringVar(&cfg.scenario, "scenario", "", "comma-separated workload scenario presets (or \"all\") to bench instead of the primitive uniform source; with -cluster exactly one")
	flag.Uint64Var(&cfg.seed, "seed", 0xC0FFEE, "run seed")
	flag.IntVar(&cfg.queue, "queue", 0, "per-run ingest queue depth (0 = server default)")
	flag.StringVar(&cfg.data, "data", "", "persistence directory for the in-process server (empty = persistence off; ignored with -addr)")
	flag.StringVar(&cfg.fsync, "fsync", "interval", "WAL fsync policy with -data: always, interval, or off")
	flag.StringVar(&cfg.sampleOut, "sample-out", "", "with -cluster: write the merged sample as a verifiable dump for reservoir-verify -match")
	flag.BoolVar(&cfg.chaos, "chaos", false, "with -cluster: tolerate node kill/restart cycles — retry requests through connection errors and control-plane downtime")
	flag.DurationVar(&cfg.chaosWait, "chaos-timeout", 3*time.Minute, "with -chaos: give up after this long without a successful request")
	flag.DurationVar(&cfg.interval, "interval", 0, "with -cluster: pause between round requests (gives a chaos harness time to inject faults mid-run)")
	flag.Parse()

	var err error
	if cfg.clients, err = parseInts(clientsFlag); err != nil {
		fatalf("-clients: %v", err)
	}
	if cfg.batch, err = parseInts(batchFlag); err != nil {
		fatalf("-batch: %v", err)
	}
	if cfg.mode != "wait" && cfg.mode != "async" {
		fatalf("-mode must be wait or async, got %q", cfg.mode)
	}
	if cfg.source != "synthetic" && cfg.source != "explicit" {
		fatalf("-source must be synthetic or explicit, got %q", cfg.source)
	}
	if cfg.algo != "ours" && cfg.algo != "gather" {
		fatalf("-algo must be ours or gather, got %q", cfg.algo)
	}
	if cfg.sampleOut != "" && cfg.cluster == "" {
		fatalf("-sample-out requires -cluster")
	}
	if cfg.scenario != "" {
		if cfg.source == "explicit" {
			fatalf("-scenario requires -source synthetic (scenarios are generated server-side)")
		}
		if cfg.scens, err = parseScenarios(cfg.scenario); err != nil {
			fatalf("-scenario: %v", err)
		}
		if cfg.cluster != "" && len(cfg.scens) != 1 {
			fatalf("-cluster needs exactly one -scenario (the sample dump replays one stream), got %d", len(cfg.scens))
		}
	}
	if (cfg.chaos || cfg.interval > 0) && cfg.cluster == "" {
		fatalf("-chaos and -interval require -cluster")
	}

	if cfg.cluster != "" {
		runClusterBench(cfg)
		return
	}

	base := cfg.addr
	inProcess := base == ""
	if inProcess {
		var opts []service.Option
		var st *store.Store
		if cfg.data != "" {
			policy, err := store.ParseFsyncPolicy(cfg.fsync)
			if err != nil {
				fatalf("%v", err)
			}
			if st, err = store.Open(cfg.data, store.WithFsync(policy)); err != nil {
				fatalf("%v", err)
			}
			defer st.Close()
			opts = append(opts, service.WithStore(st))
		}
		svc := service.New(opts...)
		if err := svc.Recover(); err != nil {
			fatalf("%v", err)
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("listen: %v", err)
		}
		hs := &http.Server{Handler: svc.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		persist := "persistence off"
		if cfg.data != "" {
			persist = fmt.Sprintf("data=%s fsync=%s", cfg.data, cfg.fsync)
		}
		fmt.Printf("reservoir-loadgen: in-process server on %s (%s)\n", base, persist)
	} else {
		fmt.Printf("reservoir-loadgen: targeting %s\n", base)
	}

	maxConns := cfg.runs * maxInt(cfg.clients)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConns + 8,
		MaxIdleConnsPerHost: maxConns + 8,
	}}

	rep := bench.NewReport("reservoir-loadgen", cfg.name)
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	// -data only applies to the in-process server; against an external
	// server the report must not claim a persistence mode it didn't test.
	persistence := "off"
	if inProcess && cfg.data != "" {
		persistence = cfg.fsync
	}
	rep.Params = map[string]any{
		"kind": cfg.kind, "algo": cfg.algo, "p": cfg.p, "k": cfg.k, "runs": cfg.runs,
		"rounds_per_client": cfg.rounds, "mode": cfg.mode, "source": cfg.source,
		"in_process": inProcess, "seed": cfg.seed, "queue_depth": cfg.queue,
		"persistence": persistence,
	}

	// With -scenario the grid gains an outer axis: every preset is
	// benched at every (clients, batch) point. A nil entry keeps the
	// legacy primitive-uniform grid when no scenarios were requested.
	scens := []*scenario.Spec{nil}
	if len(cfg.scens) > 0 {
		scens = scens[:0]
		for i := range cfg.scens {
			scens = append(scens, &cfg.scens[i])
		}
		rep.Params["scenarios"] = cfg.scenario
	}
	for _, sc := range scens {
		for _, nClients := range cfg.clients {
			for _, batch := range cfg.batch {
				res := runConfig(client, base, cfg, nClients, batch, sc)
				name := fmt.Sprintf("clients=%d,batch=%d", nClients, batch)
				params := map[string]any{"clients": nClients, "batch": batch, "runs": cfg.runs, "mode": cfg.mode}
				if sc != nil {
					name = "scenario=" + sc.Name + "," + name
					params["scenario"] = sc.Name
				}
				rep.Add(name, params, res)
				fmt.Printf("%-28s %12.0f items/s  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  (%d reqs, %d rejected)\n",
					name, res["throughput_items_per_s"], res["latency_p50_ms"],
					res["latency_p95_ms"], res["latency_p99_ms"],
					int(res["requests"]), int(res["rejected_429"]))
			}
		}
	}

	if err := rep.WriteFile(cfg.out); err != nil {
		fatalf("writing %s: %v", cfg.out, err)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), cfg.out)
}

// runConfig measures one (clients, batch[, scenario]) point: cfg.runs
// fresh runs, each fed by nClients concurrent clients posting cfg.rounds
// rounds.
func runConfig(client *http.Client, base string, cfg config, nClients, batch int, sc *scenario.Spec) map[string]float64 {
	runIDs := make([]string, cfg.runs)
	for i := range runIDs {
		runIDs[i] = createRun(client, base, cfg, i)
	}
	defer func() {
		for _, id := range runIDs {
			req, _ := http.NewRequest("DELETE", base+"/v1/runs/"+id, nil)
			if resp, err := client.Do(req); err == nil {
				drainClose(resp)
			}
		}
	}()

	body := `{"synthetic":{"batch_len":` + strconv.Itoa(batch) + `}}`
	if sc != nil {
		b, err := json.Marshal(map[string]any{
			"synthetic": service.SyntheticSpec{BatchLen: batch, Scenario: sc},
		})
		if err != nil {
			fatalf("encoding scenario spec: %v", err)
		}
		body = string(b)
	}
	if cfg.source == "explicit" {
		body = explicitBody(cfg.p, batch, cfg.seed)
	}
	path := "/batches"
	if cfg.mode == "wait" {
		path = "/batches?wait=true"
	}

	totalReqs := cfg.runs * nClients * cfg.rounds
	durs := make([]time.Duration, 0, totalReqs)
	var mu sync.Mutex
	var errs, rejected int
	// okByRun counts successfully submitted rounds (200/202) per run, so
	// throughput reflects rounds that actually ran, not the requested
	// count — errors must not inflate the baseline.
	okByRun := make([]int64, cfg.runs)

	var msBefore runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	var wg sync.WaitGroup
	for runIdx, id := range runIDs {
		url := base + "/v1/runs/" + id + path
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			go func(runIdx int, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				var local []time.Duration
				var localOK, localErrs, localRej int
				for r := 0; r < cfg.rounds; r++ {
					for {
						t0 := time.Now()
						resp, err := client.Post(url, "application/json", strings.NewReader(body))
						if err != nil {
							localErrs++
							break
						}
						code := resp.StatusCode
						drainClose(resp)
						if code == http.StatusTooManyRequests {
							localRej++
							// Backpressure: retry with jittered backoff.
							time.Sleep(time.Duration(500+rng.Intn(1500)) * time.Microsecond)
							continue
						}
						local = append(local, time.Since(t0))
						if code == http.StatusOK || code == http.StatusAccepted {
							localOK++
						} else {
							localErrs++
						}
						break
					}
				}
				mu.Lock()
				durs = append(durs, local...)
				okByRun[runIdx] += int64(localOK)
				errs += localErrs
				rejected += localRej
				mu.Unlock()
			}(runIdx, int64(cfg.seed)+int64(runIdx)*1_000_003+int64(c)*7919)
		}
	}
	wg.Wait()

	totalRounds := 0
	for i, id := range runIDs {
		if cfg.mode == "async" {
			// Fire-and-forget submissions: wait until every accepted
			// round has been processed before stamping throughput.
			waitDrained(client, base, id, int(okByRun[i]))
		}
		totalRounds += int(okByRun[i])
	}
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	totalItems := float64(totalRounds) * float64(cfg.p*batch)
	perRound := func(v float64) float64 {
		if totalRounds == 0 {
			return 0 // avoid NaN (unmarshalable) when every round failed
		}
		return v / float64(totalRounds)
	}
	m := map[string]float64{
		"throughput_items_per_s": totalItems / elapsed.Seconds(),
		"rounds_per_s":           float64(totalRounds) / elapsed.Seconds(),
		"wall_s":                 elapsed.Seconds(),
		"requests":               float64(len(durs)),
		"errors":                 float64(errs),
		"rejected_429":           float64(rejected),
		"allocs_per_round":       perRound(float64(msAfter.Mallocs - msBefore.Mallocs)),
		"alloc_bytes_per_round":  perRound(float64(msAfter.TotalAlloc - msBefore.TotalAlloc)),
	}
	bench.Summarize(durs).Metrics("latency", m)
	return m
}

func createRun(client *http.Client, base string, cfg config, i int) string {
	rc := map[string]any{"kind": cfg.kind, "k": cfg.k, "seed": cfg.seed + uint64(i)}
	if cfg.kind == "cluster" {
		rc["p"] = cfg.p
		rc["algorithm"] = cfg.algo
	}
	if cfg.queue > 0 {
		rc["queue_depth"] = cfg.queue
	}
	body, _ := json.Marshal(rc)
	resp, err := client.Post(base+"/v1/runs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		fatalf("create run: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		fatalf("create run: %s: %s", resp.Status, raw)
	}
	var cr service.CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		fatalf("create run: decoding %q: %v", raw, err)
	}
	return cr.ID
}

// waitDrained polls stats until the run has completed the expected rounds
// (or 30s pass), so async throughput covers processing, not just submits.
func waitDrained(client *http.Client, base, id string, rounds int) {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/v1/runs/" + id + "/stats")
		if err == nil {
			var st service.Stats
			err = json.NewDecoder(resp.Body).Decode(&st)
			drainClose(resp)
			if err == nil && st.Rounds >= rounds && st.PendingRounds == 0 {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "warning: run %s did not drain %d rounds in 30s\n", id, rounds)
}

// explicitBody builds one explicit-batch ingest request: p batches of n
// deterministic weighted items (the weights matter for the samplers, the
// repeated IDs do not matter for throughput measurement).
func explicitBody(p, n int, seed uint64) string {
	var b strings.Builder
	b.Grow(p * n * 24)
	b.WriteString(`{"batches":[`)
	id := seed
	for pe := 0; pe < p; pe++ {
		if pe > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			id = id*6364136223846793005 + 1442695040888963407
			w := 1 + float64(id%997)/10
			fmt.Fprintf(&b, `{"w":%g,"id":%d}`, w, id)
		}
		b.WriteByte(']')
	}
	b.WriteString(`]}`)
	return b.String()
}

func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseScenarios(list string) ([]scenario.Spec, error) {
	if list == "all" {
		return scenario.Presets(), nil
	}
	var out []scenario.Spec
	for _, part := range strings.Split(list, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		sp, ok := scenario.Preset(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (have: %s)", name, strings.Join(scenario.Names(), ", "))
		}
		out = append(out, sp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty scenario list")
	}
	return out, nil
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
