package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"reservoir/internal/bench"
	"reservoir/internal/nodesvc"
	"reservoir/internal/service"
)

// runClusterBench drives a live multi-process cluster (reservoir-serve
// node mode) through its rank-0 control API: one round per request, wall
// clock latency per round, and the cluster-wide traffic deltas from the
// stats endpoint. With -sample-out it additionally fetches the merged
// sample and writes a dump that reservoir-verify -match can replay on the
// simulator — the end-to-end determinism check of the multi-process path.
// clusterClient issues control-API requests, optionally surviving chaos:
// with -chaos, connection errors and 5xx responses (a node was killed,
// the cluster is resyncing, rank 0 itself is restarting) are retried
// with backoff until -chaos-timeout passes without any success. A round
// acknowledged by the cluster but whose response was lost to a rank-0
// kill may execute once more on retry; that keeps the dump verifiable —
// reservoir-verify -match replays exactly the executed round count from
// the final stats.
type clusterClient struct {
	hc    *http.Client
	base  string
	chaos bool
	wait  time.Duration
}

// do runs one request until it succeeds (2xx) or retries are exhausted.
func (c *clusterClient) do(what string, req func() (*http.Response, error)) []byte {
	deadline := time.Now().Add(c.wait)
	for {
		resp, err := req()
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode/100 == 2 {
				return data
			}
			err = fmt.Errorf("%s: %s", resp.Status, data)
		}
		if !c.chaos {
			fatalf("%s: %v", what, err)
		}
		if time.Now().After(deadline) {
			fatalf("%s: still failing after %s of chaos retries: %v", what, c.wait, err)
		}
		fmt.Printf("reservoir-loadgen: %s failed (%v); retrying\n", what, err)
		time.Sleep(500 * time.Millisecond)
	}
}

// stats fetches the cluster stats snapshot. With refresh, the root runs a
// collective stats command first: it drains any selection still pending
// from a defer_stats round and re-aggregates counters across all PEs, so
// the result reflects every posted round (the cached snapshot can lag
// when rounds defer their stats publication).
func (c *clusterClient) stats(refresh bool) nodesvc.Stats {
	url := c.base + "/v1/cluster/stats"
	if refresh {
		url += "?refresh=1"
	}
	data := c.do("cluster stats", func() (*http.Response, error) {
		return c.hc.Get(url)
	})
	var st nodesvc.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		fatalf("decoding cluster stats %q: %v", data, err)
	}
	return st
}

func runClusterBench(cfg config) {
	client := &clusterClient{
		hc:    &http.Client{Timeout: 5 * time.Minute},
		base:  cfg.cluster,
		chaos: cfg.chaos,
		wait:  cfg.chaosWait,
	}
	base := cfg.cluster

	initial := client.stats(false)
	fmt.Printf("reservoir-loadgen: cluster at %s: p=%d k=%d algo=%s seed=%d rounds=%d\n",
		base, initial.P, initial.K, initial.Algorithm, initial.Seed, initial.Rounds)
	if cfg.sampleOut != "" {
		if len(cfg.batch) != 1 {
			fatalf("-sample-out needs a single -batch value (the dump replays one uniform stream), got %d", len(cfg.batch))
		}
		if initial.Rounds != 0 {
			fatalf("-sample-out needs a fresh cluster (rounds=0), this one already ran %d rounds", initial.Rounds)
		}
	}

	rep := bench.NewReport("reservoir-loadgen", cfg.name)
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	rep.Params = map[string]any{
		"mode": "cluster", "p": initial.P, "k": initial.K,
		"algo": initial.Algorithm.String(), "seed": initial.Seed,
		"uniform": initial.Uniform, "rounds_per_point": cfg.rounds,
		"shards": initial.Shards, "pipeline": initial.Pipeline,
	}
	if len(cfg.scens) == 1 {
		rep.Params["scenario"] = cfg.scens[0].Name
	}

	var lastSpec service.SyntheticSpec
	for _, batch := range cfg.batch {
		before := client.stats(true)
		spec := service.SyntheticSpec{BatchLen: batch, Rounds: 1}
		if len(cfg.scens) == 1 {
			// Scenario streams derive from (seed, pe, round) like the
			// primitive sources, so the dump still replays byte-identically
			// under reservoir-verify -match.
			spec.Scenario = &cfg.scens[0]
		}
		lastSpec = spec
		// defer_stats keeps the pipeline full across HTTP requests: each
		// round's selection collective stays in flight while the next
		// request's broadcast and scan proceed, instead of being drained
		// for a per-round stats AllReduce nobody reads. The refreshed
		// stats calls around the loop recover the counters collectively.
		body, _ := json.Marshal(map[string]any{"synthetic": spec, "defer_stats": true})

		durs := make([]time.Duration, 0, cfg.rounds)
		start := time.Now()
		for r := 0; r < cfg.rounds; r++ {
			t0 := time.Now()
			client.do(fmt.Sprintf("round %d", r), func() (*http.Response, error) {
				return client.hc.Post(base+"/v1/cluster/rounds", "application/json", bytes.NewReader(body))
			})
			durs = append(durs, time.Since(t0))
			if os.Getenv("LOADGEN_TRACE") != "" {
				fmt.Printf("round %3d  %8.2fms\n", r, time.Since(t0).Seconds()*1e3)
			}
			if cfg.interval > 0 {
				time.Sleep(cfg.interval)
			}
		}
		elapsed := time.Since(start)
		after := client.stats(true)

		rounds := after.Rounds - before.Rounds
		items := after.ItemsProcessed - before.ItemsProcessed
		m := map[string]float64{
			"throughput_items_per_s": float64(items) / elapsed.Seconds(),
			"rounds_per_s":           float64(rounds) / elapsed.Seconds(),
			"wall_s":                 elapsed.Seconds(),
			"requests":               float64(len(durs)),
			"messages":               float64(after.Network.Messages - before.Network.Messages),
			"words":                  float64(after.Network.Words - before.Network.Words),
			"net_bytes":              float64(after.Network.Bytes - before.Network.Bytes),
			"messages_per_round":     perRoundF(after.Network.Messages-before.Network.Messages, rounds),
			"words_per_round":        perRoundF(after.Network.Words-before.Network.Words, rounds),
			"selection_rounds":       float64(after.SelectionRounds - before.SelectionRounds),
		}
		// Per-phase breakdown (summed across all PEs; zero on pre-sharded
		// clusters that don't track phases). round_overlap_pct is the
		// fraction of round wall time where the scan ran concurrently with
		// the previous round's selection collectives — the direct measure
		// of how much pipelining is actually hiding.
		scanNS := after.ScanNS - before.ScanNS
		roundNS := after.RoundNS - before.RoundNS
		if items > 0 {
			m["scan_ns_per_item"] = float64(scanNS) / float64(items)
		}
		if roundNS > 0 {
			m["round_overlap_pct"] = 100 * float64(after.OverlapNS-before.OverlapNS) / float64(roundNS)
		}
		m["scan_us_per_round"] = perRoundF(scanNS, rounds) / 1e3
		m["coll_us_per_round"] = perRoundF(after.CollNS-before.CollNS, rounds) / 1e3
		m["flush_us_per_round"] = perRoundF(after.FlushNS-before.FlushNS, rounds) / 1e3
		bench.Summarize(durs).Metrics("latency", m)
		name := fmt.Sprintf("batch=%d", batch)
		rep.Add(name, map[string]any{"batch": batch, "rounds": cfg.rounds}, m)
		fmt.Printf("%-20s %12.0f items/s  p50 %7.2fms  p95 %7.2fms  %8.0f msgs (%d rounds)\n",
			name, m["throughput_items_per_s"], m["latency_p50_ms"], m["latency_p95_ms"],
			m["messages"], rounds)
	}

	if cfg.sampleOut != "" {
		writeSampleDump(client, base, cfg.sampleOut, lastSpec)
	}
	if err := rep.WriteFile(cfg.out); err != nil {
		fatalf("writing %s: %v", cfg.out, err)
	}
	fmt.Printf("wrote %d results to %s\n", len(rep.Results), cfg.out)
}

// writeSampleDump captures the cluster's merged sample plus everything a
// replay needs into one self-describing file.
func writeSampleDump(client *clusterClient, base, path string, spec service.SyntheticSpec) {
	st := client.stats(true) // refresh: the final round may have deferred its stats
	data := client.do("fetching sample", func() (*http.Response, error) {
		return client.hc.Get(base + "/v1/cluster/sample")
	})
	var sr nodesvc.SampleResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		fatalf("decoding sample: %v", err)
	}
	dump := nodesvc.SampleDump{
		P:         st.P,
		K:         st.K,
		Algorithm: st.Algorithm,
		Uniform:   st.Uniform,
		Shards:    st.Shards,
		Pipeline:  st.Pipeline,
		Seed:      st.Seed,
		Rounds:    st.Rounds,
		Synthetic: spec,
		Sample:    sr.Items,
	}
	data, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		fatalf("encoding sample dump: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("wrote %d-item sample dump to %s (verify with: reservoir-verify -match %s)\n",
		len(sr.Items), path, path)
}

func perRoundF(v int64, rounds int) float64 {
	if rounds == 0 {
		return 0
	}
	return float64(v) / float64(rounds)
}
