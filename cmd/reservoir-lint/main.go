// Command reservoir-lint runs the repo's invariant analyzers
// (internal/analysis: determinism, tagdiscipline, faultpanic, walorder,
// gobwire) over Go packages and reports violations grep-style. It is
// the machine check behind DESIGN.md's "Machine-checked invariants"
// section and a hard CI gate.
//
// Usage:
//
//	reservoir-lint [flags] [packages]
//
// with the usual go-tool package patterns (default ./...). Exit status
// is 1 if any violation is found, 2 on operational errors.
//
// Flags:
//
//	-list               print the analyzers and their invariants
//	-waivers            print the waiver census (analyzer, site, reason)
//	-waiver-table FILE  cross-check the census against FILE's markdown
//	                    waiver table (DESIGN.md): every live waiver must
//	                    have a row with a matching count, and every row a
//	                    live waiver — so the waiver count cannot grow
//	                    without a reviewed diff to the table
//	-C DIR              run from DIR instead of the current directory
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"reservoir/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("reservoir-lint", flag.ExitOnError)
	list := fs.Bool("list", false, "print the analyzers and their invariants")
	waivers := fs.Bool("waivers", false, "print the waiver census")
	tableFile := fs.String("waiver-table", "", "cross-check the waiver census against this file's markdown waiver table")
	chdir := fs.String("C", "", "run from this directory")
	fs.Parse(args)

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reservoir-lint: %v\n", err)
		return 2
	}

	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	rel := func(name string) string {
		if r, err := filepath.Rel(absDir, name); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(name)
	}

	nDiags := 0
	var census []analysis.Waiver
	for _, pkg := range pkgs {
		res, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reservoir-lint: %v\n", err)
			return 2
		}
		for _, d := range res.Diagnostics {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			nDiags++
		}
		census = append(census, res.Waivers...)
	}

	if *waivers {
		printCensus(census, rel)
	}
	if *tableFile != "" {
		if !checkWaiverTable(*tableFile, census, rel) {
			return 1
		}
	}
	if nDiags > 0 {
		fmt.Fprintf(os.Stderr, "reservoir-lint: %d violation(s)\n", nDiags)
		return 1
	}
	return 0
}

// printCensus writes the waiver census: one line per waiver plus a
// per-analyzer summary, stable across runs.
func printCensus(census []analysis.Waiver, rel func(string) string) {
	byAnalyzer := make(map[string]int)
	fmt.Printf("waiver census: %d waiver(s)\n", len(census))
	for _, w := range census {
		byAnalyzer[w.Analyzer]++
		fmt.Printf("  %s:%d: %s -- %s\n", rel(w.Pos.Filename), w.Pos.Line, w.Analyzer, w.Reason)
	}
	names := make([]string, 0, len(byAnalyzer))
	for n := range byAnalyzer {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-14s %d\n", n, byAnalyzer[n])
	}
}

// tableRowRE matches one row of the DESIGN.md waiver table:
// | analyzer | `file` | count | reason |
var tableRowRE = regexp.MustCompile(`^\|\s*([a-z][a-z0-9-]*)\s*\|\s*` + "`" + `([^` + "`" + `|]+)` + "`" + `\s*\|\s*(\d+)\s*\|`)

// checkWaiverTable compares the live waiver census against the
// documented waiver table: every (analyzer, file) pair must appear with
// an exact count, and every table row must correspond to live waivers.
// A mismatch in either direction fails, so adding a waiver (or an extra
// one in an already-waived file) forces a reviewed diff to the table.
func checkWaiverTable(file string, census []analysis.Waiver, rel func(string) string) bool {
	f, err := os.Open(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reservoir-lint: waiver table: %v\n", err)
		return false
	}
	defer f.Close()

	documented := make(map[string]int) // "analyzer file" -> count
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := tableRowRE.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[3])
		documented[m[1]+" "+strings.TrimSpace(m[2])] += n
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "reservoir-lint: waiver table: %v\n", err)
		return false
	}

	live := make(map[string]int)
	for _, w := range census {
		live[w.Analyzer+" "+rel(w.Pos.Filename)]++
	}

	ok := true
	keys := make([]string, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if documented[k] != live[k] {
			fmt.Fprintf(os.Stderr, "reservoir-lint: waiver table: %s has %d live waiver(s) but the table documents %d "+
				"(update the waiver table in %s)\n", k, live[k], documented[k], file)
			ok = false
		}
	}
	dkeys := make([]string, 0, len(documented))
	for k := range documented {
		dkeys = append(dkeys, k)
	}
	sort.Strings(dkeys)
	for _, k := range dkeys {
		if live[k] == 0 {
			fmt.Fprintf(os.Stderr, "reservoir-lint: waiver table: %s is documented in %s but has no live waiver "+
				"(remove the stale row)\n", k, file)
			ok = false
		}
	}
	return ok
}
