// Package distsel implements distributed selection from sorted sequences
// (paper Sec 3.3): every PE holds a locally sorted sequence (its reservoir
// B+ tree) and the PEs jointly determine the key with a given global rank.
//
// Implemented variants:
//
//   - KthSmallest: the universally applicable algorithm of Sec 3.3.3 with
//     single- or multi-pivot sampling ("ours" / "ours-d" in the paper's
//     experiments). Pivots are the globally smallest keys of a Bernoulli
//     sample of the active items (success probability d/k̂, or mirrored at
//     d/(N−k+1) when the target rank is in the upper half), found with one
//     all-reduction; one more all-reduction counts items per pivot, then
//     the algorithm accepts a pivot or recurses on the bracketing interval.
//   - ApproxSelect (amsSelect, Sec 3.3.2): like KthSmallest but accepts any
//     pivot whose rank falls in [kLo, kHi], giving expected-constant
//     recursion depth when kHi−kLo = Ω(k/d).
//   - RandomDistKth (Sec 3.3.1): for randomly distributed inputs, brackets
//     the target with two pivots from a √p-sized global sample, then
//     finishes exactly within the bracket.
//   - UnsortedKth (Sec 3.3.4): fallback selection over unsorted local
//     slices with uniformly random pivots.
//
// All functions are SPMD-collective: every PE must call them with the same
// parameters in the same order. Local sequence operations are abstracted by
// Seq, so callers can wrap them with virtual-time charging.
//
// internal/core's DistPE drives these selections once per mini-batch round
// to find the new global insertion threshold; their recursion depth is the
// "selection_rounds" counter surfaced by the service stats API and the
// Sec 6.3 depth experiment of internal/bench.
package distsel

import (
	"fmt"
	"math"
	"sort"

	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/rng"
)

// Seq is one PE's locally sorted key sequence.
type Seq interface {
	// Len returns the number of local keys.
	Len() int
	// CountLeq returns the number of local keys <= k.
	CountLeq(k btree.Key) int
	// Select returns the local key with the given 1-based rank.
	Select(rank int) (btree.Key, bool)
}

// TreeSeq adapts a reservoir B+ tree to Seq.
type TreeSeq[V any] struct{ T *btree.Tree[V] }

// Len implements Seq.
func (s TreeSeq[V]) Len() int { return s.T.Len() }

// CountLeq implements Seq.
func (s TreeSeq[V]) CountLeq(k btree.Key) int { return s.T.CountLeq(k) }

// Select implements Seq.
func (s TreeSeq[V]) Select(rank int) (btree.Key, bool) {
	k, _, ok := s.T.Select(rank)
	return k, ok
}

// KeySlice adapts an ascending-sorted []btree.Key to Seq.
type KeySlice []btree.Key

// Len implements Seq.
func (s KeySlice) Len() int { return len(s) }

// CountLeq implements Seq.
func (s KeySlice) CountLeq(k btree.Key) int {
	return sort.Search(len(s), func(i int) bool { return k.Less(s[i]) })
}

// Select implements Seq.
func (s KeySlice) Select(rank int) (btree.Key, bool) {
	if rank < 1 || rank > len(s) {
		return btree.Key{}, false
	}
	return s[rank-1], true
}

// Options tunes the selection algorithms.
type Options struct {
	// Pivots is the number of pivots d used per round (1 = the paper's
	// "ours", 8 = "ours-8"). Defaults to 1.
	Pivots int
	// BaseCase is the active-size cutoff below which the remaining
	// candidates are gathered at a root PE and selected exactly.
	// Defaults to 128 (and at least 2*Pivots).
	BaseCase int
	// MaxRounds bounds the sampling recursion; when exceeded, the
	// algorithm falls back to the exact gather base case. Defaults to 60.
	MaxRounds int
	// KnownN, when positive, is the caller-supplied global size of the
	// full sequence union (sum over PEs of Seq.CountLeq(MaxKey)). The
	// sampler's selection step already holds this from its size
	// all-reduction; passing it here skips a redundant collective at
	// selection entry. Every PE must pass the same value (SPMD).
	KnownN int
	// RNG is this PE's private random source (required).
	RNG rng.Source
}

func (o Options) withDefaults() Options {
	if o.Pivots < 1 {
		o.Pivots = 1
	}
	if o.BaseCase < 2*o.Pivots {
		o.BaseCase = 128
		if o.BaseCase < 2*o.Pivots {
			o.BaseCase = 2 * o.Pivots
		}
	}
	if o.MaxRounds < 1 {
		o.MaxRounds = 60
	}
	if o.RNG == nil {
		panic("distsel: Options.RNG is required")
	}
	return o
}

// Result describes a completed selection.
type Result struct {
	// Key is the selected key; its global rank is Rank.
	Key btree.Key
	// Rank is the realized global rank (== k for exact selection, within
	// [kLo, kHi] for approximate selection).
	Rank int
	// Rounds is the number of pivot-sampling rounds (the recursion depth
	// of Sec 6.3's depth study).
	Rounds int
	// Gathered reports whether the exact gather base case finished the
	// selection.
	Gathered bool
}

const keyWords = 2 // a Key is one float64 plus one uint64

// KthSmallest selects the key with global rank k (1-based) over the union
// of all PEs' sequences (paper Sec 3.3.3).
func KthSmallest(c *coll.Comm, s Seq, k int, opt Options) Result {
	return selectRange(c, s, k, k, btree.MinKey, btree.MaxKey, 0, opt.withDefaults())
}

// ApproxSelect selects a key whose global rank lies in [kLo, kHi]
// (amsSelect, paper Sec 3.3.2). With kHi-kLo = Ω(k/d) the expected number
// of rounds is constant.
func ApproxSelect(c *coll.Comm, s Seq, kLo, kHi int, opt Options) Result {
	if kLo > kHi {
		panic(fmt.Sprintf("distsel: invalid approximate range [%d, %d]", kLo, kHi))
	}
	return selectRange(c, s, kLo, kHi, btree.MinKey, btree.MaxKey, 0, opt.withDefaults())
}

// selectRange is the shared engine: select a key whose global rank (within
// the whole sequence) lies in [kLo, kHi], restricted to the key interval
// (lo, hi], where offset is the global number of keys <= lo.
func selectRange(c *coll.Comm, s Seq, kLo, kHi int, lo, hi btree.Key, offset int, opt Options) Result {
	d := opt.Pivots
	loCount := s.CountLeq(lo)
	hiCount := s.CountLeq(hi)
	cnt := hiCount - loCount
	// The initial call spans the whole key space, so the global active
	// count is the union size — use the caller's value when it has one
	// (the sampler just reduced it) instead of reducing it again.
	var n int
	if opt.KnownN > 0 && lo == btree.MinKey && hi == btree.MaxKey {
		n = opt.KnownN
	} else {
		n = coll.AllReduce(c, cnt, coll.SumInt, 1)
	}
	rounds := 0
	for {
		tLo, tHi := kLo-offset, kHi-offset
		if tLo < 1 || tLo > n {
			panic(fmt.Sprintf("distsel: target rank %d outside active range of %d items", tLo, n))
		}
		if tHi > n {
			tHi = n
		}
		if n <= opt.BaseCase || rounds >= opt.MaxRounds {
			r := gatherSelect(c, s, loCount, cnt, tLo)
			r.Rank += offset
			r.Rounds = rounds
			return r
		}
		rounds++

		// Sample pivots from the cheaper side (paper Sec 3.3.3): the
		// globally smallest keys of a Bernoulli(d/tHi) sample, or the
		// globally largest of a Bernoulli(d/(n-tLo+1)) sample when the
		// target rank is in the upper half.
		fromLow := tHi <= n-tLo+1
		var q float64
		if fromLow {
			q = float64(d) / float64(tHi)
		} else {
			q = float64(d) / float64(n-tLo+1)
		}
		if q > 1 {
			q = 1
		}
		cands := sampleLocal(s, loCount, cnt, q, opt.RNG)
		if !fromLow {
			// Keep only the d largest local candidates (ascending order).
			if len(cands) > d {
				cands = cands[len(cands)-d:]
			}
		} else if len(cands) > d {
			cands = cands[:d]
		}
		var pivots []btree.Key
		if fromLow {
			pivots = coll.AllReduce(c, cands, coll.MergeSmallest(d, btree.Key.Less), keyWords*d)
		} else {
			pivots = coll.AllReduce(c, cands, mergeLargest(d), keyWords*d)
		}
		if len(pivots) == 0 {
			// No PE sampled anything (can happen when q is tiny and the
			// active set is spread thin); try again.
			continue
		}

		// Count active keys <= each pivot, globally.
		counts := make([]int, len(pivots))
		for j, p := range pivots {
			counts[j] = s.CountLeq(p) - loCount
		}
		g := coll.AllReduce(c, counts, coll.SumInts, len(counts))

		// Accept a pivot whose rank lands in the target window.
		for j := range pivots {
			if g[j] >= tLo && g[j] <= tHi {
				return Result{Key: pivots[j], Rank: offset + g[j], Rounds: rounds}
			}
		}
		// Otherwise narrow to the bracketing interval. g is ascending
		// because pivots are.
		below, above := -1, -1
		for j := range pivots {
			if g[j] < tLo {
				below = j
			} else if g[j] > tHi {
				above = j
				break
			}
		}
		if below >= 0 {
			lo = pivots[below]
			offset += g[below]
			loCount = s.CountLeq(lo)
			n -= g[below]
		}
		if above >= 0 {
			hi = pivots[above]
			hiCount = s.CountLeq(hi)
			n = g[above]
			if below >= 0 {
				n = g[above] - g[below]
			}
		}
		cnt = hiCount - loCount
	}
}

// sampleLocal draws a Bernoulli(q) sample of the local active keys (local
// ranks loCount+1 .. loCount+cnt) using geometric skips in rank space, so
// the local work is proportional to the number of sampled items times a
// tree operation. The result is ascending.
func sampleLocal(s Seq, loCount, cnt int, q float64, src rng.Source) []btree.Key {
	var out []btree.Key
	r := 0
	for {
		r += 1 + rng.GeometricSkip(src, q)
		if r > cnt {
			return out
		}
		k, ok := s.Select(loCount + r)
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

// mergeLargest keeps the d largest keys, as an ascending slice.
func mergeLargest(d int) coll.Op[[]btree.Key] {
	return func(a, b []btree.Key) []btree.Key {
		// Merge from the back, keeping d largest.
		out := make([]btree.Key, 0, d)
		i, j := len(a)-1, len(b)-1
		for len(out) < d && (i >= 0 || j >= 0) {
			switch {
			case i < 0:
				out = append(out, b[j])
				j--
			case j < 0:
				out = append(out, a[i])
				i--
			case a[i].Less(b[j]):
				out = append(out, b[j])
				j--
			default:
				out = append(out, a[i])
				i--
			}
		}
		// out is descending; reverse to ascending.
		for x, y := 0, len(out)-1; x < y; x, y = x+1, y-1 {
			out[x], out[y] = out[y], out[x]
		}
		return out
	}
}

// gatherSelect is the exact base case: gather the active keys at PE 0,
// select the tLo-th smallest there, and broadcast it. Rank in the returned
// Result is relative to the active range.
func gatherSelect(c *coll.Comm, s Seq, loCount, cnt, tLo int) Result {
	local := make([]btree.Key, 0, cnt)
	for i := 1; i <= cnt; i++ {
		k, ok := s.Select(loCount + i)
		if !ok {
			break
		}
		local = append(local, k)
	}
	parts := coll.Gather(c, 0, local, keyWords)
	var chosen btree.Key
	if c.Rank() == 0 {
		var all []btree.Key
		for _, p := range parts {
			all = append(all, p...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		if tLo > len(all) {
			panic(fmt.Sprintf("distsel: base case rank %d exceeds %d gathered keys", tLo, len(all)))
		}
		chosen = all[tLo-1]
	}
	chosen = coll.Broadcast(c, 0, chosen, keyWords)
	return Result{Key: chosen, Rank: tLo, Gathered: true}
}

// RandomDistKth selects the globally k-th smallest key assuming the keys
// are randomly distributed over the PEs (paper Sec 3.3.1): a global sample
// of ~√p keys brackets the target rank with two pivots with high
// probability, after which the engine finishes within the (small) bracket.
func RandomDistKth(c *coll.Comm, s Seq, k int, opt Options) Result {
	opt = opt.withDefaults()
	cnt := s.Len()
	n := opt.KnownN
	if n <= 0 {
		n = coll.AllReduce(c, cnt, coll.SumInt, 1)
	}
	if k < 1 || k > n {
		panic(fmt.Sprintf("distsel: rank %d outside 1..%d", k, n))
	}
	if n <= opt.BaseCase {
		return gatherSelect(c, s, 0, cnt, k)
	}
	m := int(math.Ceil(math.Sqrt(float64(c.P())))) * 4
	q := float64(m) / float64(n)
	cands := sampleLocal(s, 0, cnt, q, opt.RNG)
	parts := coll.Gather(c, 0, cands, keyWords)
	// Root picks bracketing pivots around the sample position of rank k.
	type bracket struct {
		Lo, Hi       btree.Key
		UseLo, UseHi bool
	}
	var br bracket
	if c.Rank() == 0 {
		var all []btree.Key
		for _, p := range parts {
			all = append(all, p...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		if len(all) > 0 {
			pos := float64(k) / float64(n) * float64(len(all))
			delta := 2*math.Sqrt(float64(len(all))) + 1
			loIdx := int(pos - delta)
			hiIdx := int(pos + delta)
			if loIdx >= 1 {
				br.Lo, br.UseLo = all[loIdx-1], true
			}
			if hiIdx <= len(all) {
				br.Hi, br.UseHi = all[hiIdx-1], true
			}
		}
	}
	br = coll.Broadcast(c, 0, br, 2*keyWords+1)
	lo, hi := btree.MinKey, btree.MaxKey
	if br.UseLo {
		lo = br.Lo
	}
	if br.UseHi {
		hi = br.Hi
	}
	counts := []int{s.CountLeq(lo), s.CountLeq(hi)}
	g := coll.AllReduce(c, counts, coll.SumInts, 2)
	if k <= g[0] || k > g[1] {
		// Bracket missed (low probability): fall back to the full-range
		// exact engine.
		r := selectRange(c, s, k, k, btree.MinKey, btree.MaxKey, 0, opt)
		r.Rounds++ // account for the attempted bracketing round
		return r
	}
	r := selectRange(c, s, k, k, lo, hi, g[0], opt)
	r.Rounds++
	return r
}

// UnsortedKth selects the k-th smallest of the PEs' unsorted local key
// slices (paper Sec 3.3.4, simplified): uniformly random global pivots,
// three-way partitioning, recursion on the surviving side. sharedSeed must
// be identical on all PEs; it drives the common pivot-rank choices.
// The keys slice is reordered in place.
func UnsortedKth(c *coll.Comm, keys []btree.Key, k int, sharedSeed uint64, opt Options) Result {
	opt = opt.withDefaults()
	active := keys
	offset := 0
	rounds := 0
	for {
		n := coll.AllReduce(c, len(active), coll.SumInt, 1)
		t := k - offset
		if t < 1 || t > n {
			panic(fmt.Sprintf("distsel: unsorted target %d outside 1..%d", t, n))
		}
		if n <= opt.BaseCase || rounds >= opt.MaxRounds {
			sort.Slice(active, func(i, j int) bool { return active[i].Less(active[j]) })
			r := gatherSelect(c, KeySlice(active), 0, len(active), t)
			r.Rank += offset
			r.Rounds = rounds
			return r
		}
		rounds++
		// All PEs agree on a uniformly random global rank, then locate its
		// owner via the gathered per-PE counts.
		sizes := make([]int, 1)
		sizes[0] = len(active)
		table := coll.AllGather(c, sizes, 1)
		rank := int(rng.Mix64(sharedSeed+uint64(rounds))%uint64(n)) + 1
		owner, local := 0, rank
		for pe := 0; pe < c.P(); pe++ {
			if local <= table[pe][0] {
				owner = pe
				break
			}
			local -= table[pe][0]
		}
		var pivot btree.Key
		if c.Rank() == owner {
			pivot = active[local-1]
		}
		pivot = coll.Broadcast(c, owner, pivot, keyWords)
		// Three-way partition.
		less, equal := 0, 0
		li, ri := 0, len(active)
		for i := 0; i < ri; {
			switch kk := active[i]; {
			case kk.Less(pivot):
				active[li], active[i] = active[i], active[li]
				li++
				i++
				less++
			case kk == pivot:
				equal++
				i++
			default:
				ri--
				active[i], active[ri] = active[ri], active[i]
			}
		}
		g := coll.AllReduce(c, []int{less, equal}, coll.SumInts, 2)
		switch {
		case t <= g[0]:
			active = active[:li]
		case t <= g[0]+g[1]:
			return Result{Key: pivot, Rank: offset + g[0] + g[1], Rounds: rounds}
		default:
			offset += g[0] + g[1]
			active = active[li:]
			// Drop the equal-to-pivot band from the active slice.
			filtered := active[:0]
			for _, kk := range active {
				if kk != pivot {
					filtered = append(filtered, kk)
				}
			}
			active = filtered
		}
	}
}
