package distsel

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/rng"
	"reservoir/internal/simnet"
)

// buildInput distributes n random keys over p PEs (unevenly when uneven is
// set) and returns per-PE ascending key slices plus the global sorted order.
func buildInput(r *rand.Rand, p, n int, uneven bool) (local [][]btree.Key, global []btree.Key) {
	local = make([][]btree.Key, p)
	for i := 0; i < n; i++ {
		k := btree.Key{V: r.Float64(), ID: uint64(i)}
		pe := r.Intn(p)
		if uneven {
			// Skew assignment toward low-rank PEs.
			pe = r.Intn(r.Intn(p) + 1)
		}
		local[pe] = append(local[pe], k)
		global = append(global, k)
	}
	for _, l := range local {
		sort.Slice(l, func(i, j int) bool { return l[i].Less(l[j]) })
	}
	sort.Slice(global, func(i, j int) bool { return global[i].Less(global[j]) })
	return local, global
}

// runSelection executes one SPMD selection on a fresh cluster and returns
// PE 0's result after checking all PEs agree.
func runSelection(t *testing.T, p int, body func(c *coll.Comm, pe int) Result) Result {
	t.Helper()
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	results := make([]Result, p)
	var mu sync.Mutex
	cl.Parallel(func(pe *simnet.PE) {
		c := coll.New(pe)
		r := body(c, pe.ID())
		mu.Lock()
		results[pe.ID()] = r
		mu.Unlock()
	})
	for i := 1; i < p; i++ {
		if results[i].Key != results[0].Key || results[i].Rank != results[0].Rank {
			t.Fatalf("PE %d disagrees: %+v vs %+v", i, results[i], results[0])
		}
	}
	return results[0]
}

func TestKthSmallestExact(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, p := range []int{1, 2, 5, 8, 16} {
		for _, n := range []int{1, 10, 500, 3000} {
			local, global := buildInput(r, p, n, false)
			for _, k := range []int{1, n / 3, n / 2, n - 1, n} {
				if k < 1 {
					continue
				}
				for _, d := range []int{1, 8} {
					res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
						opt := Options{Pivots: d, RNG: rng.NewXoshiro256(uint64(100 + pe))}
						return KthSmallest(c, KeySlice(local[pe]), k, opt)
					})
					if res.Key != global[k-1] {
						t.Fatalf("p=%d n=%d k=%d d=%d: got %v, want %v", p, n, k, d, res.Key, global[k-1])
					}
					if res.Rank != k {
						t.Fatalf("p=%d n=%d k=%d d=%d: rank %d", p, n, k, d, res.Rank)
					}
				}
			}
		}
	}
}

func TestKthSmallestUnevenDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p, n := 8, 4000
	local, global := buildInput(r, p, n, true)
	for _, k := range []int{1, 7, n / 2, n} {
		res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
			opt := Options{Pivots: 2, RNG: rng.NewXoshiro256(uint64(7 + pe))}
			return KthSmallest(c, KeySlice(local[pe]), k, opt)
		})
		if res.Key != global[k-1] {
			t.Fatalf("uneven k=%d: got %v, want %v", k, res.Key, global[k-1])
		}
	}
}

func TestKthSmallestOnTrees(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p, n := 4, 2000
	local, global := buildInput(r, p, n, false)
	trees := make([]*btree.Tree[int], p)
	for pe := range trees {
		trees[pe] = btree.New[int]()
		for _, k := range local[pe] {
			trees[pe].Insert(k, 0)
		}
	}
	k := n / 4
	res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
		opt := Options{Pivots: 4, RNG: rng.NewXoshiro256(uint64(13 + pe))}
		return KthSmallest(c, TreeSeq[int]{T: trees[pe]}, k, opt)
	})
	if res.Key != global[k-1] {
		t.Fatalf("tree-backed: got %v, want %v", res.Key, global[k-1])
	}
}

func TestApproxSelectWithinRange(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p, n := 8, 5000
	local, global := buildInput(r, p, n, false)
	for _, window := range [][2]int{{100, 200}, {1000, 2000}, {4500, 5000}, {42, 42}} {
		kLo, kHi := window[0], window[1]
		res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
			opt := Options{Pivots: 4, RNG: rng.NewXoshiro256(uint64(17 + pe))}
			return ApproxSelect(c, KeySlice(local[pe]), kLo, kHi, opt)
		})
		if res.Rank < kLo || res.Rank > kHi {
			t.Fatalf("[%d,%d]: realized rank %d outside window", kLo, kHi, res.Rank)
		}
		if res.Key != global[res.Rank-1] {
			t.Fatalf("[%d,%d]: key %v does not match reported rank %d", kLo, kHi, res.Key, res.Rank)
		}
	}
}

func TestApproxSelectFasterThanExact(t *testing.T) {
	// A wide window must not need more rounds than exact selection;
	// averaged over repetitions it should need strictly fewer.
	r := rand.New(rand.NewSource(5))
	p, n := 8, 20000
	local, _ := buildInput(r, p, n, false)
	k := 5000
	exactRounds, approxRounds := 0, 0
	const reps = 10
	for rep := 0; rep < reps; rep++ {
		seed := uint64(1000 * (rep + 1))
		re := runSelection(t, p, func(c *coll.Comm, pe int) Result {
			return KthSmallest(c, KeySlice(local[pe]), k,
				Options{Pivots: 1, RNG: rng.NewXoshiro256(seed + uint64(pe))})
		})
		ra := runSelection(t, p, func(c *coll.Comm, pe int) Result {
			return ApproxSelect(c, KeySlice(local[pe]), k, 2*k,
				Options{Pivots: 1, RNG: rng.NewXoshiro256(seed + uint64(pe))})
		})
		exactRounds += re.Rounds
		approxRounds += ra.Rounds
	}
	if approxRounds >= exactRounds {
		t.Errorf("approximate selection used %d total rounds, exact %d; expected fewer", approxRounds, exactRounds)
	}
}

func TestMultiPivotReducesRounds(t *testing.T) {
	// Sec 6.3 reports that 8 pivots reduce average recursion depth by
	// roughly 2.5x for large k. Check the direction with a safe margin.
	r := rand.New(rand.NewSource(6))
	p, n := 8, 30000
	local, _ := buildInput(r, p, n, false)
	k := 10000
	rounds1, rounds8 := 0, 0
	const reps = 12
	for rep := 0; rep < reps; rep++ {
		seed := uint64(500 * (rep + 1))
		r1 := runSelection(t, p, func(c *coll.Comm, pe int) Result {
			return KthSmallest(c, KeySlice(local[pe]), k,
				Options{Pivots: 1, RNG: rng.NewXoshiro256(seed + uint64(pe))})
		})
		r8 := runSelection(t, p, func(c *coll.Comm, pe int) Result {
			return KthSmallest(c, KeySlice(local[pe]), k,
				Options{Pivots: 8, RNG: rng.NewXoshiro256(seed + uint64(pe))})
		})
		rounds1 += r1.Rounds
		rounds8 += r8.Rounds
	}
	if rounds8 >= rounds1 {
		t.Errorf("8-pivot rounds %d not below single-pivot rounds %d", rounds8, rounds1)
	}
}

func TestRandomDistKth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, p := range []int{4, 9, 16} {
		n := 6000
		local, global := buildInput(r, p, n, false)
		for _, k := range []int{1, 100, n / 2, n} {
			res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
				opt := Options{Pivots: 1, RNG: rng.NewXoshiro256(uint64(23 + pe))}
				return RandomDistKth(c, KeySlice(local[pe]), k, opt)
			})
			if res.Key != global[k-1] || res.Rank != k {
				t.Fatalf("p=%d k=%d: got (%v, %d), want (%v, %d)", p, k, res.Key, res.Rank, global[k-1], k)
			}
		}
	}
}

func TestUnsortedKth(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, p := range []int{1, 3, 8} {
		n := 4000
		local, global := buildInput(r, p, n, false)
		for _, k := range []int{1, 33, n / 2, n} {
			// Shuffle local copies: UnsortedKth must not need sorted input.
			shuffled := make([][]btree.Key, p)
			for pe := range shuffled {
				shuffled[pe] = append([]btree.Key(nil), local[pe]...)
				r.Shuffle(len(shuffled[pe]), func(i, j int) {
					shuffled[pe][i], shuffled[pe][j] = shuffled[pe][j], shuffled[pe][i]
				})
			}
			res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
				opt := Options{RNG: rng.NewXoshiro256(uint64(31 + pe))}
				return UnsortedKth(c, shuffled[pe], k, 999, opt)
			})
			if res.Key != global[k-1] {
				t.Fatalf("p=%d k=%d: got %v, want %v", p, k, res.Key, global[k-1])
			}
		}
	}
}

func TestSelectionWithEmptyPEs(t *testing.T) {
	// Some PEs hold no items at all.
	r := rand.New(rand.NewSource(9))
	p, n := 6, 1000
	local := make([][]btree.Key, p)
	var global []btree.Key
	for i := 0; i < n; i++ {
		k := btree.Key{V: r.Float64(), ID: uint64(i)}
		local[i%2] = append(local[i%2], k) // only PEs 0 and 1 have data
		global = append(global, k)
	}
	for pe := range local {
		sort.Slice(local[pe], func(i, j int) bool { return local[pe][i].Less(local[pe][j]) })
	}
	sort.Slice(global, func(i, j int) bool { return global[i].Less(global[j]) })
	k := 123
	res := runSelection(t, p, func(c *coll.Comm, pe int) Result {
		opt := Options{Pivots: 2, RNG: rng.NewXoshiro256(uint64(41 + pe))}
		return KthSmallest(c, KeySlice(local[pe]), k, opt)
	})
	if res.Key != global[k-1] {
		t.Fatalf("empty-PE case: got %v, want %v", res.Key, global[k-1])
	}
}

func TestKeySliceSeq(t *testing.T) {
	ks := KeySlice{{V: 1}, {V: 2}, {V: 3}}
	if ks.Len() != 3 {
		t.Fatal("Len")
	}
	if got := ks.CountLeq(btree.Key{V: 2, ID: 9}); got != 2 {
		t.Fatalf("CountLeq = %d", got)
	}
	if k, ok := ks.Select(2); !ok || k.V != 2 {
		t.Fatalf("Select(2) = %v %v", k, ok)
	}
	if _, ok := ks.Select(0); ok {
		t.Fatal("Select(0) should fail")
	}
	if _, ok := ks.Select(4); ok {
		t.Fatal("Select(4) should fail")
	}
}

func TestOptionsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing RNG")
		}
	}()
	Options{}.withDefaults()
}
