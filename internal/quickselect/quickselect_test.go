package quickselect

import (
	"math/rand"
	"sort"
	"testing"

	"reservoir/internal/rng"
)

func intLess(a, b int) bool { return a < b }

func TestSelectAgainstSort(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := rng.NewXoshiro256(2)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(500)
		s := make([]int, n)
		for i := range s {
			s[i] = r.Intn(100) // duplicates likely
		}
		sorted := append([]int(nil), s...)
		sort.Ints(sorted)
		k := 1 + r.Intn(n)
		got := Select(s, k, intLess, src)
		if got != sorted[k-1] {
			t.Fatalf("trial %d: Select(%d of %d) = %d, want %d", trial, k, n, got, sorted[k-1])
		}
		// The prefix must hold exactly the k smallest (as a multiset).
		prefix := append([]int(nil), s[:k]...)
		sort.Ints(prefix)
		for i := range prefix {
			if prefix[i] != sorted[i] {
				t.Fatalf("trial %d: prefix not the k smallest at %d: %v vs %v", trial, i, prefix[i], sorted[i])
			}
		}
	}
}

func TestSelectExtremes(t *testing.T) {
	src := rng.NewXoshiro256(3)
	s := []int{5, 3, 9, 1, 7}
	if got := Select(append([]int(nil), s...), 1, intLess, src); got != 1 {
		t.Errorf("min = %d", got)
	}
	if got := Select(append([]int(nil), s...), 5, intLess, src); got != 9 {
		t.Errorf("max = %d", got)
	}
	if got := Select([]int{42}, 1, intLess, src); got != 42 {
		t.Errorf("singleton = %d", got)
	}
}

func TestSelectAllEqual(t *testing.T) {
	src := rng.NewXoshiro256(4)
	s := make([]int, 1000)
	for i := range s {
		s[i] = 7
	}
	if got := Select(s, 500, intLess, src); got != 7 {
		t.Errorf("all-equal select = %d", got)
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	src := rng.NewXoshiro256(5)
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d: expected panic", k)
				}
			}()
			Select([]int{1, 2, 3}, k, intLess, src)
		}()
	}
}

func BenchmarkSelect(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	src := rng.NewXoshiro256(2)
	s := make([]float64, 100000)
	buf := make([]float64, len(s))
	for i := range s {
		s[i] = r.Float64()
	}
	less := func(a, b float64) bool { return a < b }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, s)
		Select(buf, len(buf)/2, less, src)
	}
}
