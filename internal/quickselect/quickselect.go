// Package quickselect implements the sequential selection used by the
// centralized gathering baseline (paper Sec 4.5): the root PE selects the k
// smallest of its gathered candidate items with an expected linear time
// partition-based algorithm.
//
// The single entry point is Select, a generic in-place quickselect with
// median-of-three pivoting over randomized probes and an insertion-sort
// base case; after it returns, the k smallest elements occupy s[:k] (in
// arbitrary order). internal/core's GatherPE uses it to trim the gathered
// candidate set to the sample size each round; its expected-linear local
// work is what the paper's Figure 6 "select" bars measure for the gather
// competitor.
package quickselect

import "reservoir/internal/rng"

// Select partially reorders s so that s[:k] holds the k smallest elements
// according to less (in unspecified order) and returns the k-th smallest
// element (the maximum of s[:k]). It panics if k is out of [1, len(s)].
// Expected time O(len(s)); randomized median-of-three pivoting.
func Select[T any](s []T, k int, less func(a, b T) bool, src rng.Source) T {
	if k < 1 || k > len(s) {
		panic("quickselect: k out of range")
	}
	lo, hi := 0, len(s)-1 // invariant: k-th smallest is within s[lo..hi]
	for hi > lo {
		if hi-lo < 12 {
			insertionSort(s[lo:hi+1], less)
			break
		}
		p := medianOfThree(s, lo, hi, less, src)
		i, j := lo, hi
		for i <= j {
			for less(s[i], p) {
				i++
			}
			for less(p, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// s[lo..j] <= p <= s[i..hi], with possible middle band equal to p.
		switch {
		case k-1 <= j:
			hi = j
		case k-1 >= i:
			lo = i
		default:
			// The k-th smallest lies in the equal-to-pivot band.
			return s[k-1]
		}
	}
	// The band s[:k] now holds the k smallest; find their maximum.
	m := s[k-1]
	return m
}

func medianOfThree[T any](s []T, lo, hi int, less func(a, b T) bool, src rng.Source) T {
	a := s[lo+rng.Intn(src, hi-lo+1)]
	b := s[lo+rng.Intn(src, hi-lo+1)]
	c := s[lo+rng.Intn(src, hi-lo+1)]
	if less(b, a) {
		a, b = b, a
	}
	if less(c, b) {
		b = c
		if less(b, a) {
			a, b = b, a
		}
	}
	_ = a
	return b
}

func insertionSort[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
