// Package parscan provides the one vetted parallel-for primitive the
// deterministic sampling packages may use to spread a batch scan across
// cores.
//
// The determinism rule (DESIGN.md §8) bans goroutine spawns in the
// algorithmic packages because an uncontrolled interleaving can reach
// shared sampler state. Run is the audited exception: callers split the
// work into logical shards that own disjoint state (their own RNG
// substream, their own output slot), so the result is independent of
// scheduling and core count by construction. The shard count is a config
// value, never GOMAXPROCS, which keeps the sampling stream itself
// machine-independent.
package parscan

import (
	"runtime"
	"sync"
)

// Run invokes fn(shard) for every shard in [0, shards), possibly
// concurrently, and returns only after all calls have finished.
//
// Determinism contract for fn: it must write only to state owned
// exclusively by its shard index and must not touch the transport, the
// virtual clock, or any shared sampler state. Under that contract the
// outcome is a pure function of the inputs, so callers inside
// deterministic packages stay replay-identical at any core count —
// which is also why the single-P fast path below is sound: inline
// execution is just one of the schedules the concurrent form allows.
func Run(shards int, fn func(shard int)) {
	if shards <= 1 || runtime.GOMAXPROCS(0) == 1 {
		for s := 0; s < shards; s++ {
			fn(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		//lint:allow determinism -- vetted parallel-for: each fn(s) owns its shard's state exclusively and the WaitGroup joins every shard before Run returns, so no interleaving can reach shared sampler state (DESIGN.md §8 waiver table).
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}
