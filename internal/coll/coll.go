// Package coll implements the collective communication operations of the
// paper's machine model (Sec 3, "Collective Communication") on top of the
// point-to-point transport.Conn interface:
//
//   - Broadcast, Reduce, AllReduce, Barrier in O(βℓ + α log p) time,
//   - Gather (and AllGather) in O(βpℓ + α log p) time,
//
// using binomial trees and, for AllReduce on power-of-two sub-clusters, a
// butterfly (hypercube) exchange. All operations are SPMD: every PE of the
// communicator must call the same sequence of collectives; a per-communicator
// operation counter generates matching message tags.
//
// The collectives run unchanged over any transport backend: the in-process
// simulator (internal/simnet, deterministic virtual clocks charging the
// α+βℓ cost model) or a real network (internal/transport/tcpnet, one OS
// process per PE). The word counts passed to each collective feed the cost
// model on simulated transports and the traffic counters on all of them,
// so reported communication reflects exactly what the algorithms send.
// internal/core's samplers and internal/distsel's selection algorithms run
// entirely on top of this package.
package coll

import (
	"sort"

	"reservoir/internal/transport"
)

// Comm is a communicator: one PE's handle for participating in collectives
// over the whole cluster. Communicators on different PEs stay in lockstep
// because SPMD code issues the same operations in the same order. All
// collectives issued against the same underlying Conn must go through the
// same Comm (the shared operation counter is what keeps tags unique).
type Comm struct {
	Conn transport.Conn
	p    int
	seq  int
}

// New returns a communicator for the given transport endpoint spanning all
// p PEs of its cluster.
func New(conn transport.Conn) *Comm {
	return &Comm{Conn: conn, p: conn.P()}
}

// P returns the number of PEs in the communicator.
func (c *Comm) P() int { return c.p }

// Rank returns the calling PE's rank.
func (c *Comm) Rank() int { return c.Conn.ID() }

// nextTag returns a fresh tag for one collective operation instance.
// Collectives may use up to tagStride distinct tags internally.
const tagStride = 4

func (c *Comm) nextTag() int {
	t := c.seq * tagStride
	c.seq++
	return t
}

// Reset rewinds the communicator's operation counter, so the next
// collective reuses the tag sequence from the beginning. It is only safe
// when every PE of the cluster resets in lockstep with no collective in
// flight and no undelivered messages of the old sequence — exactly the
// state the transport layer's epoch-based recovery establishes after a
// failed round (stale-epoch messages are discarded, so reused tags
// cannot match them). Outside recovery, never call this.
func (c *Comm) Reset() { c.seq = 0 }

// Op is an associative combining function. Collectives apply it in rank
// order (op(lower-rank acc, higher-rank acc)), so non-commutative but
// associative operations are deterministic under Reduce. AllReduce's
// butterfly interleaves rank blocks and additionally requires the operation
// to be commutative (all ops in this package are).
//
// Because the simulated network passes payloads by reference, an Op must
// never mutate its arguments; it must return a fresh (or operand-aliasing
// but unmodified) value.
type Op[T any] func(a, b T) T

// Broadcast distributes val (of the given size in machine words) from root
// to all PEs and returns it. Binomial tree: O(β·words + α log p).
func Broadcast[T any](c *Comm, root int, val T, words int) T {
	tag := c.nextTag()
	p := c.p
	if p == 1 {
		return val
	}
	transport.RegisterType[T]()
	defer transport.FlushConn(c.Conn)
	rel := (c.Rank() - root + p) % p
	// Highest power of two < p bounds the sender masks.
	top := 1
	for top < p {
		top <<= 1
	}
	lsb := top
	if rel != 0 {
		lsb = rel & (-rel)
		parent := (rel - lsb + root) % p
		val = c.Conn.Recv(parent, tag).(T)
	}
	for m := lsb >> 1; m >= 1; m >>= 1 {
		child := rel + m
		if child < p {
			c.Conn.Send((child+root)%p, tag, val, words)
		}
	}
	return val
}

// Reduce combines the PEs' values with op; the result is returned at root
// (other PEs receive their partial accumulation, which they must ignore).
// Binomial tree: O(β·words + α log p).
func Reduce[T any](c *Comm, root int, val T, op Op[T], words int) T {
	tag := c.nextTag()
	p := c.p
	if p == 1 {
		return val
	}
	transport.RegisterType[T]()
	defer transport.FlushConn(c.Conn)
	rel := (c.Rank() - root + p) % p
	top := 1
	for top < p {
		top <<= 1
	}
	lsb := top
	if rel != 0 {
		lsb = rel & (-rel)
	}
	acc := val
	for m := 1; m < lsb; m <<= 1 {
		child := rel + m
		if child >= p {
			break
		}
		cv := c.Conn.Recv((child+root)%p, tag).(T)
		// Child rel+m covers higher relative ranks than everything
		// accumulated so far.
		acc = op(acc, cv)
	}
	if rel != 0 {
		parent := (rel - lsb + root) % p
		c.Conn.Send(parent, tag, acc, words)
	}
	return acc
}

// AllReduce combines the PEs' values with op and returns the result on
// every PE. For the power-of-two portion of the cluster it uses a butterfly
// exchange (log p rounds); remainder PEs fold in and out at the edges.
// O(β·words·log p + α log p); for the small fixed-size values used by the
// sampler this matches the O(βℓ + α log p) bound of the model.
func AllReduce[T any](c *Comm, val T, op Op[T], words int) T {
	tag := c.nextTag()
	p := c.p
	if p == 1 {
		return val
	}
	transport.RegisterType[T]()
	defer transport.FlushConn(c.Conn)
	// p2 = largest power of two <= p.
	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	id := c.Rank()
	acc := val
	// Fold: extras send their value down to id-p2.
	if id >= p2 {
		c.Conn.Send(id-p2, tag, acc, words)
	} else {
		if id+p2 < p {
			ev := c.Conn.Recv(id+p2, tag).(T)
			acc = op(acc, ev)
		}
		// Butterfly on [0, p2).
		for m := 1; m < p2; m <<= 1 {
			partner := id ^ m
			c.Conn.Send(partner, tag+1, acc, words)
			pv := c.Conn.Recv(partner, tag+1).(T)
			if partner > id {
				acc = op(acc, pv)
			} else {
				acc = op(pv, acc)
			}
		}
		if id+p2 < p {
			c.Conn.Send(id+p2, tag+2, acc, words)
		}
	}
	if id >= p2 {
		acc = c.Conn.Recv(id-p2, tag+2).(T)
	}
	return acc
}

// Barrier synchronizes all PEs (and their virtual clocks) without carrying
// data. (The token is an int, not an empty struct, so the same code runs
// over wire transports, whose encoder rejects field-less payloads.)
func Barrier(c *Comm) {
	AllReduce(c, 0, func(a, _ int) int { return a }, 1)
}

// Chunk carries one PE's contribution through the gather tree. The
// fields are exported so wire transports can encode chunks crossing
// process boundaries; the type itself is exported so hot instantiations
// (e.g. chunks of sample items) can be given hand-rolled wire codecs
// via transport.RegisterMarshaler.
type Chunk[T any] struct {
	Src   int
	Items []T
}

// Gather collects a variable-length slice from every PE at root. At root it
// returns a slice indexed by rank; on other PEs it returns nil. Binomial
// tree with payload concatenation: O(β·Σℓ_i + α log p) along the critical
// path, i.e. O(βpℓ + α log p) for equal contributions, matching the model.
func Gather[T any](c *Comm, root int, items []T, wordsPerItem int) [][]T {
	tag := c.nextTag()
	p := c.p
	own := Chunk[T]{Src: c.Rank(), Items: items}
	if p == 1 {
		return [][]T{items}
	}
	transport.RegisterType[[]Chunk[T]]()
	defer transport.FlushConn(c.Conn)
	rel := (c.Rank() - root + p) % p
	top := 1
	for top < p {
		top <<= 1
	}
	lsb := top
	if rel != 0 {
		lsb = rel & (-rel)
	}
	chunks := []Chunk[T]{own}
	totalItems := len(items)
	for m := 1; m < lsb; m <<= 1 {
		child := rel + m
		if child >= p {
			break
		}
		cv := c.Conn.Recv((child+root)%p, tag).([]Chunk[T])
		for _, ch := range cv {
			totalItems += len(ch.Items)
		}
		chunks = append(chunks, cv...)
	}
	if rel != 0 {
		parent := (rel - lsb + root) % p
		// Words: payload plus one header word per chunk.
		c.Conn.Send(parent, tag, chunks, totalItems*wordsPerItem+len(chunks))
		return nil
	}
	out := make([][]T, p)
	for _, ch := range chunks {
		out[ch.Src] = ch.Items
	}
	return out
}

// AllGather collects every PE's slice and returns the full rank-indexed
// table on every PE (Gather to root 0 followed by a Broadcast).
func AllGather[T any](c *Comm, items []T, wordsPerItem int) [][]T {
	parts := Gather(c, 0, items, wordsPerItem)
	total := 0
	if c.Rank() == 0 {
		for _, part := range parts {
			total += len(part)
		}
	}
	total = Broadcast(c, 0, total, 1)
	return Broadcast(c, 0, parts, total*wordsPerItem+c.p)
}

// --- common reduction ops ------------------------------------------------

// MinFloat64 returns the smaller of two float64s.
func MinFloat64(a, b float64) float64 {
	if b < a {
		return b
	}
	return a
}

// MaxFloat64 returns the larger of two float64s.
func MaxFloat64(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// SumInt adds two ints.
func SumInt(a, b int) int { return a + b }

// SumInts adds two equal-length int vectors elementwise into a fresh slice
// (operands are not mutated; see Op).
func SumInts(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// MergeSmallest returns a bound Op that merges two ascending-sorted slices,
// keeping the d smallest elements, with less as the order.
func MergeSmallest[T any](d int, less func(a, b T) bool) Op[[]T] {
	return func(a, b []T) []T {
		out := make([]T, 0, min(len(a)+len(b), d))
		i, j := 0, 0
		for len(out) < d && (i < len(a) || j < len(b)) {
			switch {
			case i == len(a):
				out = append(out, b[j])
				j++
			case j == len(b):
				out = append(out, a[i])
				i++
			case less(b[j], a[i]):
				out = append(out, b[j])
				j++
			default:
				out = append(out, a[i])
				i++
			}
		}
		return out
	}
}

// SortSlice sorts s ascending according to less (tiny helper shared by the
// selection code and tests; avoids repeating sort.Slice closures).
func SortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}
