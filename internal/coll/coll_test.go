package coll

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"reservoir/internal/simnet"
)

// clusterSizes covers powers of two, primes, and odd sizes.
var clusterSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 17, 32, 33}

// runSPMD executes body on a fresh cluster of p PEs, giving each PE its own
// communicator.
func runSPMD(p int, body func(c *Comm)) *simnet.Cluster {
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	cl.Parallel(func(pe *simnet.PE) {
		body(New(pe))
	})
	return cl
}

func TestBroadcast(t *testing.T) {
	for _, p := range clusterSizes {
		for root := 0; root < p; root += 1 + p/3 {
			var mu sync.Mutex
			got := make([]int, p)
			runSPMD(p, func(c *Comm) {
				val := -1
				if c.Rank() == root {
					val = 4242
				}
				out := Broadcast(c, root, val, 1)
				mu.Lock()
				got[c.Rank()] = out
				mu.Unlock()
			})
			for r, v := range got {
				if v != 4242 {
					t.Fatalf("p=%d root=%d: PE %d got %d", p, root, r, v)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range clusterSizes {
		for root := 0; root < p; root += 1 + p/2 {
			var mu sync.Mutex
			var rootGot int
			runSPMD(p, func(c *Comm) {
				out := Reduce(c, root, c.Rank()+1, SumInt, 1)
				if c.Rank() == root {
					mu.Lock()
					rootGot = out
					mu.Unlock()
				}
			})
			want := p * (p + 1) / 2
			if rootGot != want {
				t.Fatalf("p=%d root=%d: sum = %d, want %d", p, root, rootGot, want)
			}
		}
	}
}

func TestReduceNonCommutativeOrder(t *testing.T) {
	// String concatenation is associative but not commutative; Reduce must
	// combine in rank order (relative to the root).
	p := 8
	var got string
	var mu sync.Mutex
	runSPMD(p, func(c *Comm) {
		out := Reduce(c, 0, fmt.Sprintf("%d", c.Rank()), func(a, b string) string { return a + b }, 1)
		if c.Rank() == 0 {
			mu.Lock()
			got = out
			mu.Unlock()
		}
	})
	if got != "01234567" {
		t.Fatalf("rank-ordered reduce = %q, want 01234567", got)
	}
}

func TestAllReduce(t *testing.T) {
	for _, p := range clusterSizes {
		var mu sync.Mutex
		sums := make([]int, p)
		maxs := make([]float64, p)
		runSPMD(p, func(c *Comm) {
			s := AllReduce(c, c.Rank()+1, SumInt, 1)
			m := AllReduce(c, float64(c.Rank()), MaxFloat64, 1)
			mu.Lock()
			sums[c.Rank()] = s
			maxs[c.Rank()] = m
			mu.Unlock()
		})
		want := p * (p + 1) / 2
		for r := 0; r < p; r++ {
			if sums[r] != want {
				t.Fatalf("p=%d: PE %d allreduce sum = %d, want %d", p, r, sums[r], want)
			}
			if maxs[r] != float64(p-1) {
				t.Fatalf("p=%d: PE %d allreduce max = %v, want %v", p, r, maxs[r], float64(p-1))
			}
		}
	}
}

func TestAllReduceVector(t *testing.T) {
	p := 6
	var mu sync.Mutex
	results := make([][]int, p)
	runSPMD(p, func(c *Comm) {
		v := []int{c.Rank(), 1, -c.Rank()}
		out := AllReduce(c, append([]int(nil), v...), SumInts, 3)
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
	})
	want := []int{15, 6, -15}
	for r, res := range results {
		for i := range want {
			if res[i] != want[i] {
				t.Fatalf("PE %d vector allreduce = %v, want %v", r, res, want)
			}
		}
	}
}

func TestGather(t *testing.T) {
	for _, p := range clusterSizes {
		root := p / 2
		var mu sync.Mutex
		var table [][]int
		runSPMD(p, func(c *Comm) {
			// PE r contributes r items [r, r, ...].
			items := make([]int, c.Rank())
			for i := range items {
				items[i] = c.Rank()
			}
			out := Gather(c, root, items, 1)
			if c.Rank() == root {
				mu.Lock()
				table = out
				mu.Unlock()
			} else if out != nil {
				t.Errorf("non-root PE %d got non-nil gather result", c.Rank())
			}
		})
		if len(table) != p {
			t.Fatalf("p=%d: gather table has %d entries", p, len(table))
		}
		for r, items := range table {
			if len(items) != r {
				t.Fatalf("p=%d: PE %d contributed %d items, want %d", p, r, len(items), r)
			}
			for _, v := range items {
				if v != r {
					t.Fatalf("p=%d: PE %d item corrupted: %d", p, r, v)
				}
			}
		}
	}
}

func TestAllGather(t *testing.T) {
	for _, p := range []int{1, 3, 8, 13} {
		var mu sync.Mutex
		tables := make([][][]string, p)
		runSPMD(p, func(c *Comm) {
			out := AllGather(c, []string{fmt.Sprintf("pe%d", c.Rank())}, 2)
			mu.Lock()
			tables[c.Rank()] = out
			mu.Unlock()
		})
		for r, table := range tables {
			if len(table) != p {
				t.Fatalf("PE %d table size %d", r, len(table))
			}
			for src, items := range table {
				if len(items) != 1 || items[0] != fmt.Sprintf("pe%d", src) {
					t.Fatalf("PE %d sees %v for src %d", r, items, src)
				}
			}
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	p := 8
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	cl.Parallel(func(pe *simnet.PE) {
		c := New(pe)
		// PE 3 does a lot of local work; after the barrier everyone's clock
		// must be at least that much.
		if pe.ID() == 3 {
			pe.Work(1e6)
		}
		Barrier(c)
		if pe.Clock() < 1e6 {
			t.Errorf("PE %d clock %v below straggler's work after barrier", pe.ID(), pe.Clock())
		}
	})
	if n := cl.PendingMessages(); n != 0 {
		t.Errorf("%d messages leaked", n)
	}
}

func TestLatencyScalesLogarithmically(t *testing.T) {
	// With beta=0 and alpha=1, a broadcast's completion time must be
	// Theta(log p), not Theta(p).
	times := map[int]float64{}
	for _, p := range []int{4, 16, 64, 256} {
		cl := simnet.NewCluster(p, simnet.CostParams{AlphaNS: 1, BetaNS: 0})
		cl.Parallel(func(pe *simnet.PE) {
			c := New(pe)
			Broadcast(c, 0, 1, 1)
		})
		times[p] = cl.MaxClock()
	}
	for _, p := range []int{4, 16, 64, 256} {
		logp := math.Log2(float64(p))
		if times[p] > 3*logp {
			t.Errorf("broadcast time at p=%d is %v, want O(log p) ~ %v", p, times[p], logp)
		}
		if times[p] < logp {
			t.Errorf("broadcast time at p=%d is %v, below log2 p = %v (tree too shallow?)", p, times[p], logp)
		}
	}
}

func TestGatherCostLinearInPayload(t *testing.T) {
	// With alpha=0 and beta=1, gathering ℓ words from each of p PEs must
	// cost Θ(p·ℓ) at the root's critical path.
	p, l := 16, 100
	cl := simnet.NewCluster(p, simnet.CostParams{AlphaNS: 0, BetaNS: 1})
	cl.Parallel(func(pe *simnet.PE) {
		c := New(pe)
		items := make([]int, l)
		Gather(c, 0, items, 1)
	})
	total := cl.MaxClock()
	want := float64((p - 1) * l)
	if total < want || total > 3*want {
		t.Errorf("gather critical path = %v, want within [%v, %v]", total, want, 3*want)
	}
}

func TestMergeSmallest(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	op := MergeSmallest(3, less)
	got := op([]int{1, 4, 9}, []int{2, 3})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("MergeSmallest = %v", got)
	}
	if got := op(nil, []int{5}); len(got) != 1 || got[0] != 5 {
		t.Fatalf("MergeSmallest with empty side = %v", got)
	}
	if got := op(nil, nil); len(got) != 0 {
		t.Fatalf("MergeSmallest of empties = %v", got)
	}
	// Associativity on a concrete instance.
	a, b, c := []int{1, 10}, []int{2, 20}, []int{3, 30}
	left := op(op(append([]int(nil), a...), append([]int(nil), b...)), append([]int(nil), c...))
	right := op(append([]int(nil), a...), op(append([]int(nil), b...), append([]int(nil), c...)))
	for i := range left {
		if left[i] != right[i] {
			t.Fatalf("MergeSmallest not associative: %v vs %v", left, right)
		}
	}
}

func TestManySequentialCollectives(t *testing.T) {
	// Back-to-back collectives must not cross-talk (tag discipline).
	p := 9
	runSPMD(p, func(c *Comm) {
		for i := 0; i < 50; i++ {
			s := AllReduce(c, 1, SumInt, 1)
			if s != p {
				t.Errorf("iteration %d: allreduce = %d, want %d", i, s, p)
				return
			}
			v := Broadcast(c, i%p, i, 1)
			if v != i {
				t.Errorf("iteration %d: broadcast = %d", i, v)
				return
			}
		}
	})
}
