package nodesvc

import (
	"bytes"
	"encoding/gob"
	"encoding/json"

	"io"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"reservoir"
	"reservoir/internal/service"
	"reservoir/internal/transport"
	"reservoir/internal/transport/tcpnet"
	"reservoir/internal/workload/scenario"
)

// startCluster brings up a p-node loopback cluster and returns the root's
// control base URL plus a wait function that blocks until every node's
// Run has returned, failing the test on any error.
func startCluster(t *testing.T, p int, cfg reservoir.Config, algo reservoir.Algorithm) (string, func()) {
	t.Helper()
	base, _, wait := startClusterServers(t, p, cfg, algo)
	return base, wait
}

// startClusterServers is startCluster, also exposing the rank-indexed
// server handles (the metrics tests scrape non-root ops handlers).
func startClusterServers(t *testing.T, p int, cfg reservoir.Config, algo reservoir.Algorithm) (string, []*Server, func()) {
	t.Helper()
	ts, err := tcpnet.Loopback(p)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, p)
	srvs := make([]*Server, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		opts := Options{Conn: ts[i], Config: cfg, Algorithm: algo}
		if i == 0 {
			opts.Listener = ln
		}
		srv, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = srv.Run()
		}(i)
	}
	base := "http://" + ln.Addr().String()
	wait := func() {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("cluster did not shut down within 30s")
		}
		for rank, err := range errs {
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}
		for _, tr := range ts {
			tr.Close()
		}
	}
	return base, srvs, wait
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, data)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func TestClusterEndToEndMatchesSimnet(t *testing.T) {
	const (
		p      = 4
		k      = 96
		rounds = 5
		batch  = 700
		seed   = 1234
	)
	cfg := reservoir.Config{K: k, Weighted: true, Seed: seed}
	base, wait := startCluster(t, p, cfg, reservoir.Distributed)

	spec := service.SyntheticSpec{BatchLen: batch, Rounds: rounds}
	resp, data := postJSON(t, base+"/v1/cluster/rounds", map[string]any{"synthetic": spec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds: %s: %s", resp.Status, data)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Rounds != rounds || st.SampleSize != k {
		t.Fatalf("stats after ingest = %+v, want rounds=%d sample_size=%d", st, rounds, k)
	}
	if st.ItemsProcessed != int64(p*rounds*batch) {
		t.Fatalf("items_processed = %d, want %d", st.ItemsProcessed, p*rounds*batch)
	}
	if st.Network.Messages == 0 || st.Network.Bytes == 0 {
		t.Fatalf("cluster network stats empty: %+v", st.Network)
	}

	var sr SampleResponse
	getJSON(t, base+"/v1/cluster/sample", &sr)
	if sr.Size != k || len(sr.Items) != k {
		t.Fatalf("sample size = %d/%d, want %d", sr.Size, len(sr.Items), k)
	}

	// The multi-process cluster must reproduce the simulated cluster
	// byte for byte: same config, same synthetic stream, same sample.
	cl, err := reservoir.NewCluster(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.BuildSource(service.RunConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		cl.ProcessRound(src)
	}
	want := cl.Sample()
	if len(want) != len(sr.Items) {
		t.Fatalf("simnet sample has %d items, cluster returned %d", len(want), len(sr.Items))
	}
	for i := range want {
		if want[i].W != sr.Items[i].W || want[i].ID != sr.Items[i].ID {
			t.Fatalf("sample[%d]: simnet %+v vs cluster %+v", i, want[i], sr.Items[i])
		}
	}

	// Stats endpoint is non-collective and must agree with the last round.
	var st2 Stats
	getJSON(t, base+"/v1/cluster/stats", &st2)
	if st2.Rounds != rounds || st2.SampleSize != k {
		t.Fatalf("cached stats = %+v", st2)
	}

	resp, data = postJSON(t, base+"/v1/cluster/shutdown", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shutdown: %s: %s", resp.Status, data)
	}
	wait()
}

func TestClusterGatherAlgorithm(t *testing.T) {
	cfg := reservoir.Config{K: 32, Weighted: true, Seed: 77}
	base, wait := startCluster(t, 3, cfg, reservoir.CentralizedGather)
	resp, data := postJSON(t, base+"/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: 300, Rounds: 4}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds: %s: %s", resp.Status, data)
	}
	var sr SampleResponse
	getJSON(t, base+"/v1/cluster/sample", &sr)
	if sr.Size != 32 {
		t.Fatalf("gather sample size = %d, want 32", sr.Size)
	}
	resp, _ = postJSON(t, base+"/v1/cluster/shutdown", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shutdown: %s", resp.Status)
	}
	wait()
}

func TestBadRequestsDoNotWedgeTheCluster(t *testing.T) {
	cfg := reservoir.Config{K: 16, Weighted: true, Seed: 5}
	base, wait := startCluster(t, 2, cfg, reservoir.Distributed)

	for _, tc := range []struct {
		name string
		body string
	}{
		{"no synthetic", `{}`},
		{"bad json", `{"synthetic":`},
		{"zero batch", `{"synthetic":{"batch_len":0}}`},
		{"bad source", `{"synthetic":{"batch_len":10,"source":"nope"}}`},
		{"bad range", `{"synthetic":{"batch_len":10,"lo":5,"hi":1}}`},
	} {
		resp, err := http.Post(base+"/v1/cluster/rounds", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// The cluster still works after the rejected requests.
	resp, data := postJSON(t, base+"/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: 100, Rounds: 2}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds after rejects: %s: %s", resp.Status, data)
	}
	resp, _ = postJSON(t, base+"/v1/cluster/shutdown", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shutdown: %s", resp.Status)
	}
	wait()

	// Post-shutdown requests fail fast instead of hanging.
	resp2, err := http.Post(base+"/v1/cluster/rounds", "application/json",
		bytes.NewReader([]byte(`{"synthetic":{"batch_len":10}}`)))
	if err == nil {
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
		if resp2.StatusCode == http.StatusOK {
			t.Fatal("rounds succeeded after shutdown")
		}
	}
}

func TestHealthz(t *testing.T) {
	cfg := reservoir.Config{K: 8, Weighted: true, Seed: 3}
	base, wait := startCluster(t, 2, cfg, reservoir.Distributed)
	var h map[string]any
	getJSON(t, base+"/healthz", &h)
	if h["status"] != "ok" || h["mode"] != "cluster-node" || h["p"] != float64(2) {
		t.Fatalf("healthz = %v", h)
	}
	resp, _ := postJSON(t, base+"/v1/cluster/shutdown", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shutdown: %s", resp.Status)
	}
	wait()
}

// The per-round command broadcast uses the wire fast path; its codec must
// round-trip every spec shape — including a composed scenario, which
// travels as JSON — and reject truncated bodies like every other format.
func TestCommandWireRoundTrip(t *testing.T) {
	cases := []command{
		{},
		{Op: opStats},
		{Op: opRounds, Spec: service.SyntheticSpec{
			Source: "pareto", BatchLen: 50000, Rounds: 3, Seed: 424242, Shape: 1.5,
		}},
		{Op: opRounds, DeferStats: true, Spec: service.SyntheticSpec{
			Source: "pareto", BatchLen: 50000, Rounds: 1, Seed: 7, Shape: 2,
		}},
		{Op: opRounds, Spec: service.SyntheticSpec{
			BatchLen: 1000,
			Scenario: &scenario.Spec{Name: "pareto_burst", Law: "pareto", Alpha: 1.5},
		}},
	}
	for _, want := range cases {
		enc := transport.AppendPayload(nil, want)
		if enc[0] != 0x01 {
			t.Fatalf("command %+v took the gob fallback", want)
		}
		got, err := transport.DecodePayload(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		gc, ok := got.(command)
		if !ok {
			t.Fatalf("decoded %T, want command", got)
		}
		if gc.Op != want.Op || gc.DeferStats != want.DeferStats || !reflect.DeepEqual(gc.Spec, want.Spec) {
			t.Fatalf("round trip changed value:\n got %+v\nwant %+v", gc, want)
		}
		for cut := 1; cut < len(enc); cut++ {
			if _, err := transport.DecodePayload(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
			}
		}
	}
}

// The resync control plane rides the wire fast path too (one codec per
// protocol message saves a fresh gob encoder per SendCtrl on the
// recovery-critical path). Property: the codec round-trips every field
// combination bit-exactly, matches what the gob fallback would have
// delivered, and rejects every truncation.
func TestResyncMsgWireRoundTrip(t *testing.T) {
	src := rand.New(rand.NewSource(7))
	cases := []resyncMsg{
		{},
		{Kind: kindFault, Epoch: 3, Round: 41, Lo: 38, Rejoin: true},
		{Kind: kindPrepare, Attempt: 9},
		{Kind: kindReport, Attempt: 9, Epoch: 2, Round: 40, Lo: 12},
		{Kind: kindCommit, Attempt: 9, Epoch: 3, Round: 39},
		{Kind: kindReady, Attempt: 9},
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, resyncMsg{
			Kind:    byte(1 + src.Intn(5)),
			Attempt: src.Uint64(),
			Epoch:   src.Uint64(),
			Round:   src.Uint64(),
			Lo:      src.Uint64(),
			Rejoin:  src.Intn(2) == 1,
		})
	}
	for _, want := range cases {
		enc := transport.AppendPayload(nil, want)
		if enc[0] != 0x01 {
			t.Fatalf("resyncMsg %+v took the gob fallback", want)
		}
		got, err := transport.DecodePayload(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if gm, ok := got.(resyncMsg); !ok || gm != want {
			t.Fatalf("round trip changed value: got %+v want %+v", got, want)
		}
		// The gob path must agree on the value (the codecs encode the
		// same struct; a field dropped by the wire codec would diverge).
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(want); err != nil {
			t.Fatal(err)
		}
		var viaGob resyncMsg
		if err := gob.NewDecoder(&buf).Decode(&viaGob); err != nil {
			t.Fatal(err)
		}
		if viaGob != got.(resyncMsg) {
			t.Fatalf("wire and gob disagree: wire %+v gob %+v", got, viaGob)
		}
		for cut := 1; cut < len(enc); cut++ {
			if _, err := transport.DecodePayload(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded", cut, len(enc))
			}
		}
	}
}
