package nodesvc

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"reservoir"
	"reservoir/internal/metrics"
	"reservoir/internal/service"
)

// scrapeLint fetches url and runs the strict exposition parser plus the
// repo's naming conventions — the same contract CI enforces.
func scrapeLint(t *testing.T, url string) map[string]*metrics.Family {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.Lint(string(body))
	if err != nil {
		t.Fatalf("metrics contract violated: %v\n%s", err, body)
	}
	return fams
}

func histCount(fams map[string]*metrics.Family, name, labelKey, labelVal string) float64 {
	f, ok := fams[name]
	if !ok {
		return -1
	}
	for _, s := range f.Samples {
		if s.Name == name+"_count" && s.Labels[labelKey] == labelVal {
			return s.Value
		}
	}
	return -1
}

func gaugeValue(fams map[string]*metrics.Family, name string) (float64, bool) {
	f, ok := fams[name]
	if !ok || len(f.Samples) == 0 {
		return 0, false
	}
	return f.Samples[0].Value, true
}

// TestNodeMetricsAndFormedGating boots a real 3-node cluster, checks the
// readiness gate on /healthz, runs rounds, and verifies the control API's
// and a follower's ops /metrics against the exposition contract.
func TestNodeMetricsAndFormedGating(t *testing.T) {
	const p, k, rounds, batch = 3, 32, 4, 200
	cfg := reservoir.Config{K: k, Weighted: true, Seed: 99}
	base, srvs, wait := startClusterServers(t, p, cfg, reservoir.Distributed)

	// Fresh nodes are formed at boot: healthz says so with a 200.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz on a formed cluster: %d, want 200", resp.StatusCode)
	}

	// An unformed node must fail readiness with a 503 and formed=false.
	// Rank 2's formed flag only feeds its health endpoint (a follower's
	// collectives never consult it), so flipping it is safe mid-run.
	srvs[2].formed.Store(false)
	ops := httptest.NewServer(srvs[2].OpsHandler())
	defer ops.Close()
	resp, err = http.Get(ops.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Formed bool   `json:"formed"`
		Rank   int    `json:"rank"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Formed || h.Status != "forming" {
		t.Fatalf("unformed healthz = %d %+v, want 503 forming", resp.StatusCode, h)
	}
	if h.Rank != 2 {
		t.Fatalf("ops healthz rank = %d, want 2", h.Rank)
	}
	srvs[2].formed.Store(true)

	// Run rounds, then check the instruments moved.
	resp2, data := postJSON(t, base+"/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: rounds}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rounds: %s: %s", resp2.Status, data)
	}

	fams := scrapeLint(t, base+"/metrics")
	if got := histCount(fams, "reservoir_node_round_duration_seconds", "rank", "0"); got != rounds {
		t.Fatalf("rank 0 round histogram count = %g, want %d", got, rounds)
	}
	if v, ok := gaugeValue(fams, "reservoir_cluster_items_total"); !ok || v != float64(p*rounds*batch) {
		t.Fatalf("cluster items = %g (present=%v), want %d", v, ok, p*rounds*batch)
	}
	if v, ok := gaugeValue(fams, "reservoir_cluster_network_bytes_total"); !ok || v <= 0 {
		t.Fatalf("cluster network bytes = %g (present=%v), want > 0", v, ok)
	}
	if v, ok := gaugeValue(fams, "reservoir_cluster_formed"); !ok || v != 1 {
		t.Fatalf("cluster_formed = %g (present=%v), want 1", v, ok)
	}
	if v, ok := gaugeValue(fams, "reservoir_cluster_rounds"); !ok || v != rounds {
		t.Fatalf("cluster_rounds = %g (present=%v), want %d", v, ok, rounds)
	}

	// A follower's ops endpoint serves its local view: same round count,
	// its own rank label, no cluster aggregates (those live on rank 0).
	fams = scrapeLint(t, ops.URL+"/metrics")
	if got := histCount(fams, "reservoir_node_round_duration_seconds", "rank", "2"); got != rounds {
		t.Fatalf("rank 2 round histogram count = %g, want %d", got, rounds)
	}
	if _, ok := fams["reservoir_cluster_items_total"]; ok {
		t.Fatal("follower metrics expose rank-0 cluster aggregates")
	}

	resp2, _ = postJSON(t, base+"/v1/cluster/shutdown", nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("shutdown: %s", resp2.Status)
	}
	wait()
}
