package nodesvc

// The crash-restart recovery protocol. The unit of recovery is the round
// boundary: every node snapshots its sampler after each completed round
// (a small in-memory ring, plus WAL/checkpoints via internal/store when
// persistence is on). When the transport reports a recoverable fault —
// a peer died mid-collective, or a control message interrupted a blocked
// receive — every node abandons the in-flight round and rank 0
// coordinates a resync:
//
//	PREPARE  root → all   "report your restorable state"   (attempt-tagged)
//	REPORT   all → root   epoch + [oldest, current] restorable boundary
//	COMMIT   root → all   restore round R = min(current_i), adopt epoch
//	                      E = max(epoch_i)+1, reset the collective tags
//	READY    all → root   restored and re-armed
//
// Only after every READY does rank 0 resume broadcasting commands, so no
// data frame of epoch E is ever sent to a node still on E-1 — which is
// what makes the transport's "discard stale epochs" filter sufficient to
// isolate the failed round's traffic. A crash-restarted node recovers
// its newest persisted boundary, re-forms its mesh (survivors redial in),
// announces itself with a FAULT(rejoin) message, and takes part in the
// next PREPARE like any survivor; because min() picks the round every
// node can restore and each node retains a small snapshot history, the
// restarted node can also roll *back* if it persisted a round the
// survivors never finished.
//
// Determinism: the sampler is a pure function of (config, per-PE stream),
// both restored bit-identically from the boundary snapshot (PRNG state
// included), so a recovered cluster produces the byte-identical sample
// of an uninterrupted run — reservoir-verify -match checks exactly that
// after every chaos run.

import (
	"fmt"
	"time"

	"reservoir"
	"reservoir/internal/transport"
)

// ftConn is the fault-tolerant transport surface the recovery protocol
// runs on (implemented by *tcpnet.Transport with a RejoinTimeout).
type ftConn interface {
	transport.Conn
	FaultTolerant() bool
	RejoinWindow() time.Duration
	Epoch() uint64
	AdvanceEpoch(uint64)
	ClearFault()
	DownPeers() []int
	CtrlPending() bool
	CtrlNotify() <-chan struct{}
	SendCtrl(to int, payload any, deadline time.Time) error
	RecvCtrl(deadline time.Time) (int, any, error)
	Refresh(peer int, deadline time.Time) error
}

// Resync message kinds.
const (
	kindFault   byte = iota + 1 // follower → root: fault seen / rejoined
	kindPrepare                 // root → all: report restorable state
	kindReport                  // follower → root: epoch + boundary range
	kindCommit                  // root → all: restore Round, adopt Epoch
	kindReady                   // follower → root: restored, re-armed
)

// resyncMsg travels over the transport's control channel (epoch-exempt).
// Fields are exported for the wire encoding.
type resyncMsg struct {
	Kind    byte
	Attempt uint64
	Epoch   uint64
	Round   uint64 // current boundary (report/fault) or commit target
	Lo      uint64 // oldest restorable boundary (report/fault)
	Rejoin  bool   // fault: the sender crash-restarted
}

// The recovery protocol exchanges O(p) control messages per resync
// attempt; with the cluster mid-fault they sit on the latency-critical
// path back to serving, so resyncMsg gets a wire codec like the
// data-plane payloads (a fresh gob encoder per SendCtrl recompiles type
// descriptors every time). The JOIN side of recovery — a restarted node's
// transport handshake — is a fixed binary frame below the payload layer
// and is untouched by codec choice.
func init() {
	transport.RegisterMarshaler(transport.WireIDResyncMsg,
		func(buf []byte, v resyncMsg) []byte {
			buf = append(buf, v.Kind)
			buf = transport.AppendUvarint(buf, v.Attempt)
			buf = transport.AppendUvarint(buf, v.Epoch)
			buf = transport.AppendUvarint(buf, v.Round)
			buf = transport.AppendUvarint(buf, v.Lo)
			return transport.AppendBool(buf, v.Rejoin)
		},
		func(d *transport.Dec) (resyncMsg, error) {
			return resyncMsg{
				Kind:    d.U8(),
				Attempt: d.Uvarint(),
				Epoch:   d.Uvarint(),
				Round:   d.Uvarint(),
				Lo:      d.Uvarint(),
				Rejoin:  d.Bool(),
			}, d.Err()
		})
}

// ringDepth bounds the in-memory boundary history. The lockstep collective
// structure keeps the cluster-wide round spread ≤ 1, so even a restarted
// node that persisted one round more than the survivors finished stays
// well inside the window.
const ringDepth = 4

// boundary is one restorable round boundary.
type boundary struct {
	round    uint64
	blob     []byte
	counters reservoir.Counters
}

// pushBoundary records the node's current state as a restorable boundary
// (ring; the disk checkpoint is written by captureBoundary).
func (s *Server) pushBoundary(b boundary) {
	s.ring = append(s.ring, b)
	if len(s.ring) > ringDepth {
		s.ring = s.ring[len(s.ring)-ringDepth:]
	}
}

// boundaryRange returns the oldest and newest restorable rounds.
func (s *Server) boundaryRange() (lo, cur uint64) {
	if len(s.ring) == 0 {
		return 0, uint64(s.node.Round())
	}
	lo = s.ring[0].round
	cur = s.ring[len(s.ring)-1].round
	if s.st != nil {
		if rounds, err := s.st.Snapshots(nodeRunID); err == nil && len(rounds) > 0 && rounds[0] < lo {
			lo = rounds[0]
		}
	}
	return lo, cur
}

// restoreBoundary rolls the node back (or, for a freshly restarted node,
// forward) to the state at round boundary r, from the in-memory ring or
// the persisted snapshot history.
func (s *Server) restoreBoundary(r uint64) error {
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].round == r {
			b := s.ring[i]
			if err := s.node.RestoreState(b.blob, int(r)); err != nil {
				return fmt.Errorf("restoring round %d from memory: %w", r, err)
			}
			s.node.RestoreCounters(b.counters)
			return nil
		}
	}
	if s.st != nil {
		ds, err := s.loadDiskState(r)
		if err != nil {
			return err
		}
		if err := s.node.RestoreState(ds.Sampler, int(r)); err != nil {
			return fmt.Errorf("restoring round %d from disk: %w", r, err)
		}
		s.node.RestoreCounters(ds.Counters)
		s.pushBoundary(boundary{round: r, blob: ds.Sampler, counters: ds.Counters})
		return nil
	}
	return fmt.Errorf("round boundary %d is not restorable (ring %d..%d, no store)",
		r, func() uint64 { lo, _ := s.boundaryRange(); return lo }(), uint64(s.node.Round()))
}

// coordinateResync is rank 0's side of the protocol. It retries whole
// attempts (a restarted node may still be forming its mesh, a second
// failure may land mid-protocol) until every follower is restored and
// re-armed, or twice the rejoin window passes.
func (s *Server) coordinateResync() error {
	window := s.ft.RejoinWindow()
	overall := time.Now().Add(2 * window)
	p := s.node.P()
	s.formed.Store(false)
	for {
		if time.Now().After(overall) {
			return fmt.Errorf("nodesvc: rank 0: resync did not complete within %s (down peers: %v)",
				2*window, s.ft.DownPeers())
		}
		s.attempt++
		a := s.attempt
		phase := time.Now().Add(window)
		if phase.After(overall) {
			phase = overall
		}
		s.log.Info("resync attempt", "attempt", a, "down", fmt.Sprint(s.ft.DownPeers()))

		// PREPARE + collect REPORTs.
		if !s.sendAll(resyncMsg{Kind: kindPrepare, Attempt: a}, phase) {
			continue
		}
		reports := make(map[int]resyncMsg, p-1)
		if !s.collect(a, kindReport, reports, phase) {
			continue
		}

		// Choose the common boundary and the new epoch.
		lo, cur := s.boundaryRange()
		target := cur
		epoch := s.ft.Epoch()
		oldest := lo
		for _, m := range reports {
			if m.Round < target {
				target = m.Round
			}
			if m.Epoch > epoch {
				epoch = m.Epoch
			}
			if m.Lo > oldest {
				oldest = m.Lo
			}
		}
		epoch++
		if target < oldest {
			return fmt.Errorf("nodesvc: rank 0: cluster must roll back to round %d but a node's history starts at %d", target, oldest)
		}

		// COMMIT: restore locally, adopt the epoch, re-arm, then tell
		// everyone. Followers send data only after rank 0 broadcasts the
		// next command, which happens only after every READY — so no
		// epoch-E data frame can reach a node still on an older epoch.
		// Refresh outbound links to the peers that were down first: a
		// data send racing the background redial could be silently
		// buffered into the dead incarnation's connection.
		if !s.refreshDown(phase) {
			continue
		}
		if err := s.restoreBoundary(target); err != nil {
			return fmt.Errorf("nodesvc: rank 0: %w", err)
		}
		s.ft.AdvanceEpoch(epoch)
		s.node.ResetTags()
		if !s.sendAll(resyncMsg{Kind: kindCommit, Attempt: a, Epoch: epoch, Round: target}, phase) {
			continue
		}
		readies := make(map[int]resyncMsg, p-1)
		if !s.collect(a, kindReady, readies, phase) {
			continue
		}
		s.ft.ClearFault()
		s.formed.Store(true)
		s.mResyncs.Inc()
		s.log.Info("resync complete", "round", target, "epoch", epoch)
		return nil
	}
}

// refreshDown re-establishes outbound links to every peer currently
// marked down, reporting success.
func (s *Server) refreshDown(deadline time.Time) bool {
	for _, peer := range s.ft.DownPeers() {
		if err := s.ft.Refresh(peer, deadline); err != nil {
			s.log.Warn("link refresh failed", "peer", peer, "err", err)
			return false
		}
	}
	return true
}

// sendAll delivers one control message to every follower, reporting
// whether all sends got through before the deadline.
func (s *Server) sendAll(m resyncMsg, deadline time.Time) bool {
	for peer := 1; peer < s.node.P(); peer++ {
		if err := s.ft.SendCtrl(peer, m, deadline); err != nil {
			s.log.Warn("resync send failed", "peer", peer, "err", err)
			return false
		}
	}
	return true
}

// collect gathers one attempt-tagged message of the wanted kind from
// every follower. A rejoin announcement mid-protocol aborts the attempt
// (the restarted node needs a fresh PREPARE); stale kinds and attempts
// are ignored.
func (s *Server) collect(attempt uint64, want byte, got map[int]resyncMsg, deadline time.Time) bool {
	for len(got) < s.node.P()-1 {
		from, v, err := s.ft.RecvCtrl(deadline)
		if err != nil {
			s.log.Warn("resync collect timed out", "have", len(got), "want", s.node.P()-1, "err", err)
			return false
		}
		m, ok := v.(resyncMsg)
		if !ok {
			s.log.Warn("unexpected ctrl payload", "type", fmt.Sprintf("%T", v), "from", from)
			continue
		}
		switch {
		case m.Kind == kindFault && m.Rejoin:
			s.log.Info("node rejoined mid-resync; restarting protocol", "peer", from)
			return false
		case m.Kind == want && m.Attempt == attempt:
			got[from] = m
		}
	}
	return true
}

// followResync is a follower's side of the protocol: announce the fault
// (or rejoin), then answer PREPAREs until a COMMIT restores and re-arms
// the node. It returns once the node is ready for the next command
// broadcast.
func (s *Server) followResync(rejoin bool) error {
	window := s.ft.RejoinWindow()
	overall := time.Now().Add(2 * window)
	s.formed.Store(false)
	lo, cur := s.boundaryRange()
	announce := resyncMsg{Kind: kindFault, Epoch: s.ft.Epoch(), Round: cur, Lo: lo, Rejoin: rejoin}
	if err := s.ft.SendCtrl(0, announce, overall); err != nil {
		// Rank 0 itself may be the crashed node; its restart will PREPARE.
		s.log.Warn("fault announce failed", "err", err)
	}
	for {
		if time.Now().After(overall) {
			return fmt.Errorf("nodesvc: rank %d: no resync commit within %s", s.node.Rank(), 2*window)
		}
		_, v, err := s.ft.RecvCtrl(overall)
		if err != nil {
			return fmt.Errorf("nodesvc: rank %d: resync receive: %w", s.node.Rank(), err)
		}
		m, ok := v.(resyncMsg)
		if !ok {
			continue
		}
		switch m.Kind {
		case kindPrepare:
			lo, cur := s.boundaryRange()
			rep := resyncMsg{Kind: kindReport, Attempt: m.Attempt, Epoch: s.ft.Epoch(), Round: cur, Lo: lo}
			if err := s.ft.SendCtrl(0, rep, overall); err != nil {
				return fmt.Errorf("nodesvc: rank %d: resync report: %w", s.node.Rank(), err)
			}
		case kindCommit:
			if !s.refreshDown(overall) {
				return fmt.Errorf("nodesvc: rank %d: could not refresh links to down peers %v", s.node.Rank(), s.ft.DownPeers())
			}
			if err := s.restoreBoundary(m.Round); err != nil {
				return fmt.Errorf("nodesvc: rank %d: %w", s.node.Rank(), err)
			}
			s.ft.AdvanceEpoch(m.Epoch)
			s.node.ResetTags()
			s.ft.ClearFault()
			if err := s.ft.SendCtrl(0, resyncMsg{Kind: kindReady, Attempt: m.Attempt}, overall); err != nil {
				return fmt.Errorf("nodesvc: rank %d: resync ready: %w", s.node.Rank(), err)
			}
			s.formed.Store(true)
			s.mResyncs.Inc()
			s.log.Info("resynced", "round", m.Round, "epoch", m.Epoch)
			return nil
		}
	}
}
