// Package nodesvc runs one node of a real multi-process sampling cluster:
// the service layer behind reservoir-serve's node mode (-peer-id/-peers).
//
// Every process owns one reservoir.Node over a shared transport (tcpnet in
// production). The cluster drives itself through its own collectives: rank
// 0 exposes a small HTTP control API, and each accepted request becomes a
// command broadcast to all nodes through the same Broadcast primitive the
// sampler uses — so the control plane needs no second network and is in
// lockstep with the sampling collectives by construction. Non-root nodes
// sit in a loop receiving commands; the paper's SPMD model is preserved
// end to end.
//
// Control API (rank 0):
//
//	GET  /healthz                  liveness + cluster shape
//	POST /v1/cluster/rounds       {"synthetic": {...}} — run mini-batch rounds
//	GET  /v1/cluster/sample       gather and return the merged global sample
//	GET  /v1/cluster/stats        last published cluster stats (no collective)
//	POST /v1/cluster/shutdown     stop all nodes of the cluster
//
// The synthetic spec is the same shape as the single-process service's
// (service.SyntheticSpec) and builds the identical (seed, pe, round)-keyed
// workload stream, which is what lets reservoir-verify -match replay a
// cluster run on the simulator and demand a byte-identical sample.
package nodesvc

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"reservoir"
	"reservoir/internal/metrics"
	"reservoir/internal/service"
	"reservoir/internal/store"
	"reservoir/internal/transport"
)

// Command opcodes broadcast from rank 0. opStats is internal: it runs
// the stats collectives alone, used when a resync rolled a command's
// remaining work to zero but the caller still needs a fresh result.
const (
	opRounds   = "rounds"
	opSample   = "sample"
	opShutdown = "shutdown"
	opStats    = "stats"
)

// command is the control message distributed through the cluster's own
// Broadcast collective. Fields are exported for the wire transport.
// DeferStats skips the per-command stats all-reduction (opRounds only):
// pipelined benchmark drivers post one round per request, and a stats
// collective after each would both serialize the rounds and leave no
// selection in flight for the next scan to overlap. Deferred stats are
// recovered collectively later via opStats (GET /v1/cluster/stats?refresh=1).
type command struct {
	Op         string
	Spec       service.SyntheticSpec
	DeferStats bool
}

// commandWords is the nominal cost-model size of a command broadcast.
const commandWords = 8

// The command broadcast runs once per ingest round, so it gets a wire
// codec like the data-plane payloads instead of the gob fallback (a fresh
// gob encoder per send recompiles type descriptors — the cost the v3 wire
// format exists to kill). The spec travels as its JSON encoding: it is a
// config-shaped struct with a nested scenario pointer, already JSON-tagged
// for the HTTP API and the WAL, and a few hundred bytes at most.
func init() {
	transport.RegisterMarshaler(transport.WireIDCommand,
		func(buf []byte, v command) []byte {
			spec, err := json.Marshal(v.Spec)
			if err != nil {
				// SyntheticSpec is plain data (numbers, strings, a
				// data-only scenario spec); its JSON encoding cannot fail.
				panic(fmt.Sprintf("nodesvc: encoding command spec: %v", err))
			}
			buf = transport.AppendBytes(buf, []byte(v.Op))
			buf = transport.AppendBytes(buf, spec)
			return transport.AppendBool(buf, v.DeferStats)
		},
		func(d *transport.Dec) (command, error) {
			var c command
			c.Op = string(d.Bytes())
			spec := d.Bytes()
			c.DeferStats = d.Bool()
			if err := d.Err(); err != nil {
				return command{}, err
			}
			if err := json.Unmarshal(spec, &c.Spec); err != nil {
				return command{}, fmt.Errorf("command spec: %w", err)
			}
			return c, nil
		})
}

// Per-request bounds (the node API is driven by benchmarks and operators,
// not untrusted tenants, but a typo should not wedge the cluster).
const (
	maxBatchLen = 1 << 24
	maxRounds   = 1 << 16
)

// Options configures one node of the cluster.
type Options struct {
	// Conn is this node's transport endpoint (required).
	Conn transport.Conn
	// Config is the sampler configuration; must be identical on every
	// node of the cluster.
	Config reservoir.Config
	// Algorithm selects Distributed (default) or CentralizedGather; must
	// be identical on every node.
	Algorithm reservoir.Algorithm
	// Addr is the HTTP control listen address, used by rank 0 only
	// (default ":8080"). Ignored when Listener is set.
	Addr string
	// Listener optionally provides a pre-bound control listener for rank
	// 0 (tests use port-0 listeners).
	Listener net.Listener
	// Store enables crash-restart persistence: this node's per-round
	// boundary checkpoints and WAL audit trail live in it (each node of
	// the cluster needs its *own* store directory). Open it with a
	// snapshot retention of at least 4 (store.WithSnapshotRetention) so
	// a restarted node can roll back to the survivors' boundary.
	Store *store.Store
	// Log receives lifecycle messages (default: silent). The server adds
	// component and rank attributes.
	Log *slog.Logger
	// Metrics optionally shares a registry with the caller (so transport
	// instruments registered outside nodesvc appear on the same /metrics).
	// Nil gets a private registry.
	Metrics *metrics.Registry
}

// Stats is the GET /v1/cluster/stats (and POST rounds) response: the
// cluster-wide state as of the last completed command.
type Stats struct {
	Mode            string              `json:"mode"`
	P               int                 `json:"p"`
	Algorithm       reservoir.Algorithm `json:"algorithm"`
	K               int                 `json:"k"`
	Seed            uint64              `json:"seed"`
	Uniform         bool                `json:"uniform,omitempty"`
	Shards          int                 `json:"shards,omitempty"`
	Pipeline        bool                `json:"pipeline,omitempty"`
	Rounds          int                 `json:"rounds"`
	SampleSize      int                 `json:"sample_size"`
	Threshold       float64             `json:"threshold"`
	HaveThreshold   bool                `json:"have_threshold"`
	ItemsProcessed  int64               `json:"items_processed"`
	Inserted        int64               `json:"inserted"`
	Selections      int64               `json:"selections"`
	SelectionRounds int64               `json:"selection_rounds"`
	WallNS          float64             `json:"wall_ns"`
	Network         NetworkStats        `json:"network"`
	// Per-phase round breakdown, summed across all nodes (wall-clock
	// nanoseconds; zero unless the sharded scan is active). OverlapNS is
	// the wall time the pipelined driver saved by running a round's scan
	// concurrently with the previous round's selection collectives.
	ScanNS    int64 `json:"scan_ns,omitempty"`
	CollNS    int64 `json:"coll_ns,omitempty"`
	OverlapNS int64 `json:"overlap_ns,omitempty"`
	RoundNS   int64 `json:"round_ns,omitempty"`
	FlushNS   int64 `json:"flush_ns,omitempty"`
}

// NetworkStats is the cluster-wide traffic summary (all nodes' outgoing
// counters, summed with one all-reduction after each command). The wire
// shape is shared with the single-process service's stats.
type NetworkStats = service.NetworkStats

// SampleResponse is the GET /v1/cluster/sample response.
type SampleResponse struct {
	Size  int                `json:"size"`
	Items []service.WireItem `json:"items"`
}

// SampleDump is the verifiable record of a cluster run: configuration,
// ingested synthetic workload, and the merged sample — everything
// reservoir-verify -match needs to replay the run on the simulator and
// compare byte-for-byte. reservoir-loadgen writes one with -sample-out.
type SampleDump struct {
	P         int                   `json:"p"`
	K         int                   `json:"k"`
	Algorithm reservoir.Algorithm   `json:"algorithm"`
	Uniform   bool                  `json:"uniform,omitempty"`
	Shards    int                   `json:"shards,omitempty"`
	Pipeline  bool                  `json:"pipeline,omitempty"`
	Seed      uint64                `json:"seed"`
	Rounds    int                   `json:"rounds"`
	Synthetic service.SyntheticSpec `json:"synthetic"`
	Sample    []service.WireItem    `json:"sample"`
}

// pending is one queued control command awaiting its collective turn.
type pending struct {
	cmd   command
	reply chan result
}

type result struct {
	stats Stats
	items []service.WireItem
	err   error
}

// Server is one node's service instance.
type Server struct {
	opts Options
	node *reservoir.Node
	// runCfg carries the fields SyntheticSpec.BuildSource consults, so
	// node-mode streams match single-process service streams exactly.
	runCfg service.RunConfig
	log    *slog.Logger

	// formed flips to true once the node can serve collectives: at startup
	// for a fresh node, after the initial resync for a rejoining one, and
	// it dips back to false while a resync is in flight. Readiness probes
	// (healthz) key off it so traffic never lands on a half-formed cluster.
	formed atomic.Bool

	// Prometheus instruments (nil-receiver-safe histograms/counters; the
	// Func variants read live state at scrape time).
	reg           *metrics.Registry
	mRoundSeconds *metrics.Histogram
	mOverlapPct   *metrics.Histogram
	mResyncs      *metrics.Counter

	// Fault tolerance and persistence (see resync.go / persist.go).
	// ft is non-nil when the transport runs with recoverable faults;
	// ring holds the restorable round boundaries; rejoining marks a node
	// that recovered persisted state and must resync before serving.
	ft        ftConn
	st        *store.Store
	runLog    *store.RunLog
	ring      []boundary
	rejoining bool
	attempt   uint64 // rank 0's resync attempt counter

	// Root-only control state. done closes when the collective loop
	// exits, unblocking submitters that raced with shutdown.
	cmds chan *pending
	done chan struct{}

	mu       sync.Mutex
	lastStat Stats
	shutdown bool
}

// New creates this node's server over an established transport.
func New(opts Options) (*Server, error) {
	logger := opts.Log
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	node, err := reservoir.NewNode(opts.Conn, opts.Config, reservoir.WithAlgorithm(opts.Algorithm))
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		opts:   opts,
		node:   node,
		runCfg: service.RunConfig{Seed: opts.Config.Seed, Uniform: !opts.Config.Weighted},
		log:    logger.With("component", "nodesvc", "rank", node.Rank()),
		reg:    reg,
		st:     opts.Store,
		cmds:   make(chan *pending),
		done:   make(chan struct{}),
	}
	if fc, ok := opts.Conn.(ftConn); ok && fc.FaultTolerant() {
		s.ft = fc
	}
	s.registerMetrics()
	if s.st != nil {
		if s.ft == nil {
			// Without the resync protocol there is no round-agreement
			// check: nodes cold-restarted from checkpoints taken one
			// round apart would consume diverging stream slices and
			// produce a silently wrong sample.
			return nil, fmt.Errorf("nodesvc: a store requires a fault-tolerant transport (rejoin timeout); refusing persistence that could not be recovered consistently")
		}
		if err := s.initPersistence(); err != nil {
			return nil, err
		}
	}
	if !s.rejoining {
		// Record the round-0 boundary so the very first round is
		// rollback-able (and, with a store, restartable).
		if err := s.captureBoundary(nil); err != nil {
			return nil, err
		}
		// A fresh node's mesh is already up (transport dialing completes
		// before New); only a rejoining node must resync before serving.
		s.formed.Store(true)
	}
	s.lastStat = s.snapshotLocked(reservoir.NetworkStats{}, reservoir.Counters{}, reservoir.PhaseStats{})
	return s, nil
}

// Formed reports whether this node is ready to take part in collectives:
// false on a rejoining node until its initial resync commits, and during
// any later resync. Readiness probes key off it.
func (s *Server) Formed() bool { return s.formed.Load() }

// Metrics exposes the node's registry so callers (cmd wiring, tests) can
// register additional instruments — e.g. per-peer transport counters —
// on the same /metrics page.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// registerMetrics installs the node-level instruments. Everything cheap
// to read is a Func variant sampled at scrape time; only the histograms
// and the resync counter add writes to the serving path.
func (s *Server) registerMetrics() {
	rank := fmt.Sprintf("%d", s.node.Rank())
	rankLabel := []string{"rank"}
	s.mRoundSeconds = s.reg.NewHistogram("reservoir_node_round_duration_seconds",
		"Wall time per completed cluster round on this node (boundary capture included).",
		metrics.DefBuckets, rankLabel, rank)
	s.mOverlapPct = s.reg.NewHistogram("reservoir_node_round_overlap_pct",
		"Percent of a round's wall time the pipelined scan overlapped with the previous round's selection collectives.",
		metrics.PctBuckets, rankLabel, rank)
	s.mResyncs = s.reg.NewCounter("reservoir_node_resyncs_total",
		"Completed fault-recovery resyncs this node took part in.", rankLabel, rank)
	s.reg.GaugeFunc("reservoir_node_rounds", "Rounds this node has completed.",
		rankLabel, []string{rank}, func() float64 { return float64(s.node.Round()) })
	s.reg.GaugeFunc("reservoir_cluster_formed", "1 once the node is resynced and serving, 0 while forming.",
		rankLabel, []string{rank}, func() float64 {
			if s.formed.Load() {
				return 1
			}
			return 0
		})
	if s.ft != nil {
		s.reg.GaugeFunc("reservoir_node_epoch", "Transport epoch (bumped by every committed resync).",
			rankLabel, []string{rank}, func() float64 { return float64(s.ft.Epoch()) })
	}
	if s.node.Rank() == 0 {
		// Cluster-wide aggregates, published by the stats all-reduction
		// after each command (lastStats is the cached copy — scraping
		// never runs a collective).
		s.reg.GaugeFunc("reservoir_cluster_rounds", "Cluster rounds as of the last completed command.",
			nil, nil, func() float64 { return float64(s.lastStats().Rounds) })
		s.reg.GaugeFunc("reservoir_cluster_sample_size", "Current global sample size.",
			nil, nil, func() float64 { return float64(s.lastStats().SampleSize) })
		s.reg.CounterFunc("reservoir_cluster_items_total", "Items processed cluster-wide.",
			nil, nil, func() float64 { return float64(s.lastStats().ItemsProcessed) })
		s.reg.CounterFunc("reservoir_cluster_network_messages_total", "Transport messages sent cluster-wide (all-reduced).",
			nil, nil, func() float64 { return float64(s.lastStats().Network.Messages) })
		s.reg.CounterFunc("reservoir_cluster_network_words_total", "Cost-model words sent cluster-wide (all-reduced).",
			nil, nil, func() float64 { return float64(s.lastStats().Network.Words) })
		s.reg.CounterFunc("reservoir_cluster_network_bytes_total", "Wire bytes sent cluster-wide (all-reduced).",
			nil, nil, func() float64 { return float64(s.lastStats().Network.Bytes) })
	}
}

// Run drives the node until the cluster shuts down. On rank 0 it serves
// the HTTP control API and feeds accepted commands into the collective
// loop; on other ranks it executes broadcast commands. It returns nil
// after an orderly cluster shutdown.
func (s *Server) Run() error {
	defer func() {
		if s.runLog != nil {
			s.runLog.Close()
		}
	}()
	if s.node.Rank() == 0 {
		return s.runRoot()
	}
	return s.runFollower()
}

func (s *Server) runFollower() (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Only transport-originated panics (peer loss, poisoned
			// mailbox, wire corruption) become an orderly error return;
			// anything else is a real bug and must crash loudly.
			if !transport.IsTransportPanic(r) {
				panic(r)
			}
			err = fmt.Errorf("nodesvc: rank %d: %v", s.node.Rank(), r)
		}
	}()
	s.log.Info("following", "p", s.node.P())
	if s.ft != nil && s.rejoining {
		if err := s.followResync(true); err != nil {
			return err
		}
	}
	for {
		cmd, res, fault := s.tryFollowOnce()
		if fault {
			if err := s.followResync(false); err != nil {
				return err
			}
			continue
		}
		if res.err != nil {
			return fmt.Errorf("nodesvc: rank %d executing %q: %w", s.node.Rank(), cmd.Op, res.err)
		}
		if cmd.Op == opShutdown {
			s.log.Info("shutting down")
			return nil
		}
	}
}

// tryFollowOnce receives and executes one broadcast command, converting
// recoverable transport faults (a peer died, a resync began) into a
// fault=true return instead of a panic. Non-fault panics propagate.
func (s *Server) tryFollowOnce() (cmd command, res result, fault bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := transport.AsFault(r); ok && s.ft != nil {
				fault = true
				return
			}
			panic(r)
		}
	}()
	cmd = reservoir.BroadcastValue(s.node, 0, command{}, commandWords)
	res = s.execute(cmd)
	return
}

func (s *Server) runRoot() error {
	ln := s.opts.Listener
	if ln == nil {
		addr := s.opts.Addr
		if addr == "" {
			addr = ":8080"
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return fmt.Errorf("nodesvc: control listen: %w", err)
		}
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	httpErr := make(chan error, 1)
	serveFailed := make(chan error, 1)
	go func() {
		err := hs.Serve(ln)
		httpErr <- err
		if err != nil && err != http.ErrServerClosed {
			serveFailed <- err // wake rootLoop: no frontend can submit commands anymore
		}
	}()
	s.log.Info("leading", "p", s.node.P(), "addr", ln.Addr().String())

	runErr := s.rootLoop(serveFailed)
	close(s.done)
	// Let in-flight handlers (including the shutdown response) flush.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	<-httpErr
	s.log.Info("shut down")
	return runErr
}

// rootLoop drains the command queue through the cluster's collectives.
// On a strict transport, a failure mid-collective (a dead peer poisons
// the mailbox with a panic) is recovered into an orderly error so rank 0
// still runs its HTTP shutdown and submitter-unblocking cleanup; on a
// fault-tolerant transport, dispatch absorbs the fault, coordinates a
// resync, and re-executes the command from the restored boundary. Fault
// signals arriving while no command is in flight (a follower died or
// rejoined between requests) are handled through the transport's notify
// channel. A dead control server (serveFailed) shuts the cluster down
// instead of leaving the followers blocked on a Broadcast that can never
// be requested again.
func (s *Server) rootLoop(serveFailed <-chan error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Same triage as runFollower: strict-mode peer death reaches
			// this boundary as a typed transport panic and becomes an
			// orderly shutdown; a bug in the sampler or service must not.
			if !transport.IsTransportPanic(r) {
				panic(r)
			}
			err = fmt.Errorf("nodesvc: rank 0: %v", r)
		}
	}()
	var notify <-chan struct{}
	if s.ft != nil {
		notify = s.ft.CtrlNotify()
		if s.rejoining {
			// This rank 0 crash-restarted: re-sync the cluster to a
			// common boundary before accepting commands.
			if err := s.coordinateResync(); err != nil {
				return err
			}
		}
	}
	for {
		select {
		case p, ok := <-s.cmds:
			if !ok {
				return nil
			}
			res := s.dispatch(p.cmd)
			p.reply <- res
			if p.cmd.Op == opShutdown {
				return nil
			}
			if res.err != nil {
				return res.err
			}
		case <-notify:
			if !s.ft.CtrlPending() && len(s.ft.DownPeers()) == 0 {
				continue // stale pulse of an already-handled fault
			}
			if err := s.coordinateResync(); err != nil {
				return err
			}
		case e := <-serveFailed:
			s.dispatch(command{Op: opShutdown})
			return fmt.Errorf("nodesvc: control server failed: %w", e)
		}
	}
}

// maxCmdRetries bounds how many resync-and-retry cycles one command may
// consume before rank 0 gives up on the cluster.
const maxCmdRetries = 8

// dispatch executes one command collectively, surviving recoverable
// faults: each fault triggers a resync to the last common round boundary
// and a re-execution of only the remaining work. For round ingestion the
// target round is pinned up front, so rounds completed before the fault
// are never run twice — re-execution of the *failed* round restores
// exactly the uninterrupted stream (the boundary snapshot includes the
// PRNG state).
func (s *Server) dispatch(cmd command) result {
	target := uint64(s.node.Round())
	if cmd.Op == opRounds {
		r := cmd.Spec.Rounds
		if r == 0 {
			r = 1
		}
		target += uint64(r)
	}
	for attempt := 0; ; attempt++ {
		run := cmd
		if cmd.Op == opRounds {
			remaining := int(int64(target) - int64(s.node.Round()))
			if remaining <= 0 {
				// All rounds landed before the fault; the resync rolled
				// nothing back. Refresh the stats for the reply.
				run = command{Op: opStats}
			} else {
				run.Spec.Rounds = remaining
			}
		}
		res, fault := s.tryCollective(run)
		if !fault {
			return res
		}
		if attempt >= maxCmdRetries {
			return result{err: fmt.Errorf("nodesvc: command %q still faulting after %d resyncs", cmd.Op, attempt)}
		}
		if err := s.coordinateResync(); err != nil {
			return result{err: err}
		}
	}
}

// tryCollective runs one broadcast+execute cycle, converting recoverable
// transport faults into a fault=true return. Non-fault panics propagate.
func (s *Server) tryCollective(cmd command) (res result, fault bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := transport.AsFault(r); ok && s.ft != nil {
				fault = true
				return
			}
			panic(r)
		}
	}()
	// One broadcast wakes every follower; then all nodes (including this
	// one) execute the command's collectives in lockstep.
	reservoir.BroadcastValue(s.node, 0, cmd, commandWords)
	res = s.execute(cmd)
	return
}

// execute runs one command's collective part on this node (all ranks call
// it with the same command).
func (s *Server) execute(cmd command) result {
	switch cmd.Op {
	case opRounds:
		src, err := cmd.Spec.BuildSource(s.runCfg)
		if err != nil {
			// Roots validate before broadcasting; reaching this on any
			// rank means the cluster configs diverge.
			return result{err: fmt.Errorf("building synthetic source: %w", err)}
		}
		rounds := cmd.Spec.Rounds
		if rounds == 0 {
			rounds = 1
		}
		specJSON, err := json.Marshal(cmd.Spec)
		if err != nil {
			return result{err: fmt.Errorf("encoding synthetic spec: %w", err)}
		}
		for i := 0; i < rounds; i++ {
			phase0 := s.node.PhaseStats()
			roundStart := time.Now()
			//lint:allow walorder -- node mode is apply-then-capture by design: captureBoundary logs the *completed* round as a restorable boundary, and recovery rolls the cluster back to the newest boundary every node can restore (DESIGN.md §2.5) — cluster redundancy, not write-ahead, is the durability contract here
			s.node.ProcessRound(src)
			// Every completed round becomes a restorable boundary
			// (in-memory ring and, when persistence is on, WAL record +
			// checkpoint) — the recovery protocol's rollback grain.
			if err := s.captureBoundary(specJSON); err != nil {
				return result{err: err}
			}
			s.mRoundSeconds.Observe(time.Since(roundStart).Seconds())
			// Overlap is measured against the sharded scan's own round
			// clock (zero when pipelining is off — nothing to observe).
			if d := s.node.PhaseStats(); d.RoundNS > phase0.RoundNS {
				s.mOverlapPct.Observe(100 * float64(d.OverlapNS-phase0.OverlapNS) / float64(d.RoundNS-phase0.RoundNS))
			}
		}
		if cmd.DeferStats {
			// Leave the last round's selection in flight (the next
			// command's scan will overlap it) and skip the stats
			// all-reduction; the caller refreshes collectively later.
			return result{stats: s.lastStats()}
		}
		s.node.DrainPending()
		return result{stats: s.publishStats()}
	case opStats:
		s.node.DrainPending()
		return result{stats: s.publishStats()}
	case opSample:
		items := s.node.CollectSample()
		st := s.publishStats()
		out := make([]service.WireItem, len(items))
		for i, it := range items {
			out[i] = service.WireItem{W: it.W, ID: it.ID}
		}
		return result{stats: st, items: out}
	case opShutdown:
		return result{stats: s.lastStats()}
	default:
		return result{err: fmt.Errorf("unknown cluster command %q", cmd.Op)}
	}
}

// publishStats aggregates cluster-wide counters (one merged all-reduction)
// and, on every rank, returns the updated stats; rank 0 also caches them
// for the non-collective GET /v1/cluster/stats.
func (s *Server) publishStats() Stats {
	net, cnt, phase := s.node.ClusterStats()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastStat = s.snapshotLocked(net, cnt, phase)
	return s.lastStat
}

func (s *Server) snapshotLocked(net reservoir.NetworkStats, cnt reservoir.Counters, phase reservoir.PhaseStats) Stats {
	th, have := s.node.Threshold()
	return Stats{
		Mode:            "cluster-node",
		P:               s.node.P(),
		Algorithm:       s.node.Algorithm(),
		K:               s.opts.Config.K,
		Seed:            s.opts.Config.Seed,
		Uniform:         !s.opts.Config.Weighted,
		Shards:          s.opts.Config.Shards,
		Pipeline:        s.opts.Config.Pipeline,
		Rounds:          s.node.Round(),
		SampleSize:      s.node.SampleSize(),
		Threshold:       th,
		HaveThreshold:   have,
		ItemsProcessed:  cnt.ItemsProcessed,
		Inserted:        cnt.Inserted,
		Selections:      cnt.Selections,
		SelectionRounds: cnt.SelectionRounds,
		WallNS:          s.node.ClockNS(),
		Network: NetworkStats{
			Messages: net.Messages,
			Words:    net.Words,
			Bytes:    net.Bytes,
		},
		ScanNS:    phase.ScanNS,
		CollNS:    phase.CollNS,
		OverlapNS: phase.OverlapNS,
		RoundNS:   phase.RoundNS,
		FlushNS:   phase.FlushNS,
	}
}

func (s *Server) lastStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastStat
}

// submit queues a command for the collective loop and waits for its
// result. It fails fast once shutdown has been requested.
func (s *Server) submit(cmd command) (result, bool) {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return result{}, false
	}
	if cmd.Op == opShutdown {
		s.shutdown = true
	}
	s.mu.Unlock()
	p := &pending{cmd: cmd, reply: make(chan result, 1)}
	select {
	case s.cmds <- p:
	case <-s.done:
		return result{}, false
	}
	select {
	case r := <-p.reply:
		return r, true
	case <-s.done:
		// The loop exited; it replies (buffered) before breaking, so a
		// processed command's result is still retrievable.
		select {
		case r := <-p.reply:
			return r, true
		default:
			return result{}, false
		}
	}
}

// handleHealth is the node's readiness probe, served on rank 0's control
// API and on every rank's ops listener. It reports 503 with formed=false
// until the node has (re)joined the cluster — a rejoining node is alive
// but must not take traffic before its resync commits.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	formed := s.Formed()
	status, code := "ok", http.StatusOK
	if !formed {
		status, code = "forming", http.StatusServiceUnavailable
	}
	service.WriteJSON(w, code, map[string]any{
		"status": status,
		"formed": formed,
		"mode":   "cluster-node",
		"rank":   s.node.Rank(),
		"p":      s.node.P(),
		"rounds": s.lastStats().Rounds,
	})
}

// OpsHandler returns the per-node operational endpoints — GET /healthz
// and GET /metrics — servable on every rank (rank 0's control API also
// includes both). cmd/reservoir-serve binds it to the -metrics listener.
func (s *Server) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg.Handler())
	return mux
}

// Handler returns rank 0's control API handler (exported for tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("POST /v1/cluster/rounds", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Synthetic *service.SyntheticSpec `json:"synthetic"`
			// defer_stats skips the post-command stats all-reduction so a
			// pipelined round's selection stays in flight across requests;
			// refresh with GET /v1/cluster/stats?refresh=1.
			DeferStats bool `json:"defer_stats,omitempty"`
		}
		if err := service.DecodeBody(w, r, 1<<20, &req); err != nil {
			service.WriteErrorf(w, service.APIErrorCode(err, http.StatusBadRequest), "%v", err)
			return
		}
		if req.Synthetic == nil {
			service.WriteErrorf(w, http.StatusBadRequest, "node mode ingests synthetic rounds; body needs {\"synthetic\": {...}}")
			return
		}
		spec := *req.Synthetic
		if spec.BatchLen < 1 || spec.BatchLen > maxBatchLen {
			service.WriteErrorf(w, http.StatusBadRequest, "batch_len must be in [1, %d], got %d", maxBatchLen, spec.BatchLen)
			return
		}
		if spec.Rounds < 0 || spec.Rounds > maxRounds {
			service.WriteErrorf(w, http.StatusBadRequest, "rounds must be in [0, %d], got %d", maxRounds, spec.Rounds)
			return
		}
		if _, err := spec.BuildSource(s.runCfg); err != nil {
			service.WriteErrorf(w, http.StatusBadRequest, "%v", err)
			return
		}
		res, ok := s.submit(command{Op: opRounds, Spec: spec, DeferStats: req.DeferStats})
		if !ok {
			service.WriteErrorf(w, http.StatusServiceUnavailable, "cluster is shutting down")
			return
		}
		if res.err != nil {
			service.WriteErrorf(w, http.StatusInternalServerError, "%v", res.err)
			return
		}
		service.WriteJSON(w, http.StatusOK, res.stats)
	})
	mux.HandleFunc("GET /v1/cluster/sample", func(w http.ResponseWriter, r *http.Request) {
		res, ok := s.submit(command{Op: opSample})
		if !ok {
			service.WriteErrorf(w, http.StatusServiceUnavailable, "cluster is shutting down")
			return
		}
		if res.err != nil {
			service.WriteErrorf(w, http.StatusInternalServerError, "%v", res.err)
			return
		}
		service.WriteJSON(w, http.StatusOK, SampleResponse{Size: len(res.items), Items: res.items})
	})
	mux.HandleFunc("GET /v1/cluster/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("refresh") == "1" {
			// Collective refresh: drains any deferred selection and runs
			// the stats all-reduction (the counterpart of defer_stats).
			res, ok := s.submit(command{Op: opStats})
			if !ok {
				service.WriteErrorf(w, http.StatusServiceUnavailable, "cluster is shutting down")
				return
			}
			if res.err != nil {
				service.WriteErrorf(w, http.StatusInternalServerError, "%v", res.err)
				return
			}
			service.WriteJSON(w, http.StatusOK, res.stats)
			return
		}
		service.WriteJSON(w, http.StatusOK, s.lastStats())
	})
	mux.HandleFunc("POST /v1/cluster/shutdown", func(w http.ResponseWriter, r *http.Request) {
		res, ok := s.submit(command{Op: opShutdown})
		if !ok {
			service.WriteErrorf(w, http.StatusServiceUnavailable, "cluster is already shutting down")
			return
		}
		if res.err != nil {
			service.WriteErrorf(w, http.StatusInternalServerError, "%v", res.err)
			return
		}
		service.WriteJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
	})
	return mux
}
