package nodesvc

// Node-mode persistence rides the existing internal/store machinery: each
// node owns its own store directory holding one run ("node") whose WAL
// records every executed round (append-before-apply, like the service)
// and whose checkpoints — one per round boundary, with a small retained
// history — are what crash-restart recovery restores. Unlike the
// single-process service, a lone node cannot replay WAL rounds (a round
// is a cluster-wide collective), so recovery is snapshot-only and the WAL
// doubles as an audit trail of executed rounds, re-executions after a
// rollback included.

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"

	"reservoir"
	"reservoir/internal/store"
)

// nodeRunID is the store run ID every node persists under.
const nodeRunID = "node"

// snapKindNode tags node-boundary snapshots in store checkpoint files
// (distinct from the service's snapshot kinds).
const snapKindNode = byte(9)

// nodeConfigJSON is the persisted cluster configuration, validated on
// recovery so a node cannot resume into a differently-configured cluster.
type nodeConfigJSON struct {
	P         int    `json:"p"`
	Rank      int    `json:"rank"`
	K         int    `json:"k"`
	Seed      uint64 `json:"seed"`
	Weighted  bool   `json:"weighted"`
	Algorithm string `json:"algorithm"`
}

// diskState is the checkpoint blob: everything beyond the sampler bytes
// that a restarted node needs (the epoch seeds the resync negotiation,
// the counters keep lifetime stats truthful).
type diskState struct {
	Round    uint64
	Epoch    uint64
	Counters reservoir.Counters
	Sampler  []byte
}

func (s *Server) configJSON() ([]byte, error) {
	algo, err := s.opts.Algorithm.MarshalText()
	if err != nil {
		return nil, err
	}
	return json.Marshal(nodeConfigJSON{
		P:         s.node.P(),
		Rank:      s.node.Rank(),
		K:         s.opts.Config.K,
		Seed:      s.opts.Config.Seed,
		Weighted:  s.opts.Config.Weighted,
		Algorithm: string(algo),
	})
}

// initPersistence opens (or creates) this node's persisted run. On a
// rejoin it restores the newest checkpoint into the live sampler and
// marks the server as rejoining, so Run starts with the recovery
// protocol instead of the command loop.
func (s *Server) initPersistence() error {
	wantCfg, err := s.configJSON()
	if err != nil {
		return fmt.Errorf("nodesvc: encoding config: %w", err)
	}
	ids, err := s.st.ListRuns()
	if err != nil {
		return fmt.Errorf("nodesvc: listing persisted runs: %w", err)
	}
	for _, id := range ids {
		if id == nodeRunID {
			return s.recoverPersisted(wantCfg)
		}
	}
	log, err := s.st.CreateRun(nodeRunID, wantCfg)
	if err != nil {
		return fmt.Errorf("nodesvc: creating persisted run: %w", err)
	}
	s.runLog = log
	return nil
}

func (s *Server) recoverPersisted(wantCfg []byte) error {
	rs, log, err := s.st.LoadRun(nodeRunID)
	if err != nil {
		return fmt.Errorf("nodesvc: recovering node state: %w", err)
	}
	if rs.Warning != nil {
		s.log.Warn("recovery warning", "err", rs.Warning)
	}
	var have, want nodeConfigJSON
	if err := json.Unmarshal(rs.Config, &have); err != nil {
		return fmt.Errorf("nodesvc: persisted config: %w", err)
	}
	_ = json.Unmarshal(wantCfg, &want)
	if have != want {
		return fmt.Errorf("nodesvc: persisted config %+v does not match flags %+v; refusing to rejoin", have, want)
	}
	if rs.Snapshot == nil {
		return fmt.Errorf("nodesvc: persisted run has no decodable checkpoint; refusing to guess a boundary")
	}
	ds, err := decodeDiskState(rs.Snapshot)
	if err != nil {
		return err
	}
	if err := s.node.RestoreState(ds.Sampler, int(ds.Round)); err != nil {
		return fmt.Errorf("nodesvc: restoring checkpoint @%d: %w", ds.Round, err)
	}
	s.node.RestoreCounters(ds.Counters)
	if s.ft != nil {
		s.ft.AdvanceEpoch(ds.Epoch)
	}
	s.runLog = log
	s.rejoining = true
	s.pushBoundary(boundary{round: ds.Round, blob: ds.Sampler, counters: ds.Counters})
	s.log.Info("recovered boundary", "round", ds.Round, "epoch", ds.Epoch)
	return nil
}

// loadDiskState reads the retained checkpoint at round r.
func (s *Server) loadDiskState(r uint64) (*diskState, error) {
	snap, err := s.st.ReadSnapshot(nodeRunID, r)
	if err != nil {
		return nil, err
	}
	return decodeDiskState(snap)
}

func decodeDiskState(snap *store.Snapshot) (*diskState, error) {
	if snap.Kind != snapKindNode {
		return nil, fmt.Errorf("nodesvc: checkpoint kind %d is not a node boundary", snap.Kind)
	}
	var ds diskState
	if err := gob.NewDecoder(bytes.NewReader(snap.Blob)).Decode(&ds); err != nil {
		return nil, fmt.Errorf("nodesvc: decoding checkpoint: %w", err)
	}
	if ds.Round != snap.Round {
		return nil, fmt.Errorf("nodesvc: checkpoint claims round %d inside a round-%d file", ds.Round, snap.Round)
	}
	return &ds, nil
}

// captureBoundary snapshots the node's state as the newest restorable
// round boundary: into the in-memory ring always, and — with a store —
// as a WAL record plus checkpoint (append-before-checkpoint, so a crash
// between the two still recovers the previous boundary). specJSON
// documents the round's input in the WAL audit trail.
func (s *Server) captureBoundary(specJSON []byte) error {
	if s.ft == nil && s.st == nil {
		return nil // nothing can consume a boundary; skip the per-round marshal
	}
	// A boundary must be a committed round: drain any pipelined selection
	// still in flight (SPMD — every rank captures boundaries in lockstep).
	// Draining here never changes the sampling stream (DESIGN.md §2.6).
	s.node.DrainPending()
	blob, err := s.node.MarshalState()
	if err != nil {
		return fmt.Errorf("nodesvc: rank %d: boundary snapshot: %w", s.node.Rank(), err)
	}
	round := uint64(s.node.Round())
	b := boundary{round: round, blob: blob, counters: s.node.Counters()}
	s.pushBoundary(b)
	if s.runLog == nil {
		return nil
	}
	if round > 0 && specJSON != nil {
		if err := s.runLog.AppendRound(&store.RoundRecord{Round: round - 1, Synthetic: specJSON}); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	ds := diskState{Round: round, Counters: b.counters, Sampler: blob}
	if s.ft != nil {
		ds.Epoch = s.ft.Epoch()
	}
	if err := gob.NewEncoder(&buf).Encode(&ds); err != nil {
		return fmt.Errorf("nodesvc: encoding checkpoint: %w", err)
	}
	return s.runLog.Checkpoint(&store.Snapshot{Round: round, Kind: snapKindNode, Blob: buf.Bytes()})
}
