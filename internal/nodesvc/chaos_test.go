package nodesvc

// Crash-restart chaos tests: a real tcpnet mesh (fault-tolerant mode)
// with per-node stores, nodes killed hard (transport torn down, store
// abandoned with files as-is — the in-process stand-in for kill -9) and
// restarted from their persisted boundary. The cluster must resync,
// finish every requested round, and produce the byte-identical sample of
// an uninterrupted simulator run. scripts/chaos_cluster.sh repeats this
// with real OS processes in CI.

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"reservoir"
	"reservoir/internal/service"
	"reservoir/internal/store"
	"reservoir/internal/transport/tcpnet"
)

const chaosRejoin = 30 * time.Second

type chaosNode struct {
	rank int
	dir  string
	tr   *tcpnet.Transport
	st   *store.Store
	srv  *Server
	err  chan error // Run's result
	// formedAtBoot records Formed() right after New, before Run could
	// resync: true for a fresh node, false for one rejoining from disk —
	// the readiness window the /healthz gate exists for.
	formedAtBoot bool
}

// tlog routes slog output from transports and node servers onto the
// test log, one line per record.
func tlog(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(tlogWriter{t}, &slog.HandlerOptions{}))
}

type tlogWriter struct{ t *testing.T }

func (w tlogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

type chaosCluster struct {
	log     *slog.Logger
	t       *testing.T
	peers   []string
	cfg     reservoir.Config
	algo    reservoir.Algorithm
	ctrl    net.Listener
	ctrlAdr string
	nodes   []*chaosNode
}

// startChaosCluster brings up a p-node fault-tolerant cluster with one
// store per node.
func startChaosCluster(t *testing.T, p int, cfg reservoir.Config, algo reservoir.Algorithm) *chaosCluster {
	t.Helper()
	lns := make([]net.Listener, p)
	peers := make([]string, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	ctrl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &chaosCluster{
		t: t, log: tlog(t), peers: peers, cfg: cfg, algo: algo,
		ctrl: ctrl, ctrlAdr: "http://" + ctrl.Addr().String(),
		nodes: make([]*chaosNode, p),
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c.launch(rank, lns[rank], t.TempDir())
		}(i)
	}
	wg.Wait()
	return c
}

// launch starts (or restarts) one node. ln may be nil to rebind the
// node's fixed peer address.
func (c *chaosCluster) launch(rank int, ln net.Listener, dir string) {
	if ln == nil {
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for {
			ln, err = net.Listen("tcp", c.peers[rank])
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				c.t.Errorf("rebinding %s: %v", c.peers[rank], err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	st, err := store.Open(dir, store.WithFsync(store.FsyncOff), store.WithSnapshotRetention(4))
	if err != nil {
		c.t.Errorf("rank %d store: %v", rank, err)
		return
	}
	tr, err := tcpnet.Dial(tcpnet.Config{
		Rank: rank, Peers: c.peers, Listener: ln,
		FormationTimeout: 30 * time.Second, RejoinTimeout: chaosRejoin,
		Log: c.log,
	})
	if err != nil {
		c.t.Errorf("rank %d dial: %v", rank, err)
		return
	}
	opts := Options{Conn: tr, Config: c.cfg, Algorithm: c.algo, Store: st, Log: c.log}
	if rank == 0 {
		opts.Listener = c.ctrl
	}
	srv, err := New(opts)
	if err != nil {
		c.t.Errorf("rank %d new: %v", rank, err)
		return
	}
	n := &chaosNode{
		rank: rank, dir: dir, tr: tr, st: st, srv: srv,
		err: make(chan error, 1), formedAtBoot: srv.Formed(),
	}
	c.nodes[rank] = n
	go func() { n.err <- srv.Run() }()
}

// kill tears a node down the hard way: transport closed (peers see the
// connections drop, as with a process death) and the store abandoned
// with its files exactly as they are.
func (c *chaosCluster) kill(rank int) {
	n := c.nodes[rank]
	n.st.Abandon()
	n.tr.Close()
	select {
	case <-n.err: // Run exited (with a transport-closed error)
	case <-time.After(20 * time.Second):
		c.t.Fatalf("killed node %d did not exit", rank)
	}
}

// restart relaunches a killed node from its on-disk state.
func (c *chaosCluster) restart(rank int) {
	c.launch(rank, nil, c.nodes[rank].dir)
}

func (c *chaosCluster) post(path string, body any, out any) (*http.Response, []byte) {
	c.t.Helper()
	resp, data := postJSON(c.t, c.ctrlAdr+path, body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			c.t.Fatalf("decoding %s response %q: %v", path, data, err)
		}
	}
	return resp, data
}

// shutdownAll shuts the cluster down through the control API and waits
// for every live node.
func (c *chaosCluster) shutdownAll() {
	c.t.Helper()
	resp, data := c.post("/v1/cluster/shutdown", nil, nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("shutdown: %s: %s", resp.Status, data)
	}
	for _, n := range c.nodes {
		select {
		case err := <-n.err:
			if err != nil {
				c.t.Errorf("rank %d: %v", n.rank, err)
			}
		case <-time.After(30 * time.Second):
			c.t.Fatalf("rank %d did not shut down", n.rank)
		}
		n.tr.Close()
		n.st.Close()
	}
}

// expectSample replays the cluster's synthetic stream on the in-process
// simulator for the given number of rounds and demands a byte-identical
// sample — the same check reservoir-verify -match runs in CI.
func expectSample(t *testing.T, cfg reservoir.Config, algo reservoir.Algorithm, p, rounds, batch int, got []service.WireItem) {
	t.Helper()
	cl, err := reservoir.NewCluster(p, cfg, reservoir.WithAlgorithm(algo))
	if err != nil {
		t.Fatal(err)
	}
	spec := service.SyntheticSpec{BatchLen: batch, Rounds: rounds}
	src, err := spec.BuildSource(service.RunConfig{Seed: cfg.Seed, Uniform: !cfg.Weighted})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		cl.ProcessRound(src)
	}
	want := cl.Sample()
	if len(want) != len(got) {
		t.Fatalf("sample size: simulator %d vs cluster %d", len(want), len(got))
	}
	for i := range want {
		if want[i].W != got[i].W || want[i].ID != got[i].ID {
			t.Fatalf("sample[%d]: simulator %+v vs cluster %+v", i, want[i], got[i])
		}
	}
}

// TestCrashRestartBetweenCommands: two kill/restart cycles against an
// idle cluster; ingestion after each rejoin must keep the sample
// byte-identical to an uninterrupted run.
func TestCrashRestartBetweenCommands(t *testing.T) {
	const p, k, batch = 4, 64, 500
	cfg := reservoir.Config{K: k, Weighted: true, Seed: 1111}
	c := startChaosCluster(t, p, cfg, reservoir.Distributed)

	spec := func(rounds int) map[string]any {
		return map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: rounds}}
	}
	var st Stats
	if resp, data := c.post("/v1/cluster/rounds", spec(3), &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds: %s: %s", resp.Status, data)
	}
	if st.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", st.Rounds)
	}

	// Cycle 1: kill node 2 while idle, restart, ingest more.
	c.kill(2)
	c.restart(2)
	// A node rejoining from disk boots unready: its readiness gate must
	// stay down until the resync commits (the /healthz 503 window).
	if c.nodes[2].formedAtBoot {
		t.Fatal("rejoining node reported formed before its resync")
	}
	if resp, data := c.post("/v1/cluster/rounds", spec(3), &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds after restart 1: %s: %s", resp.Status, data)
	}
	if st.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", st.Rounds)
	}
	if !c.nodes[2].srv.Formed() {
		t.Fatal("rejoined node still unformed after serving rounds")
	}

	// Cycle 2: a different node.
	c.kill(1)
	c.restart(1)
	if resp, data := c.post("/v1/cluster/rounds", spec(2), &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds after restart 2: %s: %s", resp.Status, data)
	}
	if st.Rounds != 8 {
		t.Fatalf("rounds = %d, want 8", st.Rounds)
	}

	var sr SampleResponse
	getJSON(t, c.ctrlAdr+"/v1/cluster/sample", &sr)
	expectSample(t, cfg, reservoir.Distributed, p, 8, batch, sr.Items)
	c.shutdownAll()
}

// TestCrashRestartMidCommand: kill a node while a multi-round ingest
// command is executing. The command must survive the resync, re-execute
// only the un-committed rounds, and the final sample must match the
// uninterrupted simulator replay exactly.
func TestCrashRestartMidCommand(t *testing.T) {
	const p, k, batch, rounds = 4, 48, 300, 20
	cfg := reservoir.Config{K: k, Weighted: true, Seed: 2222}
	c := startChaosCluster(t, p, cfg, reservoir.Distributed)

	done := make(chan Stats, 1)
	go func() {
		var st Stats
		resp, data := c.post("/v1/cluster/rounds",
			map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: rounds}}, &st)
		if resp.StatusCode != http.StatusOK {
			c.t.Errorf("mid-command rounds: %s: %s", resp.Status, data)
		}
		done <- st
	}()

	time.Sleep(60 * time.Millisecond) // land mid-command
	c.kill(3)
	time.Sleep(200 * time.Millisecond)
	c.restart(3)

	var st Stats
	select {
	case st = <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("ingest command did not complete after the crash-restart cycle")
	}
	if st.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d (no round may run twice or vanish)", st.Rounds, rounds)
	}

	var sr SampleResponse
	getJSON(t, c.ctrlAdr+"/v1/cluster/sample", &sr)
	expectSample(t, cfg, reservoir.Distributed, p, rounds, batch, sr.Items)
	c.shutdownAll()
}

// TestCrashRestartMidPipelinedCommand: kill -9 (in-process stand-in) a
// node while a pipelined sharded ingest command is executing, with
// defer_stats keeping selection collectives in flight across rounds. The
// resync must land on a committed round boundary — restoreBoundary
// clears any deferred selection — re-execute only the missing rounds,
// and the refreshed stats plus the final sample must match an
// uninterrupted simulator replay of the same pipelined stream.
func TestCrashRestartMidPipelinedCommand(t *testing.T) {
	const p, k, batch, rounds = 4, 48, 300, 20
	cfg := reservoir.Config{K: k, Weighted: true, Seed: 5555, Shards: 4, Pipeline: true}
	c := startChaosCluster(t, p, cfg, reservoir.Distributed)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, data := c.post("/v1/cluster/rounds", map[string]any{
			"synthetic":   service.SyntheticSpec{BatchLen: batch, Rounds: rounds},
			"defer_stats": true,
		}, nil)
		if resp.StatusCode != http.StatusOK {
			c.t.Errorf("mid-pipelined-command rounds: %s: %s", resp.Status, data)
		}
	}()

	time.Sleep(60 * time.Millisecond) // land mid-pipelined-round
	c.kill(2)
	time.Sleep(200 * time.Millisecond)
	c.restart(2)

	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("pipelined ingest command did not complete after the crash-restart cycle")
	}

	// defer_stats left the cached snapshot stale; the refresh query runs
	// a collective stats command (draining any still-pending selection).
	var st Stats
	getJSON(t, c.ctrlAdr+"/v1/cluster/stats?refresh=1", &st)
	if st.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d (no round may run twice or vanish)", st.Rounds, rounds)
	}
	if st.Shards != 4 || !st.Pipeline {
		t.Fatalf("stats do not reflect the scan config: shards=%d pipeline=%v", st.Shards, st.Pipeline)
	}

	var sr SampleResponse
	getJSON(t, c.ctrlAdr+"/v1/cluster/sample", &sr)
	expectSample(t, cfg, reservoir.Distributed, p, rounds, batch, sr.Items)
	c.shutdownAll()
}

// TestCrashRestartGatherAlgorithm: the centralized baseline recovers too
// (its per-PE snapshots carry the root's sample).
func TestCrashRestartGatherAlgorithm(t *testing.T) {
	const p, k, batch = 3, 32, 400
	cfg := reservoir.Config{K: k, Weighted: true, Seed: 3333}
	c := startChaosCluster(t, p, cfg, reservoir.CentralizedGather)

	var st Stats
	if resp, data := c.post("/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: 3}}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds: %s: %s", resp.Status, data)
	}
	c.kill(1)
	c.restart(1)
	if resp, data := c.post("/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: 3}}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds after restart: %s: %s", resp.Status, data)
	}
	if st.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", st.Rounds)
	}
	var sr SampleResponse
	getJSON(t, c.ctrlAdr+"/v1/cluster/sample", &sr)
	expectSample(t, cfg, reservoir.CentralizedGather, p, 6, batch, sr.Items)
	c.shutdownAll()
}

// TestColdClusterRestart: after a graceful shutdown, relaunching every
// node from its store resumes the run — the whole cluster is durable,
// not just individual nodes.
func TestColdClusterRestart(t *testing.T) {
	const p, k, batch = 3, 32, 400
	cfg := reservoir.Config{K: k, Weighted: true, Seed: 4444}
	c := startChaosCluster(t, p, cfg, reservoir.Distributed)

	var st Stats
	if resp, data := c.post("/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: 4}}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds: %s: %s", resp.Status, data)
	}
	dirs := make([]string, p)
	for i, n := range c.nodes {
		dirs[i] = n.dir
	}
	c.shutdownAll()

	// Relaunch everything from disk (same control port).
	ctrl, err := net.Listen("tcp", c.ctrl.Addr().String())
	if err != nil {
		t.Fatalf("rebinding control: %v", err)
	}
	c2 := &chaosCluster{
		t: t, peers: c.peers, cfg: cfg, algo: reservoir.Distributed,
		ctrl: ctrl, ctrlAdr: "http://" + ctrl.Addr().String(),
		nodes: make([]*chaosNode, p),
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c2.launch(rank, nil, dirs[rank])
		}(i)
	}
	wg.Wait()
	for _, n := range c2.nodes {
		if n == nil {
			t.Fatal("cold restart failed to relaunch every node")
		}
	}
	if resp, data := c2.post("/v1/cluster/rounds",
		map[string]any{"synthetic": service.SyntheticSpec{BatchLen: batch, Rounds: 4}}, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("rounds after cold restart: %s: %s", resp.Status, data)
	}
	if st.Rounds != 8 {
		t.Fatalf("rounds = %d, want 8 (4 before + 4 after the cold restart)", st.Rounds)
	}
	var sr SampleResponse
	getJSON(t, c2.ctrlAdr+"/v1/cluster/sample", &sr)
	expectSample(t, cfg, reservoir.Distributed, p, 8, batch, sr.Items)
	c2.shutdownAll()
}
