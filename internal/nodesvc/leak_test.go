package nodesvc

import (
	"testing"

	"reservoir/internal/testutil"
)

// TestMain fails the suite if a node service loop (follower loop, root
// loop, heartbeat) survives the tests; Stop/Close must tear them all down.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
