// Package transport defines the point-to-point messaging interface that
// the collective operations of internal/coll (and everything above them:
// distributed selection, the samplers, the public Cluster and Node APIs)
// are built on. A Conn is one processing element's endpoint: it sends and
// receives word-framed messages matched by (peer, tag), exactly the
// contract of an MPI-style receive queue.
//
// Two implementations exist:
//
//   - internal/simnet: the in-process simulator. All PEs are goroutines of
//     one process, messages pass by reference, and Send/Recv/Work drive
//     deterministic virtual clocks charging the paper's α+βℓ cost model.
//     (*simnet.PE satisfies Conn directly; no adapter is needed.)
//   - internal/transport/tcpnet: a real network. Each PE is its own OS
//     process, messages are gob-encoded and framed with a length prefix
//     and CRC over TCP, and Clock reports wall time.
//
// Because the simulator passes payloads by reference while wire transports
// must serialize them, payload types that cross a wire transport inside an
// interface value need a gob registration. The collectives in internal/coll
// call Register on their payload types at operation entry (before any
// Recv), so SPMD code is oblivious to which backend it runs on.
package transport

// Conn is one PE's endpoint for point-to-point word-framed messages.
//
// Send and Recv match messages by (peer, tag); a Recv blocks until a
// message from the given peer with the given tag arrives. Tags are managed
// by the collective layer (one fresh tag range per collective operation),
// so SPMD lockstep code never receives a stale message. The words argument
// of Send is the message's size in 8-byte machine words under the paper's
// cost model; simulated transports charge α+β·words virtual time for it,
// wire transports record it in their traffic stats alongside the real
// byte count.
//
// Work and Clock expose the transport's notion of time: virtual
// nanoseconds on the simulator (Work advances the calling PE's clock; the
// samplers use it to charge local computation), wall-clock nanoseconds on
// real networks (where Work is a no-op because local computation takes
// actual time).
//
// A Conn is owned by one goroutine (its PE); none of the methods may be
// called concurrently with each other.
type Conn interface {
	// ID returns this PE's rank in 0..P()-1.
	ID() int
	// P returns the cluster size.
	P() int
	// Send transfers payload (words 8-byte machine words under the cost
	// model) to PE `to`, matched at the receiver by (this PE, tag).
	Send(to, tag int, payload any, words int)
	// Recv blocks until a message from `from` with the given tag arrives
	// and returns its payload.
	Recv(from, tag int) any
	// Work advances virtual time by ns nanoseconds of local computation
	// (no-op on wall-clock transports).
	Work(ns float64)
	// Clock returns this PE's current time in nanoseconds (virtual or
	// wall, depending on the transport).
	Clock() float64
}

// Stats aggregates a transport's traffic counters. On the simulator,
// Words is the cost-model word count and Bytes is Words*8; on wire
// transports, Words is the same cost-model count declared by the senders
// (so simulated and real runs are comparable) and Bytes is the actual
// encoded payload volume on the wire.
type Stats struct {
	Messages int64
	Words    int64
	Bytes    int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Messages += o.Messages
	s.Words += o.Words
	s.Bytes += o.Bytes
}

// StatsSource is implemented by transports that report traffic counters
// for their node (the public APIs use it to populate NetworkStats).
type StatsSource interface {
	Stats() Stats
}

// Fault marks a transport error as *recoverable*: the peer may come back
// (crash-restart) and the layer above can re-synchronize instead of
// aborting the run. Fault-tolerant transports panic with a Fault value
// from Send/Recv when a peer is lost mid-collective; serving layers
// recover it (see AsFault) and run their recovery protocol. Errors that
// do not implement Fault remain fatal.
type Fault interface {
	error
	TransportFault()
}

// AsFault extracts a Fault from a recovered panic value.
func AsFault(r any) (Fault, bool) {
	if r == nil {
		return nil, false
	}
	f, ok := r.(Fault)
	return f, ok
}

// FatalError is an *unrecoverable* transport failure: the mesh is closed,
// a frame failed its CRC in strict mode, a peer died on a strict (no
// rejoin) deployment. Transports panic with a *FatalError so the serving
// layer can distinguish "the network is gone, shut down in an orderly
// way" from a genuine programming bug unwinding the stack — the latter
// must never be converted into a routine error (see IsTransportPanic).
type FatalError struct {
	// Rank is the local PE that observed the failure; Peer is the remote
	// side, or -1 when the failure is not attributable to one peer.
	Rank, Peer int
	Msg        string
}

func (e *FatalError) Error() string { return e.Msg }

// IsTransportPanic reports whether a recovered panic value originated in
// the transport layer: a recoverable Fault or an unrecoverable
// *FatalError. Recovery boundaries in cluster code must re-panic
// anything else — a nil dereference in the sampler presenting as a
// routine transport failure would silently corrupt the run instead of
// crashing it.
func IsTransportPanic(r any) bool {
	if _, ok := r.(Fault); ok {
		return true
	}
	_, ok := r.(*FatalError)
	return ok
}
