package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
)

// This file is the wire codec: a hand-rolled binary fast path past gob
// for the hot payload types that dominate inter-node traffic (gather
// chunks, key/item vectors, reduce accumulators, control frames).
//
// Every payload body on a wire transport starts with a one-byte
// discriminator:
//
//	0x00  gob     — the rest is a self-contained gob stream encoding the
//	               payload as an interface value (cold control-plane
//	               types: nodesvc commands, anything unregistered).
//	0x01  wire    — one wire-ID byte naming a registered Marshaler,
//	               then that codec's binary encoding of the value.
//
// Wire IDs are assigned statically in the constant block below — across
// packages — so every process of a cluster agrees on the mapping
// regardless of package init order or which packages are linked in.
// Codecs are registered from package init functions only; the registry
// is read-only after program start, so lookups take no locks.
//
// Encodings use little-endian fixed-width words for floats and raw
// 64-bit fields, and varints (unsigned, or zigzag for signed values)
// for counts and ranks. Decoders run against hostile input: a slice
// length is validated against the bytes actually present before any
// allocation (a 10-byte frame cannot claim a billion elements), and
// trailing bytes after a complete value are rejected.

// MaxPayloadBytes caps one encoded message body, discriminator included.
// Wire transports refuse larger messages; the gob fallback encoder
// writes through a size-limited writer so a runaway payload aborts at
// the cap instead of materializing a multi-gigabyte buffer first.
const MaxPayloadBytes = 1 << 30

// Payload discriminator bytes (the first byte of every encoded body).
const (
	payloadGob  = 0x00
	payloadWire = 0x01
)

// maxNestedPayloads bounds envelope-in-envelope recursion during decode
// so a hostile frame cannot drive DecodePayload arbitrarily deep.
const maxNestedPayloads = 4

// Static wire-ID assignments. IDs live here, not in the registering
// packages, so the full mapping is auditable in one place and two
// packages can never collide silently.
const (
	// Registered by this package (builtins).
	WireIDInt      uint8 = 1 // int: zigzag varint
	WireIDFloat64  uint8 = 2 // float64: 8-byte LE bits
	WireIDIntSlice uint8 = 3 // []int: uvarint count, zigzag varints

	// Registered by internal/core (and the root package) for the
	// sampler hot path.
	WireIDKey             uint8 = 8  // btree.Key
	WireIDKeySlice        uint8 = 9  // []btree.Key
	WireIDItemSlice       uint8 = 10 // []workload.Item
	WireIDItemChunks      uint8 = 11 // []coll.Chunk[workload.Item]
	WireIDKeyChunks       uint8 = 12 // []coll.Chunk[btree.Key]
	WireIDKeyedItemChunks uint8 = 13 // []coll.Chunk[core.keyedItem]
	WireIDThreshMsg       uint8 = 14 // core threshold broadcast
	WireIDCounters        uint8 = 15 // core.Counters
	WireIDNetworkStats    uint8 = 16 // reservoir.NetworkStats
	WireIDIntChunks       uint8 = 18 // []coll.Chunk[int] (AllGather of sizes)
	WireIDIntTable        uint8 = 19 // [][]int (AllGather broadcast of the rank table)
	WireIDClusterStats    uint8 = 20 // reservoir.clusterStats (merged stats all-reduction)
	WireIDCommand         uint8 = 21 // nodesvc.command (per-round control broadcast)
	WireIDResyncMsg       uint8 = 22 // nodesvc.resyncMsg (recovery control plane)

	// Registered by internal/transport/faultnet.
	WireIDEnvelope uint8 = 17 // faultnet.envelope (wraps a nested payload)
)

// Marshaler is one concrete payload type's hand-rolled wire codec: the
// fast path past the gob fallback. Construct and register one with
// RegisterMarshaler from a package init function.
type Marshaler struct {
	id     uint8
	name   string
	append func(buf []byte, v any) []byte
	decode func(d *Dec) (any, error)
}

var (
	wireByType = map[reflect.Type]*Marshaler{}
	wireByID   [256]*Marshaler
)

// RegisterMarshaler installs a wire codec for T under the given static
// wire ID. enc appends T's binary encoding to buf and returns the
// extended slice; dec reads exactly one value from the cursor (the
// registry rejects trailing bytes afterwards). Must be called from
// package init only — the registry is lock-free read-only afterwards —
// and panics on a duplicate ID or type, which is always a wiring bug.
func RegisterMarshaler[T any](id uint8, enc func(buf []byte, v T) []byte, dec func(d *Dec) (T, error)) {
	var zero T
	t := reflect.TypeOf(zero)
	name := t.String()
	if wireByID[id] != nil {
		panic(fmt.Sprintf("transport: wire ID %d already registered for %s", id, wireByID[id].name))
	}
	if _, dup := wireByType[t]; dup {
		panic(fmt.Sprintf("transport: wire codec for %s registered twice", name))
	}
	m := &Marshaler{
		id:   id,
		name: name,
		append: func(buf []byte, v any) []byte {
			return enc(buf, v.(T))
		},
		decode: func(d *Dec) (any, error) {
			return dec(d)
		},
	}
	wireByType[t] = m
	wireByID[id] = m
}

// AppendPayload appends the encoded body for payload v to buf and
// returns the extended slice: the discriminator byte, then either the
// registered wire codec's binary encoding or a gob stream. It panics if
// v cannot be encoded or if the encoding exceeds MaxPayloadBytes — both
// are programming errors at the send site, and the cap trips during
// encoding (via a size-limited writer on the gob path) rather than
// after an oversized buffer has been built.
func AppendPayload(buf []byte, v any) []byte {
	if m := wireByType[reflect.TypeOf(v)]; m != nil {
		buf = append(buf, payloadWire, m.id)
		buf = m.append(buf, v)
		if len(buf) > MaxPayloadBytes {
			panic(fmt.Sprintf("transport: encoded %s exceeds %d bytes", m.name, MaxPayloadBytes))
		}
		return buf
	}
	buf = append(buf, payloadGob)
	w := cappedAppender{buf: &buf, limit: MaxPayloadBytes}
	if err := gob.NewEncoder(&w).Encode(&v); err != nil {
		panic(fmt.Sprintf("transport: encoding %T: %v", v, err))
	}
	return buf
}

// cappedAppender appends into *buf, refusing the first write that would
// push the body past limit — so a runaway gob payload fails as the
// encoder flushes, not after an oversized buffer has been materialized.
type cappedAppender struct {
	buf   *[]byte
	limit int
}

func (w cappedAppender) Write(p []byte) (int, error) {
	if len(*w.buf)+len(p) > w.limit {
		return 0, fmt.Errorf("transport: message exceeds %d bytes", w.limit)
	}
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// DecodePayload decodes one message body produced by AppendPayload.
// Unknown discriminators and wire IDs, truncated values, length-lying
// slice headers, and trailing garbage all return errors — never panics
// and never large speculative allocations (fuzzed; see wire_fuzz_test).
func DecodePayload(data []byte) (any, error) {
	return decodePayload(data, 0)
}

func decodePayload(data []byte, depth int) (any, error) {
	if depth > maxNestedPayloads {
		return nil, fmt.Errorf("transport: wire payload nested deeper than %d", maxNestedPayloads)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("transport: empty payload body")
	}
	switch data[0] {
	case payloadGob:
		var v any
		if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&v); err != nil {
			return nil, fmt.Errorf("transport: gob payload: %w", err)
		}
		return v, nil
	case payloadWire:
		if len(data) < 2 {
			return nil, fmt.Errorf("transport: wire payload missing codec ID")
		}
		m := wireByID[data[1]]
		if m == nil {
			return nil, fmt.Errorf("transport: unknown wire codec ID 0x%02x", data[1])
		}
		d := &Dec{b: data[2:], depth: depth}
		v, err := m.decode(d)
		if err != nil {
			return nil, fmt.Errorf("transport: decoding %s: %w", m.name, err)
		}
		if err := d.Close(); err != nil {
			return nil, fmt.Errorf("transport: decoding %s: %w", m.name, err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("transport: unknown payload discriminator 0x%02x", data[0])
	}
}

// Encode helpers for wire codecs.

// AppendUvarint appends x as an unsigned varint.
func AppendUvarint(buf []byte, x uint64) []byte { return binary.AppendUvarint(buf, x) }

// AppendVarint appends x as a zigzag-encoded signed varint.
func AppendVarint(buf []byte, x int64) []byte { return binary.AppendVarint(buf, x) }

// AppendU64 appends x as 8 little-endian bytes.
func AppendU64(buf []byte, x uint64) []byte { return binary.LittleEndian.AppendUint64(buf, x) }

// AppendF64 appends x's IEEE-754 bits as 8 little-endian bytes
// (bit-exact round-trips, NaN payloads included — the equivalence suite
// demands byte-identical samples across backends).
func AppendF64(buf []byte, x float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
}

// AppendBool appends x as one byte (0 or 1).
func AppendBool(buf []byte, x bool) []byte {
	if x {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendBytes appends b as a length-prefixed byte string (uvarint count,
// raw bytes). Pair with Dec.Bytes.
func AppendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Dec is a bounds-checked decode cursor over one wire payload body.
// Read methods record the first failure instead of panicking; check Err
// mid-decode before trusting a length, or let the registry's Close call
// surface it. After an error every subsequent read returns zero values.
type Dec struct {
	b     []byte
	off   int
	depth int
	err   error
}

// NewDec returns a cursor over b (tests and nested codecs; transports
// go through DecodePayload).
func NewDec(b []byte) *Dec { return &Dec{b: b} }

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated or malformed %s at offset %d", what, d.off)
	}
}

// Err returns the first decode failure, if any.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Dec) Remaining() int { return len(d.b) - d.off }

// Close returns the first decode failure, or an error if unread bytes
// remain — a complete value must consume its body exactly.
func (d *Dec) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("%d trailing bytes after value", len(d.b)-d.off)
	}
	return nil
}

// U8 reads one byte.
func (d *Dec) U8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Bool reads one byte as a strict boolean (0 or 1).
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bool")
		return false
	}
}

// U64 reads 8 little-endian bytes.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

// F64 reads 8 little-endian bytes as IEEE-754 float bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed varint as an int.
func (d *Dec) Int() int { return int(d.Varint()) }

// Len reads a slice length and validates it against the bytes still
// present: each claimed element needs at least elemMin encoded bytes,
// so a length-lying header fails here — before any allocation — rather
// than sizing a make() from attacker-controlled input. elemMin must be
// the minimum (not typical) encoded element size, ≥ 1.
func (d *Dec) Len(elemMin int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining())/uint64(elemMin) {
		d.fail("slice length")
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string (see AppendBytes). The
// result is a copy: decode buffers are pooled by the transport and reused
// after the message is consumed, so aliasing them would corrupt values
// that outlive the decode.
func (d *Dec) Bytes() []byte {
	n := d.Len(1)
	if d.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:d.off+n])
	d.off += n
	return out
}

// Payload decodes all remaining bytes as one nested wire payload —
// envelope-style codecs (faultnet) wrap another message this way.
// Nesting depth is bounded; see maxNestedPayloads.
func (d *Dec) Payload() (any, error) {
	if d.err != nil {
		return nil, d.err
	}
	rest := d.b[d.off:]
	d.off = len(d.b)
	return decodePayload(rest, d.depth+1)
}

// Flusher is implemented by transports that buffer sends per peer link
// until an explicit flush (tcpnet's send batching). The collectives
// flush at operation exit, and a batching transport's Recv must flush
// its own pending sends before blocking so SPMD lockstep code never
// deadlocks on its own buffered traffic.
type Flusher interface {
	Flush()
}

// FlushConn flushes c's buffered sends if the transport batches them;
// a no-op for every other Conn (the simulator delivers synchronously).
func FlushConn(c Conn) {
	if f, ok := c.(Flusher); ok {
		f.Flush()
	}
}

// Builtin codecs for the scalar and []int payloads every collective
// leans on (sizes, counts, reduce accumulators).
func init() {
	RegisterMarshaler(WireIDInt,
		func(buf []byte, v int) []byte { return AppendVarint(buf, int64(v)) },
		func(d *Dec) (int, error) { return d.Int(), d.Err() })
	RegisterMarshaler(WireIDFloat64,
		func(buf []byte, v float64) []byte { return AppendF64(buf, v) },
		func(d *Dec) (float64, error) { return d.F64(), d.Err() })
	RegisterMarshaler(WireIDIntSlice,
		func(buf []byte, v []int) []byte {
			buf = AppendUvarint(buf, uint64(len(v)))
			for _, x := range v {
				buf = AppendVarint(buf, int64(x))
			}
			return buf
		},
		func(d *Dec) ([]int, error) {
			n := d.Len(1)
			if d.Err() != nil {
				return nil, d.Err()
			}
			v := make([]int, n)
			for i := range v {
				v[i] = d.Int()
			}
			return v, d.Err()
		})
}
