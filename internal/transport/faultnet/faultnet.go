// Package faultnet is a deterministic fault-injecting wrapper around any
// transport.Conn: it subjects every point-to-point message to a seeded
// schedule of drops, delays, duplicates, corruptions, and partition
// windows, while guaranteeing that the receiver still delivers exactly
// the sender's payload sequence. It is the repeatable half of the chaos
// toolkit: where scripts/chaos_cluster.sh kills real processes, faultnet
// reproduces every network failure mode in-process, bit-for-bit, over
// both the simulator (internal/simnet) and the real network
// (internal/transport/tcpnet).
//
// # Protocol
//
// Each logical Send is wrapped in an envelope carrying a per-destination
// sequence number. The seeded schedule then decides the message's fate:
//
//   - drop: the copy is lost in transit (nothing reaches the wire); the
//     sender "times out" and retransmits. Modeled as a charged retransmit
//     delay followed by the next copy.
//   - corrupt: the copy reaches the receiver mangled (Corrupt envelope);
//     the receiver's integrity check discards it, and the sender
//     retransmits — the wire analogue of tcpnet's CRC rejection.
//   - duplicate: the good copy is sent twice; the receiver deduplicates
//     by sequence number.
//   - delay: the message is charged DelayNS before transmission
//     (virtual time via Conn.Work on the simulator; optionally a real
//     time.Sleep on wall-clock transports).
//   - partition: sends to a peer whose schedule window covers the
//     message index are deferred (charged like delays) and then
//     delivered — a healed partition, not a permanent one, because the
//     SPMD collectives deadlock under permanent loss by design.
//
// Because a good copy is always transmitted eventually and the receiver
// discards corrupt and duplicate copies, the delivered payload sequence
// is identical to a fault-free run: fault schedules change only
// latencies and retry counts, never the sampling result. The
// faultnet equivalence tests pin exactly that property. One modeling
// artifact follows from lazy (receive-time) discarding: a redundant copy
// of the final message on a (peer, tag) stream can stay unclaimed in the
// receiver's mailbox, so the usual "no pending messages after an SPMD
// section" invariant does not hold under fault injection.
//
// Fault injection composes with fault *tolerance* only loosely: faultnet
// assumes the peer set is fixed for its lifetime (sequence numbers are
// per-incarnation), so it is not meant to wrap a transport whose peers
// crash and rejoin mid-run — use process-level chaos
// (scripts/chaos_cluster.sh) for that failure class.
//
// The schedule is deterministic: every (sender, destination) pair owns a
// dedicated PRNG seeded from Config.Seed, the sender's rank, and the
// destination rank, so a given seed reproduces the identical fault
// pattern regardless of timing, scheduling, or transport backend.
package faultnet

import (
	"fmt"
	"time"

	"reservoir/internal/rng"
	"reservoir/internal/transport"
)

// Partition defers sends to Peer while the per-destination message index
// lies in the half-open window [From, To) — a temporary network partition
// that heals at To. Indexes count logical messages (Send calls) to that
// peer, starting at 1.
type Partition struct {
	Peer     int
	From, To uint64
}

// Config is a fault schedule. All probabilities are per logical message
// and independent; zero values inject nothing.
type Config struct {
	// Seed drives the deterministic schedule (combined with the local
	// rank and the destination rank per directed pair).
	Seed uint64
	// Drop is the probability a transmitted copy is lost and must be
	// retransmitted after a timeout.
	Drop float64
	// Corrupt is the probability a transmitted copy arrives mangled and
	// is discarded by the receiver's integrity check.
	Corrupt float64
	// Duplicate is the probability the good copy is transmitted twice.
	Duplicate float64
	// Delay is the probability a message is delayed by DelayNS before
	// transmission.
	Delay float64
	// DelayNS is the latency charged per delay, per drop timeout, and
	// per partition deferral (default 1ms worth of nanoseconds).
	DelayNS float64
	// WallDelay additionally sleeps DelayNS of real time per charged
	// delay — only useful on wall-clock transports, where Conn.Work is a
	// no-op. Keep it off for virtual-time simulations.
	WallDelay bool
	// MaxRetries bounds consecutive drop/corrupt retransmissions of one
	// message so pathological schedules still terminate (default 16).
	MaxRetries int
	// Partitions lists temporary partition windows (see Partition).
	Partitions []Partition
}

// Stats counts injected faults and receiver-side discards. Retransmits
// counts the extra transmissions forced by drops and corruptions;
// Deferred counts sends delayed by a partition window.
type Stats struct {
	Sent        int64 // logical messages submitted by the application
	Dropped     int64 // copies lost in transit (sender retransmitted)
	Corrupted   int64 // copies delivered mangled (receiver discarded)
	Duplicated  int64 // good copies transmitted twice
	Delayed     int64 // messages charged a transmission delay
	Deferred    int64 // messages deferred by a partition window
	Retransmits int64
	Discarded   int64 // receiver-side discards (corrupt or duplicate copies)
}

// envelope frames one copy of a logical message on the underlying
// transport. Fields are exported so wire transports can gob-encode it;
// a Corrupt envelope carries no payload — it models a copy the
// receiver's integrity check rejects.
type envelope struct {
	Seq     uint64
	Corrupt bool
	Payload any
}

// The envelope's wire codec nests the wrapped payload's own encoding,
// so fault-injected runs keep the binary fast path for hot traffic:
// an envelope around a gather chunk costs a few header bytes, not a
// fall-back to gob for the whole message.
func init() {
	transport.RegisterMarshaler(transport.WireIDEnvelope,
		func(buf []byte, v envelope) []byte {
			buf = transport.AppendUvarint(buf, v.Seq)
			buf = transport.AppendBool(buf, v.Corrupt)
			buf = transport.AppendBool(buf, v.Payload != nil)
			if v.Payload != nil {
				buf = transport.AppendPayload(buf, v.Payload)
			}
			return buf
		},
		func(d *transport.Dec) (envelope, error) {
			v := envelope{Seq: d.Uvarint(), Corrupt: d.Bool()}
			hasPayload := d.Bool()
			if err := d.Err(); err != nil {
				return envelope{}, err
			}
			if hasPayload {
				p, err := d.Payload()
				if err != nil {
					return envelope{}, err
				}
				v.Payload = p
			}
			return v, nil
		})
}

type pairTag struct{ from, tag int }

// Conn wraps a transport.Conn with fault injection. Like every
// transport.Conn it is owned by a single goroutine; it must wrap the
// endpoint of every PE that communicates with a faulty peer — in
// practice, wrap all endpoints of the cluster with the same Config.
type Conn struct {
	inner transport.Conn
	cfg   Config

	rngs    []*rng.Xoshiro256 // per-destination schedule PRNGs
	sendSeq []uint64          // per-destination logical message counter
	lastSeq map[pairTag]uint64

	stats Stats
}

var _ transport.Conn = (*Conn)(nil)

// New wraps conn with the given fault schedule.
func New(conn transport.Conn, cfg Config) *Conn {
	if cfg.DelayNS <= 0 {
		cfg.DelayNS = 1e6 // 1ms
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 16
	}
	p := conn.P()
	c := &Conn{
		inner:   conn,
		cfg:     cfg,
		rngs:    make([]*rng.Xoshiro256, p),
		sendSeq: make([]uint64, p),
		lastSeq: make(map[pairTag]uint64),
	}
	for to := 0; to < p; to++ {
		c.rngs[to] = rng.NewXoshiro256(rng.Mix64(
			cfg.Seed ^ 0x9e3779b97f4a7c15*uint64(conn.ID()+1) ^ 0xbf58476d1ce4e5b9*uint64(to+1)))
	}
	transport.Register(envelope{})
	return c
}

// ID implements transport.Conn.
func (c *Conn) ID() int { return c.inner.ID() }

// P implements transport.Conn.
func (c *Conn) P() int { return c.inner.P() }

// Work implements transport.Conn.
func (c *Conn) Work(ns float64) { c.inner.Work(ns) }

// Clock implements transport.Conn.
func (c *Conn) Clock() float64 { return c.inner.Clock() }

// charge applies one scheduled latency penalty.
func (c *Conn) charge() {
	c.inner.Work(c.cfg.DelayNS)
	if c.cfg.WallDelay {
		time.Sleep(time.Duration(c.cfg.DelayNS))
	}
}

// partitioned reports whether message index idx to peer falls in a
// partition window.
func (c *Conn) partitioned(peer int, idx uint64) bool {
	for _, p := range c.cfg.Partitions {
		if p.Peer == peer && idx >= p.From && idx < p.To {
			return true
		}
	}
	return false
}

// Send implements transport.Conn: submit one logical message to the
// fault schedule. At least one good copy always reaches the underlying
// transport.
func (c *Conn) Send(to, tag int, payload any, words int) {
	c.stats.Sent++
	c.sendSeq[to]++
	seq := c.sendSeq[to]
	r := c.rngs[to]

	if c.partitioned(to, seq) {
		// Deferred behind the partition: charged like a delay, delivered
		// once the window heals.
		c.stats.Deferred++
		c.charge()
	}
	if c.cfg.Delay > 0 && rng.U01(r) < c.cfg.Delay {
		c.stats.Delayed++
		c.charge()
	}
	good := envelope{Seq: seq, Payload: payload}
	for retries := 0; retries < c.cfg.MaxRetries; retries++ {
		roll := rng.U01(r)
		if roll < c.cfg.Drop {
			// Copy lost in transit: nothing on the wire; the sender's
			// retransmission timer fires and the loop sends again.
			c.stats.Dropped++
			c.stats.Retransmits++
			c.charge()
			continue
		}
		if roll < c.cfg.Drop+c.cfg.Corrupt {
			// Copy arrives mangled: the receiver discards it (tcpnet
			// would reject the CRC), and the sender retransmits.
			c.inner.Send(to, tag, envelope{Seq: seq, Corrupt: true}, words)
			c.stats.Corrupted++
			c.stats.Retransmits++
			c.charge()
			continue
		}
		break
	}
	c.inner.Send(to, tag, good, words)
	if c.cfg.Duplicate > 0 && rng.U01(r) < c.cfg.Duplicate {
		c.inner.Send(to, tag, good, words)
		c.stats.Duplicated++
	}
}

// Recv implements transport.Conn: deliver the next logical message from
// (from, tag), discarding corrupt copies and duplicates. Sequence
// numbers along one (from, tag) stream are strictly increasing and the
// underlying mailbox is FIFO per stream, so a copy whose sequence number
// does not exceed the last delivered one is a duplicate.
func (c *Conn) Recv(from, tag int) any {
	key := pairTag{from, tag}
	for {
		m := c.inner.Recv(from, tag)
		env, ok := m.(envelope)
		if !ok {
			panic(fmt.Sprintf("faultnet: rank %d received a bare message from peer %d tag %d (peer not wrapped in faultnet?)",
				c.ID(), from, tag))
		}
		if env.Corrupt {
			c.stats.Discarded++
			continue
		}
		if last, seen := c.lastSeq[key]; seen && env.Seq <= last {
			c.stats.Discarded++
			continue
		}
		c.lastSeq[key] = env.Seq
		return env.Payload
	}
}

// Flush implements transport.Flusher by delegating to the underlying
// transport's send batching (fault injection itself never buffers: every
// scheduled copy is submitted inline from Send).
func (c *Conn) Flush() { transport.FlushConn(c.inner) }

// FaultStats returns the fault counters accumulated so far.
func (c *Conn) FaultStats() Stats { return c.stats }

// Stats implements transport.StatsSource by delegating to the underlying
// transport when it reports traffic counters (retransmitted and
// duplicated copies are real traffic and show up there).
func (c *Conn) Stats() transport.Stats {
	if s, ok := c.inner.(transport.StatsSource); ok {
		return s.Stats()
	}
	return transport.Stats{}
}

// Close closes the underlying transport when it is closable.
func (c *Conn) Close() error {
	if cl, ok := c.inner.(interface{ Close() error }); ok {
		return cl.Close()
	}
	return nil
}
