package faultnet_test

// The faultnet equivalence suite pins the package's core guarantee: a
// fault schedule (drops, delays, duplicates, corruptions, partitions)
// changes retry counts and latency but NEVER the delivered payload
// sequence — a sampling run over a faulty network produces the
// byte-identical sample of a fault-free run, over both the simulator
// and real TCP.

import (
	"fmt"
	"sync"
	"testing"

	"reservoir/internal/coll"
	"reservoir/internal/core"
	"reservoir/internal/simnet"
	"reservoir/internal/transport"
	"reservoir/internal/transport/faultnet"
	"reservoir/internal/transport/tcpnet"
	"reservoir/internal/workload"
)

// aggressiveSchedule injects every fault kind at rates high enough that a
// multi-round sampling run exercises each one many times.
func aggressiveSchedule(seed uint64) faultnet.Config {
	return faultnet.Config{
		Seed:      seed,
		Drop:      0.08,
		Corrupt:   0.05,
		Duplicate: 0.10,
		Delay:     0.15,
		DelayNS:   5e5,
	}
}

// runSimnet executes body SPMD over a simulated cluster, optionally
// wrapping every PE endpoint in a faultnet schedule, and returns the
// summed fault stats.
func runSimnet(t *testing.T, p int, cfg *faultnet.Config, body func(c *coll.Comm)) faultnet.Stats {
	t.Helper()
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	var mu sync.Mutex
	var total faultnet.Stats
	cl.Parallel(func(pe *simnet.PE) {
		var conn transport.Conn = pe
		var fc *faultnet.Conn
		if cfg != nil {
			fc = faultnet.New(pe, *cfg)
			conn = fc
		}
		body(coll.New(conn))
		if fc != nil {
			mu.Lock()
			addStats(&total, fc.FaultStats())
			mu.Unlock()
		}
	})
	// Redundant copies (duplicates, corrupt copies awaiting a retransmit
	// the receiver never needed) may stay unclaimed in the mailboxes, so
	// the no-leak invariant only holds for fault-free runs.
	if cfg == nil {
		if n := cl.PendingMessages(); n != 0 {
			t.Fatalf("simnet: %d leaked messages", n)
		}
	}
	return total
}

// runTCP executes body SPMD over a loopback TCP mesh with optional fault
// injection on every node.
func runTCP(t *testing.T, p int, cfg *faultnet.Config, body func(c *coll.Comm)) faultnet.Stats {
	t.Helper()
	ts, err := tcpnet.Loopback(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	var mu sync.Mutex
	var total faultnet.Stats
	panics := make([]any, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() { panics[rank] = recover() }()
			var conn transport.Conn = ts[rank]
			var fc *faultnet.Conn
			if cfg != nil {
				fc = faultnet.New(conn, *cfg)
				conn = fc
			}
			body(coll.New(conn))
			if fc != nil {
				mu.Lock()
				addStats(&total, fc.FaultStats())
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for rank, r := range panics {
		if r != nil {
			t.Fatalf("tcpnet: rank %d panicked: %v", rank, r)
		}
	}
	return total
}

func addStats(dst *faultnet.Stats, s faultnet.Stats) {
	dst.Sent += s.Sent
	dst.Dropped += s.Dropped
	dst.Corrupted += s.Corrupted
	dst.Duplicated += s.Duplicated
	dst.Delayed += s.Delayed
	dst.Deferred += s.Deferred
	dst.Retransmits += s.Retransmits
	dst.Discarded += s.Discarded
}

// driveSampler runs a full multi-round sampling workload and returns the
// rank-0 sample.
func driveSampler(c *coll.Comm, cfg core.Config, algo string, rounds, batch int) []workload.Item {
	var s core.Sampler
	var err error
	if algo == "gather" {
		s, err = core.NewGatherPE(c, cfg)
	} else {
		s, err = core.NewDistPE(c, cfg)
	}
	if err != nil {
		panic(err)
	}
	src := workload.UniformSource{Seed: cfg.Seed + 99, BatchLen: batch, Lo: 0, Hi: 100}
	for round := 0; round < rounds; round++ {
		s.ProcessBatch(src.NextBatch(c.Rank(), round))
	}
	return s.CollectSample()
}

func sampleEqual(t *testing.T, label string, want, got []workload.Item) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: sample sizes differ: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: sample[%d] differs: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

func TestFaultScheduleNeverChangesTheSample(t *testing.T) {
	cases := []struct {
		name string
		algo string
		cfg  core.Config
	}{
		{"distributed-weighted", "ours", core.Config{K: 64, Weighted: true, Seed: 42}},
		{"distributed-uniform", "ours", core.Config{K: 48, Seed: 7}},
		{"gather-baseline", "gather", core.Config{K: 64, Weighted: true, Seed: 23}},
	}
	const p, rounds, batch = 4, 6, 800
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(exec func(*testing.T, int, *faultnet.Config, func(*coll.Comm)) faultnet.Stats, fcfg *faultnet.Config) ([]workload.Item, faultnet.Stats) {
				var mu sync.Mutex
				var sample []workload.Item
				stats := exec(t, p, fcfg, func(c *coll.Comm) {
					s := driveSampler(c, tc.cfg, tc.algo, rounds, batch)
					if c.Rank() == 0 {
						mu.Lock()
						sample = s
						mu.Unlock()
					}
				})
				return sample, stats
			}
			sched := aggressiveSchedule(2026)

			clean, _ := run(runSimnet, nil)
			faulty, st := run(runSimnet, &sched)
			sampleEqual(t, "simnet faulty vs clean", clean, faulty)
			if st.Dropped == 0 || st.Corrupted == 0 || st.Duplicated == 0 || st.Delayed == 0 {
				t.Fatalf("schedule injected too little: %+v", st)
			}
			if st.Retransmits == 0 || st.Discarded == 0 {
				t.Fatalf("faults did not force retries/discards: %+v", st)
			}

			tcpFaulty, tst := run(runTCP, &sched)
			sampleEqual(t, "tcpnet faulty vs clean simnet", clean, tcpFaulty)
			if tst.Dropped == 0 || tst.Duplicated == 0 {
				t.Fatalf("tcp schedule injected too little: %+v", tst)
			}
		})
	}
}

func TestPartitionWindowDefersButDelivers(t *testing.T) {
	const p = 4
	cfg := core.Config{K: 32, Weighted: true, Seed: 5}
	run := func(fcfg *faultnet.Config) ([]workload.Item, faultnet.Stats) {
		var mu sync.Mutex
		var sample []workload.Item
		st := runSimnet(t, p, fcfg, func(c *coll.Comm) {
			s := driveSampler(c, cfg, "ours", 5, 400)
			if c.Rank() == 0 {
				mu.Lock()
				sample = s
				mu.Unlock()
			}
		})
		return sample, st
	}
	clean, _ := run(nil)
	// Partition peers 1 and 2 away for a window of message indexes: every
	// send in the window is deferred behind the healed partition.
	sched := faultnet.Config{
		Seed:    9,
		DelayNS: 1e6,
		Partitions: []faultnet.Partition{
			{Peer: 1, From: 3, To: 20},
			{Peer: 2, From: 10, To: 40},
		},
	}
	part, st := run(&sched)
	sampleEqual(t, "partitioned vs clean", clean, part)
	if st.Deferred == 0 {
		t.Fatalf("partition windows deferred nothing: %+v", st)
	}
}

// TestScheduleIsDeterministic: the same seed must reproduce the identical
// fault pattern, independent of goroutine scheduling.
func TestScheduleIsDeterministic(t *testing.T) {
	cfg := core.Config{K: 32, Weighted: true, Seed: 13}
	sched := aggressiveSchedule(777)
	run := func() faultnet.Stats {
		return runSimnet(t, 4, &sched, func(c *coll.Comm) {
			driveSampler(c, cfg, "ours", 4, 500)
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different schedules:\n  %+v\n  %+v", a, b)
	}
	sched.Seed = 778
	if c := run(); c == a {
		t.Fatalf("different seed produced the identical schedule: %+v", c)
	}
}

// TestUnwrappedPeerIsDetected: a faultnet endpoint receiving a bare
// (non-envelope) message must fail loudly instead of mis-delivering.
func TestUnwrappedPeerIsDetected(t *testing.T) {
	cl := simnet.NewCluster(2, simnet.DefaultCost())
	var panicked any
	cl.Parallel(func(pe *simnet.PE) {
		if pe.ID() == 0 {
			pe.Send(1, 0, "bare", 1) // not wrapped in faultnet
		} else {
			fc := faultnet.New(pe, faultnet.Config{Seed: 1})
			func() {
				defer func() { panicked = recover() }()
				fc.Recv(0, 0)
			}()
		}
	})
	if panicked == nil {
		t.Fatal("bare message was delivered through faultnet without protest")
	}
	if s, ok := panicked.(string); !ok || s == "" {
		t.Fatalf("unexpected panic payload: %v", panicked)
	}
}

// TestStatsDelegation: faultnet forwards traffic counters of the wrapped
// transport, and duplicates show up as real traffic.
func TestStatsDelegation(t *testing.T) {
	ts, err := tcpnet.Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	sched := faultnet.Config{Seed: 3, Duplicate: 1.0} // every message doubled
	var wg sync.WaitGroup
	var msgs [2]int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fc := faultnet.New(ts[rank], sched)
			if rank == 0 {
				fc.Send(1, 7, fmt.Sprintf("m%d", rank), 1)
				fc.Flush() // tcpnet batches sends until a flush point
			} else {
				if got := fc.Recv(0, 7); got != "m0" {
					panic(fmt.Sprintf("got %v", got))
				}
			}
			msgs[rank] = fc.Stats().Messages
		}(i)
	}
	wg.Wait()
	if msgs[0] != 2 {
		t.Fatalf("sender wire messages = %d, want 2 (original + duplicate)", msgs[0])
	}
}
