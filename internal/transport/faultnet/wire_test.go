package faultnet

import (
	"math"
	"reflect"
	"testing"

	"reservoir/internal/transport"
)

// The envelope codec nests the wrapped payload's own wire encoding; both
// layers must survive the round trip so fault-injected tcpnet runs stay
// byte-equivalent to bare ones.
func TestEnvelopeWireRoundTrip(t *testing.T) {
	cases := []envelope{
		{Seq: 0, Payload: []int{1, -2, 3}},
		{Seq: 1 << 40, Payload: math.Copysign(0, -1)},
		{Seq: 7, Corrupt: true}, // corrupt copies carry no payload
	}
	for _, env := range cases {
		body := transport.AppendPayload(nil, env)
		got, err := transport.DecodePayload(body)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", env.Seq, err)
		}
		genv, ok := got.(envelope)
		if !ok {
			t.Fatalf("seq %d: decoded %T, want envelope", env.Seq, got)
		}
		if genv.Seq != env.Seq || genv.Corrupt != env.Corrupt {
			t.Fatalf("header round trip: sent %+v, got %+v", env, genv)
		}
		if f, fok := env.Payload.(float64); fok {
			if math.Float64bits(genv.Payload.(float64)) != math.Float64bits(f) {
				t.Fatalf("float payload not bit-exact: %v vs %v", env.Payload, genv.Payload)
			}
		} else if !reflect.DeepEqual(genv.Payload, env.Payload) {
			t.Fatalf("payload round trip: sent %v, got %v", env.Payload, genv.Payload)
		}
	}
}

// A hostile frame nesting envelopes in envelopes must hit the decoder's
// depth bound, not the goroutine stack.
func TestEnvelopeNestingBounded(t *testing.T) {
	body := transport.AppendPayload(nil, 42)
	for i := 0; i < 64; i++ {
		hdr := []byte{0x01, transport.WireIDEnvelope}
		hdr = transport.AppendUvarint(hdr, uint64(i))
		hdr = transport.AppendBool(hdr, false)
		hdr = transport.AppendBool(hdr, true)
		body = append(hdr, body...)
	}
	if _, err := transport.DecodePayload(body); err == nil {
		t.Fatal("64-deep envelope nest decoded without tripping the depth bound")
	}
}
