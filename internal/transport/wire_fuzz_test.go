package transport

import (
	"math"
	"testing"
)

// FuzzDecodePayload drives the payload decoder with hostile bodies. The
// decoder's contract under arbitrary input: return an error or a value —
// never panic, and never size an allocation from a length header the
// bytes present cannot back (PR 3's bar for every decoder in the repo).
// Values that do decode must re-encode and decode to the same thing.
func FuzzDecodePayload(f *testing.F) {
	// Valid bodies for every builtin codec, so mutation starts from
	// format-aware corpora rather than noise.
	f.Add(AppendPayload(nil, int(-12345)))
	f.Add(AppendPayload(nil, math.Copysign(0, -1)))
	f.Add(AppendPayload(nil, []int{1, -2, 1 << 40}))
	f.Add(AppendPayload(nil, "a cold gob string"))
	// Hostile shapes: length-lying header, unknown ID, bare discriminators.
	f.Add(append([]byte{0x01, WireIDIntSlice}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F))
	f.Add([]byte{0x01, 0xEE})
	f.Add([]byte{0x01})
	f.Add([]byte{0x00})
	f.Add([]byte{0x7F, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodePayload(data)
		if err != nil || v == nil {
			return
		}
		// Whatever decoded must survive a round trip: re-encoding takes
		// the wire path for registered types and gob for the rest, and
		// both must reproduce the value (modulo gob's legal erasures —
		// a gob-decoded nil slice re-encodes on the wire path as empty).
		body := AppendPayload(nil, v)
		v2, err := DecodePayload(body)
		if err != nil {
			t.Fatalf("re-decoding %T failed: %v", v, err)
		}
		if !gobAgrees(v, v2) {
			t.Fatalf("unstable round trip: %v became %v", v, v2)
		}
	})
}
