package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"strings"
	"testing"
)

// builtinValues covers every codec this package registers, including the
// adversarial float values the equivalence suite cares about (exponential
// keys produce denormals, and simnet/tcpnet parity demands bit-exact
// round-trips even for NaN payloads and negative zero).
func builtinValues() []any {
	return []any{
		int(0), int(1), int(-1), int(math.MaxInt64), int(math.MinInt64),
		float64(0), math.Copysign(0, -1), 1.5, -2.625e-300,
		math.Inf(1), math.Inf(-1), math.Float64frombits(0x7ff8dead_beef0001),
		[]int{}, []int{0}, []int{1, -2, 3, math.MaxInt64, math.MinInt64},
	}
}

// wireEqual compares decoded values bit-exactly: reflect.DeepEqual treats
// NaN != NaN, which is precisely the case the codec must preserve.
func wireEqual(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	if aok && bok {
		return math.Float64bits(af) == math.Float64bits(bf)
	}
	return reflect.DeepEqual(a, b)
}

// gobAgrees is the looser equality for cross-checking against the gob
// fallback, which legally erases two representation details the wire
// codec keeps: a nil slice decodes as empty, and gob's zero-field
// omission turns negative zero into positive zero. Values that differ
// only in those ways still count as agreeing.
func gobAgrees(a, b any) bool {
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	if av.Kind() != bv.Kind() {
		return false
	}
	switch av.Kind() {
	case reflect.Float64:
		fa, fb := av.Float(), bv.Float()
		return fa == fb || math.Float64bits(fa) == math.Float64bits(fb)
	case reflect.Slice:
		if av.Len() != bv.Len() {
			return false
		}
		for i := 0; i < av.Len(); i++ {
			if !gobAgrees(av.Index(i).Interface(), bv.Index(i).Interface()) {
				return false
			}
		}
		return true
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestBuiltinRoundTrip(t *testing.T) {
	for _, v := range builtinValues() {
		body := AppendPayload(nil, v)
		if body[0] != payloadWire {
			t.Fatalf("%T %v: expected the wire fast path, got discriminator 0x%02x", v, v, body[0])
		}
		got, err := DecodePayload(body)
		if err != nil {
			t.Fatalf("%T %v: decode: %v", v, v, err)
		}
		if !wireEqual(got, v) {
			t.Fatalf("%T round trip: sent %v, got %v", v, v, got)
		}
	}
}

// TestWireMatchesGob is the cross-codec property test: the hand-rolled
// binary path and the gob fallback must decode to identical values for
// the same payload, so switching a type onto the fast path can never
// change what a receiver observes.
func TestWireMatchesGob(t *testing.T) {
	for _, v := range builtinValues() {
		Register(v) // the gob path needs the concrete type mapped
		fromWire, err := DecodePayload(AppendPayload(nil, v))
		if err != nil {
			t.Fatalf("%T: wire decode: %v", v, err)
		}
		// Hand-build the gob-fallback body for the same value: the 0x00
		// discriminator followed by a gob stream of the interface value.
		var gb bytes.Buffer
		gb.WriteByte(payloadGob)
		if err := gob.NewEncoder(&gb).Encode(&v); err != nil {
			t.Fatalf("%T: gob encode: %v", v, err)
		}
		fromGob, err := DecodePayload(gb.Bytes())
		if err != nil {
			t.Fatalf("%T: gob decode: %v", v, err)
		}
		if !gobAgrees(fromWire, fromGob) {
			t.Fatalf("%T: wire path decoded %v, gob path decoded %v", v, fromWire, fromGob)
		}
	}
}

// Unregistered types must keep flowing through the gob fallback.
type coldControlMsg struct {
	Name  string
	Ranks []int
}

func TestGobFallbackRoundTrip(t *testing.T) {
	gob.Register(coldControlMsg{})
	v := coldControlMsg{Name: "rebalance", Ranks: []int{3, 1, 4}}
	body := AppendPayload(nil, v)
	if body[0] != payloadGob {
		t.Fatalf("unregistered type should use the gob fallback, got discriminator 0x%02x", body[0])
	}
	got, err := DecodePayload(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip: sent %+v, got %+v", v, got)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	for _, v := range builtinValues() {
		body := AppendPayload(nil, v)
		if _, err := DecodePayload(append(body, 0x00)); err == nil {
			t.Fatalf("%T: trailing byte accepted", v)
		}
	}
}

// Every strict prefix of a valid body must fail cleanly — no panic, no
// partial value.
func TestTruncationRejected(t *testing.T) {
	for _, v := range builtinValues() {
		body := AppendPayload(nil, v)
		for n := 0; n < len(body); n++ {
			if _, err := DecodePayload(body[:n]); err == nil {
				// A prefix of a varint-coded slice can itself be a valid
				// shorter value only if it consumes every byte; Close
				// rejects everything else. A clean decode of a strict
				// prefix would mean the format is not self-delimiting.
				t.Fatalf("%T: %d-byte prefix of a %d-byte body decoded cleanly", v, n, len(body))
			}
		}
	}
}

// A length-lying header must be rejected before the decoder sizes an
// allocation from it: 10 bytes cannot claim a billion elements.
func TestLengthLyingHeaderRejected(t *testing.T) {
	body := []byte{payloadWire, WireIDIntSlice}
	body = AppendUvarint(body, 1<<40) // claims ~10^12 elements, carries none
	_, err := DecodePayload(body)
	if err == nil {
		t.Fatal("length-lying []int header accepted")
	}
	if !strings.Contains(err.Error(), "slice length") {
		t.Fatalf("expected a slice-length error, got: %v", err)
	}
	// And the rejection itself must be cheap: no speculative make() of
	// the claimed size. A handful of allocations covers the error values.
	allocs := testing.AllocsPerRun(20, func() {
		_, _ = DecodePayload(body)
	})
	if allocs > 8 {
		t.Fatalf("rejecting a length-lying header cost %.0f allocations", allocs)
	}
}

func TestMalformedEnvelopes(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"unknown discriminator", []byte{0xAB, 1, 2, 3}},
		{"wire missing ID", []byte{payloadWire}},
		{"unknown wire ID", []byte{payloadWire, 0xEE, 1, 2}},
		{"gob garbage", []byte{payloadGob, 0xFF, 0x00, 0x13}},
	}
	for _, tc := range cases {
		if _, err := DecodePayload(tc.body); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDecStrictBool(t *testing.T) {
	d := NewDec([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("byte 2 accepted as a bool")
	}
}

func TestDecCloseRejectsTrailing(t *testing.T) {
	d := NewDec([]byte{1, 2})
	if d.U8() != 1 {
		t.Fatal("U8 misread")
	}
	if err := d.Close(); err == nil {
		t.Fatal("Close accepted an unread byte")
	}
}

// The gob fallback must abort while encoding once the cap is crossed,
// not after materializing the oversized buffer.
func TestCappedAppenderFailsFast(t *testing.T) {
	var buf []byte
	w := cappedAppender{buf: &buf, limit: 64}
	big := strings.Repeat("x", 1<<16)
	if err := gob.NewEncoder(&w).Encode(&big); err == nil {
		t.Fatal("64-byte cap did not reject a 64KiB payload")
	}
	if len(buf) > 64 {
		t.Fatalf("cap breached: buffer grew to %d bytes", len(buf))
	}
}

// Registration collisions are wiring bugs and must fail loudly at init.
func TestRegisterCollisionPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	// Panics fire before the registry mutates, so these probes leave the
	// real codec table untouched.
	mustPanic("duplicate ID", func() {
		RegisterMarshaler(WireIDInt,
			func(buf []byte, v uint16) []byte { return buf },
			func(d *Dec) (uint16, error) { return 0, nil })
	})
	mustPanic("duplicate type", func() {
		RegisterMarshaler(0xFE,
			func(buf []byte, v float64) []byte { return buf },
			func(d *Dec) (float64, error) { return 0, nil })
	})
}

// Byte strings decode into copies (frame buffers are pooled), validate
// their length against bytes present, and reject truncation.
func TestDecBytes(t *testing.T) {
	src := []byte("control-plane spec")
	enc := AppendBytes(AppendBytes(nil, src), nil)
	d := NewDec(enc)
	got := d.Bytes()
	if string(got) != string(src) {
		t.Fatalf("round trip: got %q want %q", got, src)
	}
	if empty := d.Bytes(); len(empty) != 0 || d.Err() != nil {
		t.Fatalf("empty string: got %q err %v", empty, d.Err())
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Mutating the decode buffer must not reach the returned copy.
	enc[1] ^= 0xFF
	if string(got) != string(src) {
		t.Fatal("Bytes aliased the decode buffer")
	}
	// A length claiming more bytes than remain fails before allocation.
	lying := AppendUvarint(nil, 1<<40)
	d = NewDec(lying)
	if d.Bytes(); d.Err() == nil {
		t.Fatal("length-lying byte string decoded")
	}
	for cut := 1; cut < len(AppendBytes(nil, src)); cut++ {
		d := NewDec(AppendBytes(nil, src)[:cut])
		if d.Bytes(); d.Err() == nil && d.Close() == nil {
			t.Fatalf("truncation to %d bytes decoded", cut)
		}
	}
}
