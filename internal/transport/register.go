package transport

import (
	"encoding/gob"
	"reflect"
)

// Register makes v's concrete type encodable when it crosses a wire
// transport inside an interface payload (gob needs the mapping from type
// name to concrete type on both ends before the first decode). Calling it
// again with the same type is a cheap no-op; nil values are ignored.
//
// The collectives register their payload types on operation entry, so this
// only needs to be called directly for types sent through Conn.Send
// outside the collective layer.
func Register(v any) {
	if v == nil {
		return
	}
	t := reflect.TypeOf(v)
	if t == nil || t.Kind() == reflect.Interface {
		return
	}
	gob.Register(v)
}

// RegisterType registers T's concrete type for wire transports without
// needing a value (the generic collectives use it with their static
// payload type before the first Recv of an operation).
func RegisterType[T any]() {
	var zero T
	Register(any(zero))
}
