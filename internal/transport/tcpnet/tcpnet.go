// Package tcpnet is the real-network transport backend: p OS processes,
// one per PE, connected by a full TCP mesh. It implements transport.Conn,
// so the collectives of internal/coll — and with them the paper's
// Distributed and CentralizedGather samplers — run over actual sockets
// with wall-clock timing instead of the in-process simulator's virtual
// clocks.
//
// # Topology and cluster formation
//
// The cluster is a static rank-indexed peer list (the same list on every
// node). Each node listens on its own entry and opens one *directed*
// connection to every other peer: node i's dialed connection to j carries
// only i→j messages, while j→i traffic arrives on the connection j dialed.
// Directed links make connection establishment race-free by construction —
// there is no simultaneous-open tiebreak — and the only startup hazard
// left is dialing a peer whose listener is not up yet, which Dial absorbs
// by retrying with backoff until the formation deadline. A peer that
// re-dials (e.g. after a partial startup failure or a crash-restart)
// simply replaces its previous inbound connection.
//
// # Wire format
//
// Every connection starts with a fixed handshake frame identifying the
// protocol, the dialer's rank, and the expected cluster size; mismatches
// reject the connection. After the handshake the stream is a sequence of
// length-prefixed message frames:
//
//	u32 payload length | u32 tag | u32 cost-model words | u32 epoch | u32 CRC-32 (IEEE) of payload | payload
//
// Messages above the 64 MiB per-frame cap are written as a contiguous run
// of fragments (high bit set on the length word, CRC per fragment) and
// reassembled by the receiver, so message size is bounded only by a 1 GiB
// memory backstop, not by the framing. In the other direction, small
// same-destination messages coalesce (protocol v4): bit 30 of the length
// word marks a frame whose payload is a run of sub-messages
// [u32 tag | u32 words | u32 len | payload] sharing the frame's epoch and
// CRC, so a collective's burst of tiny sends to one peer costs one header
// and one checksum.
//
// (all little-endian). The payload is the transport wire codec's output
// (see internal/transport's wire.go and DESIGN.md §2.4): a one-byte
// discriminator selecting either a registered hand-rolled binary codec
// for the hot payload types (gather chunks, key/item vectors, reduce
// accumulators) or, for everything else, the gob encoding of the value
// as an interface — so any type registered via transport.Register still
// round-trips and cold control-plane traffic needs no codec work. Each
// payload is self-contained (gob bodies carry their own type
// descriptors): that costs some bytes per gob message versus a
// persistent per-connection encoder, but it is what allows Recv to
// decode lazily in (peer, tag) match order — a stream-stateful encoding
// would force decoding in arrival order, before the receiving rank has
// necessarily entered the collective that registers the payload type.
// Both codec paths encode float64 bit patterns and integers exactly,
// which is what makes a tcpnet sampling run produce byte-identical
// samples to a simnet run with the same seed. The CRC guards against
// corrupt or misframed streams: a mismatch poisons the transport rather
// than delivering a mangled payload to the sampler.
//
// # Send batching
//
// Send buffers frames on the per-peer link instead of flushing each
// message to the socket: a collective that issues many small sends to
// one peer (a gather of chunks, a run of reduce steps) reaches the wire
// as a handful of large writes. Two rules make this deadlock-free in
// SPMD lockstep code: Recv flushes every buffered link before blocking
// (a rank can never wait on a peer while holding traffic that peer
// needs), and the collectives flush at operation exit via
// transport.FlushConn (so a rank leaving its last collective — e.g. the
// shutdown broadcast — leaves nothing stranded in a buffer). Control
// frames (SendCtrl) flush immediately.
//
// # Semantics
//
// Send and Recv match messages by (peer, tag) through a per-node mailbox,
// exactly like the simulator. Work is a no-op (real computation takes real
// time) and Clock reports wall-clock nanoseconds since the transport came
// up. Stats counts this node's outgoing traffic: messages, declared
// cost-model words (comparable with simulated runs), and actual encoded
// bytes on the wire.
//
// # Fault tolerance (Config.RejoinTimeout > 0)
//
// By default a lost or corrupt connection permanently poisons receives
// from that peer — correct for the paper's reliable-PE model, fatal for
// long-lived deployments. With a RejoinTimeout the transport instead
// treats peer loss as a *recoverable fault* to be handled by the layer
// above (internal/nodesvc's resync protocol):
//
//   - Frames carry an epoch number. A resync advances the epoch
//     (AdvanceEpoch) and stale data frames from before the failure are
//     silently discarded, so a retried round never consumes messages of
//     its failed first attempt.
//   - Peer loss marks the peer down and interrupts blocked receives with
//     a typed *FaultError panic (satisfying transport.Fault) instead of
//     poisoning the mailbox; after the recovery protocol completes,
//     ClearFault re-arms the transport.
//   - Losing a link starts a background redial loop (bounded by
//     RejoinTimeout), so a crashed-and-restarted peer finds the
//     survivors dialing back in — which is exactly what its own Dial
//     needs to complete cluster formation again.
//   - A reserved tag carries control-plane messages (SendCtrl/RecvCtrl)
//     that bypass epoch filtering and (peer, tag) matching: the recovery
//     protocol runs over them while the data plane is suspended, and
//     their arrival wakes blocked receivers and CtrlNotify listeners.
package tcpnet

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reservoir/internal/transport"
)

const (
	handshakeMagic  = 0x52535654 // "RSVT"
	protocolVersion = 4          // v4: coalesced frames (v3: wire-codec payload discriminator, v2: epoch frame word, two-way handshake with incarnation)
	handshakeLen    = 21
	frameHeaderLen  = 20
	// maxFramePayload bounds one frame; larger messages are fragmented
	// across frames (fragFlag) and reassembled by the receiver, so the
	// cap is a streaming granularity, not a message size limit.
	maxFramePayload = 1 << 26 // 64 MiB
	// fragFlag marks a frame as a non-final fragment of a larger message
	// (set on the length header word; lengths stay below 1<<26).
	fragFlag = uint32(1) << 31
	// coalFlag marks a coalesced frame (protocol v4): the payload is a run
	// of sub-messages [u32 tag | u32 words | u32 len | payload] sharing the
	// frame's epoch and CRC. Small same-destination sends merge into one
	// frame, so a collective's burst of reduce steps costs one header and
	// one checksum instead of one per message.
	coalFlag = uint32(1) << 30
	// subHeaderLen is the per-sub-message header inside a coalesced frame.
	subHeaderLen = 12
	// coalMaxMsg bounds the bodies that ride the coalescing path; larger
	// messages gain nothing from sharing a header and are framed directly.
	coalMaxMsg = 4096
	// coalMaxBuf bounds one coalesced frame's payload; the pend buffer is
	// emitted into the link's write buffer when it grows past this.
	coalMaxBuf = 32 << 10
	// maxMessageBytes bounds one reassembled message — a memory backstop,
	// far above anything the samplers send. The encoder enforces the same
	// cap during encoding (transport.AppendPayload).
	maxMessageBytes  = transport.MaxPayloadBytes
	defaultFormation = 60 * time.Second
	// linkWriteBuffer sizes each outbound link's write buffer. Batched
	// small sends coalesce up to this many bytes into one syscall before
	// bufio spills; collective exits flush the remainder.
	linkWriteBuffer = 64 << 10

	// CtrlTag is the reserved tag of control-plane frames (recovery
	// handshakes). It is far outside the collective layer's sequential
	// tag space; control frames bypass epoch filtering and are received
	// through RecvCtrl rather than Recv.
	CtrlTag = 0x7fffffff
)

// FaultError is the recoverable-failure signal of a fault-tolerant
// transport: a peer connection was lost, or a control-plane message
// interrupted a blocked receive so the node can join a recovery round.
// Recv and Send panic with a *FaultError (satisfying transport.Fault);
// the serving layer recovers it and runs the resync protocol.
type FaultError struct {
	Rank int // the local rank observing the fault
	Peer int // the lost peer, or -1 for a control-message interrupt
	Msg  string
}

// Error implements error.
func (e *FaultError) Error() string { return e.Msg }

// TransportFault marks the error as recoverable (transport.Fault).
func (e *FaultError) TransportFault() {}

// Config describes one node's place in the cluster.
type Config struct {
	// Rank is this node's id in 0..len(Peers)-1.
	Rank int
	// Peers is the rank-indexed address list ("host:port"), identical on
	// every node. Peers[Rank] is this node's advertised address.
	Peers []string
	// Listen optionally overrides the local listen address (default:
	// ":port" of Peers[Rank], binding all interfaces).
	Listen string
	// Listener optionally provides a pre-bound listener (tests use this
	// with port 0 listeners); Listen is ignored when set.
	Listener net.Listener
	// FormationTimeout bounds cluster formation — dialing all peers and
	// receiving all inbound connections (default 60s).
	FormationTimeout time.Duration
	// RejoinTimeout enables fault tolerance: peer loss interrupts
	// receives with a recoverable *FaultError instead of poisoning the
	// mailbox, and a background redial loop tries to re-reach the peer
	// for this long (a crashed peer must restart within the window).
	// Zero keeps the strict reliable-PE semantics.
	RejoinTimeout time.Duration
	// Log receives connection lifecycle messages as structured records
	// (default: silent). The transport adds component/rank attrs.
	Log *slog.Logger
}

// Transport is one node's endpoint of the TCP mesh. It satisfies
// transport.Conn; see the package comment for semantics.
type Transport struct {
	rank, p int
	peers   []string
	start   time.Time
	ln      net.Listener
	log     *slog.Logger
	rejoin  time.Duration // > 0: fault-tolerant mode
	// incarnation identifies this transport instance in handshakes, so
	// peers can tell a crash-restarted node from a formation-race
	// re-dial (and avoid mutual redial storms).
	incarnation uint64

	box *mailbox

	mu        sync.Mutex
	out       []*link // rank-indexed outbound links; nil at own rank
	in        []net.Conn
	curIn     []net.Conn // rank-indexed current inbound conn (stale readers stay benign)
	redialing []bool     // rank-indexed: a redial loop is active
	inIncar   []uint64   // rank-indexed: incarnation behind curIn
	outIncar  []uint64   // rank-indexed: incarnation our out link reaches

	// perPeer holds rank-indexed outgoing-traffic counters (the entry at
	// our own rank stays zero). Stats sums them, so the aggregate and the
	// per-peer breakdown cannot drift apart; the /metrics surface reads
	// them directly via PeerStats.
	perPeer []peerCounter
	// flushNS accumulates wall time spent emitting staged coalesced runs
	// and draining link write buffers to the sockets (the round breakdown's
	// coalesce-flush phase).
	flushNS atomic.Int64
	// dirtyLinks counts links holding buffered unflushed frames — the
	// Flush fast path exits without touching any link mutex when zero.
	dirtyLinks atomic.Int32

	closeOnce sync.Once
	closed    chan struct{}
}

// link is one outbound (send-only) connection. dirty marks buffered
// bytes (staged sub-messages or framed writes) awaiting a flush (see the
// package comment's batching rules). pend stages small messages as
// coalesced-frame sub-messages until a flush point, a larger message, or
// an epoch change emits them; all messages to the peer pass through the
// same staging in send order, so FIFO delivery is preserved.
type link struct {
	peer      int // destination rank (per-peer byte accounting at emit time)
	mu        sync.Mutex
	conn      net.Conn
	w         *bufio.Writer
	dirty     bool
	pend      []byte
	pendCount int
	pendEpoch uint32
}

// peerCounter is one peer's outgoing-traffic counters. messages/words
// count at Send, bytes at framing time (framing overhead included),
// retries counts redial attempts after the link was lost.
type peerCounter struct {
	messages atomic.Int64
	words    atomic.Int64
	bytes    atomic.Int64
	retries  atomic.Int64
}

// PeerStats is a snapshot of one peer's outgoing-traffic counters
// (see peerCounter for the accounting points).
type PeerStats struct {
	Peer     int
	Messages int64
	Words    int64
	Bytes    int64
	Retries  int64
}

// PeerStats returns a rank-indexed snapshot of per-peer outgoing
// traffic; the entry at the local rank is zero. The /metrics endpoint
// exposes these as reservoir_transport_peer_* series.
func (t *Transport) PeerStats() []PeerStats {
	out := make([]PeerStats, t.p)
	for i := range out {
		pc := &t.perPeer[i]
		out[i] = PeerStats{
			Peer:     i,
			Messages: pc.messages.Load(),
			Words:    pc.words.Load(),
			Bytes:    pc.bytes.Load(),
			Retries:  pc.retries.Load(),
		}
	}
	return out
}

// Dial forms this node's side of the cluster: it starts listening, opens a
// directed connection to every peer (retrying while their listeners come
// up), and waits until every peer has connected back, so a returned
// Transport can immediately send to and receive from any rank.
func Dial(cfg Config) (*Transport, error) {
	p := len(cfg.Peers)
	if p < 1 {
		return nil, fmt.Errorf("tcpnet: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("tcpnet: rank %d outside peer list of %d", cfg.Rank, p)
	}
	logger := cfg.Log
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	t := &Transport{
		rank:        cfg.Rank,
		p:           p,
		peers:       append([]string(nil), cfg.Peers...),
		start:       time.Now(),
		log:         logger.With("component", "tcpnet", "rank", cfg.Rank),
		rejoin:      cfg.RejoinTimeout,
		incarnation: newIncarnation(),
		box:         newMailbox(),
		out:         make([]*link, p),
		perPeer:     make([]peerCounter, p),
		curIn:       make([]net.Conn, p),
		redialing:   make([]bool, p),
		inIncar:     make([]uint64, p),
		outIncar:    make([]uint64, p),
		closed:      make(chan struct{}),
	}
	t.box.rank = cfg.Rank
	t.box.ft = cfg.RejoinTimeout > 0
	if p == 1 {
		t.ln = cfg.Listener // no mesh needed; adopt the listener for Addr/Close
		return t, nil
	}

	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Listen
		if addr == "" {
			_, port, err := net.SplitHostPort(cfg.Peers[cfg.Rank])
			if err != nil {
				return nil, fmt.Errorf("tcpnet: own peer entry %q: %w", cfg.Peers[cfg.Rank], err)
			}
			addr = ":" + port
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
		}
	}
	t.ln = ln

	timeout := cfg.FormationTimeout
	if timeout <= 0 {
		timeout = defaultFormation
	}
	deadline := time.Now().Add(timeout)

	// Inbound side: accept until every other rank has connected (and keep
	// accepting afterwards so a re-dialing peer can replace its link).
	inbound := make(chan int, p)
	go t.acceptLoop(inbound)

	// Outbound side: dial every peer concurrently, retrying while their
	// listeners come up.
	var wg sync.WaitGroup
	dialErrs := make([]error, p)
	for peer := 0; peer < p; peer++ {
		if peer == t.rank {
			continue
		}
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			dialErrs[peer] = t.dialPeer(peer, cfg.Peers[peer], deadline)
		}(peer)
	}
	wg.Wait()
	for peer, err := range dialErrs {
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("tcpnet: rank %d dialing peer %d: %w", t.rank, peer, err)
		}
	}

	// Wait for the full inbound mesh.
	seen := make([]bool, p)
	need := p - 1
	for need > 0 {
		select {
		case r := <-inbound:
			if !seen[r] {
				seen[r] = true
				need--
			}
		case <-time.After(time.Until(deadline)):
			t.Close()
			return nil, fmt.Errorf("tcpnet: rank %d: cluster formation timed out with %d inbound peer(s) missing", t.rank, need)
		case <-t.closed:
			return nil, fmt.Errorf("tcpnet: transport closed during formation")
		}
	}
	t.log.Info("mesh up", "p", p, "elapsed", time.Since(t.start).Round(time.Millisecond).String())
	return t, nil
}

// dialPeer opens the directed rank→peer connection, retrying with backoff
// until the peer's listener accepts or the formation deadline passes.
func (t *Transport) dialPeer(peer int, addr string, deadline time.Time) error {
	backoff := 50 * time.Millisecond
	for {
		conn, incar, err := t.dialOnce(peer, addr)
		if err == nil {
			t.installLink(peer, conn, incar)
			return nil
		}
		// The usual dial race at startup: the peer process exists but its
		// listener is not up yet (connection refused / reset / unreachable
		// host name in an orchestrated environment). Retry until the
		// formation deadline.
		select {
		case <-t.closed:
			return fmt.Errorf("transport closed")
		default:
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("no listener at %s before formation deadline: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// newIncarnation draws a random transport-instance ID. Collisions across
// restarts of the same rank are what matters; 64 random bits make them
// negligible.
func newIncarnation() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// putHandshake fills one handshake frame: magic, version, rank, cluster
// size, incarnation.
func (t *Transport) putHandshake(hs *[handshakeLen]byte) {
	binary.LittleEndian.PutUint32(hs[0:4], handshakeMagic)
	hs[4] = protocolVersion
	binary.LittleEndian.PutUint32(hs[5:9], uint32(t.rank))
	binary.LittleEndian.PutUint32(hs[9:13], uint32(t.p))
	binary.LittleEndian.PutUint64(hs[13:21], t.incarnation)
}

// dialOnce makes one connection attempt: dial, send our handshake, and
// read the acceptor's reply (validating that the address really hosts the
// expected rank of this cluster). Returns the acceptor's incarnation.
func (t *Transport) dialOnce(peer int, addr string) (net.Conn, uint64, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, 0, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // collectives are latency-bound
	}
	fail := func(err error) (net.Conn, uint64, error) {
		conn.Close()
		return nil, 0, err
	}
	var hs [handshakeLen]byte
	t.putHandshake(&hs)
	if _, err := conn.Write(hs[:]); err != nil {
		// The peer's proxy/sidecar accepted the connect but reset before
		// it was ready: same startup race as a refused dial.
		return fail(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return fail(fmt.Errorf("handshake reply: %w", err))
	}
	conn.SetReadDeadline(time.Time{})
	if m := binary.LittleEndian.Uint32(hs[0:4]); m != handshakeMagic {
		return fail(fmt.Errorf("handshake reply with bad magic %#x", m))
	}
	if v := hs[4]; v != protocolVersion {
		return fail(fmt.Errorf("handshake reply protocol version %d (want %d)", v, protocolVersion))
	}
	if r := int(binary.LittleEndian.Uint32(hs[5:9])); r != peer {
		return fail(fmt.Errorf("address %s hosts rank %d, expected %d", addr, r, peer))
	}
	if pp := int(binary.LittleEndian.Uint32(hs[9:13])); pp != t.p {
		return fail(fmt.Errorf("address %s belongs to a %d-node cluster, expected %d", addr, pp, t.p))
	}
	return conn, binary.LittleEndian.Uint64(hs[13:21]), nil
}

// installLink makes conn the current outbound link to peer (reaching the
// given peer incarnation), closing any previous one.
func (t *Transport) installLink(peer int, conn net.Conn, incar uint64) {
	t.mu.Lock()
	old := t.out[peer]
	t.out[peer] = &link{peer: peer, conn: conn, w: bufio.NewWriterSize(conn, linkWriteBuffer)}
	t.outIncar[peer] = incar
	t.mu.Unlock()
	if old != nil {
		// The replaced link's buffered frames die with it (the peer's old
		// incarnation is gone; fault-tolerant resync re-runs the round).
		old.mu.Lock()
		if old.dirty {
			old.dirty = false
			t.dirtyLinks.Add(-1)
		}
		old.mu.Unlock()
		old.conn.Close()
	}
}

// redialPeer starts (at most one) background redial loop for the directed
// link to peer, bounded by the rejoin window. Fault-tolerant mode only.
// Besides restoring this node's outbound link, the redial is what lets a
// crashed-and-restarted peer complete its own cluster formation: its Dial
// waits for an inbound connection from every survivor.
func (t *Transport) redialPeer(peer int) {
	if t.rejoin <= 0 || peer == t.rank {
		return
	}
	t.mu.Lock()
	if t.redialing[peer] {
		t.mu.Unlock()
		return
	}
	t.redialing[peer] = true
	t.mu.Unlock()
	go func() {
		defer func() {
			t.mu.Lock()
			t.redialing[peer] = false
			t.mu.Unlock()
		}()
		deadline := time.Now().Add(t.rejoin)
		backoff := 50 * time.Millisecond
		for {
			select {
			case <-t.closed:
				return
			default:
			}
			t.perPeer[peer].retries.Add(1)
			if conn, incar, err := t.dialOnce(peer, t.peers[peer]); err == nil {
				t.installLink(peer, conn, incar)
				t.log.Info("re-dialed peer", "peer", peer)
				return
			}
			if time.Now().Add(backoff).After(deadline) {
				t.log.Warn("giving up re-dialing peer", "peer", peer, "window", t.rejoin.String())
				return
			}
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
		}
	}()
}

// Refresh synchronously ensures the outbound link to peer reaches the
// peer's *current* incarnation (as learned from its latest inbound
// handshake), dialing if necessary. The recovery protocol calls it for
// every peer that was marked down before re-arming the data plane: a
// data send racing the background redial could otherwise be buffered
// into the dead incarnation's connection and silently lost — TCP reports
// nothing until long after the write. Fault-tolerant mode only.
func (t *Transport) Refresh(peer int, deadline time.Time) error {
	if peer == t.rank || t.p == 1 {
		return nil
	}
	for {
		t.mu.Lock()
		fresh := t.out[peer] != nil && t.inIncar[peer] != 0 && t.outIncar[peer] == t.inIncar[peer]
		busy := t.redialing[peer]
		if !fresh && !busy {
			t.redialing[peer] = true // claim the per-peer dial slot
		}
		t.mu.Unlock()
		if fresh {
			return nil
		}
		select {
		case <-t.closed:
			return fmt.Errorf("tcpnet: rank %d: transport closed", t.rank)
		default:
		}
		if busy {
			// A background redial owns the slot; wait for its result.
			if time.Now().After(deadline) {
				return fmt.Errorf("tcpnet: rank %d: link to peer %d not refreshed in time", t.rank, peer)
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		err := func() error {
			defer func() {
				t.mu.Lock()
				t.redialing[peer] = false
				t.mu.Unlock()
			}()
			conn, incar, err := t.dialOnce(peer, t.peers[peer])
			if err != nil {
				return err
			}
			t.installLink(peer, conn, incar)
			return nil
		}()
		if err == nil {
			// The handshake round-trip (with rank validation) proves a
			// live process at the peer's address accepted this link:
			// it now reaches the current incarnation even if that
			// incarnation's own dial-in has not been accepted yet (so
			// inIncar may lag — do not loop on it, or this would spin
			// re-dialing a peer still mid-formation).
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tcpnet: rank %d: refreshing link to peer %d: %w", t.rank, peer, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// acceptLoop accepts inbound connections for the life of the transport,
// validates their handshake, and spawns a reader per peer. Replaced
// connections (a peer re-dialing) supersede the previous reader, whose
// conn keeps draining until EOF.
func (t *Transport) acceptLoop(inbound chan<- int) {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.log.Warn("accept failed", "err", err)
			}
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			var hs [handshakeLen]byte
			if _, err := io.ReadFull(conn, hs[:]); err != nil {
				t.log.Warn("inbound handshake read failed", "err", err)
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			if m := binary.LittleEndian.Uint32(hs[0:4]); m != handshakeMagic {
				t.log.Warn("inbound connection with bad magic", "magic", fmt.Sprintf("%#x", m))
				conn.Close()
				return
			}
			if v := hs[4]; v != protocolVersion {
				t.log.Warn("inbound protocol version mismatch", "got", v, "want", protocolVersion)
				conn.Close()
				return
			}
			from := int(binary.LittleEndian.Uint32(hs[5:9]))
			peerP := int(binary.LittleEndian.Uint32(hs[9:13]))
			if peerP != t.p || from < 0 || from >= t.p || from == t.rank {
				t.log.Warn("inbound peer claims foreign rank", "claimed_rank", from, "claimed_p", peerP, "p", t.p)
				conn.Close()
				return
			}
			incar := binary.LittleEndian.Uint64(hs[13:21])
			// Reply with our own handshake so the dialer can validate it
			// reached the right rank (and learn our incarnation).
			var reply [handshakeLen]byte
			t.putHandshake(&reply)
			if _, err := conn.Write(reply[:]); err != nil {
				t.log.Warn("inbound handshake reply failed", "err", err)
				conn.Close()
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			t.mu.Lock()
			t.in = append(t.in, conn)
			prev := t.curIn[from]
			t.curIn[from] = conn
			// A connection from an incarnation our outbound link has not
			// reached means the peer crash-restarted: our link points at
			// the dead incarnation, and the peer's own formation is
			// waiting for us to dial in — possibly before the old
			// connection's EOF gets processed, so waiting for that would
			// deadlock formation. Re-dial proactively. The incarnation
			// check is what prevents two live nodes from chasing each
			// other's replacement connections in an endless redial storm.
			needRedial := t.rejoin > 0 && prev != nil && t.inIncar[from] != incar && t.outIncar[from] != incar
			t.inIncar[from] = incar
			t.mu.Unlock()
			if prev != nil {
				prev.Close() // superseded by the peer's re-dial
			}
			if needRedial {
				t.redialPeer(from)
			}
			select {
			case inbound <- from:
			default:
			}
			t.readLoop(from, conn)
		}(conn)
	}
}

// readLoop reads message frames from one inbound connection into the
// mailbox until the connection closes. Framing or checksum violations —
// and the peer going away, whether by RST or clean FIN — fail receives
// from that peer: permanently (mailbox poisoning) in strict mode, or as a
// recoverable fault (peer marked down, redial started, blocked receives
// interrupted) in fault-tolerant mode. Receives from still-live peers
// (e.g. during an orderly staggered shutdown) stay valid either way. Only
// a locally-closed transport or a superseded (re-dialed) connection ends
// the loop benignly.
func (t *Transport) readLoop(from int, conn net.Conn) {
	r := bufio.NewReader(conn)
	var head [frameHeaderLen]byte
	var partial []byte // accumulates fragments of an oversized message
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d connection lost: %w", t.rank, from, err))
			return
		}
		lenWord := binary.LittleEndian.Uint32(head[0:4])
		n := lenWord &^ (fragFlag | coalFlag)
		frag := lenWord&fragFlag != 0
		coal := lenWord&coalFlag != 0
		tag := int(binary.LittleEndian.Uint32(head[4:8]))
		// head[8:12] is the sender's cost-model word count; traffic is
		// accounted sender-side, so the receiver does not store it.
		epoch := binary.LittleEndian.Uint32(head[12:16])
		sum := binary.LittleEndian.Uint32(head[16:20])
		if n > maxFramePayload {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d framed %d-byte payload (max %d)", t.rank, from, n, maxFramePayload))
			return
		}
		buf := grabBuf(int(n)) // recycled by the consumer after decode
		payload := *buf
		if _, err := io.ReadFull(r, payload); err != nil {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: reading %d-byte payload from peer %d: %w", t.rank, n, from, err))
			return
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: CRC mismatch on message from peer %d tag %d (%#x != %#x)", t.rank, from, tag, got, sum))
			return
		}
		if frag || partial != nil {
			if coal {
				t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d sent a fragmented coalesced frame", t.rank, from))
				return
			}
			partial = append(partial, payload...)
			releaseBuf(buf)
			buf = nil
			if len(partial) > maxMessageBytes {
				t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d message exceeds %d-byte cap", t.rank, from, maxMessageBytes))
				return
			}
			if frag {
				continue
			}
			payload, partial = partial, nil
		}
		if coal {
			// Sub-message payloads alias the frame buffer and are consumed
			// at independent times, so the buffer leaves the pool's
			// ownership (buf token dropped; GC reclaims the blob once every
			// sub-message is decoded).
			if !t.putCoalesced(from, epoch, payload) {
				t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d sent a malformed coalesced frame", t.rank, from))
				return
			}
			continue
		}
		if tag == CtrlTag {
			t.box.putCtrl(ctrlMsg{from: from, payload: payload, buf: buf})
			continue
		}
		t.box.put(inMsg{from: from, tag: tag, epoch: epoch, payload: payload, buf: buf})
	}
}

// putCoalesced unpacks one coalesced frame's sub-message run into the
// mailbox, preserving send order. Returns false on a malformed run.
func (t *Transport) putCoalesced(from int, epoch uint32, blob []byte) bool {
	for off := 0; off < len(blob); {
		if off+subHeaderLen > len(blob) {
			return false
		}
		tag := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		// blob[off+4:off+8] is the sender's cost-model word count
		// (accounted sender-side, like the frame header's).
		n := int(binary.LittleEndian.Uint32(blob[off+8 : off+12]))
		off += subHeaderLen
		if n < 0 || off+n > len(blob) || tag == CtrlTag {
			return false // ctrl frames never coalesce; a CtrlTag sub-message is a framing bug
		}
		t.box.put(inMsg{from: from, tag: tag, epoch: epoch, payload: blob[off : off+n]})
		off += n
	}
	return true
}

// failFrom reacts to one inbound connection failing, unless this
// connection was superseded by the peer's re-dial (a stale reader must
// stay benign — the replacement link is healthy) or the transport is
// locally closed. In strict mode receives from the peer are poisoned; in
// fault-tolerant mode the peer is marked down (interrupting blocked
// receives recoverably) and a redial loop starts.
func (t *Transport) failFrom(from int, conn net.Conn, err error) {
	t.mu.Lock()
	stale := t.curIn[from] != conn
	t.mu.Unlock()
	select {
	case <-t.closed:
		return
	default:
	}
	if stale {
		return
	}
	if t.rejoin > 0 {
		t.log.Warn("peer faulted", "peer", from, "err", err)
		t.box.markDown(from, err)
		t.redialPeer(from)
		return
	}
	t.box.failPeer(from, err)
}

// --- transport.Conn --------------------------------------------------------

// ID implements transport.Conn.
func (t *Transport) ID() int { return t.rank }

// P implements transport.Conn.
func (t *Transport) P() int { return t.p }

// Send implements transport.Conn: encode the payload (wire codec fast
// path, gob fallback — see transport.AppendPayload) and buffer one
// framed message on the directed link to `to`; the frames reach the
// socket at the next flush point (Recv, collective exit, or the write
// buffer spilling). In fault-tolerant mode a write failure panics with
// a recoverable *FaultError (and starts a redial); in strict mode any
// failure is a fatal programming/deployment error.
func (t *Transport) Send(to, tag int, payload any, words int) {
	if words < 1 {
		words = 1
	}
	if to == t.rank {
		panic("tcpnet: send to self")
	}
	buf := grabBuf(0)
	*buf = transport.AppendPayload((*buf)[:0], payload)
	body := *buf
	// Bodies at or above the link's write buffer go straight through it
	// anyway; flush eagerly so only small sends ride the batching path
	// (a fragmented gather must never strand its tail in the buffer).
	if err := t.writeMessage(to, tag, words, body, len(body) >= linkWriteBuffer); err != nil {
		t.sendFailed(to, err)
	}
	releaseBuf(buf)
	t.perPeer[to].messages.Add(1)
	t.perPeer[to].words.Add(int64(words))
}

// sendFailed turns a write error into the mode-appropriate panic.
func (t *Transport) sendFailed(to int, err error) {
	if t.rejoin > 0 {
		t.box.markDown(to, err)
		t.redialPeer(to)
		panic(&FaultError{Rank: t.rank, Peer: to, Msg: fmt.Sprintf("tcpnet: rank %d sending to peer %d: %v", t.rank, to, err)})
	}
	// Strict mode: peer loss is unrecoverable but still a *transport*
	// failure — typed so serving layers can convert it to an orderly
	// shutdown while re-panicking real bugs.
	panic(&transport.FatalError{Rank: t.rank, Peer: to, Msg: fmt.Sprintf("tcpnet: rank %d sending to peer %d: %v", t.rank, to, err)})
}

// framedBytes is the on-the-wire size of one message body: the payload
// plus one frame header (length, tag, words, epoch, CRC) per fragment —
// what the Stats byte counter records (satellite of the codec work: the
// old counter omitted framing overhead entirely).
func framedBytes(body []byte) int64 {
	frames := (len(body) + maxFramePayload - 1) / maxFramePayload
	if frames == 0 {
		frames = 1 // empty bodies still cost one frame
	}
	return int64(len(body)) + int64(frames)*frameHeaderLen
}

// writeMessage stages or frames one message on the current link to `to`.
// Small data messages are staged into the link's coalesce buffer; control
// frames (flush set), larger bodies, and epoch changes first emit the
// staged run so per-link FIFO order survives. Socket flushes happen only
// when flush is set or the link's write buffer spills. Wire bytes are
// accounted here (at framing time), since a staged message's share of
// header bytes is only known once its coalesced frame is emitted.
func (t *Transport) writeMessage(to, tag, words int, body []byte, flush bool) error {
	t.mu.Lock()
	l := t.out[to]
	t.mu.Unlock()
	if l == nil {
		return fmt.Errorf("no link")
	}
	epoch := t.box.currentEpoch()
	l.mu.Lock()
	defer l.mu.Unlock()
	coalesce := !flush && tag != CtrlTag && len(body) <= coalMaxMsg
	if l.pendCount > 0 && (!coalesce || l.pendEpoch != epoch) {
		if err := l.emitPend(t); err != nil {
			return err
		}
	}
	if coalesce {
		if l.pendCount == 0 {
			l.pendEpoch = epoch
		}
		var sub [subHeaderLen]byte
		binary.LittleEndian.PutUint32(sub[0:4], uint32(tag))
		binary.LittleEndian.PutUint32(sub[4:8], uint32(words))
		binary.LittleEndian.PutUint32(sub[8:12], uint32(len(body)))
		l.pend = append(l.pend, sub[:]...)
		l.pend = append(l.pend, body...)
		l.pendCount++
		if len(l.pend) >= coalMaxBuf {
			if err := l.emitPend(t); err != nil {
				return err
			}
		}
		if !l.dirty {
			l.dirty = true
			t.dirtyLinks.Add(1)
		}
		return nil
	}
	if err := writeFrames(l.w, tag, words, epoch, body); err != nil {
		return err
	}
	t.perPeer[to].bytes.Add(framedBytes(body))
	if flush {
		if l.dirty {
			l.dirty = false
			t.dirtyLinks.Add(-1)
		}
		return l.w.Flush()
	}
	if !l.dirty {
		l.dirty = true
		t.dirtyLinks.Add(1)
	}
	return nil
}

// emitPend frames the link's staged sub-messages into its write buffer:
// a single staged message becomes a normal frame (no coalescing
// overhead), two or more become one coalesced frame sharing a header and
// CRC. The caller holds l.mu.
func (l *link) emitPend(t *Transport) error {
	if l.pendCount == 0 {
		return nil
	}
	var err error
	if l.pendCount == 1 {
		tag := int(binary.LittleEndian.Uint32(l.pend[0:4]))
		words := int(binary.LittleEndian.Uint32(l.pend[4:8]))
		body := l.pend[subHeaderLen:]
		err = writeFrames(l.w, tag, words, l.pendEpoch, body)
		t.perPeer[l.peer].bytes.Add(framedBytes(body))
	} else {
		err = writeCoalesced(l.w, l.pendEpoch, l.pend)
		t.perPeer[l.peer].bytes.Add(int64(len(l.pend)) + frameHeaderLen)
	}
	l.pend = l.pend[:0]
	l.pendCount = 0
	return err
}

// writeCoalesced writes one coalesced frame: the standard header with
// coalFlag set on the length word (tag and words are zero — each
// sub-message carries its own) and the staged sub-message run as payload,
// checksummed as one unit. The run stays below coalMaxBuf + coalMaxMsg,
// far under the fragmentation threshold.
func writeCoalesced(w io.Writer, epoch uint32, blob []byte) error {
	var head [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(blob))|coalFlag)
	binary.LittleEndian.PutUint32(head[4:8], 0)
	binary.LittleEndian.PutUint32(head[8:12], 0)
	binary.LittleEndian.PutUint32(head[12:16], epoch)
	binary.LittleEndian.PutUint32(head[16:20], crc32.ChecksumIEEE(blob))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(blob)
	return err
}

// Flush implements transport.Flusher: write out every buffered frame on
// every link. Recv calls it before blocking and the collectives call it
// (via transport.FlushConn) at operation exit; see the package comment
// for why those two points make batching deadlock-free. A flush failure
// is a send failure and panics accordingly.
func (t *Transport) Flush() {
	if t.dirtyLinks.Load() == 0 {
		return
	}
	start := time.Now()
	for peer := 0; peer < t.p; peer++ {
		t.mu.Lock()
		l := t.out[peer]
		t.mu.Unlock()
		if l == nil {
			continue
		}
		var err error
		l.mu.Lock()
		if l.dirty {
			l.dirty = false
			t.dirtyLinks.Add(-1)
			err = l.emitPend(t)
			if err == nil {
				err = l.w.Flush()
			}
		}
		l.mu.Unlock()
		if err != nil {
			t.sendFailed(peer, err)
		}
	}
	t.flushNS.Add(time.Since(start).Nanoseconds())
}

// FlushNS returns the accumulated wall time spent in Flush (coalesce
// emission plus socket drain) in nanoseconds.
func (t *Transport) FlushNS() int64 { return t.flushNS.Load() }

// writeFrames writes one message as one frame, or — above the per-frame
// cap — as a run of flagged fragments followed by a final unflagged frame.
// Fragments of one message are contiguous on the connection (the caller
// holds the link lock for the whole message), so the receiver reassembles
// by simple accumulation.
func writeFrames(w io.Writer, tag, words int, epoch uint32, body []byte) error {
	var head [frameHeaderLen]byte
	for {
		chunk := body
		flag := uint32(0)
		if len(chunk) > maxFramePayload {
			chunk = body[:maxFramePayload]
			flag = fragFlag
		}
		body = body[len(chunk):]
		binary.LittleEndian.PutUint32(head[0:4], uint32(len(chunk))|flag)
		binary.LittleEndian.PutUint32(head[4:8], uint32(tag))
		binary.LittleEndian.PutUint32(head[8:12], uint32(words))
		binary.LittleEndian.PutUint32(head[12:16], epoch)
		binary.LittleEndian.PutUint32(head[16:20], crc32.ChecksumIEEE(chunk))
		if _, err := w.Write(head[:]); err != nil {
			return err
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if flag == 0 {
			return nil
		}
	}
}

// Recv implements transport.Conn: block for the (from, tag) message and
// decode its payload. Hard transport failures (closed mesh, CRC mismatch
// in strict mode, undecodable payload) panic fatally, mirroring the
// simulator's treatment of protocol violations as programming errors; in
// fault-tolerant mode recoverable faults panic with a *FaultError.
func (t *Transport) Recv(from, tag int) any {
	// Fast path: the message already arrived — deliver without touching
	// any link. Buffered sends stay staged until the next blocking Recv or
	// collective exit (transport.FlushConn), both of which flush, so the
	// deadlock-freedom argument is unchanged: a rank never *blocks*
	// holding traffic a peer may be waiting on.
	m, ok := t.box.tryGet(from, tag)
	if ok {
		return t.decodeMsg(from, tag, m)
	}
	t.Flush() // never block holding traffic a peer may be waiting on
	m, err := t.box.get(from, tag)
	if err != nil {
		var fe *FaultError
		if errors.As(err, &fe) {
			panic(fe)
		}
		panic(&transport.FatalError{Rank: t.rank, Peer: from, Msg: err.Error()})
	}
	return t.decodeMsg(from, tag, m)
}

// decodeMsg decodes one delivered message's payload and recycles its
// frame buffer.
func (t *Transport) decodeMsg(from, tag int, m inMsg) any {
	v, derr := transport.DecodePayload(m.payload)
	if derr != nil {
		// Undecodable payload: wire corruption (or a sender bug), fatal
		// either way, but transport-originated — typed for the serving
		// layer's recover triage.
		panic(&transport.FatalError{Rank: t.rank, Peer: from, Msg: fmt.Sprintf("tcpnet: rank %d decoding message from peer %d tag %d: %v", t.rank, from, tag, derr)})
	}
	releaseBuf(m.buf) // decoders copy out; the frame buffer is free again
	return v
}

// Work implements transport.Conn. Real computation takes real time, so
// there is no clock to advance.
func (t *Transport) Work(float64) {}

// Clock implements transport.Conn: wall-clock nanoseconds since Dial.
func (t *Transport) Clock() float64 { return float64(time.Since(t.start)) }

// Stats implements transport.StatsSource with this node's outgoing
// traffic — the sum of the per-peer counters.
func (t *Transport) Stats() transport.Stats {
	var s transport.Stats
	for i := range t.perPeer {
		pc := &t.perPeer[i]
		s.Messages += pc.messages.Load()
		s.Words += pc.words.Load()
		s.Bytes += pc.bytes.Load()
	}
	return s
}

// Pending returns the number of received-but-unclaimed messages (tests use
// it to detect leaks after a completed SPMD section).
func (t *Transport) Pending() int { return t.box.pending() }

// --- fault-tolerant control plane ------------------------------------------

// FaultTolerant reports whether the transport runs with recoverable
// fault semantics (Config.RejoinTimeout > 0).
func (t *Transport) FaultTolerant() bool { return t.rejoin > 0 }

// RejoinWindow returns the configured rejoin timeout.
func (t *Transport) RejoinWindow() time.Duration { return t.rejoin }

// Epoch returns the current epoch (advanced by each completed resync).
func (t *Transport) Epoch() uint64 { return uint64(t.box.currentEpoch()) }

// AdvanceEpoch moves the transport to epoch e and discards queued data
// messages of older epochs — the stale traffic of a failed round. Sends
// stamp the new epoch immediately.
func (t *Transport) AdvanceEpoch(e uint64) { t.box.advanceEpoch(uint32(e)) }

// ClearFault re-arms the transport after the recovery protocol completed:
// peers marked down stop interrupting receives. Control messages that
// arrived in the meantime still interrupt the next receive (they signal
// the next fault).
func (t *Transport) ClearFault() { t.box.clearDown() }

// DownPeers returns the ranks currently marked down, sorted.
func (t *Transport) DownPeers() []int { return t.box.downPeers() }

// CtrlNotify returns a channel that receives a pulse whenever a
// control-plane message arrives or a peer is marked down, so a node idle
// outside Recv (e.g. rank 0 waiting for client commands) can react to
// faults promptly.
func (t *Transport) CtrlNotify() <-chan struct{} { return t.box.notify }

// CtrlPending reports whether an unconsumed control-plane message is
// queued (a fault signal awaiting handling).
func (t *Transport) CtrlPending() bool { return t.box.ctrlPending() }

// SendCtrl transmits a control-plane message to a peer, retrying (and
// re-dialing) until it is written or the deadline passes. Control frames
// use the reserved CtrlTag and bypass epoch filtering; the recovery
// protocol is built on them.
func (t *Transport) SendCtrl(to int, payload any, deadline time.Time) error {
	if to == t.rank {
		return fmt.Errorf("tcpnet: ctrl send to self")
	}
	buf := grabBuf(0)
	defer releaseBuf(buf)
	*buf = transport.AppendPayload((*buf)[:0], payload)
	body := *buf
	for {
		select {
		case <-t.closed:
			return fmt.Errorf("tcpnet: rank %d: transport closed", t.rank)
		default:
		}
		// Control frames flush immediately: the recovery protocol must
		// make progress while the data plane (and its flush points) is
		// suspended.
		err := t.writeMessage(to, CtrlTag, 1, body, true)
		if err == nil {
			t.perPeer[to].messages.Add(1)
			t.perPeer[to].words.Add(1)
			return nil
		}
		t.redialPeer(to)
		if time.Now().After(deadline) {
			return fmt.Errorf("tcpnet: rank %d: ctrl send to peer %d: %w", t.rank, to, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// RecvCtrl blocks for the next control-plane message from any peer until
// the deadline. It consumes the message; stale data traffic is unaffected.
func (t *Transport) RecvCtrl(deadline time.Time) (from int, payload any, err error) {
	m, err := t.box.getCtrl(deadline)
	if err != nil {
		return 0, nil, err
	}
	v, err := transport.DecodePayload(m.payload)
	if err != nil {
		return 0, nil, fmt.Errorf("tcpnet: rank %d decoding ctrl message from peer %d: %w", t.rank, m.from, err)
	}
	releaseBuf(m.buf)
	return m.from, v, nil
}

// Close tears the mesh down. Blocked Recvs panic with a closed-transport
// error; the caller is expected to be done with collective work.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		for _, l := range t.out {
			if l != nil {
				l.conn.Close()
			}
		}
		for _, c := range t.in {
			c.Close()
		}
		t.mu.Unlock()
		t.box.fail(fmt.Errorf("tcpnet: rank %d: transport closed", t.rank))
	})
	return nil
}

// Addr returns the transport's bound listen address (useful with port-0
// listeners). Nil for single-node clusters.
func (t *Transport) Addr() net.Addr {
	if t.ln == nil {
		return nil
	}
	return t.ln.Addr()
}

// --- buffer pool -----------------------------------------------------------

// bufPool recycles encode buffers and inbound frame payload buffers.
// Encode buffers live for one Send; frame buffers travel through the
// mailbox as inMsg.buf and come back after the consumer decodes (every
// decoder copies the bytes out, so recycling cannot alias a delivered
// payload). Reassembled fragment runs and epoch-discarded messages are
// simply dropped for GC — pooling is a fast path, not an obligation.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// grabBuf returns a pooled buffer of length n (growing it as needed).
func grabBuf(n int) *[]byte {
	buf := bufPool.Get().(*[]byte)
	if cap(*buf) < n {
		*buf = make([]byte, n)
	} else {
		*buf = (*buf)[:n]
	}
	return buf
}

// releaseBuf returns a buffer to the pool; nil is a no-op (buffers that
// left the pooled path, e.g. reassembled fragments).
func releaseBuf(buf *[]byte) {
	if buf != nil {
		bufPool.Put(buf)
	}
}

// --- mailbox ---------------------------------------------------------------

type inMsg struct {
	from, tag int
	epoch     uint32
	payload   []byte
	buf       *[]byte // pool token; nil when payload is not poolable
}

type ctrlMsg struct {
	from    int
	payload []byte
	buf     *[]byte
}

// mailbox is the (sender, tag)-matching receive queue, the wire analogue
// of simnet's per-PE inbox. Failures are tracked per sender: a dead or
// corrupt link only dooms receives from that peer (already-delivered
// messages stay claimable), so during an orderly cluster shutdown a node
// that exits first does not break a survivor's receive from a still-live
// peer. A whole-mailbox failure (local transport close) fails everything.
//
// In fault-tolerant mode, peer failures are *recoverable*: a peer marked
// down — or a pending control-plane message — interrupts blocked data
// receives with a *FaultError once no matching message is queued, and
// data messages are additionally matched by epoch (stale epochs are
// discarded on arrival and on epoch advance).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []inMsg
	err     error
	peerErr map[int]error

	// Fault-tolerant state.
	ft     bool
	rank   int
	epoch  uint32
	ctrl   []ctrlMsg
	down   map[int]error
	notify chan struct{}
}

func newMailbox() *mailbox {
	b := &mailbox{
		peerErr: make(map[int]error),
		down:    make(map[int]error),
		notify:  make(chan struct{}, 1),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m inMsg) {
	b.mu.Lock()
	if b.ft && m.epoch < b.epoch {
		b.mu.Unlock() // stale traffic of a failed, already-resynced round
		releaseBuf(m.buf)
		return
	}
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// tryGet claims a queued (from, tag) match without blocking (Recv's
// fast path: skip the flush sweep when the message already arrived).
func (b *mailbox) tryGet(from, tag int) (inMsg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, m := range b.queue {
		if m.from == from && m.tag == tag && (!b.ft || m.epoch == b.epoch) {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			return m, true
		}
	}
	return inMsg{}, false
}

func (b *mailbox) get(from, tag int) (inMsg, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if m.from == from && m.tag == tag && (!b.ft || m.epoch == b.epoch) {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		if b.err != nil {
			return inMsg{}, b.err
		}
		if b.ft {
			// A pending control message interrupts any blocked receive
			// (the coordinator is starting a resync; the data will never
			// come). A down peer interrupts only receives waiting on
			// *that* peer: a receive from a still-live peer stays valid —
			// its sender either delivers (e.g. the shutdown relay during
			// a staggered exit) or aborts and notifies the coordinator,
			// whose PREPARE then interrupts us through the control path.
			if len(b.ctrl) > 0 {
				return inMsg{}, &FaultError{Rank: b.rank, Peer: -1,
					Msg: fmt.Sprintf("tcpnet: rank %d: receive interrupted by a control message", b.rank)}
			}
			if perr := b.down[from]; perr != nil {
				return inMsg{}, &FaultError{Rank: b.rank, Peer: from,
					Msg: fmt.Sprintf("tcpnet: rank %d: receive interrupted, peer %d down: %v", b.rank, from, perr)}
			}
		} else if err := b.peerErr[from]; err != nil {
			return inMsg{}, err
		}
		b.cond.Wait()
	}
}

// fail poisons the whole mailbox: all blocked and future receives return
// err.
func (b *mailbox) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	b.pulse()
}

// failPeer poisons receives from one sender: blocked and future receives
// from that peer return err once no matching message is queued. Strict
// (non-fault-tolerant) mode only.
func (b *mailbox) failPeer(from int, err error) {
	b.mu.Lock()
	if b.peerErr[from] == nil {
		b.peerErr[from] = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// markDown records a recoverable peer failure and wakes blocked receivers
// and notify listeners.
func (b *mailbox) markDown(from int, err error) {
	b.mu.Lock()
	if b.down[from] == nil {
		b.down[from] = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
	b.pulse()
}

// clearDown re-arms data receives after a completed recovery.
func (b *mailbox) clearDown() {
	b.mu.Lock()
	b.down = make(map[int]error)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) downPeers() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, 0, len(b.down))
	for p := range b.down {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func (b *mailbox) currentEpoch() uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// advanceEpoch raises the epoch and discards queued data messages from
// older epochs (traffic of failed rounds).
func (b *mailbox) advanceEpoch(e uint32) {
	b.mu.Lock()
	if e > b.epoch {
		b.epoch = e
		kept := b.queue[:0]
		for _, m := range b.queue {
			if m.epoch >= e {
				kept = append(kept, m)
			} else {
				releaseBuf(m.buf)
			}
		}
		b.queue = kept
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// putCtrl queues a control-plane message, waking blocked data receivers
// (which abort with a recoverable interrupt) and notify listeners.
func (b *mailbox) putCtrl(m ctrlMsg) {
	b.mu.Lock()
	b.ctrl = append(b.ctrl, m)
	b.mu.Unlock()
	b.cond.Broadcast()
	b.pulse()
}

// getCtrl pops the next control message, waiting until the deadline.
func (b *mailbox) getCtrl(deadline time.Time) (ctrlMsg, error) {
	// The wake-up must hold b.mu: an unlocked Broadcast can land between
	// a waiter's deadline check and its cond.Wait registration and be
	// lost, leaving the waiter blocked past the deadline forever.
	timer := time.AfterFunc(time.Until(deadline), func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.cond.Broadcast()
	})
	defer timer.Stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.ctrl) > 0 {
			m := b.ctrl[0]
			b.ctrl = b.ctrl[1:]
			return m, nil
		}
		if b.err != nil {
			return ctrlMsg{}, b.err
		}
		if !time.Now().Before(deadline) {
			return ctrlMsg{}, fmt.Errorf("tcpnet: rank %d: ctrl receive timed out", b.rank)
		}
		b.cond.Wait()
	}
}

// pulse makes CtrlNotify listeners runnable without blocking.
func (b *mailbox) pulse() {
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}

func (b *mailbox) ctrlPending() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ctrl) > 0
}
