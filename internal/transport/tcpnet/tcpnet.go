// Package tcpnet is the real-network transport backend: p OS processes,
// one per PE, connected by a full TCP mesh. It implements transport.Conn,
// so the collectives of internal/coll — and with them the paper's
// Distributed and CentralizedGather samplers — run over actual sockets
// with wall-clock timing instead of the in-process simulator's virtual
// clocks.
//
// # Topology and cluster formation
//
// The cluster is a static rank-indexed peer list (the same list on every
// node). Each node listens on its own entry and opens one *directed*
// connection to every other peer: node i's dialed connection to j carries
// only i→j messages, while j→i traffic arrives on the connection j dialed.
// Directed links make connection establishment race-free by construction —
// there is no simultaneous-open tiebreak — and the only startup hazard
// left is dialing a peer whose listener is not up yet, which Dial absorbs
// by retrying with backoff until the formation deadline. A peer that
// re-dials (e.g. after a partial startup failure) simply replaces its
// previous inbound connection.
//
// # Wire format
//
// Every connection starts with a fixed handshake frame identifying the
// protocol, the dialer's rank, and the expected cluster size; mismatches
// reject the connection. After the handshake the stream is a sequence of
// length-prefixed message frames:
//
//	u32 payload length | u32 tag | u32 cost-model words | u32 CRC-32 (IEEE) of payload | payload
//
// Messages above the 64 MiB per-frame cap are written as a contiguous run
// of fragments (high bit set on the length word, CRC per fragment) and
// reassembled by the receiver, so message size is bounded only by a 1 GiB
// memory backstop, not by the framing.
//
// (all little-endian). The payload is the gob encoding of the message
// value as an interface, so any type registered via transport.Register
// round-trips; the collectives register their payload types themselves.
// Each frame is a self-contained gob stream (its own type descriptors):
// that costs some bytes per message versus a persistent per-connection
// encoder, but it is what allows Recv to decode lazily in (peer, tag)
// match order — a stream-stateful encoding would force decoding in
// arrival order, before the receiving rank has necessarily entered the
// collective that registers the payload type.
// Gob encodes float64 bit patterns and integers exactly, which is what
// makes a tcpnet sampling run produce byte-identical samples to a simnet
// run with the same seed. The CRC guards against corrupt or misframed
// streams: a mismatch poisons the transport rather than delivering a
// mangled payload to the sampler.
//
// # Semantics
//
// Send and Recv match messages by (peer, tag) through a per-node mailbox,
// exactly like the simulator. Work is a no-op (real computation takes real
// time) and Clock reports wall-clock nanoseconds since the transport came
// up. Stats counts this node's outgoing traffic: messages, declared
// cost-model words (comparable with simulated runs), and actual encoded
// bytes on the wire.
package tcpnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"reservoir/internal/transport"
)

const (
	handshakeMagic  = 0x52535654 // "RSVT"
	protocolVersion = 1
	handshakeLen    = 13
	frameHeaderLen  = 16
	// maxFramePayload bounds one frame; larger messages are fragmented
	// across frames (fragFlag) and reassembled by the receiver, so the
	// cap is a streaming granularity, not a message size limit.
	maxFramePayload = 1 << 26 // 64 MiB
	// fragFlag marks a frame as a non-final fragment of a larger message
	// (set on the length header word; lengths stay below 1<<26).
	fragFlag = uint32(1) << 31
	// maxMessageBytes bounds one reassembled message — a memory backstop,
	// far above anything the samplers send.
	maxMessageBytes  = 1 << 30
	defaultFormation = 60 * time.Second
)

// Config describes one node's place in the cluster.
type Config struct {
	// Rank is this node's id in 0..len(Peers)-1.
	Rank int
	// Peers is the rank-indexed address list ("host:port"), identical on
	// every node. Peers[Rank] is this node's advertised address.
	Peers []string
	// Listen optionally overrides the local listen address (default:
	// ":port" of Peers[Rank], binding all interfaces).
	Listen string
	// Listener optionally provides a pre-bound listener (tests use this
	// with port 0 listeners); Listen is ignored when set.
	Listener net.Listener
	// FormationTimeout bounds cluster formation — dialing all peers and
	// receiving all inbound connections (default 60s).
	FormationTimeout time.Duration
	// Logf receives connection lifecycle messages (default: silent).
	Logf func(format string, args ...any)
}

// Transport is one node's endpoint of the TCP mesh. It satisfies
// transport.Conn; see the package comment for semantics.
type Transport struct {
	rank, p int
	start   time.Time
	ln      net.Listener
	logf    func(string, ...any)

	box *mailbox

	mu    sync.Mutex
	out   []*link // rank-indexed outbound links; nil at own rank
	in    []net.Conn
	curIn []net.Conn // rank-indexed current inbound conn (stale readers stay benign)

	messages atomic.Int64
	words    atomic.Int64
	bytes    atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// link is one outbound (send-only) connection.
type link struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

// Dial forms this node's side of the cluster: it starts listening, opens a
// directed connection to every peer (retrying while their listeners come
// up), and waits until every peer has connected back, so a returned
// Transport can immediately send to and receive from any rank.
func Dial(cfg Config) (*Transport, error) {
	p := len(cfg.Peers)
	if p < 1 {
		return nil, fmt.Errorf("tcpnet: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("tcpnet: rank %d outside peer list of %d", cfg.Rank, p)
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t := &Transport{
		rank:   cfg.Rank,
		p:      p,
		start:  time.Now(),
		logf:   logf,
		box:    newMailbox(),
		out:    make([]*link, p),
		curIn:  make([]net.Conn, p),
		closed: make(chan struct{}),
	}
	if p == 1 {
		t.ln = cfg.Listener // no mesh needed; adopt the listener for Addr/Close
		return t, nil
	}

	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Listen
		if addr == "" {
			_, port, err := net.SplitHostPort(cfg.Peers[cfg.Rank])
			if err != nil {
				return nil, fmt.Errorf("tcpnet: own peer entry %q: %w", cfg.Peers[cfg.Rank], err)
			}
			addr = ":" + port
		}
		var err error
		if ln, err = net.Listen("tcp", addr); err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
		}
	}
	t.ln = ln

	timeout := cfg.FormationTimeout
	if timeout <= 0 {
		timeout = defaultFormation
	}
	deadline := time.Now().Add(timeout)

	// Inbound side: accept until every other rank has connected (and keep
	// accepting afterwards so a re-dialing peer can replace its link).
	inbound := make(chan int, p)
	go t.acceptLoop(inbound)

	// Outbound side: dial every peer concurrently, retrying while their
	// listeners come up.
	var wg sync.WaitGroup
	dialErrs := make([]error, p)
	for peer := 0; peer < p; peer++ {
		if peer == t.rank {
			continue
		}
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			dialErrs[peer] = t.dialPeer(peer, cfg.Peers[peer], deadline)
		}(peer)
	}
	wg.Wait()
	for peer, err := range dialErrs {
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("tcpnet: rank %d dialing peer %d: %w", t.rank, peer, err)
		}
	}

	// Wait for the full inbound mesh.
	seen := make([]bool, p)
	need := p - 1
	for need > 0 {
		select {
		case r := <-inbound:
			if !seen[r] {
				seen[r] = true
				need--
			}
		case <-time.After(time.Until(deadline)):
			t.Close()
			return nil, fmt.Errorf("tcpnet: rank %d: cluster formation timed out with %d inbound peer(s) missing", t.rank, need)
		case <-t.closed:
			return nil, fmt.Errorf("tcpnet: transport closed during formation")
		}
	}
	logf("tcpnet: rank %d/%d mesh up (%s)", t.rank, p, time.Since(t.start).Round(time.Millisecond))
	return t, nil
}

// dialPeer opens the directed rank→peer connection, retrying with backoff
// until the peer's listener accepts or the formation deadline passes.
func (t *Transport) dialPeer(peer int, addr string, deadline time.Time) error {
	backoff := 50 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true) // collectives are latency-bound
			}
			var hs [handshakeLen]byte
			binary.LittleEndian.PutUint32(hs[0:4], handshakeMagic)
			hs[4] = protocolVersion
			binary.LittleEndian.PutUint32(hs[5:9], uint32(t.rank))
			binary.LittleEndian.PutUint32(hs[9:13], uint32(t.p))
			if _, err = conn.Write(hs[:]); err != nil {
				// The peer's proxy/sidecar accepted the connect but reset
				// before it was ready: same startup race as a refused
				// dial, so fall through to the retry loop.
				conn.Close()
			} else {
				t.mu.Lock()
				t.out[peer] = &link{conn: conn, w: bufio.NewWriter(conn)}
				t.mu.Unlock()
				return nil
			}
		}
		// The usual dial race at startup: the peer process exists but its
		// listener is not up yet (connection refused / reset / unreachable
		// host name in an orchestrated environment). Retry until the
		// formation deadline.
		select {
		case <-t.closed:
			return fmt.Errorf("transport closed")
		default:
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("no listener at %s before formation deadline: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// acceptLoop accepts inbound connections for the life of the transport,
// validates their handshake, and spawns a reader per peer. Replaced
// connections (a peer re-dialing) supersede the previous reader, whose
// conn keeps draining until EOF.
func (t *Transport) acceptLoop(inbound chan<- int) {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.logf("tcpnet: rank %d accept: %v", t.rank, err)
			}
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			var hs [handshakeLen]byte
			if _, err := io.ReadFull(conn, hs[:]); err != nil {
				t.logf("tcpnet: rank %d: inbound handshake read: %v", t.rank, err)
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			if m := binary.LittleEndian.Uint32(hs[0:4]); m != handshakeMagic {
				t.logf("tcpnet: rank %d: inbound connection with bad magic %#x", t.rank, m)
				conn.Close()
				return
			}
			if v := hs[4]; v != protocolVersion {
				t.logf("tcpnet: rank %d: inbound protocol version %d (want %d)", t.rank, v, protocolVersion)
				conn.Close()
				return
			}
			from := int(binary.LittleEndian.Uint32(hs[5:9]))
			peerP := int(binary.LittleEndian.Uint32(hs[9:13]))
			if peerP != t.p || from < 0 || from >= t.p || from == t.rank {
				t.logf("tcpnet: rank %d: inbound peer claims rank %d of %d (cluster has %d)", t.rank, from, peerP, t.p)
				conn.Close()
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			t.mu.Lock()
			t.in = append(t.in, conn)
			prev := t.curIn[from]
			t.curIn[from] = conn
			t.mu.Unlock()
			if prev != nil {
				prev.Close() // superseded by the peer's re-dial
			}
			select {
			case inbound <- from:
			default:
			}
			t.readLoop(from, conn)
		}(conn)
	}
}

// readLoop reads message frames from one inbound connection into the
// mailbox until the connection closes. Framing or checksum violations —
// and the peer going away, whether by RST or clean FIN — poison receives
// from that peer: a blocked or future Recv(peer, ...) panics rather than
// the sampler consuming a corrupt payload or blocking forever on a dead
// cluster, while receives from still-live peers (e.g. during an orderly
// staggered shutdown) stay valid. Only a locally-closed transport or a
// superseded (re-dialed) connection ends the loop benignly.
func (t *Transport) readLoop(from int, conn net.Conn) {
	r := bufio.NewReader(conn)
	var head [frameHeaderLen]byte
	var partial []byte // accumulates fragments of an oversized message
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d connection lost: %w", t.rank, from, err))
			return
		}
		lenWord := binary.LittleEndian.Uint32(head[0:4])
		n := lenWord &^ fragFlag
		frag := lenWord&fragFlag != 0
		tag := int(binary.LittleEndian.Uint32(head[4:8]))
		// head[8:12] is the sender's cost-model word count; traffic is
		// accounted sender-side, so the receiver does not store it.
		sum := binary.LittleEndian.Uint32(head[12:16])
		if n > maxFramePayload {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d framed %d-byte payload (max %d)", t.rank, from, n, maxFramePayload))
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: reading %d-byte payload from peer %d: %w", t.rank, n, from, err))
			return
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: CRC mismatch on message from peer %d tag %d (%#x != %#x)", t.rank, from, tag, got, sum))
			return
		}
		if frag || partial != nil {
			partial = append(partial, payload...)
			if len(partial) > maxMessageBytes {
				t.failFrom(from, conn, fmt.Errorf("tcpnet: rank %d: peer %d message exceeds %d-byte cap", t.rank, from, maxMessageBytes))
				return
			}
			if frag {
				continue
			}
			payload, partial = partial, nil
		}
		t.box.put(inMsg{from: from, tag: tag, payload: payload})
	}
}

// failFrom poisons receives from one peer unless this connection was
// superseded by the peer's re-dial (a stale reader must stay benign — the
// replacement link is healthy) or the transport is locally closed.
func (t *Transport) failFrom(from int, conn net.Conn, err error) {
	t.mu.Lock()
	stale := t.curIn[from] != conn
	t.mu.Unlock()
	select {
	case <-t.closed:
		return
	default:
	}
	if !stale {
		t.box.failPeer(from, err)
	}
}

// --- transport.Conn --------------------------------------------------------

// ID implements transport.Conn.
func (t *Transport) ID() int { return t.rank }

// P implements transport.Conn.
func (t *Transport) P() int { return t.p }

// Send implements transport.Conn: gob-encode the payload and write one
// framed message on the directed link to `to`.
func (t *Transport) Send(to, tag int, payload any, words int) {
	if words < 1 {
		words = 1
	}
	if to == t.rank {
		panic("tcpnet: send to self")
	}
	t.mu.Lock()
	l := t.out[to]
	t.mu.Unlock()
	if l == nil {
		panic(fmt.Sprintf("tcpnet: rank %d has no link to peer %d", t.rank, to))
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHeaderLen)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(&payload); err != nil {
		panic(fmt.Sprintf("tcpnet: rank %d encoding message for peer %d tag %d: %v", t.rank, to, tag, err))
	}
	frame := buf.Bytes()
	body := frame[frameHeaderLen:]
	if len(body) > maxMessageBytes {
		panic(fmt.Sprintf("tcpnet: rank %d: message for peer %d tag %d encodes to %d bytes, above the %d-byte message cap", t.rank, to, tag, len(body), maxMessageBytes))
	}

	l.mu.Lock()
	err := writeFrames(l.w, tag, words, body)
	if err == nil {
		err = l.w.Flush()
	}
	l.mu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("tcpnet: rank %d sending to peer %d: %v", t.rank, to, err))
	}
	t.messages.Add(1)
	t.words.Add(int64(words))
	t.bytes.Add(int64(len(body)))
}

// writeFrames writes one message as one frame, or — above the per-frame
// cap — as a run of flagged fragments followed by a final unflagged frame.
// Fragments of one message are contiguous on the connection (the caller
// holds the link lock for the whole message), so the receiver reassembles
// by simple accumulation.
func writeFrames(w io.Writer, tag, words int, body []byte) error {
	var head [frameHeaderLen]byte
	for {
		chunk := body
		flag := uint32(0)
		if len(chunk) > maxFramePayload {
			chunk = body[:maxFramePayload]
			flag = fragFlag
		}
		body = body[len(chunk):]
		binary.LittleEndian.PutUint32(head[0:4], uint32(len(chunk))|flag)
		binary.LittleEndian.PutUint32(head[4:8], uint32(tag))
		binary.LittleEndian.PutUint32(head[8:12], uint32(words))
		binary.LittleEndian.PutUint32(head[12:16], crc32.ChecksumIEEE(chunk))
		if _, err := w.Write(head[:]); err != nil {
			return err
		}
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if flag == 0 {
			return nil
		}
	}
}

// Recv implements transport.Conn: block for the (from, tag) message and
// decode its payload. Transport failures (closed mesh, CRC mismatch,
// undecodable payload) panic, mirroring the simulator's treatment of
// protocol violations as programming errors.
func (t *Transport) Recv(from, tag int) any {
	m, err := t.box.get(from, tag)
	if err != nil {
		panic(err.Error())
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(m.payload)).Decode(&v); err != nil {
		panic(fmt.Sprintf("tcpnet: rank %d decoding message from peer %d tag %d: %v", t.rank, from, tag, err))
	}
	return v
}

// Work implements transport.Conn. Real computation takes real time, so
// there is no clock to advance.
func (t *Transport) Work(float64) {}

// Clock implements transport.Conn: wall-clock nanoseconds since Dial.
func (t *Transport) Clock() float64 { return float64(time.Since(t.start)) }

// Stats implements transport.StatsSource with this node's outgoing
// traffic.
func (t *Transport) Stats() transport.Stats {
	return transport.Stats{
		Messages: t.messages.Load(),
		Words:    t.words.Load(),
		Bytes:    t.bytes.Load(),
	}
}

// Pending returns the number of received-but-unclaimed messages (tests use
// it to detect leaks after a completed SPMD section).
func (t *Transport) Pending() int { return t.box.pending() }

// Close tears the mesh down. Blocked Recvs panic with a closed-transport
// error; the caller is expected to be done with collective work.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		for _, l := range t.out {
			if l != nil {
				l.conn.Close()
			}
		}
		for _, c := range t.in {
			c.Close()
		}
		t.mu.Unlock()
		t.box.fail(fmt.Errorf("tcpnet: rank %d: transport closed", t.rank))
	})
	return nil
}

// Addr returns the transport's bound listen address (useful with port-0
// listeners). Nil for single-node clusters.
func (t *Transport) Addr() net.Addr {
	if t.ln == nil {
		return nil
	}
	return t.ln.Addr()
}

// --- mailbox ---------------------------------------------------------------

type inMsg struct {
	from, tag int
	payload   []byte
}

// mailbox is the (sender, tag)-matching receive queue, the wire analogue
// of simnet's per-PE inbox. Failures are tracked per sender: a dead or
// corrupt link only dooms receives from that peer (already-delivered
// messages stay claimable), so during an orderly cluster shutdown a node
// that exits first does not break a survivor's receive from a still-live
// peer. A whole-mailbox failure (local transport close) fails everything.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []inMsg
	err     error
	peerErr map[int]error
}

func newMailbox() *mailbox {
	b := &mailbox{peerErr: make(map[int]error)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m inMsg) {
	b.mu.Lock()
	b.queue = append(b.queue, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) get(from, tag int) (inMsg, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.queue {
			if m.from == from && m.tag == tag {
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				return m, nil
			}
		}
		if b.err != nil {
			return inMsg{}, b.err
		}
		if err := b.peerErr[from]; err != nil {
			return inMsg{}, err
		}
		b.cond.Wait()
	}
}

// fail poisons the whole mailbox: all blocked and future receives return
// err.
func (b *mailbox) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// failPeer poisons receives from one sender: blocked and future receives
// from that peer return err once no matching message is queued.
func (b *mailbox) failPeer(from int, err error) {
	b.mu.Lock()
	if b.peerErr[from] == nil {
		b.peerErr[from] = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queue)
}
