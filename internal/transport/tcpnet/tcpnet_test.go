package tcpnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"reservoir/internal/transport"
)

func closeAll(ts []*Transport) {
	for _, t := range ts {
		if t != nil {
			t.Close()
		}
	}
}

func TestPointToPoint(t *testing.T) {
	transport.Register(42)
	transport.Register("")
	transport.Register([]float64(nil))
	ts, err := Loopback(3)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		ts[0].Send(1, 7, 42, 1)
		ts[0].Send(2, 7, "hello", 1)
		ts[0].Flush() // a rank that stops without receiving must flush
	}()
	go func() {
		defer wg.Done()
		ts[2].Send(1, 9, []float64{1.5, -0.25}, 2)
		ts[2].Flush()
	}()
	if got := ts[1].Recv(0, 7).(int); got != 42 {
		t.Fatalf("int payload = %d, want 42", got)
	}
	if got := ts[1].Recv(2, 9).([]float64); got[0] != 1.5 || got[1] != -0.25 {
		t.Fatalf("slice payload = %v", got)
	}
	if got := ts[2].Recv(0, 7).(string); got != "hello" {
		t.Fatalf("string payload = %q", got)
	}
	wg.Wait()

	st := ts[0].Stats()
	if st.Messages != 2 || st.Words != 2 {
		t.Fatalf("rank 0 stats = %+v, want 2 messages / 2 words", st)
	}
	if st.Bytes == 0 {
		t.Fatalf("rank 0 stats counted no bytes")
	}
	for i, tr := range ts {
		if n := tr.Pending(); n != 0 {
			t.Fatalf("rank %d has %d leaked messages", i, n)
		}
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	transport.Register(0)
	ts, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)

	// Send tags 1..3 in order; receive them in reverse. The mailbox must
	// match by tag, not arrival order.
	for tag := 1; tag <= 3; tag++ {
		ts[0].Send(1, tag, tag*100, 1)
	}
	ts[0].Flush() // batched sends reach the socket at flush points only
	for tag := 3; tag >= 1; tag-- {
		if got := ts[1].Recv(0, tag).(int); got != tag*100 {
			t.Fatalf("tag %d payload = %d, want %d", tag, got, tag*100)
		}
	}
}

func TestDialRetryWhileListenerComesUpLate(t *testing.T) {
	// Reserve two addresses; start rank 1's transport only after rank 0
	// has been dialing into the void for a while. Dial must absorb the
	// refused connections and complete formation.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{ln0.Addr().String(), ln1.Addr().String()}
	addr1 := ln1.Addr().String()
	ln1.Close() // rank 1 is "not started yet"

	results := make(chan *Transport, 2)
	errc := make(chan error, 2)
	go func() {
		tr, err := Dial(Config{Rank: 0, Peers: peers, Listener: ln0, FormationTimeout: 20 * time.Second})
		results <- tr
		errc <- err
	}()
	time.Sleep(300 * time.Millisecond) // rank 0 retries against a dead port
	go func() {
		ln1b, err := net.Listen("tcp", addr1)
		if err != nil {
			results <- nil
			errc <- err
			return
		}
		tr, err := Dial(Config{Rank: 1, Peers: peers, Listener: ln1b, FormationTimeout: 20 * time.Second})
		results <- tr
		errc <- err
	}()
	ts := make([]*Transport, 0, 2)
	for i := 0; i < 2; i++ {
		tr := <-results
		if err := <-errc; err != nil {
			t.Fatalf("formation failed: %v", err)
		}
		ts = append(ts, tr)
	}
	defer closeAll(ts)
	// Smoke a round-trip over the late-formed mesh.
	transport.Register(0)
	for _, tr := range ts {
		if tr.ID() == 0 {
			tr.Send(1, 1, 7, 1)
			tr.Flush()
		}
	}
	for _, tr := range ts {
		if tr.ID() == 1 {
			if got := tr.Recv(0, 1).(int); got != 7 {
				t.Fatalf("payload = %d, want 7", got)
			}
		}
	}
}

func TestFormationTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Peer 1 points at a port nobody will ever listen on.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	_, err = Dial(Config{
		Rank:             0,
		Peers:            []string{ln.Addr().String(), deadAddr},
		Listener:         ln,
		FormationTimeout: 700 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("formation against a dead peer succeeded")
	}
}

func TestCorruptFramePoisonsRecv(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transport{
		rank:     1,
		p:        2,
		start:    time.Now(),
		log:      slog.New(slog.DiscardHandler),
		box:      newMailbox(),
		out:      make([]*link, 2),
		perPeer:  make([]peerCounter, 2),
		curIn:    make([]net.Conn, 2),
		inIncar:  make([]uint64, 2),
		outIncar: make([]uint64, 2),
		closed:   make(chan struct{}),
		ln:       ln,
	}
	inbound := make(chan int, 2)
	go tr.acceptLoop(inbound)
	defer tr.Close()

	// Hand-roll rank 0's outbound connection: valid handshake, then a
	// frame whose CRC does not match its payload.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hs [handshakeLen]byte
	binary.LittleEndian.PutUint32(hs[0:4], handshakeMagic)
	hs[4] = protocolVersion
	binary.LittleEndian.PutUint32(hs[5:9], 0)
	binary.LittleEndian.PutUint32(hs[9:13], 2)
	if _, err := conn.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	payload := []byte("not a gob stream")
	var head [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], 3)
	binary.LittleEndian.PutUint32(head[8:12], 1)
	binary.LittleEndian.PutUint32(head[12:16], 0) // epoch
	binary.LittleEndian.PutUint32(head[16:20], crc32.ChecksumIEEE(payload)^0xdeadbeef)
	conn.Write(head[:])
	conn.Write(payload)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Recv returned instead of panicking on a corrupt frame")
		}
		fe, ok := r.(*transport.FatalError)
		if !ok {
			t.Fatalf("panic = %T (%v), want *transport.FatalError", r, r)
		}
		if !strings.Contains(fe.Msg, "CRC mismatch") {
			t.Fatalf("panic = %v, want CRC mismatch", fe)
		}
	}()
	tr.Recv(0, 3)
}

func TestOversizedMessageFragmentsAndReassembles(t *testing.T) {
	// A message above the per-frame cap must arrive intact via
	// fragmentation (a big gather — e.g. the centralized baseline's
	// candidate funnel — can legitimately exceed one frame).
	transport.Register([]byte(nil))
	ts, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)

	big := bytes.Repeat([]byte("reservoir-frame-fragmentation!"), (maxFramePayload+maxFramePayload/4)/30)
	big = append(big, 0xA5, 0x5A, 0x42) // uneven tail crossing the last fragment
	done := make(chan struct{})
	go func() {
		defer close(done)
		ts[0].Send(1, 5, big, len(big)/8)
	}()
	got := ts[1].Recv(0, 5).([]byte)
	<-done
	if len(got) != len(big) {
		t.Fatalf("reassembled %d bytes, want %d", len(got), len(big))
	}
	if !bytes.Equal(got, big) {
		t.Fatal("payload corrupted by fragmentation round-trip")
	}
	// A small message on the same link afterwards still works (fragment
	// state fully reset).
	transport.Register(0)
	ts[0].Send(1, 6, 99, 1)
	ts[0].Flush()
	if got := ts[1].Recv(0, 6).(int); got != 99 {
		t.Fatalf("post-fragment message = %d, want 99", got)
	}
	if ts[0].Stats().Messages != 2 {
		t.Fatalf("fragmented message counted as %d messages, want 2 total", ts[0].Stats().Messages)
	}
}

func TestPeerDeathPoisonsBlockedRecv(t *testing.T) {
	// A peer exiting cleanly (FIN, not RST) must not leave survivors
	// blocked forever: the EOF poisons the mailbox and Recv panics.
	ts, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		ts[1].Recv(0, 1) // blocks: rank 0 never sends
	}()
	time.Sleep(100 * time.Millisecond) // let the Recv block
	ts[0].Close()                      // rank 0 "exits cleanly"

	select {
	case r := <-panicked:
		if r == nil {
			t.Fatal("Recv returned normally after the peer died")
		}
		if !strings.Contains(fmt.Sprint(r), "connection lost") {
			t.Fatalf("panic = %v, want connection-lost poisoning", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv still blocked 10s after the peer closed its transport")
	}
}

func TestHandshakeRejectsWrongClusterSize(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := &Transport{
		rank:     1,
		p:        2,
		start:    time.Now(),
		log:      slog.New(slog.DiscardHandler),
		box:      newMailbox(),
		out:      make([]*link, 2),
		perPeer:  make([]peerCounter, 2),
		curIn:    make([]net.Conn, 2),
		inIncar:  make([]uint64, 2),
		outIncar: make([]uint64, 2),
		closed:   make(chan struct{}),
		ln:       ln,
	}
	inbound := make(chan int, 2)
	go tr.acceptLoop(inbound)
	defer tr.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hs [handshakeLen]byte
	binary.LittleEndian.PutUint32(hs[0:4], handshakeMagic)
	hs[4] = protocolVersion
	binary.LittleEndian.PutUint32(hs[5:9], 0)
	binary.LittleEndian.PutUint32(hs[9:13], 5) // claims a 5-node cluster
	if _, err := conn.Write(hs[:]); err != nil {
		t.Fatal(err)
	}
	// The transport must close the connection without registering the peer.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection stayed open after a bad handshake")
	}
	select {
	case r := <-inbound:
		t.Fatalf("bad handshake registered peer %d", r)
	default:
	}
}
