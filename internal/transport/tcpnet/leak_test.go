package tcpnet

import (
	"testing"

	"reservoir/internal/testutil"
)

// TestMain fails the suite if any accept/recv/redial goroutine outlives the
// tests: every Transport spawns background loops, and Close must reap them
// all.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
