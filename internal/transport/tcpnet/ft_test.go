package tcpnet

// Fault-tolerance tests: recoverable peer-loss semantics, the epoch
// filter that isolates retried rounds from stale traffic, the control
// channel the recovery protocol runs on, and redial-after-restart — the
// transport half of the crash-restart story (internal/nodesvc owns the
// protocol half).

import (
	"net"
	"testing"
	"time"

	"reservoir/internal/transport"
)

// dialPair forms a fault-tolerant 2-node mesh on fixed loopback ports and
// returns the transports plus the peer list (for restarts).
func dialPair(t *testing.T, rejoin time.Duration) ([]*Transport, []string) {
	t.Helper()
	lns := make([]net.Listener, 2)
	peers := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	ts := make([]*Transport, 2)
	errs := make([]error, 2)
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(rank int) {
			ts[rank], errs[rank] = Dial(Config{
				Rank: rank, Peers: peers, Listener: lns[rank],
				FormationTimeout: 20 * time.Second, RejoinTimeout: rejoin,
			})
			done <- struct{}{}
		}(i)
	}
	<-done
	<-done
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return ts, peers
}

func TestFTPeerLossInterruptsRecoverablyAndRedials(t *testing.T) {
	ts, peers := dialPair(t, 15*time.Second)
	defer closeAll(ts)

	// A blocked receive must abort with a recoverable *FaultError when
	// the peer dies — not hang, not poison the mailbox forever.
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		ts[1].Recv(0, 1)
	}()
	time.Sleep(100 * time.Millisecond)
	ts[0].Close() // "kill" rank 0

	var fe *FaultError
	select {
	case r := <-panicked:
		f, ok := transport.AsFault(r)
		if !ok {
			t.Fatalf("panic %v (%T) is not a transport.Fault", r, r)
		}
		fe = f.(*FaultError)
	case <-time.After(10 * time.Second):
		t.Fatal("Recv still blocked 10s after peer death")
	}
	if fe.Peer != 0 {
		t.Fatalf("fault names peer %d, want 0", fe.Peer)
	}
	if dp := ts[1].DownPeers(); len(dp) != 1 || dp[0] != 0 {
		t.Fatalf("down peers = %v, want [0]", dp)
	}

	// "Restart" rank 0 on its old address. The survivor's background
	// redial must reconnect, which is also what completes the restarted
	// node's formation (it waits for an inbound connection from rank 1).
	ln0, err := net.Listen("tcp", peers[0])
	if err != nil {
		t.Fatalf("rebinding %s: %v", peers[0], err)
	}
	t0b, err := Dial(Config{
		Rank: 0, Peers: peers, Listener: ln0,
		FormationTimeout: 20 * time.Second, RejoinTimeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatalf("restarted rank 0 could not re-form: %v", err)
	}
	defer t0b.Close()
	// Re-arm the survivor the way the recovery protocol does: refresh the
	// outbound link to the restarted incarnation (a send racing the
	// background redial could be silently buffered into the dead
	// connection), then clear the fault.
	if err := ts[1].Refresh(0, time.Now().Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	ts[1].ClearFault()

	// Traffic flows again in both directions. Sends are batched until a
	// flush point, and this goroutine plays both ranks — so flush the
	// sender explicitly where a real rank's own Recv would.
	transport.Register(0)
	t0b.Send(1, 2, 41, 1)
	t0b.Flush()
	if got := ts[1].Recv(0, 2).(int); got != 41 {
		t.Fatalf("post-rejoin payload = %d, want 41", got)
	}
	ts[1].Send(0, 3, 42, 1)
	ts[1].Flush()
	if got := t0b.Recv(1, 3).(int); got != 42 {
		t.Fatalf("post-rejoin payload = %d, want 42", got)
	}
}

func TestFTEpochFilterDiscardsStaleTraffic(t *testing.T) {
	ts, _ := dialPair(t, 5*time.Second)
	defer closeAll(ts)
	transport.Register("")

	// An epoch-0 message is sent, then both sides resync to epoch 1: the
	// stale message must never be delivered, only the epoch-1 retry.
	ts[0].Send(1, 7, "stale", 1)
	ts[0].Flush() // batched sends only hit the socket at a flush point
	deadline := time.Now().Add(5 * time.Second)
	for ts[1].Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ts[1].Pending() == 0 {
		t.Fatal("epoch-0 message never arrived")
	}
	ts[1].AdvanceEpoch(1)
	if n := ts[1].Pending(); n != 0 {
		t.Fatalf("%d stale messages survived the epoch advance", n)
	}
	ts[0].AdvanceEpoch(1)
	ts[0].Send(1, 7, "fresh", 1)
	ts[0].Flush()
	if got := ts[1].Recv(0, 7).(string); got != "fresh" {
		t.Fatalf("payload = %q, want the epoch-1 retry", got)
	}
	if ts[0].Epoch() != 1 || ts[1].Epoch() != 1 {
		t.Fatalf("epochs = %d/%d, want 1/1", ts[0].Epoch(), ts[1].Epoch())
	}
}

func TestFTCtrlChannelInterruptsAndDelivers(t *testing.T) {
	ts, _ := dialPair(t, 5*time.Second)
	defer closeAll(ts)
	transport.Register("")

	// A blocked data receive aborts recoverably when a control message
	// arrives (the peer is initiating a resync, the data will never come).
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		ts[1].Recv(0, 9)
	}()
	time.Sleep(100 * time.Millisecond)
	if err := ts[0].SendCtrl(1, "prepare", time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-panicked:
		if _, ok := transport.AsFault(r); !ok {
			t.Fatalf("panic %v (%T) is not a transport.Fault", r, r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ctrl message did not interrupt the blocked receive")
	}

	// The control message itself is retrievable, the notify channel
	// pulsed, and the data plane works afterwards.
	select {
	case <-ts[1].CtrlNotify():
	default:
		t.Fatal("CtrlNotify did not pulse")
	}
	from, payload, err := ts[1].RecvCtrl(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if from != 0 || payload.(string) != "prepare" {
		t.Fatalf("ctrl message = %v from %d", payload, from)
	}
	ts[0].Send(1, 10, "data", 1)
	ts[0].Flush() // this goroutine plays both ranks; flush for the sender
	if got := ts[1].Recv(0, 10).(string); got != "data" {
		t.Fatalf("post-ctrl payload = %q", got)
	}

	// RecvCtrl times out cleanly when nothing arrives.
	if _, _, err := ts[1].RecvCtrl(time.Now().Add(50 * time.Millisecond)); err == nil {
		t.Fatal("RecvCtrl returned without a message")
	}
}

func TestStrictModeStillPoisonsPermanently(t *testing.T) {
	// Without a rejoin window the original reliable-PE semantics hold:
	// peer loss poisons receives from that peer for good.
	ts, err := Loopback(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(ts)
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		ts[1].Recv(0, 1)
	}()
	time.Sleep(100 * time.Millisecond)
	ts[0].Close()
	select {
	case r := <-panicked:
		if _, ok := transport.AsFault(r); ok {
			t.Fatalf("strict-mode poisoning produced a recoverable fault: %v", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Recv still blocked")
	}
}
