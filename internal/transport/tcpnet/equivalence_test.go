package tcpnet_test

// The transport-equivalence suite: every collective of internal/coll and a
// full distributed sampling run must produce identical results over the
// in-process simulator (payloads passed by reference, virtual clocks) and
// over tcpnet (payloads gob-encoded across real sockets, wall clocks).
// This is the contract that lets one SPMD codebase serve both as the
// paper's measurement harness and as a real multi-process system.

import (
	"fmt"
	"sync"
	"testing"

	"reservoir"
	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/core"
	"reservoir/internal/simnet"
	"reservoir/internal/transport"
	"reservoir/internal/transport/tcpnet"
	"reservoir/internal/workload"
)

// runOverSimnet executes body SPMD over a fresh simulated cluster.
func runOverSimnet(t *testing.T, p int, body func(c *coll.Comm)) {
	t.Helper()
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	cl.Parallel(func(pe *simnet.PE) { body(coll.New(pe)) })
	if n := cl.PendingMessages(); n != 0 {
		t.Fatalf("simnet: %d leaked messages", n)
	}
}

// runOverTCP executes body SPMD over a loopback TCP mesh, one goroutine
// per node, and propagates the first panic as a test failure.
func runOverTCP(t *testing.T, p int, body func(c *coll.Comm)) {
	t.Helper()
	ts, err := tcpnet.Loopback(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	panics := make([]any, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() { panics[rank] = recover() }()
			body(coll.New(ts[rank]))
		}(i)
	}
	wg.Wait()
	for rank, r := range panics {
		if r != nil {
			t.Fatalf("tcpnet: rank %d panicked: %v", rank, r)
		}
	}
	for rank, tr := range ts {
		if n := tr.Pending(); n != 0 {
			t.Fatalf("tcpnet: rank %d has %d leaked messages", rank, n)
		}
	}
}

// collectiveScript runs one instance of every collective and records the
// per-rank results as a printable transcript. Slices are rendered with %v,
// which treats nil and empty identically — the backends differ in slice
// identity but must agree on contents.
func collectiveScript(p int) func(c *coll.Comm) []string {
	return func(c *coll.Comm) []string {
		var out []string
		add := func(name string, v any) { out = append(out, fmt.Sprintf("%s=%v", name, v)) }

		add("bcast_int", coll.Broadcast(c, 0, c.Rank()*10+7, 1))
		add("bcast_float", coll.Broadcast(c, p-1, float64(c.Rank())+0.5, 1))
		add("reduce_sum", coll.Reduce(c, 0, c.Rank()+1, coll.SumInt, 1))
		add("reduce_concat", coll.Reduce(c, p/2, fmt.Sprintf("<%d>", c.Rank()),
			func(a, b string) string { return a + b }, 1))
		add("allreduce_min", coll.AllReduce(c, 100-float64(c.Rank()), coll.MinFloat64, 1))
		add("allreduce_max", coll.AllReduce(c, float64(c.Rank()*c.Rank()), coll.MaxFloat64, 1))
		add("allreduce_vec", coll.AllReduce(c, []int{c.Rank(), 1, -c.Rank()}, coll.SumInts, 3))

		// Merge the d smallest keys, the selection algorithm's hot op.
		keys := []btree.Key{
			{V: float64(c.Rank()) + 0.25, ID: uint64(c.Rank())},
			{V: float64(c.Rank()*3) + 0.75, ID: uint64(c.Rank() + 100)},
		}
		add("allreduce_merge", coll.AllReduce(c, keys, coll.MergeSmallest(3, btree.Key.Less), 6))

		coll.Barrier(c)

		// Variable-length gather, including an empty contribution.
		var items []workload.Item
		for i := 0; i <= c.Rank()%3; i++ {
			items = append(items, workload.Item{W: float64(c.Rank()) + float64(i)/8, ID: uint64(c.Rank()*100 + i)})
		}
		if c.Rank() == p/2 {
			items = nil
		}
		add("gather", coll.Gather(c, 0, items, 2))
		add("allgather", coll.AllGather(c, []int{c.Rank() * 2}, 1))
		return out
	}
}

func TestCollectiveEquivalenceAcrossTransports(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			t.Parallel()
			script := collectiveScript(p)
			simOut := make([][]string, p)
			tcpOut := make([][]string, p)
			var mu sync.Mutex
			runOverSimnet(t, p, func(c *coll.Comm) {
				r := script(c)
				mu.Lock()
				simOut[c.Rank()] = r
				mu.Unlock()
			})
			runOverTCP(t, p, func(c *coll.Comm) {
				r := script(c)
				mu.Lock()
				tcpOut[c.Rank()] = r
				mu.Unlock()
			})
			for rank := 0; rank < p; rank++ {
				if len(simOut[rank]) != len(tcpOut[rank]) {
					t.Fatalf("rank %d: %d simnet records vs %d tcpnet records", rank, len(simOut[rank]), len(tcpOut[rank]))
				}
				for i := range simOut[rank] {
					if simOut[rank][i] != tcpOut[rank][i] {
						t.Errorf("rank %d record %d:\n  simnet: %s\n  tcpnet: %s", rank, i, simOut[rank][i], tcpOut[rank][i])
					}
				}
			}
		})
	}
}

// samplingRun drives one full multi-round sampling run SPMD and returns
// the rank-0 collected sample plus every rank's final threshold and size.
type samplingResult struct {
	sample  []workload.Item
	thresh  []float64
	haveT   []bool
	size    []int
	netMsgs int64 // simnet only
}

func driveSampler(c *coll.Comm, cfg core.Config, algo string, rounds, batchLen int) (sample []workload.Item, thresh float64, haveT bool, size int) {
	var s core.Sampler
	var err error
	switch algo {
	case "gather":
		s, err = core.NewGatherPE(c, cfg)
	default:
		s, err = core.NewDistPE(c, cfg)
	}
	if err != nil {
		panic(err)
	}
	src := workload.UniformSource{Seed: cfg.Seed + 99, BatchLen: batchLen, Lo: 0, Hi: 100}
	for round := 0; round < rounds; round++ {
		s.ProcessBatch(src.NextBatch(c.Rank(), round))
	}
	sample = s.CollectSample()
	thresh, haveT = s.Threshold()
	size = s.SampleSize()
	return
}

func TestSamplingEquivalenceAcrossTransports(t *testing.T) {
	cases := []struct {
		name   string
		algo   string
		cfg    core.Config
		p      int
		rounds int
		batch  int
	}{
		{"distributed-weighted", "ours", core.Config{K: 64, Weighted: true, Seed: 42}, 4, 6, 800},
		{"distributed-uniform", "ours", core.Config{K: 48, Seed: 7}, 4, 5, 600},
		{"distributed-multipivot", "ours", core.Config{K: 64, Weighted: true, Seed: 11, Strategy: core.SelMultiPivot, Pivots: 4}, 5, 4, 500},
		{"gather-baseline", "gather", core.Config{K: 64, Weighted: true, Seed: 23}, 4, 6, 800},
		{"distributed-sharded1", "ours", core.Config{K: 64, Weighted: true, Seed: 31, Shards: 1}, 4, 6, 800},
		{"distributed-sharded4", "ours", core.Config{K: 64, Weighted: true, Seed: 37, Shards: 4}, 4, 6, 800},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			run := func(exec func(*testing.T, int, func(*coll.Comm))) samplingResult {
				res := samplingResult{
					thresh: make([]float64, tc.p),
					haveT:  make([]bool, tc.p),
					size:   make([]int, tc.p),
				}
				var mu sync.Mutex
				exec(t, tc.p, func(c *coll.Comm) {
					sample, th, have, size := driveSampler(c, tc.cfg, tc.algo, tc.rounds, tc.batch)
					mu.Lock()
					defer mu.Unlock()
					res.thresh[c.Rank()] = th
					res.haveT[c.Rank()] = have
					res.size[c.Rank()] = size
					if c.Rank() == 0 {
						res.sample = sample
					}
				})
				return res
			}
			sim := run(runOverSimnet)
			tcp := run(runOverTCP)

			if len(sim.sample) != len(tcp.sample) {
				t.Fatalf("sample sizes differ: simnet %d vs tcpnet %d", len(sim.sample), len(tcp.sample))
			}
			for i := range sim.sample {
				if sim.sample[i] != tcp.sample[i] {
					t.Fatalf("sample[%d] differs: simnet %+v vs tcpnet %+v", i, sim.sample[i], tcp.sample[i])
				}
			}
			for rank := 0; rank < tc.p; rank++ {
				if sim.thresh[rank] != tcp.thresh[rank] || sim.haveT[rank] != tcp.haveT[rank] {
					t.Errorf("rank %d threshold: simnet (%v,%v) vs tcpnet (%v,%v)",
						rank, sim.thresh[rank], sim.haveT[rank], tcp.thresh[rank], tcp.haveT[rank])
				}
				if sim.size[rank] != tcp.size[rank] {
					t.Errorf("rank %d size: simnet %d vs tcpnet %d", rank, sim.size[rank], tcp.size[rank])
				}
			}
			if len(sim.sample) != tc.cfg.K {
				t.Fatalf("sample has %d items, want k=%d", len(sim.sample), tc.cfg.K)
			}
		})
	}
}

// TestPipelinedNodeEquivalenceAcrossTransports runs the production round
// driver — reservoir.Node, which under Config.Pipeline overlaps each
// round's scan goroutine with the previous round's selection collectives
// — over both backends at shards ∈ {1, 4} and demands byte-identical
// samples and thresholds. This is the cross-transport pin for the
// pipelined sharded scan: real sockets, real concurrency, same stream.
func TestPipelinedNodeEquivalenceAcrossTransports(t *testing.T) {
	const p, rounds, batch = 4, 8, 600
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			cfg := reservoir.Config{K: 64, Weighted: true, Seed: 41, Shards: shards, Pipeline: true}
			src := reservoir.UniformSource{Seed: 43, BatchLen: batch, Lo: 0, Hi: 100}

			type result struct {
				sample []workload.Item
				thresh []float64
			}
			drive := func(conn transport.Conn, rank int, res *result, mu *sync.Mutex) {
				n, err := reservoir.NewNode(conn, cfg)
				if err != nil {
					panic(err)
				}
				for r := 0; r < rounds; r++ {
					n.ProcessRound(src)
				}
				sample := n.CollectSample()
				th, _ := n.Threshold()
				mu.Lock()
				defer mu.Unlock()
				res.thresh[rank] = th
				if rank == 0 {
					res.sample = sample
				}
			}

			var mu sync.Mutex
			sim := result{thresh: make([]float64, p)}
			runOverSimnetConns(t, p, func(conn transport.Conn, rank int) {
				drive(conn, rank, &sim, &mu)
			})
			tcp := result{thresh: make([]float64, p)}
			runOverTCPConns(t, p, func(conn transport.Conn, rank int) {
				drive(conn, rank, &tcp, &mu)
			})

			if len(sim.sample) != len(tcp.sample) {
				t.Fatalf("sample sizes differ: simnet %d vs tcpnet %d", len(sim.sample), len(tcp.sample))
			}
			for i := range sim.sample {
				if sim.sample[i] != tcp.sample[i] {
					t.Fatalf("sample[%d] differs: simnet %+v vs tcpnet %+v", i, sim.sample[i], tcp.sample[i])
				}
			}
			for rank := 0; rank < p; rank++ {
				if sim.thresh[rank] != tcp.thresh[rank] {
					t.Errorf("rank %d threshold: simnet %v vs tcpnet %v", rank, sim.thresh[rank], tcp.thresh[rank])
				}
			}
			if len(sim.sample) != cfg.K {
				t.Fatalf("sample has %d items, want k=%d", len(sim.sample), cfg.K)
			}
		})
	}
}

// runOverSimnetConns is runOverSimnet with the raw transport.Conn (the
// Node constructor wants the connection, not a pre-built Comm).
func runOverSimnetConns(t *testing.T, p int, body func(conn transport.Conn, rank int)) {
	t.Helper()
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	cl.Parallel(func(pe *simnet.PE) { body(pe, pe.ID()) })
	if n := cl.PendingMessages(); n != 0 {
		t.Fatalf("simnet: %d leaked messages", n)
	}
}

// runOverTCPConns is runOverTCP with the raw transport.Conn.
func runOverTCPConns(t *testing.T, p int, body func(conn transport.Conn, rank int)) {
	t.Helper()
	ts, err := tcpnet.Loopback(p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range ts {
			tr.Close()
		}
	}()
	panics := make([]any, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() { panics[rank] = recover() }()
			body(ts[rank], rank)
		}(i)
	}
	wg.Wait()
	for rank, r := range panics {
		if r != nil {
			t.Fatalf("tcpnet: rank %d panicked: %v", rank, r)
		}
	}
	for rank, tr := range ts {
		if n := tr.Pending(); n != 0 {
			t.Fatalf("tcpnet: rank %d has %d leaked messages", rank, n)
		}
	}
}
