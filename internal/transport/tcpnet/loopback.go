package tcpnet

import (
	"fmt"
	"net"
	"time"
)

// Loopback forms a complete p-node cluster over 127.0.0.1 with
// OS-assigned ports and returns the rank-indexed transports. It exists for
// tests and in-process experiments: production clusters run one Dial per
// OS process with a static peer list (see docs/DEPLOY.md). Closing any
// returned transport poisons its node only; callers should Close all of
// them.
func Loopback(p int) ([]*Transport, error) {
	return LoopbackFT(p, 0)
}

// LoopbackFT is Loopback with fault tolerance enabled: each transport
// runs with the given rejoin window (see Config.RejoinTimeout). Zero
// yields the strict reliable-PE semantics of Loopback.
func LoopbackFT(p int, rejoin time.Duration) ([]*Transport, error) {
	if p < 1 {
		return nil, fmt.Errorf("tcpnet: loopback cluster needs p >= 1")
	}
	listeners := make([]net.Listener, p)
	peers := make([]string, p)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("tcpnet: loopback listen: %w", err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	ts := make([]*Transport, p)
	errs := make([]error, p)
	done := make(chan int, p)
	for i := 0; i < p; i++ {
		go func(rank int) {
			ts[rank], errs[rank] = Dial(Config{
				Rank:             rank,
				Peers:            peers,
				Listener:         listeners[rank],
				FormationTimeout: 30 * time.Second,
				RejoinTimeout:    rejoin,
			})
			done <- rank
		}(i)
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			for _, t := range ts {
				if t != nil {
					t.Close()
				}
			}
			return nil, err
		}
	}
	return ts, nil
}
