package core

import (
	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/transport"
	"reservoir/internal/workload"
)

// Wire codecs for the sampler hot path: every payload the distributed
// samplers send per round — selection pivots and counts, gather chunks
// of items/keys/candidates, threshold broadcasts, counter reductions —
// gets a hand-rolled binary encoding so the TCP transport never falls
// back to per-frame gob (fresh type descriptors every message) for hot
// traffic. IDs are assigned centrally in internal/transport/wire.go;
// the formats are specified in DESIGN.md §2.4. Registration happens at
// init so any binary linking the samplers (reservoir-serve nodes,
// benches, tests) agrees on the mapping.

// Fixed-width element codecs. Keys and items are two 8-byte words each
// (float bits + id), keyed candidates are the pair — all bit-exact, so
// tcpnet rounds stay byte-identical to simnet ones.

func appendKey(buf []byte, k btree.Key) []byte {
	buf = transport.AppendF64(buf, k.V)
	return transport.AppendU64(buf, k.ID)
}

func decKey(d *transport.Dec) btree.Key {
	return btree.Key{V: d.F64(), ID: d.U64()}
}

func appendItem(buf []byte, it workload.Item) []byte {
	buf = transport.AppendF64(buf, it.W)
	return transport.AppendU64(buf, it.ID)
}

func decItem(d *transport.Dec) workload.Item {
	return workload.Item{W: d.F64(), ID: d.U64()}
}

func appendKeyedItem(buf []byte, ki keyedItem) []byte {
	buf = appendKey(buf, ki.Key)
	return appendItem(buf, ki.Item)
}

func decKeyedItem(d *transport.Dec) keyedItem {
	return keyedItem{Key: decKey(d), Item: decItem(d)}
}

// appendSlice/decSlice encode a vector of fixed-width elements as a
// uvarint count plus elements. elemMin is the minimum encoded element
// size, which lets the decoder reject a length-lying header before
// allocating (transport.Dec.Len).
func appendSlice[T any](buf []byte, v []T, el func([]byte, T) []byte) []byte {
	buf = transport.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = el(buf, x)
	}
	return buf
}

func decSlice[T any](d *transport.Dec, elemMin int, el func(*transport.Dec) T) ([]T, error) {
	n := d.Len(elemMin)
	if err := d.Err(); err != nil {
		return nil, err
	}
	v := make([]T, n)
	for i := range v {
		v[i] = el(d)
	}
	return v, d.Err()
}

// appendChunks/decChunks encode a gather tree's []coll.Chunk[T]: a
// uvarint chunk count, then per chunk the source rank, element count,
// and elements.
func appendChunks[T any](buf []byte, chunks []coll.Chunk[T], el func([]byte, T) []byte) []byte {
	buf = transport.AppendUvarint(buf, uint64(len(chunks)))
	for _, ch := range chunks {
		buf = transport.AppendUvarint(buf, uint64(ch.Src))
		buf = appendSlice(buf, ch.Items, el)
	}
	return buf
}

func decChunks[T any](d *transport.Dec, elemMin int, el func(*transport.Dec) T) ([]coll.Chunk[T], error) {
	n := d.Len(2) // a chunk is at least src + count
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := make([]coll.Chunk[T], 0, n)
	for i := 0; i < n; i++ {
		src := int(d.Uvarint())
		items, err := decSlice(d, elemMin, el)
		if err != nil {
			return nil, err
		}
		out = append(out, coll.Chunk[T]{Src: src, Items: items})
	}
	return out, d.Err()
}

func init() {
	transport.RegisterMarshaler(transport.WireIDKey, appendKey,
		func(d *transport.Dec) (btree.Key, error) { return decKey(d), d.Err() })

	transport.RegisterMarshaler(transport.WireIDKeySlice,
		func(buf []byte, v []btree.Key) []byte { return appendSlice(buf, v, appendKey) },
		func(d *transport.Dec) ([]btree.Key, error) { return decSlice(d, 16, decKey) })

	transport.RegisterMarshaler(transport.WireIDItemSlice,
		func(buf []byte, v []workload.Item) []byte { return appendSlice(buf, v, appendItem) },
		func(d *transport.Dec) ([]workload.Item, error) { return decSlice(d, 16, decItem) })

	transport.RegisterMarshaler(transport.WireIDItemChunks,
		func(buf []byte, v []coll.Chunk[workload.Item]) []byte { return appendChunks(buf, v, appendItem) },
		func(d *transport.Dec) ([]coll.Chunk[workload.Item], error) { return decChunks(d, 16, decItem) })

	transport.RegisterMarshaler(transport.WireIDKeyChunks,
		func(buf []byte, v []coll.Chunk[btree.Key]) []byte { return appendChunks(buf, v, appendKey) },
		func(d *transport.Dec) ([]coll.Chunk[btree.Key], error) { return decChunks(d, 16, decKey) })

	transport.RegisterMarshaler(transport.WireIDKeyedItemChunks,
		func(buf []byte, v []coll.Chunk[keyedItem]) []byte { return appendChunks(buf, v, appendKeyedItem) },
		func(d *transport.Dec) ([]coll.Chunk[keyedItem], error) { return decChunks(d, 32, decKeyedItem) })

	transport.RegisterMarshaler(transport.WireIDIntChunks,
		func(buf []byte, v []coll.Chunk[int]) []byte {
			return appendChunks(buf, v, func(b []byte, x int) []byte { return transport.AppendVarint(b, int64(x)) })
		},
		func(d *transport.Dec) ([]coll.Chunk[int], error) {
			return decChunks(d, 1, func(d *transport.Dec) int { return d.Int() })
		})

	transport.RegisterMarshaler(transport.WireIDIntTable,
		func(buf []byte, v [][]int) []byte {
			return appendSlice(buf, v, func(b []byte, row []int) []byte {
				return appendSlice(b, row, func(b []byte, x int) []byte { return transport.AppendVarint(b, int64(x)) })
			})
		},
		func(d *transport.Dec) ([][]int, error) {
			return decSlice(d, 1, func(d *transport.Dec) []int {
				row, _ := decSlice(d, 1, func(d *transport.Dec) int { return d.Int() })
				return row
			})
		})

	transport.RegisterMarshaler(transport.WireIDThreshMsg,
		func(buf []byte, v threshMsg) []byte {
			buf = appendKey(buf, v.T)
			buf = transport.AppendBool(buf, v.Have)
			return transport.AppendVarint(buf, int64(v.Size))
		},
		func(d *transport.Dec) (threshMsg, error) {
			return threshMsg{T: decKey(d), Have: d.Bool(), Size: d.Int()}, d.Err()
		})

	transport.RegisterMarshaler(transport.WireIDCounters,
		func(buf []byte, v Counters) []byte {
			buf = transport.AppendVarint(buf, v.ItemsProcessed)
			buf = transport.AppendVarint(buf, v.Inserted)
			buf = transport.AppendVarint(buf, v.CandidateWords)
			buf = transport.AppendVarint(buf, v.Selections)
			buf = transport.AppendVarint(buf, v.SelectionRounds)
			return transport.AppendVarint(buf, v.GatheredSelections)
		},
		func(d *transport.Dec) (Counters, error) {
			return Counters{
				ItemsProcessed:     d.Varint(),
				Inserted:           d.Varint(),
				CandidateWords:     d.Varint(),
				Selections:         d.Varint(),
				SelectionRounds:    d.Varint(),
				GatheredSelections: d.Varint(),
			}, d.Err()
		})
}
