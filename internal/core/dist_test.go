package core

import (
	"math"
	"sync"
	"testing"

	"reservoir/internal/coll"
	"reservoir/internal/simnet"
	"reservoir/internal/stats"
	"reservoir/internal/workload"
)

// sliceSource serves pre-materialized batches: batches[round][pe].
type sliceSource struct {
	batches [][]workload.SliceBatch
}

func (s sliceSource) NextBatch(pe, round int) workload.Batch {
	return s.batches[round][pe]
}

// splitItems deals items round-robin into rounds × p batches.
func splitItems(items workload.SliceBatch, p, rounds int) sliceSource {
	src := sliceSource{batches: make([][]workload.SliceBatch, rounds)}
	for r := range src.batches {
		src.batches[r] = make([]workload.SliceBatch, p)
	}
	for i, it := range items {
		r := (i / p) % rounds
		pe := i % p
		src.batches[r][pe] = append(src.batches[r][pe], it)
	}
	return src
}

// testCluster wires up p samplers of the given kind over a fresh simulated
// cluster.
type testCluster struct {
	cl       *simnet.Cluster
	samplers []Sampler
}

func newTestCluster(t *testing.T, p int, cfg Config, gather bool) *testCluster {
	t.Helper()
	cl := simnet.NewCluster(p, simnet.CostParams{AlphaNS: cfg.Model.AlphaNS, BetaNS: cfg.Model.BetaNS})
	tc := &testCluster{cl: cl, samplers: make([]Sampler, p)}
	for i := 0; i < p; i++ {
		comm := coll.New(cl.PE(i))
		var err error
		if gather {
			tc.samplers[i], err = NewGatherPE(comm, cfg)
		} else {
			tc.samplers[i], err = NewDistPE(comm, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// processRound runs one SPMD mini-batch round.
func (tc *testCluster) processRound(src workload.Source, round int) {
	tc.cl.Parallel(func(pe *simnet.PE) {
		tc.samplers[pe.ID()].ProcessBatch(src.NextBatch(pe.ID(), round))
	})
}

// collect gathers the global sample (from PE 0's perspective).
func (tc *testCluster) collect() []workload.Item {
	var out []workload.Item
	var mu sync.Mutex
	tc.cl.Parallel(func(pe *simnet.PE) {
		s := tc.samplers[pe.ID()].CollectSample()
		if pe.ID() == 0 {
			mu.Lock()
			out = s
			mu.Unlock()
		}
	})
	return out
}

func runDistributed(t *testing.T, p, rounds int, cfg Config, gather bool, src workload.Source) ([]workload.Item, *testCluster) {
	t.Helper()
	tc := newTestCluster(t, p, cfg, gather)
	for r := 0; r < rounds; r++ {
		tc.processRound(src, r)
	}
	return tc.collect(), tc
}

func TestDistInvariantsFixedK(t *testing.T) {
	const p, rounds, k = 8, 5, 100
	cfg := Config{K: k, Weighted: true, Strategy: SelMultiPivot, Pivots: 8, Seed: 42}
	tc := newTestCluster(t, p, cfg, false)
	src := workload.UniformSource{Seed: 7, BatchLen: 2000, Lo: 0, Hi: 100}
	prevThresh := math.Inf(1)
	for r := 0; r < rounds; r++ {
		tc.processRound(src, r)
		// All PEs must agree on size and threshold.
		size0 := tc.samplers[0].SampleSize()
		th0, have0 := tc.samplers[0].Threshold()
		localSum := 0
		for i, s := range tc.samplers {
			if s.SampleSize() != size0 {
				t.Fatalf("round %d: PE %d size %d != %d", r, i, s.SampleSize(), size0)
			}
			th, have := s.Threshold()
			if th != th0 || have != have0 {
				t.Fatalf("round %d: PE %d threshold disagrees", r, i)
			}
			localSum += s.(*DistPE).LocalSize()
		}
		if size0 != k {
			t.Fatalf("round %d: global sample size %d, want %d", r, size0, k)
		}
		if localSum != k {
			t.Fatalf("round %d: local sizes sum to %d, want %d", r, localSum, k)
		}
		if !have0 {
			t.Fatalf("round %d: no threshold established", r)
		}
		if th0 > prevThresh {
			t.Fatalf("round %d: threshold increased: %v > %v", r, th0, prevThresh)
		}
		prevThresh = th0
		// Local reservoir keys must all be at or below the threshold.
		for i, s := range tc.samplers {
			d := s.(*DistPE)
			if mk, _, ok := d.res.Max(); ok && mk.V > th0 {
				t.Fatalf("round %d: PE %d holds key %v above threshold %v", r, i, mk.V, th0)
			}
		}
	}
	sample := tc.collect()
	if len(sample) != k {
		t.Fatalf("collected sample has %d items, want %d", len(sample), k)
	}
	seen := map[uint64]bool{}
	for _, it := range sample {
		if seen[it.ID] {
			t.Fatalf("duplicate item %d in sample (not without replacement)", it.ID)
		}
		seen[it.ID] = true
	}
	// No messages may leak.
	if n := tc.cl.PendingMessages(); n != 0 {
		t.Errorf("%d messages leaked", n)
	}
	// The distributed algorithm never gathers candidate items.
	if g := tc.samplers[0].Timing().GatherNS; g != 0 {
		t.Errorf("distributed sampler reported gather time %v", g)
	}
}

func TestDistSmallStreamKeepsEverything(t *testing.T) {
	// Fewer than k items in total: the sample must be every item.
	const p, k = 4, 50
	cfg := Config{K: k, Weighted: true, Seed: 1}
	items := makeItems(30, func(i int) float64 { return 1 + float64(i) })
	src := splitItems(items, p, 2)
	sample, tc := runDistributed(t, p, 2, cfg, false, src)
	if len(sample) != 30 {
		t.Fatalf("sample has %d items, want all 30", len(sample))
	}
	if _, have := tc.samplers[0].Threshold(); have {
		t.Error("threshold established before k items seen")
	}
}

func TestDistExactlyKItems(t *testing.T) {
	const p, k = 4, 32
	cfg := Config{K: k, Weighted: true, Seed: 3}
	items := makeItems(k, func(i int) float64 { return 1 })
	src := splitItems(items, p, 1)
	sample, tc := runDistributed(t, p, 1, cfg, false, src)
	if len(sample) != k {
		t.Fatalf("sample has %d items, want %d", len(sample), k)
	}
	if _, have := tc.samplers[0].Threshold(); !have {
		t.Error("threshold missing after exactly k items")
	}
}

// distInclusionCounts runs the full distributed pipeline many times and
// counts item inclusions.
func distInclusionCounts(t *testing.T, n, k, p, rounds, trials int, weights func(i int) float64,
	mk func(trial int) Config, gather bool) []float64 {
	t.Helper()
	counts := make([]float64, n)
	items := makeItems(n, weights)
	src := splitItems(items, p, rounds)
	for tr := 0; tr < trials; tr++ {
		cfg := mk(tr)
		sample, _ := runDistributed(t, p, rounds, cfg, gather, src)
		if len(sample) != k {
			t.Fatalf("trial %d: sample size %d, want %d", tr, len(sample), k)
		}
		for _, it := range sample {
			counts[it.ID]++
		}
	}
	return counts
}

func TestDistWeightedMatchesOracle(t *testing.T) {
	const n, k, p, rounds, trials = 48, 12, 4, 2, 1200
	weights := func(i int) float64 { return float64(i%5) + 0.5 }
	dist := distInclusionCounts(t, n, k, p, rounds, trials, weights, func(tr int) Config {
		return Config{K: k, Weighted: true, Seed: uint64(tr)*131 + 1}
	}, false)
	oracle := inclusionCounts(n, trials, func(tr int) []workload.Item {
		s := NewNaiveOracle(k, true, rng2(uint64(tr)*977+5))
		s.ProcessBatch(makeItems(n, weights))
		return s.Sample()
	})
	twoSampleChi(t, "distributed-vs-oracle", dist, oracle)
}

func TestDistUniformMatchesExactProbability(t *testing.T) {
	const n, k, p, rounds, trials = 60, 12, 4, 2, 1200
	counts := distInclusionCounts(t, n, k, p, rounds, trials, func(i int) float64 { return 1 }, func(tr int) Config {
		return Config{K: k, Weighted: false, Seed: uint64(tr)*29 + 3}
	}, false)
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = float64(trials) * float64(k) / float64(n)
	}
	_, pval, err := stats.ChiSquare(counts, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pval < 1e-4 {
		t.Errorf("distributed uniform sampler deviates from k/n: p = %g", pval)
	}
}

func TestDistOptimizationsPreserveDistribution(t *testing.T) {
	// Local thresholding + blocked skip must not change the sampling
	// distribution.
	const n, k, p, rounds, trials = 48, 12, 4, 2, 1200
	weights := func(i int) float64 { return float64(i%7) + 0.25 }
	plain := distInclusionCounts(t, n, k, p, rounds, trials, weights, func(tr int) Config {
		return Config{K: k, Weighted: true, Seed: uint64(tr)*17 + 11}
	}, false)
	optimized := distInclusionCounts(t, n, k, p, rounds, trials, weights, func(tr int) Config {
		return Config{K: k, Weighted: true, Seed: uint64(tr)*23 + 19,
			LocalThreshold: true, BlockedSkip: true}
	}, false)
	twoSampleChi(t, "plain-vs-optimized", plain, optimized)
}

func TestGatherMatchesOracle(t *testing.T) {
	const n, k, p, rounds, trials = 48, 12, 4, 2, 1200
	weights := func(i int) float64 { return float64(i%5) + 0.5 }
	gather := distInclusionCounts(t, n, k, p, rounds, trials, weights, func(tr int) Config {
		return Config{K: k, Weighted: true, Seed: uint64(tr)*41 + 7}
	}, true)
	oracle := inclusionCounts(n, trials, func(tr int) []workload.Item {
		s := NewNaiveOracle(k, true, rng2(uint64(tr)*53+29))
		s.ProcessBatch(makeItems(n, weights))
		return s.Sample()
	})
	twoSampleChi(t, "gather-vs-oracle", gather, oracle)
}

func TestGatherInvariants(t *testing.T) {
	const p, rounds, k = 6, 4, 64
	cfg := Config{K: k, Weighted: true, Seed: 5}
	tc := newTestCluster(t, p, cfg, true)
	src := workload.UniformSource{Seed: 11, BatchLen: 500, Lo: 0, Hi: 100}
	for r := 0; r < rounds; r++ {
		tc.processRound(src, r)
		if got := tc.samplers[0].SampleSize(); got != k {
			t.Fatalf("round %d: size %d, want %d", r, got, k)
		}
	}
	sample := tc.collect()
	if len(sample) != k {
		t.Fatalf("gather sample size %d", len(sample))
	}
	// The gather baseline must report gather time and candidate traffic.
	tm := tc.samplers[1].Timing()
	if tm.GatherNS <= 0 {
		t.Error("gather baseline reported no gather time")
	}
	if tc.samplers[1].Counters().CandidateWords == 0 {
		t.Error("gather baseline reported no candidate words")
	}
}

func TestDistVariableSizeMode(t *testing.T) {
	const p, rounds = 4, 8
	cfg := Config{KMin: 80, KMax: 160, Weighted: true, Seed: 9}
	tc := newTestCluster(t, p, cfg, false)
	src := workload.UniformSource{Seed: 13, BatchLen: 400, Lo: 0, Hi: 100}
	for r := 0; r < rounds; r++ {
		tc.processRound(src, r)
		size := tc.samplers[0].SampleSize()
		if size > cfg.KMax {
			t.Fatalf("round %d: size %d exceeds KMax %d", r, size, cfg.KMax)
		}
		if r > 0 && size < cfg.KMin {
			t.Fatalf("round %d: size %d below KMin %d", r, size, cfg.KMin)
		}
	}
	// Variable mode must run fewer selections than rounds (it lets the
	// sample grow between selections).
	sel := tc.samplers[0].Counters().Selections
	if sel >= rounds {
		t.Errorf("variable mode ran %d selections in %d rounds; expected fewer", sel, rounds)
	}
	sample := tc.collect()
	if len(sample) != tc.samplers[0].SampleSize() {
		t.Fatalf("collected %d items, size says %d", len(sample), tc.samplers[0].SampleSize())
	}
}

func TestDistStrategiesAgreeOnInvariants(t *testing.T) {
	for _, strat := range []SelStrategy{SelSinglePivot, SelMultiPivot, SelRandomDist} {
		cfg := Config{K: 50, Weighted: true, Strategy: strat, Seed: 21}
		src := workload.UniformSource{Seed: 31, BatchLen: 800, Lo: 0, Hi: 100}
		sample, tc := runDistributed(t, 4, 3, cfg, false, src)
		if len(sample) != 50 {
			t.Errorf("%v: sample size %d", strat, len(sample))
		}
		if n := tc.cl.PendingMessages(); n != 0 {
			t.Errorf("%v: %d messages leaked", strat, n)
		}
	}
}

func TestDistDeterministicForSeed(t *testing.T) {
	cfg := Config{K: 40, Weighted: true, Strategy: SelMultiPivot, Pivots: 4, Seed: 77}
	src := workload.UniformSource{Seed: 3, BatchLen: 300, Lo: 0, Hi: 100}
	a, _ := runDistributed(t, 4, 3, cfg, false, src)
	b, _ := runDistributed(t, 4, 3, cfg, false, src)
	ids := func(items []workload.Item) map[uint64]bool {
		m := map[uint64]bool{}
		for _, it := range items {
			m[it.ID] = true
		}
		return m
	}
	ma, mb := ids(a), ids(b)
	if len(ma) != len(mb) {
		t.Fatalf("sample sizes differ: %d vs %d", len(ma), len(mb))
	}
	for id := range ma {
		if !mb[id] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestDistUniformModeInvariants(t *testing.T) {
	cfg := Config{K: 64, Weighted: false, Seed: 15}
	src := workload.UniformSource{Seed: 17, BatchLen: 1500, Lo: 0, Hi: 100}
	sample, tc := runDistributed(t, 4, 4, cfg, false, src)
	if len(sample) != 64 {
		t.Fatalf("uniform sample size %d", len(sample))
	}
	th, have := tc.samplers[0].Threshold()
	if !have || th <= 0 || th >= 1 {
		t.Fatalf("uniform threshold %v out of (0,1)", th)
	}
}

func TestTimingAndCounters(t *testing.T) {
	cfg := Config{K: 50, Weighted: true, Seed: 25}
	src := workload.UniformSource{Seed: 19, BatchLen: 1000, Lo: 0, Hi: 100}
	_, tc := runDistributed(t, 4, 3, cfg, false, src)
	tm := tc.samplers[2].Timing()
	if tm.ScanNS <= 0 || tm.SelectNS <= 0 || tm.ThresholdNS <= 0 {
		t.Errorf("missing phase times: %+v", tm)
	}
	c := tc.samplers[2].Counters()
	if c.ItemsProcessed != 3000 {
		t.Errorf("items processed = %d, want 3000", c.ItemsProcessed)
	}
	if c.Inserted <= 0 || c.Selections <= 0 {
		t.Errorf("counters not populated: %+v", c)
	}
	// Timing helpers.
	var sum Timing
	sum.Add(tm)
	sum.Add(tm)
	if math.Abs(sum.TotalNS()-2*tm.TotalNS()) > 1e-6 {
		t.Error("Timing.Add/TotalNS inconsistent")
	}
	mx := tm.Max(Timing{ScanNS: 1e18})
	if mx.ScanNS != 1e18 || mx.SelectNS != tm.SelectNS {
		t.Error("Timing.Max wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{K: 0}).validate(); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := (Config{KMin: 10, KMax: 5}).validate(); err == nil {
		t.Error("KMin > KMax accepted")
	}
	if _, err := (Config{KMin: 0, KMax: 5}).validate(); err == nil {
		t.Error("KMin=0 accepted")
	}
	c, err := Config{K: 5, Strategy: SelMultiPivot}.validate()
	if err != nil || c.Pivots != 8 {
		t.Errorf("multi-pivot default pivots = %d, err %v", c.Pivots, err)
	}
	c, err = Config{K: 5, Strategy: SelSinglePivot, Pivots: 9}.validate()
	if err != nil || c.Pivots != 1 {
		t.Errorf("single-pivot pivots = %d", c.Pivots)
	}
	if SelSinglePivot.String() != "single-pivot" || SelMultiPivot.String() != "multi-pivot" ||
		SelRandomDist.String() != "random-dist" || SelStrategy(9).String() == "" {
		t.Error("SelStrategy.String broken")
	}
}

// rng2 is a tiny helper to construct a fresh xoshiro source in tests.
func rng2(seed uint64) *xrng { return &xrng{s: seed} }

// xrng is a minimal splitmix-based source to decouple oracle RNG streams
// from the library's engines in two-sample tests.
type xrng struct{ s uint64 }

func (x *xrng) Uint64() uint64 {
	x.s += 0x9e3779b97f4a7c15
	z := x.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
