package core

import (
	"sync"

	"reservoir/internal/workload"
)

// weightBufs pools the flat weight slices the skip scans materialize per
// batch (see workload.FillWeights): one slice per in-flight batch, reused
// across rounds so the steady-state scan allocates nothing.
var weightBufs = sync.Pool{New: func() any { b := make([]float64, 0, 1024); return &b }}

// grabWeights returns a pooled slice of length n filled with b's weights.
// Release it with releaseWeights when the scan is done.
func grabWeights(b workload.Batch, n int) *[]float64 {
	p := weightBufs.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	workload.FillWeights(b, *p)
	return p
}

func releaseWeights(p *[]float64) {
	weightBufs.Put(p)
}
