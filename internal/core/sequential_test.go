package core

import (
	"math"
	"testing"

	"reservoir/internal/rng"
	"reservoir/internal/stats"
	"reservoir/internal/workload"
)

// makeItems builds n items with IDs 0..n-1 and weights w(i).
func makeItems(n int, w func(i int) float64) workload.SliceBatch {
	items := make(workload.SliceBatch, n)
	for i := range items {
		items[i] = workload.Item{W: w(i), ID: uint64(i)}
	}
	return items
}

// inclusionCounts runs trials of sample() and returns per-item inclusion
// counts (item IDs must be 0..n-1).
func inclusionCounts(n, trials int, sample func(trial int) []workload.Item) []float64 {
	counts := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		for _, it := range sample(tr) {
			counts[it.ID]++
		}
	}
	return counts
}

// twoSampleChi compares two inclusion-count vectors with a two-sample
// chi-square test (valid because both experiments produce the same total
// count per trial).
func twoSampleChi(t *testing.T, name string, a, b []float64) {
	t.Helper()
	stat := 0.0
	df := 0
	for i := range a {
		if a[i]+b[i] == 0 {
			continue
		}
		d := a[i] - b[i]
		stat += d * d / (a[i] + b[i])
		df++
	}
	if df < 2 {
		t.Fatalf("%s: degenerate chi-square", name)
	}
	p := stats.ChiSquareSurvival(stat, float64(df-1))
	if p < 1e-4 {
		t.Errorf("%s: distributions differ: chi2=%.1f df=%d p=%g", name, stat, df-1, p)
	}
}

func TestSeqWeightedBasics(t *testing.T) {
	s := NewSeqWeighted(5, rng.NewXoshiro256(1))
	items := makeItems(3, func(i int) float64 { return 1 })
	s.ProcessBatch(items)
	if got := len(s.Sample()); got != 3 {
		t.Fatalf("sample size %d before reservoir full, want 3", got)
	}
	if _, full := s.Threshold(); full {
		t.Fatal("threshold reported before k items seen")
	}
	s.ProcessBatch(makeItems(100, func(i int) float64 { return 1 }))
	if got := len(s.Sample()); got != 5 {
		t.Fatalf("sample size %d, want 5", got)
	}
	th, full := s.Threshold()
	if !full || math.IsInf(th, 1) {
		t.Fatal("threshold missing after reservoir full")
	}
	n, w := s.Seen()
	if n != 103 || math.Abs(w-103) > 1e-9 {
		t.Fatalf("seen = (%d, %v)", n, w)
	}
}

func TestSeqUniformMatchesExactProbability(t *testing.T) {
	// Uniform sampling without replacement: every item has inclusion
	// probability exactly k/n.
	n, k, trials := 60, 12, 4000
	counts := inclusionCounts(n, trials, func(tr int) []workload.Item {
		s := NewSeqUniform(k, rng.NewXoshiro256(uint64(tr)*2654435761+1))
		s.ProcessBatch(makeItems(n, func(i int) float64 { return 1 }))
		return s.Sample()
	})
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = float64(trials) * float64(k) / float64(n)
	}
	_, p, err := stats.ChiSquare(counts, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("uniform sequential sampler deviates from k/n inclusion: p = %g", p)
	}
}

func TestSeqWeightedMatchesOracle(t *testing.T) {
	// The exponential-jumps sampler must induce the same distribution as
	// the naive per-item-key oracle.
	n, k, trials := 40, 8, 4000
	weights := func(i int) float64 { return float64(i%5) + 0.5 }
	fast := inclusionCounts(n, trials, func(tr int) []workload.Item {
		s := NewSeqWeighted(k, rng.NewXoshiro256(uint64(tr)*31+7))
		s.ProcessBatch(makeItems(n, weights))
		return s.Sample()
	})
	oracle := inclusionCounts(n, trials, func(tr int) []workload.Item {
		s := NewNaiveOracle(k, true, rng.NewXoshiro256(uint64(tr)*97+13))
		s.ProcessBatch(makeItems(n, weights))
		return s.Sample()
	})
	twoSampleChi(t, "weighted-vs-oracle", fast, oracle)
}

func TestSeqWeightedFavorsHeavyItems(t *testing.T) {
	// One item with overwhelming weight must (almost) always be sampled.
	n, k, trials := 50, 5, 500
	heavy := 0
	for tr := 0; tr < trials; tr++ {
		s := NewSeqWeighted(k, rng.NewXoshiro256(uint64(tr)+1))
		s.ProcessBatch(makeItems(n, func(i int) float64 {
			if i == 17 {
				return 1e6
			}
			return 1
		}))
		for _, it := range s.Sample() {
			if it.ID == 17 {
				heavy++
			}
		}
	}
	if heavy < trials*99/100 {
		t.Errorf("heavy item sampled only %d/%d times", heavy, trials)
	}
}

func TestSeqUniformSkipJumpsAcrossBatches(t *testing.T) {
	// Batch-level jumping must agree with item-level processing in counts.
	k := 10
	a := NewSeqUniform(k, rng.NewXoshiro256(99))
	b := NewSeqUniform(k, rng.NewXoshiro256(99))
	items := makeItems(5000, func(i int) float64 { return 1 })
	// a: one big batch with jump processing; b: item by item.
	a.ProcessBatch(items)
	for _, it := range items {
		b.Process(it)
	}
	if a.Seen() != b.Seen() {
		t.Fatalf("seen mismatch: %d vs %d", a.Seen(), b.Seen())
	}
	// Same RNG consumption pattern implies identical samples.
	sa, sb := a.Sample(), b.Sample()
	mapA := map[uint64]bool{}
	for _, it := range sa {
		mapA[it.ID] = true
	}
	for _, it := range sb {
		if !mapA[it.ID] {
			t.Fatalf("samples diverge between batch and item processing")
		}
	}
}

func TestSeqSamplersSmallInputs(t *testing.T) {
	// n < k must return all items.
	s := NewSeqWeighted(10, rng.NewXoshiro256(1))
	s.ProcessBatch(makeItems(4, func(i int) float64 { return 1 }))
	if len(s.Sample()) != 4 {
		t.Error("weighted: sample != all items for n < k")
	}
	u := NewSeqUniform(10, rng.NewXoshiro256(1))
	u.ProcessBatch(makeItems(4, func(i int) float64 { return 1 }))
	if len(u.Sample()) != 4 {
		t.Error("uniform: sample != all items for n < k")
	}
	o := NewNaiveOracle(10, true, rng.NewXoshiro256(1))
	o.ProcessBatch(makeItems(4, func(i int) float64 { return 1 }))
	if len(o.Sample()) != 4 {
		t.Error("oracle: sample != all items for n < k")
	}
}

func TestSamplerPanicsOnBadK(t *testing.T) {
	for name, f := range map[string]func(){
		"weighted": func() { NewSeqWeighted(0, rng.NewXoshiro256(1)) },
		"uniform":  func() { NewSeqUniform(0, rng.NewXoshiro256(1)) },
		"oracle":   func() { NewNaiveOracle(0, true, rng.NewXoshiro256(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for k=0", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxHeapProperty(t *testing.T) {
	var h maxHeap
	src := rng.NewXoshiro256(5)
	for i := 0; i < 200; i++ {
		h.push(rng.U01(src), workload.Item{ID: uint64(i)})
	}
	// Repeatedly replacing the max with smaller keys must keep the root as
	// the maximum.
	for i := 0; i < 200; i++ {
		maxKey := h.keys[0]
		for _, k := range h.keys {
			if k > maxKey {
				t.Fatal("heap root is not the maximum")
			}
		}
		h.replaceMax(maxKey/2, workload.Item{ID: uint64(1000 + i)})
	}
}
