package core

import (
	"testing"

	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

func TestWeightedSnapshotResumesBitIdentical(t *testing.T) {
	orig := NewSeqWeighted(16, rng.NewXoshiro256(5))
	items := makeItems(5000, func(i int) float64 { return float64(i%9) + 0.5 })
	half := items[:2500]
	rest := items[2500:]
	orig.ProcessBatch(half)

	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSeqWeighted(1, rng.NewXoshiro256(999))
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	orig.ProcessBatch(rest)
	restored.ProcessBatch(rest)

	a, b := orig.Sample(), restored.Sample()
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	inA := map[uint64]bool{}
	for _, it := range a {
		inA[it.ID] = true
	}
	for _, it := range b {
		if !inA[it.ID] {
			t.Fatalf("restored run diverged: item %d not in original sample", it.ID)
		}
	}
	na, wa := orig.Seen()
	nb, wb := restored.Seen()
	if na != nb || wa != wb {
		t.Fatalf("seen counters diverged: (%d,%v) vs (%d,%v)", na, wa, nb, wb)
	}
	ta, _ := orig.Threshold()
	tb, _ := restored.Threshold()
	if ta != tb {
		t.Fatalf("thresholds diverged: %v vs %v", ta, tb)
	}
}

func TestUniformSnapshotResumesBitIdentical(t *testing.T) {
	orig := NewSeqUniform(10, rng.NewXoshiro256(7))
	items := makeItems(4000, func(i int) float64 { return 1 })
	orig.ProcessBatch(items[:1000])

	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewSeqUniform(3, rng.NewXoshiro256(1))
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	orig.ProcessBatch(items[1000:])
	restored.ProcessBatch(items[1000:])
	if orig.Seen() != restored.Seen() {
		t.Fatalf("seen diverged: %d vs %d", orig.Seen(), restored.Seen())
	}
	a, b := orig.Sample(), restored.Sample()
	inA := map[uint64]bool{}
	for _, it := range a {
		inA[it.ID] = true
	}
	for _, it := range b {
		if !inA[it.ID] {
			t.Fatalf("restored uniform run diverged at item %d", it.ID)
		}
	}
}

func TestSnapshotBeforeReservoirFull(t *testing.T) {
	s := NewSeqWeighted(100, rng.NewXoshiro256(11))
	s.ProcessBatch(makeItems(10, func(i int) float64 { return 1 }))
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := NewSeqWeighted(1, rng.NewXoshiro256(1))
	if err := r.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if len(r.Sample()) != 10 {
		t.Fatalf("restored partial reservoir has %d items", len(r.Sample()))
	}
}

func TestSnapshotRejectsCorruptInput(t *testing.T) {
	s := NewSeqWeighted(8, rng.NewXoshiro256(3))
	s.ProcessBatch(makeItems(100, func(i int) float64 { return 1 }))
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{1, 2, 3, 4}, blob[4:]...),
		"truncated":   blob[:len(blob)/2],
		"wrong kind":  mutate(blob, 5, kindUniform),
		"bad version": mutate(blob, 4, 99),
		"rng chopped": blob[:len(blob)-8],
	}
	for name, data := range cases {
		r := NewSeqWeighted(1, rng.NewXoshiro256(1))
		if err := r.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
	// Kind mismatch in the other direction.
	u := NewSeqUniform(1, rng.NewXoshiro256(1))
	if err := u.UnmarshalBinary(blob); err == nil {
		t.Error("uniform sampler accepted weighted snapshot")
	}
}

func TestSnapshotRequiresSerializableRNG(t *testing.T) {
	s := NewSeqWeighted(4, rng.NewSplitMix64(1)) // splitmix has no marshaler
	s.Process(workload.Item{W: 1, ID: 1})
	if _, err := s.MarshalBinary(); err == nil {
		t.Fatal("expected error for non-serializable RNG")
	}
}

func mutate(b []byte, pos int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[pos] = v
	return out
}

func TestXoshiroRoundTrip(t *testing.T) {
	x := rng.NewXoshiro256(123)
	for i := 0; i < 100; i++ {
		x.Uint64()
	}
	blob, err := x.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	y := rng.NewXoshiro256(1)
	if err := y.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatalf("restored xoshiro diverged at step %d", i)
		}
	}
	if err := y.UnmarshalBinary(make([]byte, 31)); err == nil {
		t.Error("short state accepted")
	}
	if err := y.UnmarshalBinary(make([]byte, 32)); err == nil {
		t.Error("all-zero state accepted")
	}
}
