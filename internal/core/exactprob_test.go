package core

import (
	"testing"

	"reservoir/internal/rng"
	"reservoir/internal/stats"
	"reservoir/internal/workload"
)

// exactInclusionProbs computes, by enumerating all ordered k-tuples, the
// exact inclusion probability of every item under weighted sampling
// without replacement (successive sampling): the j-th sample is item i
// with probability w_i / (W - sum of already-drawn weights). This is the
// definition in the paper's Sec 1.1 — the ground truth the samplers must
// match.
func exactInclusionProbs(weights []float64, k int) []float64 {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		total += w
	}
	probs := make([]float64, n)
	used := make([]bool, n)
	var rec func(depth int, remaining float64, pathProb float64)
	rec = func(depth int, remaining float64, pathProb float64) {
		if depth == k {
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			p := pathProb * weights[i] / remaining
			probs[i] += p
			used[i] = true
			rec(depth+1, remaining-weights[i], p)
			used[i] = false
		}
	}
	rec(0, total, 1)
	return probs
}

func TestExactInclusionProbsSanity(t *testing.T) {
	// Uniform weights: every inclusion probability must be k/n.
	probs := exactInclusionProbs([]float64{1, 1, 1, 1}, 2)
	for i, p := range probs {
		if diff := p - 0.5; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("item %d: p=%v, want 0.5", i, p)
		}
	}
	// Probabilities sum to k.
	probs = exactInclusionProbs([]float64{3, 1, 4, 1, 5}, 3)
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	if diff := sum - 3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("inclusion probabilities sum to %v, want 3", sum)
	}
}

// checkAgainstExact runs trials of sample() on the given weights and
// chi-square-tests the per-item inclusion counts against the exact
// enumeration.
func checkAgainstExact(t *testing.T, name string, weights []float64, k, trials int,
	sample func(trial int) []workload.Item) {
	t.Helper()
	exact := exactInclusionProbs(weights, k)
	counts := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		s := sample(tr)
		if len(s) != k {
			t.Fatalf("trial %d: sample size %d, want %d", tr, len(s), k)
		}
		for _, it := range s {
			counts[it.ID]++
		}
	}
	expected := make([]float64, len(weights))
	for i, p := range exact {
		expected[i] = p * float64(trials)
	}
	stat, pval, err := stats.ChiSquare(counts, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pval < 1e-4 {
		t.Errorf("%s: inclusion counts deviate from exact enumeration: chi2=%.2f p=%g\ncounts=%v\nexpected=%v",
			name, stat, pval, counts, expected)
	}
}

func TestSeqWeightedMatchesExactEnumeration(t *testing.T) {
	weights := []float64{5, 1, 1, 2, 8, 3}
	const k, trials = 2, 40000
	items := make(workload.SliceBatch, len(weights))
	for i, w := range weights {
		items[i] = workload.Item{W: w, ID: uint64(i)}
	}
	checkAgainstExact(t, "sequential", weights, k, trials, func(tr int) []workload.Item {
		s := NewSeqWeighted(k, rng.NewXoshiro256(uint64(tr)*2654435761+17))
		s.ProcessBatch(items)
		return s.Sample()
	})
}

func TestNaiveOracleMatchesExactEnumeration(t *testing.T) {
	// The oracle itself must match the definition (this anchors all the
	// two-sample tests elsewhere in the suite).
	weights := []float64{1, 4, 2, 6}
	const k, trials = 2, 40000
	items := make(workload.SliceBatch, len(weights))
	for i, w := range weights {
		items[i] = workload.Item{W: w, ID: uint64(i)}
	}
	checkAgainstExact(t, "oracle", weights, k, trials, func(tr int) []workload.Item {
		s := NewNaiveOracle(k, true, rng.NewXoshiro256(uint64(tr)*97+3))
		s.ProcessBatch(items)
		return s.Sample()
	})
}

func TestDistributedMatchesExactEnumeration(t *testing.T) {
	// End-to-end: the fully distributed pipeline (2 PEs, 2 mini-batches)
	// must match the exact successive-sampling probabilities.
	weights := []float64{5, 1, 1, 2, 8, 3, 0.5, 4}
	const k, trials, p = 3, 12000, 2
	items := make(workload.SliceBatch, len(weights))
	for i, w := range weights {
		items[i] = workload.Item{W: w, ID: uint64(i)}
	}
	src := splitItems(items, p, 2)
	checkAgainstExact(t, "distributed", weights, k, trials, func(tr int) []workload.Item {
		cfg := Config{K: k, Weighted: true, Seed: uint64(tr)*131 + 7}
		sample, _ := runDistributed(t, p, 2, cfg, false, src)
		return sample
	})
}

func TestGatherMatchesExactEnumeration(t *testing.T) {
	weights := []float64{2, 2, 9, 1, 3, 6}
	const k, trials, p = 2, 12000, 3
	items := make(workload.SliceBatch, len(weights))
	for i, w := range weights {
		items[i] = workload.Item{W: w, ID: uint64(i)}
	}
	src := splitItems(items, p, 1)
	checkAgainstExact(t, "gather", weights, k, trials, func(tr int) []workload.Item {
		cfg := Config{K: k, Weighted: true, Seed: uint64(tr)*37 + 11}
		sample, _ := runDistributed(t, p, 1, cfg, true, src)
		return sample
	})
}

func TestGatherUniformMode(t *testing.T) {
	// Exercises the gather baseline's geometric-jump filter (uniform
	// mode) across multiple rounds and checks the k/n law.
	const n, k, p, rounds, trials = 40, 8, 4, 2, 3000
	items := makeItems(n, func(i int) float64 { return 1 })
	src := splitItems(items, p, rounds)
	counts := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		cfg := Config{K: k, Weighted: false, Seed: uint64(tr)*59 + 23}
		sample, _ := runDistributed(t, p, rounds, cfg, true, src)
		if len(sample) != k {
			t.Fatalf("trial %d: sample size %d", tr, len(sample))
		}
		for _, it := range sample {
			counts[it.ID]++
		}
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = float64(trials) * float64(k) / float64(n)
	}
	_, pval, err := stats.ChiSquare(counts, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pval < 1e-4 {
		t.Errorf("gather uniform mode deviates from k/n: p=%g", pval)
	}
}
