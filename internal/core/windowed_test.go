package core

import (
	"testing"

	"reservoir/internal/rng"
	"reservoir/internal/stats"
	"reservoir/internal/workload"
)

func TestWindowedBasics(t *testing.T) {
	s := NewWindowedWeighted(5, 100, 20, rng.NewXoshiro256(1))
	for i := 0; i < 10; i++ {
		s.Process(workload.Item{W: 1, ID: uint64(i)})
	}
	if got := len(s.Sample()); got != 5 {
		t.Fatalf("sample size %d, want 5", got)
	}
	if s.WindowSpan() != 10 {
		t.Fatalf("window span %d, want 10", s.WindowSpan())
	}
	if s.Seen() != 10 {
		t.Fatalf("seen %d", s.Seen())
	}
}

func TestWindowedEvictsOldItems(t *testing.T) {
	// After feeding far more than the window, only recent IDs may appear.
	const k, window, chunk = 8, 100, 10
	s := NewWindowedWeighted(k, window, chunk, rng.NewXoshiro256(2))
	const total = 1000
	for i := 0; i < total; i++ {
		s.Process(workload.Item{W: 1, ID: uint64(i)})
	}
	span := s.WindowSpan()
	if span < window-chunk+1 || span > window {
		t.Fatalf("window span %d outside (%d, %d]", span, window-chunk, window)
	}
	oldest := uint64(total) - uint64(span)
	for _, it := range s.Sample() {
		if it.ID < oldest {
			t.Fatalf("sample contains expired item %d (oldest allowed %d)", it.ID, oldest)
		}
	}
}

func TestWindowedSampleSizeWithinWindow(t *testing.T) {
	s := NewWindowedWeighted(10, 40, 10, rng.NewXoshiro256(3))
	for i := 0; i < 500; i++ {
		s.Process(workload.Item{W: 2, ID: uint64(i)})
		want := 10
		if int(s.WindowSpan()) < 10 {
			want = int(s.WindowSpan())
		}
		if got := len(s.Sample()); got != want {
			t.Fatalf("after %d items: sample size %d, want %d", i+1, got, want)
		}
	}
}

func TestWindowedMatchesOracleOnWindow(t *testing.T) {
	// With the stream length aligned to a chunk boundary, the window
	// covers exactly the last `window` items, and the windowed sample must
	// be distributed like an oracle sample of those items.
	const k, window, chunk, total, trials = 6, 60, 10, 120, 3000
	weights := func(i int) float64 { return float64(i%4) + 0.5 }
	windowed := make([]float64, total)
	oracle := make([]float64, total)
	for tr := 0; tr < trials; tr++ {
		s := NewWindowedWeighted(k, window, chunk, rng.NewXoshiro256(uint64(tr)*7+1))
		for i := 0; i < total; i++ {
			s.Process(workload.Item{W: weights(i), ID: uint64(i)})
		}
		for _, it := range s.Sample() {
			windowed[it.ID]++
		}
		o := NewNaiveOracle(k, true, rng2(uint64(tr)*11+3))
		for i := total - window; i < total; i++ {
			o.Process(workload.Item{W: weights(i), ID: uint64(i)})
		}
		for _, it := range o.Sample() {
			oracle[it.ID]++
		}
	}
	// Outside the window both must be zero.
	for i := 0; i < total-window; i++ {
		if windowed[i] != 0 {
			t.Fatalf("windowed sampled expired item %d", i)
		}
	}
	stat := 0.0
	df := 0
	for i := total - window; i < total; i++ {
		if windowed[i]+oracle[i] == 0 {
			continue
		}
		d := windowed[i] - oracle[i]
		stat += d * d / (windowed[i] + oracle[i])
		df++
	}
	p := stats.ChiSquareSurvival(stat, float64(df-1))
	if p < 1e-4 {
		t.Errorf("windowed sample deviates from oracle over window: p = %g", p)
	}
}

func TestWindowedValidation(t *testing.T) {
	for _, args := range [][3]int{{0, 10, 5}, {1, 10, 3}, {1, 5, 10}, {1, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("args %v: expected panic", args)
				}
			}()
			NewWindowedWeighted(args[0], args[1], args[2], rng.NewXoshiro256(1))
		}()
	}
}
