package core

import (
	"math"

	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// maxHeap is a binary max-heap over (key, item) pairs, the classic
// sequential reservoir representation: the root is the threshold item that
// the next accepted item replaces.
type maxHeap struct {
	keys  []float64
	items []workload.Item
}

func (h *maxHeap) len() int { return len(h.keys) }

func (h *maxHeap) push(key float64, it workload.Item) {
	h.keys = append(h.keys, key)
	h.items = append(h.items, it)
	i := len(h.keys) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[parent] >= h.keys[i] {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

// replaceMax overwrites the maximum with (key, it) and restores heap order.
func (h *maxHeap) replaceMax(key float64, it workload.Item) {
	h.keys[0] = key
	h.items[0] = it
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.keys) && h.keys[l] > h.keys[largest] {
			largest = l
		}
		if r < len(h.keys) && h.keys[r] > h.keys[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *maxHeap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.items[i], h.items[j] = h.items[j], h.items[i]
}

// SeqWeighted is the sequential weighted reservoir sampler of Sec 4.1:
// exponential keys vi = -ln(rand())/wi, with the exponential-jumps skip
// technique — the amount of weight skipped between insertions is an
// exponential variate with rate T (the largest key in the reservoir), and
// an accepted item's key is drawn from (0, T) via vj = -ln(rand(e^{-T wj},
// 1))/wj.
type SeqWeighted struct {
	k    int
	src  rng.Source
	h    maxHeap
	x    float64 // remaining weight to skip before the next insertion
	n    int64   // items seen
	wSum float64 // total weight seen
}

// NewSeqWeighted returns a sequential weighted sampler with sample size k.
func NewSeqWeighted(k int, src rng.Source) *SeqWeighted {
	if k < 1 {
		panic("core: sample size must be >= 1")
	}
	return &SeqWeighted{k: k, src: src}
}

// Process feeds one item; its weight must be strictly positive.
func (s *SeqWeighted) Process(it workload.Item) {
	s.n++
	s.wSum += it.W
	if s.h.len() < s.k {
		s.h.push(rng.Exponential(s.src, it.W), it)
		if s.h.len() == s.k {
			s.x = rng.Exponential(s.src, s.h.keys[0])
		}
		return
	}
	s.x -= it.W
	if s.x > 0 {
		return
	}
	t := s.h.keys[0]
	xlo := math.Exp(-t * it.W)
	v := -math.Log(rng.Uniform(s.src, xlo, 1)) / it.W
	s.h.replaceMax(v, it)
	s.x = rng.Exponential(s.src, s.h.keys[0])
}

// ProcessBatch feeds a whole mini-batch.
func (s *SeqWeighted) ProcessBatch(b workload.Batch) {
	for i := 0; i < b.Len(); i++ {
		s.Process(b.At(i))
	}
}

// Sample returns the current sample (at most k items, in no particular
// order). The returned slice is freshly allocated.
func (s *SeqWeighted) Sample() []workload.Item {
	return append([]workload.Item(nil), s.h.items...)
}

// Threshold returns the current key threshold T (the largest key in the
// reservoir) and whether the reservoir is full.
func (s *SeqWeighted) Threshold() (float64, bool) {
	if s.h.len() < s.k {
		return math.Inf(1), false
	}
	return s.h.keys[0], true
}

// Seen returns the number of items and total weight processed.
func (s *SeqWeighted) Seen() (int64, float64) { return s.n, s.wSum }

// SeqUniform is the sequential uniform reservoir sampler of Sec 4.3
// (Devroye's geometric jumps): keys are uniform variates, the number of
// items skipped between insertions is geometric with success probability T,
// and an accepted item's key is rand()·T.
type SeqUniform struct {
	k    int
	src  rng.Source
	h    maxHeap
	skip int // items left to skip before the next insertion
	n    int64
}

// NewSeqUniform returns a sequential uniform sampler with sample size k.
func NewSeqUniform(k int, src rng.Source) *SeqUniform {
	if k < 1 {
		panic("core: sample size must be >= 1")
	}
	return &SeqUniform{k: k, src: src}
}

// Process feeds one item.
func (s *SeqUniform) Process(it workload.Item) {
	s.n++
	if s.h.len() < s.k {
		s.h.push(rng.U01(s.src), it)
		if s.h.len() == s.k {
			s.skip = rng.GeometricSkip(s.src, s.h.keys[0])
		}
		return
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	v := rng.U01CO(s.src) * s.h.keys[0]
	s.h.replaceMax(v, it)
	s.skip = rng.GeometricSkip(s.src, s.h.keys[0])
}

// ProcessBatch feeds a whole mini-batch, jumping over skipped items in
// O(1) per skip (the uniform sampler never needs to touch skipped items).
func (s *SeqUniform) ProcessBatch(b workload.Batch) {
	n := b.Len()
	i := 0
	// Fill phase.
	for ; i < n && s.h.len() < s.k; i++ {
		s.Process(b.At(i))
	}
	for i < n {
		if s.skip >= n-i {
			s.skip -= n - i
			s.n += int64(n - i)
			return
		}
		i += s.skip
		s.n += int64(s.skip)
		s.skip = 0
		s.Process(b.At(i))
		i++
	}
}

// Sample returns the current sample.
func (s *SeqUniform) Sample() []workload.Item {
	return append([]workload.Item(nil), s.h.items...)
}

// Threshold returns the current key threshold and whether the reservoir is
// full.
func (s *SeqUniform) Threshold() (float64, bool) {
	if s.h.len() < s.k {
		return math.Inf(1), false
	}
	return s.h.keys[0], true
}

// Seen returns the number of items processed.
func (s *SeqUniform) Seen() int64 { return s.n }

// NaiveOracle is the distributional ground truth: it draws an explicit key
// for every item (exponential with rate wi for weighted sampling, uniform
// for unweighted) and keeps the k items with the smallest keys. It is the
// textbook "sampling by sorting random variates" method of Sec 3.1, without
// any skipping — O(n log k), used by tests to validate the fast samplers.
type NaiveOracle struct {
	k        int
	weighted bool
	src      rng.Source
	h        maxHeap
}

// NewNaiveOracle returns an oracle sampler.
func NewNaiveOracle(k int, weighted bool, src rng.Source) *NaiveOracle {
	if k < 1 {
		panic("core: sample size must be >= 1")
	}
	return &NaiveOracle{k: k, weighted: weighted, src: src}
}

// Process feeds one item.
func (o *NaiveOracle) Process(it workload.Item) {
	var v float64
	if o.weighted {
		v = rng.Exponential(o.src, it.W)
	} else {
		v = rng.U01(o.src)
	}
	if o.h.len() < o.k {
		o.h.push(v, it)
	} else if v < o.h.keys[0] {
		o.h.replaceMax(v, it)
	}
}

// ProcessBatch feeds a whole mini-batch.
func (o *NaiveOracle) ProcessBatch(b workload.Batch) {
	for i := 0; i < b.Len(); i++ {
		o.Process(b.At(i))
	}
}

// Sample returns the current sample.
func (o *NaiveOracle) Sample() []workload.Item {
	return append([]workload.Item(nil), o.h.items...)
}
