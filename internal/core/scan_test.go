package core

// Tests for the deterministic sharded scan and the pipelined round
// sequence (StartScan / FinishPending / CommitScan). The load-bearing
// property is drain invariance: because CommitScan fixes the next scan's
// threshold before deferring the selection, draining the pending
// selection at ANY boundary — eagerly, lazily, or at random rounds —
// must leave the sampling stream byte-identical (DESIGN.md §2.6).

import (
	"strings"
	"sync"
	"testing"

	"reservoir/internal/simnet"
	"reservoir/internal/workload"
)

// runSharded drives a p-PE distributed run and returns the collected
// sample plus the final per-PE thresholds. afterRound, if non-nil, runs
// SPMD after each round (it may issue collectives, e.g. FinishPending).
func runSharded(t *testing.T, p, rounds int, cfg Config, src workload.Source, afterRound func(pe *DistPE, round int)) ([]workload.Item, []float64) {
	t.Helper()
	tc := newTestCluster(t, p, cfg, false)
	for r := 0; r < rounds; r++ {
		tc.processRound(src, r)
		if afterRound != nil {
			r := r
			tc.cl.Parallel(func(pe *simnet.PE) {
				afterRound(tc.samplers[pe.ID()].(*DistPE), r)
			})
		}
	}
	sample := tc.collect()
	thresh := make([]float64, p)
	for i, s := range tc.samplers {
		thresh[i], _ = s.Threshold()
	}
	return sample, thresh
}

func sameStream(t *testing.T, label string, a, b []workload.Item, ta, tb []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: sample sizes differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: sample[%d] differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("%s: PE %d threshold differs: %v vs %v", label, i, ta[i], tb[i])
		}
	}
}

// TestPipelineDrainInvariance: at shards ∈ {1, 4}, a pipelined run with
// no early drains and pipelined runs with extra drains injected at
// assorted round boundaries all produce the byte-identical sample and
// thresholds. (A pipelined run is NOT compared against Pipeline=false:
// pipelining scans with a one-round-stale threshold by design, so it is
// a different — distributionally identical — stream, which is why
// Pipeline is part of the recorded stream identity.)
func TestPipelineDrainInvariance(t *testing.T) {
	const p, rounds, batch = 4, 8, 900
	for _, shards := range []int{1, 4} {
		for _, weighted := range []bool{true, false} {
			cfg := Config{K: 64, Weighted: weighted, Seed: 42, Shards: shards, Pipeline: true}
			src := workload.UniformSource{Seed: 7, BatchLen: batch, Lo: 0, Hi: 100}

			pipeSample, pipeTh := runSharded(t, p, rounds, cfg, src, nil)

			// Drain after rounds 0, 3, and 5 — plus the implicit drain
			// inside CollectSample.
			drainSample, drainTh := runSharded(t, p, rounds, cfg, src,
				func(pe *DistPE, round int) {
					if round == 0 || round == 3 || round == 5 {
						pe.FinishPending()
					}
				})

			// Drain after every round: the pipelined stream fully
			// serialized must still match the fully deferred one.
			eagerSample, eagerTh := runSharded(t, p, rounds, cfg, src,
				func(pe *DistPE, round int) { pe.FinishPending() })

			label := "pipelined-vs-drained"
			if !weighted {
				label += "-uniform"
			}
			sameStream(t, label, pipeSample, drainSample, pipeTh, drainTh)
			sameStream(t, label+"-eager", pipeSample, eagerSample, pipeTh, eagerTh)
			if len(pipeSample) != cfg.K {
				t.Fatalf("shards=%d: sample has %d items, want k=%d", shards, len(pipeSample), cfg.K)
			}
		}
	}
}

// TestShardCountChangesStream documents that Shards is part of the
// sampling stream's identity: different shard counts draw variates from
// different RNG substreams, so replays must use the recorded value.
func TestShardCountChangesStream(t *testing.T) {
	const p, rounds, batch = 4, 4, 1200
	src := workload.UniformSource{Seed: 3, BatchLen: batch, Lo: 0, Hi: 100}
	s1, _ := runSharded(t, p, rounds, Config{K: 48, Weighted: true, Seed: 5, Shards: 1}, src, nil)
	s4, _ := runSharded(t, p, rounds, Config{K: 48, Weighted: true, Seed: 5, Shards: 4}, src, nil)
	same := len(s1) == len(s4)
	if same {
		for i := range s1 {
			if s1[i] != s4[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("shards=1 and shards=4 produced identical samples; the shard substreams are not domain-separated")
	}
}

// TestShardedSnapshotRoundTrip: a pipelined sharded cluster snapshotted
// mid-run (after a drain) and restored into fresh PEs continues the
// byte-identical stream.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	const p, firstHalf, secondHalf, batch = 4, 3, 3, 700
	cfg := Config{K: 48, Weighted: true, Seed: 9, Shards: 4, Pipeline: true}
	src := workload.UniformSource{Seed: 11, BatchLen: batch, Lo: 0, Hi: 100}

	orig := newTestCluster(t, p, cfg, false)
	for r := 0; r < firstHalf; r++ {
		orig.processRound(src, r)
	}
	blobs := make([][]byte, p)
	var mu sync.Mutex
	orig.cl.Parallel(func(pe *simnet.PE) {
		d := orig.samplers[pe.ID()].(*DistPE)
		d.FinishPending() // snapshots are round boundaries
		blob, err := d.MarshalBinary()
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			t.Errorf("PE %d snapshot: %v", pe.ID(), err)
			return
		}
		blobs[pe.ID()] = blob
	})
	if t.Failed() {
		t.Fatal("snapshot phase failed")
	}

	restored := newTestCluster(t, p, cfg, false)
	restored.cl.Parallel(func(pe *simnet.PE) {
		if err := restored.samplers[pe.ID()].(*DistPE).UnmarshalBinary(blobs[pe.ID()]); err != nil {
			t.Errorf("PE %d restore: %v", pe.ID(), err)
		}
	})
	if t.Failed() {
		t.Fatal("snapshot phase failed")
	}

	for r := firstHalf; r < firstHalf+secondHalf; r++ {
		orig.processRound(src, r)
		restored.processRound(src, r)
	}
	a, b := orig.collect(), restored.collect()
	ta := make([]float64, p)
	tb := make([]float64, p)
	for i := range ta {
		ta[i], _ = orig.samplers[i].Threshold()
		tb[i], _ = restored.samplers[i].Threshold()
	}
	sameStream(t, "snapshot-roundtrip", a, b, ta, tb)
}

// TestSnapshotRefusesPendingSelection: a snapshot taken while a
// pipelined selection is still deferred would not be a round boundary;
// MarshalBinary must reject it until FinishPending drains the round.
func TestSnapshotRefusesPendingSelection(t *testing.T) {
	const p = 2
	cfg := Config{K: 32, Weighted: true, Seed: 17, Shards: 2, Pipeline: true}
	src := workload.UniformSource{Seed: 19, BatchLen: 400, Lo: 0, Hi: 100}
	tc := newTestCluster(t, p, cfg, false)
	tc.processRound(src, 0)

	tc.cl.Parallel(func(pe *simnet.PE) {
		d := tc.samplers[pe.ID()].(*DistPE)
		if !d.Pending() {
			t.Errorf("PE %d: no pending selection after a pipelined round", pe.ID())
			return
		}
		if _, err := d.MarshalBinary(); err == nil {
			t.Errorf("PE %d: snapshot of an undrained pipelined round succeeded", pe.ID())
		} else if !strings.Contains(err.Error(), "FinishPending") {
			t.Errorf("PE %d: unhelpful snapshot error: %v", pe.ID(), err)
		}
		d.FinishPending()
		if _, err := d.MarshalBinary(); err != nil {
			t.Errorf("PE %d: snapshot after drain failed: %v", pe.ID(), err)
		}
	})
}
