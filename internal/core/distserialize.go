package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"reservoir/internal/btree"
	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// Distributed checkpointing: each PE of the distributed sampler can
// snapshot its local reservoir, threshold, and PRNG state, so a whole
// cluster can be persisted and resumed bit-identically (same future
// samples for the same future input). Virtual-time measurements and
// operation counters restart from zero on restore; they are measurements
// of a run, not sampler state.

const kindDistPE = byte(3)

// MarshalBinary snapshots this PE's sampler state. With Config.Shards
// >= 1 a config-gated extension section carrying the per-shard scan
// streams and the fixed scan threshold follows the legacy layout, so
// snapshots of Shards=0 samplers are bit-identical to earlier releases.
// Snapshots are round boundaries: a pipelined selection must be drained
// (FinishPending) first.
func (pe *DistPE) MarshalBinary() ([]byte, error) {
	if pe.pendingSel {
		return nil, fmt.Errorf("core: snapshot with an undrained pipelined selection (call FinishPending first)")
	}
	rngState, err := pe.src.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot RNG state: %w", err)
	}
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(snapshotMagic)
	w(byte(snapshotVersion))
	w(kindDistPE)
	w(uint32(pe.comm.Rank()))
	w(boolByte(pe.haveT))
	w(math.Float64bits(pe.thresh.V))
	w(pe.thresh.ID)
	w(boolByte(pe.haveLocalT))
	w(math.Float64bits(pe.localThresh.V))
	w(pe.localThresh.ID)
	w(pe.keySeq)
	w(uint64(pe.size))
	w(uint64(pe.seen))
	w(uint64(pe.res.Len()))
	pe.res.ForEach(func(k btree.Key, it workload.Item) bool {
		w(math.Float64bits(k.V))
		w(k.ID)
		w(math.Float64bits(it.W))
		w(it.ID)
		return true
	})
	w(uint64(len(rngState)))
	buf.Write(rngState)
	if pe.cfg.Shards > 0 {
		w(boolByte(pe.scanHaveT))
		w(math.Float64bits(pe.scanThresh))
		w(uint32(len(pe.shardSrc)))
		for _, src := range pe.shardSrc {
			st, err := src.MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("core: snapshot shard RNG state: %w", err)
			}
			w(uint64(len(st)))
			buf.Write(st)
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary on a
// freshly constructed DistPE with the same Config and rank.
func (pe *DistPE) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	var version, kind byte
	if err := rd(&magic); err != nil || magic != snapshotMagic {
		return fmt.Errorf("core: not a sampler snapshot")
	}
	if err := rd(&version); err != nil || version != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", version)
	}
	if err := rd(&kind); err != nil || kind != kindDistPE {
		return fmt.Errorf("core: snapshot kind mismatch (got %d, want %d)", kind, kindDistPE)
	}
	var rank uint32
	if err := rd(&rank); err != nil {
		return fmt.Errorf("core: truncated snapshot: %w", err)
	}
	if int(rank) != pe.comm.Rank() {
		return fmt.Errorf("core: snapshot is for PE %d, this is PE %d", rank, pe.comm.Rank())
	}
	var haveT, haveLocalT byte
	var threshV, threshID, localV, localID uint64
	var keySeq, size, seen, resLen uint64
	if err := firstErr(
		rd(&haveT), rd(&threshV), rd(&threshID),
		rd(&haveLocalT), rd(&localV), rd(&localID),
		rd(&keySeq), rd(&size), rd(&seen), rd(&resLen),
	); err != nil {
		return fmt.Errorf("core: truncated snapshot header: %w", err)
	}
	// Each reservoir entry is 32 bytes; a length claim the remaining input
	// cannot back is corruption, rejected before any insertion work.
	if resLen > uint64(r.Len())/32 {
		return fmt.Errorf("core: corrupt snapshot (reservoir claims %d entries, %d bytes remain)", resLen, r.Len())
	}
	degree := pe.cfg.TreeDegree
	if degree == 0 {
		degree = btree.DefaultDegree
	}
	res := btree.NewWithDegree[workload.Item](degree)
	var prev btree.Key
	for i := uint64(0); i < resLen; i++ {
		var kv, kid, wv, iid uint64
		if err := firstErr(rd(&kv), rd(&kid), rd(&wv), rd(&iid)); err != nil {
			return fmt.Errorf("core: truncated snapshot reservoir: %w", err)
		}
		k := btree.Key{V: math.Float64frombits(kv), ID: kid}
		if i > 0 && !prev.Less(k) {
			return fmt.Errorf("core: corrupt snapshot (reservoir keys out of order)")
		}
		prev = k
		res.Insert(k, workload.Item{W: math.Float64frombits(wv), ID: iid})
	}
	var rngLen uint64
	if err := rd(&rngLen); err != nil || rngLen > uint64(r.Len()) {
		return fmt.Errorf("core: truncated snapshot RNG state")
	}
	rngState := make([]byte, rngLen)
	if _, err := r.Read(rngState); err != nil {
		return fmt.Errorf("core: truncated snapshot RNG state: %w", err)
	}
	src := rng.NewXoshiro256(1)
	if err := src.UnmarshalBinary(rngState); err != nil {
		return err
	}
	var scanHaveT byte
	var scanThreshBits uint64
	var shardSrc []*rng.Xoshiro256
	if pe.cfg.Shards > 0 {
		var shardCount uint32
		if err := firstErr(rd(&scanHaveT), rd(&scanThreshBits), rd(&shardCount)); err != nil {
			return fmt.Errorf("core: truncated snapshot shard section: %w", err)
		}
		if int(shardCount) != pe.cfg.Shards {
			return fmt.Errorf("core: snapshot has %d scan shards, config wants %d", shardCount, pe.cfg.Shards)
		}
		shardSrc = make([]*rng.Xoshiro256, shardCount)
		for i := range shardSrc {
			var n uint64
			if err := rd(&n); err != nil || n > uint64(r.Len()) {
				return fmt.Errorf("core: truncated snapshot shard RNG state")
			}
			st := make([]byte, n)
			if _, err := r.Read(st); err != nil {
				return fmt.Errorf("core: truncated snapshot shard RNG state: %w", err)
			}
			shardSrc[i] = rng.NewXoshiro256(1)
			if err := shardSrc[i].UnmarshalBinary(st); err != nil {
				return err
			}
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("core: %d trailing bytes in snapshot", r.Len())
	}

	pe.res = res
	pe.haveT = haveT != 0
	pe.thresh = btree.Key{V: math.Float64frombits(threshV), ID: threshID}
	pe.haveLocalT = haveLocalT != 0
	pe.localThresh = btree.Key{V: math.Float64frombits(localV), ID: localID}
	pe.keySeq = keySeq
	pe.size = int(size)
	pe.seen = int64(seen)
	pe.src = src
	if pe.cfg.Shards > 0 {
		pe.shardSrc = shardSrc
		pe.scanHaveT = scanHaveT != 0
		pe.scanThresh = math.Float64frombits(scanThreshBits)
	}
	pe.pendingSel = false
	pe.pendingLen = 0
	pe.timing = Timing{}
	pe.counter = Counters{}
	return nil
}

// RestoreCounters reinstates persisted operation counters after an
// UnmarshalBinary (which zeroes them), so a restored cluster reports the
// same lifetime counters as the snapshotting one.
func (pe *DistPE) RestoreCounters(c Counters) { pe.counter = c }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
