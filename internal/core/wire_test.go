package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/transport"
	"reservoir/internal/workload"
)

// hotPayloads is one value per hot-path codec this package registers —
// including the float corner cases (denormal keys from exponential
// draws, negative zero) where bit-exactness decides simnet/tcpnet
// sample equivalence.
func hotPayloads() []any {
	negZero := math.Copysign(0, -1)
	return []any{
		btree.Key{V: 2.5e-312, ID: 1<<64 - 1}, // denormal V
		[]btree.Key{},
		[]btree.Key{{V: negZero, ID: 0}, {V: 1.5, ID: 42}},
		[]workload.Item{{W: 0.125, ID: 7}},
		[]coll.Chunk[workload.Item]{
			{Src: 0, Items: []workload.Item{{W: 1, ID: 1}, {W: 2, ID: 2}}},
			{Src: 3, Items: nil},
		},
		[]coll.Chunk[btree.Key]{{Src: 2, Items: []btree.Key{{V: 9, ID: 9}}}},
		[]coll.Chunk[keyedItem]{{Src: 1, Items: []keyedItem{
			{Key: btree.Key{V: 0.5, ID: 5}, Item: workload.Item{W: 3, ID: 5}},
		}}},
		[]coll.Chunk[int]{{Src: 0, Items: []int{5, -1}}, {Src: 1, Items: []int{}}},
		[][]int{{1, 2}, {}, {-3}},
		threshMsg{T: btree.Key{V: 0.75, ID: 12}, Have: true, Size: -1},
		Counters{ItemsProcessed: 1, Inserted: 2, CandidateWords: 3,
			Selections: 4, SelectionRounds: 5, GatheredSelections: 6},
	}
}

func TestHotPayloadRoundTrip(t *testing.T) {
	for _, v := range hotPayloads() {
		body := transport.AppendPayload(nil, v)
		if body[0] != 0x01 {
			t.Fatalf("%T: expected the wire fast path, got discriminator 0x%02x", v, body[0])
		}
		got, err := transport.DecodePayload(body)
		if err != nil {
			t.Fatalf("%T: decode: %v", v, err)
		}
		if !payloadEqual(got, v) {
			t.Fatalf("%T round trip: sent %+v, got %+v", v, v, got)
		}
	}
}

// The cross-codec property: for every hot type, the binary path and the
// gob fallback must decode to the same value, so promoting a type onto
// the fast path is invisible to receivers.
func TestHotPayloadMatchesGob(t *testing.T) {
	for _, v := range hotPayloads() {
		transport.Register(v) // the gob path needs the concrete type mapped
		fromWire, err := transport.DecodePayload(transport.AppendPayload(nil, v))
		if err != nil {
			t.Fatalf("%T: wire decode: %v", v, err)
		}
		var gb bytes.Buffer
		gb.WriteByte(0x00) // the gob-fallback discriminator
		if err := gob.NewEncoder(&gb).Encode(&v); err != nil {
			t.Fatalf("%T: gob encode: %v", v, err)
		}
		fromGob, err := transport.DecodePayload(gb.Bytes())
		if err != nil {
			t.Fatalf("%T: gob decode: %v", v, err)
		}
		if !payloadAgrees(fromWire, fromGob) {
			t.Fatalf("%T: wire decoded %+v, gob decoded %+v", v, fromWire, fromGob)
		}
	}
}

// payloadEqual is DeepEqual modulo one codec-irrelevant representation
// choice — a nil slice equals an empty one — while floats compare on
// bits, so -0 and NaN round-trips count (plain == and DeepEqual each
// get one of those wrong).
func payloadEqual(a, b any) bool {
	return payloadEqualValue(reflect.ValueOf(a), reflect.ValueOf(b), true)
}

// payloadAgrees additionally lets -0 equal +0: gob's zero-field
// omission erases the sign of a negative-zero struct field (it encodes
// nothing and the decoder leaves +0), which the bit-exact wire codec
// deliberately does not replicate.
func payloadAgrees(a, b any) bool {
	return payloadEqualValue(reflect.ValueOf(a), reflect.ValueOf(b), false)
}

func payloadEqualValue(a, b reflect.Value, bits bool) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Float64:
		if !bits && a.Float() == b.Float() {
			return true
		}
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Slice:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !payloadEqualValue(a.Index(i), b.Index(i), bits) {
				return false
			}
		}
		return true
	case reflect.Struct:
		if a.Type() != b.Type() {
			return false
		}
		for i := 0; i < a.NumField(); i++ {
			if !payloadEqualValue(a.Field(i), b.Field(i), bits) {
				return false
			}
		}
		return true
	case reflect.Interface:
		return payloadEqualValue(a.Elem(), b.Elem(), bits)
	default:
		return a.Interface() == b.Interface()
	}
}

// Truncations of every hot payload must be rejected: the formats are
// self-delimiting and a partial gather chunk must never decode into a
// shorter-but-plausible value.
func TestHotPayloadTruncationRejected(t *testing.T) {
	for _, v := range hotPayloads() {
		body := transport.AppendPayload(nil, v)
		for n := 0; n < len(body); n++ {
			if _, err := transport.DecodePayload(body[:n]); err == nil {
				t.Fatalf("%T: %d-byte prefix of a %d-byte body decoded cleanly", v, n, len(body))
			}
		}
	}
}

// A chunk header claiming more elements than its frame carries must fail
// in Dec.Len, before the decoder allocates.
func TestChunkLengthLyingRejected(t *testing.T) {
	body := []byte{0x01, byte(transport.WireIDKeyChunks)}
	body = transport.AppendUvarint(body, 1)        // one chunk
	body = transport.AppendUvarint(body, 0)        // src 0
	body = transport.AppendUvarint(body, 1<<40)    // claims ~10^12 keys
	body = transport.AppendU64(body, 0x3FF0000000) // ...backed by 8 bytes
	if _, err := transport.DecodePayload(body); err == nil {
		t.Fatal("length-lying key chunk accepted")
	}
}

// FuzzDecodeHotPayloads re-runs the transport fuzz contract with every
// sampler codec registered: arbitrary bodies may error but never panic
// or over-allocate, and whatever decodes must round-trip stably.
func FuzzDecodeHotPayloads(f *testing.F) {
	for _, v := range hotPayloads() {
		f.Add(transport.AppendPayload(nil, v))
	}
	f.Add(append([]byte{0x01, byte(transport.WireIDKeyedItemChunks)}, 0xFF, 0xFF, 0xFF, 0x7F))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := transport.DecodePayload(data)
		if err != nil || v == nil {
			return
		}
		v2, err := transport.DecodePayload(transport.AppendPayload(nil, v))
		if err != nil {
			t.Fatalf("re-decoding %T failed: %v", v, err)
		}
		if !payloadEqual(v, v2) {
			t.Fatalf("unstable round trip: %+v became %+v", v, v2)
		}
	})
}
