package core

import (
	"sort"

	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// WindowedWeighted samples from a sliding window of the most recent items —
// the extension the paper's conclusion (Sec 7) names as future work.
//
// Construction: the stream is cut into chunks of ChunkLen items; each chunk
// keeps the (at most) k smallest-keyed of its items, using the same
// exponential keys as the main algorithm (Sec 3.1). Any k-smallest key of a
// window is necessarily among the k smallest of its own chunk, so the k
// smallest keys over the chunks covering the window are exactly the window
// sample. The window therefore slides at chunk granularity: Sample reflects
// the last `Chunks` complete-or-partial chunks, covering between
// (Chunks-1)·ChunkLen+1 and Chunks·ChunkLen of the most recent items.
type WindowedWeighted struct {
	k        int
	chunkLen int
	chunks   int
	src      rng.Source

	ring    []chunkSample // ring buffer of the newest `chunks` chunks
	head    int           // index of the newest chunk in ring
	inChunk int           // items in the newest chunk so far
	n       int64
}

type chunkSample struct {
	h    maxHeap
	used bool
}

// NewWindowedWeighted creates a sliding-window weighted sampler: sample
// size k over a window of `window` items, tracked at `chunkLen` item
// granularity (window must be a multiple of chunkLen).
func NewWindowedWeighted(k, window, chunkLen int, src rng.Source) *WindowedWeighted {
	if k < 1 || chunkLen < 1 || window < chunkLen || window%chunkLen != 0 {
		panic("core: windowed sampler needs k >= 1 and window a positive multiple of chunkLen")
	}
	chunks := window / chunkLen
	return &WindowedWeighted{
		k:        k,
		chunkLen: chunkLen,
		chunks:   chunks,
		src:      src,
		ring:     make([]chunkSample, chunks),
	}
}

// Process feeds one item (weight must be strictly positive).
func (s *WindowedWeighted) Process(it workload.Item) {
	if s.inChunk == 0 || s.inChunk >= s.chunkLen {
		// Start a new chunk, evicting the oldest.
		if s.n > 0 {
			s.head = (s.head + 1) % s.chunks
		}
		s.ring[s.head] = chunkSample{used: true}
		s.inChunk = 0
	}
	c := &s.ring[s.head]
	v := rng.Exponential(s.src, it.W)
	if c.h.len() < s.k {
		c.h.push(v, it)
	} else if v < c.h.keys[0] {
		c.h.replaceMax(v, it)
	}
	s.inChunk++
	s.n++
}

// ProcessBatch feeds a whole mini-batch.
func (s *WindowedWeighted) ProcessBatch(b workload.Batch) {
	for i := 0; i < b.Len(); i++ {
		s.Process(b.At(i))
	}
}

// Sample returns a weighted sample without replacement of (up to) k items
// from the current window: the k smallest keys across the live chunks.
func (s *WindowedWeighted) Sample() []workload.Item {
	type kv struct {
		key float64
		it  workload.Item
	}
	var all []kv
	for i := range s.ring {
		c := &s.ring[i]
		if !c.used {
			continue
		}
		for j, key := range c.h.keys {
			all = append(all, kv{key: key, it: c.h.items[j]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	if len(all) > s.k {
		all = all[:s.k]
	}
	out := make([]workload.Item, len(all))
	for i, e := range all {
		out[i] = e.it
	}
	return out
}

// SampleSize returns the current sample size — min(k, candidates retained
// across the live chunks) — without materializing and sorting the sample
// the way Sample does.
func (s *WindowedWeighted) SampleSize() int {
	total := 0
	for i := range s.ring {
		if s.ring[i].used {
			total += s.ring[i].h.len()
		}
	}
	if total > s.k {
		return s.k
	}
	return total
}

// WindowSpan returns the number of recent items the current sample covers.
func (s *WindowedWeighted) WindowSpan() int64 {
	live := int64(0)
	for i := range s.ring {
		if s.ring[i].used {
			live++
		}
	}
	if live == 0 {
		return 0
	}
	return (live-1)*int64(s.chunkLen) + int64(s.inChunk)
}

// Seen returns the total number of items processed.
func (s *WindowedWeighted) Seen() int64 { return s.n }
