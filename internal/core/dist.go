package core

import (
	"math"

	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/costmodel"
	"reservoir/internal/distsel"
	"reservoir/internal/rng"
	"reservoir/internal/transport"
	"reservoir/internal/workload"
)

// Sampler is the common interface of the distributed mini-batch samplers
// (the paper's algorithm and the centralized baseline). All methods are
// SPMD: every PE of the cluster must call them collectively and in the same
// order.
type Sampler interface {
	// ProcessBatch ingests this PE's mini-batch for the current round and
	// runs the collective post-processing (selection / gathering).
	ProcessBatch(b workload.Batch)
	// CollectSample gathers the current global sample at PE 0 (nil on the
	// other PEs).
	CollectSample() []workload.Item
	// LocalSample returns this PE's part of the sample without any
	// communication (and therefore without touching the virtual clocks or
	// traffic counters). The concatenation over all PEs is the global
	// sample. Unlike the collective methods it may be called on a single
	// PE, but never concurrently with a collective call on the same
	// cluster.
	LocalSample() []workload.Item
	// SampleSize returns the current global sample size (on every PE).
	SampleSize() int
	// Seen returns the global number of items processed so far, as known
	// by this PE after its last completed round (no communication).
	Seen() int64
	// Threshold returns the current global key threshold and whether one
	// has been established (i.e. at least k items were seen).
	Threshold() (float64, bool)
	// Timing returns this PE's accumulated per-phase virtual times.
	Timing() Timing
	// Counters returns this PE's accumulated operation counts.
	Counters() Counters
}

// DistPE is one PE of the paper's fully distributed reservoir sampler
// (Algorithm 1, Sec 4.2/4.3): the local part of the sample lives in a B+
// tree keyed by random variates; a global key threshold gates insertions;
// after each mini-batch a distributed selection determines the new
// threshold and each PE discards the local items above it.
type DistPE struct {
	cfg   Config
	comm  *coll.Comm
	model costmodel.Model
	src   *rng.Xoshiro256

	res    *btree.Tree[workload.Item]
	thresh btree.Key
	haveT  bool

	// Local thresholding state (Sec 5, first optimization), active only
	// before a global threshold exists.
	localThresh btree.Key
	haveLocalT  bool

	keySeq  uint64 // per-PE tie-break counter for key IDs
	size    int    // current global sample size (all PEs agree)
	seen    int64  // global number of items seen (all PEs agree)
	timing  Timing
	counter Counters

	// Sharded/pipelined scan state (Config.Shards >= 1; DESIGN.md §2.6).
	// shardSrc holds the per-shard scan streams; scanThresh is the
	// threshold the next StartScan uses, fixed at the previous
	// CommitScan; pendingSel marks a round whose selection collectives
	// were deferred (Config.Pipeline) and not yet drained.
	shardSrc   []*rng.Xoshiro256
	scanThresh float64
	scanHaveT  bool
	pendingSel bool
	pendingLen int
	scanBufs   [2]*ScanBuf
	scanBufIdx int
}

var _ Sampler = (*DistPE)(nil)

// NewDistPE creates this PE's instance of the distributed sampler. Every PE
// of the cluster must create one with an identical Config.
func NewDistPE(comm *coll.Comm, cfg Config) (*DistPE, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	degree := cfg.TreeDegree
	if degree == 0 {
		degree = btree.DefaultDegree
	}
	pe := &DistPE{
		cfg:   cfg,
		comm:  comm,
		model: cfg.Model,
		src:   rng.NewXoshiro256(rng.Mix64(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(comm.Rank()+1)))),
		res:   btree.NewWithDegree[workload.Item](degree),
	}
	if cfg.Shards > 0 {
		pe.shardSrc = make([]*rng.Xoshiro256, cfg.Shards)
		for s := range pe.shardSrc {
			pe.shardSrc[s] = rng.NewXoshiro256(shardStreamSeed(cfg.Seed, comm.Rank(), s))
		}
	}
	return pe, nil
}

// nextKeyID returns a cluster-unique tie-break ID for a new key.
func (pe *DistPE) nextKeyID() uint64 {
	pe.keySeq++
	return uint64(pe.comm.Rank())<<40 | pe.keySeq
}

// weightedKey draws the exponential key -ln(rand())/w of Sec 3.1.
func (pe *DistPE) weightedKey(w float64) float64 {
	return rng.Exponential(pe.src, w)
}

// ProcessBatch implements Sampler. With Config.Shards >= 1 it runs the
// sharded round sequence — StartScan, FinishPending, CommitScan — in
// order; a node driver may instead call the three phases itself and
// overlap StartScan with FinishPending (see reservoir.Node), which
// yields the byte-identical stream because the two phases touch disjoint
// state.
func (pe *DistPE) ProcessBatch(b workload.Batch) {
	if pe.cfg.Shards > 0 {
		buf := pe.StartScan(b)
		pe.FinishPending()
		pe.CommitScan(b, buf)
		return
	}
	clock := pe.comm.Conn

	// Phase 1: local scan & insert (the "insert" bars of Figure 6).
	t0 := clock.Clock()
	if !pe.haveT {
		pe.insertAll(b)
	} else if pe.cfg.Weighted {
		pe.skipScanWeighted(b)
	} else {
		pe.skipScanUniform(b)
	}
	pe.counter.ItemsProcessed += int64(b.Len())
	pe.timing.ScanNS += clock.Clock() - t0

	// Phase 2+3: joint selection of the new threshold and local pruning.
	pe.selectAndPrune(b.Len())
}

// insertAll handles batches arriving before a global threshold exists
// (T = -inf in Algorithm 1): every item gets a key and enters the local
// reservoir, subject to the local thresholding optimization of Sec 5.
func (pe *DistPE) insertAll(b workload.Batch) {
	n := b.Len()
	cap := pe.cfg.sampleCap()
	useLocalT := pe.cfg.LocalThreshold && n >= maxInt(3*cap/2, cap+500)
	prune := maxInt(11*cap/10, cap+250)

	// Charges: one key variate per item plus one tree insert per accepted
	// item; scan touch cost per item.
	perItem := pe.model.ScanPerItemNS(n, false) + pe.model.RNGNS
	clock := pe.comm.Conn
	for i := 0; i < n; i++ {
		it := b.At(i)
		var v float64
		if pe.cfg.Weighted {
			v = pe.weightedKey(it.W)
		} else {
			v = rng.U01(pe.src)
		}
		k := btree.Key{V: v, ID: pe.nextKeyID()}
		if useLocalT && pe.haveLocalT && pe.localThresh.Less(k) {
			continue
		}
		pe.res.Insert(k, it)
		pe.counter.Inserted++
		clock.Work(pe.model.TreeOpNS(pe.res.Len()))
		if useLocalT && pe.res.Len() > prune {
			// Refresh the local threshold: keep the cap smallest, discard
			// the rest. The local reservoir is never pruned below cap, so
			// the union of all local reservoirs keeps at least cap items.
			tk, _, _ := pe.res.Select(cap)
			pe.res.SplitAtRank(cap)
			pe.localThresh, pe.haveLocalT = tk, true
			clock.Work(pe.model.TreeOpNS(pe.res.Len()) * 2)
		}
	}
	clock.Work(float64(n) * perItem)
}

// skipScanWeighted is the inner loop of Algorithm 1: skip an Exp(T)
// amount of weight, insert the item the skip lands on with a key drawn
// from (0, T), repeat. The global threshold T does not change during the
// batch.
func (pe *DistPE) skipScanWeighted(b workload.Batch) {
	n := b.Len()
	t := pe.thresh.V
	clock := pe.comm.Conn
	wp := grabWeights(b, n)
	ws := *wp
	draws := 0
	x := rng.Exponential(pe.src, t)
	draws++

	j := 0
	if pe.cfg.BlockedSkip {
		// Process 32 items at a time: if the whole block's weight fits in
		// the remaining skip, jump the block (this is the SIMD-friendly
		// variant of Sec 5; the cost model charges it at a reduced
		// per-item rate).
		const block = 32
		for j < n {
			end := j + block
			if end > n {
				end = n
			}
			var sum float64
			for _, w := range ws[j:end] {
				sum += w
			}
			if x > sum {
				x -= sum
				j = end
				continue
			}
			for ; j < end; j++ {
				x -= ws[j]
				if x <= 0 {
					pe.insertBelow(b.At(j), t)
					draws++ // the (0,T) key draw inside insertBelow
					x = rng.Exponential(pe.src, t)
					draws++
				}
			}
		}
	} else {
		for ; j < n; j++ {
			x -= ws[j]
			if x <= 0 {
				pe.insertBelow(b.At(j), t)
				draws += 2
				x = rng.Exponential(pe.src, t)
				draws++
			}
		}
	}
	releaseWeights(wp)
	clock.Work(float64(n)*pe.model.ScanPerItemNS(n, pe.cfg.BlockedSkip) + float64(draws)*pe.model.RNGNS)
}

// insertBelow inserts item it with a key drawn from (0, T) given that it
// was already determined to enter the reservoir.
func (pe *DistPE) insertBelow(it workload.Item, t float64) {
	xlo := math.Exp(-t * it.W)
	v := -math.Log(rng.Uniform(pe.src, xlo, 1)) / it.W
	pe.res.Insert(btree.Key{V: v, ID: pe.nextKeyID()}, it)
	pe.counter.Inserted++
	pe.comm.Conn.Work(pe.model.TreeOpNS(pe.res.Len()))
}

// skipScanUniform is the uniform variant (Sec 4.3): geometric jumps skip
// whole items in O(1), so local work is proportional to the number of
// insertions only (Corollary 4).
func (pe *DistPE) skipScanUniform(b workload.Batch) {
	n := b.Len()
	t := pe.thresh.V
	clock := pe.comm.Conn
	draws := 0
	j := rng.GeometricSkip(pe.src, t)
	draws++
	for j < n {
		it := b.At(j)
		v := rng.U01CO(pe.src) * t
		pe.res.Insert(btree.Key{V: v, ID: pe.nextKeyID()}, it)
		pe.counter.Inserted++
		draws++
		clock.Work(pe.model.TreeOpNS(pe.res.Len()))
		j += 1 + rng.GeometricSkip(pe.src, t)
		draws++
	}
	clock.Work(float64(draws) * pe.model.RNGNS)
}

// selectAndPrune runs the collective part of Algorithm 1: determine the
// global candidate count, select the key of global rank k (or a rank in
// [KMin, KMax] in variable mode), and discard local items above it.
func (pe *DistPE) selectAndPrune(batchLen int) {
	clock := pe.comm.Conn

	t0 := clock.Clock()
	sizes := coll.AllReduce(pe.comm, []int{pe.res.Len(), batchLen}, coll.SumInts, 2)
	s := sizes[0]
	pe.seen += int64(sizes[1])
	pe.timing.SelectNS += clock.Clock() - t0

	fixed := pe.cfg.KMax == 0
	var target int
	switch {
	case fixed:
		target = pe.cfg.K
		if s < target {
			// Fewer than k items seen globally: the sample is everything;
			// no threshold yet.
			pe.size = s
			return
		}
		if s == target {
			// The union is exactly the sample; the new threshold is the
			// global maximum key, found with one all-reduction.
			pe.setThresholdToMax()
			pe.size = s
			return
		}
	default:
		if s <= pe.cfg.KMax {
			// Variable mode (Sec 4.4): let the sample grow until it
			// exceeds KMax; skip the selection entirely.
			pe.size = s
			if !pe.haveT && s >= pe.cfg.KMin {
				// Establish an initial threshold once the range is
				// reachable, so subsequent batches filter: without this
				// the reservoir would keep absorbing every item.
				pe.setThresholdToMax()
			}
			return
		}
		target = pe.cfg.KMax
	}

	// Distributed selection (the "select" bars of Figure 6).
	t1 := clock.Clock()
	seq := chargedSeq{s: distsel.TreeSeq[workload.Item]{T: pe.res}, pe: clock, m: pe.model}
	opt := distsel.Options{
		Pivots: pe.cfg.Pivots,
		// The size all-reduction above already produced the global union
		// size; hand it down so selection skips its own entry reduction.
		KnownN: s,
		RNG:    chargedRNG{src: pe.src, pe: clock, ns: pe.model.RNGNS},
	}
	var res distsel.Result
	if fixed {
		switch pe.cfg.Strategy {
		case SelRandomDist:
			res = distsel.RandomDistKth(pe.comm, seq, target, opt)
		default:
			res = distsel.KthSmallest(pe.comm, seq, target, opt)
		}
	} else {
		res = distsel.ApproxSelect(pe.comm, seq, pe.cfg.KMin, pe.cfg.KMax, opt)
	}
	pe.counter.Selections++
	pe.counter.SelectionRounds += int64(res.Rounds)
	if res.Gathered {
		pe.counter.GatheredSelections++
	}
	pe.timing.SelectNS += clock.Clock() - t1

	// Threshold phase: the local split that discards items above the
	// threshold. Algorithm 1 closes with an all-reduction T := max_j t@j
	// over the per-PE maxima below the cut, but the exact selection above
	// already returned that key: res.Key is an actual stored key and the
	// global maximum at or below itself, so the reduction is pure
	// communication with a known result and the sampler skips it.
	t2 := clock.Clock()
	pe.res.SplitByKey(res.Key)
	clock.Work(pe.model.TreeOpNS(pe.res.Len()) * 2)
	pe.thresh, pe.haveT = res.Key, true
	pe.haveLocalT = false
	pe.size = res.Rank
	pe.timing.ThresholdNS += clock.Clock() - t2
}

// setThresholdToMax sets the global threshold to the maximum key of the
// union of the local reservoirs via one all-reduction.
func (pe *DistPE) setThresholdToMax() {
	clock := pe.comm.Conn
	t0 := clock.Clock()
	local := btree.Key{V: math.Inf(-1)}
	if k, _, ok := pe.res.Max(); ok {
		local = k
		clock.Work(pe.model.TreeOpNS(pe.res.Len()))
	}
	maxKey := coll.AllReduce(pe.comm, local, func(a, b btree.Key) btree.Key {
		if a.Less(b) {
			return b
		}
		return a
	}, 2)
	pe.thresh, pe.haveT = maxKey, true
	pe.haveLocalT = false
	pe.timing.ThresholdNS += clock.Clock() - t0
}

// CollectSample implements Sampler: the union of all local reservoirs,
// gathered at PE 0. It is a collective entry point, so it drains any
// pipelined selection first — the sample handed out is always a
// committed round boundary.
func (pe *DistPE) CollectSample() []workload.Item {
	pe.FinishPending()
	local := make([]workload.Item, 0, pe.res.Len())
	pe.res.ForEach(func(_ btree.Key, it workload.Item) bool {
		local = append(local, it)
		return true
	})
	parts := coll.Gather(pe.comm, 0, local, 2)
	if pe.comm.Rank() != 0 {
		return nil
	}
	var all []workload.Item
	for _, p := range parts {
		all = append(all, p...)
	}
	return all
}

// LocalSample returns this PE's part of the sample (no communication).
func (pe *DistPE) LocalSample() []workload.Item {
	local := make([]workload.Item, 0, pe.res.Len())
	pe.res.ForEach(func(_ btree.Key, it workload.Item) bool {
		local = append(local, it)
		return true
	})
	return local
}

// LocalSize returns the size of this PE's local reservoir.
func (pe *DistPE) LocalSize() int { return pe.res.Len() }

// SampleSize implements Sampler.
func (pe *DistPE) SampleSize() int { return pe.size }

// Pending reports whether a pipelined round's selection collectives are
// still deferred (Config.Pipeline). Drain with FinishPending — a
// collective call — before snapshotting or reading committed state.
func (pe *DistPE) Pending() bool { return pe.pendingSel }

// Sharded reports whether the sharded scan is active (Config.Shards >=
// 1), i.e. whether the StartScan/FinishPending/CommitScan phase API is
// available to external round drivers.
func (pe *DistPE) Sharded() bool { return len(pe.shardSrc) > 0 }

// Seen returns the global number of items processed so far.
func (pe *DistPE) Seen() int64 { return pe.seen }

// Threshold implements Sampler.
func (pe *DistPE) Threshold() (float64, bool) { return pe.thresh.V, pe.haveT }

// Timing implements Sampler.
func (pe *DistPE) Timing() Timing { return pe.timing }

// Counters implements Sampler.
func (pe *DistPE) Counters() Counters { return pe.counter }

// --- charging wrappers -----------------------------------------------------

// chargedSeq charges B+ tree operation costs to the PE's virtual clock
// before forwarding to the underlying sequence.
type chargedSeq struct {
	s  distsel.Seq
	pe transport.Conn
	m  costmodel.Model
}

func (c chargedSeq) Len() int { return c.s.Len() }

func (c chargedSeq) CountLeq(k btree.Key) int {
	c.pe.Work(c.m.TreeOpNS(c.s.Len()))
	return c.s.CountLeq(k)
}

func (c chargedSeq) Select(rank int) (btree.Key, bool) {
	c.pe.Work(c.m.TreeOpNS(c.s.Len()))
	return c.s.Select(rank)
}

// chargedRNG charges a per-variate cost to the PE's virtual clock.
type chargedRNG struct {
	src rng.Source
	pe  transport.Conn
	ns  float64
}

func (c chargedRNG) Uint64() uint64 {
	c.pe.Work(c.ns)
	return c.src.Uint64()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
