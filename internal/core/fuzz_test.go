package core

import (
	"bytes"
	"testing"

	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// seqSnapshotSeeds produces valid snapshots of both sequential samplers in
// a few states (empty, partially filled, past the threshold), used as the
// in-code fuzz seed corpus alongside the files under testdata/fuzz.
func seqSnapshotSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	addW := func(k, n int) {
		s := NewSeqWeighted(k, rng.NewXoshiro256(7))
		for i := 0; i < n; i++ {
			s.Process(workload.Item{W: float64(i%13) + 0.5, ID: uint64(i)})
		}
		b, err := s.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	addU := func(k, n int) {
		s := NewSeqUniform(k, rng.NewXoshiro256(9))
		for i := 0; i < n; i++ {
			s.Process(workload.Item{W: 1, ID: uint64(i)})
		}
		b, err := s.MarshalBinary()
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, b)
	}
	addW(8, 0)
	addW(8, 100)
	addW(64, 30)
	addU(8, 0)
	addU(8, 100)
	return seeds
}

// FuzzUnmarshalSeq hammers the sequential-sampler snapshot decoders with
// arbitrary bytes: truncated, bit-flipped, and length-lying inputs must
// return an error — never panic and never allocate beyond what the input
// length can justify. A successfully decoded snapshot must re-marshal
// bit-identically (decode is the inverse of encode on its image).
func FuzzUnmarshalSeq(f *testing.F) {
	for _, s := range seqSnapshotSeeds(f) {
		f.Add(s)
		f.Add(s[:len(s)/2])
		flipped := append([]byte(nil), s...)
		flipped[len(flipped)/3] ^= 0x20
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		var w SeqWeighted
		if err := w.UnmarshalBinary(data); err == nil {
			out, err := w.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal of accepted weighted snapshot failed: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("weighted snapshot does not round-trip (%d vs %d bytes)", len(out), len(data))
			}
		}
		var u SeqUniform
		if err := u.UnmarshalBinary(data); err == nil {
			out, err := u.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal of accepted uniform snapshot failed: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("uniform snapshot does not round-trip (%d vs %d bytes)", len(out), len(data))
			}
		}
	})
}
