package core

import (
	"bytes"
	"encoding"
	"encoding/binary"
	"fmt"
	"math"

	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// Checkpointing for the sequential samplers: a stream processor can
// snapshot a sampler, persist it, and resume the exact same sampling
// process after a restart — including the PRNG state, so a resumed run is
// bit-identical to an uninterrupted one.
//
// Binary layout (little endian): magic, version, kind, k,
// skip state (float64 or int64), items-seen, weight-seen, heap size,
// heap (key, weight, id)*, RNG state length, RNG state.

const (
	snapshotMagic   = uint32(0x5e5a3107)
	snapshotVersion = 1
	kindWeighted    = byte(1)
	kindUniform     = byte(2)
)

// MarshalBinary snapshots the sampler. The sampler's random source must
// implement encoding.BinaryMarshaler (the default xoshiro256** engine
// does).
func (s *SeqWeighted) MarshalBinary() ([]byte, error) {
	return marshalSeq(kindWeighted, s.k, math.Float64bits(s.x), uint64(s.n),
		s.wSum, &s.h, s.src)
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary. The
// receiver's configuration is replaced entirely.
func (s *SeqWeighted) UnmarshalBinary(data []byte) error {
	st, err := unmarshalSeq(kindWeighted, data)
	if err != nil {
		return err
	}
	s.k = st.k
	s.x = math.Float64frombits(st.skipBits)
	s.n = int64(st.n)
	s.wSum = st.wSum
	s.h = st.h
	s.src = st.src
	return nil
}

// MarshalBinary snapshots the sampler (see SeqWeighted.MarshalBinary).
func (s *SeqUniform) MarshalBinary() ([]byte, error) {
	return marshalSeq(kindUniform, s.k, uint64(s.skip), uint64(s.n), 0, &s.h, s.src)
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary.
func (s *SeqUniform) UnmarshalBinary(data []byte) error {
	st, err := unmarshalSeq(kindUniform, data)
	if err != nil {
		return err
	}
	s.k = st.k
	s.skip = int(st.skipBits)
	s.n = int64(st.n)
	s.h = st.h
	s.src = st.src
	return nil
}

func marshalSeq(kind byte, k int, skipBits, n uint64, wSum float64, h *maxHeap, src rng.Source) ([]byte, error) {
	m, ok := src.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: random source %T does not support snapshots", src)
	}
	rngState, err := m.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot RNG state: %w", err)
	}
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(snapshotMagic)
	w(byte(snapshotVersion))
	w(kind)
	w(uint64(k))
	w(skipBits)
	w(n)
	w(math.Float64bits(wSum))
	w(uint64(h.len()))
	for i, key := range h.keys {
		w(math.Float64bits(key))
		w(math.Float64bits(h.items[i].W))
		w(h.items[i].ID)
	}
	w(uint64(len(rngState)))
	buf.Write(rngState)
	return buf.Bytes(), nil
}

type seqState struct {
	k        int
	skipBits uint64
	n        uint64
	wSum     float64
	h        maxHeap
	src      rng.Source
}

func unmarshalSeq(wantKind byte, data []byte) (seqState, error) {
	var st seqState
	r := bytes.NewReader(data)
	var magic uint32
	var version, kind byte
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	if err := rd(&magic); err != nil || magic != snapshotMagic {
		return st, fmt.Errorf("core: not a sampler snapshot")
	}
	if err := rd(&version); err != nil || version != snapshotVersion {
		return st, fmt.Errorf("core: unsupported snapshot version %d", version)
	}
	if err := rd(&kind); err != nil || kind != wantKind {
		return st, fmt.Errorf("core: snapshot kind mismatch (got %d, want %d)", kind, wantKind)
	}
	var k, heapLen, rngLen uint64
	var wSumBits uint64
	if err := firstErr(rd(&k), rd(&st.skipBits), rd(&st.n), rd(&wSumBits), rd(&heapLen)); err != nil {
		return st, fmt.Errorf("core: truncated snapshot header: %w", err)
	}
	st.k = int(k)
	st.wSum = math.Float64frombits(wSumBits)
	if wantKind == kindUniform && wSumBits != 0 {
		// Uniform snapshots always encode wSum as 0; anything else is
		// corruption (and would not survive a re-marshal round-trip).
		return st, fmt.Errorf("core: corrupt snapshot (uniform sampler with wSum bits %#x)", wSumBits)
	}
	if st.k < 1 || heapLen > k {
		return st, fmt.Errorf("core: corrupt snapshot (k=%d, heap=%d)", st.k, heapLen)
	}
	// Each heap entry is 24 bytes; reject length-lying headers before
	// allocating the heap, so corrupt input cannot force a huge allocation.
	if heapLen > uint64(r.Len())/24 {
		return st, fmt.Errorf("core: corrupt snapshot (heap claims %d entries, %d bytes remain)", heapLen, r.Len())
	}
	st.h.keys = make([]float64, heapLen)
	st.h.items = make([]workload.Item, heapLen)
	for i := uint64(0); i < heapLen; i++ {
		var keyBits, wBits, id uint64
		if err := firstErr(rd(&keyBits), rd(&wBits), rd(&id)); err != nil {
			return st, fmt.Errorf("core: truncated snapshot heap: %w", err)
		}
		st.h.keys[i] = math.Float64frombits(keyBits)
		st.h.items[i] = workload.Item{W: math.Float64frombits(wBits), ID: id}
	}
	// Validate the heap property rather than trusting the input.
	for i := 1; i < int(heapLen); i++ {
		if st.h.keys[i] > st.h.keys[(i-1)/2] {
			return st, fmt.Errorf("core: corrupt snapshot (heap order violated at %d)", i)
		}
	}
	if err := rd(&rngLen); err != nil || rngLen > uint64(r.Len()) {
		return st, fmt.Errorf("core: truncated snapshot RNG state")
	}
	rngState := make([]byte, rngLen)
	if _, err := r.Read(rngState); err != nil {
		return st, fmt.Errorf("core: truncated snapshot RNG state: %w", err)
	}
	x := rng.NewXoshiro256(1)
	if err := x.UnmarshalBinary(rngState); err != nil {
		return st, err
	}
	if r.Len() != 0 {
		return st, fmt.Errorf("core: %d trailing bytes in snapshot", r.Len())
	}
	st.src = x
	return st, nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
