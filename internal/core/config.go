// Package core implements the paper's reservoir sampling algorithms:
//
//   - sequential weighted sampling with exponential jumps (Sec 4.1) and
//     sequential uniform sampling with geometric jumps (Sec 4.3),
//   - the fully distributed sampler of Algorithm 1 (Sec 4.2) with fixed or
//     variable sample size (Sec 4.4) and the implementation optimizations
//     of Sec 5,
//   - the centralized gathering baseline (Sec 4.5),
//   - a naive key-sorting oracle used as distributional ground truth in
//     tests.
//
// The distributed samplers are SPMD: one instance runs per simulated PE and
// all instances must process their mini-batches collectively, round by
// round.
package core

import (
	"fmt"

	"reservoir/internal/costmodel"
)

// SelStrategy chooses the distributed selection algorithm used to find the
// new threshold after each mini-batch (paper Sec 3.3).
type SelStrategy int

const (
	// SelSinglePivot is the universally applicable algorithm of Sec 3.3.3
	// with one pivot per round ("ours").
	SelSinglePivot SelStrategy = iota
	// SelMultiPivot uses Config.Pivots pivots per round ("ours-d").
	SelMultiPivot
	// SelRandomDist exploits randomly distributed input (Sec 3.3.1).
	SelRandomDist
)

// String returns the paper's name for the strategy.
func (s SelStrategy) String() string {
	switch s {
	case SelSinglePivot:
		return "single-pivot"
	case SelMultiPivot:
		return "multi-pivot"
	case SelRandomDist:
		return "random-dist"
	default:
		return fmt.Sprintf("SelStrategy(%d)", int(s))
	}
}

// MarshalText implements encoding.TextMarshaler so SelStrategy round-trips
// through JSON configs (e.g. reservoir-serve).
func (s SelStrategy) MarshalText() ([]byte, error) {
	switch s {
	case SelSinglePivot, SelMultiPivot, SelRandomDist:
		return []byte(s.String()), nil
	default:
		return nil, fmt.Errorf("core: unknown selection strategy %d", int(s))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler. It accepts the
// String() names plus the paper's plot aliases ("ours", "ours-d"); the
// empty string selects SelSinglePivot.
func (s *SelStrategy) UnmarshalText(text []byte) error {
	switch string(text) {
	case "", "single-pivot", "ours":
		*s = SelSinglePivot
	case "multi-pivot", "ours-d":
		*s = SelMultiPivot
	case "random-dist":
		*s = SelRandomDist
	default:
		return fmt.Errorf("core: unknown selection strategy %q", text)
	}
	return nil
}

// Config configures a sampler.
type Config struct {
	// K is the sample size for fixed-size sampling.
	K int
	// KMin/KMax, when KMax > 0, switch the distributed sampler to
	// variable-size mode (Sec 4.4): the sample may grow to KMax before a
	// (faster, approximate) selection prunes it back to a size in
	// [KMin, KMax]. K is ignored in this mode.
	KMin, KMax int
	// Weighted selects weighted (true) or uniform (false) sampling.
	Weighted bool
	// Strategy picks the distributed selection algorithm.
	Strategy SelStrategy
	// Pivots is the number of selection pivots d for SelMultiPivot.
	Pivots int
	// LocalThreshold enables the first-batch local thresholding
	// optimization of Sec 5.
	LocalThreshold bool
	// BlockedSkip enables the 32-item blocked skip of Sec 5.
	BlockedSkip bool
	// TreeDegree overrides the local reservoir B+ tree degree (0 = default).
	TreeDegree int
	// Shards is the fixed logical shard count of the distributed
	// sampler's batch scan. 0 keeps the legacy single-stream scan
	// (byte-identical to earlier releases); >= 1 cuts every batch into
	// Shards contiguous chunks, each scanned with its own
	// domain-separated RNG substream, merged deterministically in index
	// order — the sampling stream then depends on Shards but not on
	// GOMAXPROCS, so simulator and cluster agree at any core count.
	Shards int
	// Pipeline defers each round's selection collectives into the next
	// round so a node can overlap them with the next batch's scan. The
	// scan uses the last committed threshold, which is
	// conservative-correct: a stale threshold only admits extra
	// candidates that the merge filters out (DESIGN.md §2.6). Implies
	// Shards >= 1. Only the distributed sampler honors it.
	Pipeline bool
	// Seed drives all randomness; per-PE streams are derived from it.
	Seed uint64
	// Model holds the virtual-time cost model; zero value means
	// costmodel.Default().
	Model costmodel.Model
}

// sampleCap returns the maximum sample size (K, or KMax in variable mode).
func (c Config) sampleCap() int {
	if c.KMax > 0 {
		return c.KMax
	}
	return c.K
}

// validate normalizes and checks the configuration.
func (c Config) validate() (Config, error) {
	if c.KMax > 0 {
		if c.KMin < 1 || c.KMin > c.KMax {
			return c, fmt.Errorf("core: invalid variable sample range [%d, %d]", c.KMin, c.KMax)
		}
	} else if c.K < 1 {
		return c, fmt.Errorf("core: sample size K must be >= 1, got %d", c.K)
	}
	if c.Strategy == SelMultiPivot && c.Pivots < 2 {
		c.Pivots = 8 // the paper's default d
	}
	if c.Strategy != SelMultiPivot {
		c.Pivots = 1
	}
	if c.Model == (costmodel.Model{}) {
		c.Model = costmodel.Default()
	}
	if c.Pipeline && c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 || c.Shards > maxShards {
		return c, fmt.Errorf("core: Shards must be in [0, %d], got %d", maxShards, c.Shards)
	}
	return c, nil
}

// maxShards bounds the logical shard count: shards are a determinism
// domain, not a thread count, and hundreds of per-shard RNG streams per
// PE would only bloat snapshots.
const maxShards = 256

// Timing is the per-phase virtual-time breakdown of one PE, matching the
// running time composition of the paper's Figure 6.
type Timing struct {
	// ScanNS is local batch processing: the skip scan and reservoir
	// insertions ("insert" in Figure 6).
	ScanNS float64
	// SelectNS is the distributed selection (or, for the gather baseline,
	// the root's sequential selection).
	SelectNS float64
	// ThresholdNS is the threshold all-reduce/broadcast plus the local
	// reservoir split.
	ThresholdNS float64
	// GatherNS is the candidate gathering of the centralized baseline
	// (zero for the distributed algorithm).
	GatherNS float64
}

// TotalNS returns the sum of all phases.
func (t Timing) TotalNS() float64 {
	return t.ScanNS + t.SelectNS + t.ThresholdNS + t.GatherNS
}

// Add accumulates other into t.
func (t *Timing) Add(other Timing) {
	t.ScanNS += other.ScanNS
	t.SelectNS += other.SelectNS
	t.ThresholdNS += other.ThresholdNS
	t.GatherNS += other.GatherNS
}

// Sub returns t minus other, per phase (used to isolate the steady-state
// rounds from the reservoir fill phase).
func (t Timing) Sub(other Timing) Timing {
	return Timing{
		ScanNS:      t.ScanNS - other.ScanNS,
		SelectNS:    t.SelectNS - other.SelectNS,
		ThresholdNS: t.ThresholdNS - other.ThresholdNS,
		GatherNS:    t.GatherNS - other.GatherNS,
	}
}

// Max returns the per-phase maximum of t and other (used to aggregate the
// per-PE breakdowns into a cluster-level composition).
func (t Timing) Max(other Timing) Timing {
	m := t
	if other.ScanNS > m.ScanNS {
		m.ScanNS = other.ScanNS
	}
	if other.SelectNS > m.SelectNS {
		m.SelectNS = other.SelectNS
	}
	if other.ThresholdNS > m.ThresholdNS {
		m.ThresholdNS = other.ThresholdNS
	}
	if other.GatherNS > m.GatherNS {
		m.GatherNS = other.GatherNS
	}
	return m
}

// Counters aggregates the operation counts of one PE.
type Counters struct {
	// ItemsProcessed counts all items of all batches handled by this PE.
	ItemsProcessed int64
	// Inserted counts insertions into the local reservoir (the b* of
	// Theorem 1, summed over batches), or retained candidates for the
	// gather baseline.
	Inserted int64
	// CandidateWords counts machine words shipped to the root by the
	// gather baseline.
	CandidateWords int64
	// Selections counts threshold selections; SelectionRounds sums their
	// recursion depths; GatheredSelections counts selections that finished
	// in the exact gather base case.
	Selections         int64
	SelectionRounds    int64
	GatheredSelections int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.ItemsProcessed += other.ItemsProcessed
	c.Inserted += other.Inserted
	c.CandidateWords += other.CandidateWords
	c.Selections += other.Selections
	c.SelectionRounds += other.SelectionRounds
	c.GatheredSelections += other.GatheredSelections
}
