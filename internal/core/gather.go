package core

import (
	"math"

	"reservoir/internal/btree"
	"reservoir/internal/coll"
	"reservoir/internal/costmodel"
	"reservoir/internal/quickselect"
	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// keyedItem travels from the PEs to the gather root: an item plus its key.
type keyedItem struct {
	Key  btree.Key
	Item workload.Item
}

const keyedItemWords = 4 // key (2 words) + weight + id

// threshMsg broadcasts the root's new threshold decision each round
// (package-scoped so wire.go can give it a hand-rolled codec).
type threshMsg struct {
	T    btree.Key
	Have bool
	Size int
}

// GatherPE is one PE of the centralized comparison algorithm (Sec 4.5):
// PEs filter their mini-batches against the current threshold and send the
// surviving candidates to a designated root (PE 0), which selects the k
// smallest keys sequentially, keeps those items as the sample, and
// broadcasts the new threshold. It adapts Jayaram et al.'s coordinator
// model to mini-batches.
type GatherPE struct {
	cfg   Config
	comm  *coll.Comm
	model costmodel.Model
	src   *rng.Xoshiro256

	// cands collects this batch's surviving candidates.
	cands []keyedItem
	// root state (only PE 0): the current sample.
	rootRes []keyedItem

	thresh  btree.Key
	haveT   bool
	keySeq  uint64
	size    int
	seen    int64
	timing  Timing
	counter Counters
}

var _ Sampler = (*GatherPE)(nil)

// NewGatherPE creates this PE's instance of the centralized baseline.
// The variable-size mode (Config.KMax > 0) is not supported.
func NewGatherPE(comm *coll.Comm, cfg Config) (*GatherPE, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	return &GatherPE{
		cfg:   cfg,
		comm:  comm,
		model: cfg.Model,
		src:   rng.NewXoshiro256(rng.Mix64(cfg.Seed ^ (0xd1b54a32d192ed03 * uint64(comm.Rank()+1)))),
	}, nil
}

func (pe *GatherPE) nextKeyID() uint64 {
	pe.keySeq++
	return uint64(pe.comm.Rank())<<40 | pe.keySeq
}

// ProcessBatch implements Sampler.
func (pe *GatherPE) ProcessBatch(b workload.Batch) {
	clock := pe.comm.Conn
	k := pe.cfg.K

	// Phase 1: filter the batch against the current threshold. Same key
	// machinery as the distributed sampler, but candidates go to a flat
	// array instead of a B+ tree.
	t0 := clock.Clock()
	pe.cands = pe.cands[:0]
	if !pe.haveT {
		pe.filterAll(b)
	} else if pe.cfg.Weighted {
		pe.filterWeighted(b)
	} else {
		pe.filterUniform(b)
	}
	pe.counter.ItemsProcessed += int64(b.Len())
	pe.counter.Inserted += int64(len(pe.cands))
	pe.timing.ScanNS += clock.Clock() - t0

	// Phase 2: gather candidates at the root.
	t1 := clock.Clock()
	words := len(pe.cands) * keyedItemWords
	clock.Work(pe.model.PackCostNS(words))
	pe.counter.CandidateWords += int64(words)
	parts := coll.Gather(pe.comm, 0, pe.cands, keyedItemWords)
	batchTotal := coll.AllReduce(pe.comm, b.Len(), coll.SumInt, 1)
	pe.seen += int64(batchTotal)
	pe.timing.GatherNS += clock.Clock() - t1

	// Phase 3: the root merges candidates into its reservoir and selects
	// the k smallest keys sequentially.
	t2 := clock.Clock()
	var newThresh btree.Key
	var newHave bool
	var newSize int
	if pe.comm.Rank() == 0 {
		all := pe.rootRes
		for _, p := range parts {
			all = append(all, p...)
		}
		clock.Work(pe.model.PackCostNS(len(all) * keyedItemWords))
		if len(all) > k {
			clock.Work(pe.model.QuickselectCostNS(len(all)))
			kth := quickselect.Select(all, k, func(a, b keyedItem) bool { return a.Key.Less(b.Key) }, pe.src)
			all = all[:k]
			newThresh, newHave = kth.Key, true
			newSize = k
		} else {
			if len(all) == k {
				// Exactly full: the max key is the threshold.
				var mx btree.Key
				for _, ki := range all {
					if mx.Less(ki.Key) {
						mx = ki.Key
					}
				}
				clock.Work(pe.model.QuickselectCostNS(len(all)))
				newThresh, newHave = mx, true
			}
			newSize = len(all)
		}
		pe.rootRes = all
		pe.counter.Selections++
	}
	pe.timing.SelectNS += clock.Clock() - t2

	// Phase 4: broadcast the new threshold.
	t3 := clock.Clock()
	m := coll.Broadcast(pe.comm, 0, threshMsg{T: newThresh, Have: newHave, Size: newSize}, 4)
	if m.Have {
		pe.thresh, pe.haveT = m.T, true
	}
	pe.size = m.Size
	pe.timing.ThresholdNS += clock.Clock() - t3
}

// filterAll keys every item (no threshold yet). Per Sec 4.5, a PE receiving
// more than k items in this phase only retains the k smallest-keyed ones;
// we reuse the sequential samplers for exactly that.
func (pe *GatherPE) filterAll(b workload.Batch) {
	n := b.Len()
	clock := pe.comm.Conn
	k := pe.cfg.K
	// Retain the k smallest keys with a bounded max-heap.
	var h maxHeap
	for i := 0; i < n; i++ {
		it := b.At(i)
		var v float64
		if pe.cfg.Weighted {
			v = rng.Exponential(pe.src, it.W)
		} else {
			v = rng.U01(pe.src)
		}
		if h.len() < k {
			h.push(v, it)
		} else if v < h.keys[0] {
			h.replaceMax(v, it)
		}
	}
	for i, key := range h.keys {
		pe.cands = append(pe.cands, keyedItem{
			Key:  btree.Key{V: key, ID: pe.nextKeyID()},
			Item: h.items[i],
		})
	}
	clock.Work(float64(n) * (pe.model.ScanPerItemNS(n, false) + pe.model.RNGNS))
	clock.Work(float64(len(pe.cands)) * pe.model.PackNS * keyedItemWords)
}

// filterWeighted runs the exponential-jumps skip scan, appending surviving
// items to the candidate array.
func (pe *GatherPE) filterWeighted(b workload.Batch) {
	n := b.Len()
	t := pe.thresh.V
	clock := pe.comm.Conn
	wp := grabWeights(b, n)
	ws := *wp
	draws := 1
	x := rng.Exponential(pe.src, t)
	for j := 0; j < n; j++ {
		x -= ws[j]
		if x <= 0 {
			it := b.At(j)
			xlo := math.Exp(-t * it.W)
			v := -math.Log(rng.Uniform(pe.src, xlo, 1)) / it.W
			pe.cands = append(pe.cands, keyedItem{Key: btree.Key{V: v, ID: pe.nextKeyID()}, Item: it})
			x = rng.Exponential(pe.src, t)
			draws += 2
		}
	}
	releaseWeights(wp)
	clock.Work(float64(n)*pe.model.ScanPerItemNS(n, pe.cfg.BlockedSkip) + float64(draws)*pe.model.RNGNS)
}

// filterUniform runs the geometric jumps of Sec 4.3.
func (pe *GatherPE) filterUniform(b workload.Batch) {
	n := b.Len()
	t := pe.thresh.V
	clock := pe.comm.Conn
	draws := 1
	j := rng.GeometricSkip(pe.src, t)
	for j < n {
		it := b.At(j)
		v := rng.U01CO(pe.src) * t
		pe.cands = append(pe.cands, keyedItem{Key: btree.Key{V: v, ID: pe.nextKeyID()}, Item: it})
		j += 1 + rng.GeometricSkip(pe.src, t)
		draws += 2
	}
	clock.Work(float64(draws) * pe.model.RNGNS)
}

// CollectSample implements Sampler: the sample already lives at the root.
func (pe *GatherPE) CollectSample() []workload.Item {
	if pe.comm.Rank() != 0 {
		return nil
	}
	out := make([]workload.Item, len(pe.rootRes))
	for i, ki := range pe.rootRes {
		out[i] = ki.Item
	}
	return out
}

// LocalSample implements Sampler: the whole sample lives at the root, so
// the root returns everything and the other PEs return nothing. No
// communication, no virtual-time charge.
func (pe *GatherPE) LocalSample() []workload.Item {
	if pe.comm.Rank() != 0 {
		return nil
	}
	out := make([]workload.Item, len(pe.rootRes))
	for i, ki := range pe.rootRes {
		out[i] = ki.Item
	}
	return out
}

// SampleSize implements Sampler.
func (pe *GatherPE) SampleSize() int { return pe.size }

// Seen returns the global number of items processed so far.
func (pe *GatherPE) Seen() int64 { return pe.seen }

// Threshold implements Sampler.
func (pe *GatherPE) Threshold() (float64, bool) { return pe.thresh.V, pe.haveT }

// Timing implements Sampler.
func (pe *GatherPE) Timing() Timing { return pe.timing }

// Counters implements Sampler.
func (pe *GatherPE) Counters() Counters { return pe.counter }
