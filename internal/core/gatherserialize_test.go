package core

import (
	"sync"
	"testing"

	"reservoir/internal/coll"
	"reservoir/internal/simnet"
	"reservoir/internal/workload"
)

// TestGatherPESnapshotRoundTrip: snapshot every PE of a gather cluster
// mid-run, restore into a fresh twin cluster, and continue both — the
// samples must stay byte-identical (reservoir contents, thresholds, and
// PRNG state all survive the round trip).
func TestGatherPESnapshotRoundTrip(t *testing.T) {
	const p, k, batch = 3, 24, 400
	cfg := Config{K: k, Weighted: true, Seed: 99}
	src := workload.UniformSource{Seed: 7, BatchLen: batch, Lo: 0, Hi: 100}

	run := func(preRounds, postRounds int, snapshotAt bool) ([]workload.Item, [][]byte) {
		cl := simnet.NewCluster(p, simnet.DefaultCost())
		blobs := make([][]byte, p)
		var sample []workload.Item
		var mu sync.Mutex
		cl.Parallel(func(pe *simnet.PE) {
			g, err := NewGatherPE(coll.New(pe), cfg)
			if err != nil {
				panic(err)
			}
			round := 0
			for ; round < preRounds; round++ {
				g.ProcessBatch(src.NextBatch(pe.ID(), round))
			}
			var blob []byte
			if snapshotAt {
				if blob, err = g.MarshalBinary(); err != nil {
					panic(err)
				}
				// Restore into a *fresh* PE to prove the blob is complete.
				g2, err := NewGatherPE(coll.New(pe), cfg)
				if err != nil {
					panic(err)
				}
				if err := g2.UnmarshalBinary(blob); err != nil {
					panic(err)
				}
				g = g2
			}
			for ; round < preRounds+postRounds; round++ {
				g.ProcessBatch(src.NextBatch(pe.ID(), round))
			}
			s := g.CollectSample()
			mu.Lock()
			blobs[pe.ID()] = blob
			if pe.ID() == 0 {
				sample = s
			}
			mu.Unlock()
		})
		return sample, blobs
	}

	want, _ := run(2, 3, false)
	got, blobs := run(2, 3, true)
	if len(want) != len(got) || len(want) != k {
		t.Fatalf("sample sizes: uninterrupted %d, restored %d, want %d", len(want), len(got), k)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sample[%d]: uninterrupted %+v vs restored %+v", i, want[i], got[i])
		}
	}
	for rank, b := range blobs {
		if len(b) == 0 {
			t.Fatalf("rank %d produced an empty snapshot", rank)
		}
	}

	// Corruption and rank mismatches are rejected.
	cl := simnet.NewCluster(p, simnet.DefaultCost())
	cl.Parallel(func(pe *simnet.PE) {
		g, err := NewGatherPE(coll.New(pe), cfg)
		if err != nil {
			panic(err)
		}
		other := (pe.ID() + 1) % p
		if err := g.UnmarshalBinary(blobs[other]); err == nil {
			panic("snapshot of another rank accepted")
		}
		if err := g.UnmarshalBinary(blobs[pe.ID()][:10]); err == nil {
			panic("truncated snapshot accepted")
		}
		if err := g.UnmarshalBinary(append(append([]byte(nil), blobs[pe.ID()]...), 0xA5)); err == nil {
			panic("trailing bytes accepted")
		}
	})
}
