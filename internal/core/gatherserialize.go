package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"reservoir/internal/btree"
	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// Checkpointing for the centralized baseline: like DistPE, each GatherPE
// can snapshot its local state (threshold, key counter, PRNG, and — at
// the root — the current sample) so a node of a gather cluster survives a
// crash-restart bit-identically. Virtual-time measurements and operation
// counters restart from zero on restore.

const kindGatherPE = byte(4)

// MarshalBinary snapshots this PE's sampler state.
func (pe *GatherPE) MarshalBinary() ([]byte, error) {
	rngState, err := pe.src.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: snapshot RNG state: %w", err)
	}
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(snapshotMagic)
	w(byte(snapshotVersion))
	w(kindGatherPE)
	w(uint32(pe.comm.Rank()))
	w(boolByte(pe.haveT))
	w(math.Float64bits(pe.thresh.V))
	w(pe.thresh.ID)
	w(pe.keySeq)
	w(uint64(pe.size))
	w(uint64(pe.seen))
	w(uint64(len(pe.rootRes)))
	for _, ki := range pe.rootRes {
		w(math.Float64bits(ki.Key.V))
		w(ki.Key.ID)
		w(math.Float64bits(ki.Item.W))
		w(ki.Item.ID)
	}
	w(uint64(len(rngState)))
	buf.Write(rngState)
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary on a
// freshly constructed GatherPE with the same Config and rank.
func (pe *GatherPE) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	var version, kind byte
	if err := rd(&magic); err != nil || magic != snapshotMagic {
		return fmt.Errorf("core: not a sampler snapshot")
	}
	if err := rd(&version); err != nil || version != snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", version)
	}
	if err := rd(&kind); err != nil || kind != kindGatherPE {
		return fmt.Errorf("core: snapshot kind mismatch (got %d, want %d)", kind, kindGatherPE)
	}
	var rank uint32
	if err := rd(&rank); err != nil {
		return fmt.Errorf("core: truncated snapshot: %w", err)
	}
	if int(rank) != pe.comm.Rank() {
		return fmt.Errorf("core: snapshot is for PE %d, this is PE %d", rank, pe.comm.Rank())
	}
	var haveT byte
	var threshV, threshID, keySeq, size, seen, resLen uint64
	if err := firstErr(
		rd(&haveT), rd(&threshV), rd(&threshID),
		rd(&keySeq), rd(&size), rd(&seen), rd(&resLen),
	); err != nil {
		return fmt.Errorf("core: truncated snapshot header: %w", err)
	}
	if resLen > 0 && pe.comm.Rank() != 0 {
		return fmt.Errorf("core: corrupt snapshot (non-root gather PE carries %d sample items)", resLen)
	}
	// Each sample entry is 32 bytes; a length claim the remaining input
	// cannot back is corruption, rejected before any allocation work.
	if resLen > uint64(r.Len())/32 {
		return fmt.Errorf("core: corrupt snapshot (sample claims %d entries, %d bytes remain)", resLen, r.Len())
	}
	res := make([]keyedItem, resLen)
	for i := range res {
		var kv, kid, wv, iid uint64
		if err := firstErr(rd(&kv), rd(&kid), rd(&wv), rd(&iid)); err != nil {
			return fmt.Errorf("core: truncated snapshot sample: %w", err)
		}
		res[i] = keyedItem{
			Key:  btree.Key{V: math.Float64frombits(kv), ID: kid},
			Item: workload.Item{W: math.Float64frombits(wv), ID: iid},
		}
	}
	var rngLen uint64
	if err := rd(&rngLen); err != nil || rngLen > uint64(r.Len()) {
		return fmt.Errorf("core: truncated snapshot RNG state")
	}
	rngState := make([]byte, rngLen)
	if _, err := r.Read(rngState); err != nil {
		return fmt.Errorf("core: truncated snapshot RNG state: %w", err)
	}
	src := rng.NewXoshiro256(1)
	if err := src.UnmarshalBinary(rngState); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("core: %d trailing bytes in snapshot", r.Len())
	}

	pe.haveT = haveT != 0
	pe.thresh = btree.Key{V: math.Float64frombits(threshV), ID: threshID}
	pe.keySeq = keySeq
	pe.size = int(size)
	pe.seen = int64(seen)
	pe.rootRes = res
	pe.cands = pe.cands[:0]
	pe.src = src
	pe.timing = Timing{}
	pe.counter = Counters{}
	return nil
}

// RestoreCounters reinstates persisted operation counters after an
// UnmarshalBinary (which zeroes them).
func (pe *GatherPE) RestoreCounters(c Counters) { pe.counter = c }
