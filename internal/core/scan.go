package core

import (
	"math"

	"reservoir/internal/btree"
	"reservoir/internal/parscan"
	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// Sharded, pipelinable batch scan (DESIGN.md §2.6).
//
// With Config.Shards >= 1 the skip scan of Algorithm 1 is split into a
// fixed number of logical shards: shard s scans the contiguous index
// range [s·n/S, (s+1)·n/S) of the batch with its own domain-separated
// RNG substream. Exponential and geometric skips are memoryless, so
// restarting the skip at a chunk boundary leaves the admission process
// distributionally unchanged, and concatenating the per-shard candidate
// lists in shard order recovers global index order without a sort. The
// shard count is part of the sampling stream's identity (it decides which
// stream draws which variate); the machine's core count is not — shards
// may execute on any number of OS threads with identical results.
//
// The scan is also the half of the round that needs no communication, so
// it is split off into an explicit phase: StartScan only reads the
// threshold fixed at the previous CommitScan and mutates only the shard
// streams and a candidate buffer, which lets a node overlap it with the
// still-in-flight selection collectives of the previous round
// (Config.Pipeline). A stale threshold is conservative: it can only
// admit extra candidates, which CommitScan filters against the committed
// threshold before they reach the reservoir — the admission probability
// and key distribution of the survivors match a scan against the
// committed threshold exactly (the truncated-exponential argument in
// DESIGN.md §2.6).

// cand is one scan candidate: the batch index the skip landed on and the
// key variate drawn for it.
type cand struct {
	idx int32
	v   float64
}

// ScanBuf is one round's candidate set. DistPE keeps two and alternates
// (double buffering), so a scan may fill one while the previous round's
// buffer is still being merged, without either reallocating per round.
type ScanBuf struct {
	shards [][]cand // per-shard candidates; concatenation is index order
	draws  []int64  // per-shard RNG variates drawn (virtual-time charge)
	items  []int    // per-shard chunk length
	n      int      // batch length
	mode   byte
}

const (
	// scanInsertAll: no global threshold existed at scan time; every
	// item drew a full key (the sharded analogue of insertAll).
	scanInsertAll = byte(iota)
	// scanWeighted: exponential weight skips below the scan threshold.
	scanWeighted
	// scanUniform: geometric index skips below the scan threshold.
	scanUniform
)

// shardStreamSeed domain-separates the per-(rank, shard) scan streams
// from each other and from the PE's selection stream (which mixes with a
// different constant in NewDistPE).
func shardStreamSeed(seed uint64, rank, shard int) uint64 {
	return rng.Mix64(seed ^ rng.Mix64(0xa24baed4963ee407^
		uint64(rank+1)*0x9e3779b97f4a7c15^
		uint64(shard+1)*0xd1b54a32d192ed03))
}

// nextBuf returns the next candidate buffer of the double buffer, ready
// for a fresh scan.
func (pe *DistPE) nextBuf() *ScanBuf {
	buf := pe.scanBufs[pe.scanBufIdx]
	if buf == nil {
		s := len(pe.shardSrc)
		buf = &ScanBuf{
			shards: make([][]cand, s),
			draws:  make([]int64, s),
			items:  make([]int, s),
		}
		pe.scanBufs[pe.scanBufIdx] = buf
	}
	pe.scanBufIdx ^= 1
	return buf
}

// StartScan scans batch b against the threshold fixed at the previous
// CommitScan and records the admitted candidates. It mutates only the
// per-shard scan streams and the returned buffer — never the reservoir
// tree, the selection stream, or the transport — so the caller may run
// it concurrently with FinishPending. Hand the buffer to CommitScan on
// the goroutine that owns the collectives. Only valid when Config.Shards
// >= 1.
func (pe *DistPE) StartScan(b workload.Batch) *ScanBuf {
	n := b.Len()
	buf := pe.nextBuf()
	buf.n = n
	switch {
	case !pe.scanHaveT:
		buf.mode = scanInsertAll
	case pe.cfg.Weighted:
		buf.mode = scanWeighted
	default:
		buf.mode = scanUniform
	}

	var ws []float64
	var wsP *[]float64
	if pe.cfg.Weighted {
		wsP = grabWeights(b, n)
		ws = *wsP
	}
	t := pe.scanThresh
	S := len(pe.shardSrc)
	blocked := pe.cfg.BlockedSkip
	parscan.Run(S, func(s int) {
		lo, hi := n*s/S, n*(s+1)/S
		src := pe.shardSrc[s]
		out := buf.shards[s][:0]
		var draws int64
		switch buf.mode {
		case scanInsertAll:
			if pe.cfg.Weighted {
				for i := lo; i < hi; i++ {
					out = append(out, cand{int32(i), rng.Exponential(src, ws[i])})
				}
			} else {
				for i := lo; i < hi; i++ {
					out = append(out, cand{int32(i), rng.U01(src)})
				}
			}
			draws = int64(hi - lo)
		case scanWeighted:
			out, draws = scanShardWeighted(src, ws, lo, hi, t, blocked, out)
		case scanUniform:
			out, draws = scanShardUniform(src, lo, hi, t, out)
		}
		buf.shards[s] = out
		buf.draws[s] = draws
		buf.items[s] = hi - lo
	})
	if wsP != nil {
		releaseWeights(wsP)
	}
	return buf
}

// scanShardWeighted is one shard's slice of the weighted skip scan: skip
// an Exp(t) amount of weight, record the item the skip lands on with a
// key drawn from (0, t), repeat (Algorithm 1's inner loop).
func scanShardWeighted(src *rng.Xoshiro256, ws []float64, lo, hi int, t float64, blocked bool, out []cand) ([]cand, int64) {
	var draws int64
	x := rng.Exponential(src, t)
	draws++
	j := lo
	if blocked {
		// 32-item blocks: if the whole block's weight fits in the
		// remaining skip, jump the block (Sec 5).
		const block = 32
		for j < hi {
			end := j + block
			if end > hi {
				end = hi
			}
			var sum float64
			for _, w := range ws[j:end] {
				sum += w
			}
			if x > sum {
				x -= sum
				j = end
				continue
			}
			for ; j < end; j++ {
				x -= ws[j]
				if x <= 0 {
					out = append(out, cand{int32(j), keyBelow(src, ws[j], t)})
					x = rng.Exponential(src, t)
					draws += 2
				}
			}
		}
	} else {
		for ; j < hi; j++ {
			x -= ws[j]
			if x <= 0 {
				out = append(out, cand{int32(j), keyBelow(src, ws[j], t)})
				x = rng.Exponential(src, t)
				draws += 2
			}
		}
	}
	return out, draws
}

// keyBelow draws the key of an item already determined to enter: an
// exponential variate with rate w conditioned on being below t.
func keyBelow(src *rng.Xoshiro256, w, t float64) float64 {
	xlo := math.Exp(-t * w)
	return -math.Log(rng.Uniform(src, xlo, 1)) / w
}

// scanShardUniform is one shard's slice of the uniform scan (Sec 4.3):
// geometric jumps skip whole items in O(1).
func scanShardUniform(src *rng.Xoshiro256, lo, hi int, t float64, out []cand) ([]cand, int64) {
	var draws int64
	j := lo + rng.GeometricSkip(src, t)
	draws++
	for j < hi {
		out = append(out, cand{int32(j), rng.U01CO(src) * t})
		draws += 2
		j += 1 + rng.GeometricSkip(src, t)
	}
	return out, draws
}

// FinishPending runs the deferred selection collectives of the last
// merged round, if any. Under Config.Pipeline every CommitScan defers
// its selection here; every collective entry point (the next round's
// merge, sample collection, snapshotting) drains it first. Draining
// early is stream-neutral: the next scan's threshold was already fixed
// when the round was merged, so the sampling stream is byte-identical
// whether the selection runs overlapped, at the next round, or at a
// drain point in between (DESIGN.md §2.6).
func (pe *DistPE) FinishPending() {
	if !pe.pendingSel {
		return
	}
	pe.pendingSel = false
	n := pe.pendingLen
	pe.pendingLen = 0
	pe.selectAndPrune(n)
}

// CommitScan merges a StartScan buffer into the local reservoir under
// the committed global threshold, then runs the round's selection — or,
// under Config.Pipeline, defers it to the next FinishPending so the next
// scan can overlap it. Callers must FinishPending the previous round
// first.
func (pe *DistPE) CommitScan(b workload.Batch, buf *ScanBuf) {
	clock := pe.comm.Conn
	t0 := clock.Clock()

	// Virtual scan cost: the shards run concurrently, so the elapsed
	// scan time is the slowest shard's (items touched plus variates
	// drawn); the merge below charges its tree inserts individually.
	perItem := pe.model.ScanPerItemNS(buf.n, pe.cfg.BlockedSkip && buf.mode == scanWeighted)
	var slowest float64
	for s := range buf.draws {
		c := float64(buf.items[s])*perItem + float64(buf.draws[s])*pe.model.RNGNS
		if c > slowest {
			slowest = c
		}
	}
	clock.Work(slowest)

	if !pe.haveT {
		pe.mergeInsertAll(b, buf)
	} else {
		// A candidate's key was drawn below the threshold current at
		// scan time; re-filter against the threshold committed since —
		// staleness only ever admits extras, never loses an item.
		tv := pe.thresh.V
		for _, sc := range buf.shards {
			for _, c := range sc {
				if c.v >= tv {
					continue
				}
				pe.res.Insert(btree.Key{V: c.v, ID: pe.nextKeyID()}, b.At(int(c.idx)))
				pe.counter.Inserted++
				clock.Work(pe.model.TreeOpNS(pe.res.Len()))
			}
		}
	}
	pe.counter.ItemsProcessed += int64(buf.n)
	pe.timing.ScanNS += clock.Clock() - t0

	if pe.cfg.Pipeline {
		pe.pendingSel = true
		pe.pendingLen = buf.n
	} else {
		pe.selectAndPrune(buf.n)
	}
	// The NEXT scan's threshold is fixed here, at the round's single
	// sequential point — this is what makes early FinishPending drains
	// stream-neutral.
	pe.scanThresh, pe.scanHaveT = pe.thresh.V, pe.haveT
}

// mergeInsertAll merges an insertAll-mode buffer while no global
// threshold exists, applying the Sec 5 local-thresholding optimization
// exactly as the legacy insertAll does.
func (pe *DistPE) mergeInsertAll(b workload.Batch, buf *ScanBuf) {
	n := buf.n
	cap := pe.cfg.sampleCap()
	useLocalT := pe.cfg.LocalThreshold && n >= maxInt(3*cap/2, cap+500)
	prune := maxInt(11*cap/10, cap+250)
	clock := pe.comm.Conn
	for _, sc := range buf.shards {
		for _, c := range sc {
			k := btree.Key{V: c.v, ID: pe.nextKeyID()}
			if useLocalT && pe.haveLocalT && pe.localThresh.Less(k) {
				continue
			}
			pe.res.Insert(k, b.At(int(c.idx)))
			pe.counter.Inserted++
			clock.Work(pe.model.TreeOpNS(pe.res.Len()))
			if useLocalT && pe.res.Len() > prune {
				tk, _, _ := pe.res.Select(cap)
				pe.res.SplitAtRank(cap)
				pe.localThresh, pe.haveLocalT = tk, true
				clock.Work(pe.model.TreeOpNS(pe.res.Len()) * 2)
			}
		}
	}
}
