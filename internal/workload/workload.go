// Package workload defines the input data model (weighted items arriving
// in mini-batches) and the synthetic workload generators used by the
// experiments:
//
//   - uniform random weights from (0, 100], the paper's main input
//     (Sec 6.1),
//   - skewed weights, normally distributed with the mean increasing with
//     the mini-batch number and the PE's rank (the paper's robustness
//     check),
//   - Pareto (heavy-tailed) weights for the heavy-hitter example.
//
// Batches can be materialized (SliceBatch) or synthesized on the fly from a
// counter-based generator (SynthBatch), which lets experiments process
// arbitrarily large batches in O(1) memory — the simulated analogue of
// items arriving over the network.
package workload

import (
	"math"

	"reservoir/internal/rng"
)

// Item is one weighted stream element. For uniform (unweighted) sampling
// the weight is ignored.
type Item struct {
	W  float64
	ID uint64
}

// Batch is one mini-batch of items at one PE. Implementations must be
// cheap to index repeatedly; the sampler reads items sequentially.
type Batch interface {
	Len() int
	At(i int) Item
}

// SliceBatch is a materialized batch.
type SliceBatch []Item

// Len returns the number of items.
func (b SliceBatch) Len() int { return len(b) }

// At returns the i-th item.
func (b SliceBatch) At(i int) Item { return b[i] }

// SynthBatch generates items on demand: item i has weight W(i) and ID
// IDBase+i. It is safe for concurrent use if W is.
type SynthBatch struct {
	N      int
	IDBase uint64
	W      func(i uint64) float64
	// WBulk, when non-nil, must fill dst[j] = W(base+j) for all j in one
	// call. FillWeights prefers it: a closure call per item costs about
	// twice what the generator math does, and the skip scans read every
	// weight of every batch.
	WBulk func(base uint64, dst []float64)
}

// Len returns the number of items.
func (b *SynthBatch) Len() int { return b.N }

// At returns the i-th item.
func (b *SynthBatch) At(i int) Item {
	return Item{W: b.W(uint64(i)), ID: b.IDBase + uint64(i)}
}

// FillWeights copies the weights of items [0, len(dst)) into dst. The skip
// scans spend most of their time reading weights; going through Batch.At
// costs an interface dispatch (and for SynthBatch an Item construction)
// per item, so the hot paths materialize weights into a flat slice once
// via this helper, which devirtualizes the known batch kinds.
func FillWeights(b Batch, dst []float64) {
	switch bb := b.(type) {
	case *SynthBatch:
		if bb.WBulk != nil {
			bb.WBulk(0, dst)
			return
		}
		w := bb.W
		for i := range dst {
			dst[i] = w(uint64(i))
		}
	case SliceBatch:
		for i := range dst {
			dst[i] = bb[i].W
		}
	default:
		for i := range dst {
			dst[i] = b.At(i).W
		}
	}
}

// --- weight distributions -------------------------------------------------

// UniformWeight returns a weight function drawing from (lo, hi] using the
// stateless counter generator, so batches need no storage.
func UniformWeight(seed uint64, lo, hi float64) func(i uint64) float64 {
	c := rng.Counter{Seed: seed}
	return func(i uint64) float64 {
		return lo + c.U01At(i)*(hi-lo)
	}
}

// UniformWeightBulk is the block-fill form of UniformWeight (same seed →
// identical values): the hoisted counter stream and its unrolled affine
// fill cut the per-item cost of materializing a batch's weights to
// roughly a third of the closure-per-item form. The weight fill is the
// single largest CPU consumer of a cluster node under synthetic load, so
// this loop is worth its specialization.
func UniformWeightBulk(seed uint64, lo, hi float64) func(base uint64, dst []float64) {
	cs := rng.Counter{Seed: seed}.Stream()
	scale := hi - lo
	return func(base uint64, dst []float64) {
		cs.U01AffineFill(base, dst, lo, scale)
	}
}

// NormalWeight returns a weight function drawing from N(mean, sd) truncated
// to be strictly positive (values below floor are clamped to floor).
func NormalWeight(seed uint64, mean, sd, floor float64) func(i uint64) float64 {
	c := rng.Counter{Seed: seed}
	return func(i uint64) float64 {
		// Box-Muller from two counter draws.
		u1 := c.U01At(2 * i)
		u2 := c.U01At(2*i + 1)
		w := mean + sd*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
		if w < floor {
			return floor
		}
		return w
	}
}

// ParetoWeight returns a heavy-tailed weight function: Pareto with the
// given shape, scale 1.
func ParetoWeight(seed uint64, shape float64) func(i uint64) float64 {
	c := rng.Counter{Seed: seed}
	return func(i uint64) float64 {
		return math.Pow(c.U01At(i), -1/shape)
	}
}

// --- sources ----------------------------------------------------------------

// Source produces the mini-batch for a given PE and round. Implementations
// must be safe for concurrent calls with different pe arguments.
type Source interface {
	// NextBatch returns PE pe's batch for the given round.
	NextBatch(pe, round int) Batch
}

// batchSeed derives a unique stream seed per (source, pe, round).
func batchSeed(seed uint64, pe, round int) uint64 {
	return rng.Mix64(seed ^ rng.Mix64(uint64(pe)*0x9e3779b97f4a7c15+uint64(round)))
}

// idBase gives every (pe, round) a disjoint 2^26-item ID range, so item IDs
// are globally unique for up to 2^19 PEs and 2^19 rounds.
func idBase(pe, round int) uint64 {
	return (uint64(pe)<<19 | uint64(round)) << 26
}

// UniformSource issues BatchLen items per PE per round with weights uniform
// in (Lo, Hi], the paper's primary workload (weights from 0..100).
type UniformSource struct {
	Seed     uint64
	BatchLen int
	Lo, Hi   float64
}

// NextBatch implements Source.
func (s UniformSource) NextBatch(pe, round int) Batch {
	seed := batchSeed(s.Seed, pe, round)
	return &SynthBatch{
		N:      s.BatchLen,
		IDBase: idBase(pe, round),
		W:      UniformWeight(seed, s.Lo, s.Hi),
		WBulk:  UniformWeightBulk(seed, s.Lo, s.Hi),
	}
}

// SkewedSource reproduces the paper's skewed-input check: weights are
// normally distributed with the mean increasing with both the mini-batch
// number and the PE's rank.
type SkewedSource struct {
	Seed     uint64
	BatchLen int
	BaseMean float64 // mean for PE 0, round 0
	RoundInc float64 // mean increment per round
	RankInc  float64 // mean increment per PE rank
	SD       float64
}

// NextBatch implements Source.
func (s SkewedSource) NextBatch(pe, round int) Batch {
	mean := s.BaseMean + float64(round)*s.RoundInc + float64(pe)*s.RankInc
	return &SynthBatch{
		N:      s.BatchLen,
		IDBase: idBase(pe, round),
		W:      NormalWeight(batchSeed(s.Seed, pe, round), mean, s.SD, 1e-9),
	}
}

// ParetoSource issues heavy-tailed weights (a few items dominate the total
// weight), used by the heavy-hitter example.
type ParetoSource struct {
	Seed     uint64
	BatchLen int
	Shape    float64
}

// NextBatch implements Source.
func (s ParetoSource) NextBatch(pe, round int) Batch {
	return &SynthBatch{
		N:      s.BatchLen,
		IDBase: idBase(pe, round),
		W:      ParetoWeight(batchSeed(s.Seed, pe, round), s.Shape),
	}
}

// Materialize copies a batch into a SliceBatch (used by tests and small
// examples).
func Materialize(b Batch) SliceBatch {
	out := make(SliceBatch, b.Len())
	for i := range out {
		out[i] = b.At(i)
	}
	return out
}
