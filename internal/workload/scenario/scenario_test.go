package scenario

import (
	"encoding/json"
	"math"
	"testing"

	"reservoir/internal/stats"
	"reservoir/internal/workload"
)

// collect materializes every item of rounds×p batches into one slice.
func collect(t *testing.T, src *Source, p, rounds int) []workload.Item {
	t.Helper()
	var out []workload.Item
	for round := 0; round < rounds; round++ {
		for pe := 0; pe < p; pe++ {
			b := src.NextBatch(pe, round)
			for i := 0; i < b.Len(); i++ {
				out = append(out, b.At(i))
			}
		}
	}
	return out
}

func mustSource(t *testing.T, spec Spec, seed uint64, meanLen int) *Source {
	t.Helper()
	src, err := spec.Source(seed, meanLen)
	if err != nil {
		t.Fatalf("Source(%+v): %v", spec, err)
	}
	return src
}

func TestPresetsValid(t *testing.T) {
	ps := Presets()
	if len(ps) == 0 {
		t.Fatal("no presets")
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" {
			t.Fatalf("preset without a name: %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate preset name %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
		got, ok := Preset(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("Preset(%q) round-trip failed", p.Name)
		}
	}
	names := Names()
	if len(names) != len(ps) {
		t.Fatalf("Names() has %d entries, want %d", len(names), len(ps))
	}
	for i, n := range names {
		if n != ps[i].Name {
			t.Errorf("Names()[%d] = %q, want %q (order must be canonical)", i, n, ps[i].Name)
		}
	}
	if _, ok := Preset("no_such_scenario"); ok {
		t.Error("Preset returned ok for an unknown name")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown law", Spec{Law: "cauchy"}},
		{"uniform inverted range", Spec{Law: "uniform", Lo: 10, Hi: 5}},
		{"uniform negative lo", Spec{Law: "uniform", Lo: -1, Hi: 5}},
		{"zipf negative alpha", Spec{Law: "zipf", Alpha: -1}},
		{"zipf support too small", Spec{Law: "zipf", ZipfN: 1}},
		{"pareto negative alpha", Spec{Law: "pareto", Alpha: -0.5}},
		{"lognormal negative sigma", Spec{Law: "lognormal", Sigma: -1}},
		{"unknown arrival", Spec{Arrival: "fractal"}},
		{"bursty negative shape", Spec{Arrival: "bursty", BurstShape: -1}},
		{"onoff off_level above one", Spec{Arrival: "onoff", OffLevel: 2}},
		{"onoff negative off_rounds", Spec{Arrival: "onoff", OffRounds: -1}},
		{"negative rate skew", Spec{RateSkew: -0.5}},
		{"hot_frac above one", Spec{HotFrac: 1.5, HotBoost: 2}},
		{"hot_frac without boost", Spec{HotFrac: 0.1, HotBoost: -1}},
		{"unknown drift", Spec{Drift: "brownian"}},
		{"ramp negative rate", Spec{Drift: "ramp", DriftRate: -1}},
		{"cycle rate too large", Spec{Drift: "cycle", DriftRate: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.spec.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", tc.spec)
			}
			if _, err := tc.spec.Source(1, 64); err == nil {
				t.Fatalf("Source accepted %+v", tc.spec)
			}
		})
	}
	if _, err := (Spec{}).Source(1, 0); err == nil {
		t.Fatal("Source accepted meanLen 0")
	}
	if _, err := (Spec{}).Source(1, maxBatchLen+1); err == nil {
		t.Fatal("Source accepted meanLen above the cap")
	}
}

// TestDeterministicResynthesis is the contract the WAL replay, node mode,
// and verify -match all rely on: two independently compiled sources with
// the same (spec, seed) must emit bit-identical streams, and re-requesting
// a batch must reproduce it.
func TestDeterministicResynthesis(t *testing.T) {
	for _, spec := range Presets() {
		t.Run(spec.Name, func(t *testing.T) {
			a := mustSource(t, spec, 0xDE7E12, 96)
			b := mustSource(t, spec, 0xDE7E12, 96)
			for round := 0; round < 6; round++ {
				for pe := 0; pe < 3; pe++ {
					ba, bb := a.NextBatch(pe, round), b.NextBatch(pe, round)
					if ba.Len() != bb.Len() {
						t.Fatalf("(pe=%d round=%d): lengths %d vs %d", pe, round, ba.Len(), bb.Len())
					}
					again := a.NextBatch(pe, round)
					for i := 0; i < ba.Len(); i++ {
						if ba.At(i) != bb.At(i) {
							t.Fatalf("(pe=%d round=%d item=%d): %+v vs %+v", pe, round, i, ba.At(i), bb.At(i))
						}
						if ba.At(i) != again.At(i) {
							t.Fatalf("(pe=%d round=%d item=%d): re-request diverged", pe, round, i)
						}
					}
				}
			}
		})
	}
}

func TestSeedAndStreamSeparation(t *testing.T) {
	spec := Spec{Law: "uniform"}
	a := mustSource(t, spec, 1, 64)
	b := mustSource(t, spec, 2, 64)
	if a.NextBatch(0, 0).At(0).W == b.NextBatch(0, 0).At(0).W {
		t.Error("different seeds produced the same first weight")
	}
	// Distinct (pe, round) cells must draw from distinct substreams.
	if a.NextBatch(0, 0).At(0).W == a.NextBatch(1, 0).At(0).W {
		t.Error("pe 0 and pe 1 share a weight stream")
	}
	if a.NextBatch(0, 0).At(0).W == a.NextBatch(0, 1).At(0).W {
		t.Error("round 0 and round 1 share a weight stream")
	}
}

func TestItemIDsGloballyUnique(t *testing.T) {
	src := mustSource(t, Spec{Law: "pareto", Arrival: "bursty"}, 7, 64)
	seen := map[uint64]bool{}
	for _, it := range collect(t, src, 4, 8) {
		if seen[it.ID] {
			t.Fatalf("duplicate item ID %d across batches", it.ID)
		}
		seen[it.ID] = true
	}
}

// relErr fails the test when |got-want|/want exceeds tol.
func relErr(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Errorf("%s: got %g, want %g (±%.0f%%)", what, got, want, tol*100)
	}
}

// TestLawMoments checks the empirical first moment of every weight law
// against closed-form theory. Seeds are fixed, so these are deterministic
// regression tests, not flaky statistical ones; tolerances cover the
// finite-sample error at ~50k items.
func TestLawMoments(t *testing.T) {
	const p, rounds, meanLen = 4, 8, 1600 // ~51k items per law
	mean := func(spec Spec, seed uint64) float64 {
		items := collect(t, mustSource(t, spec, seed, meanLen), p, rounds)
		sum := 0.0
		for _, it := range items {
			if !(it.W > 0) {
				t.Fatalf("non-positive weight %g in %+v", it.W, spec)
			}
			sum += it.W
		}
		return sum / float64(len(items))
	}

	// Uniform(lo, hi): mean (lo+hi)/2.
	relErr(t, "uniform mean", mean(Spec{Law: "uniform", Lo: 2, Hi: 10}, 11), 6, 0.01)

	// Zipf over {1..N}: E[R] = H(N, alpha-1)/H(N, alpha) with
	// H(N, s) = sum_{r=1..N} r^-s.
	alpha, n := 1.2, 512
	num, den := 0.0, 0.0
	for r := 1; r <= n; r++ {
		num += math.Pow(float64(r), 1-alpha)
		den += math.Pow(float64(r), -alpha)
	}
	relErr(t, "zipf mean", mean(Spec{Law: "zipf", Alpha: alpha, ZipfN: n}, 13), num/den, 0.05)

	// Pareto(alpha) with scale 1: mean alpha/(alpha-1). Shape 2.5 keeps
	// the variance finite so the empirical mean converges at this n.
	relErr(t, "pareto mean", mean(Spec{Law: "pareto", Alpha: 2.5}, 17), 2.5/1.5, 0.05)

	// Lognormal(mu, sigma): mean exp(mu + sigma^2/2).
	relErr(t, "lognormal mean", mean(Spec{Law: "lognormal", Mu: 0.5, Sigma: 0.75}, 19),
		math.Exp(0.5+0.75*0.75/2), 0.05)
}

func TestHotKeyBoostMoment(t *testing.T) {
	// A HotFrac fraction boosted by HotBoost scales the mean weight by
	// 1 + HotFrac·(HotBoost-1).
	base := Spec{Law: "uniform", Lo: 2, Hi: 10}
	hot := base
	hot.HotFrac, hot.HotBoost = 0.2, 10.0
	items := collect(t, mustSource(t, hot, 23, 1600), 4, 8)
	sum := 0.0
	for _, it := range items {
		sum += it.W
	}
	relErr(t, "hot-key boosted mean", sum/float64(len(items)), 6*(1+0.2*9), 0.05)
}

func TestDriftScalesWeights(t *testing.T) {
	// Ramp drift multiplies round r's weights by (1 + rate·r); with a
	// uniform law the per-round mean must track it.
	spec := Spec{Law: "uniform", Lo: 2, Hi: 10, Drift: "ramp", DriftRate: 0.25}
	src := mustSource(t, spec, 29, 4000)
	for _, round := range []int{0, 4, 12} {
		b := src.NextBatch(0, round)
		sum := 0.0
		for i := 0; i < b.Len(); i++ {
			sum += b.At(i).W
		}
		want := 6 * (1 + 0.25*float64(round))
		relErr(t, "ramp drift mean", sum/float64(b.Len()), want, 0.03)
	}

	// Cycle drift at round = period/2 is back at scale 1 (sin(pi) = 0),
	// and at period/4 it peaks at 1 + rate.
	cyc := Spec{Law: "uniform", Lo: 2, Hi: 10, Drift: "cycle", DriftRate: 0.5, DriftPeriod: 16}
	csrc := mustSource(t, cyc, 31, 4000)
	for _, tc := range []struct {
		round int
		scale float64
	}{{0, 1}, {4, 1.5}, {8, 1}} {
		b := csrc.NextBatch(0, tc.round)
		sum := 0.0
		for i := 0; i < b.Len(); i++ {
			sum += b.At(i).W
		}
		relErr(t, "cycle drift mean", sum/float64(b.Len()), 6*tc.scale, 0.03)
	}
}

func TestConstantArrivalAndRateSkew(t *testing.T) {
	// Constant arrivals with rate skew are exact: round(mean·(pe+1)^-skew).
	src := mustSource(t, Spec{RateSkew: 1.5}, 37, 1000)
	for pe := 0; pe < 6; pe++ {
		want := int(math.Round(1000 * math.Pow(float64(pe+1), -1.5)))
		if got := src.BatchLen(pe, 3); got != want {
			t.Errorf("BatchLen(pe=%d) = %d, want %d", pe, got, want)
		}
	}
}

func TestOnOffArrivalPhases(t *testing.T) {
	spec := Spec{Arrival: "onoff", OnRounds: 3, OffRounds: 2, OffLevel: 0.25}
	src := mustSource(t, spec, 41, 400)
	for round := 0; round < 10; round++ {
		want := 400
		if (round % 5) >= 3 {
			want = 100
		}
		if got := src.BatchLen(0, round); got != want {
			t.Errorf("round %d: BatchLen = %d, want %d", round, got, want)
		}
	}
	// PE 1 is phase-staggered by one round relative to PE 0.
	if src.BatchLen(1, 2) != src.BatchLen(0, 3) {
		t.Error("onoff phases are not staggered by rank")
	}
}

func TestPoissonArrivalMoments(t *testing.T) {
	// Poisson(mean): variance equals the mean. 512 deterministic draws.
	src := mustSource(t, Spec{Arrival: "poisson"}, 43, 64)
	var w stats.Welford
	for round := 0; round < 128; round++ {
		for pe := 0; pe < 4; pe++ {
			w.Add(float64(src.BatchLen(pe, round)))
		}
	}
	relErr(t, "poisson arrival mean", w.Mean(), 64, 0.05)
	relErr(t, "poisson arrival variance", w.Variance(), 64, 0.25)
}

// TestBurstyArrivalKS checks the realized bursty round lengths against the
// Gamma law they are drawn from: len·shape/mean ~ Gamma(shape, 1). The
// base length is large so integer rounding stays far below KS resolution.
func TestBurstyArrivalKS(t *testing.T) {
	const meanLen, shape = 4096.0, 0.5
	src := mustSource(t, Spec{Arrival: "bursty", BurstShape: shape}, 47, int(meanLen))
	var draws []float64
	for round := 0; round < 150; round++ {
		for pe := 0; pe < 4; pe++ {
			draws = append(draws, float64(src.BatchLen(pe, round))*shape/meanLen)
		}
	}
	d, p := stats.KolmogorovSmirnov(draws, func(x float64) float64 {
		return stats.GammaCDF(shape, 1, x)
	})
	if p < 1e-3 {
		t.Fatalf("bursty arrivals reject Gamma(%g): KS d=%g p=%g", shape, d, p)
	}
}

func TestWeibullArrivalKS(t *testing.T) {
	const meanLen, shape = 4096.0, 0.8
	src := mustSource(t, Spec{Arrival: "weibull", BurstShape: shape}, 53, int(meanLen))
	norm := math.Gamma(1 + 1/shape)
	var draws []float64
	for round := 0; round < 150; round++ {
		for pe := 0; pe < 4; pe++ {
			draws = append(draws, float64(src.BatchLen(pe, round))*norm/meanLen)
		}
	}
	d, p := stats.KolmogorovSmirnov(draws, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-math.Pow(x, shape))
	})
	if p < 1e-3 {
		t.Fatalf("weibull arrivals reject Weibull(%g): KS d=%g p=%g", shape, d, p)
	}
}

func TestZipfWeightsMatchLawByChiSquare(t *testing.T) {
	// Beyond the mean: the realized Zipf rank histogram must fit the full
	// r^-alpha pmf (bins merged to the expected-count-5 validity rule).
	alpha, n := 1.2, 64
	spec := Spec{Law: "zipf", Alpha: alpha, ZipfN: n}
	items := collect(t, mustSource(t, spec, 59, 1600), 4, 8)
	obs := make([]float64, n)
	for _, it := range items {
		r := int(it.W) - 1
		if r < 0 || r >= n {
			t.Fatalf("zipf weight %g outside {1..%d}", it.W, n)
		}
		obs[r]++
	}
	norm := 0.0
	for r := 1; r <= n; r++ {
		norm += math.Pow(float64(r), -alpha)
	}
	exp := make([]float64, n)
	for r := 1; r <= n; r++ {
		exp[r-1] = float64(len(items)) * math.Pow(float64(r), -alpha) / norm
	}
	stat, p, err := stats.ChiSquareMerged(obs, exp, 0, stats.MinExpectedCount)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-3 {
		t.Fatalf("zipf histogram rejects the law: chi2=%g p=%g", stat, p)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range Presets() {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != spec {
			t.Fatalf("JSON round-trip changed %s:\n  %+v\n  %+v", spec.Name, spec, back)
		}
	}
}

func TestSourceSpecAppliesDefaults(t *testing.T) {
	src := mustSource(t, Spec{}, 1, 8)
	got := src.Spec()
	if got.Law != "uniform" || got.Arrival != "constant" || got.Hi != 100 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}
