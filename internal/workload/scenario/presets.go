package scenario

// presets are the named scenarios shipped with the repo: the grid the
// acceptance harness, loadgen, and the chaos harness run over. Kept in a
// slice (not a map) so enumeration order is deterministic everywhere.
//
// Adding a preset here automatically adds it to `reservoir-verify -accept
// -scenario all`, `reservoir-loadgen -scenario all`, and the weekly CI
// acceptance matrix.
var presets = []Spec{
	{
		// The paper's own stream with Poisson round sizes: the gentlest
		// realistic cell, and the regression anchor for the others.
		Name:    "uniform_poisson",
		Law:     "uniform",
		Arrival: "poisson",
	},
	{
		// Zipf-distributed weights with 1% of items boosted 50×: the
		// hot-key pattern of content-serving traffic. Mild rank skew.
		Name:     "zipf_hot",
		Law:      "zipf",
		Alpha:    1.1,
		ZipfN:    4096,
		HotFrac:  0.01,
		HotBoost: 50,
		RateSkew: 0.5,
	},
	{
		// Pareto weights with an infinite-variance tail (alpha < 2) under
		// Gamma-bursty arrivals and strong per-rank rate skew: the
		// adversarial heavy-hitter cell.
		Name:       "pareto_burst",
		Law:        "pareto",
		Alpha:      1.3,
		Arrival:    "bursty",
		BurstShape: 0.5,
		RateSkew:   1,
	},
	{
		// Lognormal weights (multiplicative skew) with Weibull arrivals
		// and a sinusoidal weight drift: slow diurnal-style variation.
		Name:        "lognormal_drift",
		Law:         "lognormal",
		Mu:          1,
		Sigma:       1.5,
		Arrival:     "weibull",
		BurstShape:  0.8,
		Drift:       "cycle",
		DriftRate:   0.5,
		DriftPeriod: 16,
	},
	{
		// On/off phases with a 10:1 duty swing, steep rank skew, and a
		// weight ramp: rolling client cohorts warming up over time.
		Name:      "onoff_skew",
		Law:       "uniform",
		Arrival:   "onoff",
		OnRounds:  4,
		OffRounds: 4,
		OffLevel:  0.1,
		RateSkew:  1.5,
		Drift:     "ramp",
		DriftRate: 0.05,
	},
}

// Presets returns all named scenarios in their canonical order.
func Presets() []Spec {
	return append([]Spec(nil), presets...)
}

// Preset returns the named scenario, or false if no preset has that name.
func Preset(name string) (Spec, bool) {
	for _, p := range presets {
		if p.Name == name {
			return p, true
		}
	}
	return Spec{}, false
}

// Names returns the preset names in canonical order (for CLI usage text).
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.Name
	}
	return out
}
