// Package scenario is the realistic-workload engine: it composes the
// primitive generators of package workload into named, replayable stream
// scenarios — heavy-tailed weight laws (Zipf, Pareto, lognormal), bursty
// arrival processes (Poisson, Gamma, Weibull, on/off phases), per-PE
// heterogeneity (skewed rates across ranks, hot-key weight concentration),
// and time-varying drift of the weight scale.
//
// Every scenario is synthesized counter-based from (seed, pe, round, i):
// re-requesting any batch reproduces it bit-identically, so scenarios are
// usable everywhere the uniform synthetic stream is — service ingest, node
// mode, WAL replay, reservoir-verify -match — and stay replayable under the
// determinism analyzer. Batches are workload.SynthBatch values, generated
// in O(1) memory regardless of length.
//
// The statistical acceptance harness (internal/stats/accept) runs the
// samplers over these scenarios and tests the realized inclusion counts
// against theory; see DESIGN.md §7.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// maxBatchLen caps one PE's items per round. workload.SynthBatch IDs give
// every (pe, round) a disjoint 2^26-item range; staying well below that
// keeps IDs globally unique even under extreme burst draws.
const maxBatchLen = 1 << 20

// Spec is the JSON-serializable description of one scenario. The zero
// value of every optional field means "use the documented default", so
// specs stay terse on the wire (service ingest requests, sample dumps,
// WAL records all carry them verbatim).
type Spec struct {
	// Name labels the scenario in reports and dumps (presets fill it in).
	Name string `json:"name,omitempty"`

	// Law is the per-item weight distribution: "uniform" (default),
	// "zipf", "pareto", or "lognormal".
	Law string `json:"law,omitempty"`
	// Alpha is the tail exponent: Zipf's P[W=r] ∝ r^-Alpha over
	// {1..ZipfN} (default 1.2), or the Pareto shape (default 1.5).
	Alpha float64 `json:"alpha,omitempty"`
	// ZipfN is the Zipf support size (default 4096).
	ZipfN int `json:"zipf_n,omitempty"`
	// Mu/Sigma parameterize the lognormal law exp(Mu + Sigma·Z)
	// (defaults 0 and 1).
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Lo/Hi bound the uniform law (default (0, 100], the paper's range).
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`

	// Arrival modulates the number of items per PE per round around the
	// configured mean length: "constant" (default), "poisson", "bursty"
	// (Gamma-multiplied), "weibull", or "onoff" (square-wave phases).
	Arrival string `json:"arrival,omitempty"`
	// BurstShape is the Gamma/Weibull shape; values below 1 give highly
	// variable, bursty rounds (defaults: bursty 0.5, weibull 0.8).
	BurstShape float64 `json:"burst_shape,omitempty"`
	// OnRounds/OffRounds/OffLevel describe the on/off square wave: each
	// cycle is OnRounds at full rate then OffRounds at OffLevel×rate
	// (defaults 4, 4, 0.1). Phases are staggered by PE rank so the
	// cluster never goes fully quiet.
	OnRounds  int     `json:"on_rounds,omitempty"`
	OffRounds int     `json:"off_rounds,omitempty"`
	OffLevel  float64 `json:"off_level,omitempty"`

	// RateSkew skews arrival rates across ranks: PE r's mean length is
	// proportional to (r+1)^-RateSkew (0 = homogeneous).
	RateSkew float64 `json:"rate_skew,omitempty"`
	// HotFrac/HotBoost concentrate weight on a random HotFrac fraction
	// of items, whose weights are multiplied by HotBoost — the hot-key
	// pattern that dominates real traffic.
	HotFrac  float64 `json:"hot_frac,omitempty"`
	HotBoost float64 `json:"hot_boost,omitempty"`

	// Drift scales all weights by a round-varying factor: "none"
	// (default), "ramp" (1 + DriftRate·round), or "cycle"
	// (1 + DriftRate·sin(2π·round/DriftPeriod)).
	Drift       string  `json:"drift,omitempty"`
	DriftRate   float64 `json:"drift_rate,omitempty"`
	DriftPeriod int     `json:"drift_period,omitempty"`
}

// withDefaults returns the spec with every zero-valued optional field
// replaced by its documented default.
func (s Spec) withDefaults() Spec {
	if s.Law == "" {
		s.Law = "uniform"
	}
	if s.Alpha == 0 {
		if s.Law == "zipf" {
			s.Alpha = 1.2
		} else {
			s.Alpha = 1.5
		}
	}
	if s.ZipfN == 0 {
		s.ZipfN = 4096
	}
	if s.Sigma == 0 {
		s.Sigma = 1
	}
	if s.Lo == 0 && s.Hi == 0 {
		s.Lo, s.Hi = 0, 100
	}
	if s.Arrival == "" {
		s.Arrival = "constant"
	}
	if s.BurstShape == 0 {
		if s.Arrival == "weibull" {
			s.BurstShape = 0.8
		} else {
			s.BurstShape = 0.5
		}
	}
	if s.OnRounds == 0 {
		s.OnRounds = 4
	}
	if s.OffRounds == 0 {
		s.OffRounds = 4
	}
	if s.OffLevel == 0 {
		s.OffLevel = 0.1
	}
	if s.Drift == "" {
		s.Drift = "none"
	}
	if s.DriftPeriod == 0 {
		s.DriftPeriod = 16
	}
	return s
}

// Validate checks the spec (after applying defaults) and returns a
// descriptive error for anything the engine cannot synthesize.
func (s Spec) Validate() error {
	d := s.withDefaults()
	switch d.Law {
	case "uniform":
		if d.Hi <= d.Lo || d.Lo < 0 {
			return fmt.Errorf("scenario: uniform law needs 0 <= lo < hi, got (%g, %g]", d.Lo, d.Hi)
		}
	case "zipf":
		if d.Alpha <= 0 {
			return fmt.Errorf("scenario: zipf law needs alpha > 0, got %g", d.Alpha)
		}
		if d.ZipfN < 2 || d.ZipfN > 1<<22 {
			return fmt.Errorf("scenario: zipf_n must be in [2, %d], got %d", 1<<22, d.ZipfN)
		}
	case "pareto":
		if d.Alpha <= 0 {
			return fmt.Errorf("scenario: pareto law needs alpha > 0, got %g", d.Alpha)
		}
	case "lognormal":
		if d.Sigma < 0 {
			return fmt.Errorf("scenario: lognormal law needs sigma >= 0, got %g", d.Sigma)
		}
	default:
		return fmt.Errorf("scenario: unknown weight law %q (want uniform, zipf, pareto, or lognormal)", s.Law)
	}
	switch d.Arrival {
	case "constant", "poisson":
	case "bursty", "weibull":
		if d.BurstShape <= 0 {
			return fmt.Errorf("scenario: %s arrivals need burst_shape > 0, got %g", d.Arrival, d.BurstShape)
		}
	case "onoff":
		if d.OnRounds < 1 || d.OffRounds < 0 {
			return fmt.Errorf("scenario: onoff arrivals need on_rounds >= 1 and off_rounds >= 0, got %d/%d", d.OnRounds, d.OffRounds)
		}
		if d.OffLevel < 0 || d.OffLevel > 1 {
			return fmt.Errorf("scenario: off_level must be in [0, 1], got %g", d.OffLevel)
		}
	default:
		return fmt.Errorf("scenario: unknown arrival process %q (want constant, poisson, bursty, weibull, or onoff)", s.Arrival)
	}
	if d.RateSkew < 0 {
		return fmt.Errorf("scenario: rate_skew must be >= 0, got %g", d.RateSkew)
	}
	if d.HotFrac < 0 || d.HotFrac > 1 {
		return fmt.Errorf("scenario: hot_frac must be in [0, 1], got %g", d.HotFrac)
	}
	if d.HotFrac > 0 && d.HotBoost <= 0 {
		return fmt.Errorf("scenario: hot_frac > 0 needs hot_boost > 0, got %g", d.HotBoost)
	}
	switch d.Drift {
	case "none":
	case "ramp":
		if d.DriftRate < 0 {
			return fmt.Errorf("scenario: ramp drift needs drift_rate >= 0, got %g", d.DriftRate)
		}
	case "cycle":
		if math.Abs(d.DriftRate) >= 1 {
			return fmt.Errorf("scenario: cycle drift needs |drift_rate| < 1 (weights must stay positive), got %g", d.DriftRate)
		}
		if d.DriftPeriod < 2 {
			return fmt.Errorf("scenario: cycle drift needs drift_period >= 2, got %d", d.DriftPeriod)
		}
	default:
		return fmt.Errorf("scenario: unknown drift %q (want none, ramp, or cycle)", s.Drift)
	}
	return nil
}

// Source compiles the spec into a workload.Source whose batches derive
// deterministically from (seed, pe, round, i). meanLen is the target mean
// items per PE per round before per-PE skew and arrival modulation.
func (s Spec) Source(seed uint64, meanLen int) (*Source, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if meanLen < 1 || meanLen > maxBatchLen {
		return nil, fmt.Errorf("scenario: mean batch length must be in [1, %d], got %d", maxBatchLen, meanLen)
	}
	src := &Source{spec: s.withDefaults(), seed: seed, meanLen: meanLen}
	if src.spec.Law == "zipf" {
		src.zipfCum = zipfCumulative(src.spec.ZipfN, src.spec.Alpha)
	}
	return src, nil
}

// Source is a compiled scenario. It is safe for concurrent NextBatch calls
// with different pe arguments (all state is immutable after compilation).
type Source struct {
	spec    Spec
	seed    uint64
	meanLen int
	zipfCum []float64 // normalized Zipf CDF (nil unless law == "zipf")
}

// Spec returns the compiled spec with defaults applied.
func (s *Source) Spec() Spec { return s.spec }

// Domain-separation constants for the independent random substreams one
// (pe, round) consumes. Weights, hot-key marks, and arrival draws must not
// share a stream: reading one would shift the others.
const (
	domainWeight  = 0x77656967 // "weig"
	domainHot     = 0x686f746b // "hotk"
	domainArrival = 0x61727276 // "arrv"
)

// subSeed derives the seed of one substream of one (pe, round).
func (s *Source) subSeed(domain uint64, pe, round int) uint64 {
	x := s.seed ^ rng.Mix64(domain)
	x = rng.Mix64(x ^ rng.Mix64(uint64(pe)*0x9e3779b97f4a7c15+uint64(round)))
	return x
}

// idBase mirrors workload.idBase: every (pe, round) owns a disjoint
// 2^26-item ID range (globally unique for up to 2^19 PEs and 2^19 rounds).
func idBase(pe, round int) uint64 {
	return (uint64(pe)<<19 | uint64(round)) << 26
}

// NextBatch implements workload.Source. The batch is a SynthBatch: items
// are recomputed on demand from the counter streams, never stored.
func (s *Source) NextBatch(pe, round int) workload.Batch {
	w := s.weightFn(pe, round)
	return &workload.SynthBatch{
		N:      s.BatchLen(pe, round),
		IDBase: idBase(pe, round),
		W:      w,
	}
}

// BatchLen returns the deterministic arrival draw for (pe, round): the
// number of items PE pe receives in that round. Exported so tests can
// KS-test the realized arrival process against its own law.
func (s *Source) BatchLen(pe, round int) int {
	base := float64(s.meanLen) * s.peRate(pe)
	var l float64
	switch s.spec.Arrival {
	case "constant":
		l = base
	case "poisson":
		str := rng.NewSplitMix64(s.subSeed(domainArrival, pe, round))
		l = float64(poisson(str, base))
	case "bursty":
		str := rng.NewSplitMix64(s.subSeed(domainArrival, pe, round))
		// Gamma(shape)/shape has mean 1; shape < 1 concentrates the mass
		// near 0 with a heavy upper tail — occasional huge rounds.
		l = base * gamma(str, s.spec.BurstShape) / s.spec.BurstShape
	case "weibull":
		str := rng.NewSplitMix64(s.subSeed(domainArrival, pe, round))
		// Weibull(shape) normalized by Γ(1+1/shape) has mean 1.
		l = base * weibull(str, s.spec.BurstShape) / math.Gamma(1+1/s.spec.BurstShape)
	case "onoff":
		// Square wave, phase-staggered by rank so PEs don't burst in
		// lockstep unless the stagger divides the cycle.
		cycle := s.spec.OnRounds + s.spec.OffRounds
		phase := (round + pe) % cycle
		if phase < s.spec.OnRounds {
			l = base
		} else {
			l = base * s.spec.OffLevel
		}
	}
	n := int(math.Round(l))
	if n < 0 {
		n = 0
	}
	if n > maxBatchLen {
		n = maxBatchLen
	}
	return n
}

// peRate is the per-rank arrival-rate multiplier: (pe+1)^-RateSkew. Rank 0
// is the hottest client; higher ranks tail off polynomially.
func (s *Source) peRate(pe int) float64 {
	if s.spec.RateSkew == 0 {
		return 1
	}
	return math.Pow(float64(pe+1), -s.spec.RateSkew)
}

// driftScale is the round-varying weight multiplier.
func (s *Source) driftScale(round int) float64 {
	switch s.spec.Drift {
	case "ramp":
		return 1 + s.spec.DriftRate*float64(round)
	case "cycle":
		return 1 + s.spec.DriftRate*math.Sin(2*math.Pi*float64(round)/float64(s.spec.DriftPeriod))
	default:
		return 1
	}
}

// weightFn builds the stateless per-item weight function of (pe, round):
// law draw × hot-key boost × drift scale, each from its own counter
// substream so item i's weight is a pure function of (seed, pe, round, i).
func (s *Source) weightFn(pe, round int) func(i uint64) float64 {
	law := s.lawFn(pe, round)
	scale := s.driftScale(round)
	if s.spec.HotFrac <= 0 {
		return func(i uint64) float64 { return law(i) * scale }
	}
	hot := rng.Counter{Seed: s.subSeed(domainHot, pe, round)}
	frac, boost := s.spec.HotFrac, s.spec.HotBoost
	return func(i uint64) float64 {
		w := law(i) * scale
		if hot.U01At(i) <= frac {
			w *= boost
		}
		return w
	}
}

// lawFn is the raw weight-law draw for one (pe, round) stream.
func (s *Source) lawFn(pe, round int) func(i uint64) float64 {
	c := rng.Counter{Seed: s.subSeed(domainWeight, pe, round)}
	switch s.spec.Law {
	case "uniform":
		lo, hi := s.spec.Lo, s.spec.Hi
		return func(i uint64) float64 { return lo + c.U01At(i)*(hi-lo) }
	case "zipf":
		cum := s.zipfCum
		return func(i uint64) float64 {
			// Inverse-CDF draw: the rank r with cum[r-1] >= u.
			u := c.U01At(i)
			r := sort.SearchFloat64s(cum, u)
			return float64(r + 1)
		}
	case "pareto":
		inv := -1 / s.spec.Alpha
		return func(i uint64) float64 { return math.Pow(c.U01At(i), inv) }
	case "lognormal":
		mu, sigma := s.spec.Mu, s.spec.Sigma
		return func(i uint64) float64 {
			// Box-Muller from two counter draws, as workload.NormalWeight.
			u1 := c.U01At(2 * i)
			u2 := c.U01At(2*i + 1)
			z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
			return math.Exp(mu + sigma*z)
		}
	default:
		// Unreachable: Source() validated the law.
		panic("scenario: uncompiled weight law " + s.spec.Law)
	}
}

// zipfCumulative precomputes the normalized CDF of P[R=r] ∝ r^-alpha over
// r ∈ {1..n}. One table per compiled source, shared by every batch.
func zipfCumulative(n int, alpha float64) []float64 {
	cum := make([]float64, n)
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += math.Pow(float64(r), -alpha)
		cum[r-1] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	// Guard against floating-point shortfall at the top: U01At can return
	// exactly 1, which must map to the last rank.
	cum[n-1] = 1
	return cum
}
