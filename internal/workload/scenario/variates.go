package scenario

import (
	"math"

	"reservoir/internal/rng"
)

// Sequential variates for the arrival processes. Each (pe, round) draws
// from its own freshly seeded substream (see Source.subSeed), so a
// variable number of underlying uniforms per draw cannot leak state
// between batches — the draw stays a pure function of (seed, pe, round).

// poisson draws a Poisson(mean) variate by Knuth's product-of-uniforms
// method, chunked so exp(-mean) never underflows: Poisson(a+b) is the sum
// of independent Poisson(a) and Poisson(b).
func poisson(src rng.Source, mean float64) int {
	const chunk = 100
	n := 0
	for mean > 0 {
		m := mean
		if m > chunk {
			m = chunk
		}
		mean -= m
		limit := math.Exp(-m)
		prod := 1.0
		for {
			prod *= rng.U01(src)
			if prod <= limit {
				break
			}
			n++
		}
	}
	return n
}

// gamma draws a Gamma(shape, 1) variate via Marsaglia–Tsang; shapes below
// 1 use the boost G(a) = G(a+1)·U^{1/a}.
func gamma(src rng.Source, shape float64) float64 {
	if shape < 1 {
		return gamma(src, shape+1) * math.Pow(rng.U01(src), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.Normal(src, 0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.U01(src)
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// weibull draws a Weibull(shape, scale 1) variate by inversion.
func weibull(src rng.Source, shape float64) float64 {
	return math.Pow(-math.Log(rng.U01(src)), 1/shape)
}
