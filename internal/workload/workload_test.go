package workload

import (
	"math"
	"testing"

	"reservoir/internal/stats"
)

func TestSliceBatch(t *testing.T) {
	b := SliceBatch{{W: 1, ID: 10}, {W: 2, ID: 11}}
	if b.Len() != 2 || b.At(1).W != 2 || b.At(0).ID != 10 {
		t.Fatalf("SliceBatch accessors broken: %+v", b)
	}
}

func TestSynthBatchDeterministic(t *testing.T) {
	b := &SynthBatch{N: 100, IDBase: 1 << 30, W: UniformWeight(1, 0, 100)}
	if b.Len() != 100 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < b.Len(); i++ {
		a1, a2 := b.At(i), b.At(i)
		if a1 != a2 {
			t.Fatalf("item %d not deterministic", i)
		}
		if a1.ID != uint64(1<<30)+uint64(i) {
			t.Fatalf("item %d has ID %d", i, a1.ID)
		}
	}
}

func TestUniformWeightRangeAndMean(t *testing.T) {
	w := UniformWeight(7, 0, 100)
	var acc stats.Welford
	for i := uint64(0); i < 100000; i++ {
		v := w(i)
		if !(v > 0 && v <= 100) {
			t.Fatalf("weight out of (0,100]: %v", v)
		}
		acc.Add(v)
	}
	if math.Abs(acc.Mean()-50) > 1 {
		t.Errorf("uniform weight mean = %v, want ~50", acc.Mean())
	}
}

func TestNormalWeightMoments(t *testing.T) {
	w := NormalWeight(9, 40, 5, 1e-9)
	var acc stats.Welford
	for i := uint64(0); i < 100000; i++ {
		v := w(i)
		if v <= 0 {
			t.Fatalf("non-positive weight %v", v)
		}
		acc.Add(v)
	}
	if math.Abs(acc.Mean()-40) > 0.5 {
		t.Errorf("normal weight mean = %v, want ~40", acc.Mean())
	}
	if math.Abs(acc.StdDev()-5) > 0.3 {
		t.Errorf("normal weight sd = %v, want ~5", acc.StdDev())
	}
}

func TestNormalWeightFloor(t *testing.T) {
	w := NormalWeight(9, 0, 1, 0.5)
	for i := uint64(0); i < 10000; i++ {
		if w(i) < 0.5 {
			t.Fatalf("floor violated at %d", i)
		}
	}
}

func TestParetoWeightTail(t *testing.T) {
	w := ParetoWeight(11, 1.5)
	over := 0
	const n = 100000
	for i := uint64(0); i < n; i++ {
		v := w(i)
		if v < 1 {
			t.Fatalf("Pareto weight below 1: %v", v)
		}
		if v > 4 {
			over++
		}
	}
	// P[X > 4] = 4^-1.5 = 0.125.
	got := float64(over) / n
	if math.Abs(got-0.125) > 0.01 {
		t.Errorf("Pareto tail = %v, want ~0.125", got)
	}
}

func TestSourcesProduceDistinctIDs(t *testing.T) {
	src := UniformSource{Seed: 1, BatchLen: 50, Lo: 0, Hi: 100}
	seen := map[uint64]bool{}
	for pe := 0; pe < 4; pe++ {
		for round := 0; round < 4; round++ {
			b := src.NextBatch(pe, round)
			for i := 0; i < b.Len(); i++ {
				id := b.At(i).ID
				if seen[id] {
					t.Fatalf("duplicate ID %d (pe=%d round=%d i=%d)", id, pe, round, i)
				}
				seen[id] = true
			}
		}
	}
}

func TestSourcesDeterministicAcrossCalls(t *testing.T) {
	for _, src := range []Source{
		UniformSource{Seed: 5, BatchLen: 20, Lo: 0, Hi: 10},
		SkewedSource{Seed: 5, BatchLen: 20, BaseMean: 10, RoundInc: 1, RankInc: 2, SD: 3},
		ParetoSource{Seed: 5, BatchLen: 20, Shape: 2},
	} {
		a := Materialize(src.NextBatch(3, 7))
		b := Materialize(src.NextBatch(3, 7))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%T not deterministic at %d", src, i)
			}
		}
	}
}

func TestSkewedSourceMeanGrowth(t *testing.T) {
	src := SkewedSource{Seed: 1, BatchLen: 20000, BaseMean: 10, RoundInc: 5, RankInc: 2, SD: 1}
	meanOf := func(pe, round int) float64 {
		b := src.NextBatch(pe, round)
		var acc stats.Welford
		for i := 0; i < b.Len(); i++ {
			acc.Add(b.At(i).W)
		}
		return acc.Mean()
	}
	m00 := meanOf(0, 0)
	m04 := meanOf(0, 4)
	m30 := meanOf(3, 0)
	if math.Abs(m00-10) > 0.5 {
		t.Errorf("base mean = %v, want ~10", m00)
	}
	if math.Abs(m04-30) > 0.5 {
		t.Errorf("round-4 mean = %v, want ~30", m04)
	}
	if math.Abs(m30-16) > 0.5 {
		t.Errorf("rank-3 mean = %v, want ~16", m30)
	}
}

func TestMaterialize(t *testing.T) {
	b := &SynthBatch{N: 10, IDBase: 0, W: UniformWeight(3, 1, 2)}
	m := Materialize(b)
	if m.Len() != 10 {
		t.Fatalf("materialized length %d", m.Len())
	}
	for i := 0; i < 10; i++ {
		if m.At(i) != b.At(i) {
			t.Fatalf("materialized item %d differs", i)
		}
	}
}

// FillWeights must agree exactly with Batch.At for every batch kind — the
// skip scans read weights through it while inserts still go through At,
// and any divergence would silently corrupt the sample.
func TestFillWeightsMatchesAt(t *testing.T) {
	batches := map[string]Batch{
		"slice": SliceBatch{{W: 1.5, ID: 1}, {W: -0.0, ID: 2}, {W: 3, ID: 3}},
		"uniform-bulk": UniformSource{Seed: 7, BatchLen: 1000, Lo: 0, Hi: 100}.
			NextBatch(2, 5),
		"synth-no-bulk": &SynthBatch{N: 500, W: UniformWeight(9, 1, 2)},
	}
	for name, b := range batches {
		dst := make([]float64, b.Len())
		FillWeights(b, dst)
		for i := range dst {
			if got, want := dst[i], b.At(i).W; math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: weight %d = %v via FillWeights, %v via At", name, i, got, want)
			}
		}
	}
}
