package analysis_test

import (
	"testing"

	"reservoir/internal/analysis"
	"reservoir/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	results := analysistest.Run(t, "testdata/src", analysis.Determinism,
		"core/flagged", "core/clean", "core/waived", "plain")

	flagged, clean, waived, plain := results[0], results[1], results[2], results[3]
	if n := len(flagged.Diagnostics); n != 5 {
		t.Errorf("core/flagged: want 5 diagnostics, got %d", n)
	}
	if n := len(clean.Diagnostics); n != 0 {
		t.Errorf("core/clean: want 0 diagnostics, got %d: %v", n, clean.Diagnostics)
	}
	if n := len(waived.Waivers); n != 2 {
		t.Errorf("core/waived: want 2 used waivers in the census, got %d: %v", n, waived.Waivers)
	}
	if n := len(waived.Unused); n != 1 {
		t.Errorf("core/waived: want 1 stale waiver, got %d", n)
	}
	if n := len(plain.Diagnostics); n != 0 {
		t.Errorf("plain: out-of-scope package must produce no diagnostics, got %d", n)
	}
}
