package analysis

import (
	"go/ast"
	"go/types"
)

// deterministicScope lists the path segments of packages whose every
// sampling decision must be a pure function of (seed, inputs): the paper's
// correctness argument (and the simnet/tcpnet byte-equivalence suite, and
// crash-restart replay) assumes every PE makes identical pseudo-random
// decisions given the same seed.
var deterministicScope = []string{
	"core", "coll", "distsel", "rng", "workload", "quickselect", "btree", "simnet",
	"parscan",
}

// wallClockFuncs are the package-level time functions that read the wall
// clock (or schedule on it). time.Duration arithmetic and constants are
// fine; observing real time is not.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// randConstructors are the math/rand functions that build explicitly
// seeded local state — the sanctioned way to draw random numbers in the
// deterministic packages. Every other package-level rand function draws
// from the process-global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism forbids, inside the deterministic packages, the four ways
// nondeterminism sneaks past example-based tests: wall-clock reads,
// global math/rand state, map iteration (order differs per process, so
// any map range that can reach a sampling decision or encoded output
// diverges a cluster), and goroutine spawns off the worker-owned path.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, global math/rand, map iteration, and goroutine " +
		"spawns in the deterministic sampling packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !hasSegment(pass.PkgPath, deterministicScope...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; "+
							"iterate a sorted key slice (or waive if order provably cannot reach a sampling decision or encoded output)")
					}
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in a deterministic package; "+
					"sampling state must stay owned by one worker goroutine")
			}
			return true
		})
	}
	return nil
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch pkgPathOf(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; deterministic packages must take time (if any) as an input", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "%s.%s draws from the process-global random source; use an explicitly seeded *rand.Rand", pkgPathOf(fn), fn.Name())
		}
	}
}
