package analysis

import (
	"go/ast"
	"go/types"
)

// faultPanicScope lists the path segments of the cluster-facing packages
// where recover() is how transport faults reach the resync machinery.
// ("reservoir" covers the module root package: Cluster and Node.)
var faultPanicScope = []string{
	"reservoir", "nodesvc", "coll", "core", "distsel",
	"simnet", "tcpnet", "faultnet", "transport",
}

// faultCheckFuncs are the transport helpers that classify a recovered
// panic value. A recover() body that calls one of them (or type-asserts
// against transport.Fault directly) is doing the mandated triage.
var faultCheckFuncs = map[string]bool{
	"AsFault": true, "IsTransportPanic": true,
}

// FaultPanic enforces the fault-recovery triage rule: cluster code that
// calls recover() must type-check the recovered value against
// transport.Fault (via transport.AsFault / transport.IsTransportPanic or
// a direct type assertion) and re-panic everything else. A blanket
// recover that converts any panic into an error return would swallow
// real bugs — a nil dereference in the sampler would present as a
// routine transport failure and be "recovered" from, silently corrupting
// the run instead of crashing it.
var FaultPanic = &Analyzer{
	Name: "faultpanic",
	Doc: "recover() in cluster code must type-check for transport.Fault " +
		"and re-panic non-fault panics",
	Run: runFaultPanic,
}

func runFaultPanic(pass *Pass) error {
	if !hasSegment(pass.PkgPath, faultPanicScope...) {
		return nil
	}
	for _, file := range pass.Files {
		// Map each function node to the facts faultpanic needs about its
		// body, then judge every recover() against its enclosing function.
		type funcFacts struct {
			recovers []*ast.CallExpr
			triages  bool // calls AsFault/IsTransportPanic or asserts transport.Fault
			repanics bool // contains a panic(...) call
		}
		facts := make(map[ast.Node]*funcFacts)
		factsFor := func(fn ast.Node) *funcFacts {
			f := facts[fn]
			if f == nil {
				f = &funcFacts{}
				facts[fn] = f
			}
			return f
		}
		walkFuncs(file, func(fn ast.Node, n ast.Node) {
			if fn == nil {
				return
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				switch {
				case isBuiltin(pass.TypesInfo, n, "recover"):
					factsFor(fn).recovers = append(factsFor(fn).recovers, n)
				case isBuiltin(pass.TypesInfo, n, "panic"):
					factsFor(fn).repanics = true
				default:
					if callee := calleeFunc(pass.TypesInfo, n); callee != nil &&
						faultCheckFuncs[callee.Name()] && hasSegment(pkgPathOf(callee), "transport") {
						factsFor(fn).triages = true
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type != nil && isTransportFaultType(pass.TypesInfo, n.Type) {
					factsFor(fn).triages = true
				}
			case *ast.CaseClause: // type-switch cases
				for _, expr := range n.List {
					if isTransportFaultType(pass.TypesInfo, expr) {
						factsFor(fn).triages = true
					}
				}
			}
		})
		for _, f := range facts {
			for _, rec := range f.recovers {
				switch {
				case !f.triages:
					pass.Reportf(rec.Pos(), "recover() without a transport.Fault check: "+
						"classify the panic with transport.AsFault/IsTransportPanic (or a type assertion) and re-panic real bugs")
				case !f.repanics:
					pass.Reportf(rec.Pos(), "recover() classifies the panic but never re-panics: "+
						"non-fault panics are real bugs and must propagate")
				}
			}
		}
	}
	return nil
}

// isTransportFaultType reports whether the type expression names the
// transport Fault interface or a concrete transport error type
// (FaultError, FatalError), possibly through a pointer.
func isTransportFaultType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !hasSegment(obj.Pkg().Path(), "transport", "tcpnet", "faultnet") {
		return false
	}
	switch obj.Name() {
	case "Fault", "FaultError", "FatalError":
		return true
	}
	return false
}
