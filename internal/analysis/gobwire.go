package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// collectivePayloadArg maps the collective functions of internal/coll
// (and the module root's BroadcastValue wrapper) to the index of their
// payload argument.
var collectivePayloadArg = map[string]int{
	"Broadcast":      2, // Broadcast(c, root, val, words)
	"Reduce":         2, // Reduce(c, root, val, op, words)
	"AllReduce":      1, // AllReduce(c, val, op, words)
	"Gather":         2, // Gather(c, root, items, wordsPerItem)
	"AllGather":      1, // AllGather(c, items, wordsPerItem)
	"BroadcastValue": 2, // BroadcastValue(node, root, val, words)
}

// GobWire checks every payload that can cross a wire transport — the
// payload argument of transport Conn.Send / SendCtrl calls and of the
// collectives — for the two silent gob failure modes PR 4 hit: struct
// fields that are unexported (gob drops them without error, so the
// simulator — which passes references — agrees with itself while the
// real network loses data) and named payload types sent point-to-point
// without a gob registration (the collectives self-register via
// transport.RegisterType at operation entry; direct Send callers must
// register in their own package).
var GobWire = &Analyzer{
	Name: "gobwire",
	Doc: "transport payload types must have exported fields and, for " +
		"direct sends, a gob registration in the sending package",
	Run: runGobWire,
}

func runGobWire(pass *Pass) error {
	conn := lookupTransportConn(pass.Pkg)

	// Named types this package registers for the wire (via
	// transport.Register, transport.RegisterType, encoding/gob.Register,
	// or a transport.RegisterMarshaler wire codec — a codec-registered
	// type needs no gob registration, the fast path decodes it).
	registered := findRegisteredTypes(pass)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			payload, direct := payloadArg(pass.TypesInfo, call, conn)
			if payload == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[payload]
			if !ok || tv.Type == nil {
				return true
			}
			t := tv.Type
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				return true // dynamic payload: cannot check statically
			}
			checkExportedFields(pass, payload.Pos(), t)
			if direct {
				checkRegistered(pass, payload.Pos(), t, registered)
			}
			return true
		})
	}
	return nil
}

// payloadArg returns the payload expression of a wire-crossing call and
// whether it is a direct point-to-point send (which needs an explicit
// registration, unlike the self-registering collectives).
func payloadArg(info *types.Info, call *ast.CallExpr, conn *types.Interface) (ast.Expr, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, false
	}
	if idx, ok := collectivePayloadArg[fn.Name()]; ok &&
		hasSegment(pkgPathOf(fn), "coll", "reservoir") && len(call.Args) > idx {
		return call.Args[idx], false
	}
	if isMethodNamed(fn, "Send") && len(call.Args) == 4 {
		recv := receiverType(info, call)
		if recv != nil && implementsConn(recv, conn) {
			return call.Args[2], true
		}
	}
	if isMethodNamed(fn, "SendCtrl") && len(call.Args) == 3 {
		return call.Args[1], true
	}
	return nil, false
}

// checkExportedFields walks the payload type (through slices, arrays,
// maps, pointers, and nested structs) and flags unexported struct fields
// gob would silently drop. Types that implement their own wire encoding
// (GobEncoder / BinaryMarshaler) are skipped: gob never sees their
// fields.
func checkExportedFields(pass *Pass, pos token.Pos, t types.Type) {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if seen[t] {
			return
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok && selfEncoding(named) {
			return
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				f := u.Field(i)
				if !f.Exported() && !f.Embedded() {
					pass.Reportf(pos, "payload type %s has unexported field %q: gob silently drops it, "+
						"so the wire transport diverges from the by-reference simulator", typeName(t), f.Name())
					continue
				}
				walk(f.Type())
			}
		case *types.Slice:
			walk(u.Elem())
		case *types.Array:
			walk(u.Elem())
		case *types.Pointer:
			walk(u.Elem())
		case *types.Map:
			walk(u.Key())
			walk(u.Elem())
		}
	}
	walk(t)
}

// selfEncoding reports whether the type (or its pointer) provides its
// own gob wire format.
func selfEncoding(named *types.Named) bool {
	for _, t := range []types.Type{named, types.NewPointer(named)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "GobEncode", "MarshalBinary":
				return true
			}
		}
	}
	return false
}

// checkRegistered flags named payload types sent point-to-point without
// a gob registration in the sending package. Unnamed basic types (int,
// string, ...) are pre-registered by gob itself.
func checkRegistered(pass *Pass, pos token.Pos, t types.Type, registered map[string]bool) {
	base := t
	if p, ok := base.(*types.Pointer); ok {
		base = p.Elem()
	}
	named, ok := base.(*types.Named)
	if !ok {
		return
	}
	if _, isBasic := named.Underlying().(*types.Basic); isBasic {
		return // gob encodes named basics via their kind
	}
	if !registered[named.Obj().Name()] {
		pass.Reportf(pos, "payload type %s is sent point-to-point but never gob-registered in this "+
			"package: wire transports cannot decode it (call transport.Register at init or before the first send)",
			typeName(base))
	}
}

// findRegisteredTypes scans the package for transport.Register /
// transport.RegisterType / transport.RegisterMarshaler / gob.Register
// calls and returns the names of the named types they mention (for
// RegisterMarshaler, the codec's type argument).
func findRegisteredTypes(pass *Pass) map[string]bool {
	registered := make(map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			isReg := (fn.Name() == "Register" || fn.Name() == "RegisterType" || fn.Name() == "RegisterMarshaler") &&
				(hasSegment(pkgPathOf(fn), "transport") || pkgPathOf(fn) == "encoding/gob")
			if !isReg {
				return true
			}
			// Value form: Register(resyncMsg{}) / Register(&T{}) — take the
			// argument's named type. Type-argument form: RegisterType[T]().
			for _, arg := range call.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil {
					collectNamed(tv.Type, registered)
				}
			}
			if ix, ok := instanceTypeArgs(pass.TypesInfo, call); ok {
				for _, t := range ix {
					collectNamed(t, registered)
				}
			}
			return true
		})
	}
	return registered
}

// collectNamed records the names of all named types reachable from t
// (through pointers, slices, and one level of composites).
func collectNamed(t types.Type, out map[string]bool) {
	seen := make(map[types.Type]bool)
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			out[named.Obj().Name()] = true
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			walk(u.Elem())
		case *types.Slice:
			walk(u.Elem())
		case *types.Array:
			walk(u.Elem())
		case *types.Map:
			walk(u.Key())
			walk(u.Elem())
		}
	}
	walk(t)
}

// instanceTypeArgs returns the type arguments of a generic call like
// RegisterType[T]().
func instanceTypeArgs(info *types.Info, call *ast.CallExpr) ([]types.Type, bool) {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.IndexExpr:
		return instanceTypeArgsOf(info, f.X)
	case *ast.IndexListExpr:
		return instanceTypeArgsOf(info, f.X)
	}
	if id == nil {
		return nil, false
	}
	inst, ok := info.Instances[id]
	if !ok || inst.TypeArgs == nil {
		return nil, false
	}
	return typeList(inst.TypeArgs), true
}

func instanceTypeArgsOf(info *types.Info, x ast.Expr) ([]types.Type, bool) {
	var id *ast.Ident
	switch f := ast.Unparen(x).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	}
	if id == nil {
		return nil, false
	}
	inst, ok := info.Instances[id]
	if !ok || inst.TypeArgs == nil {
		return nil, false
	}
	return typeList(inst.TypeArgs), true
}

func typeList(l *types.TypeList) []types.Type {
	out := make([]types.Type, l.Len())
	for i := range out {
		out[i] = l.At(i)
	}
	return out
}

// typeName renders a type compactly for diagnostics.
func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
