// Package analysistest runs an analyzer over GOPATH-style fixture
// packages (testdata/src/<importpath>/*.go) and checks its diagnostics
// against `// want "regexp"` comments in the fixture source — the same
// contract as golang.org/x/tools/go/analysis/analysistest, implemented
// on the repo's dependency-free analysis framework.
//
// Each `// want` comment expects one diagnostic on its line whose
// message matches the double-quoted regular expression; several
// expectations may share one comment (`// want "a" "b"`). Lines without
// a want comment must produce no diagnostic. Fixtures may import other
// fixture packages by their path under src/ (stubs for transport, store,
// ...) and the standard library.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"reservoir/internal/analysis"
)

// Result is one fixture package's outcome, exposed so tests can make
// extra assertions (waiver census, zero-diagnostic cleanliness).
type Result = analysis.PackageResult

// Run loads each fixture package under srcRoot, applies the analyzer,
// and reports mismatches against the fixtures' want comments on t. It
// returns the per-package results in pkgpaths order.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgpaths ...string) []*Result {
	t.Helper()
	fset := token.NewFileSet()
	imp := analysis.NewFixtureImporter(srcRoot, fset)
	var results []*Result
	for _, path := range pkgpaths {
		pkg, err := imp.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		res, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %q: %v", a.Name, path, err)
		}
		checkExpectations(t, fset, pkg, res)
		results = append(results, res)
	}
	return results
}

// expectation is one parsed `// want "re"` clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkExpectations cross-checks diagnostics against want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, pkg *analysis.Package, res *Result) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitQuoted(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range res.Diagnostics {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim matches a diagnostic against the unclaimed expectations on its
// line.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// splitQuoted parses a sequence of double-quoted or backquoted Go
// strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
