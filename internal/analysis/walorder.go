package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walOrderScope lists the path segments of packages that feed sampler
// rounds through the write-ahead log.
var walOrderScope = []string{"service", "store", "nodesvc"}

// walAppendMethods are the store methods that append a round record to
// the WAL.
var walAppendMethods = map[string]bool{"AppendRound": true, "Append": true}

// samplerMutations are the method names that advance sampler state by a
// round (the mutations a WAL append must precede). They are distinctive
// enough that a name match plus the package scope is precise in
// practice.
var samplerMutations = map[string]bool{
	"ProcessBatch": true, "ProcessBatches": true, "ProcessRound": true,
	"ProcessRounds": true,
}

// WALOrder enforces the append-before-apply rule from the durability
// design (DESIGN.md §6): in the service/store/nodesvc layers, a WAL
// append must (a) have its error checked — an ignored append error means
// a round can mutate the sampler without being durable, so crash
// recovery replays a different stream — and (b) precede, within its
// function, any sampler mutation. Functions that persist through a
// wrapper (e.g. persistRound) are handled by treating any same-package
// function that directly appends as an append point at its call sites.
var WALOrder = &Analyzer{
	Name: "walorder",
	Doc: "WAL appends must be error-checked and precede the sampler " +
		"mutation they log (append-before-apply)",
	Run: runWALOrder,
}

func runWALOrder(pass *Pass) error {
	if !hasSegment(pass.PkgPath, walOrderScope...) {
		return nil
	}

	// Pass 1: find the package functions that directly append to a WAL.
	persisters := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		walkFuncs(file, func(fn ast.Node, n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isWALAppend(pass.TypesInfo, call) {
				return
			}
			if fd, ok := fn.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					persisters[obj] = true
				}
			}
		})
	}

	// Pass 2: per function, order append points against mutation points
	// and check that append errors are consumed.
	for _, file := range pass.Files {
		type points struct {
			firstAppend   token.Pos
			firstMutation token.Pos
			mutationCall  *ast.CallExpr
		}
		pts := make(map[ast.Node]*points)
		get := func(fn ast.Node) *points {
			p := pts[fn]
			if p == nil {
				p = &points{}
				pts[fn] = p
			}
			return p
		}
		// Calls whose result flows somewhere (not a bare statement and
		// not assigned to blank): collected so the error check can tell
		// `if err := l.AppendRound(rec); err != nil` from `l.AppendRound(rec)`.
		discarded := findDiscardedCalls(file)

		walkFuncs(file, func(fn ast.Node, n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || fn == nil {
				return
			}
			switch {
			case isWALAppend(pass.TypesInfo, call):
				if discarded[call] {
					pass.Reportf(call.Pos(), "WAL append error discarded: an unlogged round would "+
						"mutate the sampler and diverge crash recovery")
				}
				p := get(fn)
				if p.firstAppend == token.NoPos || call.Pos() < p.firstAppend {
					p.firstAppend = call.Pos()
				}
			case isPersisterCall(pass.TypesInfo, call, persisters):
				if discarded[call] {
					pass.Reportf(call.Pos(), "persistence wrapper's error discarded: the WAL append "+
						"inside it can fail without stopping the round")
				}
				p := get(fn)
				if p.firstAppend == token.NoPos || call.Pos() < p.firstAppend {
					p.firstAppend = call.Pos()
				}
			case isSamplerMutation(pass.TypesInfo, call):
				p := get(fn)
				if p.firstMutation == token.NoPos || call.Pos() < p.firstMutation {
					p.firstMutation = call.Pos()
					p.mutationCall = call
				}
			}
		})
		for _, p := range pts {
			if p.firstAppend != token.NoPos && p.firstMutation != token.NoPos &&
				p.firstMutation < p.firstAppend {
				pass.Reportf(p.mutationCall.Pos(), "sampler mutation precedes the WAL append in this "+
					"function: the round's input must be durable before it is applied (append-before-apply)")
			}
		}
	}
	return nil
}

// isWALAppend reports whether call invokes a WAL append method on a
// store type.
func isWALAppend(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !walAppendMethods[fn.Name()] || !isMethodNamed(fn, fn.Name()) {
		return false
	}
	return hasSegment(pkgPathOf(fn), "store")
}

// isPersisterCall reports whether call invokes a same-package function
// known to append to the WAL.
func isPersisterCall(info *types.Info, call *ast.CallExpr, persisters map[*types.Func]bool) bool {
	fn := calleeFunc(info, call)
	return fn != nil && persisters[fn]
}

// isSamplerMutation reports whether call invokes a sampler round
// mutation method.
func isSamplerMutation(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && samplerMutations[fn.Name()] && isMethodNamed(fn, fn.Name())
}

// findDiscardedCalls returns the calls whose results are thrown away:
// bare expression statements, `go`/`defer` statements, and assignments
// where every corresponding left-hand side is blank.
func findDiscardedCalls(file *ast.File) map[*ast.CallExpr]bool {
	discarded := make(map[*ast.CallExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				discarded[call] = true
			}
		case *ast.GoStmt:
			discarded[n.Call] = true
		case *ast.DeferStmt:
			discarded[n.Call] = true
		case *ast.AssignStmt:
			// Single call on the RHS: discarded iff all LHS are blank.
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			allBlank := true
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
					break
				}
			}
			if allBlank {
				discarded[call] = true
			}
		}
		return true
	})
	return discarded
}
