// Package waived exercises the //lint:allow waiver forms: trailing
// (covers its own line), standalone (covers the next line), and stale
// (suppresses nothing — itself a violation).
package waived

import "time"

// Uptime reads the wall clock behind two sanctioned waivers.
func Uptime(m map[string]int) float64 {
	t := time.Now() //lint:allow determinism -- operator-facing uptime metric, never reaches a sampling decision
	n := 0
	//lint:allow determinism -- accumulation is commutative, order cannot reach encoded output
	for _, v := range m {
		n += v
	}
	return time.Since(t).Seconds() + float64(n) // want `time\.Since reads the wall clock`
}

//lint:allow determinism -- stale waiver below a function, covers nothing // want `stale waiver`
