// Package flagged exercises every determinism violation class.
package flagged

import (
	"math/rand"
	"time"
)

// Threshold mixes every forbidden nondeterminism source into a value
// that reaches a sampling decision.
func Threshold(weights map[string]float64) float64 {
	t := float64(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
	d := time.Since(time.Unix(0, 0))    // want `time\.Since reads the wall clock`
	x := rand.Float64()                 // want `math/rand\.Float64 draws from the process-global random source`
	sum := t + d.Seconds() + x
	for k, w := range weights { // want `map iteration order is nondeterministic`
		sum += w * float64(len(k))
	}
	go func() { // want `goroutine spawned in a deterministic package`
		sum++
	}()
	return sum
}
