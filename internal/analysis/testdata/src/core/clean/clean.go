// Package clean shows the sanctioned deterministic idioms: explicitly
// seeded local randomness, key slices instead of map iteration, duration
// arithmetic without clock reads. No diagnostic is expected anywhere in
// this package.
package clean

import (
	"math/rand"
	"sort"
	"time"
)

// Threshold draws from a seeded source and walks keys from a slice the
// caller controls.
func Threshold(seed int64, keys []string, weights map[string]float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	sum := rng.Float64()
	sort.Strings(keys)
	for _, k := range keys {
		sum += weights[k]
	}
	const tick = 10 * time.Millisecond // Duration arithmetic is fine.
	return sum + tick.Seconds()
}
