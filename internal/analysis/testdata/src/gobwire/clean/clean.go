// Package clean sends only wire-safe payloads; no diagnostics expected.
package clean

import (
	"time"

	"coll"
	"transport"
)

// rec is fully exported and registered for direct sends.
type rec struct {
	Src   int
	Items []float64
	// Stamp's fields are unexported, but time.Time implements
	// MarshalBinary, so gob never sees them.
	Stamp time.Time
}

func init() { transport.Register(rec{}) }

// coded has a hand-rolled wire codec instead of a gob registration —
// RegisterMarshaler must satisfy the analyzer too.
type coded struct {
	Round uint64
}

func init() {
	transport.RegisterMarshaler(9,
		func(buf []byte, v coded) []byte { return buf },
		func(d *transport.Dec) (coded, error) { return coded{}, nil })
}

// Exchange sends registered, fully exported payloads.
func Exchange(c transport.Conn, comm *coll.Comm) {
	tag := comm.NextTag()
	c.Send(1, tag, rec{Src: 1}, 1)
	// Collectives self-register at operation entry: no package-level
	// registration needed, only exported fields.
	coll.Broadcast(comm, 0, rec{}, 1)
	coll.Gather(comm, 0, []float64{1}, 1)
	c.Send(1, tag, "plain string payloads need no registration", 1)
	c.Send(1, tag, coded{Round: 1}, 1)
}
