// Package waived sends a simulator-only payload behind a waiver.
package waived

import "transport"

// refOnly is passed by reference on the in-process simulator and never
// crosses a wire transport.
type refOnly struct {
	buf []byte
}

// Loopback hands the payload to a simulator-only path.
func Loopback(c transport.Conn) {
	//lint:allow gobwire -- simnet-only diagnostic payload, never crosses tcpnet (enforced by the run harness)
	c.Send(1, transport.CtrlTag, &refOnly{}, 1)
}
