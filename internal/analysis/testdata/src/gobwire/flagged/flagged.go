// Package flagged sends payloads gob would mangle — the two violation
// classes gobwire exists for.
package flagged

import (
	"coll"
	"transport"
)

// chunk has an unexported field: the simulator (by-reference) keeps it,
// the wire (gob) silently drops it.
type chunk struct {
	Src   int
	items []int
}

// msg is wire-safe but never registered in this package.
type msg struct {
	Seq int
}

// secret rides a control-plane send with an unexported field.
type secret struct {
	token string
}

type ctrl struct{}

func (ctrl) SendCtrl(to int, payload any, deadline int64) error { return nil }

// Exchange exercises both failure modes.
func Exchange(c transport.Conn, comm *coll.Comm, ft ctrl) {
	coll.Broadcast(comm, 0, chunk{Src: 1}, 1) // want `unexported field "items"`
	c.Send(1, transport.CtrlTag, msg{}, 1)    // want `never gob-registered`
	ft.SendCtrl(0, secret{}, 0)               // want `unexported field "token"` `never gob-registered`
}
