// Package plain sits outside the deterministic scope: wall clocks and
// goroutines are legal here, so no diagnostics are expected.
package plain

import "time"

// Uptime may read the wall clock freely.
func Uptime() float64 {
	start := time.Now()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	return time.Since(start).Seconds()
}
