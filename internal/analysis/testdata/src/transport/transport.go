// Package transport is a fixture stub mirroring the shapes the analyzers
// key on: the Conn interface, the Fault marker, the reserved control-tag
// constant, and the gob registration helpers.
package transport

// Conn mirrors the real point-to-point transport interface.
type Conn interface {
	ID() int
	P() int
	Send(to, tag int, payload any, words int)
	Recv(from, tag int) any
	Work(ns float64)
	Clock() float64
}

// CtrlTag is the reserved control-plane tag.
const CtrlTag = 0x7fffffff

// Fault marks a recoverable transport failure.
type Fault interface {
	error
	TransportFault()
}

// FatalError is an unrecoverable transport failure.
type FatalError struct {
	Msg string
}

func (e *FatalError) Error() string { return e.Msg }

// AsFault extracts a Fault from a recovered panic value.
func AsFault(r any) (Fault, bool) {
	f, ok := r.(Fault)
	return f, ok
}

// IsTransportPanic reports whether r is a transport-originated panic.
func IsTransportPanic(r any) bool {
	if _, ok := r.(Fault); ok {
		return true
	}
	_, ok := r.(*FatalError)
	return ok
}

// Register registers a payload type for wire encoding.
func Register(v any) {}

// RegisterType registers T for wire encoding.
func RegisterType[T any]() {}

// Dec is a stand-in for the wire decode cursor.
type Dec struct{}

// RegisterMarshaler registers a hand-rolled wire codec for T; a
// codec-registered type needs no separate gob registration.
func RegisterMarshaler[T any](id uint8, enc func(buf []byte, v T) []byte, dec func(d *Dec) (T, error)) {
}
