// Package store is a fixture stub of the WAL surface walorder keys on.
package store

// RoundRecord is one WAL round entry.
type RoundRecord struct {
	Round uint64
}

// RunLog is a per-run write-ahead log.
type RunLog struct{}

// AppendRound appends one round record.
func (l *RunLog) AppendRound(rec *RoundRecord) error { return nil }
