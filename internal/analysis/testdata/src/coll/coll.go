// Package coll is a fixture stub of the collective layer gobwire keys on.
package coll

import "transport"

// Comm is a communicator stub.
type Comm struct {
	Conn transport.Conn
	seq  int
}

// NextTag allocates a fresh collective tag (stands in for the real
// unexported allocator when fixtures need a traced tag source).
func (c *Comm) NextTag() int {
	t := c.seq
	c.seq++
	return t
}

// Broadcast distributes val from root to all PEs.
func Broadcast[T any](c *Comm, root int, val T, words int) T {
	transport.RegisterType[T]()
	return val
}

// AllReduce combines the PEs' values.
func AllReduce[T any](c *Comm, val T, op func(a, b T) T, words int) T {
	transport.RegisterType[T]()
	return val
}

// Gather collects a slice from every PE at root.
func Gather[T any](c *Comm, root int, items []T, wordsPerItem int) [][]T {
	transport.RegisterType[[]T]()
	return [][]T{items}
}
