// Package waived carries one sanctioned literal tag behind a waiver.
package waived

import "transport"

// Probe uses a literal tag in a diagnostic-only path, waived with a
// reason.
func Probe(c transport.Conn) {
	c.Send(1, 42, "probe", 1) //lint:allow tagdiscipline -- wire-probe tool, never shares a cluster with allocator traffic
}
