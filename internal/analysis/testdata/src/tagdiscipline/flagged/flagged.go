// Package flagged hand-picks transport tags — the violation class.
package flagged

import "transport"

const homegrown = 9 // a local constant is not a reserved transport tag

// Exchange uses literal and locally invented tags.
func Exchange(c transport.Conn) any {
	c.Send(1, 3, "payload", 1)         // want `Send tag 3 is an integer literal`
	c.Send(1, homegrown, "payload", 1) // want `Send tag 9 is an integer literal`
	c.Send(1, 2*4+1, "payload", 1)     // want `Send tag 9 is an integer literal`
	return c.Recv(0, 7)                // want `Recv tag 7 is an integer literal`
}
