// Package clean sources every tag from the allocator or the reserved
// control-tag constant; no diagnostics expected.
package clean

import (
	"coll"
	"transport"
)

// Exchange traces all tags to sanctioned sources.
func Exchange(c transport.Conn, comm *coll.Comm) any {
	tag := comm.NextTag()
	c.Send(1, tag, "payload", 1)
	c.Send(1, tag+1, "payload", 1) // arithmetic on an allocated tag is fine
	c.Send(1, transport.CtrlTag, "payload", 1)
	return c.Recv(0, tag)
}
