// Package clean shows the mandated recover triage: classify against
// transport.Fault, re-panic everything else. No diagnostics expected.
package clean

import "transport"

// TryCollective absorbs transport faults and propagates real bugs.
func TryCollective(body func()) (fault bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := transport.AsFault(r); ok {
				fault = true
				return
			}
			panic(r)
		}
	}()
	body()
	return false
}

// Boundary uses a direct type assertion instead of the helper.
func Boundary(body func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(transport.Fault); ok {
				err = f
				return
			}
			panic(r)
		}
	}()
	body()
	return nil
}
