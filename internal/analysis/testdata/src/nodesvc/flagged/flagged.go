// Package flagged recovers without proper fault triage — the violation
// classes faultpanic exists for.
package flagged

import (
	"fmt"
	"transport"
)

// Blanket converts every panic, including real bugs, into an error.
func Blanket(body func()) (err error) {
	defer func() {
		if r := recover(); r != nil { // want `recover\(\) without a transport\.Fault check`
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	body()
	return nil
}

// Swallow triages the panic but forgets to re-panic real bugs.
func Swallow(body func()) (fault bool) {
	defer func() {
		if r := recover(); r != nil { // want `classifies the panic but never re-panics`
			if _, ok := transport.AsFault(r); ok {
				fault = true
			}
		}
	}()
	body()
	return false
}
