// Package waived holds a deliberate blanket recover behind a waiver.
package waived

// CollectAll gathers panics from SPMD worker bodies and re-raises them
// later as a group (the simnet.Parallel pattern), so the per-site
// re-panic rule is waived.
func CollectAll(bodies []func()) []any {
	panics := make([]any, len(bodies))
	for i, body := range bodies {
		func() {
			defer func() {
				//lint:allow faultpanic -- panics are collected and re-raised by the caller after all PEs land
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			body()
		}()
	}
	return panics
}
