// Package clean follows append-before-apply with checked errors; no
// diagnostics expected.
package clean

import "store"

type sampler struct{ n int }

func (s *sampler) ProcessBatch(items []int) { s.n += len(items) }

type run struct {
	log *store.RunLog
	smp *sampler
}

// Round appends first, checks the error, then applies.
func (r *run) Round(items []int) error {
	if err := r.log.AppendRound(&store.RoundRecord{}); err != nil {
		return err
	}
	r.smp.ProcessBatch(items)
	return nil
}

// ViaWrapper persists through a checked wrapper before applying.
func (r *run) ViaWrapper(items []int) error {
	if err := r.persist(); err != nil {
		return err
	}
	r.smp.ProcessBatch(items)
	return nil
}

func (r *run) persist() error {
	return r.log.AppendRound(&store.RoundRecord{})
}

// Replay applies without any append at all: recovery replays rounds the
// WAL already holds, so a mutation-only function is fine.
func (r *run) Replay(items []int) {
	r.smp.ProcessBatch(items)
}
