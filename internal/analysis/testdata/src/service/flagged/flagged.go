// Package flagged breaks the append-before-apply rule in the ways
// walorder exists for.
package flagged

import "store"

type sampler struct{ n int }

func (s *sampler) ProcessBatch(items []int) { s.n += len(items) }

// run holds one persisted run.
type run struct {
	log *store.RunLog
	smp *sampler
}

// Discarded drops the append error on the floor.
func (r *run) Discarded(items []int) {
	r.log.AppendRound(&store.RoundRecord{}) // want `WAL append error discarded`
	r.smp.ProcessBatch(items)
}

// Blank assigns the append error to blank.
func (r *run) Blank(items []int) {
	_ = r.log.AppendRound(&store.RoundRecord{}) // want `WAL append error discarded`
	r.smp.ProcessBatch(items)
}

// ApplyFirst mutates the sampler before the round is durable.
func (r *run) ApplyFirst(items []int) error {
	r.smp.ProcessBatch(items) // want `sampler mutation precedes the WAL append`
	return r.log.AppendRound(&store.RoundRecord{})
}

// persist is a wrapper that appends (making it an append point at its
// call sites).
func (r *run) persist() error {
	return r.log.AppendRound(&store.RoundRecord{})
}

// WrapperDiscarded ignores the wrapper's error.
func (r *run) WrapperDiscarded(items []int) {
	r.persist() // want `persistence wrapper's error discarded`
	r.smp.ProcessBatch(items)
}
