// Package waived holds a deliberate apply-before-append behind a waiver.
package waived

import "store"

type sampler struct{ n int }

func (s *sampler) ProcessBatch(items []int) { s.n += len(items) }

type run struct {
	log *store.RunLog
	smp *sampler
}

// Rebuild replays already-durable rounds into a fresh sampler and then
// appends a marker record: the mutation does not need to be covered by
// this append.
func (r *run) Rebuild(items []int) error {
	//lint:allow walorder -- replaying rounds already durable in the WAL; the trailing append is a recovery marker
	r.smp.ProcessBatch(items)
	return r.log.AppendRound(&store.RoundRecord{})
}
