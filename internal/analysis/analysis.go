// Package analysis is the repo's static-analysis suite: a small,
// dependency-free equivalent of golang.org/x/tools/go/analysis (which this
// module deliberately does not depend on) plus five repo-specific
// analyzers that machine-check the invariants the reproduction's
// correctness argument rests on:
//
//   - determinism: the deterministic packages (core, coll, distsel, rng,
//     workload, quickselect, btree, simnet) may not consult wall clocks,
//     the global math/rand state, map iteration order, or spawn goroutines
//     off the worker-owned path. One stray time.Now() would pass every
//     unit test and still diverge a multi-process cluster.
//   - tagdiscipline: transport Send/Recv tag arguments must trace to the
//     coll.Comm tag allocator or the reserved control-tag constants —
//     never bare integer literals.
//   - faultpanic: recover() in cluster code must type-check the recovered
//     value against transport.Fault (or the typed fatal transport errors)
//     and re-panic anything else, so fault-tolerance recovery can never
//     swallow a real bug.
//   - walorder: a WAL append must be error-checked and must precede the
//     sampler mutation it logs (append-before-apply).
//   - gobwire: payload types crossing transport sends or collectives must
//     have exported fields and a gob registration.
//
// Intentional violations are waived in place with a comment:
//
//	//lint:allow <analyzer> -- reason
//
// on the flagged line or the line directly above it. Every waiver must
// carry a reason; waivers that no longer suppress anything are themselves
// reported. cmd/reservoir-lint runs the suite over the module and
// cross-checks the waiver census against DESIGN.md's waiver table.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Run inspects a single
// type-checked package through its Pass and reports findings via
// Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments
	// (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run performs the check. A nil error with no diagnostics means the
	// package satisfies the invariant.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Waiver is one //lint:allow comment that suppressed at least one
// diagnostic (or, in PackageResult.Unused, one that suppressed none).
type Waiver struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

func (w Waiver) String() string {
	return fmt.Sprintf("%s:%d: %s -- %s", w.Pos.Filename, w.Pos.Line, w.Analyzer, w.Reason)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	waivers map[string][]*waiverEntry // filename -> entries, this analyzer only
	diags   []Diagnostic
}

// Reportf records a violation at pos unless a matching waiver comment
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, w := range p.waivers[position.Filename] {
		if w.covers(position.Line) {
			w.uses++
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// waiverEntry is one parsed //lint:allow comment.
type waiverEntry struct {
	pos      token.Position
	analyzer string
	reason   string
	line     int // line the waiver covers (its own line, or the next)
	ownLine  bool
	uses     int
}

func (w *waiverEntry) covers(line int) bool {
	return line == w.line || (w.ownLine && line == w.line+1)
}

var waiverRE = regexp.MustCompile(`^//lint:allow\s+([a-z][a-z0-9-]*)\s+--\s+(\S.*)$`)

// malformedWaiverRE catches lint:allow comments missing the "-- reason"
// clause so they fail loudly instead of silently not waiving.
var malformedWaiverRE = regexp.MustCompile(`^//lint:allow\b`)

// parseWaivers extracts every //lint:allow comment of one file, keyed by
// nothing (all analyzers); RunAnalyzers filters per analyzer.
func parseWaivers(fset *token.FileSet, file *ast.File) (entries []*waiverEntry, malformed []Diagnostic) {
	// Lines that carry code: a waiver on such a line is trailing and
	// covers only that line; a waiver alone on its line covers the next.
	codeLines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return n != nil
		}
		if n.Pos().IsValid() {
			codeLines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimRight(c.Text, " \t")
			m := waiverRE.FindStringSubmatch(text)
			if m == nil {
				if malformedWaiverRE.MatchString(text) {
					malformed = append(malformed, Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "waiver",
						Message:  `malformed waiver: want "//lint:allow <analyzer> -- reason"`,
					})
				}
				continue
			}
			pos := fset.Position(c.Pos())
			entries = append(entries, &waiverEntry{
				pos:      pos,
				analyzer: m[1],
				reason:   m[2],
				line:     pos.Line,
				ownLine:  !codeLines[pos.Line],
			})
		}
	}
	return entries, malformed
}

// PackageResult aggregates one package's findings across a set of
// analyzers.
type PackageResult struct {
	PkgPath     string
	Diagnostics []Diagnostic // violations, position-sorted
	Waivers     []Waiver     // waivers that suppressed something (the census)
	Unused      []Waiver     // stale waivers (reported as violations too)
}

// RunAnalyzers applies each analyzer to the package and folds the
// results: waived findings land in Waivers, waivers that suppressed
// nothing are reported both in Unused and as diagnostics (a stale waiver
// is itself a lint violation), and malformed waiver comments fail loudly.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) (*PackageResult, error) {
	res := &PackageResult{PkgPath: pkg.PkgPath}

	// Parse waivers once per file; split per analyzer name.
	byFile := make(map[string][]*waiverEntry)
	for _, f := range pkg.Files {
		entries, malformed := parseWaivers(pkg.Fset, f)
		res.Diagnostics = append(res.Diagnostics, malformed...)
		name := pkg.Fset.Position(f.Pos()).Filename
		byFile[name] = append(byFile[name], entries...)
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			waivers:   make(map[string][]*waiverEntry),
		}
		for name, entries := range byFile {
			for _, w := range entries {
				if w.analyzer == a.Name {
					pass.waivers[name] = append(pass.waivers[name], w)
				}
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
		}
		res.Diagnostics = append(res.Diagnostics, pass.diags...)
	}

	for _, entries := range byFile {
		for _, w := range entries {
			wv := Waiver{Pos: w.pos, Analyzer: w.analyzer, Reason: w.reason}
			switch {
			case w.uses > 0:
				res.Waivers = append(res.Waivers, wv)
			case !known[w.analyzer]:
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Pos:      w.pos,
					Analyzer: "waiver",
					Message:  fmt.Sprintf("waiver names unknown analyzer %q", w.analyzer),
				})
			default:
				res.Unused = append(res.Unused, wv)
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Pos:      w.pos,
					Analyzer: "waiver",
					Message:  fmt.Sprintf("stale waiver: %s suppresses nothing on this or the next line", w.analyzer),
				})
			}
		}
	}

	sortDiags := func(d []Diagnostic) {
		sort.Slice(d, func(i, j int) bool {
			if d[i].Pos.Filename != d[j].Pos.Filename {
				return d[i].Pos.Filename < d[j].Pos.Filename
			}
			if d[i].Pos.Line != d[j].Pos.Line {
				return d[i].Pos.Line < d[j].Pos.Line
			}
			return d[i].Analyzer < d[j].Analyzer
		})
	}
	sortDiags(res.Diagnostics)
	sort.Slice(res.Waivers, func(i, j int) bool {
		if res.Waivers[i].Pos.Filename != res.Waivers[j].Pos.Filename {
			return res.Waivers[i].Pos.Filename < res.Waivers[j].Pos.Filename
		}
		return res.Waivers[i].Pos.Line < res.Waivers[j].Pos.Line
	})
	return res, nil
}

// All returns the five repo analyzers in census order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, TagDiscipline, FaultPanic, WALOrder, GobWire}
}
