package analysis

import (
	"go/ast"
	"go/types"
)

// TagDiscipline enforces the collective layer's ownership of the
// transport tag space: the tag argument of a transport Send/Recv must
// trace to the coll.Comm tag allocator (a variable, ultimately fed by
// Comm.nextTag) or to a reserved control-tag constant declared in a
// transport package — never a bare integer literal. Hand-picked literal
// tags collide silently with allocator-issued tags, and the upcoming
// multi-tenant tag namespacing (one tag range per run on a shared
// cluster) makes untraceable tags unauditable.
var TagDiscipline = &Analyzer{
	Name: "tagdiscipline",
	Doc: "transport Send/Recv tags must come from the coll.Comm allocator " +
		"or reserved control-tag constants, never integer literals",
	Run: runTagDiscipline,
}

func runTagDiscipline(pass *Pass) error {
	conn := lookupTransportConn(pass.Pkg)
	if conn == nil {
		return nil // package cannot reach the transport tag space
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tagArg, method := transportTagArg(pass.TypesInfo, call, conn)
			if tagArg == nil {
				return true
			}
			checkTagExpr(pass, tagArg, method)
			return true
		})
	}
	return nil
}

// transportTagArg returns the tag argument of a transport Send/Recv
// call, or nil if call is not one. Send(to, tag, payload, words) and
// Recv(from, tag) both carry the tag at index 1; the receiver must
// satisfy the transport Conn interface (which also covers calls through
// the interface itself and wrappers like faultnet's Conn).
func transportTagArg(info *types.Info, call *ast.CallExpr, conn *types.Interface) (ast.Expr, string) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, ""
	}
	var want int
	switch fn.Name() {
	case "Send":
		want = 4
	case "Recv":
		want = 2
	default:
		return nil, ""
	}
	if !isMethodNamed(fn, fn.Name()) || len(call.Args) != want {
		return nil, ""
	}
	recv := receiverType(info, call)
	if recv == nil || !implementsConn(recv, conn) {
		return nil, ""
	}
	return call.Args[1], fn.Name()
}

// checkTagExpr flags tag expressions that fold to a compile-time
// constant without spelling any reserved transport constant: those are
// hand-picked literals. Non-constant expressions (variables holding
// allocator-issued tags, tag+1 arithmetic on them) pass.
func checkTagExpr(pass *Pass, tag ast.Expr, method string) {
	tv, ok := pass.TypesInfo.Types[tag]
	if !ok || tv.Value == nil {
		return // not a constant: traces to a tag variable
	}
	fromTransport := func(pkg *types.Package) bool {
		return pkg != nil && hasSegment(pkg.Path(), "transport", "tcpnet")
	}
	if exprMentionsConst(pass.TypesInfo, tag, fromTransport) {
		return // reserved control-tag constant
	}
	pass.Reportf(tag.Pos(), "%s tag %s is an integer literal; tags must come from the "+
		"coll.Comm allocator or a reserved transport control-tag constant", method, tv.Value)
}
