package analysis_test

import (
	"testing"

	"reservoir/internal/analysis"
	"reservoir/internal/analysis/analysistest"
)

func TestWALOrder(t *testing.T) {
	results := analysistest.Run(t, "testdata/src", analysis.WALOrder,
		"service/flagged", "service/clean", "service/waived")

	flagged, clean, waived := results[0], results[1], results[2]
	if n := len(flagged.Diagnostics); n != 4 {
		t.Errorf("flagged: want 4 diagnostics, got %d: %v", n, flagged.Diagnostics)
	}
	if n := len(clean.Diagnostics); n != 0 {
		t.Errorf("clean: want 0 diagnostics, got %d: %v", n, clean.Diagnostics)
	}
	if n := len(waived.Waivers); n != 1 {
		t.Errorf("waived: want 1 used waiver, got %d", n)
	}
	if n := len(waived.Diagnostics); n != 0 {
		t.Errorf("waived: want 0 diagnostics, got %d: %v", n, waived.Diagnostics)
	}
}
