package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (run from dir, module
// mode) and returns them ready for analysis. It shells out to
// `go list -export -deps` so dependencies are imported from compiler
// export data — the same pipeline a build uses — while the target
// packages themselves are parsed from source with comments (waivers live
// in comments). Test files are not loaded: the invariants guard
// production code.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, pkgPath, dir string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil && len(typeErrs) == 0 {
		typeErrs = append(typeErrs, err)
	}
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type checking failed: %v", pkgPath, typeErrs[0])
	}
	return &Package{PkgPath: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// stdExports resolves export-data files for packages outside a fixture
// tree (the standard library, in practice) by shelling out to
// `go list -export` once per package, memoized. The fixture loader in
// analysistest uses it so test stubs can import time, math/rand, etc.
type stdExports struct {
	mu    sync.Mutex
	cache map[string]string
}

func newStdExports() *stdExports {
	return &stdExports{cache: make(map[string]string)}
}

func (s *stdExports) lookup(path string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	file, ok := s.cache[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		s.cache[path] = file
	}
	return os.Open(file)
}

// FixtureImporter type-checks packages rooted at a GOPATH-style src
// directory (testdata/src/<importpath>/*.go), falling back to real
// export data for anything not present there. It implements
// types.Importer for the analysistest harness.
type FixtureImporter struct {
	SrcRoot string
	Fset    *token.FileSet

	std  types.Importer
	pkgs map[string]*Package // fixture packages, by import path
	seen map[string]bool     // cycle guard
}

// NewFixtureImporter returns an importer resolving fixture packages
// under srcRoot.
func NewFixtureImporter(srcRoot string, fset *token.FileSet) *FixtureImporter {
	im := &FixtureImporter{
		SrcRoot: srcRoot,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		seen:    make(map[string]bool),
	}
	im.std = importer.ForCompiler(fset, "gc", newStdExports().lookup)
	return im
}

// Import implements types.Importer.
func (im *FixtureImporter) Import(path string) (*types.Package, error) {
	pkg, err := im.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// Load parses and type-checks the fixture package at srcRoot/path,
// resolving its imports through the fixture tree first and real export
// data second.
func (im *FixtureImporter) Load(path string) (*Package, error) {
	return im.load(path)
}

func (im *FixtureImporter) load(path string) (*Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(im.SrcRoot, filepath.FromSlash(path))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		// Not a fixture package: delegate to real export data.
		tp, err := im.std.Import(path)
		if err != nil {
			return nil, err
		}
		return &Package{PkgPath: path, Fset: im.Fset, Types: tp}, nil
	}
	if im.seen[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	im.seen[path] = true
	defer delete(im.seen, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}
	sort.Strings(goFiles)
	pkg, err := checkPackage(im.Fset, path, dir, goFiles, im)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = pkg
	return pkg, nil
}
