package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hasSegment reports whether any '/'-separated segment of the import
// path equals one of names. Matching by segment (not suffix) lets the
// same analyzer scope cover both the real module layout
// ("reservoir/internal/core") and the flat fixture paths the tests use
// ("determinism/core").
func hasSegment(path string, names ...string) bool {
	for _, seg := range strings.Split(path, "/") {
		for _, n := range names {
			if seg == n {
				return true
			}
		}
	}
	return false
}

// calleeFunc resolves the static callee of a call expression to its
// *types.Func, unwrapping parens and generic instantiation. It returns
// nil for calls through function values, builtins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
			continue
		}
		break
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named builtin
// (recover, panic, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgPathOf returns the import path of the package a function belongs
// to ("" for builtins and error methods).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMethodNamed reports whether fn is a method (has a receiver) with the
// given name.
func isMethodNamed(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// lookupTransportConn finds the transport Conn interface visible from
// pkg: a type named "Conn" whose underlying type is an interface,
// exported by an imported package with a "transport" path segment — or
// by pkg itself when analyzing the transport package. Returns nil if no
// such interface is in scope (the package cannot touch transport tags).
func lookupTransportConn(pkg *types.Package) *types.Interface {
	candidates := append([]*types.Package{pkg}, pkg.Imports()...)
	for _, p := range candidates {
		if !hasSegment(p.Path(), "transport") {
			continue
		}
		obj := p.Scope().Lookup("Conn")
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			return iface
		}
	}
	return nil
}

// implementsConn reports whether t (or *t) satisfies the Conn interface.
func implementsConn(t types.Type, conn *types.Interface) bool {
	if conn == nil || t == nil {
		return false
	}
	if types.Implements(t, conn) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), conn)
	}
	return false
}

// receiverType returns the static type of the receiver expression of a
// method call, or nil if call is not a selector-based method call.
func receiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil {
		return nil
	}
	return s.Recv()
}

// enclosingFuncs returns, for each function declaration and literal in
// the file, its body; the walk callback receives the innermost function
// body enclosing each node. Implemented as a helper that maps every
// recover/pos lookup need: callers use funcFor.
type funcStack struct {
	nodes []ast.Node // *ast.FuncDecl or *ast.FuncLit
}

// walkFuncs traverses file, invoking visit for every node with the
// innermost enclosing function node (nil at file scope).
func walkFuncs(file *ast.File, visit func(fn ast.Node, n ast.Node)) {
	var stack funcStack
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			switch m.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if m != n {
					stack.nodes = append(stack.nodes, m)
					walk(m)
					stack.nodes = stack.nodes[:len(stack.nodes)-1]
					return false
				}
				return true
			}
			var cur ast.Node
			if len(stack.nodes) > 0 {
				cur = stack.nodes[len(stack.nodes)-1]
			}
			visit(cur, m)
			return true
		})
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			stack.nodes = append(stack.nodes, fd)
			walk(fd)
			stack.nodes = stack.nodes[:len(stack.nodes)-1]
		} else {
			walk(decl)
		}
	}
}

// funcBody returns the body of a function node.
func funcBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// exprMentionsConst reports whether expr references at least one
// declared named constant from a package for which allowed returns
// true. Used by tagdiscipline: a constant-valued tag argument is legal
// only when it spells a reserved control-tag constant, not a bare
// literal.
func exprMentionsConst(info *types.Info, expr ast.Expr, allowed func(pkg *types.Package) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := info.Uses[id].(*types.Const); ok && allowed(c.Pkg()) {
			found = true
		}
		return true
	})
	return found
}
