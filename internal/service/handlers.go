package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"reservoir/internal/store"
)

// Handler returns the service's HTTP routes (full reference: docs/API.md):
//
//	POST   /v1/runs                    create a run from a RunConfig
//	GET    /v1/runs                    stats of all runs
//	POST   /v1/runs/{id}/batches       enqueue mini-batch rounds (IngestRequest);
//	                                   202 async by default, 200 with ?wait=true
//	GET    /v1/runs/{id}/sample        current global k-sample (snapshot read)
//	GET    /v1/runs/{id}/stats         stats snapshot (never blocks ingest)
//	GET    /v1/runs/{id}/metrics/stream  SSE feed of per-round stats
//	DELETE /v1/runs/{id}               delete a run
//	GET    /healthz                    liveness
//	GET    /metrics                    Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.Handler())
	mux.HandleFunc("POST /v1/runs", s.handleCreateRun)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("POST /v1/runs/{id}/batches", s.handleIngest)
	mux.HandleFunc("GET /v1/runs/{id}/sample", s.handleSample)
	mux.HandleFunc("GET /v1/runs/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /v1/runs/{id}/metrics/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleDelete)
	return mux
}

// CreateResponse is the POST /v1/runs response body.
type CreateResponse struct {
	ID string `json:"id"`
	// Config echoes the normalized configuration (defaults filled in).
	Config RunConfig `json:"config"`
}

// IngestAccepted is the 202 response body of asynchronous ingest: the
// request was validated and enqueued, but not yet processed. Poll
// GET .../stats (pending_rounds drops to 0 when the queue has drained) or
// subscribe to the metrics stream to observe completion.
type IngestAccepted struct {
	ID string `json:"id"`
	// Rounds is the number of rounds this request enqueued.
	Rounds int `json:"enqueued_rounds"`
	// QueueLen and PendingRounds are the queue gauges right after the
	// enqueue (jobs waiting, rounds not yet completed).
	QueueLen      int   `json:"queue_len"`
	PendingRounds int64 `json:"pending_rounds"`
}

// SampleResponse is the GET /v1/runs/{id}/sample response body.
type SampleResponse struct {
	ID     string     `json:"id"`
	Rounds int        `json:"rounds"`
	Count  int        `json:"count"`
	Items  []WireItem `json:"items"`
}

// ListResponse is the GET /v1/runs response body.
type ListResponse struct {
	Runs []Stats `json:"runs"`
}

// HealthResponse is the GET /healthz response body. Store is present only
// when the server runs with a persistence store (-data) and reports its
// directory, fsync policy, and WAL/checkpoint counters.
type HealthResponse struct {
	Status string        `json:"status"`
	Runs   int           `json:"runs"`
	Store  *store.Status `json:"store,omitempty"`
}

// WriteJSON writes v as a JSON response with the given status code
// (shared with the node-mode control API in internal/nodesvc).
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already committed; nothing sensible to do.
		_ = err
	}
}

// WriteErrorf writes the service's JSON error envelope.
func WriteErrorf(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeError maps run-layer errors to HTTP responses.
func writeError(w http.ResponseWriter, err error) {
	var api *apiError
	if errors.As(err, &api) {
		WriteErrorf(w, api.code, "%s", api.msg)
		return
	}
	WriteErrorf(w, http.StatusInternalServerError, "%v", err)
}

// decodeBody strictly decodes exactly one JSON value of at most limit
// bytes: unknown fields, over-limit bodies, and trailing data are rejected.
// DecodeBody strictly decodes a JSON request body: size-limited, unknown
// fields rejected, exactly one value (shared with the node-mode control
// API in internal/nodesvc). Errors carry an HTTP status via APIErrorCode.
func DecodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{
				code: http.StatusRequestEntityTooLarge,
				msg:  fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			}
		}
		return badRequestf("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequestf("invalid request body: trailing data after the JSON value")
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Status: "ok", Runs: s.runCount()}
	if s.store != nil {
		st := s.store.Status()
		resp.Store = &st
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCreateRun(w http.ResponseWriter, r *http.Request) {
	var cfg RunConfig
	if err := DecodeBody(w, r, maxConfigBytes, &cfg); err != nil {
		writeError(w, err)
		return
	}
	run, err := s.createRun(cfg)
	if err != nil {
		writeError(w, err)
		return
	}
	WriteJSON(w, http.StatusCreated, CreateResponse{ID: run.id, Config: run.cfg})
}

func (s *Server) handleListRuns(w http.ResponseWriter, _ *http.Request) {
	WriteJSON(w, http.StatusOK, ListResponse{Runs: s.listRuns()})
}

// lookupRun resolves the {id} path segment, writing a 404 on a miss.
func (s *Server) lookupRun(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id := r.PathValue("id")
	run, ok := s.lookup(id)
	if !ok {
		WriteErrorf(w, http.StatusNotFound, "no run %q", id)
	}
	return run, ok
}

// handleIngest validates the request, converts it to a job, and enqueues
// it on the run's bounded queue. By default it responds 202 Accepted as
// soon as the job is queued; with ?wait=true it blocks until the job has
// run and responds 200 with the post-round stats. A full queue yields 429
// with a Retry-After hint — the service's explicit backpressure signal.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	var req IngestRequest
	if err := DecodeBody(w, r, maxIngestBytes, &req); err != nil {
		writeError(w, err)
		return
	}
	job, err := run.buildJob(req)
	if err != nil {
		writeError(w, err)
		return
	}
	wait := false
	switch r.URL.Query().Get("wait") {
	case "true", "1":
		wait = true
	}
	if wait {
		// A waiting client's disconnect stops a multi-round job at the
		// next round boundary; async jobs run to completion regardless.
		job.ctx = r.Context()
	}
	if err := run.enqueue(job); err != nil {
		var api *apiError
		if errors.As(err, &api) && api.code == http.StatusTooManyRequests {
			// Derived from the run's drain rate (see retryAfterSeconds) so
			// clients back off proportionally to the actual queue depth.
			w.Header().Set("Retry-After", strconv.Itoa(run.retryAfterSeconds()))
		}
		writeError(w, err)
		return
	}
	if !wait {
		WriteJSON(w, http.StatusAccepted, IngestAccepted{
			ID:            run.id,
			Rounds:        job.rounds,
			QueueLen:      len(run.queue),
			PendingRounds: run.pending.Load(),
		})
		return
	}
	select {
	case res := <-job.done:
		if res.err != nil {
			writeError(w, res.err)
			return
		}
		WriteJSON(w, http.StatusOK, res.st)
	case <-r.Context().Done():
		// Client gone; the worker still finishes or cancels the job on
		// its own (job.ctx is this request's context). Nothing to write.
	}
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	items, rounds := run.sample()
	WriteJSON(w, http.StatusOK, SampleResponse{
		ID: run.id, Rounds: rounds, Count: len(items), Items: items,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	WriteJSON(w, http.StatusOK, run.stats())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.deleteRun(id) {
		WriteErrorf(w, http.StatusNotFound, "no run %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
