package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// blockWorker installs a test hook that parks the run's worker at the
// start of every round until release is closed; entered signals each time
// the worker reaches the hook. Must be called before the first ingest.
func blockWorker(run *Run) (entered chan struct{}, release chan struct{}) {
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	run.roundHook = func() {
		entered <- struct{}{}
		<-release
	}
	return entered, release
}

func pollStats(t *testing.T, ts *httptest.Server, id string, ok func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st Stats
		code, raw := doJSON(t, "GET", ts.URL+"/v1/runs/"+id+"/stats", "", &st)
		if code != http.StatusOK {
			t.Fatalf("stats poll: %d %s", code, raw)
		}
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never converged: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAsyncIngestAccepted covers the default asynchronous mode: a valid
// ingest returns 202 with queue gauges, and the rounds land eventually.
func TestAsyncIngestAccepted(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":8,"seed":7}`)
	base := ts.URL + "/v1/runs/" + run.ID

	// Before any round the sample is an empty array, never null.
	if code, raw := doJSON(t, "GET", base+"/sample", "", nil); code != http.StatusOK || !strings.Contains(raw, `"items":[]`) {
		t.Fatalf("pristine sample: %d %s", code, raw)
	}

	resp, err := http.Post(base+"/batches", "application/json",
		strings.NewReader(`{"synthetic":{"batch_len":100,"rounds":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async ingest: %d, want 202", resp.StatusCode)
	}
	var acc IngestAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID != run.ID || acc.Rounds != 3 {
		t.Fatalf("accepted body: %+v", acc)
	}

	st := pollStats(t, ts, run.ID, func(st Stats) bool { return st.Rounds == 3 && st.PendingRounds == 0 })
	if st.ItemsProcessed != 2*100*3 || st.SampleSize != 8 {
		t.Fatalf("stats after async drain: %+v", st)
	}
	var sr SampleResponse
	doJSON(t, "GET", base+"/sample", "", &sr)
	if sr.Count != 8 || sr.Rounds != 3 {
		t.Fatalf("sample after async drain: %+v", sr)
	}
}

// TestWaitIngestRoundTrip covers the synchronous mode: ?wait=true blocks
// until the job has run and answers with the post-round stats.
func TestWaitIngestRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":8,"seed":8}`)
	base := ts.URL + "/v1/runs/" + run.ID

	var st Stats
	code, raw := doJSON(t, "POST", base+"/batches?wait=true", makeBatches(2, 50, 0), &st)
	if code != http.StatusOK {
		t.Fatalf("wait ingest: %d %s", code, raw)
	}
	if st.Rounds != 1 || st.ItemsProcessed != 100 {
		t.Fatalf("wait ingest stats: %+v", st)
	}
	// The answered state is immediately visible to snapshot readers.
	var got Stats
	doJSON(t, "GET", base+"/stats", "", &got)
	if got.Rounds != 1 {
		t.Fatalf("stats after wait ingest: %+v", got)
	}
}

// TestQueueBackpressure fills a depth-1 queue behind a deterministically
// parked worker and checks the 429 + Retry-After rejection, then releases
// the worker and checks every accepted round still lands.
func TestQueueBackpressure(t *testing.T) {
	svc := New()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { svc.Close(); ts.Close() })
	run, err := svc.createRun(RunConfig{Kind: KindCluster, P: 2, K: 4, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered, release := blockWorker(run)
	base := ts.URL + "/v1/runs/" + run.id

	post := func() *http.Response {
		resp, err := http.Post(base+"/batches", "application/json",
			strings.NewReader(`{"synthetic":{"batch_len":20}}`))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Job 1 is picked up by the worker, which parks in the round hook.
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d, want 202", resp.StatusCode)
	}
	<-entered

	// Job 2 occupies the single queue slot.
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d, want 202", resp.StatusCode)
	}

	// Job 3 must be rejected with explicit backpressure, and the
	// Retry-After hint must come from the run's observed drain rate: with
	// a 3s round EMA, 2 pending rounds, and 2 jobs absorbing them
	// (1 queued + 1 in flight), a slot should free in about one round.
	run.roundNS.Store(uint64(3 * time.Second))
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\" (one 3s round)", ra)
	}

	// Readers are not blocked by the parked ingest pipeline.
	var st Stats
	if code, _ := doJSON(t, "GET", base+"/stats", "", &st); code != http.StatusOK {
		t.Fatalf("stats while worker parked: %d", code)
	}
	if st.QueueLen != 1 || st.QueueCap != 1 || st.PendingRounds != 2 {
		t.Fatalf("queue gauges while parked: %+v", st)
	}
	if code, _ := doJSON(t, "GET", base+"/sample", "", nil); code != http.StatusOK {
		t.Fatalf("sample while worker parked: %d", code)
	}

	// Release the worker: both accepted jobs run, the rejected one never
	// happened.
	close(release)
	pollStats(t, ts, run.id, func(st Stats) bool { return st.Rounds == 2 && st.PendingRounds == 0 })
}

// TestDeleteWithInFlightBatches deletes a run while one job is mid-round
// and more are queued: the in-flight waiter gets a round-boundary 503, the
// queued waiter gets 410 Gone, the worker exits, and the run 404s.
func TestDeleteWithInFlightBatches(t *testing.T) {
	svc := New()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { svc.Close(); ts.Close() })
	run, err := svc.createRun(RunConfig{Kind: KindCluster, P: 2, K: 4, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	entered, release := blockWorker(run)
	base := ts.URL + "/v1/runs/" + run.id

	// Job A: multi-round synthetic, wait-mode; the worker parks inside it.
	typeA := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/batches?wait=true", "application/json",
			strings.NewReader(`{"synthetic":{"batch_len":20,"rounds":5}}`))
		if err != nil {
			typeA <- -1
			return
		}
		resp.Body.Close()
		typeA <- resp.StatusCode
	}()
	<-entered

	// Job B: queued async; job C: queued wait-mode.
	respB, err := http.Post(base+"/batches", "application/json",
		strings.NewReader(`{"synthetic":{"batch_len":20}}`))
	if err != nil {
		t.Fatal(err)
	}
	respB.Body.Close()
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: %d, want 202", respB.StatusCode)
	}
	typeC := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/batches?wait=true", "application/json",
			strings.NewReader(makeBatches(2, 10, 0)))
		if err != nil {
			typeC <- -1
			return
		}
		resp.Body.Close()
		typeC <- resp.StatusCode
	}()
	// Wait until job C is actually on the queue so the drain sees it.
	pollStats(t, ts, run.id, func(st Stats) bool { return st.QueueLen == 2 })

	// Delete mid-flight, then unpark the worker.
	if code, _ := doJSON(t, "DELETE", base, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", code)
	}
	close(release)

	// Job A stops at the next round boundary with 503; job C is drained
	// with 410 Gone.
	if code := <-typeA; code != http.StatusServiceUnavailable {
		t.Fatalf("in-flight waiter got %d, want 503", code)
	}
	if code := <-typeC; code != http.StatusGone {
		t.Fatalf("queued waiter got %d, want 410", code)
	}

	select {
	case <-run.workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after delete")
	}
	if code, _ := doJSON(t, "GET", base+"/stats", "", nil); code != http.StatusNotFound {
		t.Fatalf("stats after delete: %d, want 404", code)
	}
	// Ingest after deletion: the run is gone from the store entirely.
	if code, _ := doJSON(t, "POST", base+"/batches", `{"synthetic":{"batch_len":5}}`, nil); code != http.StatusNotFound {
		t.Fatalf("ingest after delete: %d, want 404", code)
	}
}

// TestQueueDepthValidation rejects out-of-range queue depths.
func TestQueueDepthValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, cfg := range []string{
		fmt.Sprintf(`{"k":4,"queue_depth":%d}`, maxQueueDepth+1),
		`{"k":4,"queue_depth":-1}`,
	} {
		if code, raw := doJSON(t, "POST", ts.URL+"/v1/runs", cfg, nil); code != http.StatusBadRequest {
			t.Errorf("config %s: got %d (%s), want 400", cfg, code, raw)
		}
	}
	resp := createRun(t, ts, `{"k":4,"queue_depth":2}`)
	if resp.Config.QueueDepth != 2 {
		t.Fatalf("queue_depth not echoed: %+v", resp.Config)
	}
}

// TestRetryAfterDerivation pins the drain-rate arithmetic behind the 429
// Retry-After hint: (pending rounds / absorbing jobs) × round EMA,
// rounded up to whole seconds and clamped to [1, 60].
func TestRetryAfterDerivation(t *testing.T) {
	svc := New()
	t.Cleanup(func() { svc.Close() })
	run, err := svc.createRun(RunConfig{Kind: KindCluster, P: 2, K: 4, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		ema     time.Duration
		pending int64
		want    int
	}{
		{"no completed round yet", 0, 5, 1},
		{"one pending round at 2s", 2 * time.Second, 1, 2},
		{"ten pending rounds at 500ms", 500 * time.Millisecond, 10, 5},
		{"sub-second clamps up to 1", time.Millisecond, 1, 1},
		{"pathological round clamps to 60", 30 * time.Second, 10, 60},
	}
	for _, tc := range cases {
		run.roundNS.Store(uint64(tc.ema))
		run.pending.Store(tc.pending)
		if got := run.retryAfterSeconds(); got != tc.want {
			t.Errorf("%s: retryAfterSeconds() = %d, want %d", tc.name, got, tc.want)
		}
	}
	// A queued job shares the drain: the same backlog spread over more
	// jobs promises a sooner slot.
	run.roundNS.Store(uint64(4 * time.Second))
	run.pending.Store(4)
	run.queue <- &ingestJob{rounds: 1, done: make(chan ingestResult, 1)}
	defer func() { <-run.queue }()
	// 4 pending rounds / 2 jobs = 2 rounds × 4s.
	if got := run.retryAfterSeconds(); got != 8 {
		t.Errorf("with a queued job: retryAfterSeconds() = %d, want 8", got)
	}
}
