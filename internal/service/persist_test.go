package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"reservoir/internal/store"
)

// newPersistentServer opens a store in dir and serves on top of it,
// recovering any persisted runs. Nothing is registered for cleanup: tests
// that simulate a crash simply abandon the server without closing it.
func newPersistentServer(t *testing.T, dir string) (*httptest.Server, *Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.WithFsync(store.FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	svc := New(WithStore(st))
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(svc.Handler()), svc, st
}

func getSampleIDs(t *testing.T, ts *httptest.Server, id string) []uint64 {
	t.Helper()
	var sr SampleResponse
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/runs/"+id+"/sample", "", &sr); code != http.StatusOK {
		t.Fatalf("sample %s: %d %s", id, code, raw)
	}
	ids := make([]uint64, len(sr.Items))
	for i, it := range sr.Items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func getStats(t *testing.T, ts *httptest.Server, id string) Stats {
	t.Helper()
	var st Stats
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/runs/"+id+"/stats", "", &st); code != http.StatusOK {
		t.Fatalf("stats %s: %d %s", id, code, raw)
	}
	return st
}

func ingestWait(t *testing.T, ts *httptest.Server, id, body string) {
	t.Helper()
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/runs/"+id+"/batches?wait=true", body, nil); code != http.StatusOK {
		t.Fatalf("ingest %s: %d %s", id, code, raw)
	}
}

// equalIDs compares two sorted ID slices.
func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// persistedRunKinds is the recovery test matrix: one snapshotting cluster,
// one WAL-only gather cluster, a sequential sampler, and a windowed
// sampler (also WAL-only).
var persistedRunKinds = []struct {
	name string
	cfg  string
	p    int
}{
	{"cluster", `{"kind":"cluster","p":3,"k":48,"seed":11,"checkpoint_rounds":4}`, 3},
	{"gather", `{"kind":"cluster","p":2,"k":32,"seed":12,"algorithm":"gather"}`, 2},
	{"sequential", `{"kind":"sequential","k":24,"seed":13,"checkpoint_rounds":3}`, 1},
	{"windowed", `{"kind":"windowed","k":16,"window":1200,"chunk_len":300,"seed":14}`, 1},
}

// driveSchedule pushes an identical, deterministic ingest schedule into a
// run: explicit rounds interleaved with synthetic multi-round jobs.
func driveSchedule(t *testing.T, ts *httptest.Server, id string, p int, phase int) {
	t.Helper()
	base := uint64(phase*100_000 + 1)
	for round := 0; round < 3; round++ {
		ingestWait(t, ts, id, makeBatches(p, 40, base+uint64(round)*1000))
	}
	ingestWait(t, ts, id, fmt.Sprintf(`{"synthetic":{"batch_len":150,"rounds":4,"seed":%d}}`, 77+phase))
	ingestWait(t, ts, id, makeBatches(p, 25, base+50_000))
}

// TestCrashRecoveryEquivalence is the service-layer analogue of
// snapshot_test.go: ingest into persisted runs, hard-stop the service (no
// graceful shutdown, no final checkpoint), reopen the store, and require
// every recovered run to match an uninterrupted twin — same sample IDs,
// same round counters and stats — and to *continue* identically.
func TestCrashRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	crashTS, crashSvc, crashStore := newPersistentServer(t, dir)
	// The crash is simulated by abandoning this server mid-flight, which
	// orphans its ingest workers. They must still be reaped before the
	// binary exits (TestMain's leak guard): close the abandoned server at
	// cleanup time — after every recovery assertion has run against the
	// disk state the "crash" left behind.
	t.Cleanup(crashSvc.Close)
	twinTS, _ := newTestServer(t) // in-memory twin, never interrupted

	ids := make(map[string]string) // kind -> run id (same on both servers)
	for _, k := range persistedRunKinds {
		cr := createRun(t, crashTS, k.cfg)
		tw := createRun(t, twinTS, k.cfg)
		if cr.ID != tw.ID {
			t.Fatalf("id mismatch: %s vs %s", cr.ID, tw.ID)
		}
		ids[k.name] = cr.ID
	}
	for _, k := range persistedRunKinds {
		driveSchedule(t, crashTS, ids[k.name], k.p, 0)
		driveSchedule(t, twinTS, ids[k.name], k.p, 0)
	}

	// Hard stop: abandon the first server entirely — no Server.Close, no
	// final checkpoint, worker goroutines simply orphaned, exactly the
	// on-disk state a kill -9 leaves behind (all writes that the OS
	// already has; fsync policy only matters for power loss). Abandon
	// releases the store's flock the way process death would.
	crashTS.Close()
	crashStore.Abandon()

	recTS, recSvc, recStore := newPersistentServer(t, dir)
	t.Cleanup(func() {
		recSvc.Close()
		recStore.Close()
		recTS.Close()
	})

	var list ListResponse
	if code, raw := doJSON(t, "GET", recTS.URL+"/v1/runs", "", &list); code != http.StatusOK || len(list.Runs) != len(persistedRunKinds) {
		t.Fatalf("recovered run list: %d %s", code, raw)
	}

	for _, k := range persistedRunKinds {
		id := ids[k.name]
		rst, tst := getStats(t, recTS, id), getStats(t, twinTS, id)
		if rst.Rounds != tst.Rounds || rst.ItemsProcessed != tst.ItemsProcessed ||
			rst.SampleSize != tst.SampleSize || rst.Threshold != tst.Threshold ||
			rst.HaveThreshold != tst.HaveThreshold || rst.Inserted != tst.Inserted {
			t.Errorf("%s: recovered stats %+v != twin %+v", k.name, rst, tst)
		}
		if got, want := getSampleIDs(t, recTS, id), getSampleIDs(t, twinTS, id); !equalIDs(got, want) {
			t.Errorf("%s: recovered sample differs from twin (%d vs %d items)", k.name, len(got), len(want))
		}
	}

	// The recovered PRNG state must continue the same stream: more rounds
	// on both servers keep the samples identical.
	for _, k := range persistedRunKinds {
		driveSchedule(t, recTS, ids[k.name], k.p, 1)
		driveSchedule(t, twinTS, ids[k.name], k.p, 1)
	}
	for _, k := range persistedRunKinds {
		id := ids[k.name]
		if got, want := getSampleIDs(t, recTS, id), getSampleIDs(t, twinTS, id); !equalIDs(got, want) {
			t.Errorf("%s: post-recovery ingest diverges from twin", k.name)
		}
		if rst, tst := getStats(t, recTS, id), getStats(t, twinTS, id); rst.Rounds != tst.Rounds || rst.ItemsProcessed != tst.ItemsProcessed {
			t.Errorf("%s: post-recovery stats diverge: %+v vs %+v", k.name, rst, tst)
		}
	}
}

// TestGracefulShutdownWritesFinalCheckpoint: Close must leave every
// snapshotable run with a checkpoint at its final round so a restart
// replays nothing.
func TestGracefulShutdownWritesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ts, svc, st := newPersistentServer(t, dir)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":16,"seed":5}`)
	ingestWait(t, ts, run.ID, `{"synthetic":{"batch_len":100,"rounds":3}}`)
	svc.Close()
	st.Close()
	ts.Close()

	st2, err := store.Open(dir, store.WithFsync(store.FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rs, rlog, err := st2.LoadRun(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	if rs.Snapshot == nil || rs.Snapshot.Round != 3 {
		t.Fatalf("final checkpoint missing: %+v", rs.Snapshot)
	}
	n, warn, err := st2.ReplayRecords(run.ID, rs.Snapshot.Round, func(*store.RoundRecord) error { return nil })
	if n != 0 || warn != nil || err != nil {
		t.Fatalf("%d WAL records survive the final checkpoint (warn %v, err %v)", n, warn, err)
	}
}

// TestDeleteRemovesDiskState: DELETE /v1/runs/{id} must remove the run's
// on-disk directory (config, WAL, snapshots), and a subsequent recovery
// must not resurrect the run.
func TestDeleteRemovesDiskState(t *testing.T) {
	dir := t.TempDir()
	ts, svc, st := newPersistentServer(t, dir)
	t.Cleanup(func() { svc.Close(); st.Close(); ts.Close() })
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":16,"seed":6}`)
	ingestWait(t, ts, run.ID, `{"synthetic":{"batch_len":50,"rounds":2}}`)

	runDir := filepath.Join(dir, "runs", run.ID)
	if _, err := os.Stat(runDir); err != nil {
		t.Fatalf("run dir missing before delete: %v", err)
	}
	if code, raw := doJSON(t, "DELETE", ts.URL+"/v1/runs/"+run.ID, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", code, raw)
	}
	// Disk removal happens after the worker exits; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(runDir); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run dir still on disk after delete")
		}
		time.Sleep(2 * time.Millisecond)
	}

	svc2 := New(WithStore(st))
	if err := svc2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if n := svc2.runCount(); n != 0 {
		t.Fatalf("deleted run resurrected: %d runs recovered", n)
	}
}

// TestQueueFullLeavesNoDanglingWAL: a batch rejected with 429 must leave
// no WAL record — recovery must replay exactly the applied rounds. The
// WAL append happens in the worker immediately before the round runs, so
// the test parks the worker, fills the queue, collects a 429, and then
// verifies the on-disk record count.
func TestQueueFullLeavesNoDanglingWAL(t *testing.T) {
	dir := t.TempDir()
	ts, svc, st := newPersistentServer(t, dir)
	// The hard stop below abandons svc without closing it; reap its worker
	// at cleanup, after the WAL has been inspected.
	t.Cleanup(svc.Close)
	// Disable checkpoints so the raw WAL records stay inspectable.
	run := createRun(t, ts, `{"kind":"cluster","p":1,"k":8,"seed":7,"queue_depth":1,"checkpoint_rounds":-1,"checkpoint_bytes":-1}`)
	r, _ := svc.lookup(run.ID)
	entered, release := blockWorker(r)

	base := ts.URL + "/v1/runs/" + run.ID + "/batches"
	post := func() int {
		resp, err := http.Post(base, "application/json", strings.NewReader(makeBatches(1, 10, 1)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusAccepted { // job A: picked up by the worker
		t.Fatalf("job A: %d", code)
	}
	<-entered                                        // worker parked before A's WAL append
	if code := post(); code != http.StatusAccepted { // job B: sits on the queue
		t.Fatalf("job B: %d", code)
	}
	if code := post(); code != http.StatusTooManyRequests { // job C: rejected
		t.Fatalf("job C: want 429, got %d", code)
	}
	close(release)
	pollStats(t, ts, run.ID, func(st Stats) bool { return st.Rounds == 2 && st.PendingRounds == 0 })

	// Hard stop and inspect the WAL: exactly two records, rounds 0 and 1.
	ts.Close()
	st.Abandon()
	st2, err := store.Open(dir, store.WithFsync(store.FsyncOff))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rs, rlog, err := st2.LoadRun(run.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rlog.Close()
	if rs.Snapshot != nil {
		t.Fatalf("unexpected checkpoint: %+v", rs.Snapshot)
	}
	var rounds []uint64
	n, warn, err := st2.ReplayRecords(run.ID, 0, func(rec *store.RoundRecord) error {
		rounds = append(rounds, rec.Round)
		return nil
	})
	if err != nil || warn != nil {
		t.Fatalf("replay: %v / %v", err, warn)
	}
	if n != 2 || rounds[0] != 0 || rounds[1] != 1 {
		t.Fatalf("WAL has %d records (%v), want exactly the 2 applied rounds", n, rounds)
	}
}

// TestCloseWaitsForDeleteCleanup: a DELETE acknowledged before shutdown
// must have its disk removal completed by the time Close returns, so the
// deleted run cannot resurrect on the next recovery.
func TestCloseWaitsForDeleteCleanup(t *testing.T) {
	dir := t.TempDir()
	ts, svc, st := newPersistentServer(t, dir)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":8,"seed":8}`)
	ingestWait(t, ts, run.ID, `{"synthetic":{"batch_len":50,"rounds":2}}`)
	if code, raw := doJSON(t, "DELETE", ts.URL+"/v1/runs/"+run.ID, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", code, raw)
	}
	svc.Close() // must block until the run dir is gone
	st.Close()
	ts.Close()
	if _, err := os.Stat(filepath.Join(dir, "runs", run.ID)); !os.IsNotExist(err) {
		t.Fatalf("deleted run dir survives Close: %v", err)
	}
}

// TestCheckpointDefaultsPartialOverride: overriding only one trigger via
// WithCheckpointDefaults keeps the other at its built-in default instead
// of silently disabling it.
func TestCheckpointDefaultsPartialOverride(t *testing.T) {
	svc := New(WithCheckpointDefaults(128, 0))
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	run := createRun(t, ts, `{"kind":"cluster","p":1,"k":4,"seed":1}`)
	if run.Config.CheckpointRounds != 128 || run.Config.CheckpointBytes != defaultCkBytes {
		t.Fatalf("defaults: rounds=%d bytes=%d, want 128/%d",
			run.Config.CheckpointRounds, run.Config.CheckpointBytes, int64(defaultCkBytes))
	}
}

// TestHealthzReportsStore: the health endpoint surfaces the store
// directory, fsync policy, and WAL counters when persistence is on.
func TestHealthzReportsStore(t *testing.T) {
	dir := t.TempDir()
	ts, svc, st := newPersistentServer(t, dir)
	t.Cleanup(func() { svc.Close(); st.Close(); ts.Close() })
	run := createRun(t, ts, `{"kind":"sequential","k":8,"seed":9}`)
	ingestWait(t, ts, run.ID, `{"synthetic":{"batch_len":20,"rounds":2}}`)

	var hr HealthResponse
	if code, raw := doJSON(t, "GET", ts.URL+"/healthz", "", &hr); code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	if hr.Store == nil {
		t.Fatal("healthz has no store section")
	}
	if hr.Store.Dir != dir || hr.Store.Fsync != "off" || hr.Store.WALAppends != 2 || hr.Store.Runs != 1 {
		t.Fatalf("store status: %+v", hr.Store)
	}
}
