package service

import (
	"fmt"
	"net/http"
	"time"

	"reservoir"
)

// work is the run's ingest worker loop: the sole goroutine that touches
// the sampler. It pulls jobs off the bounded queue, runs them one whole
// round at a time, publishes a fresh snapshot after every round, and on
// cancellation (run deletion or server shutdown) fails all still-queued
// jobs so no waiter is left hanging. When the run is persisted, the worker
// also owns all of its disk state: the write-ahead append before each
// round, the checkpoint cadence, the final shutdown checkpoint, and the
// WAL handle's release — persistence never adds a lock to the ingest path.
func (r *Run) work() {
	defer close(r.workerDone)
	defer r.finishPersistence()
	for {
		select {
		case <-r.ctx.Done():
			r.drainQueue()
			return
		case job := <-r.queue:
			if r.ctx.Err() != nil {
				// The run was canceled while this job sat on the queue
				// (select picks arms randomly when both are ready): it
				// never started, so fail it like the drained jobs and
				// stop.
				r.failJob(job)
				r.drainQueue()
				return
			}
			res := r.process(job)
			if job.buf != nil {
				job.buf.release()
			}
			job.done <- res
		}
	}
}

// failJob rejects a job that will never run (run deleted or server shut
// down before processing started).
func (r *Run) failJob(job *ingestJob) {
	r.pending.Add(-int64(job.rounds))
	if job.buf != nil {
		job.buf.release()
	}
	job.done <- ingestResult{err: &apiError{
		code: http.StatusGone,
		msg:  "run was deleted (or the server shut down) before the batch was processed",
	}}
}

// drainQueue marks the queue closed (so no further jobs can be enqueued)
// and fails everything still on it. Because enqueue checks qclosed under
// qmu before sending, the non-blocking drain loop observes every job that
// ever made it onto the queue.
func (r *Run) drainQueue() {
	r.qmu.Lock()
	r.qclosed = true
	r.qmu.Unlock()
	for {
		select {
		case job := <-r.queue:
			r.failJob(job)
		default:
			return
		}
	}
}

// process runs one job to completion, checking for cancellation at every
// round boundary. The returned result carries the stats after the job's
// last completed round. The pending gauge drops by one as each round
// completes (so published snapshots are consistent with it); the deferred
// correction settles whatever a cancellation or error left unrun.
func (r *Run) process(job *ingestJob) (res ingestResult) {
	var st Stats
	completed := 0
	defer func() { r.pending.Add(-int64(job.rounds - completed)) }()
	for i := 0; i < job.rounds; i++ {
		if err := firstErr(r.ctx.Err(), job.ctx.Err()); err != nil {
			return ingestResult{st: st, err: &apiError{
				code: http.StatusServiceUnavailable,
				msg:  fmt.Sprintf("ingest stopped after %d of %d rounds: %v", i, job.rounds, err),
			}}
		}
		if h := r.roundHook; h != nil {
			h()
		}
		roundStart := time.Now()
		// Write-ahead: the round's input must be durable in the WAL before
		// it mutates the sampler. A job the queue rejected (429) never gets
		// here, so backpressure leaves no dangling record.
		if err := r.persistRound(job); err != nil {
			return ingestResult{st: st, err: err}
		}
		if job.batches != nil {
			if err := r.explicitRound(job.batches); err != nil {
				return ingestResult{st: st, err: err}
			}
		} else {
			r.syntheticRound(job.src)
		}
		r.pending.Add(-1)
		completed++
		st = r.publishSnapshot()
		// Periodic checkpoints are amortized spikes, not steady-state
		// drain cost — keep them out of the Retry-After estimate.
		roundDur := time.Since(roundStart)
		r.observeRound(roundDur)
		r.mRoundSeconds.Observe(roundDur.Seconds())
		if r.checkpointDue() {
			r.checkpoint()
		}
	}
	return ingestResult{st: st}
}

// observeRound folds one completed round's duration into the drain-rate
// EMA behind Retry-After hints (α = 1/8: smooth enough to ignore one
// slow round, fresh enough to track a workload shift within ~a dozen
// rounds). Only the worker goroutine writes it.
func (r *Run) observeRound(d time.Duration) {
	if d <= 0 {
		return
	}
	prev := r.roundNS.Load()
	if prev == 0 {
		r.roundNS.Store(uint64(d))
		return
	}
	r.roundNS.Store(prev - prev/8 + uint64(d)/8)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// explicitRound runs one explicit-batch round on whichever sampler the
// run hosts.
func (r *Run) explicitRound(batches []reservoir.SliceBatch) error {
	switch {
	case r.cluster != nil:
		if err := r.cluster.ProcessBatches(batches); err != nil {
			return badRequestf("%v", err)
		}
		r.rounds = r.cluster.Round()
	case r.seqW != nil:
		r.seqW.ProcessBatch(batches[0])
		r.rounds++
	case r.seqU != nil:
		r.seqU.ProcessBatch(batches[0])
		r.rounds++
	case r.win != nil:
		r.win.ProcessBatch(batches[0])
		r.rounds++
	}
	return nil
}

// syntheticRound runs one server-generated round.
func (r *Run) syntheticRound(src reservoir.Source) {
	switch {
	case r.cluster != nil:
		r.cluster.ProcessRound(src)
		r.rounds = r.cluster.Round()
	case r.seqW != nil:
		r.seqW.ProcessBatch(src.NextBatch(0, r.rounds))
		r.rounds++
	case r.seqU != nil:
		r.seqU.ProcessBatch(src.NextBatch(0, r.rounds))
		r.rounds++
	case r.win != nil:
		r.win.ProcessBatch(src.NextBatch(0, r.rounds))
		r.rounds++
	}
}

// publishSnapshot rebuilds the run's read view — stats plus the current
// sample — stores it atomically, and feeds the SSE subscribers. The
// sample is collected communication-free (Cluster.SampleSnapshot / the
// sequential samplers' Sample), so observing a run does not perturb its
// virtual clocks or simulated traffic counters.
func (r *Run) publishSnapshot() Stats {
	st := r.buildStats()
	var items []reservoir.Item
	switch {
	case r.cluster != nil:
		items = r.cluster.SampleSnapshot()
	case r.seqW != nil:
		items = r.seqW.Sample()
	case r.seqU != nil:
		items = r.seqU.Sample()
	case r.win != nil:
		items = r.win.Sample()
	}
	out := make([]WireItem, len(items))
	for i, it := range items {
		out[i] = WireItem{W: it.W, ID: it.ID}
	}
	r.snap.Store(&snapshot{stats: st, items: out})
	st.QueueLen = len(r.queue)
	st.QueueCap = cap(r.queue)
	st.PendingRounds = r.pending.Load()
	r.publish(st)
	return st
}

// buildStats snapshots the sampler's observable state. Only the worker
// (or newRun, before the worker starts) may call it.
func (r *Run) buildStats() Stats {
	st := Stats{ID: r.id, Kind: r.cfg.Kind, P: r.cfg.P, Rounds: r.rounds}
	switch {
	case r.cluster != nil:
		st.SampleSize = r.cluster.SampleSize()
		st.Threshold, st.HaveThreshold = r.cluster.Threshold()
		c := r.cluster.Counters()
		st.ItemsProcessed = c.ItemsProcessed
		st.Inserted = c.Inserted
		st.Selections = c.Selections
		st.SelectionDepth = c.SelectionRounds
		st.VirtualTimeNS = r.cluster.VirtualTime()
		n := r.cluster.NetworkStats()
		st.Network = &NetworkStats{Messages: n.Messages, Words: n.Words, Bytes: n.Bytes}
		t := r.cluster.Timing()
		st.Timing = &TimingStats{
			ScanNS: t.ScanNS, SelectNS: t.SelectNS,
			ThresholdNS: t.ThresholdNS, GatherNS: t.GatherNS, TotalNS: t.TotalNS(),
		}
	case r.seqW != nil:
		n, wSum := r.seqW.Seen()
		st.ItemsProcessed = n
		st.WeightSeen = wSum
		st.SampleSize = int(min(int64(r.cfg.K), n))
		st.Threshold, st.HaveThreshold = r.seqW.Threshold()
	case r.seqU != nil:
		n := r.seqU.Seen()
		st.ItemsProcessed = n
		st.SampleSize = int(min(int64(r.cfg.K), n))
		st.Threshold, st.HaveThreshold = r.seqU.Threshold()
	case r.win != nil:
		st.ItemsProcessed = r.win.Seen()
		st.SampleSize = r.win.SampleSize()
	}
	return st
}
