package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"reservoir"
)

// ingestJob is one queued unit of ingest work: either a single explicit
// round (batches already validated and converted onto pooled buffers) or a
// multi-round synthetic spec. Exactly one of batches/src is set.
type ingestJob struct {
	batches []reservoir.SliceBatch // explicit mode (one round)
	buf     *batchBuf              // pooled backing storage of batches
	src     reservoir.Source       // synthetic mode
	spec    []byte                 // synthetic spec JSON (WAL payload)
	rounds  int                    // rounds this job runs (1 for explicit)

	// ctx additionally bounds the job (the request context for wait-mode
	// clients). The run's own lifecycle context is always checked too.
	ctx context.Context

	// done receives exactly one result: when the job completes, fails, or
	// is dropped because the run was deleted or the server shut down.
	done chan ingestResult
}

// ingestResult is delivered on ingestJob.done.
type ingestResult struct {
	st  Stats
	err error
}

// batchBuf is the pooled backing storage of one explicit ingest round: a
// single flat item buffer sliced into per-PE batches. Recycling these
// keeps the hot ingest path free of per-request item allocations; the
// samplers copy items into their reservoirs and never retain the batch
// slices, so the buffer can be reused as soon as the round has run.
type batchBuf struct {
	items []reservoir.Item
	sb    []reservoir.SliceBatch
}

var batchBufPool = sync.Pool{New: func() any { return new(batchBuf) }}

func (b *batchBuf) release() {
	batchBufPool.Put(b)
}

// buildJob validates an IngestRequest against the run's configuration and
// converts it into a queueable job. All validation happens here, before
// the job is enqueued, so async (202) submissions still fail fast with
// 400s; the worker only ever sees well-formed work.
func (r *Run) buildJob(req IngestRequest) (*ingestJob, error) {
	switch {
	case req.Synthetic != nil && len(req.Batches) > 0:
		return nil, badRequestf("provide either batches or synthetic, not both")
	case req.Synthetic != nil:
		return r.buildSynthetic(*req.Synthetic)
	case len(req.Batches) > 0:
		return r.buildExplicit(req.Batches)
	default:
		return nil, badRequestf("empty ingest: provide batches or synthetic")
	}
}

func (r *Run) buildExplicit(batches [][]WireItem) (*ingestJob, error) {
	if len(batches) != r.cfg.P {
		return nil, badRequestf("got %d batches, run has p=%d PEs", len(batches), r.cfg.P)
	}
	total := 0
	for _, b := range batches {
		total += len(b)
	}
	buf := batchBufPool.Get().(*batchBuf)
	if cap(buf.items) < total {
		buf.items = make([]reservoir.Item, total)
	}
	if cap(buf.sb) < len(batches) {
		buf.sb = make([]reservoir.SliceBatch, len(batches))
	}
	items := buf.items[:total]
	sb := buf.sb[:len(batches)]
	off := 0
	for i, b := range batches {
		for j, it := range b {
			if !r.cfg.Uniform && !(it.W > 0) {
				buf.release()
				return nil, badRequestf("batch %d item %d: weight must be > 0 for weighted sampling", i, j)
			}
			items[off+j] = reservoir.Item{W: it.W, ID: it.ID}
		}
		sb[i] = reservoir.SliceBatch(items[off : off+len(b)])
		off += len(b)
	}
	return &ingestJob{
		batches: sb,
		buf:     buf,
		rounds:  1,
		ctx:     context.Background(),
		done:    make(chan ingestResult, 1),
	}, nil
}

func (r *Run) buildSynthetic(spec SyntheticSpec) (*ingestJob, error) {
	if spec.BatchLen < 1 || spec.BatchLen > maxSynthBatch {
		return nil, badRequestf("batch_len must be in [1, %d], got %d", maxSynthBatch, spec.BatchLen)
	}
	rounds := spec.Rounds
	if rounds == 0 {
		rounds = 1
	}
	if rounds < 1 || rounds > maxSynthRounds {
		return nil, badRequestf("rounds must be in [1, %d], got %d", maxSynthRounds, rounds)
	}
	src, err := spec.BuildSource(r.cfg)
	if err != nil {
		return nil, err
	}
	// The spec is the job's WAL payload: synthetic batches derive
	// deterministically from (seed, pe, round), so persisting the spec —
	// not the generated items — replays the identical rounds. Without a
	// store the bytes are never read; skip the marshal on that hot path.
	var specJSON []byte
	if r.log != nil {
		if specJSON, err = json.Marshal(spec); err != nil {
			return nil, badRequestf("encoding synthetic spec: %v", err)
		}
	}
	return &ingestJob{
		src:    src,
		spec:   specJSON,
		rounds: rounds,
		ctx:    context.Background(),
		done:   make(chan ingestResult, 1),
	}, nil
}

// BuildSource builds the workload generator for a synthetic ingest.
// Batches are derived from (seed, pe, round), so repeated requests against
// the same run continue the stream rather than replaying it. Exported
// because the multi-process node mode (internal/nodesvc) and
// reservoir-verify's -match replay must generate the byte-identical
// stream; only cfg.Seed and cfg.Uniform are consulted.
func (s SyntheticSpec) BuildSource(cfg RunConfig) (reservoir.Source, error) {
	seed := s.Seed
	if seed == 0 {
		seed = cfg.Seed + 0x9E3779B97F4A7C15
	}
	if s.Scenario != nil {
		if s.Source != "" {
			return nil, badRequestf("provide either source or scenario, not both")
		}
		src, err := s.Scenario.Source(seed, s.BatchLen)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		return src, nil
	}
	switch s.Source {
	case "", "uniform":
		lo, hi := s.Lo, s.Hi
		if lo == 0 && hi == 0 {
			lo, hi = 0, 100 // the paper's weight range
		}
		if hi <= lo {
			return nil, badRequestf("uniform source needs hi > lo, got (%g, %g]", lo, hi)
		}
		if !cfg.Uniform && lo < 0 {
			return nil, badRequestf("uniform source on a weighted run needs lo >= 0, got %g", lo)
		}
		return reservoir.UniformSource{Seed: seed, BatchLen: s.BatchLen, Lo: lo, Hi: hi}, nil
	case "skewed":
		base, sd := s.BaseMean, s.SD
		if base == 0 {
			base = 50
		}
		if sd == 0 {
			sd = 10
		}
		return reservoir.SkewedSource{
			Seed: seed, BatchLen: s.BatchLen,
			BaseMean: base, RoundInc: s.RoundInc, RankInc: s.RankInc, SD: sd,
		}, nil
	case "pareto":
		shape := s.Shape
		if shape == 0 {
			shape = 1.5
		}
		return reservoir.ParetoSource{Seed: seed, BatchLen: s.BatchLen, Shape: shape}, nil
	default:
		return nil, badRequestf("unknown synthetic source %q (want uniform, skewed, or pareto)", s.Source)
	}
}

// enqueue places a job on the run's bounded queue without blocking. A full
// queue is the backpressure signal (429, the client should retry); a
// closed queue means the run was deleted or the server is shutting down
// (410). On success the job's rounds are added to the pending gauge.
func (r *Run) enqueue(job *ingestJob) error {
	r.qmu.Lock()
	defer r.qmu.Unlock()
	if r.qclosed {
		if job.buf != nil {
			job.buf.release()
		}
		return &apiError{code: http.StatusGone, msg: "run was deleted"}
	}
	select {
	case r.queue <- job:
		r.pending.Add(int64(job.rounds))
		r.mBatches.Inc()
		return nil
	default:
		if job.buf != nil {
			job.buf.release()
		}
		r.mRejected.Inc()
		return &apiError{
			code: http.StatusTooManyRequests,
			msg: fmt.Sprintf("ingest queue is full (%d/%d jobs); retry later or create the run with a larger queue_depth",
				len(r.queue), cap(r.queue)),
		}
	}
}

// retryAfterSeconds derives the 429 Retry-After hint from the run's
// observed drain rate instead of a hardcoded constant: a queue slot
// frees when the job at the head finishes, which takes about (pending
// rounds / queued jobs) rounds at the worker's EMA round duration. The
// hint is clamped to [1, 60] — at least a second so clients cannot
// hot-spin on a deep queue, at most a minute so one pathological round
// does not park them forever.
func (r *Run) retryAfterSeconds() int {
	ema := r.roundNS.Load()
	if ema == 0 {
		return 1 // no completed round yet — nothing better than the old default
	}
	jobs := uint64(len(r.queue)) + 1 // queued jobs plus the one in flight
	pending := r.pending.Load()
	if pending < 1 {
		pending = 1
	}
	rounds := (uint64(pending) + jobs - 1) / jobs
	secs := (rounds*ema + uint64(time.Second) - 1) / uint64(time.Second)
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return int(secs)
}
