package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"reservoir/internal/metrics"
)

// scrape fetches /metrics and runs the strict exposition parser plus the
// repo's naming conventions over the body — the same contract check CI
// enforces. Every scrape in these tests goes through it, so a single
// malformed line (or a mid-ingest torn histogram) fails the test.
func scrape(t *testing.T, ts *httptest.Server) map[string]*metrics.Family {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, metrics.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.Lint(string(body))
	if err != nil {
		t.Fatalf("metrics contract violated: %v\n%s", err, body)
	}
	return fams
}

// sampleValue finds one sample by family name and run label (empty run
// matches the first sample).
func sampleValue(t *testing.T, fams map[string]*metrics.Family, name, run string) float64 {
	t.Helper()
	f, ok := fams[name]
	if !ok {
		t.Fatalf("family %s missing (have %d families)", name, len(fams))
	}
	for _, s := range f.Samples {
		if run == "" || s.Labels["run"] == run {
			return s.Value
		}
	}
	t.Fatalf("family %s has no sample for run %q", name, run)
	return 0
}

// TestMetricsContract drives a run through ingest, backpressure, and
// deletion, scraping after each step: the exposition must stay parseable
// and the instrument values must track what the API reported.
func TestMetricsContract(t *testing.T) {
	ts, svc := newTestServer(t)

	// Pristine server: only server-level families, zero runs.
	fams := scrape(t, ts)
	if got := sampleValue(t, fams, "reservoir_runs", ""); got != 0 {
		t.Fatalf("pristine reservoir_runs = %g, want 0", got)
	}

	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":8,"seed":7,"queue_depth":1}`)
	base := ts.URL + "/v1/runs/" + run.ID

	// Three synchronous rounds: items/batches/round histogram must move.
	code, raw := doJSON(t, "POST", base+"/batches?wait=true",
		`{"synthetic":{"batch_len":50,"rounds":3}}`, nil)
	if code != http.StatusOK {
		t.Fatalf("ingest: %d %s", code, raw)
	}
	fams = scrape(t, ts)
	if got := sampleValue(t, fams, "reservoir_runs", ""); got != 1 {
		t.Fatalf("reservoir_runs = %g, want 1", got)
	}
	if got := sampleValue(t, fams, "reservoir_ingest_batches_total", run.ID); got != 1 {
		t.Fatalf("ingest_batches_total = %g, want 1", got)
	}
	// 2 PEs × 50 items × 3 rounds.
	if got := sampleValue(t, fams, "reservoir_ingest_items_total", run.ID); got != 300 {
		t.Fatalf("ingest_items_total = %g, want 300", got)
	}
	rh, ok := fams["reservoir_round_duration_seconds"]
	if !ok || rh.Type != "histogram" {
		t.Fatalf("round_duration_seconds missing or not a histogram: %+v", rh)
	}
	var rounds float64
	for _, s := range rh.Samples {
		if s.Name == "reservoir_round_duration_seconds_count" && s.Labels["run"] == run.ID {
			rounds = s.Value
		}
	}
	if rounds != 3 {
		t.Fatalf("round histogram count = %g, want 3", rounds)
	}

	// Force a 429 (queue_depth=1, worker parked) and check the rejection
	// counter moves with it.
	r, ok2 := svc.lookup(run.ID)
	if !ok2 {
		t.Fatalf("run %s not found", run.ID)
	}
	entered, release := blockWorker(r)
	body := `{"synthetic":{"batch_len":10,"rounds":1}}`
	if code, raw := doJSON(t, "POST", base+"/batches", body, nil); code != http.StatusAccepted {
		t.Fatalf("first async ingest: %d %s", code, raw)
	}
	<-entered // worker holds job 1; the queue slot is free again
	if code, raw := doJSON(t, "POST", base+"/batches", body, nil); code != http.StatusAccepted {
		t.Fatalf("second async ingest: %d %s", code, raw)
	}
	if code, _ := doJSON(t, "POST", base+"/batches", body, nil); code != http.StatusTooManyRequests {
		t.Fatalf("third ingest: %d, want 429", code)
	}
	fams = scrape(t, ts)
	if got := sampleValue(t, fams, "reservoir_ingest_rejected_total", run.ID); got != 1 {
		t.Fatalf("ingest_rejected_total = %g, want 1", got)
	}
	if got := sampleValue(t, fams, "reservoir_queue_depth", run.ID); got != 1 {
		t.Fatalf("queue_depth = %g, want 1", got)
	}
	close(release)
	pollStats(t, ts, run.ID, func(st Stats) bool { return st.PendingRounds == 0 })

	// Deleting the run must retire every series carrying its label.
	if code, raw := doJSON(t, "DELETE", base, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d %s", code, raw)
	}
	fams = scrape(t, ts)
	for name, f := range fams {
		for _, s := range f.Samples {
			if s.Labels["run"] == run.ID {
				t.Fatalf("series %s still carries deleted run %s", name, run.ID)
			}
		}
	}
	if got := sampleValue(t, fams, "reservoir_runs", ""); got != 0 {
		t.Fatalf("reservoir_runs after delete = %g, want 0", got)
	}
}

// TestMetricsScrapeDuringIngest hammers /metrics while ingest, run
// creation, and run deletion are all in flight. Run under -race this
// covers the lock-free scrape path; the parser on every response covers
// the torn-read invariants (a histogram's +Inf bucket may never undershoot
// its finite buckets, cumulative buckets stay monotone).
func TestMetricsScrapeDuringIngest(t *testing.T) {
	ts, _ := newTestServer(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: two runs ingesting continuously, one run churning
	// create/delete so series appear and vanish mid-scrape.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := createRun(t, ts, fmt.Sprintf(`{"kind":"cluster","p":2,"k":8,"seed":%d}`, w+1))
			base := ts.URL + "/v1/runs/" + run.ID + "/batches?wait=true"
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base, "application/json",
					strings.NewReader(`{"synthetic":{"batch_len":64,"rounds":2}}`))
				if err != nil {
					return // server shutting down
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			run := createRun(t, ts, `{"kind":"cluster","p":1,"k":4,"seed":9}`)
			doJSON(t, "POST", ts.URL+"/v1/runs/"+run.ID+"/batches?wait=true",
				`{"synthetic":{"batch_len":16,"rounds":1}}`, nil)
			doJSON(t, "DELETE", ts.URL+"/v1/runs/"+run.ID, "", nil)
		}
	}()

	for i := 0; i < 50; i++ {
		scrape(t, ts) // parses + lints every body
	}
	close(stop)
	wg.Wait()

	// After the dust settles the exposition is still well-formed and the
	// two long-lived runs' series survived the churn.
	fams := scrape(t, ts)
	if got := sampleValue(t, fams, "reservoir_runs", ""); got != 2 {
		t.Fatalf("reservoir_runs = %g, want 2", got)
	}
}
