// Package service implements reservoir-serve: a long-running HTTP service
// that hosts many concurrent sampler *runs*. A run is one sampler instance
// — a reservoir.Cluster (the paper's distributed algorithm or the
// centralized gathering baseline, fixed or variable sample size), a
// sequential sampler, or a sliding-window sampler — created from a JSON
// config and driven by batch ingest requests (see DESIGN.md §5 and
// docs/API.md).
//
// Concurrency model (async sharded ingest): every run owns a dedicated
// worker goroutine that is the *sole* owner of its sampler. Ingest
// requests are validated, converted into jobs on pooled buffers, and
// placed on the run's bounded queue; a full queue is explicit
// backpressure (429). POST ingest defaults to asynchronous 202 Accepted
// and turns synchronous with ?wait=true. After every completed round the
// worker publishes an immutable snapshot (stats + current sample) through
// an atomic pointer, so GET /sample, GET /stats, and run listings never
// block ingest — they read the latest snapshot without taking any lock.
// Runs are independent shards: clients on different runs proceed in
// parallel; jobs on the same run are ordered by its queue, one whole
// round at a time.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"reservoir"
	"reservoir/internal/metrics"
	"reservoir/internal/store"
	"reservoir/internal/workload/scenario"
)

// Limits guarding the HTTP surface.
const (
	maxRuns          = 1024      // concurrently hosted runs
	maxPEs           = 1024      // PEs per cluster run (goroutines per round)
	maxSynthBatch    = 1 << 20   // items per PE per synthetic round
	maxSynthRounds   = 10_000    // rounds per synthetic ingest request
	maxConfigBytes   = 1 << 20   // request body limit for run creation
	maxIngestBytes   = 256 << 20 // request body limit for batch ingest
	maxQueueDepth    = 4096      // hard cap on a run's ingest queue
	defaultQueueSize = 32        // default ingest queue depth per run
)

// Run kinds.
const (
	KindCluster    = "cluster"
	KindSequential = "sequential"
	KindWindowed   = "windowed"
)

// WireItem is the JSON encoding of one weighted stream element.
type WireItem struct {
	W  float64 `json:"w"`
	ID uint64  `json:"id"`
}

// RunConfig is the JSON body of POST /v1/runs. The zero value of every
// field is a usable default except K (or KMin/KMax), which must be set.
type RunConfig struct {
	// Kind selects the sampler: "cluster" (default), "sequential", or
	// "windowed".
	Kind string `json:"kind,omitempty"`
	// P is the number of simulated PEs of a cluster run (default 4).
	P int `json:"p,omitempty"`
	// K is the sample size; KMin/KMax switch a cluster run to the paper's
	// variable-size mode (Sec 4.4) and make K ignored.
	K    int `json:"k,omitempty"`
	KMin int `json:"k_min,omitempty"`
	KMax int `json:"k_max,omitempty"`
	// Uniform selects unweighted sampling (weights ignored). The default
	// is weighted sampling, the paper's main setting.
	Uniform bool `json:"uniform,omitempty"`
	// Algorithm is "ours" (distributed, default) or "gather"; Strategy is
	// "single-pivot" (default), "multi-pivot" (with Pivots), or
	// "random-dist". Both are cluster-only knobs and ignored otherwise.
	Algorithm reservoir.Algorithm   `json:"algorithm,omitempty"`
	Strategy  reservoir.SelStrategy `json:"strategy,omitempty"`
	Pivots    int                   `json:"pivots,omitempty"`
	// LocalThreshold and BlockedSkip toggle the Sec 5 optimizations.
	LocalThreshold bool `json:"local_threshold,omitempty"`
	BlockedSkip    bool `json:"blocked_skip,omitempty"`
	// Shards fixes the logical scan-shard count (cluster runs; part of
	// the sampling stream's identity, 0 = legacy single-stream scan).
	// Pipeline defers each round's selection so the next scan can
	// overlap it; implies shards >= 1. See DESIGN.md §2.6.
	Shards   int  `json:"shards,omitempty"`
	Pipeline bool `json:"pipeline,omitempty"`
	// Seed drives all run randomness (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
	// AlphaNS/BetaNS override the simulated network cost parameters.
	AlphaNS float64 `json:"alpha_ns,omitempty"`
	BetaNS  float64 `json:"beta_ns,omitempty"`
	// Window and ChunkLen configure a windowed run (window must be a
	// multiple of chunk_len).
	Window   int `json:"window,omitempty"`
	ChunkLen int `json:"chunk_len,omitempty"`
	// QueueDepth bounds this run's ingest queue (jobs, not rounds);
	// 0 uses the server default. A full queue rejects ingest with 429.
	QueueDepth int `json:"queue_depth,omitempty"`
	// CheckpointRounds and CheckpointBytes schedule full snapshot
	// checkpoints when the server runs with a persistence store (-data):
	// the run's worker snapshots the sampler after a round when at least
	// CheckpointRounds rounds or CheckpointBytes WAL bytes have
	// accumulated since the last checkpoint, whichever comes first.
	// 0 uses the server defaults; a negative value disables that trigger.
	// Ignored without a store, and for run kinds that cannot snapshot
	// (windowed runs and gather clusters recover by full WAL replay).
	CheckpointRounds int   `json:"checkpoint_rounds,omitempty"`
	CheckpointBytes  int64 `json:"checkpoint_bytes,omitempty"`
}

// IngestRequest is the JSON body of POST /v1/runs/{id}/batches: either
// explicit per-PE batches (len must equal the run's p) or a synthetic
// workload spec, not both.
type IngestRequest struct {
	Batches   [][]WireItem   `json:"batches,omitempty"`
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
}

// SyntheticSpec asks the server to generate mini-batches itself using the
// paper's workload generators — the service analogue of the experiment
// drivers, and the cheapest way to push large rounds through a run.
type SyntheticSpec struct {
	// Source is "uniform" (default), "skewed", or "pareto". Mutually
	// exclusive with Scenario.
	Source string `json:"source,omitempty"`
	// Scenario selects a composed realistic workload (heavy-tailed
	// weight laws, bursty arrivals, per-PE skew, drift — see
	// internal/workload/scenario) instead of a primitive source.
	// BatchLen then acts as the mean items per PE per round, modulated
	// by the scenario's arrival process and rank skew. Streams stay
	// deterministic in (seed, pe, round), so scenario ingest replays
	// identically from the WAL and under reservoir-verify -match.
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// BatchLen is the number of items per PE per round.
	BatchLen int `json:"batch_len"`
	// Rounds is the number of mini-batch rounds to run (default 1).
	Rounds int `json:"rounds,omitempty"`
	// Seed overrides the workload seed (default derives from the run seed).
	Seed uint64 `json:"seed,omitempty"`
	// Lo/Hi bound uniform weights (default (0, 100], the paper's range).
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Shape is the Pareto tail index (default 1.5).
	Shape float64 `json:"shape,omitempty"`
	// BaseMean/RoundInc/RankInc/SD parameterize the skewed source.
	BaseMean float64 `json:"base_mean,omitempty"`
	RoundInc float64 `json:"round_inc,omitempty"`
	RankInc  float64 `json:"rank_inc,omitempty"`
	SD       float64 `json:"sd,omitempty"`
}

// NetworkStats mirrors the active transport's traffic counters (for
// simulated clusters, Bytes is Words*8).
type NetworkStats struct {
	Messages int64 `json:"messages"`
	Words    int64 `json:"words"`
	Bytes    int64 `json:"bytes,omitempty"`
}

// TimingStats is the per-phase virtual-time breakdown (Figure 6 phases).
type TimingStats struct {
	ScanNS      float64 `json:"scan_ns"`
	SelectNS    float64 `json:"select_ns"`
	ThresholdNS float64 `json:"threshold_ns"`
	GatherNS    float64 `json:"gather_ns"`
	TotalNS     float64 `json:"total_ns"`
}

// Stats is the GET /v1/runs/{id}/stats response and the SSE event payload
// of /v1/runs/{id}/metrics/stream. Everything except the queue fields
// describes the state as of the last completed round (the atomically
// published snapshot); QueueLen, QueueCap, and PendingRounds are read live
// from the ingest queue.
type Stats struct {
	ID             string        `json:"id"`
	Kind           string        `json:"kind"`
	P              int           `json:"p"`
	Rounds         int           `json:"rounds"`
	SampleSize     int           `json:"sample_size"`
	Threshold      float64       `json:"threshold"`
	HaveThreshold  bool          `json:"have_threshold"`
	ItemsProcessed int64         `json:"items_processed"`
	WeightSeen     float64       `json:"weight_seen,omitempty"`
	Inserted       int64         `json:"inserted,omitempty"`
	Selections     int64         `json:"selections,omitempty"`
	SelectionDepth int64         `json:"selection_rounds,omitempty"`
	VirtualTimeNS  float64       `json:"virtual_time_ns,omitempty"`
	Network        *NetworkStats `json:"network,omitempty"`
	Timing         *TimingStats  `json:"timing,omitempty"`
	// QueueLen is the number of ingest jobs waiting on the run's queue;
	// QueueCap is the queue's capacity; PendingRounds is the number of
	// rounds enqueued (or in flight) but not yet completed.
	QueueLen      int   `json:"queue_len"`
	QueueCap      int   `json:"queue_cap"`
	PendingRounds int64 `json:"pending_rounds,omitempty"`
}

// apiError carries an HTTP status through the run-layer call chain.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

// APIErrorCode returns the HTTP status carried by a service error, or
// fallback when err is not a service API error.
func APIErrorCode(err error, fallback int) int {
	var api *apiError
	if errors.As(err, &api) {
		return api.code
	}
	return fallback
}

func badRequestf(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// snapshot is the immutable read view of a run, replaced wholesale by the
// ingest worker after every completed round. Readers must not mutate
// items.
type snapshot struct {
	stats Stats
	items []WireItem
}

// Run is one hosted sampler instance. Exactly one of the sampler fields is
// non-nil, fixed at creation. After start, the sampler fields and rounds
// are owned exclusively by the worker goroutine; all other goroutines
// observe the run only through the atomic snapshot and the queue.
type Run struct {
	id  string
	cfg RunConfig

	cluster *reservoir.Cluster
	seqW    *reservoir.SequentialWeighted
	seqU    *reservoir.SequentialUniform
	win     *reservoir.WindowedWeighted
	rounds  int

	// Ingest queue. qmu only guards the closed flag handshake between
	// enqueuers and the worker's final drain; the channel itself carries
	// the jobs.
	queue   chan *ingestJob
	qmu     sync.Mutex
	qclosed bool
	pending atomic.Int64 // rounds enqueued but not yet completed
	// roundNS is an exponentially-weighted average of recent round
	// durations in nanoseconds — the drain-rate estimate behind 429
	// Retry-After hints. Written only by the worker goroutine.
	roundNS atomic.Uint64

	// Worker lifecycle: ctx is canceled on run deletion or server
	// shutdown; workerDone closes when the worker goroutine has exited.
	ctx        context.Context
	cancel     context.CancelFunc
	workerDone chan struct{}

	// snap is the atomically published read view (never nil after newRun).
	snap atomic.Pointer[snapshot]

	// Persistence (nil/zero without a store). log is the run's WAL handle;
	// only the worker goroutine (and recovery, before the worker starts)
	// touches it. lastCkRound is the round of the last durable checkpoint;
	// deleted tells the exiting worker to skip the final checkpoint
	// because the run's on-disk state is about to be removed.
	log         *store.RunLog
	lastCkRound int
	deleted     atomic.Bool
	// logger reports persistence problems from the worker (never nil).
	logger *slog.Logger

	// Per-run /metrics series (nil without instrumentation; the metrics
	// types are nil-receiver no-ops). Set by the server right after
	// newRun, removed again when the run is deleted.
	mBatches      *metrics.Counter   // ingest jobs accepted onto the queue
	mRejected     *metrics.Counter   // ingest jobs rejected with 429
	mRoundSeconds *metrics.Histogram // wall time per completed round

	// roundHook, when non-nil, runs before each round on the worker
	// goroutine. Test-only: lets tests hold the worker busy
	// deterministically.
	roundHook func()

	// subMu guards the SSE subscriber set, which outlives individual
	// rounds and is closed exactly once when the run is deleted.
	subMu  sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

// runDefaults are the server-level fallbacks newRun fills into a RunConfig.
type runDefaults struct {
	queueDepth int
	ckRounds   int
	ckBytes    int64
}

// clusterSetup translates a RunConfig into the library-level cluster
// configuration; recovery reuses it to rebuild a cluster from a snapshot.
func clusterSetup(cfg RunConfig) (reservoir.Config, []reservoir.Option) {
	rcfg := reservoir.Config{
		K:              cfg.K,
		KMin:           cfg.KMin,
		KMax:           cfg.KMax,
		Weighted:       !cfg.Uniform,
		Strategy:       cfg.Strategy,
		Pivots:         cfg.Pivots,
		LocalThreshold: cfg.LocalThreshold,
		BlockedSkip:    cfg.BlockedSkip,
		Shards:         cfg.Shards,
		Pipeline:       cfg.Pipeline,
		Seed:           cfg.Seed,
	}
	opts := []reservoir.Option{reservoir.WithAlgorithm(cfg.Algorithm)}
	if cfg.AlphaNS > 0 || cfg.BetaNS > 0 {
		opts = append(opts, reservoir.WithNetworkCost(cfg.AlphaNS, cfg.BetaNS))
	}
	return rcfg, opts
}

// newRun validates cfg and builds the sampler.
func newRun(id string, cfg RunConfig, d runDefaults) (*Run, error) {
	if cfg.Kind == "" {
		cfg.Kind = KindCluster
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = d.queueDepth
	}
	if cfg.QueueDepth < 1 || cfg.QueueDepth > maxQueueDepth {
		return nil, badRequestf("queue_depth must be in [1, %d], got %d", maxQueueDepth, cfg.QueueDepth)
	}
	if cfg.CheckpointRounds == 0 {
		cfg.CheckpointRounds = d.ckRounds
	}
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = d.ckBytes
	}
	r := &Run{id: id, subs: make(map[chan []byte]struct{}), logger: slog.New(slog.DiscardHandler)}
	switch cfg.Kind {
	case KindCluster:
		if cfg.Window != 0 || cfg.ChunkLen != 0 {
			return nil, badRequestf("window/chunk_len are only valid for windowed runs")
		}
		if cfg.P == 0 {
			cfg.P = 4
		}
		if cfg.P < 1 || cfg.P > maxPEs {
			return nil, badRequestf("p must be in [1, %d], got %d", maxPEs, cfg.P)
		}
		rcfg, opts := clusterSetup(cfg)
		cl, err := reservoir.NewCluster(cfg.P, rcfg, opts...)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		r.cluster = cl
	case KindSequential, KindWindowed:
		if cfg.P > 1 {
			return nil, badRequestf("%s runs have a single stream; p must be 0 or 1", cfg.Kind)
		}
		cfg.P = 1
		if cfg.KMin != 0 || cfg.KMax != 0 {
			return nil, badRequestf("variable sample size (k_min/k_max) requires a cluster run")
		}
		if cfg.K < 1 {
			return nil, badRequestf("sample size k must be >= 1, got %d", cfg.K)
		}
		if cfg.Kind == KindSequential {
			if cfg.Window != 0 || cfg.ChunkLen != 0 {
				return nil, badRequestf("window/chunk_len are only valid for windowed runs")
			}
			if cfg.Uniform {
				r.seqU = reservoir.NewUniform(cfg.K, cfg.Seed)
			} else {
				r.seqW = reservoir.NewWeighted(cfg.K, cfg.Seed)
			}
			break
		}
		if cfg.Uniform {
			return nil, badRequestf("the windowed sampler is weighted only")
		}
		if cfg.Window < 1 || cfg.ChunkLen < 1 || cfg.Window%cfg.ChunkLen != 0 {
			return nil, badRequestf("windowed runs need window > 0, chunk_len > 0, and window %% chunk_len == 0")
		}
		r.win = reservoir.NewWindowed(cfg.K, cfg.Window, cfg.ChunkLen, cfg.Seed)
	default:
		return nil, badRequestf("unknown kind %q (want %q, %q, or %q)",
			cfg.Kind, KindCluster, KindSequential, KindWindowed)
	}
	r.cfg = cfg
	r.queue = make(chan *ingestJob, cfg.QueueDepth)
	// items must be non-nil so GET .../sample serves "items": [] (not
	// null) before the first round.
	r.snap.Store(&snapshot{stats: r.buildStats(), items: []WireItem{}})
	return r, nil
}

// start launches the ingest worker. ctx (the server's shutdown context)
// and deletion both cancel it; done is called when the worker exits.
func (r *Run) start(ctx context.Context, done func()) {
	r.ctx, r.cancel = context.WithCancel(ctx)
	r.workerDone = make(chan struct{})
	go func() {
		defer done()
		r.work()
	}()
}

// stats returns the last published snapshot's stats plus live queue gauges.
func (r *Run) stats() Stats {
	st := r.snap.Load().stats
	st.QueueLen = len(r.queue)
	st.QueueCap = cap(r.queue)
	st.PendingRounds = r.pending.Load()
	return st
}

// sample returns the last published sample and its round number. The
// returned slice is shared and must not be mutated.
func (r *Run) sample() ([]WireItem, int) {
	s := r.snap.Load()
	return s.items, s.stats.Rounds
}

// publish fans a stats snapshot out to all SSE subscribers. Sends are
// non-blocking: a slow subscriber misses intermediate rounds instead of
// stalling ingest. With no subscribers it returns before marshaling.
func (r *Run) publish(st Stats) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if len(r.subs) == 0 {
		return
	}
	b, err := json.Marshal(st)
	if err != nil {
		return
	}
	for ch := range r.subs {
		select {
		case ch <- b:
		default:
		}
	}
}

// subscribe registers an SSE listener; reports false if the run is deleted.
func (r *Run) subscribe() (chan []byte, bool) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.closed {
		return nil, false
	}
	ch := make(chan []byte, 16)
	r.subs[ch] = struct{}{}
	return ch, true
}

func (r *Run) unsubscribe(ch chan []byte) {
	r.subMu.Lock()
	delete(r.subs, ch)
	r.subMu.Unlock()
}

// closeSubs ends all metric streams; idempotent, called on DELETE and on
// server Close.
func (r *Run) closeSubs() {
	r.subMu.Lock()
	r.closed = true
	for ch := range r.subs {
		close(ch)
		delete(r.subs, ch)
	}
	r.subMu.Unlock()
}

// Server is the run store plus the HTTP surface.
type Server struct {
	mu     sync.RWMutex
	runs   map[string]*Run
	nextID int64
	closed bool

	// shutdownCtx is canceled by Close; it ends SSE streams and stops
	// every run's ingest worker at the next round boundary.
	shutdownCtx context.Context
	shutdown    context.CancelFunc
	closeOnce   sync.Once
	workers     sync.WaitGroup
	cleanups    sync.WaitGroup // deleted runs' pending disk removals
	queueDepth  int
	logger      *slog.Logger

	// metrics is the server's Prometheus registry, served at GET /metrics
	// (never nil; WithMetrics substitutes a shared registry).
	metrics *metrics.Registry

	// store, when non-nil, persists every run (config + WAL + checkpoints)
	// under a data directory; ckRounds/ckBytes are the server-default
	// checkpoint cadence (RunConfig may override per run).
	store    *store.Store
	ckRounds int
	ckBytes  int64
}

// Option customizes New.
type Option func(*Server)

// WithLogger routes service logs (run lifecycle events) to log as
// structured records; the server adds a component attr.
func WithLogger(log *slog.Logger) Option {
	return func(s *Server) {
		if log != nil {
			s.logger = log.With("component", "service")
		}
	}
}

// WithMetrics substitutes reg for the server's own registry, so the
// process can aggregate service metrics with other subsystems (e.g. the
// store's WAL instrumentation) on one /metrics endpoint.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) {
		if reg != nil {
			s.metrics = reg
		}
	}
}

// Metrics returns the server's metrics registry (e.g. to pass to
// store.WithMetrics or to mount on another mux).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// WithQueueDepth sets the default per-run ingest queue depth (jobs).
// Individual runs may override it with RunConfig.QueueDepth.
func WithQueueDepth(n int) Option {
	return func(s *Server) {
		if n >= 1 && n <= maxQueueDepth {
			s.queueDepth = n
		}
	}
}

// WithStore enables persistence: every run's config, ingest rounds (WAL),
// and periodic sampler checkpoints are written under the store's data
// directory, and Recover rebuilds all runs from it after a restart. The
// caller retains ownership of st and closes it after Server.Close.
func WithStore(st *store.Store) Option {
	return func(s *Server) { s.store = st }
}

// WithCheckpointDefaults sets the server-default checkpoint cadence:
// snapshot a run after at least `rounds` ingest rounds or `bytes` WAL
// bytes since its last checkpoint, whichever trips first. A zero keeps
// that trigger's built-in default (64 rounds / 4 MiB); a negative value
// disables the trigger. RunConfig's checkpoint_rounds/checkpoint_bytes
// override per run with the same convention.
func WithCheckpointDefaults(rounds int, bytes int64) Option {
	return func(s *Server) {
		if rounds != 0 {
			s.ckRounds = rounds
		}
		if bytes != 0 {
			s.ckBytes = bytes
		}
	}
}

// Default checkpoint cadence with a store: snapshot after 64 rounds or
// 4 MiB of WAL, whichever trips first.
const (
	defaultCkRounds = 64
	defaultCkBytes  = 4 << 20
)

// New returns an empty service. With WithStore, call Recover before
// serving to rebuild persisted runs.
func New(opts ...Option) *Server {
	s := &Server{
		runs:       make(map[string]*Run),
		queueDepth: defaultQueueSize,
		ckRounds:   defaultCkRounds,
		ckBytes:    defaultCkBytes,
		logger:     slog.New(slog.DiscardHandler),
		metrics:    metrics.NewRegistry(),
	}
	s.shutdownCtx, s.shutdown = context.WithCancel(context.Background())
	for _, o := range opts {
		o(s)
	}
	s.metrics.GaugeFunc("reservoir_runs", "Live sampler runs hosted by the service.",
		nil, nil, func() float64 { return float64(s.runCount()) })
	return s
}

// registerRunMetrics wires a run's per-run series into the registry.
// Counter/histogram handles live on the Run (hot-path increments);
// queue gauges are read at scrape time from the queue itself.
func (s *Server) registerRunMetrics(r *Run) {
	runLabel := []string{"run"}
	id := r.id
	r.mBatches = s.metrics.NewCounter("reservoir_ingest_batches_total",
		"Ingest jobs accepted onto a run's queue.", runLabel, id)
	r.mRejected = s.metrics.NewCounter("reservoir_ingest_rejected_total",
		"Ingest jobs rejected with 429 (queue full).", runLabel, id)
	r.mRoundSeconds = s.metrics.NewHistogram("reservoir_round_duration_seconds",
		"Wall time per completed ingest round (WAL append included).",
		metrics.DefBuckets, runLabel, id)
	s.metrics.CounterFunc("reservoir_ingest_items_total",
		"Items processed by the run's sampler.", runLabel, []string{id},
		func() float64 { return float64(r.snap.Load().stats.ItemsProcessed) })
	s.metrics.GaugeFunc("reservoir_queue_depth",
		"Ingest jobs waiting on the run's queue.", runLabel, []string{id},
		func() float64 { return float64(len(r.queue)) })
	s.metrics.GaugeFunc("reservoir_pending_rounds",
		"Rounds enqueued (or in flight) but not yet completed.", runLabel, []string{id},
		func() float64 { return float64(r.pending.Load()) })
}

// defaults bundles the server-level RunConfig fallbacks.
func (s *Server) defaults() runDefaults {
	return runDefaults{queueDepth: s.queueDepth, ckRounds: s.ckRounds, ckBytes: s.ckBytes}
}

// Close ends all SSE streams, stops every ingest worker at the next round
// boundary (queued jobs are failed, waiters get 503), rejects further run
// creation, and waits for the workers to exit, so an enclosing
// http.Server.Shutdown can drain without being held open by long-lived
// work.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.shutdown()
		s.mu.Lock()
		s.closed = true
		runs := make([]*Run, 0, len(s.runs))
		for _, r := range s.runs {
			runs = append(runs, r)
		}
		s.mu.Unlock()
		for _, r := range runs {
			r.closeSubs()
		}
		s.workers.Wait()
		s.cleanups.Wait()
	})
}

// createRun allocates an ID, builds the sampler, stores the run, and
// starts its ingest worker.
func (s *Server) createRun(cfg RunConfig) (*Run, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	s.nextID++
	id := fmt.Sprintf("r%d", s.nextID)
	nextID := s.nextID
	s.mu.Unlock()

	run, err := newRun(id, cfg, s.defaults())
	if err != nil {
		return nil, err
	}
	run.logger = s.logger.With("run", id)
	if s.store != nil {
		// Persist the ID allocation first (IDs are never reused, even
		// across restarts), then the run's on-disk state. The normalized
		// config is what recovery rebuilds the sampler from.
		if err := s.store.SetNextID(nextID); err != nil {
			return nil, &apiError{code: http.StatusInternalServerError, msg: fmt.Sprintf("persistence failure: %v", err)}
		}
		cfgJSON, err := json.Marshal(run.cfg)
		if err != nil {
			return nil, &apiError{code: http.StatusInternalServerError, msg: fmt.Sprintf("persistence failure: %v", err)}
		}
		run.log, err = s.store.CreateRun(id, cfgJSON)
		if err != nil {
			return nil, &apiError{code: http.StatusInternalServerError, msg: fmt.Sprintf("persistence failure: %v", err)}
		}
	}

	// discard undoes the on-disk state if the run cannot be registered.
	discard := func() {
		if run.log != nil {
			run.log.Close()
			s.store.DeleteRun(id)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		discard()
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	if len(s.runs) >= maxRuns {
		s.mu.Unlock()
		discard()
		return nil, &apiError{
			code: http.StatusTooManyRequests,
			msg:  fmt.Sprintf("run limit (%d) reached; delete a run first", maxRuns),
		}
	}
	s.runs[id] = run
	s.workers.Add(1)
	run.start(s.shutdownCtx, s.workers.Done)
	s.mu.Unlock()
	// Metrics register after the run is committed to the map, so a failed
	// create leaves no orphan series (IDs are never reused). The counter
	// handles are nil-safe for the instant before registration completes.
	s.registerRunMetrics(run)
	s.logger.Info("created run", "run", id, "kind", run.cfg.Kind,
		"p", run.cfg.P, "k", run.cfg.K, "queue", run.cfg.QueueDepth)
	return run, nil
}

// lookup returns the run with the given ID.
func (s *Server) lookup(id string) (*Run, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.runs[id]
	return r, ok
}

// deleteRun removes a run, stops its worker (failing any queued jobs), and
// ends its metric streams. It does not wait for the worker: an in-flight
// round finishes in the background at its own pace. With a store, the
// run's on-disk state (config, WAL, checkpoints) is removed as soon as the
// worker has exited and released its log.
func (s *Server) deleteRun(id string) bool {
	s.mu.Lock()
	r, ok := s.runs[id]
	if ok {
		delete(s.runs, id)
	}
	// Register the disk cleanup while still holding mu: Close sets closed
	// under mu before it calls cleanups.Wait, so Add here can never race
	// that Wait (the WaitGroup contract), and Close always waits for every
	// registered removal — a run the API confirmed deleted must not
	// resurrect from leftover files on the next recovery.
	async := ok && s.store != nil && r.log != nil && !s.closed
	if async {
		s.cleanups.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	r.deleted.Store(true)
	r.cancel()
	r.closeSubs()
	s.metrics.Unregister("run", id)
	removeDisk := func() {
		<-r.workerDone // the worker closes the log on exit
		if err := s.store.DeleteRun(id); err != nil {
			s.logger.Error("delete run disk state failed", "run", id, "err", err)
		}
	}
	switch {
	case async:
		go func() {
			defer s.cleanups.Done()
			removeDisk()
		}()
	case s.store != nil && r.log != nil:
		// Close is already draining: remove synchronously on this handler
		// goroutine (the worker exits promptly on the canceled context).
		removeDisk()
	}
	s.logger.Info("deleted run", "run", id)
	return true
}

// listRuns snapshots the stats of all runs, ordered by ID. Pure snapshot
// reads: listing never blocks any run's ingest.
func (s *Server) listRuns() []Stats {
	s.mu.RLock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.RUnlock()
	out := make([]Stats, len(runs))
	for i, r := range runs {
		out[i] = r.stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// runCount returns the number of live runs.
func (s *Server) runCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}

// RunCount returns the number of live runs (e.g. to report how many were
// recovered at startup).
func (s *Server) RunCount() int { return s.runCount() }
