// Package service implements reservoir-serve: a long-running HTTP service
// that hosts many concurrent sampler *runs*. A run is one sampler instance
// — a reservoir.Cluster (the paper's distributed algorithm or the
// centralized gathering baseline, fixed or variable sample size), a
// sequential sampler, or a sliding-window sampler — created from a JSON
// config and driven by batch ingest requests (see DESIGN.md §5).
//
// Concurrency model: a mutex-guarded run store maps IDs to runs; each run
// owns its own mutex that serializes ingest rounds, sample collection, and
// stats snapshots, because the cluster entry points (ProcessBatches,
// ProcessRound, Sample) are collective over the goroutine-per-PE simulated
// network and must not overlap. Clients ingesting into different runs
// proceed in parallel; clients on the same run are ordered, one whole
// round at a time.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"reservoir"
)

// Limits guarding the HTTP surface.
const (
	maxRuns        = 1024      // concurrently hosted runs
	maxPEs         = 1024      // PEs per cluster run (goroutines per round)
	maxSynthBatch  = 1 << 20   // items per PE per synthetic round
	maxSynthRounds = 10_000    // rounds per synthetic ingest request
	maxConfigBytes = 1 << 20   // request body limit for run creation
	maxIngestBytes = 256 << 20 // request body limit for batch ingest
)

// Run kinds.
const (
	KindCluster    = "cluster"
	KindSequential = "sequential"
	KindWindowed   = "windowed"
)

// WireItem is the JSON encoding of one weighted stream element.
type WireItem struct {
	W  float64 `json:"w"`
	ID uint64  `json:"id"`
}

// RunConfig is the JSON body of POST /v1/runs. The zero value of every
// field is a usable default except K (or KMin/KMax), which must be set.
type RunConfig struct {
	// Kind selects the sampler: "cluster" (default), "sequential", or
	// "windowed".
	Kind string `json:"kind,omitempty"`
	// P is the number of simulated PEs of a cluster run (default 4).
	P int `json:"p,omitempty"`
	// K is the sample size; KMin/KMax switch a cluster run to the paper's
	// variable-size mode (Sec 4.4) and make K ignored.
	K    int `json:"k,omitempty"`
	KMin int `json:"k_min,omitempty"`
	KMax int `json:"k_max,omitempty"`
	// Uniform selects unweighted sampling (weights ignored). The default
	// is weighted sampling, the paper's main setting.
	Uniform bool `json:"uniform,omitempty"`
	// Algorithm is "ours" (distributed, default) or "gather"; Strategy is
	// "single-pivot" (default), "multi-pivot" (with Pivots), or
	// "random-dist". Both are cluster-only knobs and ignored otherwise.
	Algorithm reservoir.Algorithm   `json:"algorithm,omitempty"`
	Strategy  reservoir.SelStrategy `json:"strategy,omitempty"`
	Pivots    int                   `json:"pivots,omitempty"`
	// LocalThreshold and BlockedSkip toggle the Sec 5 optimizations.
	LocalThreshold bool `json:"local_threshold,omitempty"`
	BlockedSkip    bool `json:"blocked_skip,omitempty"`
	// Seed drives all run randomness (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
	// AlphaNS/BetaNS override the simulated network cost parameters.
	AlphaNS float64 `json:"alpha_ns,omitempty"`
	BetaNS  float64 `json:"beta_ns,omitempty"`
	// Window and ChunkLen configure a windowed run (window must be a
	// multiple of chunk_len).
	Window   int `json:"window,omitempty"`
	ChunkLen int `json:"chunk_len,omitempty"`
}

// IngestRequest is the JSON body of POST /v1/runs/{id}/batches: either
// explicit per-PE batches (len must equal the run's p) or a synthetic
// workload spec, not both.
type IngestRequest struct {
	Batches   [][]WireItem   `json:"batches,omitempty"`
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
}

// SyntheticSpec asks the server to generate mini-batches itself using the
// paper's workload generators — the service analogue of the experiment
// drivers, and the cheapest way to push large rounds through a run.
type SyntheticSpec struct {
	// Source is "uniform" (default), "skewed", or "pareto".
	Source string `json:"source,omitempty"`
	// BatchLen is the number of items per PE per round.
	BatchLen int `json:"batch_len"`
	// Rounds is the number of mini-batch rounds to run (default 1).
	Rounds int `json:"rounds,omitempty"`
	// Seed overrides the workload seed (default derives from the run seed).
	Seed uint64 `json:"seed,omitempty"`
	// Lo/Hi bound uniform weights (default (0, 100], the paper's range).
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Shape is the Pareto tail index (default 1.5).
	Shape float64 `json:"shape,omitempty"`
	// BaseMean/RoundInc/RankInc/SD parameterize the skewed source.
	BaseMean float64 `json:"base_mean,omitempty"`
	RoundInc float64 `json:"round_inc,omitempty"`
	RankInc  float64 `json:"rank_inc,omitempty"`
	SD       float64 `json:"sd,omitempty"`
}

// NetworkStats mirrors the simulated traffic counters.
type NetworkStats struct {
	Messages int64 `json:"messages"`
	Words    int64 `json:"words"`
}

// TimingStats is the per-phase virtual-time breakdown (Figure 6 phases).
type TimingStats struct {
	ScanNS      float64 `json:"scan_ns"`
	SelectNS    float64 `json:"select_ns"`
	ThresholdNS float64 `json:"threshold_ns"`
	GatherNS    float64 `json:"gather_ns"`
	TotalNS     float64 `json:"total_ns"`
}

// Stats is the GET /v1/runs/{id}/stats response and the SSE event payload
// of /v1/runs/{id}/metrics/stream.
type Stats struct {
	ID             string        `json:"id"`
	Kind           string        `json:"kind"`
	P              int           `json:"p"`
	Rounds         int           `json:"rounds"`
	SampleSize     int           `json:"sample_size"`
	Threshold      float64       `json:"threshold"`
	HaveThreshold  bool          `json:"have_threshold"`
	ItemsProcessed int64         `json:"items_processed"`
	WeightSeen     float64       `json:"weight_seen,omitempty"`
	Inserted       int64         `json:"inserted,omitempty"`
	Selections     int64         `json:"selections,omitempty"`
	SelectionDepth int64         `json:"selection_rounds,omitempty"`
	VirtualTimeNS  float64       `json:"virtual_time_ns,omitempty"`
	Network        *NetworkStats `json:"network,omitempty"`
	Timing         *TimingStats  `json:"timing,omitempty"`
}

// apiError carries an HTTP status through the run-layer call chain.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// Run is one hosted sampler instance. Exactly one of the sampler fields is
// non-nil, fixed at creation.
type Run struct {
	id  string
	cfg RunConfig

	// mu serializes all sampler access: rounds, sample gathering, and
	// stats snapshots (see the package comment).
	mu      sync.Mutex
	cluster *reservoir.Cluster
	seqW    *reservoir.SequentialWeighted
	seqU    *reservoir.SequentialUniform
	win     *reservoir.WindowedWeighted
	rounds  int

	// subMu guards the SSE subscriber set, which outlives individual
	// rounds and is closed exactly once when the run is deleted.
	subMu  sync.Mutex
	subs   map[chan []byte]struct{}
	closed bool
}

// newRun validates cfg and builds the sampler.
func newRun(id string, cfg RunConfig) (*Run, error) {
	if cfg.Kind == "" {
		cfg.Kind = KindCluster
	}
	r := &Run{id: id, subs: make(map[chan []byte]struct{})}
	switch cfg.Kind {
	case KindCluster:
		if cfg.Window != 0 || cfg.ChunkLen != 0 {
			return nil, badRequestf("window/chunk_len are only valid for windowed runs")
		}
		if cfg.P == 0 {
			cfg.P = 4
		}
		if cfg.P < 1 || cfg.P > maxPEs {
			return nil, badRequestf("p must be in [1, %d], got %d", maxPEs, cfg.P)
		}
		rcfg := reservoir.Config{
			K:              cfg.K,
			KMin:           cfg.KMin,
			KMax:           cfg.KMax,
			Weighted:       !cfg.Uniform,
			Strategy:       cfg.Strategy,
			Pivots:         cfg.Pivots,
			LocalThreshold: cfg.LocalThreshold,
			BlockedSkip:    cfg.BlockedSkip,
			Seed:           cfg.Seed,
		}
		opts := []reservoir.Option{reservoir.WithAlgorithm(cfg.Algorithm)}
		if cfg.AlphaNS > 0 || cfg.BetaNS > 0 {
			opts = append(opts, reservoir.WithNetworkCost(cfg.AlphaNS, cfg.BetaNS))
		}
		cl, err := reservoir.NewCluster(cfg.P, rcfg, opts...)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		r.cluster = cl
	case KindSequential, KindWindowed:
		if cfg.P > 1 {
			return nil, badRequestf("%s runs have a single stream; p must be 0 or 1", cfg.Kind)
		}
		cfg.P = 1
		if cfg.KMin != 0 || cfg.KMax != 0 {
			return nil, badRequestf("variable sample size (k_min/k_max) requires a cluster run")
		}
		if cfg.K < 1 {
			return nil, badRequestf("sample size k must be >= 1, got %d", cfg.K)
		}
		if cfg.Kind == KindSequential {
			if cfg.Window != 0 || cfg.ChunkLen != 0 {
				return nil, badRequestf("window/chunk_len are only valid for windowed runs")
			}
			if cfg.Uniform {
				r.seqU = reservoir.NewUniform(cfg.K, cfg.Seed)
			} else {
				r.seqW = reservoir.NewWeighted(cfg.K, cfg.Seed)
			}
			break
		}
		if cfg.Uniform {
			return nil, badRequestf("the windowed sampler is weighted only")
		}
		if cfg.Window < 1 || cfg.ChunkLen < 1 || cfg.Window%cfg.ChunkLen != 0 {
			return nil, badRequestf("windowed runs need window > 0, chunk_len > 0, and window %% chunk_len == 0")
		}
		r.win = reservoir.NewWindowed(cfg.K, cfg.Window, cfg.ChunkLen, cfg.Seed)
	default:
		return nil, badRequestf("unknown kind %q (want %q, %q, or %q)",
			cfg.Kind, KindCluster, KindSequential, KindWindowed)
	}
	r.cfg = cfg
	return r, nil
}

// ingest runs one or more whole mini-batch rounds and returns the stats
// snapshot after the last round. ctx bounds multi-round synthetic ingest:
// cancellation (client disconnect, server shutdown) stops the loop at the
// next round boundary.
func (r *Run) ingest(ctx context.Context, req IngestRequest) (Stats, error) {
	switch {
	case req.Synthetic != nil && len(req.Batches) > 0:
		return Stats{}, badRequestf("provide either batches or synthetic, not both")
	case req.Synthetic != nil:
		return r.ingestSynthetic(ctx, *req.Synthetic)
	case len(req.Batches) > 0:
		return r.ingestBatches(req.Batches)
	default:
		return Stats{}, badRequestf("empty ingest: provide batches or synthetic")
	}
}

func (r *Run) ingestBatches(batches [][]WireItem) (Stats, error) {
	if len(batches) != r.cfg.P {
		return Stats{}, badRequestf("got %d batches, run has p=%d PEs", len(batches), r.cfg.P)
	}
	sb := make([]reservoir.SliceBatch, len(batches))
	for i, b := range batches {
		s := make(reservoir.SliceBatch, len(b))
		for j, it := range b {
			if !r.cfg.Uniform && !(it.W > 0) {
				return Stats{}, badRequestf("batch %d item %d: weight must be > 0 for weighted sampling", i, j)
			}
			s[j] = reservoir.Item{W: it.W, ID: it.ID}
		}
		sb[i] = s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.cluster != nil:
		if err := r.cluster.ProcessBatches(sb); err != nil {
			return Stats{}, badRequestf("%v", err)
		}
		r.rounds = r.cluster.Round()
	case r.seqW != nil:
		r.seqW.ProcessBatch(sb[0])
		r.rounds++
	case r.seqU != nil:
		r.seqU.ProcessBatch(sb[0])
		r.rounds++
	case r.win != nil:
		r.win.ProcessBatch(sb[0])
		r.rounds++
	}
	st := r.statsLocked()
	r.publish(st)
	return st, nil
}

func (r *Run) ingestSynthetic(ctx context.Context, spec SyntheticSpec) (Stats, error) {
	if spec.BatchLen < 1 || spec.BatchLen > maxSynthBatch {
		return Stats{}, badRequestf("batch_len must be in [1, %d], got %d", maxSynthBatch, spec.BatchLen)
	}
	rounds := spec.Rounds
	if rounds == 0 {
		rounds = 1
	}
	if rounds < 1 || rounds > maxSynthRounds {
		return Stats{}, badRequestf("rounds must be in [1, %d], got %d", maxSynthRounds, rounds)
	}
	src, err := spec.source(r.cfg)
	if err != nil {
		return Stats{}, err
	}
	// The run mutex is taken per round, not per request, so stats, sample,
	// and other ingest requests interleave at round boundaries instead of
	// starving behind a long synthetic loop.
	var st Stats
	for i := 0; i < rounds; i++ {
		if err := ctx.Err(); err != nil {
			return st, &apiError{
				code: http.StatusServiceUnavailable,
				msg:  fmt.Sprintf("synthetic ingest stopped after %d of %d rounds: %v", i, rounds, err),
			}
		}
		r.mu.Lock()
		switch {
		case r.cluster != nil:
			r.cluster.ProcessRound(src)
			r.rounds = r.cluster.Round()
		case r.seqW != nil:
			r.seqW.ProcessBatch(src.NextBatch(0, r.rounds))
			r.rounds++
		case r.seqU != nil:
			r.seqU.ProcessBatch(src.NextBatch(0, r.rounds))
			r.rounds++
		case r.win != nil:
			r.win.ProcessBatch(src.NextBatch(0, r.rounds))
			r.rounds++
		}
		st = r.statsLocked()
		r.publish(st)
		r.mu.Unlock()
	}
	return st, nil
}

// source builds the workload generator for a synthetic ingest. Batches are
// derived from (seed, pe, round), so repeated requests against the same run
// continue the stream rather than replaying it.
func (s SyntheticSpec) source(cfg RunConfig) (reservoir.Source, error) {
	seed := s.Seed
	if seed == 0 {
		seed = cfg.Seed + 0x9E3779B97F4A7C15
	}
	switch s.Source {
	case "", "uniform":
		lo, hi := s.Lo, s.Hi
		if lo == 0 && hi == 0 {
			lo, hi = 0, 100 // the paper's weight range
		}
		if hi <= lo {
			return nil, badRequestf("uniform source needs hi > lo, got (%g, %g]", lo, hi)
		}
		if !cfg.Uniform && lo < 0 {
			return nil, badRequestf("uniform source on a weighted run needs lo >= 0, got %g", lo)
		}
		return reservoir.UniformSource{Seed: seed, BatchLen: s.BatchLen, Lo: lo, Hi: hi}, nil
	case "skewed":
		base, sd := s.BaseMean, s.SD
		if base == 0 {
			base = 50
		}
		if sd == 0 {
			sd = 10
		}
		return reservoir.SkewedSource{
			Seed: seed, BatchLen: s.BatchLen,
			BaseMean: base, RoundInc: s.RoundInc, RankInc: s.RankInc, SD: sd,
		}, nil
	case "pareto":
		shape := s.Shape
		if shape == 0 {
			shape = 1.5
		}
		return reservoir.ParetoSource{Seed: seed, BatchLen: s.BatchLen, Shape: shape}, nil
	default:
		return nil, badRequestf("unknown synthetic source %q (want uniform, skewed, or pareto)", s.Source)
	}
}

// sample gathers the current global sample.
func (r *Run) sample() ([]WireItem, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var items []reservoir.Item
	switch {
	case r.cluster != nil:
		items = r.cluster.Sample()
	case r.seqW != nil:
		items = r.seqW.Sample()
	case r.seqU != nil:
		items = r.seqU.Sample()
	case r.win != nil:
		items = r.win.Sample()
	}
	out := make([]WireItem, len(items))
	for i, it := range items {
		out[i] = WireItem{W: it.W, ID: it.ID}
	}
	return out, r.rounds
}

// stats snapshots the run's observable state.
func (r *Run) stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.statsLocked()
}

func (r *Run) statsLocked() Stats {
	st := Stats{ID: r.id, Kind: r.cfg.Kind, P: r.cfg.P, Rounds: r.rounds}
	switch {
	case r.cluster != nil:
		st.SampleSize = r.cluster.SampleSize()
		st.Threshold, st.HaveThreshold = r.cluster.Threshold()
		c := r.cluster.Counters()
		st.ItemsProcessed = c.ItemsProcessed
		st.Inserted = c.Inserted
		st.Selections = c.Selections
		st.SelectionDepth = c.SelectionRounds
		st.VirtualTimeNS = r.cluster.VirtualTime()
		n := r.cluster.NetworkStats()
		st.Network = &NetworkStats{Messages: n.Messages, Words: n.Words}
		t := r.cluster.Timing()
		st.Timing = &TimingStats{
			ScanNS: t.ScanNS, SelectNS: t.SelectNS,
			ThresholdNS: t.ThresholdNS, GatherNS: t.GatherNS, TotalNS: t.TotalNS(),
		}
	case r.seqW != nil:
		n, wSum := r.seqW.Seen()
		st.ItemsProcessed = n
		st.WeightSeen = wSum
		st.SampleSize = int(min(int64(r.cfg.K), n))
		st.Threshold, st.HaveThreshold = r.seqW.Threshold()
	case r.seqU != nil:
		n := r.seqU.Seen()
		st.ItemsProcessed = n
		st.SampleSize = int(min(int64(r.cfg.K), n))
		st.Threshold, st.HaveThreshold = r.seqU.Threshold()
	case r.win != nil:
		st.ItemsProcessed = r.win.Seen()
		st.SampleSize = r.win.SampleSize()
	}
	return st
}

// publish fans a stats snapshot out to all SSE subscribers. Sends are
// non-blocking: a slow subscriber misses intermediate rounds instead of
// stalling ingest. With no subscribers it returns before marshaling.
func (r *Run) publish(st Stats) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if len(r.subs) == 0 {
		return
	}
	b, err := json.Marshal(st)
	if err != nil {
		return
	}
	for ch := range r.subs {
		select {
		case ch <- b:
		default:
		}
	}
}

// subscribe registers an SSE listener; reports false if the run is deleted.
func (r *Run) subscribe() (chan []byte, bool) {
	r.subMu.Lock()
	defer r.subMu.Unlock()
	if r.closed {
		return nil, false
	}
	ch := make(chan []byte, 16)
	r.subs[ch] = struct{}{}
	return ch, true
}

func (r *Run) unsubscribe(ch chan []byte) {
	r.subMu.Lock()
	delete(r.subs, ch)
	r.subMu.Unlock()
}

// closeSubs ends all metric streams; called exactly once per run, either on
// DELETE or on server Close.
func (r *Run) closeSubs() {
	r.subMu.Lock()
	r.closed = true
	for ch := range r.subs {
		close(ch)
		delete(r.subs, ch)
	}
	r.subMu.Unlock()
}

// Server is the run store plus the HTTP surface.
type Server struct {
	mu     sync.RWMutex
	runs   map[string]*Run
	nextID int64
	closed bool

	// shutdownCtx is canceled by Close; it ends SSE streams and stops
	// multi-round synthetic ingest at the next round boundary.
	shutdownCtx context.Context
	shutdown    context.CancelFunc
	closeOnce   sync.Once
	logf        func(format string, args ...any)
}

// Option customizes New.
type Option func(*Server)

// WithLogger routes service logs (run lifecycle events) to logf.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// New returns an empty service.
func New(opts ...Option) *Server {
	s := &Server{
		runs: make(map[string]*Run),
		logf: func(string, ...any) {},
	}
	s.shutdownCtx, s.shutdown = context.WithCancel(context.Background())
	for _, o := range opts {
		o(s)
	}
	return s
}

// Close ends all SSE streams, stops multi-round synthetic ingest at the
// next round boundary, and rejects further run creation, so an enclosing
// http.Server.Shutdown can drain without being held open by long-lived
// work. In-flight explicit-batch rounds complete.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.shutdown()
		s.mu.Lock()
		s.closed = true
		runs := make([]*Run, 0, len(s.runs))
		for _, r := range s.runs {
			runs = append(runs, r)
		}
		s.mu.Unlock()
		for _, r := range runs {
			r.closeSubs()
		}
	})
}

// createRun allocates an ID, builds the sampler, and stores the run.
func (s *Server) createRun(cfg RunConfig) (*Run, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	s.nextID++
	id := fmt.Sprintf("r%d", s.nextID)
	s.mu.Unlock()

	run, err := newRun(id, cfg)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &apiError{code: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}
	if len(s.runs) >= maxRuns {
		s.mu.Unlock()
		return nil, &apiError{
			code: http.StatusTooManyRequests,
			msg:  fmt.Sprintf("run limit (%d) reached; delete a run first", maxRuns),
		}
	}
	s.runs[id] = run
	s.mu.Unlock()
	s.logf("created run %s (%s, p=%d, k=%d)", id, run.cfg.Kind, run.cfg.P, run.cfg.K)
	return run, nil
}

// lookup returns the run with the given ID.
func (s *Server) lookup(id string) (*Run, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.runs[id]
	return r, ok
}

// deleteRun removes a run and ends its metric streams.
func (s *Server) deleteRun(id string) bool {
	s.mu.Lock()
	r, ok := s.runs[id]
	if ok {
		delete(s.runs, id)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	r.closeSubs()
	s.logf("deleted run %s", id)
	return true
}

// listRuns snapshots the stats of all runs, ordered by ID.
func (s *Server) listRuns() []Stats {
	s.mu.RLock()
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.RUnlock()
	out := make([]Stats, len(runs))
	for i, r := range runs {
		out[i] = r.stats()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// runCount returns the number of live runs.
func (s *Server) runCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.runs)
}
