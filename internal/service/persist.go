package service

import (
	"encoding"
	"encoding/json"
	"fmt"
	"net/http"

	"reservoir"
	"reservoir/internal/store"
)

// Sampler-kind tags stored in snapshot files (opaque bytes to the store).
const (
	snapKindCluster = byte(1)
	snapKindSeqW    = byte(2)
	snapKindSeqU    = byte(3)
)

// snapshotable reports whether the run's sampler supports full-state
// checkpoints. Windowed runs and gather clusters do not: they persist
// their entire ingest history in the WAL and recover by full replay.
func (r *Run) snapshotable() bool {
	switch {
	case r.cluster != nil:
		return r.cluster.Algorithm() == reservoir.Distributed
	case r.seqW != nil, r.seqU != nil:
		return true
	default:
		return false
	}
}

// persistRound appends the upcoming round's input to the run's WAL. Called
// by the worker immediately before applying the round (write-ahead): a
// crash after the append replays the round on recovery; a crash before it
// leaves no trace of a round that never ran. Jobs rejected at the queue
// (429) never reach this point, so backpressure leaves no dangling WAL
// entries.
func (r *Run) persistRound(job *ingestJob) error {
	if r.log == nil {
		return nil
	}
	rec := &store.RoundRecord{Round: uint64(r.rounds)}
	if job.spec != nil {
		rec.Synthetic = job.spec
	} else {
		// Zero-copy: store.Item aliases the sampler item, and AppendRound
		// serializes the record before returning, so handing it the pooled
		// batch slices is safe — the buffers are not retained.
		rec.Batches = make([][]store.Item, len(job.batches))
		for i, b := range job.batches {
			rec.Batches[i] = b
		}
	}
	if err := r.log.AppendRound(rec); err != nil {
		return &apiError{
			code: http.StatusInternalServerError,
			msg:  fmt.Sprintf("persistence failure: %v", err),
		}
	}
	return nil
}

// snapshotBlob serializes the sampler for a checkpoint. Only the worker
// goroutine (or recovery, before the worker starts) may call it.
func (r *Run) snapshotBlob() (byte, []byte, error) {
	switch {
	case r.cluster != nil:
		blob, err := r.cluster.Snapshot()
		return snapKindCluster, blob, err
	case r.seqW != nil:
		blob, err := r.seqW.MarshalBinary()
		return snapKindSeqW, blob, err
	case r.seqU != nil:
		blob, err := r.seqU.MarshalBinary()
		return snapKindSeqU, blob, err
	default:
		return 0, nil, fmt.Errorf("run %s cannot snapshot", r.id)
	}
}

// checkpointDue reports whether the checkpoint cadence has tripped:
// enough rounds or enough WAL bytes since the last checkpoint.
func (r *Run) checkpointDue() bool {
	if r.log == nil || !r.snapshotable() {
		return false
	}
	if n := r.cfg.CheckpointRounds; n > 0 && r.rounds-r.lastCkRound >= n {
		return true
	}
	if m := r.cfg.CheckpointBytes; m > 0 && r.log.WALBytes() >= m {
		return r.rounds > r.lastCkRound
	}
	return false
}

// checkpoint writes a full sampler snapshot and rotates the WAL. Worker
// goroutine only, between rounds. Checkpoint failures are reported (and
// surfaced via the store's health status) but do not fail ingest: the WAL
// alone still recovers the run.
func (r *Run) checkpoint() {
	kind, blob, err := r.snapshotBlob()
	if err != nil {
		r.logger.Error("snapshot failed", "err", err)
		return
	}
	if err := r.log.Checkpoint(&store.Snapshot{Round: uint64(r.rounds), Kind: kind, Blob: blob}); err != nil {
		r.logger.Error("checkpoint failed", "err", err)
		return
	}
	r.lastCkRound = r.rounds
}

// finishPersistence runs on worker exit: unless the run is being deleted,
// it takes a final checkpoint (so a graceful shutdown restarts from a
// snapshot instead of a long replay) and closes the WAL handle.
func (r *Run) finishPersistence() {
	if r.log == nil {
		return
	}
	if !r.deleted.Load() && r.snapshotable() && r.rounds > r.lastCkRound {
		r.checkpoint()
	}
	if err := r.log.Close(); err != nil {
		r.logger.Error("closing WAL failed", "err", err)
	}
}

// Recover rebuilds every persisted run from the store: config, sampler
// state (latest checkpoint plus WAL replay), and round counters. It must
// be called before the server starts handling requests. Runs that cannot
// be recovered are skipped with a log line, their files left in place for
// inspection; the store itself failing is an error.
func (s *Server) Recover() error {
	if s.store == nil {
		return nil
	}
	ids, err := s.store.ListRuns()
	if err != nil {
		return fmt.Errorf("service: recover: %w", err)
	}
	s.mu.Lock()
	if s.store.NextID() > s.nextID {
		s.nextID = s.store.NextID()
	}
	s.mu.Unlock()
	for _, id := range ids {
		// Never touch the files of a run that is already live (Recover
		// called twice, or after createRun): LoadRun would truncate and
		// re-register the WAL handle out from under its worker.
		if _, live := s.lookup(id); live {
			s.logger.Warn("recover: run already live, skipped", "run", id)
			continue
		}
		if err := s.recoverRun(id); err != nil {
			s.logger.Error("recover failed; run skipped, files kept", "run", id, "err", err)
		}
	}
	return nil
}

// recoverRun rebuilds one run and starts its worker.
func (s *Server) recoverRun(id string) error {
	rs, rlog, err := s.store.LoadRun(id)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		rlog.Close()
		return err
	}
	var cfg RunConfig
	if err := json.Unmarshal(rs.Config, &cfg); err != nil {
		return fail(fmt.Errorf("config: %w", err))
	}
	run, err := newRun(id, cfg, s.defaults())
	if err != nil {
		return fail(fmt.Errorf("rebuild sampler: %w", err))
	}
	if rs.Warning != nil {
		s.logger.Warn("recovering to the last consistent round", "run", id, "warning", rs.Warning.Error())
	}
	if rs.Snapshot != nil {
		if err := run.restoreSnapshot(rs.Snapshot); err != nil {
			return fail(err)
		}
		run.lastCkRound = run.rounds
	}
	// Stream the WAL past the snapshot through the live ingest code paths;
	// one record is in memory at a time, so recovery of runs that never
	// checkpoint (windowed, gather) stays bounded.
	replayed, warn, err := s.store.ReplayRecords(id, uint64(run.rounds), run.replayRecord)
	if err != nil {
		return fail(err)
	}
	if warn != nil {
		// A gap or corrupt frame in the WAL proper (torn tails were already
		// truncated by LoadRun): the segment still holds records beyond the
		// replayed prefix, so registering the run for live append would
		// write new rounds *behind* them, out of round order, shadowing
		// those rounds on every future recovery. Refuse the run instead,
		// matching LoadRun's refuse-to-reset policy; the files stay for
		// inspection.
		return fail(warn)
	}
	run.log = rlog
	run.logger = s.logger.With("run", id)
	// Publish the recovered read view before the worker starts; from then
	// on the worker owns snapshot publication.
	run.publishSnapshot()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fail(fmt.Errorf("server is shutting down"))
	}
	if _, exists := s.runs[id]; exists {
		s.mu.Unlock()
		return fail(fmt.Errorf("run already registered"))
	}
	s.runs[id] = run
	s.workers.Add(1)
	run.start(s.shutdownCtx, s.workers.Done)
	s.mu.Unlock()
	s.registerRunMetrics(run)
	s.logger.Info("recovered run", "run", id, "kind", run.cfg.Kind, "p", run.cfg.P,
		"rounds", run.rounds, "snapshot", rs.Snapshot != nil, "replayed", replayed)
	return nil
}

// restoreSnapshot loads a checkpoint into the freshly built sampler.
func (r *Run) restoreSnapshot(sn *store.Snapshot) error {
	var err error
	switch sn.Kind {
	case snapKindCluster:
		if r.cluster == nil {
			return fmt.Errorf("snapshot kind %d does not match run kind %s", sn.Kind, r.cfg.Kind)
		}
		rcfg, opts := clusterSetup(r.cfg)
		var cl *reservoir.Cluster
		if cl, err = reservoir.RestoreCluster(rcfg, sn.Blob, opts...); err == nil {
			r.cluster = cl
			r.rounds = cl.Round()
		}
	case snapKindSeqW, snapKindSeqU:
		var u encoding.BinaryUnmarshaler
		if sn.Kind == snapKindSeqW && r.seqW != nil {
			u = r.seqW
		} else if sn.Kind == snapKindSeqU && r.seqU != nil {
			u = r.seqU
		} else {
			return fmt.Errorf("snapshot kind %d does not match run kind %s", sn.Kind, r.cfg.Kind)
		}
		if err = u.UnmarshalBinary(sn.Blob); err == nil {
			r.rounds = int(sn.Round)
		}
	default:
		return fmt.Errorf("unknown snapshot kind %d", sn.Kind)
	}
	if err != nil {
		return fmt.Errorf("restore snapshot: %w", err)
	}
	if uint64(r.rounds) != sn.Round {
		return fmt.Errorf("snapshot round %d, sampler state says %d", sn.Round, r.rounds)
	}
	return nil
}

// replayRecord re-applies one WAL round during recovery. Records replay on
// the same code paths the live worker uses, so a recovered run is the same
// deterministic continuation an uninterrupted run would have produced.
func (r *Run) replayRecord(rec *store.RoundRecord) error {
	if uint64(r.rounds) != rec.Round {
		return fmt.Errorf("replay gap: at round %d, next record is for round %d", r.rounds, rec.Round)
	}
	if rec.Synthetic != nil {
		var spec SyntheticSpec
		if err := json.Unmarshal(rec.Synthetic, &spec); err != nil {
			return fmt.Errorf("replay round %d: spec: %w", rec.Round, err)
		}
		src, err := spec.BuildSource(r.cfg)
		if err != nil {
			return fmt.Errorf("replay round %d: %w", rec.Round, err)
		}
		r.syntheticRound(src)
		return nil
	}
	batches := make([]reservoir.SliceBatch, len(rec.Batches))
	for i, b := range rec.Batches {
		batches[i] = reservoir.SliceBatch(b)
	}
	if err := r.explicitRound(batches); err != nil {
		return fmt.Errorf("replay round %d: %w", rec.Round, err)
	}
	return nil
}
