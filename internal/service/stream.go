package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// handleStream serves GET /v1/runs/{id}/metrics/stream: a server-sent-events
// feed that pushes one "stats" event per completed ingest round, preceded by
// an immediate snapshot of the current state. The stream ends when the
// client disconnects, the run is deleted, or the server shuts down.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	run, ok := s.lookupRun(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteErrorf(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	// Subscribe before the initial snapshot so no round between snapshot
	// and subscription is lost.
	ch, ok := run.subscribe()
	if !ok {
		WriteErrorf(w, http.StatusNotFound, "run %q was deleted", run.id)
		return
	}
	defer run.unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	snapshot, err := json.Marshal(run.stats())
	if err != nil {
		return
	}
	writeSSE(w, snapshot)
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.shutdownCtx.Done():
			return
		case b, ok := <-ch:
			if !ok {
				return // run deleted
			}
			writeSSE(w, b)
			fl.Flush()
		}
	}
}

func writeSSE(w io.Writer, data []byte) {
	fmt.Fprintf(w, "event: stats\ndata: %s\n\n", data)
}
