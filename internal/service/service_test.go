package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer starts the service behind httptest and tears it down with
// the test.
func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	svc := New()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return ts, svc
}

func doJSON(t *testing.T, method, url, body string, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 && len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, string(raw)
}

func createRun(t *testing.T, ts *httptest.Server, cfg string) CreateResponse {
	t.Helper()
	var resp CreateResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/runs", cfg, &resp)
	if code != http.StatusCreated {
		t.Fatalf("create run: got %d: %s", code, raw)
	}
	return resp
}

// makeBatches builds p explicit batches of n items each with distinct IDs.
func makeBatches(p, n int, idBase uint64) string {
	var b strings.Builder
	b.WriteString(`{"batches":[`)
	id := idBase
	for pe := 0; pe < p; pe++ {
		if pe > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"w":%g,"id":%d}`, 0.5+float64(id%97), id)
			id++
		}
		b.WriteByte(']')
	}
	b.WriteString(`]}`)
	return b.String()
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var h HealthResponse
	code, raw := doJSON(t, "GET", ts.URL+"/healthz", "", &h)
	if code != http.StatusOK || h.Status != "ok" || h.Runs != 0 {
		t.Fatalf("healthz: %d %s", code, raw)
	}
	createRun(t, ts, `{"k":4}`)
	doJSON(t, "GET", ts.URL+"/healthz", "", &h)
	if h.Runs != 1 {
		t.Fatalf("healthz runs = %d, want 1", h.Runs)
	}
}

func TestCreateRunDefaultsAndValidation(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := createRun(t, ts, `{"k":10}`)
	if resp.ID == "" || resp.Config.Kind != KindCluster || resp.Config.P != 4 {
		t.Fatalf("defaults not applied: %+v", resp)
	}

	bad := []string{
		`{`,                                     // malformed JSON
		`{"kind":"nope","k":4}`,                 // unknown kind
		`{}`,                                    // k missing
		`{"k":0}`,                               // k invalid
		`{"k":4,"p":-1}`,                        // p invalid
		`{"k":4,"p":99999}`,                     // p above cap
		`{"k":4,"algorithm":"zigzag"}`,          // unknown algorithm
		`{"k":4,"strategy":"sideways"}`,         // unknown strategy
		`{"k":4,"frobnicate":1}`,                // unknown field
		`{"k":4}{"k":8}`,                        // trailing data
		`{"kind":"cluster","k":4,"window":8}`,   // window on cluster
		`{"kind":"sequential","k":4,"p":3}`,     // multi-stream sequential
		`{"kind":"sequential","k":4,"k_max":8}`, // variable size, not cluster
		`{"kind":"windowed","k":4}`,             // window missing
		`{"kind":"windowed","k":4,"window":10,"chunk_len":4}`,               // not a multiple
		`{"kind":"windowed","k":4,"window":8,"chunk_len":4,"uniform":true}`, // windowed is weighted only
	}
	for _, cfg := range bad {
		if code, raw := doJSON(t, "POST", ts.URL+"/v1/runs", cfg, nil); code != http.StatusBadRequest {
			t.Errorf("config %s: got %d (%s), want 400", cfg, code, raw)
		}
	}
}

func TestClusterRunLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	const p, k = 2, 8
	run := createRun(t, ts, fmt.Sprintf(`{"kind":"cluster","p":%d,"k":%d,"seed":3}`, p, k))
	base := ts.URL + "/v1/runs/" + run.ID

	var st Stats
	for round := 0; round < 3; round++ {
		code, raw := doJSON(t, "POST", base+"/batches?wait=true", makeBatches(p, 50, uint64(round*1000)), &st)
		if code != http.StatusOK {
			t.Fatalf("ingest round %d: %d %s", round, code, raw)
		}
		if st.Rounds != round+1 {
			t.Fatalf("after ingest %d: rounds = %d", round, st.Rounds)
		}
	}
	if st.SampleSize != k || !st.HaveThreshold || st.Threshold <= 0 {
		t.Fatalf("stats after 3 rounds: %+v", st)
	}
	if st.ItemsProcessed != int64(3*p*50) {
		t.Fatalf("items processed = %d, want %d", st.ItemsProcessed, 3*p*50)
	}
	if st.Network == nil || st.Network.Messages == 0 || st.Network.Words == 0 {
		t.Fatalf("no simulated traffic recorded: %+v", st.Network)
	}
	if st.VirtualTimeNS <= 0 || st.Timing == nil || st.Timing.TotalNS <= 0 {
		t.Fatalf("no virtual time recorded: %v %+v", st.VirtualTimeNS, st.Timing)
	}

	var sr SampleResponse
	if code, raw := doJSON(t, "GET", base+"/sample", "", &sr); code != http.StatusOK {
		t.Fatalf("sample: %d %s", code, raw)
	}
	if sr.Count != k || len(sr.Items) != k || sr.Rounds != 3 {
		t.Fatalf("sample: count=%d len=%d rounds=%d, want k=%d rounds=3", sr.Count, len(sr.Items), sr.Rounds, k)
	}
	seen := map[uint64]bool{}
	for _, it := range sr.Items {
		if it.W <= 0 || seen[it.ID] {
			t.Fatalf("bad sample item %+v (dup=%v)", it, seen[it.ID])
		}
		seen[it.ID] = true
	}

	var got Stats
	if code, _ := doJSON(t, "GET", base+"/stats", "", &got); code != http.StatusOK || got.ID != run.ID {
		t.Fatalf("stats endpoint: %d %+v", code, got)
	}

	var list ListResponse
	doJSON(t, "GET", ts.URL+"/v1/runs", "", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != run.ID {
		t.Fatalf("list: %+v", list)
	}

	if code, _ := doJSON(t, "DELETE", base, "", nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := doJSON(t, "GET", base+"/stats", "", nil); code != http.StatusNotFound {
		t.Fatalf("stats after delete: %d, want 404", code)
	}
	if code, _ := doJSON(t, "DELETE", base, "", nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", code)
	}
}

func TestIngestValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":4}`)
	base := ts.URL + "/v1/runs/" + run.ID + "/batches"

	bad := []string{
		``,                 // empty body
		`{}`,               // neither batches nor synthetic
		`{"batches":[[]]}`, // 1 batch for p=2
		`{"batches":[[{"w":0,"id":1}],[{"w":1,"id":2}]]}`,           // nonpositive weight
		`{"batches":[[]],"synthetic":{"batch_len":10}}`,             // both
		`{"synthetic":{"batch_len":0}}`,                             // bad batch_len
		`{"synthetic":{"batch_len":10,"rounds":-2}}`,                // bad rounds
		`{"synthetic":{"batch_len":10,"source":"quantum"}}`,         // unknown source
		`{"synthetic":{"batch_len":10,"lo":-5,"hi":5}}`,             // negative weights on a weighted run
		`{"synthetic":{"batch_len":10,"lo":200,"hi":100}}`,          // hi <= lo
		`{"batches":[[{"w":1,"id":1,"extra":2}],[{"w":1,"id":2}]]}`, // unknown field
	}
	for _, body := range bad {
		if code, raw := doJSON(t, "POST", base, body, nil); code != http.StatusBadRequest {
			t.Errorf("ingest %s: got %d (%s), want 400", body, code, raw)
		}
	}

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/runs/nope/batches", `{"batches":[[],[]]}`, nil); code != http.StatusNotFound {
		t.Errorf("ingest into unknown run: %d, want 404", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/runs/nope/sample", "", nil); code != http.StatusNotFound {
		t.Errorf("sample of unknown run: %d, want 404", code)
	}
}

func TestSyntheticSources(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, src := range []string{"uniform", "skewed", "pareto"} {
		t.Run(src, func(t *testing.T) {
			run := createRun(t, ts, `{"kind":"cluster","p":2,"k":16,"seed":5}`)
			var st Stats
			body := fmt.Sprintf(`{"synthetic":{"source":%q,"batch_len":500,"rounds":4}}`, src)
			code, raw := doJSON(t, "POST", ts.URL+"/v1/runs/"+run.ID+"/batches?wait=true", body, &st)
			if code != http.StatusOK {
				t.Fatalf("synthetic ingest: %d %s", code, raw)
			}
			if st.Rounds != 4 || st.ItemsProcessed != 2*500*4 || st.SampleSize != 16 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

func TestUniformAndGatherRuns(t *testing.T) {
	ts, _ := newTestServer(t)

	uni := createRun(t, ts, `{"kind":"cluster","p":2,"k":6,"uniform":true,"seed":9}`)
	var st Stats
	doJSON(t, "POST", ts.URL+"/v1/runs/"+uni.ID+"/batches?wait=true",
		`{"synthetic":{"batch_len":100,"rounds":2}}`, &st)
	if st.SampleSize != 6 {
		t.Fatalf("uniform cluster sample size = %d, want 6", st.SampleSize)
	}

	g := createRun(t, ts, `{"kind":"cluster","p":2,"k":6,"algorithm":"gather","seed":9}`)
	if g.Config.Algorithm.String() != "gather" {
		t.Fatalf("algorithm not round-tripped: %+v", g.Config)
	}
	doJSON(t, "POST", ts.URL+"/v1/runs/"+g.ID+"/batches?wait=true",
		`{"synthetic":{"batch_len":100,"rounds":2}}`, &st)
	if st.SampleSize != 6 || st.Network.Messages == 0 {
		t.Fatalf("gather run stats: %+v", st)
	}

	mp := createRun(t, ts, `{"kind":"cluster","p":4,"k":32,"strategy":"multi-pivot","pivots":8,"seed":2}`)
	doJSON(t, "POST", ts.URL+"/v1/runs/"+mp.ID+"/batches?wait=true",
		`{"synthetic":{"batch_len":1000,"rounds":3}}`, &st)
	if st.SampleSize != 32 || st.Selections == 0 {
		t.Fatalf("multi-pivot run stats: %+v", st)
	}
}

func TestVariableSizeRun(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k_min":8,"k_max":16,"seed":4}`)
	var st Stats
	doJSON(t, "POST", ts.URL+"/v1/runs/"+run.ID+"/batches?wait=true",
		`{"synthetic":{"batch_len":400,"rounds":5}}`, &st)
	if st.SampleSize < 8 || st.SampleSize > 16 {
		t.Fatalf("variable-size sample = %d, want within [8, 16]", st.SampleSize)
	}
}

func TestSequentialRuns(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, cfg := range []string{
		`{"kind":"sequential","k":5,"seed":11}`,
		`{"kind":"sequential","k":5,"uniform":true,"seed":11}`,
	} {
		run := createRun(t, ts, cfg)
		base := ts.URL + "/v1/runs/" + run.ID
		var st Stats
		code, raw := doJSON(t, "POST", base+"/batches?wait=true", makeBatches(1, 40, 0), &st)
		if code != http.StatusOK {
			t.Fatalf("sequential ingest: %d %s", code, raw)
		}
		if st.Rounds != 1 || st.SampleSize != 5 || st.ItemsProcessed != 40 {
			t.Fatalf("sequential stats: %+v", st)
		}
		var sr SampleResponse
		doJSON(t, "GET", base+"/sample", "", &sr)
		if sr.Count != 5 {
			t.Fatalf("sequential sample count = %d, want 5", sr.Count)
		}
	}
}

func TestWindowedRun(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"windowed","k":4,"window":32,"chunk_len":8,"seed":13}`)
	base := ts.URL + "/v1/runs/" + run.ID
	var st Stats
	doJSON(t, "POST", base+"/batches?wait=true", makeBatches(1, 3, 500), &st)
	if st.SampleSize != 3 {
		t.Fatalf("partially filled windowed sample size = %d, want 3", st.SampleSize)
	}
	doJSON(t, "POST", base+"/batches?wait=true", makeBatches(1, 100, 0), &st)
	if st.Rounds != 2 || st.SampleSize != 4 || st.ItemsProcessed != 103 {
		t.Fatalf("windowed stats: %+v", st)
	}
	var sr SampleResponse
	doJSON(t, "GET", base+"/sample", "", &sr)
	if sr.Count != 4 {
		t.Fatalf("windowed sample count = %d, want 4", sr.Count)
	}
	// All sampled items must fall inside the sliding window: with 100
	// items seen and a 32-item window at chunk granularity, nothing
	// older than ID 64 can survive.
	for _, it := range sr.Items {
		if it.ID < 100-32-8 {
			t.Fatalf("sampled item %d is outside the window", it.ID)
		}
	}
}

// readEvent reads one SSE event ("event: ..." + "data: ..." + blank line)
// and decodes its payload.
func readEvent(t *testing.T, sc *bufio.Scanner) Stats {
	t.Helper()
	var data string
	for sc.Scan() {
		line := sc.Text()
		if d, ok := strings.CutPrefix(line, "data: "); ok {
			data = d
		}
		if line == "" && data != "" {
			break
		}
	}
	if data == "" {
		t.Fatalf("no SSE event (scanner err: %v)", sc.Err())
	}
	var st Stats
	if err := json.Unmarshal([]byte(data), &st); err != nil {
		t.Fatalf("decoding SSE payload %q: %v", data, err)
	}
	return st
}

func TestMetricsStream(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":8,"seed":6}`)
	base := ts.URL + "/v1/runs/" + run.ID

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", base+"/metrics/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	// Initial snapshot arrives before any ingest.
	if st := readEvent(t, sc); st.Rounds != 0 || st.ID != run.ID {
		t.Fatalf("initial snapshot: %+v", st)
	}

	var ingestStats Stats
	doJSON(t, "POST", base+"/batches?wait=true", `{"synthetic":{"batch_len":200,"rounds":2}}`, &ingestStats)

	first := readEvent(t, sc)
	second := readEvent(t, sc)
	if first.Rounds != 1 || second.Rounds != 2 {
		t.Fatalf("streamed rounds %d, %d; want 1, 2", first.Rounds, second.Rounds)
	}
	if second.SampleSize != 8 || second.Network == nil || second.Network.Messages == 0 {
		t.Fatalf("streamed stats: %+v", second)
	}

	// Deleting the run must end the stream.
	doJSON(t, "DELETE", base, "", nil)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil && ctx.Err() != nil {
		t.Fatalf("stream did not close on delete: %v", err)
	}

	// A new stream on the deleted run 404s.
	if code, _ := doJSON(t, "GET", base+"/metrics/stream", "", nil); code != http.StatusNotFound {
		t.Fatalf("stream on deleted run: %d, want 404", code)
	}
}

// TestRunLimit checks the cap on concurrently hosted runs.
func TestRunLimit(t *testing.T) {
	svc := New()
	defer svc.Close()
	for i := 0; i < maxRuns; i++ {
		if _, err := svc.createRun(RunConfig{Kind: KindSequential, K: 1}); err != nil {
			t.Fatalf("run %d rejected below the limit: %v", i, err)
		}
	}
	_, err := svc.createRun(RunConfig{Kind: KindSequential, K: 1})
	var api *apiError
	if !errors.As(err, &api) || api.code != http.StatusTooManyRequests {
		t.Fatalf("create beyond the limit: err = %v, want 429", err)
	}
}

// TestOversizedBody checks that an over-limit request body yields 413, not
// a generic 400.
func TestOversizedBody(t *testing.T) {
	ts, _ := newTestServer(t)
	huge := `{"k":4,"kind":"` + strings.Repeat("x", maxConfigBytes) + `"}`
	code, raw := doJSON(t, "POST", ts.URL+"/v1/runs", huge, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized config: got %d (%.80s), want 413", code, raw)
	}
}

// TestSyntheticIngestCanceled checks that a canceled job context stops a
// multi-round synthetic ingest at a round boundary instead of running all
// requested rounds to completion.
func TestSyntheticIngestCanceled(t *testing.T) {
	svc := New()
	defer svc.Close()
	run, err := svc.createRun(RunConfig{Kind: KindCluster, P: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	job, err := run.buildJob(IngestRequest{
		Synthetic: &SyntheticSpec{BatchLen: 10, Rounds: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job.ctx = ctx
	if err := run.enqueue(job); err != nil {
		t.Fatal(err)
	}
	res := <-job.done
	if res.err == nil {
		t.Fatal("ingest with canceled context succeeded")
	}
	if st := run.stats(); st.Rounds != 0 {
		t.Fatalf("canceled ingest still ran %d rounds", st.Rounds)
	}
}

// TestServerCloseStopsSyntheticIngest checks that Close cancels an
// in-flight multi-round ingest rather than letting it hold shutdown open.
func TestServerCloseStopsSyntheticIngest(t *testing.T) {
	svc := New()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp := struct{ ID string }{}
	doJSON(t, "POST", ts.URL+"/v1/runs", `{"kind":"cluster","p":2,"k":8,"seed":41}`, &resp)

	started := make(chan struct{})
	finished := make(chan int, 1)
	go func() {
		close(started)
		var st Stats
		doJSON(t, "POST", ts.URL+"/v1/runs/"+resp.ID+"/batches?wait=true",
			`{"synthetic":{"batch_len":2000,"rounds":10000}}`, &st)
		finished <- st.Rounds
	}()
	<-started
	// Let a few rounds run, then shut down mid-flight.
	for {
		var st Stats
		doJSON(t, "GET", ts.URL+"/v1/runs/"+resp.ID+"/stats", "", &st)
		if st.Rounds > 0 {
			break
		}
	}
	svc.Close()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("synthetic ingest did not stop on server Close")
	}
	var st Stats
	doJSON(t, "GET", ts.URL+"/v1/runs/"+resp.ID+"/stats", "", &st)
	if st.Rounds <= 0 || st.Rounds >= 10000 {
		t.Fatalf("rounds after canceled ingest = %d, want partial progress", st.Rounds)
	}
}

func TestServerCloseRejectsCreates(t *testing.T) {
	svc := New()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	svc.Close()
	code, _ := doJSON(t, "POST", ts.URL+"/v1/runs", `{"k":4}`, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create after Close: %d, want 503", code)
	}
}
