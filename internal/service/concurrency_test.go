package service

import (
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentIngestAcrossRuns is the acceptance demo of the serving
// layer (run it under -race): several runs are created and each is fed
// >= 10 mini-batch rounds by multiple concurrent HTTP clients — some with
// explicit per-PE batches, some with server-side synthetic rounds — while
// poller goroutines hammer the stats and sample endpoints. Afterwards each
// run must hold a sample of exactly k items, report every ingested round,
// and show nonzero simulated network traffic; throughout, the rounds
// counter observed by any single client must advance monotonically.
func TestConcurrentIngestAcrossRuns(t *testing.T) {
	ts, _ := newTestServer(t)

	type runSpec struct {
		cfg     string
		p, k    int
		clients int
		rounds  int // rounds per client
	}
	specs := []runSpec{
		{cfg: `{"kind":"cluster","p":4,"k":32,"seed":21}`, p: 4, k: 32, clients: 4, rounds: 4},
		{cfg: `{"kind":"cluster","p":2,"k":16,"algorithm":"gather","seed":22}`, p: 2, k: 16, clients: 3, rounds: 4},
		{cfg: `{"kind":"cluster","p":3,"k":8,"strategy":"multi-pivot","seed":23}`, p: 3, k: 8, clients: 2, rounds: 6},
	}

	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = createRun(t, ts, sp.cfg).ID
	}

	var wg sync.WaitGroup
	var failed atomic.Bool
	for i, sp := range specs {
		base := ts.URL + "/v1/runs/" + ids[i]

		// Ingest clients: half post explicit batches, half synthetic.
		for c := 0; c < sp.clients; c++ {
			wg.Add(1)
			go func(i, c int, sp runSpec) {
				defer wg.Done()
				lastRounds := 0
				for round := 0; round < sp.rounds; round++ {
					var body string
					if c%2 == 0 {
						idBase := uint64(i)<<40 | uint64(c)<<20 | uint64(round)<<10
						body = makeBatches(sp.p, 64, idBase)
					} else {
						body = `{"synthetic":{"batch_len":64}}`
					}
					var st Stats
					code, raw := doJSON(t, "POST", base+"/batches?wait=true", body, &st)
					if code != http.StatusOK {
						t.Errorf("run %s client %d: ingest failed: %d %s", ids[i], c, code, raw)
						failed.Store(true)
						return
					}
					// Each response reflects a state at least one round
					// after this client's previous response.
					if st.Rounds <= lastRounds {
						t.Errorf("run %s client %d: rounds went %d -> %d", ids[i], c, lastRounds, st.Rounds)
						failed.Store(true)
						return
					}
					lastRounds = st.Rounds
				}
			}(i, c, sp)
		}

		// A stats poller and a sample poller per run, racing the ingest.
		wg.Add(2)
		go func(base string, k int) {
			defer wg.Done()
			last := 0
			for j := 0; j < 20; j++ {
				var st Stats
				if code, _ := doJSON(t, "GET", base+"/stats", "", &st); code != http.StatusOK {
					failed.Store(true)
					return
				}
				if st.Rounds < last {
					t.Errorf("stats poller: rounds went backwards: %d -> %d", last, st.Rounds)
					failed.Store(true)
					return
				}
				last = st.Rounds
				if st.Rounds > 0 && st.SampleSize > 0 && st.SampleSize != k {
					t.Errorf("stats poller: sample size %d, want 0 or %d", st.SampleSize, k)
					failed.Store(true)
					return
				}
			}
		}(base, sp.k)
		go func(base string, k int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				var sr SampleResponse
				if code, _ := doJSON(t, "GET", base+"/sample", "", &sr); code != http.StatusOK {
					failed.Store(true)
					return
				}
				if sr.Count > k {
					t.Errorf("sample poller: %d items, cap is %d", sr.Count, k)
					failed.Store(true)
					return
				}
			}
		}(base, sp.k)
	}
	wg.Wait()
	if failed.Load() {
		t.FailNow()
	}

	for i, sp := range specs {
		base := ts.URL + "/v1/runs/" + ids[i]
		wantRounds := sp.clients * sp.rounds
		if wantRounds < 10 {
			t.Fatalf("spec %d ingests only %d rounds; the acceptance demo needs >= 10", i, wantRounds)
		}

		var st Stats
		doJSON(t, "GET", base+"/stats", "", &st)
		if st.Rounds != wantRounds {
			t.Errorf("run %s: %d rounds recorded, want %d", ids[i], st.Rounds, wantRounds)
		}
		if st.ItemsProcessed != int64(wantRounds*sp.p*64) {
			t.Errorf("run %s: %d items processed, want %d", ids[i], st.ItemsProcessed, wantRounds*sp.p*64)
		}
		if st.SampleSize != sp.k {
			t.Errorf("run %s: sample size %d, want exactly k=%d", ids[i], st.SampleSize, sp.k)
		}
		if st.Network == nil || st.Network.Messages == 0 || st.Network.Words == 0 {
			t.Errorf("run %s: no simulated network traffic: %+v", ids[i], st.Network)
		}

		var sr SampleResponse
		doJSON(t, "GET", base+"/sample", "", &sr)
		if sr.Count != sp.k || len(sr.Items) != sp.k {
			t.Errorf("run %s: sample returned %d items, want exactly k=%d", ids[i], sr.Count, sp.k)
		}
		seen := make(map[uint64]bool, sr.Count)
		for _, it := range sr.Items {
			if seen[it.ID] {
				t.Errorf("run %s: duplicate item %d in sample", ids[i], it.ID)
			}
			seen[it.ID] = true
		}
	}
}

// TestConcurrentStreamAndDelete races SSE subscribers against ingest and
// run deletion; under -race this covers the subscriber-set lifecycle.
func TestConcurrentStreamAndDelete(t *testing.T) {
	ts, _ := newTestServer(t)
	run := createRun(t, ts, `{"kind":"cluster","p":2,"k":8,"seed":31}`)
	base := ts.URL + "/v1/runs/" + run.ID

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/metrics/stream")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 4096)
			for {
				if _, err := resp.Body.Read(buf); err != nil {
					return // stream closed by delete
				}
			}
		}()
	}
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				doJSON(t, "POST", base+"/batches", `{"synthetic":{"batch_len":50}}`, nil)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Delete while streams and ingest are in flight; 404s from
		// clients racing the delete are expected and fine.
		doJSON(t, "DELETE", base, "", nil)
	}()
	wg.Wait()

	if code, _ := doJSON(t, "GET", base+"/stats", "", nil); code != http.StatusNotFound {
		t.Fatalf("stats after delete: %d, want 404", code)
	}
}
