package service

import (
	"testing"

	"reservoir/internal/testutil"
)

// TestMain fails the suite if an HTTP handler, WAL syncer, or snapshot
// goroutine outlives the tests.
func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
