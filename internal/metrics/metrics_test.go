package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("reservoir_test_items_total", "items", []string{"run"}, "r1")
	c.Add(3)
	c.Inc()
	c.Add(-5) // dropped: counters are monotone
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %g, want 4", got)
	}
	g := r.NewGauge("reservoir_test_depth", "depth", nil)
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %g, want 5", got)
	}
}

// TestHistogramBuckets checks cumulative bucket correctness against
// known latency samples (satellite: "histogram bucket correctness
// against known latency samples").
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	buckets := []float64{0.001, 0.01, 0.1, 1}
	h := r.NewHistogram("reservoir_test_round_seconds", "round latency", buckets, nil)
	samples := []float64{0.0005, 0.001, 0.0015, 0.05, 0.05, 0.5, 2, 3}
	for _, s := range samples {
		h.Observe(s)
	}
	// Expected cumulative counts: le=0.001 → {0.0005, 0.001} = 2;
	// le=0.01 → +0.0015 = 3; le=0.1 → +0.05×2 = 5; le=1 → +0.5 = 6;
	// +Inf → 8.
	want := map[string]float64{
		"0.001": 2, "0.01": 3, "0.1": 5, "1": 6, "+Inf": 8,
	}
	fams, err := Parse(r.Expose())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := fams["reservoir_test_round_seconds"]
	if f == nil {
		t.Fatal("family missing")
	}
	got := map[string]float64{}
	var sum, count float64
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			got[s.Labels["le"]] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	for le, wantCum := range want {
		if got[le] != wantCum {
			t.Errorf("bucket le=%s = %g, want %g", le, got[le], wantCum)
		}
	}
	var wantSum float64
	for _, s := range samples {
		wantSum += s
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %g, want %g", sum, wantSum)
	}
	if count != float64(len(samples)) {
		t.Errorf("count = %g, want %d", count, len(samples))
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("reservoir_ingest_items_total", "Items accepted.", []string{"run"}, "b").Add(2)
	r.NewCounter("reservoir_ingest_items_total", "Items accepted.", []string{"run"}, "a").Add(1)
	r.NewGauge("reservoir_queue_depth", "Queue depth.", []string{"run"}, `x"y\z`).Set(3)
	h := r.NewHistogram("reservoir_round_seconds", "Round latency.", []float64{0.5, 1}, nil)
	h.Observe(0.25)
	h.Observe(2)
	want := `# HELP reservoir_ingest_items_total Items accepted.
# TYPE reservoir_ingest_items_total counter
reservoir_ingest_items_total{run="a"} 1
reservoir_ingest_items_total{run="b"} 2
# HELP reservoir_queue_depth Queue depth.
# TYPE reservoir_queue_depth gauge
reservoir_queue_depth{run="x\"y\\z"} 3
# HELP reservoir_round_seconds Round latency.
# TYPE reservoir_round_seconds histogram
reservoir_round_seconds_bucket{le="0.5"} 1
reservoir_round_seconds_bucket{le="1"} 1
reservoir_round_seconds_bucket{le="+Inf"} 2
reservoir_round_seconds_sum 2.25
reservoir_round_seconds_count 2
`
	if got := r.Expose(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRoundTripOwnOutput(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("reservoir_a_total", "a", nil).Inc()
	r.GaugeFunc("reservoir_b", "b", []string{"peer"}, []string{"1"}, func() float64 { return 42 })
	r.NewHistogram("reservoir_c_seconds", "c", DefBuckets, []string{"run"}, "z").Observe(0.003)
	if _, err := Lint(r.Expose()); err != nil {
		t.Fatalf("own output fails lint: %v", err)
	}
}

func TestParserRejects(t *testing.T) {
	cases := map[string]string{
		"no help":        "reservoir_x_total 1\n",
		"type sans help": "# TYPE reservoir_x_total counter\nreservoir_x_total 1\n",
		"bad type":       "# HELP reservoir_x_total x\n# TYPE reservoir_x_total summary\n",
		"dup series":     "# HELP reservoir_x_total x\n# TYPE reservoir_x_total counter\nreservoir_x_total 1\nreservoir_x_total 2\n",
		"bad name":       "# HELP 9bad x\n# TYPE 9bad counter\n",
		"bad label":      "# HELP reservoir_x_total x\n# TYPE reservoir_x_total counter\nreservoir_x_total{__n=\"v\"} 1\n",
		"unterminated":   "# HELP reservoir_x_total x\n# TYPE reservoir_x_total counter\nreservoir_x_total{a=\"v} 1\n",
		"inf mismatch": "# HELP reservoir_h h\n# TYPE reservoir_h histogram\n" +
			"reservoir_h_bucket{le=\"1\"} 1\nreservoir_h_bucket{le=\"+Inf\"} 3\n" +
			"reservoir_h_sum 1\nreservoir_h_count 2\n",
		"shrinking cumulative": "# HELP reservoir_h h\n# TYPE reservoir_h histogram\n" +
			"reservoir_h_bucket{le=\"1\"} 5\nreservoir_h_bucket{le=\"2\"} 3\nreservoir_h_bucket{le=\"+Inf\"} 6\n" +
			"reservoir_h_sum 1\nreservoir_h_count 6\n",
		"missing sum": "# HELP reservoir_h h\n# TYPE reservoir_h histogram\n" +
			"reservoir_h_bucket{le=\"+Inf\"} 1\nreservoir_h_count 1\n",
	}
	for name, body := range cases {
		if _, err := Parse(body); err == nil {
			t.Errorf("%s: parser accepted malformed input", name)
		}
	}
}

func TestLintConventions(t *testing.T) {
	if _, err := Lint("# HELP foo_x x\n# TYPE foo_x gauge\nfoo_x 1\n"); err == nil {
		t.Error("lint accepted non-reservoir prefix")
	}
	if _, err := Lint("# HELP reservoir_x x\n# TYPE reservoir_x counter\nreservoir_x 1\n"); err == nil {
		t.Error("lint accepted counter without _total")
	}
}

func TestSchemaDriftPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("reservoir_x_total", "x", []string{"run"}, "a")
	mustPanic(t, "type drift", func() { r.NewGauge("reservoir_x_total", "x", []string{"run"}, "a") })
	mustPanic(t, "label drift", func() { r.NewCounter("reservoir_x_total", "x", []string{"peer"}, "a") })
	mustPanic(t, "arity drift", func() { r.NewCounter("reservoir_x_total", "x", []string{"run"}) })
	r.NewHistogram("reservoir_h_seconds", "h", []float64{1, 2}, nil)
	mustPanic(t, "bucket drift", func() { r.NewHistogram("reservoir_h_seconds", "h", []float64{1, 3}, nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("reservoir_x_total", "x", []string{"run"}, "keep").Inc()
	r.NewCounter("reservoir_x_total", "x", []string{"run"}, "drop").Inc()
	r.NewHistogram("reservoir_h_seconds", "h", []float64{1}, []string{"run"}, "drop").Observe(0.5)
	r.Unregister("run", "drop")
	out := r.Expose()
	if strings.Contains(out, `run="drop"`) {
		t.Fatalf("dropped series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `run="keep"`) {
		t.Fatalf("kept series missing:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("reservoir_x_total", "x", nil).Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content-type = %q", ct)
	}
	res2, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", res2.StatusCode)
	}
}

// TestConcurrentScrape hammers every series type from many goroutines
// while scraping; run under -race this is the package-level half of the
// scrape-during-ingest satellite.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.NewCounter("reservoir_x_total", "x", []string{"w"}, fmt.Sprint(i))
			g := r.NewGauge("reservoir_g", "g", []string{"w"}, fmt.Sprint(i))
			h := r.NewHistogram("reservoir_h_seconds", "h", DefBuckets, []string{"w"}, fmt.Sprint(i))
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j%100) / 1000)
			}
		}(i)
	}
	for k := 0; k < 50; k++ {
		if _, err := Parse(r.Expose()); err != nil {
			t.Errorf("scrape %d: %v", k, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
