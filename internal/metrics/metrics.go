// Package metrics is a small, dependency-free metrics registry that
// renders the Prometheus text exposition format (version 0.0.4).
//
// It exists because the repo has a zero-dependency policy: we cannot
// vendor client_golang, but the operations surface (ISSUE 10, ROADMAP
// "Production operations surface") needs counters, gauges and
// histograms with labels served over GET /metrics.
//
// Design notes:
//
//   - A Registry holds families (one per metric name). A family fixes
//     the metric type, help text and label-name schema at registration
//     time; registering the same name with a different type or label
//     set is an error. This is the "unregistered-label drift" guard the
//     metrics-contract CI check relies on.
//   - Series (one per label-value combination) are created lazily and
//     are safe for concurrent use. Counters and gauges are a single
//     atomic uint64 holding float bits; histograms keep atomic bucket
//     counts plus sum/count.
//   - Func variants (GaugeFunc/CounterFunc) read a callback at scrape
//     time — used to expose values that already live in hot-path
//     atomics (e.g. tcpnet per-peer byte counters) without double
//     accounting.
//   - Output is deterministic: families sorted by name, series sorted
//     by label values. That keeps golden tests and scrape diffs stable.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Type enumerates the exposition metric types we support.
type Type string

const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// ContentType is the Content-Type for the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Registry is a set of metric families. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name       string
	help       string
	typ        Type
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series // key: canonical label-value key
}

type series struct {
	labelValues []string

	// scalar storage (counter/gauge)
	bits atomic.Uint64

	// callback storage (Func variants); nil for regular series
	fn func() float64

	// histogram storage; nil for scalars
	hist *histState
}

type histState struct {
	bucketCounts []atomic.Uint64 // one per bucket (exclusive of +Inf)
	count        atomic.Uint64
	sumBits      atomic.Uint64
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register creates or fetches a family, enforcing schema consistency.
func (r *Registry) register(name, help string, typ Type, labelNames []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, ln := range labelNames {
		if !validLabelName(ln) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", ln, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %q re-registered as %s, was %s", name, typ, f.typ))
		}
		if !equalStrings(f.labelNames, labelNames) {
			panic(fmt.Sprintf("metrics: %q re-registered with labels %v, was %v", name, labelNames, f.labelNames))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    buckets,
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seriesKey(values []string) string {
	// \xff never appears in valid UTF-8 label text positions we care
	// about distinguishing; good enough as a separator for map keys.
	return strings.Join(values, "\xff")
}

func (f *family) getSeries(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labelNames), len(labelValues)))
	}
	key := seriesKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	if f.typ == TypeHistogram {
		s.hist = &histState{bucketCounts: make([]atomic.Uint64, len(f.buckets))}
	}
	f.series[key] = s
	return s
}

func (f *family) setFunc(labelValues []string, fn func() float64) {
	s := f.getSeries(labelValues)
	f.mu.Lock()
	s.fn = fn
	f.mu.Unlock()
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Add increments the counter by v (v must be >= 0; negative deltas are
// silently dropped to keep the series monotone).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current value (for tests).
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add increments (or decrements, for negative v) the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.s.bits, v)
}

// Value returns the current value (for tests).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	st := h.s.hist
	// Buckets are cumulative in exposition, but we store per-bucket
	// increments on the first bucket whose bound >= v and sum at render
	// time; that keeps Observe to two atomic ops plus a search.
	//
	// count is bumped BEFORE the bucket: the renderer reads buckets
	// first and count after, so with seq-cst atomics any bucket
	// increment it observes has its count increment visible too, and
	// the +Inf bucket (rendered from count) stays >= the finite
	// cumulative counts even mid-scrape.
	st.count.Add(1)
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(st.bucketCounts) {
		st.bucketCounts[i].Add(1)
	}
	addFloat(&st.sumBits, v)
}

// Sum returns the running sum of observations (for tests).
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.hist.sumBits.Load()) }

// Count returns the number of observations (for tests).
func (h *Histogram) Count() uint64 { return h.s.hist.count.Load() }

// NewCounter registers (or fetches) a counter family and returns the
// series for the given label values.
func (r *Registry) NewCounter(name, help string, labelNames []string, labelValues ...string) *Counter {
	f := r.register(name, help, TypeCounter, labelNames, nil)
	return &Counter{s: f.getSeries(labelValues)}
}

// NewGauge registers (or fetches) a gauge family and returns the
// series for the given label values.
func (r *Registry) NewGauge(name, help string, labelNames []string, labelValues ...string) *Gauge {
	f := r.register(name, help, TypeGauge, labelNames, nil)
	return &Gauge{s: f.getSeries(labelValues)}
}

// NewHistogram registers (or fetches) a histogram family with the
// given upper bounds (must be sorted ascending, +Inf implicit) and
// returns the series for the given label values.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labelNames []string, labelValues ...string) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing", name))
		}
	}
	f := r.register(name, help, TypeHistogram, labelNames, append([]float64(nil), buckets...))
	if !equalFloats(f.buckets, buckets) {
		panic(fmt.Sprintf("metrics: histogram %q re-registered with different buckets", name))
	}
	return &Histogram{s: f.getSeries(labelValues), buckets: f.buckets}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. Useful for exposing values already maintained as atomics on
// hot paths.
func (r *Registry) GaugeFunc(name, help string, labelNames []string, labelValues []string, fn func() float64) {
	f := r.register(name, help, TypeGauge, labelNames, nil)
	f.setFunc(labelValues, fn)
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, labelNames []string, labelValues []string, fn func() float64) {
	f := r.register(name, help, TypeCounter, labelNames, nil)
	f.setFunc(labelValues, fn)
}

// Unregister removes every series of every family whose label values
// match pred for the given label name. Used to drop per-run series
// when a run is deleted so cardinality does not grow without bound.
func (r *Registry) Unregister(labelName, labelValue string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, f := range r.families {
		idx := -1
		for i, ln := range f.labelNames {
			if ln == labelName {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		f.mu.Lock()
		for key, s := range f.series {
			if s.labelValues[idx] == labelValue {
				delete(f.series, key)
			}
		}
		f.mu.Unlock()
	}
}

// DefBuckets are general-purpose latency buckets in seconds, spanning
// 100µs .. 10s. Round latencies at batch=50k land in the ms range;
// fsync latencies in the 100µs–10ms range.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// PctBuckets are buckets for percentage-valued histograms (0..100).
var PctBuckets = []float64{0, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 100}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\n\"") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in Prometheus text format 0.0.4.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.render(w)
	}
}

// Expose returns the full exposition as a string.
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler returns an http.Handler serving the exposition at GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body := r.Expose()
		w.Header().Set("Content-Type", ContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		if req.Method == http.MethodHead {
			return
		}
		_, _ = w.Write([]byte(body))
	})
}

func (f *family) render(w *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type snap struct {
		labelValues []string
		value       float64
		buckets     []uint64 // cumulative, histograms only
		count       uint64
		sum         float64
	}
	snaps := make([]snap, 0, len(keys))
	for _, k := range keys {
		s := f.series[k]
		sn := snap{labelValues: s.labelValues}
		switch {
		case s.hist != nil:
			sn.buckets = make([]uint64, len(f.buckets))
			var cum uint64
			for i := range f.buckets {
				cum += s.hist.bucketCounts[i].Load()
				sn.buckets[i] = cum
			}
			sn.count = s.hist.count.Load()
			sn.sum = math.Float64frombits(s.hist.sumBits.Load())
		case s.fn != nil:
			sn.value = s.fn()
		default:
			sn.value = math.Float64frombits(s.bits.Load())
		}
		snaps = append(snaps, sn)
	}
	f.mu.Unlock()

	if len(snaps) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, sn := range snaps {
		if f.typ == TypeHistogram {
			for i, ub := range f.buckets {
				w.WriteString(f.name)
				w.WriteString("_bucket")
				f.renderLabels(w, sn.labelValues, formatFloat(ub))
				fmt.Fprintf(w, " %d\n", sn.buckets[i])
			}
			w.WriteString(f.name)
			w.WriteString("_bucket")
			f.renderLabels(w, sn.labelValues, "+Inf")
			fmt.Fprintf(w, " %d\n", sn.count)
			w.WriteString(f.name)
			w.WriteString("_sum")
			f.renderLabels(w, sn.labelValues, "")
			fmt.Fprintf(w, " %s\n", formatFloat(sn.sum))
			w.WriteString(f.name)
			w.WriteString("_count")
			f.renderLabels(w, sn.labelValues, "")
			fmt.Fprintf(w, " %d\n", sn.count)
		} else {
			w.WriteString(f.name)
			f.renderLabels(w, sn.labelValues, "")
			fmt.Fprintf(w, " %s\n", formatFloat(sn.value))
		}
	}
}

// renderLabels writes {k="v",...} including the le label when
// leValue is nonempty.
func (f *family) renderLabels(w *strings.Builder, values []string, leValue string) {
	if len(f.labelNames) == 0 && leValue == "" {
		return
	}
	w.WriteByte('{')
	first := true
	for i, ln := range f.labelNames {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(ln)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(values[i]))
		w.WriteByte('"')
	}
	if leValue != "" {
		if !first {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(leValue)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}
