package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements a strict parser for the Prometheus text
// exposition format (0.0.4). It is the fixture behind the
// metrics-contract CI check: every /metrics surface in the repo is
// scraped in a test and must round-trip through Parse without errors.
// The parser deliberately rejects more than Prometheus itself would
// (duplicate series, TYPE after samples, histogram bucket
// inconsistencies) so drift is caught at lint time, not on a dashboard.

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    Type
	Samples []Sample
}

// Parse parses a full exposition body, validating structure. It
// returns families keyed by name.
func Parse(body string) (map[string]*Family, error) {
	families := make(map[string]*Family)
	var cur *Family
	seen := make(map[string]bool) // duplicate-series guard: name + canonical labels
	lineNo := 0
	for _, line := range strings.Split(body, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP", lineNo)
			}
			if f, ok := families[name]; ok && len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: HELP for %s after samples", lineNo, name)
			}
			cur = &Family{Name: name, Help: help}
			families[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE", lineNo)
			}
			f, exists := families[name]
			if !exists || f.Help == "" {
				return nil, fmt.Errorf("line %d: TYPE %s without preceding HELP", lineNo, name)
			}
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			switch Type(typ) {
			case TypeCounter, TypeGauge, TypeHistogram:
				f.Type = Type(typ)
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := baseName(s.Name)
		f, ok := families[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s without HELP/TYPE", lineNo, s.Name)
		}
		if f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before TYPE", lineNo, s.Name)
		}
		if f.Type != TypeHistogram && s.Name != base {
			return nil, fmt.Errorf("line %d: suffix %s on non-histogram %s", lineNo, s.Name, base)
		}
		key := s.Name + "\xff" + canonicalLabels(s.Labels)
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, s.Name)
		}
		seen[key] = true
		f.Samples = append(f.Samples, s)
	}
	for _, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s: HELP without TYPE", f.Name)
		}
		if f.Type == TypeHistogram {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// baseName strips histogram suffixes.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(baseName(s.Name)) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// value [timestamp] — we reject timestamps; nothing in this repo
	// emits them.
	if strings.Contains(rest, " ") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a {k="v",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		j := strings.IndexByte(s[i:], '=')
		if j < 0 {
			return 0, fmt.Errorf("malformed label block")
		}
		name := s[i : i+j]
		if name != "le" && !validLabelName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		i += j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c", s[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := out[name]; dup {
			return 0, fmt.Errorf("duplicate label %q", name)
		}
		out[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// checkHistogram validates that every histogram series has monotone
// cumulative buckets ending in a +Inf bucket that equals _count, and
// that _sum/_count exist for every label combination.
func checkHistogram(f *Family) error {
	type hseries struct {
		buckets  map[float64]float64 // le → cumulative count
		sum      *float64
		count    *float64
		infCount *float64
	}
	bySeries := make(map[string]*hseries)
	get := func(labels map[string]string) *hseries {
		// Identity excludes le.
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				cp[k] = v
			}
		}
		key := canonicalLabels(cp)
		h, ok := bySeries[key]
		if !ok {
			h = &hseries{buckets: map[float64]float64{}}
			bySeries[key] = h
		}
		return h
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		h := get(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			ub, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			v := s.Value
			if math.IsInf(ub, 1) {
				h.infCount = &v
			}
			h.buckets[ub] = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			v := s.Value
			h.sum = &v
		case strings.HasSuffix(s.Name, "_count"):
			v := s.Value
			h.count = &v
		default:
			return fmt.Errorf("%s: bare sample %s inside histogram family", f.Name, s.Name)
		}
	}
	for key, h := range bySeries {
		if h.sum == nil || h.count == nil {
			return fmt.Errorf("%s{%s}: missing _sum or _count", f.Name, key)
		}
		if h.infCount == nil {
			return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, key)
		}
		if *h.infCount != *h.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %g != count %g", f.Name, key, *h.infCount, *h.count)
		}
		ubs := make([]float64, 0, len(h.buckets))
		for ub := range h.buckets {
			ubs = append(ubs, ub)
		}
		sort.Float64s(ubs)
		prev := math.Inf(-1)
		prevCount := -1.0
		for _, ub := range ubs {
			if ub <= prev {
				return fmt.Errorf("%s{%s}: buckets not strictly increasing", f.Name, key)
			}
			if h.buckets[ub] < prevCount {
				return fmt.Errorf("%s{%s}: cumulative counts decrease at le=%g", f.Name, key, ub)
			}
			prev, prevCount = ub, h.buckets[ub]
		}
	}
	return nil
}

// Lint parses body and additionally enforces repo conventions: every
// family name must carry the reservoir_ prefix and counters must end
// in _total (unless histogram/gauge). Returns parsed families on
// success.
func Lint(body string) (map[string]*Family, error) {
	fams, err := Parse(body)
	if err != nil {
		return nil, err
	}
	for name, f := range fams {
		if !strings.HasPrefix(name, "reservoir_") && !strings.HasPrefix(name, "go_") {
			return nil, fmt.Errorf("family %s: missing reservoir_ prefix", name)
		}
		if f.Type == TypeCounter && !strings.HasSuffix(name, "_total") {
			return nil, fmt.Errorf("counter %s: missing _total suffix", name)
		}
	}
	return fams, nil
}
