package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// engines returns one instance of every Source implementation, freshly
// seeded, keyed by name.
func engines(seed uint64) map[string]Source {
	return map[string]Source{
		"splitmix64": NewSplitMix64(seed),
		"xoshiro256": NewXoshiro256(seed),
		"mt19937-64": NewMT19937(seed),
		"counter":    &counterSource{c: Counter{Seed: seed}},
	}
}

// counterSource adapts Counter to the Source interface for the shared
// statistical tests.
type counterSource struct {
	c Counter
	i uint64
}

func (s *counterSource) Uint64() uint64 {
	v := s.c.At(s.i)
	s.i++
	return v
}

func TestMT19937ReferenceVectors(t *testing.T) {
	// First outputs of the reference mt19937-64.c seeded with
	// init_by_array64({0x12345, 0x23456, 0x34567, 0x45678}); these are the
	// first numbers of the canonical mt19937-64.out file.
	m := NewMT19937(0)
	m.SeedByArray([]uint64{0x12345, 0x23456, 0x34567, 0x45678})
	want := []uint64{
		7266447313870364031,
		4946485549665804864,
		16945909448695747420,
		16394063075524226720,
		4873882236456199058,
	}
	for i, w := range want {
		if got := m.Uint64(); got != w {
			t.Fatalf("MT19937-64 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937SingleSeedDeterminism(t *testing.T) {
	a, b := NewMT19937(42), NewMT19937(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewMT19937(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewMT19937(42).mt[i%nn] == c.mt[i%nn] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical state words", same)
	}
}

func TestXoshiroJumpDisjoint(t *testing.T) {
	// After a Jump, the stream must not overlap with the original prefix.
	a := NewXoshiro256(7)
	prefix := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		prefix[a.Uint64()] = true
	}
	b := NewXoshiro256(7)
	b.Jump()
	for i := 0; i < 4096; i++ {
		if prefix[b.Uint64()] {
			t.Fatalf("jumped stream collided with original prefix at step %d", i)
		}
	}
}

func TestU01Range(t *testing.T) {
	for name, src := range engines(1) {
		for i := 0; i < 100000; i++ {
			v := U01(src)
			if !(v > 0 && v <= 1) {
				t.Fatalf("%s: U01 out of (0,1]: %v", name, v)
			}
			w := U01CO(src)
			if !(w >= 0 && w < 1) {
				t.Fatalf("%s: U01CO out of [0,1): %v", name, w)
			}
		}
	}
}

func TestU01Moments(t *testing.T) {
	const n = 200000
	for name, src := range engines(99) {
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			v := U01(src)
			sum += v
			sumsq += v * v
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean-0.5) > 0.005 {
			t.Errorf("%s: uniform mean = %v, want 0.5", name, mean)
		}
		if math.Abs(variance-1.0/12) > 0.005 {
			t.Errorf("%s: uniform variance = %v, want 1/12", name, variance)
		}
	}
}

func TestUniformRange(t *testing.T) {
	src := NewXoshiro256(3)
	for i := 0; i < 100000; i++ {
		v := Uniform(src, 2, 5)
		if !(v > 2 && v <= 5) {
			t.Fatalf("Uniform(2,5) out of range: %v", v)
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	const n = 300000
	for _, rate := range []float64{0.25, 1, 4, 1000} {
		src := NewXoshiro256(5)
		var sum float64
		for i := 0; i < n; i++ {
			v := Exponential(src, rate)
			if v < 0 {
				t.Fatalf("negative exponential variate %v", v)
			}
			sum += v
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.02 {
			t.Errorf("Exponential(rate=%v) mean = %v, want %v", rate, mean, want)
		}
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	Exponential(NewXoshiro256(1), 0)
}

func TestGeometricSkipMoments(t *testing.T) {
	const n = 200000
	for _, p := range []float64{0.9, 0.5, 0.1, 0.01} {
		src := NewXoshiro256(11)
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(GeometricSkip(src, p))
		}
		mean := sum / n
		want := (1 - p) / p // mean of geometric counting failures
		tol := 0.03 * (want + 1)
		if math.Abs(mean-want) > tol {
			t.Errorf("GeometricSkip(p=%v) mean = %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricSkipEdgeCases(t *testing.T) {
	src := NewXoshiro256(1)
	if got := GeometricSkip(src, 1); got != 0 {
		t.Errorf("GeometricSkip(p=1) = %d, want 0", got)
	}
	if got := GeometricSkip(src, 1.5); got != 0 {
		t.Errorf("GeometricSkip(p=1.5) = %d, want 0", got)
	}
	// Extremely small p must not overflow int.
	v := GeometricSkip(src, 1e-300)
	if v < 0 {
		t.Errorf("GeometricSkip(tiny p) negative: %d", v)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	const n = 200000
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		src := NewXoshiro256(17)
		hits := 0
		for i := 0; i < n; i++ {
			if Bernoulli(src, p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	src := NewXoshiro256(23)
	counts := make([]int, 7)
	const n = 140000
	for i := 0; i < n; i++ {
		v := Intn(src, 7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/7.0) > 0.05*n/7.0 {
			t.Errorf("Intn(7) bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	src := NewXoshiro256(29)
	const n = 300000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := Normal(src, 10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %v, want 10", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("Normal variance = %v, want 9", variance)
	}
}

func TestParetoTail(t *testing.T) {
	src := NewXoshiro256(31)
	const n = 200000
	over2 := 0
	for i := 0; i < n; i++ {
		v := Pareto(src, 2)
		if v < 1 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 2 {
			over2++
		}
	}
	// P[X > 2] = 2^-2 = 0.25 for shape 2.
	got := float64(over2) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Pareto(2) tail P[X>2] = %v, want 0.25", got)
	}
}

func TestCounterIsStateless(t *testing.T) {
	c := Counter{Seed: 123}
	if err := quick.Check(func(i uint64) bool {
		return c.At(i) == c.At(i) && c.U01At(i) > 0 && c.U01At(i) <= 1
	}, nil); err != nil {
		t.Error(err)
	}
	// Different seeds must give different streams almost everywhere.
	d := Counter{Seed: 124}
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if c.At(i) == d.At(i) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("counter streams for adjacent seeds agree at %d/1000 indices", same)
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a sample; Mix64 is a documented bijection.
	seen := make(map[uint64]uint64, 100000)
	for i := uint64(0); i < 100000; i++ {
		v := Mix64(i)
		if j, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, j)
		}
		seen[v] = i
	}
}

// Kolmogorov-Smirnov test of U01 uniformity for every engine.
func TestU01KolmogorovSmirnov(t *testing.T) {
	const n = 20000
	for name, src := range engines(77) {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = U01(src)
		}
		sortFloats(xs)
		var d float64
		for i, x := range xs {
			lo := x - float64(i)/n
			hi := float64(i+1)/n - x
			if lo > d {
				d = lo
			}
			if hi > d {
				d = hi
			}
		}
		// Critical value at alpha ~ 1e-4: ~1.95/sqrt(n).
		if limit := 1.95 / math.Sqrt(n); d > limit {
			t.Errorf("%s: KS statistic %v exceeds %v", name, d, limit)
		}
	}
}

func sortFloats(xs []float64) {
	// Insertion-free: simple quicksort to avoid importing sort in tests of
	// the bottom-most package.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			p := xs[(lo+hi)/2]
			i, j := lo, hi-1
			for i <= j {
				for xs[i] < p {
					i++
				}
				for xs[j] > p {
					j--
				}
				if i <= j {
					xs[i], xs[j] = xs[j], xs[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j+1)
				lo = i
			} else {
				qs(i, hi)
				hi = j + 1
			}
		}
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
	}
	qs(0, len(xs))
}

func BenchmarkXoshiro256(b *testing.B) {
	src := NewXoshiro256(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += src.Uint64()
	}
	_ = acc
}

func BenchmarkMT19937(b *testing.B) {
	src := NewMT19937(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += src.Uint64()
	}
	_ = acc
}

func BenchmarkExponential(b *testing.B) {
	src := NewXoshiro256(1)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += Exponential(src, 2)
	}
	_ = acc
}

func BenchmarkCounterAt(b *testing.B) {
	c := Counter{Seed: 9}
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += c.At(uint64(i))
	}
	_ = acc
}

// TestCounterStreamMatchesCounter pins the CounterStream fast path to the
// canonical Counter: hoisting the seed mix and strength-reducing the
// counter multiply must not change a single bit, or every recorded
// synthetic workload would silently change identity.
func TestCounterStreamMatchesCounter(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeefcafe} {
		c := Counter{Seed: seed}
		s := c.Stream()
		for _, i := range []uint64{0, 1, 2, 63, 1 << 20, 1<<40 + 7} {
			if got, want := s.At(i), c.At(i); got != want {
				t.Fatalf("seed=%d i=%d: Stream().At=%x Counter.At=%x", seed, i, got, want)
			}
			if got, want := s.U01At(i), c.U01At(i); got != want {
				t.Fatalf("seed=%d i=%d: Stream().U01At=%v Counter.U01At=%v", seed, i, got, want)
			}
		}
	}
}

// TestU01AffineFillMatchesPerIndex checks the unrolled fill (including
// its remainder loop) against per-index evaluation at several lengths
// and bases.
func TestU01AffineFillMatchesPerIndex(t *testing.T) {
	c := Counter{Seed: 991}
	s := c.Stream()
	for _, n := range []int{0, 1, 3, 4, 5, 8, 127, 1000} {
		for _, base := range []uint64{0, 9, 1 << 30} {
			dst := make([]float64, n)
			s.U01AffineFill(base, dst, 2.5, 97.5)
			for j := range dst {
				want := 2.5 + c.U01At(base+uint64(j))*97.5
				if dst[j] != want {
					t.Fatalf("n=%d base=%d j=%d: fill=%v per-index=%v", n, base, j, dst[j], want)
				}
			}
		}
	}
}
