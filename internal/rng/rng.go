// Package rng provides the pseudo-random number generators and random
// variates used throughout the reservoir sampling library.
//
// The paper (Sec 6.2) uses Intel MKL's Mersenne Twister; this package
// provides a from-scratch MT19937-64 for fidelity (see mt19937.go) as well
// as xoshiro256** (the default engine, faster and with a much smaller
// state), splitmix64 (seeding and mixing), and a stateless counter-based
// generator used to synthesize arbitrarily large mini-batches in O(1)
// memory.
//
// All variate helpers are written against the small Source interface so any
// engine can back them.
package rng

import (
	"math"
	"math/bits"
)

// Source is a stream of 64-bit pseudo-random words. All engines in this
// package implement it.
type Source interface {
	Uint64() uint64
}

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// primarily used to seed other generators and as the finalizer of the
// counter-based generator, but is a fine (if statistically weaker) engine
// on its own.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64-bit word of the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix64(s.state)
}

// Mix64 applies the splitmix64 finalizer to x. It is a bijective mixing
// function with good avalanche behaviour, suitable for counter-based
// generation: Mix64(seed^counter-derived value) yields an independent-looking
// stream indexed by the counter.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements the xoshiro256** 1.0 generator of Blackman and
// Vigna. It is the default engine of the library: 256 bits of state, a
// period of 2^256-1 and excellent statistical quality.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a xoshiro256** engine whose state is derived from
// seed via splitmix64, as recommended by the authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	x := &Xoshiro256{}
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// An all-zero state would be a fixed point; splitmix64 cannot produce
	// four zero outputs in a row, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit word of the sequence.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls to
// Uint64. It can be used to partition a single stream into non-overlapping
// substreams, one per PE.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Counter is a stateless, counter-based generator: the i-th value of the
// stream identified by Seed is Mix64-derived from (Seed, i). It allows
// synthetic mini-batches to be "stored" in O(1) memory: the weight of item i
// can be recomputed at any time.
type Counter struct {
	Seed uint64
}

// At returns the i-th 64-bit word of the stream.
func (c Counter) At(i uint64) uint64 {
	// Two rounds of mixing with distinct odd constants decorrelate seed
	// and counter sufficiently for our statistical tests.
	return Mix64(Mix64(c.Seed^0x2545f4914f6cdd1d) + i*0x9e3779b97f4a7c15)
}

// U01At returns the i-th uniform variate in (0,1] of the stream.
func (c Counter) U01At(i uint64) float64 { return toU01(c.At(i)) }

// Stream hoists the counter's seed-dependent inner mix, which At
// recomputes on every call. The batch-synthesis hot paths fill tens of
// thousands of weights per round, so the loop-invariant Mix64 is worth
// naming: CounterStream.At(i) == Counter.At(i) bit-for-bit, at half the
// mixing cost.
func (c Counter) Stream() CounterStream {
	return CounterStream{h: Mix64(c.Seed ^ 0x2545f4914f6cdd1d)}
}

// CounterStream is a Counter with the seed mix precomputed.
type CounterStream struct {
	h uint64
}

// At returns the i-th 64-bit word of the stream.
func (s CounterStream) At(i uint64) uint64 {
	return Mix64(s.h + i*0x9e3779b97f4a7c15)
}

// U01At returns the i-th uniform variate in (0,1] of the stream.
func (s CounterStream) U01At(i uint64) float64 { return toU01(s.At(i)) }

// U01AffineFill fills dst[j] = lo + U01At(base+j)*scale for every j in
// one pass. The counter multiply is strength-reduced to an addition and
// the loop is unrolled four wide so the Mix64 chains overlap; the values
// are bit-identical to calling U01At per index.
func (s CounterStream) U01AffineFill(base uint64, dst []float64, lo, scale float64) {
	const phi uint64 = 0x9e3779b97f4a7c15
	v := s.h + base*phi
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		v1, v2, v3 := v+phi, v+phi+phi, v+phi+phi+phi
		dst[i] = lo + toU01(Mix64(v))*scale
		dst[i+1] = lo + toU01(Mix64(v1))*scale
		dst[i+2] = lo + toU01(Mix64(v2))*scale
		dst[i+3] = lo + toU01(Mix64(v3))*scale
		v = v3 + phi
	}
	for ; i < len(dst); i++ {
		dst[i] = lo + toU01(Mix64(v))*scale
		v += phi
	}
}

// --- Variates ---------------------------------------------------------

// toU01 maps a random 64-bit word to the half-open interval (0, 1],
// using the top 53 bits so every value is an exactly representable
// multiple of 2^-53. The paper's rand() draws from (0,1]; excluding 0 keeps
// log(rand()) finite.
func toU01(x uint64) float64 {
	return float64((x>>11)+1) * (1.0 / (1 << 53))
}

// U01 draws a uniform variate from (0, 1].
func U01(s Source) float64 { return toU01(s.Uint64()) }

// U01CO draws a uniform variate from [0, 1).
func U01CO(s Source) float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform draws from (a, b], matching the paper's rand(a,b) := a + rand()(b-a).
func Uniform(s Source, a, b float64) float64 { return a + U01(s)*(b-a) }

// Exponential draws an exponential variate with the given rate parameter,
// i.e. -ln(rand())/rate. It panics if rate is not strictly positive.
func Exponential(s Source, rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return -math.Log(U01(s)) / rate
}

// GeometricSkip returns the number of failures before the first success of
// a Bernoulli process with success probability p, i.e. a geometric variate
// on {0, 1, 2, ...} computed as floor(ln(rand()) / ln(1-p)) (Devroye).
// For p >= 1 it returns 0. It panics if p <= 0.
func GeometricSkip(s Source, p float64) int {
	if p <= 0 {
		panic("rng: GeometricSkip requires p > 0")
	}
	if p >= 1 {
		return 0
	}
	v := math.Log(U01(s)) / math.Log1p(-p)
	if v >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}

// Bernoulli reports success with probability p.
func Bernoulli(s Source, p float64) bool { return U01CO(s) < p }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire-style bounded generation without modulo bias.
func Intn(s Source, n int) int {
	if n <= 0 {
		panic("rng: Intn requires n > 0")
	}
	un := uint64(n)
	threshold := -un % un
	for {
		hi, lo := bits.Mul64(s.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Normal draws a normal variate with the given mean and standard deviation
// using the polar Box-Muller method (no caching of the spare to keep the
// generator stateless with respect to variates).
func Normal(s Source, mean, stddev float64) float64 {
	for {
		u := 2*U01CO(s) - 1
		v := 2*U01CO(s) - 1
		r := u*u + v*v
		if r > 0 && r < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(r)/r)
		}
	}
}

// Pareto draws a Pareto(shape) variate with scale 1: values >= 1 with
// P[X > x] = x^-shape. Used by the heavy-hitter example workloads.
func Pareto(s Source, shape float64) float64 {
	if shape <= 0 {
		panic("rng: Pareto requires shape > 0")
	}
	return math.Pow(U01(s), -1/shape)
}
