package rng

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary implements encoding.BinaryMarshaler: the 4-word xoshiro
// state, little endian.
func (x *Xoshiro256) MarshalBinary() ([]byte, error) {
	out := make([]byte, 32)
	for i, s := range x.s {
		binary.LittleEndian.PutUint64(out[i*8:], s)
	}
	return out, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (x *Xoshiro256) UnmarshalBinary(data []byte) error {
	if len(data) != 32 {
		return fmt.Errorf("rng: xoshiro256 state must be 32 bytes, got %d", len(data))
	}
	for i := range x.s {
		x.s[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		return fmt.Errorf("rng: all-zero xoshiro256 state")
	}
	return nil
}
