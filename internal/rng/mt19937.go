package rng

// MT19937 implements the 64-bit Mersenne Twister (MT19937-64) of Matsumoto
// and Nishimura, the generator family used (via Intel MKL) by the paper's
// C++ implementation. Constants and the initialization routines follow the
// reference implementation mt19937-64.c (2004/9/29 version).
type MT19937 struct {
	mt  [nn]uint64
	mti int
}

const (
	nn        = 312
	mm        = 156
	matrixA   = 0xB5026F5AA96619E9
	upperMask = 0xFFFFFFFF80000000
	lowerMask = 0x7FFFFFFF
)

// NewMT19937 returns an MT19937-64 engine seeded with seed, following
// init_genrand64 of the reference implementation.
func NewMT19937(seed uint64) *MT19937 {
	m := &MT19937{}
	m.Seed(seed)
	return m
}

// Seed re-initializes the state from a single 64-bit seed.
func (m *MT19937) Seed(seed uint64) {
	m.mt[0] = seed
	for i := 1; i < nn; i++ {
		m.mt[i] = 6364136223846793005*(m.mt[i-1]^(m.mt[i-1]>>62)) + uint64(i)
	}
	m.mti = nn
}

// SeedByArray re-initializes the state from a key array, following
// init_by_array64 of the reference implementation.
func (m *MT19937) SeedByArray(key []uint64) {
	m.Seed(19650218)
	i, j := 1, 0
	k := len(key)
	if nn > k {
		k = nn
	}
	for ; k > 0; k-- {
		m.mt[i] = (m.mt[i] ^ ((m.mt[i-1] ^ (m.mt[i-1] >> 62)) * 3935559000370003845)) + key[j] + uint64(j)
		i++
		j++
		if i >= nn {
			m.mt[0] = m.mt[nn-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = nn - 1; k > 0; k-- {
		m.mt[i] = (m.mt[i] ^ ((m.mt[i-1] ^ (m.mt[i-1] >> 62)) * 2862933555777941757)) - uint64(i)
		i++
		if i >= nn {
			m.mt[0] = m.mt[nn-1]
			i = 1
		}
	}
	m.mt[0] = 1 << 63
	m.mti = nn
}

// Uint64 returns the next 64-bit word of the sequence.
func (m *MT19937) Uint64() uint64 {
	if m.mti >= nn {
		// Generate the next block of nn words.
		var x uint64
		for i := 0; i < nn-mm; i++ {
			x = (m.mt[i] & upperMask) | (m.mt[i+1] & lowerMask)
			m.mt[i] = m.mt[i+mm] ^ (x >> 1) ^ ((x & 1) * matrixA)
		}
		for i := nn - mm; i < nn-1; i++ {
			x = (m.mt[i] & upperMask) | (m.mt[i+1] & lowerMask)
			m.mt[i] = m.mt[i+mm-nn] ^ (x >> 1) ^ ((x & 1) * matrixA)
		}
		x = (m.mt[nn-1] & upperMask) | (m.mt[0] & lowerMask)
		m.mt[nn-1] = m.mt[mm-1] ^ (x >> 1) ^ ((x & 1) * matrixA)
		m.mti = 0
	}
	x := m.mt[m.mti]
	m.mti++
	x ^= (x >> 29) & 0x5555555555555555
	x ^= (x << 17) & 0x71D67FFFEDA60000
	x ^= (x << 37) & 0xFFF7EEE000000000
	x ^= x >> 43
	return x
}
