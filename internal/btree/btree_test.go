package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// model is a reference implementation backed by a sorted slice.
type model struct {
	keys []Key
	vals []int
}

func (m *model) insert(k Key, v int) {
	i := sort.Search(len(m.keys), func(i int) bool { return !m.keys[i].Less(k) })
	m.keys = append(m.keys, Key{})
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = k
	m.vals = append(m.vals, 0)
	copy(m.vals[i+1:], m.vals[i:])
	m.vals[i] = v
}

func (m *model) delete(k Key) bool {
	i := sort.Search(len(m.keys), func(i int) bool { return !m.keys[i].Less(k) })
	if i >= len(m.keys) || m.keys[i] != k {
		return false
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	m.vals = append(m.vals[:i], m.vals[i+1:]...)
	return true
}

func (m *model) countLeq(k Key) int {
	return sort.Search(len(m.keys), func(i int) bool { return k.Less(m.keys[i]) })
}

func (m *model) splitAt(r int) *model {
	if r < 0 {
		r = 0
	}
	if r > len(m.keys) {
		r = len(m.keys)
	}
	right := &model{
		keys: append([]Key(nil), m.keys[r:]...),
		vals: append([]int(nil), m.vals[r:]...),
	}
	m.keys = m.keys[:r]
	m.vals = m.vals[:r]
	return right
}

func randKey(r *rand.Rand) Key {
	return Key{V: r.Float64(), ID: r.Uint64()}
}

func checkAgainstModel(t *testing.T, tr *Tree[int], m *model, strict bool) {
	t.Helper()
	if err := tr.Validate(strict); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if tr.Len() != len(m.keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(m.keys))
	}
	got := tr.Keys()
	for i, k := range got {
		if k != m.keys[i] {
			t.Fatalf("key %d = %v, want %v", i, k, m.keys[i])
		}
	}
	// Spot-check Select and values via ForEach.
	i := 0
	tr.ForEach(func(k Key, v int) bool {
		if v != m.vals[i] {
			t.Fatalf("val %d = %d, want %d", i, v, m.vals[i])
		}
		i++
		return true
	})
}

func TestInsertAscending(t *testing.T) {
	tr := New[int]()
	m := &model{}
	for i := 0; i < 2000; i++ {
		k := Key{V: float64(i), ID: uint64(i)}
		tr.Insert(k, i)
		m.insert(k, i)
	}
	checkAgainstModel(t, tr, m, true)
}

func TestInsertDescending(t *testing.T) {
	tr := New[int]()
	m := &model{}
	for i := 2000; i > 0; i-- {
		k := Key{V: float64(i), ID: uint64(i)}
		tr.Insert(k, i)
		m.insert(k, i)
	}
	checkAgainstModel(t, tr, m, true)
}

func TestInsertRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, degree := range []int{3, 4, 7, 16, 64} {
		tr := NewWithDegree[int](degree)
		m := &model{}
		for i := 0; i < 3000; i++ {
			k := randKey(r)
			tr.Insert(k, i)
			m.insert(k, i)
		}
		checkAgainstModel(t, tr, m, true)
	}
}

func TestCountAndSelectAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr := New[int]()
	m := &model{}
	for i := 0; i < 2500; i++ {
		k := randKey(r)
		tr.Insert(k, i)
		m.insert(k, i)
	}
	for trial := 0; trial < 2000; trial++ {
		// Mix of existing keys and fresh random probes.
		var k Key
		if trial%2 == 0 {
			k = m.keys[r.Intn(len(m.keys))]
		} else {
			k = randKey(r)
		}
		if got, want := tr.CountLeq(k), m.countLeq(k); got != want {
			t.Fatalf("CountLeq(%v) = %d, want %d", k, got, want)
		}
		wantLess := sort.Search(len(m.keys), func(i int) bool { return !m.keys[i].Less(k) })
		if got := tr.CountLess(k); got != wantLess {
			t.Fatalf("CountLess(%v) = %d, want %d", k, got, wantLess)
		}
	}
	for rank := 1; rank <= len(m.keys); rank += 13 {
		k, v, ok := tr.Select(rank)
		if !ok || k != m.keys[rank-1] || v != m.vals[rank-1] {
			t.Fatalf("Select(%d) = (%v,%d,%v), want (%v,%d)", rank, k, v, ok, m.keys[rank-1], m.vals[rank-1])
		}
	}
	if _, _, ok := tr.Select(0); ok {
		t.Error("Select(0) should fail")
	}
	if _, _, ok := tr.Select(tr.Len() + 1); ok {
		t.Error("Select(Len+1) should fail")
	}
}

func TestMinMaxGet(t *testing.T) {
	tr := New[int]()
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree should fail")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree should fail")
	}
	r := rand.New(rand.NewSource(3))
	m := &model{}
	for i := 0; i < 1000; i++ {
		k := randKey(r)
		tr.Insert(k, i)
		m.insert(k, i)
	}
	if k, _, _ := tr.Min(); k != m.keys[0] {
		t.Errorf("Min = %v, want %v", k, m.keys[0])
	}
	if k, _, _ := tr.Max(); k != m.keys[len(m.keys)-1] {
		t.Errorf("Max = %v, want %v", k, m.keys[len(m.keys)-1])
	}
	for i := 0; i < 100; i++ {
		j := r.Intn(len(m.keys))
		v, ok := tr.Get(m.keys[j])
		if !ok || v != m.vals[j] {
			t.Fatalf("Get(%v) = (%d,%v), want (%d,true)", m.keys[j], v, ok, m.vals[j])
		}
	}
	if _, ok := tr.Get(Key{V: -1}); ok {
		t.Error("Get of absent key should fail")
	}
}

func TestDeleteRandom(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr := NewWithDegree[int](5)
	m := &model{}
	keys := make([]Key, 0, 1500)
	for i := 0; i < 1500; i++ {
		k := randKey(r)
		tr.Insert(k, i)
		m.insert(k, i)
		keys = append(keys, k)
	}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for i, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%v) reported absent", k)
		}
		m.delete(k)
		if tr.Delete(k) {
			t.Fatalf("double Delete(%v) succeeded", k)
		}
		if i%97 == 0 {
			checkAgainstModel(t, tr, m, false)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty after deleting everything: %d", tr.Len())
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAtRankAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(800)
		degree := 3 + r.Intn(14)
		tr := NewWithDegree[int](degree)
		m := &model{}
		for i := 0; i < n; i++ {
			k := randKey(r)
			tr.Insert(k, i)
			m.insert(k, i)
		}
		cut := r.Intn(n + 2) // includes 0 and > n
		right := tr.SplitAtRank(cut)
		mRight := m.splitAt(cut)
		checkAgainstModel(t, tr, m, false)
		rm := &model{keys: mRight.keys, vals: mRight.vals}
		rightTyped := right
		checkAgainstModel(t, rightTyped, rm, false)
	}
}

func TestSplitByKey(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	tr := New[int]()
	m := &model{}
	for i := 0; i < 500; i++ {
		k := randKey(r)
		tr.Insert(k, i)
		m.insert(k, i)
	}
	pivot := m.keys[200]
	right := tr.SplitByKey(pivot)
	if tr.Len() != 201 {
		t.Fatalf("left size = %d, want 201", tr.Len())
	}
	if right.Len() != 299 {
		t.Fatalf("right size = %d, want 299", right.Len())
	}
	if k, _, _ := tr.Max(); k != pivot {
		t.Errorf("left max = %v, want pivot %v", k, pivot)
	}
	if k, _, _ := right.Min(); !pivot.Less(k) {
		t.Errorf("right min %v not greater than pivot %v", k, pivot)
	}
}

func TestJoinAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nl, nr := r.Intn(500), r.Intn(500)
		degree := 3 + r.Intn(14)
		left := NewWithDegree[int](degree)
		right := NewWithDegree[int](degree)
		m := &model{}
		for i := 0; i < nl; i++ {
			k := Key{V: r.Float64(), ID: uint64(i)} // V in [0,1)
			left.Insert(k, i)
			m.insert(k, i)
		}
		for i := 0; i < nr; i++ {
			k := Key{V: 1 + r.Float64(), ID: uint64(i)} // V in [1,2): disjoint above
			right.Insert(k, nl+i)
			m.insert(k, nl+i)
		}
		left.Join(right)
		if right.Len() != 0 {
			t.Fatalf("joined-from tree not empty")
		}
		checkAgainstModel(t, left, m, false)
	}
}

func TestJoinPanicsOnOverlap(t *testing.T) {
	left, right := New[int](), New[int]()
	left.Insert(Key{V: 5}, 0)
	right.Insert(Key{V: 3}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for overlapping Join")
		}
	}()
	left.Join(right)
}

func TestSplitThenJoinRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := NewWithDegree[int](6)
	m := &model{}
	for i := 0; i < 1000; i++ {
		k := randKey(r)
		tr.Insert(k, i)
		m.insert(k, i)
	}
	// Repeatedly split at a random rank and join back.
	for trial := 0; trial < 40; trial++ {
		cut := r.Intn(tr.Len() + 1)
		right := tr.SplitAtRank(cut)
		tr.Join(right)
		checkAgainstModel(t, tr, m, false)
	}
}

// TestReservoirWorkload simulates the tree usage pattern of the sampler:
// interleaved inserts and split-discards of the top part.
func TestReservoirWorkload(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := New[int]()
	m := &model{}
	const k = 64
	for round := 0; round < 120; round++ {
		for i := 0; i < 32; i++ {
			key := randKey(r)
			tr.Insert(key, round*100+i)
			m.insert(key, round*100+i)
		}
		if tr.Len() > k {
			discarded := tr.SplitAtRank(k)
			mRight := m.splitAt(k)
			if discarded.Len() != len(mRight.keys) {
				t.Fatalf("round %d: discarded %d, want %d", round, discarded.Len(), len(mRight.keys))
			}
		}
		checkAgainstModel(t, tr, m, false)
	}
}

func TestQuickRankSelectInverse(t *testing.T) {
	// Property: for every tree built from a random key set, Select and
	// CountLeq are inverse: CountLeq(Select(r)) == r.
	f := func(vs []float64) bool {
		tr := New[int]()
		seen := map[Key]bool{}
		for i, v := range vs {
			k := Key{V: v, ID: uint64(i)}
			if seen[k] {
				continue
			}
			seen[k] = true
			tr.Insert(k, i)
		}
		for r := 1; r <= tr.Len(); r++ {
			k, _, ok := tr.Select(r)
			if !ok || tr.CountLeq(k) != r {
				return false
			}
		}
		return tr.Validate(true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClearAndReuse(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Insert(Key{V: float64(i)}, i)
	}
	tr.Clear()
	if tr.Len() != 0 {
		t.Fatal("Clear did not empty the tree")
	}
	tr.Insert(Key{V: 1}, 1)
	if tr.Len() != 1 {
		t.Fatal("tree unusable after Clear")
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestNewWithDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for degree < 3")
		}
	}()
	NewWithDegree[int](2)
}

func TestDuplicateValuesDistinctIDs(t *testing.T) {
	// Same V, different IDs: order must follow IDs.
	tr := New[int]()
	for i := 9; i >= 0; i-- {
		tr.Insert(Key{V: 1, ID: uint64(i)}, i)
	}
	keys := tr.Keys()
	for i, k := range keys {
		if k.ID != uint64(i) {
			t.Fatalf("position %d has ID %d", i, k.ID)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New[int]()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Key{V: r.Float64(), ID: uint64(i)}, i)
	}
}

func BenchmarkCountLeq(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New[int]()
	for i := 0; i < 100000; i++ {
		tr.Insert(Key{V: r.Float64(), ID: uint64(i)}, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.CountLeq(Key{V: r.Float64()})
	}
}

func BenchmarkSplitJoin(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New[int]()
	for i := 0; i < 100000; i++ {
		tr.Insert(Key{V: r.Float64(), ID: uint64(i)}, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		right := tr.SplitAtRank(50000)
		tr.Join(right)
	}
}
