package btree

import "fmt"

// Validate checks the structural invariants of the tree and returns an
// error describing the first violation found.
//
// Relaxed invariants (always checked): uniform leaf depth, globally
// ascending key order, correct subtree sizes, separator soundness
// (max(child i) <= seps[i] < min(child i+1)), and a consistent doubly
// linked leaf chain covering exactly the tree's leaves.
//
// With strict set, Validate additionally checks the B+ tree fill degrees
// that hold after pure insertion workloads: every node except the root is
// at least half full. Split/Join may leave nodes underfull, so callers
// that use those operations should validate in relaxed mode.
func (t *Tree[V]) Validate(strict bool) error {
	if t.root == nil {
		if t.height != 0 {
			return fmt.Errorf("btree: empty tree with height %d", t.height)
		}
		return nil
	}
	v := &validator[V]{t: t, strict: strict}
	min := MinKey
	if err := v.walk(t.root, t.height, true, &min); err != nil {
		return err
	}
	if t.root.size() == 0 {
		return fmt.Errorf("btree: non-nil root with size 0")
	}
	return v.checkChain()
}

type validator[V any] struct {
	t      *Tree[V]
	strict bool
	leaves []*leaf[V] // in visit (key) order
}

// walk validates the subtree rooted at n at height h. lower is the
// exclusive lower bound for keys in this subtree and is advanced to the
// subtree's max key on return.
func (v *validator[V]) walk(n node[V], h int, isRoot bool, lower *Key) error {
	half := (v.t.degree + 1) / 2
	if h == 0 {
		l, ok := n.(*leaf[V])
		if !ok {
			return fmt.Errorf("btree: non-leaf node at height 0")
		}
		if len(l.keys) != len(l.vals) {
			return fmt.Errorf("btree: leaf with %d keys but %d vals", len(l.keys), len(l.vals))
		}
		if len(l.keys) > v.t.degree {
			return fmt.Errorf("btree: leaf overfull (%d > %d)", len(l.keys), v.t.degree)
		}
		if v.strict && !isRoot && len(l.keys) < half {
			return fmt.Errorf("btree: leaf underfull (%d < %d)", len(l.keys), half)
		}
		if len(l.keys) == 0 && !isRoot {
			return fmt.Errorf("btree: empty non-root leaf")
		}
		for _, k := range l.keys {
			if !lower.Less(k) {
				return fmt.Errorf("btree: key order violation: %v then %v", *lower, k)
			}
			*lower = k
		}
		v.leaves = append(v.leaves, l)
		return nil
	}
	in, ok := n.(*inner[V])
	if !ok {
		return fmt.Errorf("btree: leaf node at height %d", h)
	}
	if len(in.children) > v.t.degree {
		return fmt.Errorf("btree: inner overfull (%d > %d children)", len(in.children), v.t.degree)
	}
	if v.strict && !isRoot && len(in.children) < half {
		return fmt.Errorf("btree: inner underfull (%d < %d children)", len(in.children), half)
	}
	if isRoot && len(in.children) < 2 && v.strict {
		return fmt.Errorf("btree: inner root with %d children", len(in.children))
	}
	if len(in.children) == 0 {
		return fmt.Errorf("btree: inner node with no children")
	}
	if len(in.seps) != len(in.children)-1 {
		return fmt.Errorf("btree: inner with %d children but %d seps", len(in.children), len(in.seps))
	}
	size := 0
	for i, c := range in.children {
		if err := v.walk(c, h-1, false, lower); err != nil {
			return err
		}
		// *lower is now the max key of child i.
		if i < len(in.seps) {
			if in.seps[i].Less(*lower) {
				return fmt.Errorf("btree: sep %v below child max %v", in.seps[i], *lower)
			}
			if v.strict && in.seps[i] != *lower {
				return fmt.Errorf("btree: sep %v != child max %v", in.seps[i], *lower)
			}
			// seps[i] < min(child i+1) is implied by the order check of the
			// next child against *lower, provided seps[i] is not beyond it:
			*lower = in.seps[i]
		}
		size += c.size()
	}
	if size != in.sz {
		return fmt.Errorf("btree: inner size %d, children sum to %d", in.sz, size)
	}
	return nil
}

// checkChain verifies that the leaf chain links exactly the leaves found by
// the tree walk, in order, with consistent back pointers.
func (v *validator[V]) checkChain() error {
	if len(v.leaves) == 0 {
		return nil
	}
	first := v.leaves[0]
	if first.prev != nil {
		return fmt.Errorf("btree: leftmost leaf has prev pointer")
	}
	cur := first
	for i, want := range v.leaves {
		if cur != want {
			return fmt.Errorf("btree: leaf chain out of order at position %d", i)
		}
		if cur.next != nil && cur.next.prev != cur {
			return fmt.Errorf("btree: broken prev pointer after position %d", i)
		}
		cur = cur.next
	}
	if cur != nil {
		return fmt.Errorf("btree: leaf chain longer than tree walk")
	}
	return nil
}
