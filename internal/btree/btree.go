// Package btree implements the augmented B+ tree that backs the local
// reservoirs (paper Sec 3.2): a search tree whose leaves store the items in
// key order and are doubly linked, whose inner nodes track subtree sizes so
// rank and select queries run in O(log n), and which supports split and
// join in O(log n) — split is what lets a PE discard all items above the
// new global threshold after every mini-batch.
//
// Keys are composite (variate, id) pairs: the random variates are
// continuous, so ties have probability zero, but the id component makes the
// order total and deterministic, which keeps the distributed selection of
// the globally k-th smallest key exact.
//
// The tree is the Seq implementation behind internal/distsel's selection
// algorithms (rank/select in O(log n)) and the storage of every local
// reservoir in internal/core; splitjoin.go holds the split/join halves,
// validate.go the structural invariant checker used by the tests.
package btree

import "math"

// Key is the composite search key: the random variate V with a unique ID as
// a tie breaker. The zero Key is the smallest key with V = 0.
type Key struct {
	V  float64
	ID uint64
}

// Less reports whether a orders strictly before b.
func (a Key) Less(b Key) bool {
	if a.V != b.V {
		return a.V < b.V
	}
	return a.ID < b.ID
}

// Leq reports whether a orders before b or equals it.
func (a Key) Leq(b Key) bool { return !b.Less(a) }

// MinKey and MaxKey are the extreme sentinel keys; no stored key compares
// outside them.
var (
	MinKey = Key{V: math.Inf(-1), ID: 0}
	MaxKey = Key{V: math.Inf(1), ID: math.MaxUint64}
)

// DefaultDegree is the default maximum node degree d: inner nodes hold at
// most d children and leaves at most d items.
const DefaultDegree = 16

type node[V any] interface {
	size() int
}

type leaf[V any] struct {
	keys       []Key
	vals       []V
	next, prev *leaf[V]
}

func (l *leaf[V]) size() int { return len(l.keys) }

type inner[V any] struct {
	// seps[i] routes child i: every key in children[i] is <= seps[i] and
	// every key in children[i+1] is > seps[i]. len(seps) == len(children)-1.
	seps     []Key
	children []node[V]
	sz       int
}

func (n *inner[V]) size() int { return n.sz }

// Tree is a B+ tree mapping Keys to values of type V.
// The zero value is not usable; construct trees with New or NewWithDegree.
type Tree[V any] struct {
	root   node[V]
	height int // 0 = root is a leaf
	degree int
}

// New returns an empty tree with DefaultDegree.
func New[V any]() *Tree[V] { return NewWithDegree[V](DefaultDegree) }

// NewWithDegree returns an empty tree with the given maximum node degree
// (at least 3).
func NewWithDegree[V any](degree int) *Tree[V] {
	if degree < 3 {
		panic("btree: degree must be >= 3")
	}
	return &Tree[V]{degree: degree}
}

// Len returns the number of stored items.
func (t *Tree[V]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.size()
}

// Degree returns the tree's maximum node degree.
func (t *Tree[V]) Degree() int { return t.degree }

// Clear removes all items.
func (t *Tree[V]) Clear() {
	t.root = nil
	t.height = 0
}

// --- search helpers ----------------------------------------------------

// lowerBound returns the first index i with keys[i] >= k.
func lowerBound(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid].Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i with keys[i] > k.
func upperBound(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if k.Less(keys[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// --- insert -------------------------------------------------------------

// Insert adds the pair (k, v). Duplicate keys are allowed by the structure
// but the reservoir never produces them; Insert stores them adjacent.
func (t *Tree[V]) Insert(k Key, v V) {
	if t.root == nil {
		l := &leaf[V]{keys: make([]Key, 0, t.degree+1), vals: make([]V, 0, t.degree+1)}
		l.keys = append(l.keys, k)
		l.vals = append(l.vals, v)
		t.root = l
		t.height = 0
		return
	}
	sep, right := t.insert(t.root, t.height, k, v)
	if right != nil {
		r := &inner[V]{
			seps:     []Key{sep},
			children: []node[V]{t.root, right},
			sz:       t.root.size() + right.size(),
		}
		t.root = r
		t.height++
	}
}

func (t *Tree[V]) insert(n node[V], h int, k Key, v V) (sep Key, right node[V]) {
	if h == 0 {
		l := n.(*leaf[V])
		i := lowerBound(l.keys, k)
		l.keys = append(l.keys, Key{})
		copy(l.keys[i+1:], l.keys[i:])
		l.keys[i] = k
		var zero V
		l.vals = append(l.vals, zero)
		copy(l.vals[i+1:], l.vals[i:])
		l.vals[i] = v
		if len(l.keys) <= t.degree {
			return Key{}, nil
		}
		return t.splitLeaf(l)
	}
	in := n.(*inner[V])
	c := lowerBound(in.seps, k) // first sep >= k, or last child
	in.sz++
	csep, cright := t.insert(in.children[c], h-1, k, v)
	if cright == nil {
		return Key{}, nil
	}
	// Insert (csep, cright) after child c.
	in.seps = append(in.seps, Key{})
	copy(in.seps[c+1:], in.seps[c:])
	in.seps[c] = csep
	in.children = append(in.children, nil)
	copy(in.children[c+2:], in.children[c+1:])
	in.children[c+1] = cright
	if len(in.children) <= t.degree {
		return Key{}, nil
	}
	return t.splitInner(in)
}

func (t *Tree[V]) splitLeaf(l *leaf[V]) (Key, node[V]) {
	mid := len(l.keys) / 2
	r := &leaf[V]{
		keys: make([]Key, len(l.keys)-mid, t.degree+1),
		vals: make([]V, len(l.keys)-mid, t.degree+1),
	}
	copy(r.keys, l.keys[mid:])
	copy(r.vals, l.vals[mid:])
	clearTailVals(l.vals, mid)
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	r.next = l.next
	r.prev = l
	if r.next != nil {
		r.next.prev = r
	}
	l.next = r
	return l.keys[mid-1], r
}

// clearTailVals zeroes the tail so the GC can reclaim pointed-to values.
func clearTailVals[V any](vals []V, from int) {
	var zero V
	for i := from; i < len(vals); i++ {
		vals[i] = zero
	}
}

func (t *Tree[V]) splitInner(in *inner[V]) (Key, node[V]) {
	mid := len(in.children) / 2 // left keeps children[0:mid]
	promoted := in.seps[mid-1]
	r := &inner[V]{
		seps:     append(make([]Key, 0, t.degree), in.seps[mid:]...),
		children: append(make([]node[V], 0, t.degree+1), in.children[mid:]...),
	}
	for _, c := range r.children {
		r.sz += c.size()
	}
	in.seps = in.seps[:mid-1]
	for i := mid; i < len(in.children); i++ {
		in.children[i] = nil
	}
	in.children = in.children[:mid]
	in.sz -= r.sz
	return promoted, r
}

// --- queries ------------------------------------------------------------

// CountLeq returns the number of stored keys <= k.
func (t *Tree[V]) CountLeq(k Key) int {
	n, h, count := t.root, t.height, 0
	if n == nil {
		return 0
	}
	for h > 0 {
		in := n.(*inner[V])
		c := lowerBound(in.seps, k)
		for i := 0; i < c; i++ {
			count += in.children[i].size()
		}
		n = in.children[c]
		h--
	}
	l := n.(*leaf[V])
	return count + upperBound(l.keys, k)
}

// CountLess returns the number of stored keys < k.
func (t *Tree[V]) CountLess(k Key) int {
	n, h, count := t.root, t.height, 0
	if n == nil {
		return 0
	}
	for h > 0 {
		in := n.(*inner[V])
		c := lowerBound(in.seps, k)
		for i := 0; i < c; i++ {
			count += in.children[i].size()
		}
		n = in.children[c]
		h--
	}
	l := n.(*leaf[V])
	return count + lowerBound(l.keys, k)
}

// Select returns the item with the given 1-based rank (the rank-th smallest
// key). ok is false if rank is out of range.
func (t *Tree[V]) Select(rank int) (k Key, v V, ok bool) {
	if rank < 1 || t.root == nil || rank > t.root.size() {
		return Key{}, v, false
	}
	n, h := t.root, t.height
	for h > 0 {
		in := n.(*inner[V])
		for i, c := range in.children {
			s := c.size()
			if rank <= s {
				n = in.children[i]
				break
			}
			rank -= s
		}
		h--
	}
	l := n.(*leaf[V])
	return l.keys[rank-1], l.vals[rank-1], true
}

// Get returns the value stored under k.
func (t *Tree[V]) Get(k Key) (v V, ok bool) {
	n, h := t.root, t.height
	if n == nil {
		return v, false
	}
	for h > 0 {
		in := n.(*inner[V])
		n = in.children[lowerBound(in.seps, k)]
		h--
	}
	l := n.(*leaf[V])
	i := lowerBound(l.keys, k)
	if i < len(l.keys) && l.keys[i] == k {
		return l.vals[i], true
	}
	return v, false
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min() (k Key, v V, ok bool) {
	if t.root == nil {
		return Key{}, v, false
	}
	n, h := t.root, t.height
	for h > 0 {
		n = n.(*inner[V]).children[0]
		h--
	}
	l := n.(*leaf[V])
	return l.keys[0], l.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max() (k Key, v V, ok bool) {
	if t.root == nil {
		return Key{}, v, false
	}
	n, h := t.root, t.height
	for h > 0 {
		in := n.(*inner[V])
		n = in.children[len(in.children)-1]
		h--
	}
	l := n.(*leaf[V])
	return l.keys[len(l.keys)-1], l.vals[len(l.keys)-1], true
}

// ForEach visits all items in ascending key order until fn returns false.
func (t *Tree[V]) ForEach(fn func(Key, V) bool) {
	if t.root == nil {
		return
	}
	n, h := t.root, t.height
	for h > 0 {
		n = n.(*inner[V]).children[0]
		h--
	}
	for l := n.(*leaf[V]); l != nil; l = l.next {
		for i, k := range l.keys {
			if !fn(k, l.vals[i]) {
				return
			}
		}
	}
}

// Keys returns all keys in ascending order (primarily for tests).
func (t *Tree[V]) Keys() []Key {
	out := make([]Key, 0, t.Len())
	t.ForEach(func(k Key, _ V) bool { out = append(out, k); return true })
	return out
}

// --- delete -------------------------------------------------------------

// Delete removes the item with key k and reports whether it was present.
// Emptied nodes are removed, but non-empty nodes are allowed to become
// underfull (relaxed invariant; see Validate).
func (t *Tree[V]) Delete(k Key) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, t.height, k)
	if deleted {
		t.collapseRoot()
		if t.root != nil && t.root.size() == 0 {
			t.Clear()
		}
	}
	return deleted
}

func (t *Tree[V]) delete(n node[V], h int, k Key) bool {
	if h == 0 {
		l := n.(*leaf[V])
		i := lowerBound(l.keys, k)
		if i >= len(l.keys) || l.keys[i] != k {
			return false
		}
		copy(l.keys[i:], l.keys[i+1:])
		l.keys = l.keys[:len(l.keys)-1]
		copy(l.vals[i:], l.vals[i+1:])
		clearTailVals(l.vals, len(l.vals)-1)
		l.vals = l.vals[:len(l.vals)-1]
		return true
	}
	in := n.(*inner[V])
	c := lowerBound(in.seps, k)
	if !t.delete(in.children[c], h-1, k) {
		return false
	}
	in.sz--
	if in.children[c].size() == 0 {
		t.removeChild(in, c, h-1)
	}
	return true
}

// removeChild unlinks the (empty) child at index c from in.
func (t *Tree[V]) removeChild(in *inner[V], c, childHeight int) {
	if childHeight == 0 {
		l := in.children[c].(*leaf[V])
		if l.prev != nil {
			l.prev.next = l.next
		}
		if l.next != nil {
			l.next.prev = l.prev
		}
	}
	copy(in.children[c:], in.children[c+1:])
	in.children[len(in.children)-1] = nil
	in.children = in.children[:len(in.children)-1]
	// Remove the separator adjacent to the removed child.
	if len(in.seps) > 0 {
		s := c
		if s >= len(in.seps) {
			s = len(in.seps) - 1
		}
		copy(in.seps[s:], in.seps[s+1:])
		in.seps = in.seps[:len(in.seps)-1]
	}
}

// collapseRoot removes degenerate single-child roots.
func (t *Tree[V]) collapseRoot() {
	for t.height > 0 {
		in := t.root.(*inner[V])
		if len(in.children) != 1 {
			return
		}
		t.root = in.children[0]
		t.height--
	}
}
