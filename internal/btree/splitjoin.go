package btree

// Split and join (paper Sec 3.2, citing [16, Chapter 7.3.2]): Join
// concatenates two trees whose key ranges do not overlap, and SplitAtRank
// cuts a tree at a rank boundary. Both run in time logarithmic in the tree
// sizes. The reservoir uses SplitAtRank after every selection to discard
// all items whose keys exceed the new global threshold.
//
// Nodes on the cut path may be left underfull (they are repaired lazily by
// later splits/merges); Validate's relaxed mode checks exactly the
// invariants that are maintained.

type frag[V any] struct {
	n node[V]
	h int
}

// Join appends all items of o (whose keys must all be strictly greater than
// every key in t) to t, emptying o. It panics if the key ranges overlap.
func (t *Tree[V]) Join(o *Tree[V]) {
	if o == nil || o.root == nil {
		return
	}
	if t.root == nil {
		t.root, t.height = o.root, o.height
		o.Clear()
		return
	}
	tmax, _, _ := t.Max()
	omin, _, _ := o.Min()
	if !tmax.Less(omin) {
		panic("btree: Join with overlapping key ranges")
	}
	t.root, t.height = t.joinNodes(t.root, t.height, o.root, o.height)
	o.Clear()
}

// joinNodes joins two detached subtrees; every key in l is strictly less
// than every key in r. It links the boundary leaves and returns the joined
// root and height.
func (t *Tree[V]) joinNodes(l node[V], hl int, r node[V], hr int) (node[V], int) {
	// Stitch the leaf chain across the boundary.
	rl := rightmostLeaf[V](l, hl)
	lf := leftmostLeaf[V](r, hr)
	rl.next = lf
	lf.prev = rl

	switch {
	case hl == hr:
		if hl == 0 {
			ll, rr := l.(*leaf[V]), r.(*leaf[V])
			if len(ll.keys)+len(rr.keys) <= t.degree {
				ll.keys = append(ll.keys, rr.keys...)
				ll.vals = append(ll.vals, rr.vals...)
				ll.next = rr.next
				if rr.next != nil {
					rr.next.prev = ll
				}
				return ll, 0
			}
		} else {
			li, ri := l.(*inner[V]), r.(*inner[V])
			if len(li.children)+len(ri.children) <= t.degree {
				li.seps = append(li.seps, t.maxOf(li.children[len(li.children)-1], hl-1))
				li.seps = append(li.seps, ri.seps...)
				li.children = append(li.children, ri.children...)
				li.sz += ri.sz
				return li, hl
			}
		}
		n := &inner[V]{
			seps:     []Key{t.maxOf(l, hl)},
			children: []node[V]{l, r},
			sz:       l.size() + r.size(),
		}
		return n, hl + 1
	case hl > hr:
		sep, split := t.attachRight(l.(*inner[V]), hl, r, hr)
		if split != nil {
			n := &inner[V]{seps: []Key{sep}, children: []node[V]{l, split}, sz: l.size() + split.size()}
			return n, hl + 1
		}
		return l, hl
	default:
		sep, split := t.attachLeft(r.(*inner[V]), hr, l, hl)
		if split != nil {
			n := &inner[V]{seps: []Key{sep}, children: []node[V]{r, split}, sz: r.size() + split.size()}
			return n, hr + 1
		}
		return r, hr
	}
}

// attachRight hangs subtree b (height hb, keys larger than everything in n)
// below the right spine of n (inner node of height h > hb). It returns a
// split sibling of n if n overflowed.
func (t *Tree[V]) attachRight(n *inner[V], h int, b node[V], hb int) (Key, node[V]) {
	n.sz += b.size()
	if h == hb+1 {
		n.seps = append(n.seps, t.maxOf(n.children[len(n.children)-1], h-1))
		n.children = append(n.children, b)
	} else {
		last := n.children[len(n.children)-1].(*inner[V])
		csep, csplit := t.attachRight(last, h-1, b, hb)
		if csplit != nil {
			n.seps = append(n.seps, csep)
			n.children = append(n.children, csplit)
		}
	}
	if len(n.children) > t.degree {
		return t.splitInner(n)
	}
	return Key{}, nil
}

// attachLeft hangs subtree b (height hb, keys smaller than everything in n)
// below the left spine of n (inner node of height h > hb).
func (t *Tree[V]) attachLeft(n *inner[V], h int, b node[V], hb int) (Key, node[V]) {
	n.sz += b.size()
	if h == hb+1 {
		n.seps = append([]Key{t.maxOf(b, hb)}, n.seps...)
		n.children = append([]node[V]{b}, n.children...)
	} else {
		first := n.children[0].(*inner[V])
		csep, csplit := t.attachLeft(first, h-1, b, hb)
		if csplit != nil {
			// csplit holds the larger half of the split child; it goes
			// directly after child 0.
			n.seps = append([]Key{csep}, n.seps...)
			rest := append([]node[V]{n.children[0], csplit}, n.children[1:]...)
			n.children = rest
		}
	}
	if len(n.children) > t.degree {
		return t.splitInner(n)
	}
	return Key{}, nil
}

// maxOf returns the largest key stored in the subtree rooted at n.
func (t *Tree[V]) maxOf(n node[V], h int) Key {
	l := rightmostLeaf[V](n, h)
	return l.keys[len(l.keys)-1]
}

func rightmostLeaf[V any](n node[V], h int) *leaf[V] {
	for h > 0 {
		in := n.(*inner[V])
		n = in.children[len(in.children)-1]
		h--
	}
	return n.(*leaf[V])
}

func leftmostLeaf[V any](n node[V], h int) *leaf[V] {
	for h > 0 {
		n = n.(*inner[V]).children[0]
		h--
	}
	return n.(*leaf[V])
}

// SplitAtRank keeps the r smallest items in t and returns a new tree
// holding the remaining Len()-r largest items. r <= 0 moves everything to
// the returned tree; r >= Len() returns an empty tree.
func (t *Tree[V]) SplitAtRank(r int) *Tree[V] {
	right := NewWithDegree[V](t.degree)
	if t.root == nil || r >= t.Len() {
		return right
	}
	if r <= 0 {
		right.root, right.height = t.root, t.height
		t.Clear()
		return right
	}
	var lfrags, rfrags []frag[V]
	t.splitNode(t.root, t.height, r, &lfrags, &rfrags)
	t.root, t.height = t.foldJoinAsc(lfrags)
	right.root, right.height = t.foldJoinDesc(rfrags)
	return right
}

// SplitByKey keeps the items with keys <= k and returns a tree with the
// items whose keys are > k.
func (t *Tree[V]) SplitByKey(k Key) *Tree[V] {
	return t.SplitAtRank(t.CountLeq(k))
}

// splitNode cuts the subtree n (height h) after local rank r (1 <= r <
// n.size()). Fragments of the left part are appended to lfrags in ascending
// key order; fragments of the right part are appended to rfrags in
// descending key order.
func (t *Tree[V]) splitNode(n node[V], h, r int, lfrags, rfrags *[]frag[V]) {
	if h == 0 {
		l := n.(*leaf[V])
		nr := &leaf[V]{
			keys: append(make([]Key, 0, t.degree+1), l.keys[r:]...),
			vals: append(make([]V, 0, t.degree+1), l.vals[r:]...),
		}
		clearTailVals(l.vals, r)
		l.keys = l.keys[:r]
		l.vals = l.vals[:r]
		nr.next = l.next
		if nr.next != nil {
			nr.next.prev = nr
		}
		l.next = nil
		nr.prev = nil
		*lfrags = append(*lfrags, frag[V]{l, 0})
		*rfrags = append(*rfrags, frag[V]{nr, 0})
		return
	}
	in := n.(*inner[V])
	i, rr := 0, r
	for ; i < len(in.children); i++ {
		s := in.children[i].size()
		if rr <= s {
			break
		}
		rr -= s
	}
	if rr == in.children[i].size() {
		// Clean cut between child i and child i+1: sever the leaf chain.
		rl := rightmostLeaf[V](in.children[i], h-1)
		lf := leftmostLeaf[V](in.children[i+1], h-1)
		rl.next = nil
		lf.prev = nil
		appendSideFrag(t, lfrags, in, 0, i+1, h)
		appendSideFrag(t, rfrags, in, i+1, len(in.children), h)
		return
	}
	appendSideFrag(t, lfrags, in, 0, i, h)
	// Right-side siblings are collected before recursing so that rfrags
	// stays in descending key order.
	appendSideFrag(t, rfrags, in, i+1, len(in.children), h)
	t.splitNode(in.children[i], h-1, rr, lfrags, rfrags)
}

// appendSideFrag packages children [from, to) of in (an inner node of
// height h) as a fragment. Single children collapse to their own height.
func appendSideFrag[V any](t *Tree[V], frags *[]frag[V], in *inner[V], from, to, h int) {
	switch n := to - from; {
	case n <= 0:
		return
	case n == 1:
		*frags = append(*frags, frag[V]{in.children[from], h - 1})
	default:
		f := &inner[V]{
			seps:     append(make([]Key, 0, t.degree), in.seps[from:to-1]...),
			children: append(make([]node[V], 0, t.degree+1), in.children[from:to]...),
		}
		for _, c := range f.children {
			f.sz += c.size()
		}
		*frags = append(*frags, frag[V]{f, h})
	}
}

// foldJoinAsc joins fragments listed in ascending key order.
func (t *Tree[V]) foldJoinAsc(frags []frag[V]) (node[V], int) {
	if len(frags) == 0 {
		return nil, 0
	}
	acc := frags[0]
	for _, f := range frags[1:] {
		acc.n, acc.h = t.joinNodes(acc.n, acc.h, f.n, f.h)
	}
	return acc.n, acc.h
}

// foldJoinDesc joins fragments listed in descending key order.
func (t *Tree[V]) foldJoinDesc(frags []frag[V]) (node[V], int) {
	if len(frags) == 0 {
		return nil, 0
	}
	acc := frags[len(frags)-1]
	for i := len(frags) - 2; i >= 0; i-- {
		acc.n, acc.h = t.joinNodes(acc.n, acc.h, frags[i].n, frags[i].h)
	}
	return acc.n, acc.h
}
