package stats

import "fmt"

// MinExpectedCount is the classical validity rule for Pearson's chi-square:
// the asymptotic chi-square distribution of the statistic is unreliable
// when any bin's expected count falls below ~5 — sparse tail bins then
// dominate the statistic and the reported p-value is unstable in either
// direction. Callers with sparse bins must merge first (MergeBins or
// ChiSquareMerged).
const MinExpectedCount = 5

// MergeBins coalesces adjacent bins until every merged bin's expected
// count is at least min. The same merging is applied in lockstep to every
// column in cols (observed counts, parallel samples, ...), so column i of
// the result still lines up with expected bin i. A deficient trailing bin
// is folded backwards into its predecessor. The inputs are not modified.
//
// Adjacency-only merging is deliberate: callers order bins meaningfully
// (by weight, by rank), and merging preserves that ordering so a bias
// concentrated in the tail stays concentrated in the merged tail bin
// instead of being averaged away.
func MergeBins(expected []float64, min float64, cols ...[]float64) ([]float64, [][]float64, error) {
	for i, c := range cols {
		if len(c) != len(expected) {
			return nil, nil, fmt.Errorf("stats: column %d has %d bins, expected has %d", i, len(c), len(expected))
		}
	}
	mergedExp := make([]float64, 0, len(expected))
	mergedCols := make([][]float64, len(cols))
	for i := range mergedCols {
		mergedCols[i] = make([]float64, 0, len(expected))
	}
	accExp := 0.0
	accCols := make([]float64, len(cols))
	flush := func() {
		mergedExp = append(mergedExp, accExp)
		for i := range cols {
			mergedCols[i] = append(mergedCols[i], accCols[i])
			accCols[i] = 0
		}
		accExp = 0
	}
	for j := range expected {
		accExp += expected[j]
		for i := range cols {
			accCols[i] += cols[i][j]
		}
		if accExp >= min {
			flush()
		}
	}
	if accExp > 0 || len(mergedExp) == 0 {
		// Deficient tail: fold it into the previous bin if one exists.
		if n := len(mergedExp); n > 0 {
			mergedExp[n-1] += accExp
			for i := range cols {
				mergedCols[i][n-1] += accCols[i]
			}
		} else {
			flush()
		}
	}
	return mergedExp, mergedCols, nil
}

// ChiSquareMerged is ChiSquare with the expected-count validity rule
// enforced by construction: adjacent bins are merged until every expected
// count reaches minExpected (use MinExpectedCount unless you have a
// reason), then the ordinary test runs on the merged bins. Degrees of
// freedom are computed from the merged bin count.
func ChiSquareMerged(observed, expected []float64, ddof int, minExpected float64) (stat, p float64, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: observed and expected lengths differ (%d vs %d)", len(observed), len(expected))
	}
	exp, cols, err := MergeBins(expected, minExpected, observed)
	if err != nil {
		return 0, 0, err
	}
	return ChiSquare(cols[0], exp, ddof)
}
