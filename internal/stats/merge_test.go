package stats

import (
	"math"
	"testing"

	"reservoir/internal/rng"
)

func TestMergeBinsBasic(t *testing.T) {
	expected := []float64{10, 2, 2, 2, 10, 1}
	obs := []float64{9, 3, 1, 2, 11, 1}
	exp, cols, err := MergeBins(expected, 5, obs)
	if err != nil {
		t.Fatal(err)
	}
	// 10 | 2+2+2 | 10+1 (trailing 1 folds backwards).
	wantExp := []float64{10, 6, 11}
	wantObs := []float64{9, 6, 12}
	if len(exp) != len(wantExp) {
		t.Fatalf("merged into %d bins, want %d: %v", len(exp), len(wantExp), exp)
	}
	for i := range wantExp {
		if exp[i] != wantExp[i] || cols[0][i] != wantObs[i] {
			t.Fatalf("bin %d: got (exp=%g obs=%g), want (exp=%g obs=%g)",
				i, exp[i], cols[0][i], wantExp[i], wantObs[i])
		}
	}
}

func TestMergeBinsPreservesTotals(t *testing.T) {
	src := rng.NewXoshiro256(11)
	expected := make([]float64, 200)
	a := make([]float64, 200)
	b := make([]float64, 200)
	var sumE, sumA, sumB float64
	for i := range expected {
		expected[i] = rng.U01(src) * 8
		a[i] = float64(rng.Intn(src, 12))
		b[i] = float64(rng.Intn(src, 12))
		sumE += expected[i]
		sumA += a[i]
		sumB += b[i]
	}
	exp, cols, err := MergeBins(expected, MinExpectedCount, a, b)
	if err != nil {
		t.Fatal(err)
	}
	var gotE, gotA, gotB float64
	for i := range exp {
		if exp[i] < MinExpectedCount {
			t.Fatalf("merged bin %d has expected %g < %d", i, exp[i], MinExpectedCount)
		}
		gotE += exp[i]
		gotA += cols[0][i]
		gotB += cols[1][i]
	}
	if math.Abs(gotE-sumE) > 1e-9 || gotA != sumA || gotB != sumB {
		t.Fatalf("merge changed totals: exp %g->%g, a %g->%g, b %g->%g",
			sumE, gotE, sumA, gotA, sumB, gotB)
	}
}

func TestMergeBinsAllDeficient(t *testing.T) {
	// Every bin below the floor: everything collapses into one bin.
	exp, cols, err := MergeBins([]float64{1, 1, 1}, 5, []float64{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp) != 1 || exp[0] != 3 || cols[0][0] != 3 {
		t.Fatalf("want single merged bin (exp=3, obs=3), got exp=%v obs=%v", exp, cols[0])
	}
}

func TestMergeBinsColumnLengthMismatch(t *testing.T) {
	if _, _, err := MergeBins([]float64{5, 5}, 5, []float64{1}); err == nil {
		t.Fatal("want error for mismatched column length")
	}
}

func TestChiSquareMergedMatchesManualMerge(t *testing.T) {
	expected := []float64{20, 3, 3, 20}
	obs := []float64{18, 4, 3, 21}
	stat, p, err := ChiSquareMerged(obs, expected, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantStat, wantP, err := ChiSquare([]float64{18, 7, 21}, []float64{20, 6, 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stat-wantStat) > 1e-12 || math.Abs(p-wantP) > 1e-12 {
		t.Fatalf("merged test (stat=%g p=%g) != manual merge (stat=%g p=%g)", stat, p, wantStat, wantP)
	}
}

func TestChiSquareMergedStabilizesSparseTail(t *testing.T) {
	// A long sparse tail drawn from the null: the unmerged statistic is
	// wildly anti-conservative bin-by-bin, the merged one must accept.
	src := rng.NewXoshiro256(7)
	const trials = 2000
	// Geometric-ish expected counts: a few fat bins then a sparse tail.
	expected := make([]float64, 40)
	total := 0.0
	for i := range expected {
		expected[i] = trials * math.Pow(0.7, float64(i))
		total += expected[i]
	}
	for i := range expected {
		expected[i] *= trials / total
	}
	obs := make([]float64, len(expected))
	for t := 0; t < trials; t++ {
		// Sample a bin from the expected distribution.
		u := rng.U01(src) * trials
		acc := 0.0
		for i := range expected {
			acc += expected[i]
			if u <= acc {
				obs[i]++
				break
			}
		}
	}
	_, p, err := ChiSquareMerged(obs, expected, 0, MinExpectedCount)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("merged chi-square rejected a null sample: p=%g", p)
	}
}

func TestKolmogorovSmirnovTwoSampleNull(t *testing.T) {
	src := rng.NewXoshiro256(3)
	a := make([]float64, 800)
	b := make([]float64, 600)
	for i := range a {
		a[i] = rng.Exponential(src, 2)
	}
	for i := range b {
		b[i] = rng.Exponential(src, 2)
	}
	d, p := KolmogorovSmirnovTwoSample(a, b)
	if p < 1e-4 {
		t.Fatalf("two-sample KS rejected identical laws: D=%g p=%g", d, p)
	}
}

func TestKolmogorovSmirnovTwoSampleShift(t *testing.T) {
	src := rng.NewXoshiro256(4)
	a := make([]float64, 800)
	b := make([]float64, 800)
	for i := range a {
		a[i] = rng.U01(src)
		b[i] = rng.U01(src) + 0.2
	}
	if d, p := KolmogorovSmirnovTwoSample(a, b); p > 1e-6 {
		t.Fatalf("two-sample KS missed a 0.2 shift: D=%g p=%g", d, p)
	}
}

func TestKolmogorovSmirnovTwoSampleEmpty(t *testing.T) {
	if d, p := KolmogorovSmirnovTwoSample(nil, []float64{1}); d != 0 || p != 1 {
		t.Fatalf("empty sample: want (0, 1), got (%g, %g)", d, p)
	}
}

func TestGammaCDF(t *testing.T) {
	cases := []struct {
		shape, rate, x, want float64
	}{
		{1, 1, 0, 0},
		{1, 1, 1, 1 - math.Exp(-1)},      // Gamma(1, 1) is Exp(1)
		{1, 2, 3, 1 - math.Exp(-6)},      // Exp(2) at 3
		{2, 1, 2, 1 - 3*math.Exp(-2)},    // Erlang(2): 1-(1+x)e^-x
		{0.5, 0.5, 1, 0.682689492137086}, // chi-square(1) at 1 = P(|Z|<1)
	}
	for _, c := range cases {
		got := GammaCDF(c.shape, c.rate, c.x)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("GammaCDF(%g, %g, %g) = %.12f, want %.12f", c.shape, c.rate, c.x, got, c.want)
		}
	}
}

func TestNormalSurvival(t *testing.T) {
	if got := NormalSurvival(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("NormalSurvival(0) = %g, want 0.5", got)
	}
	if got := NormalSurvival(1.959963984540054); math.Abs(got-0.025) > 1e-9 {
		t.Errorf("NormalSurvival(1.96) = %g, want 0.025", got)
	}
	if got := NormalSurvival(-1.959963984540054); math.Abs(got-0.975) > 1e-9 {
		t.Errorf("NormalSurvival(-1.96) = %g, want 0.975", got)
	}
}
