// Package accept is the statistical acceptance harness: it runs each
// (algorithm × scenario) cell over many seeded trials, accumulates
// per-item inclusion counts, and tests the realized samples against
// theory — the machinery that turns "the tests pass" into "the samples
// are statistically correct on adversarial inputs".
//
// Per cell it applies four checks (see DESIGN.md §7 for the methodology):
//
//  1. inclusion_strata — two-sample chi-square of the fast sampler's
//     per-item inclusion counts against the naive key-sorting oracle run
//     on the identical stream, over weight-ordered strata merged so every
//     bin satisfies the expected-count validity rule.
//  2. closed_form_k1 — chi-square of k=1 inclusion counts against the
//     exact Efraimidis–Spirakis probability w_i/W (for k=1 the weighted
//     reservoir is an exponential race, so the inclusion probability has
//     a closed form — no oracle in the loop).
//  3. weight_total_ks — two-sample Kolmogorov–Smirnov between the
//     per-trial total sample weights of the sampler and the oracle: a
//     whole-distribution check that catches variance and tail bias that
//     mean-based tests miss.
//  4. weight_total_moments — Welford-accumulated mean/variance of the
//     per-trial total sample weight, compared by a Welch z-test.
//
// All p-values are compared against a Bonferroni-corrected per-test level
// alpha/(#cells · #checks), so the whole suite has family-wise false
// rejection probability at most alpha.
package accept

import (
	"fmt"
	"math"
	"sort"

	"reservoir"
	"reservoir/internal/core"
	"reservoir/internal/rng"
	"reservoir/internal/stats"
	"reservoir/internal/workload"
	"reservoir/internal/workload/scenario"
)

// checksPerCell is the number of hypothesis tests each cell runs.
const checksPerCell = 4

// Sampler is the minimal surface the harness needs from a sequential
// sampler under test. The real samplers satisfy it; so does the seeded
// bias mutant (NewMutantWeighted) used to prove the suite has power.
type Sampler interface {
	Process(workload.Item)
	Sample() []workload.Item
}

// Config parameterizes one harness run.
type Config struct {
	// Algorithms to test: "sequential", "distributed", "gather".
	Algorithms []string
	// Scenarios to run each algorithm over.
	Scenarios []scenario.Spec
	// Trials per cell (each trial re-runs the sampler with a fresh seed
	// over the identical stream). Default 400.
	Trials int
	// P is the PE count for the stream and the cluster algorithms
	// (default 4); K the sample size (default 16); Rounds the stream
	// length in mini-batch rounds (default 8); BatchLen the mean items
	// per PE per round (default 64).
	P, K, Rounds, BatchLen int
	// Shards fixes the cluster algorithms' logical scan-shard count
	// (0 = legacy single-stream scan). The sharded scan redraws every
	// admission variate from per-shard substreams, so re-validating the
	// scenario grid at Shards > 1 checks the sharded stream's
	// distributional correctness end to end (DESIGN.md §2.6).
	Shards int
	// Seed drives everything: streams, sampler seeds, oracle seeds.
	Seed uint64
	// Alpha is the family-wise significance level (default 1e-3).
	Alpha float64
	// Sequential optionally replaces the sequential sampler under test —
	// the injection point for deliberately broken mutants. nil means the
	// library's SeqWeighted. Only consulted for the "sequential"
	// algorithm.
	Sequential func(k int, seed uint64) Sampler
}

func (c Config) withDefaults() Config {
	if len(c.Algorithms) == 0 {
		c.Algorithms = []string{"sequential", "distributed", "gather"}
	}
	if c.Trials == 0 {
		c.Trials = 400
	}
	if c.P == 0 {
		c.P = 4
	}
	if c.K == 0 {
		c.K = 16
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.BatchLen == 0 {
		c.BatchLen = 64
	}
	if c.Alpha == 0 {
		c.Alpha = 1e-3
	}
	return c
}

// stream is one realized scenario stream, materialized once per cell so
// every trial (and the oracle) replays the identical items.
type stream struct {
	batches [][]workload.SliceBatch // [round][pe]
	union   []workload.Item         // round-major, then PE, then item
	index   map[uint64]int          // item ID -> dense index into union
	totalW  float64
}

// materialize synthesizes the full stream of one scenario.
func materialize(spec scenario.Spec, seed uint64, p, rounds, batchLen int) (*stream, error) {
	src, err := spec.Source(seed, batchLen)
	if err != nil {
		return nil, err
	}
	st := &stream{index: make(map[uint64]int)}
	for r := 0; r < rounds; r++ {
		perPE := make([]workload.SliceBatch, p)
		for pe := 0; pe < p; pe++ {
			b := workload.Materialize(src.NextBatch(pe, r))
			perPE[pe] = b
			for _, it := range b {
				st.index[it.ID] = len(st.union)
				st.union = append(st.union, it)
				st.totalW += it.W
			}
		}
		st.batches = append(st.batches, perPE)
	}
	if len(st.union) == 0 {
		return nil, fmt.Errorf("accept: scenario %q produced an empty stream", spec.Name)
	}
	return st, nil
}

// replaySource adapts the materialized stream back into a workload.Source
// for the cluster algorithms.
type replaySource struct{ st *stream }

func (r replaySource) NextBatch(pe, round int) workload.Batch {
	return r.st.batches[round][pe]
}

// runTrial runs one algorithm once over the stream and returns its sample.
func runTrial(algo string, cfg Config, st *stream, k int, seed uint64) ([]workload.Item, error) {
	switch algo {
	case "sequential":
		var s Sampler
		if cfg.Sequential != nil {
			s = cfg.Sequential(k, seed)
		} else {
			s = core.NewSeqWeighted(k, rng.NewXoshiro256(seed))
		}
		for _, it := range st.union {
			s.Process(it)
		}
		return s.Sample(), nil
	case "distributed", "gather":
		a := reservoir.Distributed
		if algo == "gather" {
			a = reservoir.CentralizedGather
		}
		cl, err := reservoir.NewCluster(cfg.P,
			reservoir.Config{K: k, Weighted: true, Seed: seed, Shards: cfg.Shards},
			reservoir.WithAlgorithm(a))
		if err != nil {
			return nil, err
		}
		src := replaySource{st}
		for r := 0; r < len(st.batches); r++ {
			cl.ProcessRound(src)
		}
		return cl.Sample(), nil
	default:
		return nil, fmt.Errorf("accept: unknown algorithm %q (want sequential, distributed, or gather)", algo)
	}
}

// Run executes the full (algorithm × scenario) grid and returns the
// verdict report. The run is deterministic given cfg.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = scenario.Presets()
	}
	cells := len(cfg.Algorithms) * len(cfg.Scenarios)
	perTest := cfg.Alpha / float64(cells*checksPerCell)
	rep := &Report{
		Schema:       ReportVersion,
		Alpha:        cfg.Alpha,
		PerTestAlpha: perTest,
		Tests:        cells * checksPerCell,
		Params: Params{
			Trials: cfg.Trials, P: cfg.P, K: cfg.K, Rounds: cfg.Rounds,
			BatchLen: cfg.BatchLen, Shards: cfg.Shards, Seed: cfg.Seed,
		},
		Pass: true,
	}
	for si, spec := range cfg.Scenarios {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("scenario_%d", si)
		}
		// One realized stream per scenario, shared by every algorithm's
		// cell (and by the oracle), so cells are comparable and any
		// rejection is attributable to the sampler, not the stream.
		streamSeed := rng.Mix64(cfg.Seed^0x5ce4a7105) + uint64(si)*0x9e3779b97f4a7c15
		st, err := materialize(spec, streamSeed, cfg.P, cfg.Rounds, cfg.BatchLen)
		if err != nil {
			return nil, err
		}
		for ai, algo := range cfg.Algorithms {
			cellSeed := rng.Mix64(cfg.Seed + uint64(si)*1_000_003 + uint64(ai)*7919)
			cell, err := runCell(cfg, algo, spec.Name, st, cellSeed, perTest)
			if err != nil {
				return nil, err
			}
			rep.Cells = append(rep.Cells, *cell)
			if !cell.Pass {
				rep.Pass = false
			}
		}
	}
	return rep, nil
}

// runCell runs all trials and checks of one (algorithm, scenario) cell.
func runCell(cfg Config, algo, scenarioName string, st *stream, cellSeed uint64, perTest float64) (*CellResult, error) {
	n := len(st.union)
	countsAlg := make([]float64, n)
	countsOr := make([]float64, n)
	countsK1 := make([]float64, n)
	wTotAlg := make([]float64, 0, cfg.Trials)
	wTotOr := make([]float64, 0, cfg.Trials)
	var momAlg, momOr stats.Welford

	oracleSeed := func(t int) uint64 { return rng.Mix64(cellSeed ^ 0xfeedface ^ uint64(t)*0x2545f4914f6cdd1d) }
	trialSeed := func(t int) uint64 { return rng.Mix64(cellSeed + uint64(t)*0x9e3779b97f4a7c15) }
	k1Seed := func(t int) uint64 { return rng.Mix64((cellSeed ^ 0xa11ce) + uint64(t)*0xd1342543de82ef95) }

	for t := 0; t < cfg.Trials; t++ {
		sample, err := runTrial(algo, cfg, st, cfg.K, trialSeed(t))
		if err != nil {
			return nil, err
		}
		w := 0.0
		for _, it := range sample {
			countsAlg[st.index[it.ID]]++
			w += it.W
		}
		wTotAlg = append(wTotAlg, w)
		momAlg.Add(w)

		o := core.NewNaiveOracle(cfg.K, true, rng.NewXoshiro256(oracleSeed(t)))
		for _, it := range st.union {
			o.Process(it)
		}
		w = 0
		for _, it := range o.Sample() {
			countsOr[st.index[it.ID]]++
			w += it.W
		}
		wTotOr = append(wTotOr, w)
		momOr.Add(w)

		// Closed-form sub-trial: the same algorithm at k=1, where the
		// exact inclusion probability is w_i/W.
		s1, err := runTrial(algo, cfg, st, 1, k1Seed(t))
		if err != nil {
			return nil, err
		}
		for _, it := range s1 {
			countsK1[st.index[it.ID]]++
		}
	}

	cell := &CellResult{
		Algorithm: algo,
		Scenario:  scenarioName,
		Items:     n,
		TotalW:    st.totalW,
		Pass:      true,
	}
	add := func(name string, statistic, p float64, detail string) {
		ck := Check{Name: name, Statistic: statistic, P: p, Alpha: perTest, Pass: p >= perTest, Detail: detail}
		cell.Checks = append(cell.Checks, ck)
		if !ck.Pass {
			cell.Pass = false
		}
	}

	// 1. inclusion_strata: two-sample chi-square over weight-ordered,
	// validity-merged strata.
	stat, p, bins, err := strataChiSquare(st, countsAlg, countsOr)
	if err != nil {
		return nil, fmt.Errorf("accept: %s/%s inclusion_strata: %w", algo, scenarioName, err)
	}
	add("inclusion_strata", stat, p, fmt.Sprintf("%d merged weight strata vs oracle", bins))

	// 2. closed_form_k1: chi-square against the exact w_i/W inclusion law.
	expected := make([]float64, n)
	for i, it := range st.union {
		expected[i] = float64(cfg.Trials) * it.W / st.totalW
	}
	ordered := weightOrder(st)
	stat, p, err = orderedChiSquareMerged(countsK1, expected, ordered)
	if err != nil {
		return nil, fmt.Errorf("accept: %s/%s closed_form_k1: %w", algo, scenarioName, err)
	}
	add("closed_form_k1", stat, p, "k=1 inclusion vs exact w_i/W")

	// 3. weight_total_ks: whole-distribution comparison of per-trial
	// sample weight totals.
	d, p := stats.KolmogorovSmirnovTwoSample(wTotAlg, wTotOr)
	add("weight_total_ks", d, p, "two-sample KS of per-trial sample weight totals vs oracle")

	// 4. weight_total_moments: Welch z-test on the means.
	z, p := welchZ(&momAlg, &momOr)
	add("weight_total_moments", z, p,
		fmt.Sprintf("mean %.4g vs oracle %.4g (sd %.3g / %.3g)",
			momAlg.Mean(), momOr.Mean(), momAlg.StdDev(), momOr.StdDev()))

	return cell, nil
}

// weightOrder returns the dense item indices ordered by descending weight
// (ties by ID) so strata concentrate the heavy tail at the front and the
// sparse tail merges cleanly.
func weightOrder(st *stream) []int {
	order := make([]int, len(st.union))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := st.union[order[a]].W, st.union[order[b]].W
		if wa != wb {
			return wa > wb
		}
		return st.union[order[a]].ID < st.union[order[b]].ID
	})
	return order
}

// strataChiSquare compares two inclusion-count vectors over weight-ordered
// strata merged to the expected-count validity rule. Under H0 both vectors
// are draws from the same per-item inclusion law, so the pooled half is
// the expected count and the statistic is sum (a-b)^2/(a+b) with
// bins-1 degrees of freedom (equal trial counts on both sides).
func strataChiSquare(st *stream, a, b []float64) (stat, p float64, bins int, err error) {
	order := weightOrder(st)
	oa := make([]float64, len(order))
	ob := make([]float64, len(order))
	pooledHalf := make([]float64, len(order))
	for j, idx := range order {
		oa[j] = a[idx]
		ob[j] = b[idx]
		pooledHalf[j] = (a[idx] + b[idx]) / 2
	}
	_, cols, err := stats.MergeBins(pooledHalf, stats.MinExpectedCount, oa, ob)
	if err != nil {
		return 0, 0, 0, err
	}
	ma, mb := cols[0], cols[1]
	df := 0
	for j := range ma {
		tot := ma[j] + mb[j]
		if tot == 0 {
			continue
		}
		d := ma[j] - mb[j]
		stat += d * d / tot
		df++
	}
	if df < 2 {
		return stat, 1, len(ma), nil
	}
	return stat, stats.ChiSquareSurvival(stat, float64(df-1)), len(ma), nil
}

// orderedChiSquareMerged runs ChiSquareMerged with bins in the given order
// (weight-descending), so merging groups items of similar weight.
func orderedChiSquareMerged(obs, expected []float64, order []int) (stat, p float64, err error) {
	o := make([]float64, len(order))
	e := make([]float64, len(order))
	for j, idx := range order {
		o[j] = obs[idx]
		e[j] = expected[idx]
	}
	return stats.ChiSquareMerged(o, e, 0, stats.MinExpectedCount)
}

// welchZ compares two Welford accumulators' means with a Welch z-test and
// returns the statistic and two-sided p-value.
func welchZ(a, b *stats.Welford) (z, p float64) {
	se := math.Sqrt(a.Variance()/float64(a.N()) + b.Variance()/float64(b.N()))
	if se == 0 {
		if a.Mean() == b.Mean() {
			return 0, 1
		}
		return math.Inf(1), 0
	}
	z = (a.Mean() - b.Mean()) / se
	return z, 2 * stats.NormalSurvival(math.Abs(z))
}
