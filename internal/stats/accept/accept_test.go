package accept

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"reservoir/internal/workload/scenario"
)

// smallCfg keeps test cells cheap: ~10k-item streams, hundreds of trials.
func smallCfg(algos []string, scens []scenario.Spec) Config {
	return Config{
		Algorithms: algos,
		Scenarios:  scens,
		Trials:     300,
		P:          4,
		K:          16,
		Rounds:     6,
		BatchLen:   48,
		Seed:       0xACCE97,
		Alpha:      1e-3,
	}
}

func mustPreset(t *testing.T, name string) scenario.Spec {
	t.Helper()
	sp, ok := scenario.Preset(name)
	if !ok {
		t.Fatalf("missing preset %q", name)
	}
	return sp
}

func TestCorrectSamplersAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	scens := []scenario.Spec{
		mustPreset(t, "pareto_burst"),
		mustPreset(t, "zipf_hot"),
	}
	rep, err := Run(smallCfg([]string{"sequential", "distributed"}, scens))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("correct samplers rejected: %v\n%s", rep.Failures(), rep.Summary())
	}
	wantCells := 2 * len(scens)
	if len(rep.Cells) != wantCells || rep.Tests != wantCells*checksPerCell {
		t.Fatalf("want %d cells / %d tests, got %d / %d", wantCells, wantCells*checksPerCell, len(rep.Cells), rep.Tests)
	}
}

func TestGatherAccepted(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	rep, err := Run(smallCfg([]string{"gather"}, []scenario.Spec{mustPreset(t, "lognormal_drift")}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("gather baseline rejected: %v\n%s", rep.Failures(), rep.Summary())
	}
}

// TestMutantRejected is the power check of the whole gate: a sampler with
// deliberately biased keys (u·w instead of -ln(u)/w) must be rejected.
// Without this test a harness that always reports pass would look green.
func TestMutantRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	cfg := smallCfg([]string{"sequential"}, []scenario.Spec{mustPreset(t, "pareto_burst")})
	cfg.Sequential = NewMutantWeighted
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("biased mutant was ACCEPTED — the suite has no statistical power\n%s", rep.Summary())
	}
	// The bias must be caught by the inclusion tests specifically, not
	// merely by a fluke in the moment checks.
	failed := map[string]bool{}
	for _, name := range rep.Failures() {
		failed[name] = true
	}
	if !failed["sequential/pareto_burst/inclusion_strata"] && !failed["sequential/pareto_burst/closed_form_k1"] {
		t.Fatalf("mutant slipped past both inclusion tests; failures: %v", rep.Failures())
	}
}

// TestMutantRejectedOnUniformStream proves the gate has power even on the
// paper's own benign stream, not just adversarial tails.
func TestMutantRejectedOnUniformStream(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	cfg := smallCfg([]string{"sequential"}, []scenario.Spec{mustPreset(t, "uniform_poisson")})
	cfg.Sequential = NewMutantWeighted
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("biased mutant accepted on the uniform stream\n%s", rep.Summary())
	}
}

func TestRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical suite")
	}
	cfg := smallCfg([]string{"sequential"}, []scenario.Spec{mustPreset(t, "zipf_hot")})
	cfg.Trials = 60
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("two identical runs produced different reports:\n%s\n%s", ja, jb)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallCfg([]string{"quantum"}, []scenario.Spec{mustPreset(t, "zipf_hot")})
	cfg.Trials = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("want error for unknown algorithm")
	}
	bad := scenario.Spec{Name: "bad", Law: "cauchy"}
	if _, err := Run(smallCfg([]string{"sequential"}, []scenario.Spec{bad})); err == nil {
		t.Fatal("want error for invalid scenario")
	}
}

func TestReportWriteAndRoundTrip(t *testing.T) {
	cfg := smallCfg([]string{"sequential"}, []scenario.Spec{mustPreset(t, "uniform_poisson")})
	cfg.Trials = 40
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "accept.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportVersion || len(back.Cells) != len(rep.Cells) || back.Pass != rep.Pass {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}
	if s := rep.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

func TestMutantSamplerBasics(t *testing.T) {
	// The mutant must still behave like a reservoir mechanically (size k,
	// items from the stream) — its only defect is distributional.
	m := NewMutantWeighted(8, 42)
	src, err := mustPresetSpec("pareto_burst").Source(9, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := src.NextBatch(0, 0)
	for i := 0; i < b.Len(); i++ {
		m.Process(b.At(i))
	}
	s := m.Sample()
	if len(s) != 8 {
		t.Fatalf("mutant sample size %d, want 8", len(s))
	}
	seen := map[uint64]bool{}
	for _, it := range s {
		if seen[it.ID] {
			t.Fatalf("duplicate item %d in mutant sample", it.ID)
		}
		seen[it.ID] = true
	}
}

func mustPresetSpec(name string) scenario.Spec {
	sp, ok := scenario.Preset(name)
	if !ok {
		panic("missing preset " + name)
	}
	return sp
}
