package accept

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ReportVersion identifies the verdict report schema.
const ReportVersion = "reservoir-accept/v1"

// Report is the machine-readable verdict of one harness run: one cell per
// (algorithm × scenario), one check per hypothesis test, and a top-level
// pass bit. CI archives these as artifacts so statistical drift is
// diffable across runs, like the reservoir-bench/v1 reports.
type Report struct {
	Schema       string       `json:"schema"`
	CreatedAt    string       `json:"created_at,omitempty"`
	Alpha        float64      `json:"alpha"`
	PerTestAlpha float64      `json:"per_test_alpha"`
	Tests        int          `json:"tests"`
	Params       Params       `json:"params"`
	Cells        []CellResult `json:"cells"`
	Pass         bool         `json:"pass"`
}

// Params records the harness configuration the verdict depends on.
type Params struct {
	Trials   int    `json:"trials"`
	P        int    `json:"p"`
	K        int    `json:"k"`
	Rounds   int    `json:"rounds"`
	BatchLen int    `json:"batch_len"`
	Shards   int    `json:"shards,omitempty"`
	Seed     uint64 `json:"seed"`
}

// CellResult is one (algorithm × scenario) cell.
type CellResult struct {
	Algorithm string  `json:"algorithm"`
	Scenario  string  `json:"scenario"`
	Items     int     `json:"items"`
	TotalW    float64 `json:"total_weight"`
	Checks    []Check `json:"checks"`
	Pass      bool    `json:"pass"`
}

// Check is one hypothesis test inside a cell.
type Check struct {
	Name      string  `json:"name"`
	Statistic float64 `json:"statistic"`
	P         float64 `json:"p_value"`
	Alpha     float64 `json:"alpha"`
	Pass      bool    `json:"pass"`
	Detail    string  `json:"detail,omitempty"`
}

// Failures returns every failed check as "algorithm/scenario/check".
func (r *Report) Failures() []string {
	var out []string
	for _, c := range r.Cells {
		for _, ck := range c.Checks {
			if !ck.Pass {
				out = append(out, fmt.Sprintf("%s/%s/%s", c.Algorithm, c.Scenario, ck.Name))
			}
		}
	}
	return out
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Summary renders a human-readable table of every cell and check.
func (r *Report) Summary() string {
	var b strings.Builder
	for _, c := range r.Cells {
		status := "ok"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-12s %-18s %-4s (%d items, total weight %.4g)\n",
			c.Algorithm, c.Scenario, status, c.Items, c.TotalW)
		for _, ck := range c.Checks {
			mark := "ok"
			if !ck.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(&b, "  %-22s stat=%-10.4g p=%-10.4g alpha=%.3g  %-4s %s\n",
				ck.Name, ck.Statistic, ck.P, ck.Alpha, mark, ck.Detail)
		}
	}
	verdict := "ACCEPTED"
	if !r.Pass {
		verdict = "REJECTED"
	}
	fmt.Fprintf(&b, "verdict: %s (%d cells, %d tests, family-wise alpha %g)\n",
		verdict, len(r.Cells), r.Tests, r.Alpha)
	return b.String()
}
