package accept

import (
	"reservoir/internal/rng"
	"reservoir/internal/workload"
)

// MutantWeighted is a deliberately mis-keyed weighted sampler: it draws
// the key u·w (uniform times weight) instead of the Efraimidis–Spirakis
// exponential key -ln(u)/w. Small weights then tend to produce small keys,
// so the reservoir is biased toward LIGHT items — the classic
// inverted-weighting bug.
//
// It exists to prove the acceptance harness has statistical power: the
// suite must reject it (see TestMutantRejected and the accept-smoke CI
// job's -mutant power check). It must never be used for sampling.
type MutantWeighted struct {
	k     int
	src   rng.Source
	keys  []float64
	items []workload.Item
	max   int // index of the largest key
}

// NewMutantWeighted returns the bias mutant as an accept.Sampler factory
// argument for Config.Sequential.
func NewMutantWeighted(k int, seed uint64) Sampler {
	return &MutantWeighted{k: k, src: rng.NewXoshiro256(seed)}
}

// Process feeds one item, keeping the k smallest (biased) keys.
func (m *MutantWeighted) Process(it workload.Item) {
	key := rng.U01(m.src) * it.W // BUG (deliberate): should be -ln(u)/w
	if len(m.keys) < m.k {
		m.keys = append(m.keys, key)
		m.items = append(m.items, it)
		if key > m.keys[m.max] {
			m.max = len(m.keys) - 1
		}
		return
	}
	if key >= m.keys[m.max] {
		return
	}
	m.keys[m.max] = key
	m.items[m.max] = it
	for i, v := range m.keys {
		if v > m.keys[m.max] {
			m.max = i
		}
	}
}

// Sample returns the current (biased) sample.
func (m *MutantWeighted) Sample() []workload.Item {
	return append([]workload.Item(nil), m.items...)
}
