package stats

import (
	"math"
	"testing"

	"reservoir/internal/rng"
)

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of the set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", w.StdDev())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(0) != 0 {
		t.Error("H_0 != 0")
	}
	if Harmonic(1) != 1 {
		t.Error("H_1 != 1")
	}
	if math.Abs(Harmonic(4)-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Errorf("H_4 = %v", Harmonic(4))
	}
	// Asymptotic branch must agree with summation at the switchover scale.
	n := 1_000_000
	exact := Harmonic(n)
	const gamma = 0.5772156649015328606
	asym := math.Log(float64(n)) + gamma + 1/(2*float64(n)) - 1/(12*float64(n)*float64(n))
	if math.Abs(exact-asym) > 1e-10 {
		t.Errorf("harmonic branches disagree at n=%d: %v vs %v", n, exact, asym)
	}
}

func TestChiSquareExactValues(t *testing.T) {
	// Known chi-square survival values: P[X >= x] for df degrees of freedom.
	cases := []struct {
		stat, df, want float64
	}{
		{0, 1, 1},
		{3.841, 1, 0.05}, // 95th percentile of chi2(1)
		{5.991, 2, 0.05}, // 95th percentile of chi2(2)
		{18.307, 10, 0.05},
		{2.706, 1, 0.10},
	}
	for _, c := range cases {
		got := ChiSquareSurvival(c.stat, c.df)
		if math.Abs(got-c.want) > 2e-4 {
			t.Errorf("ChiSquareSurvival(%v, %v) = %v, want ~%v", c.stat, c.df, got, c.want)
		}
	}
}

func TestChiSquareGoodnessOfFit(t *testing.T) {
	// A fair die simulated with a good RNG must not be rejected.
	src := rng.NewXoshiro256(42)
	obs := make([]float64, 6)
	const n = 60000
	for i := 0; i < n; i++ {
		obs[rng.Intn(src, 6)]++
	}
	exp := make([]float64, 6)
	for i := range exp {
		exp[i] = n / 6.0
	}
	_, p, err := ChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Errorf("fair die rejected: p = %v", p)
	}
	// A heavily loaded die must be rejected.
	obs[0] += 2000
	obs[1] -= 2000
	_, p, err = ChiSquare(obs, exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("loaded die not rejected: p = %v", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch not reported")
	}
	if _, _, err := ChiSquare([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("df=0 not reported")
	}
	if _, _, err := ChiSquare([]float64{1, 2}, []float64{1, 0}, 0); err == nil {
		t.Error("non-positive expected count not reported")
	}
}

func TestKolmogorovSmirnovUniform(t *testing.T) {
	src := rng.NewXoshiro256(7)
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = rng.U01CO(src)
	}
	d, p := KolmogorovSmirnov(sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if p < 1e-4 {
		t.Errorf("uniform sample rejected: D=%v p=%v", d, p)
	}
	// Exponential sample against uniform CDF must be rejected hard.
	for i := range sample {
		sample[i] = math.Min(rng.Exponential(src, 3), 1)
	}
	_, p = KolmogorovSmirnov(sample, func(x float64) float64 { return math.Max(0, math.Min(1, x)) })
	if p > 1e-6 {
		t.Errorf("exponential sample not rejected against uniform: p = %v", p)
	}
}

func TestKolmogorovSmirnovExponential(t *testing.T) {
	src := rng.NewXoshiro256(8)
	sample := make([]float64, 5000)
	rate := 2.5
	for i := range sample {
		sample[i] = rng.Exponential(src, rate)
	}
	_, p := KolmogorovSmirnov(sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	})
	if p < 1e-4 {
		t.Errorf("exponential sample rejected against own CDF: p = %v", p)
	}
}

func TestKSEmptySample(t *testing.T) {
	d, p := KolmogorovSmirnov(nil, func(float64) float64 { return 0 })
	if d != 0 || p != 1 {
		t.Errorf("empty sample: d=%v p=%v", d, p)
	}
}
