// Package stats provides the statistical machinery used to verify the
// samplers: goodness-of-fit tests (chi-square, Kolmogorov–Smirnov), running
// moments, and the harmonic numbers that appear in the insertion-count
// analysis of the paper (Lemma 2 / Theorem 3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance online (Welford's algorithm).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Mean returns the mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Harmonic returns the n-th harmonic number H_n. Exact summation is used up
// to 10^6; beyond that the asymptotic expansion ln n + γ + 1/(2n) - 1/(12n²)
// is accurate to well below 1e-12.
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n <= 1_000_000 {
		s := 0.0
		for i := 1; i <= n; i++ {
			s += 1 / float64(i)
		}
		return s
	}
	const gamma = 0.5772156649015328606
	fn := float64(n)
	return math.Log(fn) + gamma + 1/(2*fn) - 1/(12*fn*fn)
}

// --- chi-square -----------------------------------------------------------

// ChiSquare returns the chi-square statistic and its p-value for observed
// counts against expected counts. Both slices must have the same length and
// expected counts must be positive; degrees of freedom is len-1-ddof.
func ChiSquare(observed []float64, expected []float64, ddof int) (stat, p float64, err error) {
	if len(observed) != len(expected) {
		return 0, 0, fmt.Errorf("stats: observed and expected lengths differ (%d vs %d)", len(observed), len(expected))
	}
	df := len(observed) - 1 - ddof
	if df < 1 {
		return 0, 0, fmt.Errorf("stats: non-positive degrees of freedom %d", df)
	}
	for i := range observed {
		if expected[i] <= 0 {
			return 0, 0, fmt.Errorf("stats: expected count %d is not positive", i)
		}
		d := observed[i] - expected[i]
		stat += d * d / expected[i]
	}
	return stat, ChiSquareSurvival(stat, float64(df)), nil
}

// ChiSquareSurvival returns P[X >= stat] for a chi-square distribution with
// df degrees of freedom, i.e. the upper regularized incomplete gamma
// function Q(df/2, stat/2).
func ChiSquareSurvival(stat, df float64) float64 {
	if stat <= 0 {
		return 1
	}
	return gammaQ(df/2, stat/2)
}

// GammaCDF returns P[X <= x] for a Gamma(shape, rate) distribution, i.e.
// the lower regularized incomplete gamma function P(shape, rate·x). Used
// to KS-test Gamma-bursty arrival processes against their own law.
func GammaCDF(shape, rate, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - gammaQ(shape, rate*x)
}

// NormalSurvival returns P[Z >= z] for a standard normal Z.
func NormalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// gammaQ computes the upper regularized incomplete gamma function Q(a, x)
// via the series (x < a+1) or continued fraction (x >= a+1) expansions
// (Numerical Recipes, gammp/gammq).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// --- Kolmogorov–Smirnov ----------------------------------------------------

// KolmogorovSmirnov returns the KS statistic D and the asymptotic p-value
// for the hypothesis that sample was drawn from the continuous distribution
// with the given CDF. The sample is sorted in place.
func KolmogorovSmirnov(sample []float64, cdf func(float64) float64) (d, p float64) {
	n := len(sample)
	if n == 0 {
		return 0, 1
	}
	sort.Float64s(sample)
	fn := float64(n)
	for i, x := range sample {
		f := cdf(x)
		if lo := f - float64(i)/fn; lo > d {
			d = lo
		}
		if hi := float64(i+1)/fn - f; hi > d {
			d = hi
		}
	}
	return d, ksPValue(d, fn)
}

// KolmogorovSmirnovTwoSample returns the two-sample KS statistic D and the
// asymptotic p-value for the hypothesis that a and b were drawn from the
// same continuous distribution. Both samples are sorted in place. The
// p-value uses the Kolmogorov asymptotic with the effective sample size
// n·m/(n+m) and Stephens' small-sample correction.
func KolmogorovSmirnovTwoSample(a, b []float64) (d, p float64) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, 1
	}
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	for i < n && j < m {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		if diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m)); diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	return d, ksPValue(d, ne)
}

// ksPValue evaluates the asymptotic Kolmogorov distribution survival
// function with the Stephens small-sample correction; n is the (possibly
// fractional, for the two-sample effective size) sample size.
func ksPValue(d float64, n float64) float64 {
	sq := math.Sqrt(n)
	lambda := (sq + 0.12 + 0.11/sq) * d
	// P = 2 Σ_{k>=1} (-1)^{k-1} exp(-2 k² λ²)
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
