package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRunBasics(t *testing.T) {
	s := TinyScale()
	r := Run(RunParams{
		P: 4, K: 50, BatchPerPE: 1000, Algo: Algos()[0],
		Warmup: 1, Measure: 2, Seed: 1, Model: s.Model,
	})
	if r.RoundNS <= 0 || r.TotalNS <= r.RoundNS {
		t.Fatalf("times wrong: %+v", r)
	}
	if r.ThroughputPerPE <= 0 {
		t.Fatal("no throughput")
	}
	if r.AvgSelectionDepth <= 0 {
		t.Fatal("no selection depth recorded")
	}
	if r.MeanInsertedPerPE <= 0 || r.MaxInsertedPerPE < r.MeanInsertedPerPE {
		t.Fatalf("insertion stats wrong: %+v", r)
	}
	if r.MsgsPerRound <= 0 || r.WordsPerRound <= 0 {
		t.Fatal("no network traffic")
	}
}

func TestRunGatherHasGatherTime(t *testing.T) {
	s := TinyScale()
	r := Run(RunParams{
		P: 4, K: 50, BatchPerPE: 1000, Algo: Algos()[2],
		Warmup: 1, Measure: 2, Seed: 1, Model: s.Model,
	})
	if r.Timing.GatherNS <= 0 {
		t.Fatal("gather algo without gather time")
	}
	if r.AvgSelectionDepth != 0 {
		t.Fatal("gather algo reported selection recursion depth")
	}
}

func TestWeakScalingShape(t *testing.T) {
	s := TinyScale()
	var buf bytes.Buffer
	rows := WeakScaling(s, &buf)
	want := len(s.WeakBatch) * len(s.WeakK) * len(Algos()) * len(s.Nodes)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	// The ours baseline point must have speedup exactly 1.
	for _, r := range rows {
		if r.Algo == "ours" && r.Nodes == s.Nodes[0] {
			if math.Abs(r.Speedup-1) > 1e-9 {
				t.Fatalf("baseline speedup = %v", r.Speedup)
			}
		}
		if math.IsNaN(r.Speedup) || r.Speedup <= 0 {
			t.Fatalf("bad speedup in row %+v", r)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "ideal") {
		t.Error("missing table headers")
	}
	// Speedups should grow with node count for ours (weak scaling works at
	// tiny scale too, if modestly).
	byNodes := map[int]float64{}
	for _, r := range rows {
		if r.Algo == "ours" && r.K == s.WeakK[0] && r.BatchB == s.WeakBatch[len(s.WeakBatch)-1] {
			byNodes[r.Nodes] = r.Speedup
		}
	}
	if byNodes[s.Nodes[len(s.Nodes)-1]] <= byNodes[s.Nodes[0]] {
		t.Errorf("weak scaling speedup not increasing: %v", byNodes)
	}
}

func TestStrongScalingShape(t *testing.T) {
	s := TinyScale()
	var buf bytes.Buffer
	rows := StrongScaling(s, &buf)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if math.IsNaN(r.Speedup) || r.Speedup <= 0 {
			t.Fatalf("bad speedup in row %+v", r)
		}
		if r.Result.ThroughputPerPE <= 0 {
			t.Fatalf("bad throughput in row %+v", r)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Figure 5") {
		t.Error("missing figure headers")
	}
}

func TestCompositionShape(t *testing.T) {
	s := TinyScale()
	var buf bytes.Buffer
	rows := Composition(s, &buf)
	if len(rows) == 0 {
		t.Fatal("no composition rows")
	}
	for _, r := range rows {
		// One of the two algorithms must be the normalization reference
		// (total fraction 1).
		slowest := math.Max(r.Ours.Total, r.Gather.Total)
		if math.Abs(slowest-1) > 1e-9 {
			t.Fatalf("normalization broken: %+v", r)
		}
		if r.Ours.Gather != 0 {
			t.Fatalf("ours reported gather fraction: %+v", r)
		}
		if r.Gather.Total <= 0 || r.Ours.Total <= 0 {
			t.Fatalf("empty totals: %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("missing figure header")
	}
}

func TestRecursionDepthDirection(t *testing.T) {
	s := TinyScale()
	var buf bytes.Buffer
	rows := RecursionDepth(s, &buf)
	if len(rows) != len(s.WeakK) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Depth1 <= 0 || r.Depth8 <= 0 {
			t.Fatalf("missing depths: %+v", r)
		}
		if r.Depth8 > r.Depth1 {
			t.Errorf("k=%d: 8 pivots deeper than 1 pivot (%.2f vs %.2f)", r.K, r.Depth8, r.Depth1)
		}
	}
}

func TestInsertionBoundHolds(t *testing.T) {
	s := TinyScale()
	var buf bytes.Buffer
	rows := InsertionBound(s, &buf)
	for _, r := range rows {
		// The bounds hold in expectation; allow sampling slack for the
		// single tiny-scale realization.
		if r.MeasuredMeanPerPE > 1.3*r.PredictedMeanPerPE+2 {
			t.Errorf("k=%d: mean insertions %.1f exceed Lemma 2 bound %.1f",
				r.K, r.MeasuredMeanPerPE, r.PredictedMeanPerPE)
		}
		if r.MeasuredMaxPE > 1.5*r.PredictedMaxPE+5 {
			t.Errorf("k=%d: max insertions %.1f exceed Theorem 3 bound %.1f",
				r.K, r.MeasuredMaxPE, r.PredictedMaxPE)
		}
		if r.MeasuredMeanPerPE <= 0 {
			t.Errorf("k=%d: no post-warmup insertions measured", r.K)
		}
	}
}

func TestScalesAreSane(t *testing.T) {
	for _, s := range []Scale{TinyScale(), SmallScale(), PaperScale()} {
		if s.PEsPerNode < 1 || len(s.Nodes) == 0 || s.Measure < 1 {
			t.Fatalf("%s: bad scale %+v", s.Name, s)
		}
		for _, b := range s.StrongB {
			p := s.Nodes[len(s.Nodes)-1] * s.PEsPerNode
			if b%p != 0 {
				t.Errorf("%s: strong batch %d not divisible by max PEs %d", s.Name, b, p)
			}
		}
		if s.Model.CacheItems <= 0 {
			t.Errorf("%s: cache model missing", s.Name)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	s := TinyScale()
	p := RunParams{P: 4, K: 30, BatchPerPE: 500, Algo: Algos()[1], Warmup: 1, Measure: 2, Seed: 9, Model: s.Model}
	a, b := Run(p), Run(p)
	if a.RoundNS != b.RoundNS || a.TotalNS != b.TotalNS || a.MeanInsertedPerPE != b.MeanInsertedPerPE {
		t.Fatalf("virtual-time runs not deterministic: %+v vs %+v", a, b)
	}
}
