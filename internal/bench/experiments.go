package bench

import (
	"fmt"
	"io"
	"math"

	"reservoir"
)

// FigRow is one plotted point of a scaling figure.
type FigRow struct {
	Exp     string // "fig3" or "fig4"
	Algo    string
	Nodes   int
	P       int
	K       int
	BatchB  int // per-PE batch (weak) or total batch (strong)
	Speedup float64
	Result  RunResult
}

func ratio(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return math.NaN()
	}
	return a / b
}

// baseCache memoizes the baseline (ours, smallest node count) round time,
// keyed by (weak?, batch, k, p0).
var baseCache = map[[4]int]float64{}

func baseline(s Scale, weak bool, batch, k int) float64 {
	wi := 0
	if weak {
		wi = 1
	}
	p0 := s.Nodes[0] * s.PEsPerNode
	key := [4]int{wi, batch, k, p0}
	if v, ok := baseCache[key]; ok {
		return v
	}
	bpp := batch
	exp := 4
	if weak {
		exp = 3
	} else {
		bpp = batch / p0
	}
	r := Run(RunParams{
		P: p0, K: k, BatchPerPE: bpp, Algo: Algos()[0],
		Warmup: s.Warmup, Measure: s.Measure,
		Seed: seedFor(s.Seed, exp, batch, k, s.Nodes[0]), Model: s.Model,
	})
	baseCache[key] = r.RoundNS
	return r.RoundNS
}

func putBaseline(s Scale, weak bool, batch, k int, roundNS float64) {
	wi := 0
	if weak {
		wi = 1
	}
	p0 := s.Nodes[0] * s.PEsPerNode
	baseCache[[4]int{wi, batch, k, p0}] = roundNS
}

func header(w io.Writer, s Scale) {
	h := "algo     k        "
	for _, nodes := range s.Nodes {
		h += fmt.Sprintf(" %7dn", nodes)
	}
	fprintf(w, "%s\n", h)
}

func idealLine(w io.Writer, s Scale) {
	ideal := "ideal            "
	for _, nodes := range s.Nodes {
		ideal += fmt.Sprintf(" %8.1f", float64(nodes)/float64(s.Nodes[0]))
	}
	fprintf(w, "%s\n", ideal)
}

// WeakScaling regenerates Figure 3: for each per-PE batch size b and sample
// size k, the relative speedup of ours / ours-8 / gather over ours on one
// node. With fixed per-PE work, the relative (scaled) speedup at N nodes is
// (N/N0) * T(base)/T(algo); ideal = N.
func WeakScaling(s Scale, w io.Writer) []FigRow {
	var rows []FigRow
	for _, b := range s.WeakBatch {
		fprintf(w, "\n== Figure 3 (weak scaling): batch size b = %s per PE, speedup relative to ours@%dn ==\n",
			fmtCount(b), s.Nodes[0])
		header(w, s)
		for _, algo := range Algos() {
			for _, k := range s.WeakK {
				line := fmt.Sprintf("%-8s k=%-7s", algo.Name, fmtCount(k))
				for _, nodes := range s.Nodes {
					p := nodes * s.PEsPerNode
					r := Run(RunParams{
						P: p, K: k, BatchPerPE: b, Algo: algo,
						Warmup: s.Warmup, Measure: s.Measure,
						Seed: seedFor(s.Seed, 3, b, k, nodes), Model: s.Model,
					})
					if algo.Name == "ours" && nodes == s.Nodes[0] {
						putBaseline(s, true, b, k, r.RoundNS)
					}
					speedup := float64(nodes) / float64(s.Nodes[0]) * ratio(baseline(s, true, b, k), r.RoundNS)
					rows = append(rows, FigRow{
						Exp: "fig3", Algo: algo.Name, Nodes: nodes, P: p, K: k,
						BatchB: b, Speedup: speedup, Result: r,
					})
					line += fmt.Sprintf(" %8.1f", speedup)
				}
				fprintf(w, "%s\n", line)
			}
		}
		idealLine(w, s)
	}
	return rows
}

// StrongScaling regenerates Figures 4 and 5: the total batch size B is
// fixed and the per-PE batch shrinks with p. Speedup = T(base)/T(algo)
// (Figure 4, ideal = N) and throughput per PE in items per virtual second
// (Figure 5).
func StrongScaling(s Scale, w io.Writer) []FigRow {
	var rows []FigRow
	for _, bTotal := range s.StrongB {
		fprintf(w, "\n== Figure 4 (strong scaling): total batch B = %s, speedup relative to ours@%dn ==\n",
			fmtCount(bTotal), s.Nodes[0])
		header(w, s)
		var thrLines []string
		for _, algo := range Algos() {
			for _, k := range s.StrongK {
				line := fmt.Sprintf("%-8s k=%-7s", algo.Name, fmtCount(k))
				thr := fmt.Sprintf("%-8s k=%-7s", algo.Name, fmtCount(k))
				for _, nodes := range s.Nodes {
					p := nodes * s.PEsPerNode
					bpp := bTotal / p
					if bpp < 1 {
						line += fmt.Sprintf(" %8s", "-")
						thr += fmt.Sprintf(" %11s", "-")
						continue
					}
					r := Run(RunParams{
						P: p, K: k, BatchPerPE: bpp, Algo: algo,
						Warmup: s.Warmup, Measure: s.Measure,
						Seed: seedFor(s.Seed, 4, bTotal, k, nodes), Model: s.Model,
					})
					if algo.Name == "ours" && nodes == s.Nodes[0] {
						putBaseline(s, false, bTotal, k, r.RoundNS)
					}
					speedup := ratio(baseline(s, false, bTotal, k), r.RoundNS)
					rows = append(rows, FigRow{
						Exp: "fig4", Algo: algo.Name, Nodes: nodes, P: p, K: k,
						BatchB: bTotal, Speedup: speedup, Result: r,
					})
					line += fmt.Sprintf(" %8.1f", speedup)
					thr += fmt.Sprintf(" %11.3g", r.ThroughputPerPE)
				}
				fprintf(w, "%s\n", line)
				thrLines = append(thrLines, thr)
			}
		}
		idealLine(w, s)
		fprintf(w, "\n-- Figure 5 (strong scaling): throughput per PE (items/s), B = %s --\n", fmtCount(bTotal))
		header(w, s)
		for _, l := range thrLines {
			fprintf(w, "%s\n", l)
		}
	}
	return rows
}

// CompositionRow is one bar pair of Figure 6.
type CompositionRow struct {
	Setting string // e.g. "strong B2" / "weak b3"
	Nodes   int
	Ours    PhaseFractions
	Gather  PhaseFractions
}

// PhaseFractions is a per-phase share of the slower competitor's total
// running time, like the normalized stacked bars of Figure 6.
type PhaseFractions struct {
	Insert, Select, Threshold, Gather, Total float64
}

// Composition regenerates Figure 6: the running time composition of ours-8
// vs gather for the two largest strong-scaling and weak-scaling batch
// sizes, at the largest sample size, normalized per node count to the
// slower algorithm.
func Composition(s Scale, w io.Writer) []CompositionRow {
	k := s.StrongK[len(s.StrongK)-1]
	ours8 := Algos()[1]
	gather := Algos()[2]
	var out []CompositionRow

	type setting struct {
		name   string
		strong bool
		batch  int
	}
	var settings []setting
	if n := len(s.StrongB); n >= 2 {
		settings = append(settings,
			setting{"strong B2", true, s.StrongB[n-2]},
			setting{"strong B3", true, s.StrongB[n-1]})
	}
	if n := len(s.WeakBatch); n >= 2 {
		settings = append(settings,
			setting{"weak b2", false, s.WeakBatch[n-2]},
			setting{"weak b3", false, s.WeakBatch[n-1]})
	}
	for _, set := range settings {
		fprintf(w, "\n== Figure 6 (%s, k = %s): fraction of slower algorithm's time ==\n", set.name, fmtCount(k))
		fprintf(w, "%-7s | %-36s | %s\n", "nodes", "ours-8: insert select thresh (tot)", "gather: insert select thresh gather (tot)")
		for _, nodes := range s.Nodes {
			p := nodes * s.PEsPerNode
			bpp := set.batch
			if set.strong {
				bpp = set.batch / p
				if bpp < 1 {
					continue
				}
			}
			ro := Run(RunParams{P: p, K: k, BatchPerPE: bpp, Algo: ours8,
				Warmup: s.Warmup, Measure: s.Measure, Seed: seedFor(s.Seed, 6, set.batch, nodes, 0), Model: s.Model})
			rg := Run(RunParams{P: p, K: k, BatchPerPE: bpp, Algo: gather,
				Warmup: s.Warmup, Measure: s.Measure, Seed: seedFor(s.Seed, 6, set.batch, nodes, 1), Model: s.Model})
			slower := math.Max(ro.Timing.TotalNS(), rg.Timing.TotalNS())
			row := CompositionRow{
				Setting: set.name,
				Nodes:   nodes,
				Ours:    fractions(ro, slower),
				Gather:  fractions(rg, slower),
			}
			out = append(out, row)
			fprintf(w, "%-7d | %6.2f %6.2f %6.2f (%5.2f)       | %6.2f %6.2f %6.2f %6.2f (%5.2f)\n",
				nodes,
				row.Ours.Insert, row.Ours.Select, row.Ours.Threshold, row.Ours.Total,
				row.Gather.Insert, row.Gather.Select, row.Gather.Threshold, row.Gather.Gather, row.Gather.Total)
		}
	}
	return out
}

func fractions(r RunResult, slower float64) PhaseFractions {
	if slower <= 0 {
		return PhaseFractions{}
	}
	t := r.Timing
	return PhaseFractions{
		Insert:    t.ScanNS / slower,
		Select:    t.SelectNS / slower,
		Threshold: t.ThresholdNS / slower,
		Gather:    t.GatherNS / slower,
		Total:     t.TotalNS() / slower,
	}
}

// DepthRow is one line of the recursion-depth study (Sec 6.3 in-text).
type DepthRow struct {
	K              int
	Depth1, Depth8 float64
	Ratio          float64
}

// RecursionDepth reproduces the in-text Sec 6.3 numbers: the average
// selection recursion depth with 1 vs 8 pivots at the largest node count,
// per sample size (paper: 7.3→2.7 at k=1e5, 4.3→1.8 at 1e4, 1.9→1.1 at 1e3).
func RecursionDepth(s Scale, w io.Writer) []DepthRow {
	nodes := s.Nodes[len(s.Nodes)-1]
	p := nodes * s.PEsPerNode
	b := s.WeakBatch[0]
	if len(s.WeakBatch) >= 2 {
		b = s.WeakBatch[1]
	}
	fprintf(w, "\n== Sec 6.3: selection recursion depth, %d nodes (%d PEs), b = %s ==\n", nodes, p, fmtCount(b))
	fprintf(w, "%-10s %10s %10s %8s\n", "k", "1 pivot", "8 pivots", "ratio")
	var out []DepthRow
	for _, k := range s.WeakK {
		r1 := Run(RunParams{P: p, K: k, BatchPerPE: b, Algo: Algos()[0],
			Warmup: s.Warmup, Measure: s.Measure + 2, Seed: seedFor(s.Seed, 7, k, 1), Model: s.Model})
		r8 := Run(RunParams{P: p, K: k, BatchPerPE: b, Algo: Algos()[1],
			Warmup: s.Warmup, Measure: s.Measure + 2, Seed: seedFor(s.Seed, 7, k, 8), Model: s.Model})
		row := DepthRow{K: k, Depth1: r1.AvgSelectionDepth, Depth8: r8.AvgSelectionDepth}
		if row.Depth8 > 0 {
			row.Ratio = row.Depth1 / row.Depth8
		}
		out = append(out, row)
		fprintf(w, "%-10s %10.2f %10.2f %8.2f\n", fmtCount(k), row.Depth1, row.Depth8, row.Ratio)
	}
	return out
}

// InsertionRow is one line of the Lemma 2 / Theorem 3 validation.
type InsertionRow struct {
	K, P               int
	MeasuredMeanPerPE  float64
	PredictedMeanPerPE float64
	MeasuredMaxPE      float64
	PredictedMaxPE     float64
}

// InsertionBound validates the paper's analysis of reservoir insertions
// over the post-fill rounds (the first batch fills the reservoir wholesale
// and corresponds to the i0 initial iterations of Lemma 2's proof). For
// measured rounds 2..R, the Lemma's per-batch expectation b·k/npre sums to
// (k/p)·H_{R-1} expected insertions per PE; Theorem 3 bounds the expected
// bottleneck PE by µ + sqrt(2 µ ln p).
func InsertionBound(s Scale, w io.Writer) []InsertionRow {
	idx := len(s.Nodes) - 1
	if idx > 2 {
		idx = 2
	}
	nodes := s.Nodes[idx]
	p := nodes * s.PEsPerNode
	b := s.WeakBatch[0]
	measure := s.Measure + 9
	rounds := 1 + measure
	fprintf(w, "\n== Lemma 2 / Theorem 3: insertions per PE in rounds 2..%d, %d PEs, b = %s ==\n", rounds, p, fmtCount(b))
	fprintf(w, "%-10s %14s %14s %14s %14s\n", "k", "mean/PE", "Lemma2 bound", "max PE", "Thm3 bound")
	var out []InsertionRow
	for _, k := range s.WeakK {
		r := Run(RunParams{P: p, K: k, BatchPerPE: b, Algo: Algos()[0],
			Warmup: 1, Measure: measure, Seed: seedFor(s.Seed, 8, k, p), Model: s.Model})
		mu := float64(k) / float64(p) * harmonic(rounds-1)
		pred := mu + math.Sqrt(2*mu*math.Log(math.Max(float64(p), 2)))
		row := InsertionRow{
			K: k, P: p,
			MeasuredMeanPerPE:  r.MeanInsertedPostWarmup,
			PredictedMeanPerPE: mu,
			MeasuredMaxPE:      r.MaxInsertedPostWarmup,
			PredictedMaxPE:     pred,
		}
		out = append(out, row)
		fprintf(w, "%-10s %14.1f %14.1f %14.1f %14.1f\n",
			fmtCount(k), row.MeasuredMeanPerPE, row.PredictedMeanPerPE, row.MeasuredMaxPE, row.PredictedMaxPE)
	}
	return out
}

func harmonic(n int) float64 {
	s := 0.0
	for i := 1; i <= n; i++ {
		s += 1 / float64(i)
	}
	return s
}

// Ensure the facade types stay in sync with this harness.
var _ = reservoir.Distributed
