package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationDirections(t *testing.T) {
	s := TinyScale()
	var buf bytes.Buffer
	rows := Ablation(s, &buf)
	if len(rows) != 4 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	byLabel := map[string]AblationRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.FirstBatchNS <= 0 || r.RoundNS <= 0 {
			t.Fatalf("non-positive times in %+v", r)
		}
	}
	both := byLabel["both optimizations (paper)"]
	noLT := byLabel["no local thresholding"]
	noSkip := byLabel["no blocked skipping"]
	// Local thresholding must shrink the fill round (b >> k).
	if both.FirstBatchNS >= noLT.FirstBatchNS {
		t.Errorf("local thresholding did not help the fill round: %.0f vs %.0f",
			both.FirstBatchNS, noLT.FirstBatchNS)
	}
	// Blocked skipping must shrink the steady-state round.
	if both.RoundNS >= noSkip.RoundNS {
		t.Errorf("blocked skipping did not help steady rounds: %.0f vs %.0f",
			both.RoundNS, noSkip.RoundNS)
	}
	if !strings.Contains(buf.String(), "ablation") {
		t.Error("missing ablation header")
	}
}

func TestSkewedWorkloadTiming(t *testing.T) {
	// The paper (Sec 6.1) reports no significant running time difference
	// between uniform and skewed weights. Assert the steady-state round
	// time stays within 20%.
	s := TinyScale()
	base := RunParams{P: 8, K: 100, BatchPerPE: 4000, Algo: Algos()[1],
		Warmup: 2, Measure: 4, Seed: 31, Model: s.Model}
	uni := Run(base)
	skewParams := base
	skewParams.Skewed = true
	skew := Run(skewParams)
	rel := skew.RoundNS / uni.RoundNS
	if rel < 0.8 || rel > 1.2 {
		t.Errorf("skewed/uniform round time ratio %.3f outside [0.8, 1.2] (%.0f vs %.0f ns)",
			rel, skew.RoundNS, uni.RoundNS)
	}
}
