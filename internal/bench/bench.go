// Package bench is the experiment harness that regenerates the paper's
// evaluation (Sec 6): weak scaling (Figure 3), strong scaling speedups and
// per-PE throughput (Figures 4 and 5), running time composition (Figure 6),
// the selection recursion depth study (Sec 6.3 in-text), and a validation
// of the insertion-count analysis (Lemma 2 / Theorem 3).
//
// Times are virtual (deterministic, from the cost model); see DESIGN.md §2
// for the scale-down mapping from the paper's 5120-PE cluster.
package bench

import (
	"fmt"
	"io"

	"reservoir"
	"reservoir/internal/costmodel"
	"reservoir/internal/workload"
)

// Scale bundles all experiment parameters. The paper's values are given by
// PaperScale; SmallScale (the default) shrinks batch sizes and PE counts by
// roughly 10-20x each so a laptop regenerates every figure in minutes, and
// TinyScale makes the go-test benchmarks fast.
type Scale struct {
	Name       string
	PEsPerNode int
	Nodes      []int // node counts to sweep (PEs = Nodes*PEsPerNode)
	WeakBatch  []int // per-PE mini-batch sizes b (weak scaling)
	WeakK      []int // sample sizes k
	StrongB    []int // total per-round batch sizes B (strong scaling)
	StrongK    []int
	Warmup     int // unmeasured leading rounds (first batch fills reservoirs)
	Measure    int // measured rounds
	Seed       uint64
	Model      costmodel.Model
}

// PaperScale returns the paper's configuration (Sec 6.1): 20 PEs per node,
// up to 256 nodes, b in {1e4, 1e5, 1e6}, k in {1e3, 1e4, 1e5},
// B in {2^10*1e4, 2^10*1e5, 2^10*1e6}. Running it takes many hours.
func PaperScale() Scale {
	m := costmodel.Default()
	m.CacheItems = 100_000 // the paper's ~10^5-item cache crossover
	return Scale{
		Name:       "paper",
		PEsPerNode: 20,
		Nodes:      []int{1, 4, 16, 64, 256},
		WeakBatch:  []int{10_000, 100_000, 1_000_000},
		WeakK:      []int{1_000, 10_000, 100_000},
		StrongB:    []int{1024 * 10_000, 1024 * 100_000, 1024 * 1_000_000},
		StrongK:    []int{1_000, 10_000, 100_000},
		Warmup:     1,
		Measure:    4,
		Seed:       0xC0FFEE,
		Model:      m,
	}
}

// SmallScale returns the default laptop-sized configuration: 4 PEs per
// node, up to 64 nodes (256 PEs), batches and sample sizes 10x smaller than
// the paper. The cost model's cache crossover shrinks proportionally so the
// strong-scaling bump lands mid-sweep exactly as in the paper.
func SmallScale() Scale {
	m := costmodel.Default()
	m.CacheItems = 32_768
	// α scales with the machine: at 256 PEs (vs the paper's 5120) and
	// 10x-smaller sample sizes, a 0.5µs startup latency keeps the ratio of
	// selection latency to local work comparable to the paper's setup.
	m.AlphaNS = 500
	return Scale{
		Name:       "small",
		PEsPerNode: 4,
		Nodes:      []int{1, 4, 16, 64},
		WeakBatch:  []int{1_000, 10_000, 100_000},
		WeakK:      []int{100, 1_000, 10_000},
		StrongB:    []int{256 * 1_000, 256 * 10_000, 256 * 100_000},
		StrongK:    []int{100, 1_000, 10_000},
		Warmup:     3,
		Measure:    6,
		Seed:       0xC0FFEE,
		Model:      m,
	}
}

// TinyScale returns a seconds-fast configuration for automated benchmarks.
func TinyScale() Scale {
	m := costmodel.Default()
	m.CacheItems = 2_048
	m.AlphaNS = 500
	return Scale{
		Name:       "tiny",
		PEsPerNode: 2,
		Nodes:      []int{1, 2, 4},
		WeakBatch:  []int{500, 2_000},
		WeakK:      []int{20, 100},
		StrongB:    []int{8 * 500, 8 * 2_000},
		StrongK:    []int{20, 100},
		Warmup:     1,
		Measure:    2,
		Seed:       0xC0FFEE,
		Model:      m,
	}
}

// AlgoSpec names one competitor of the paper's experiments.
type AlgoSpec struct {
	Name     string
	Algo     reservoir.Algorithm
	Strategy reservoir.SelStrategy
	Pivots   int
}

// Algos returns the paper's three competitors: ours (single-pivot),
// ours-8 (multi-pivot with d=8), and gather (centralized baseline).
func Algos() []AlgoSpec {
	return []AlgoSpec{
		{Name: "ours", Algo: reservoir.Distributed, Strategy: reservoir.SelSinglePivot},
		{Name: "ours-8", Algo: reservoir.Distributed, Strategy: reservoir.SelMultiPivot, Pivots: 8},
		{Name: "gather", Algo: reservoir.CentralizedGather},
	}
}

// RunParams describes one measured configuration.
type RunParams struct {
	P          int // number of PEs
	K          int
	BatchPerPE int
	Algo       AlgoSpec
	Warmup     int
	Measure    int
	Seed       uint64
	Model      costmodel.Model
	// NoLocalThreshold / NoBlockedSkip disable the Sec 5 optimizations
	// (used by the ablation experiment; the paper's implementation always
	// enables both).
	NoLocalThreshold bool
	NoBlockedSkip    bool
	// Skewed switches the workload to the paper's skewed-normal weights.
	Skewed bool
}

// RunResult holds the measurements of one configuration.
type RunResult struct {
	Params RunParams
	// RoundNS is the average virtual time per measured round (steady
	// state, excluding warmup).
	RoundNS float64
	// TotalNS is the virtual time of the whole run including warmup.
	TotalNS float64
	// ThroughputPerPE is items per virtual second per PE.
	ThroughputPerPE float64
	// Timing is the per-phase composition of the measured (post-warmup,
	// steady state) rounds, max over PEs per phase. The paper's 30-second
	// windows run hundreds of rounds so their startup transient is
	// negligible; excluding our warmup rounds is the scaled-down
	// equivalent.
	Timing reservoir.Timing
	// AvgSelectionDepth is the mean recursion depth of the threshold
	// selections (0 for gather).
	AvgSelectionDepth float64
	// MeanInsertedPerPE / MaxInsertedPerPE summarize per-PE reservoir
	// insertions over the whole run.
	MeanInsertedPerPE float64
	MaxInsertedPerPE  float64
	// MeanInsertedPostWarmup / MaxInsertedPostWarmup count only the
	// measured rounds (the steady-state process that Lemma 2 / Theorem 3
	// analyze; the unmeasured first batch fills the reservoir wholesale).
	MeanInsertedPostWarmup float64
	MaxInsertedPostWarmup  float64
	// MsgsPerRound / WordsPerRound are network totals divided by rounds.
	MsgsPerRound  float64
	WordsPerRound float64
}

// Run executes one configuration and returns its measurements.
func Run(p RunParams) RunResult {
	cfg := reservoir.Config{
		K:        p.K,
		Weighted: true,
		Strategy: p.Algo.Strategy,
		Pivots:   p.Algo.Pivots,
		// The paper's implementation always uses its Sec 5 optimizations;
		// the ablation experiment switches them off selectively.
		LocalThreshold: !p.NoLocalThreshold,
		BlockedSkip:    !p.NoBlockedSkip,
		Seed:           p.Seed,
		Model:          p.Model,
	}
	cl, err := reservoir.NewCluster(p.P, cfg, reservoir.WithAlgorithm(p.Algo.Algo))
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	var src workload.Source = workload.UniformSource{Seed: p.Seed ^ 0x5eed, BatchLen: p.BatchPerPE, Lo: 0, Hi: 100}
	if p.Skewed {
		src = workload.SkewedSource{Seed: p.Seed ^ 0x5eed, BatchLen: p.BatchPerPE,
			BaseMean: 50, RoundInc: 10, RankInc: 1, SD: 10}
	}
	for r := 0; r < p.Warmup; r++ {
		cl.ProcessRound(src)
	}
	warmEnd := cl.VirtualTime()
	warmIns := make([]float64, p.P)
	warmTiming := make([]reservoir.Timing, p.P)
	for pe := 0; pe < p.P; pe++ {
		warmIns[pe] = float64(cl.PECounters(pe).Inserted)
		warmTiming[pe] = cl.PETiming(pe)
	}
	for r := 0; r < p.Measure; r++ {
		cl.ProcessRound(src)
	}
	end := cl.VirtualTime()

	res := RunResult{Params: p, TotalNS: end}
	res.RoundNS = (end - warmEnd) / float64(p.Measure)
	if res.RoundNS > 0 {
		res.ThroughputPerPE = float64(p.BatchPerPE) / (res.RoundNS / 1e9)
	}
	for pe := 0; pe < p.P; pe++ {
		res.Timing = res.Timing.Max(cl.PETiming(pe).Sub(warmTiming[pe]))
	}
	c := cl.Counters()
	if c.Selections > 0 {
		res.AvgSelectionDepth = float64(c.SelectionRounds) / float64(c.Selections)
	}
	var sum, max, postSum, postMax float64
	for pe := 0; pe < p.P; pe++ {
		ins := float64(cl.PECounters(pe).Inserted)
		sum += ins
		if ins > max {
			max = ins
		}
		post := ins - warmIns[pe]
		postSum += post
		if post > postMax {
			postMax = post
		}
	}
	res.MeanInsertedPerPE = sum / float64(p.P)
	res.MaxInsertedPerPE = max
	res.MeanInsertedPostWarmup = postSum / float64(p.P)
	res.MaxInsertedPostWarmup = postMax
	ns := cl.NetworkStats()
	rounds := float64(p.Warmup + p.Measure)
	res.MsgsPerRound = float64(ns.Messages) / rounds
	res.WordsPerRound = float64(ns.Words) / rounds
	return res
}

// --- helpers ----------------------------------------------------------------

func fmtCount(v int) string {
	switch {
	case v >= 1_000_000 && v%1_000_000 == 0:
		return fmt.Sprintf("%dM", v/1_000_000)
	case v >= 1_000 && v%1_000 == 0:
		return fmt.Sprintf("%dk", v/1_000)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

func seedFor(base uint64, parts ...int) uint64 {
	s := base
	for _, p := range parts {
		s = s*0x9e3779b97f4a7c15 + uint64(p) + 0x51ed
	}
	return s
}
